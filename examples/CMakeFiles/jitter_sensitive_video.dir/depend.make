# Empty dependencies file for jitter_sensitive_video.
# This may be replaced when dependencies are built.
