file(REMOVE_RECURSE
  "CMakeFiles/jitter_sensitive_video.dir/jitter_sensitive_video.cpp.o"
  "CMakeFiles/jitter_sensitive_video.dir/jitter_sensitive_video.cpp.o.d"
  "jitter_sensitive_video"
  "jitter_sensitive_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitter_sensitive_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
