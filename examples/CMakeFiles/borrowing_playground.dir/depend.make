# Empty dependencies file for borrowing_playground.
# This may be replaced when dependencies are built.
