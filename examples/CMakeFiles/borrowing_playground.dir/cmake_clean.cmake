file(REMOVE_RECURSE
  "CMakeFiles/borrowing_playground.dir/borrowing_playground.cpp.o"
  "CMakeFiles/borrowing_playground.dir/borrowing_playground.cpp.o.d"
  "borrowing_playground"
  "borrowing_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/borrowing_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
