file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_isolation.dir/multi_tenant_isolation.cpp.o"
  "CMakeFiles/multi_tenant_isolation.dir/multi_tenant_isolation.cpp.o.d"
  "multi_tenant_isolation"
  "multi_tenant_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
