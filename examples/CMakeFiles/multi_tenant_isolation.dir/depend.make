# Empty dependencies file for multi_tenant_isolation.
# This may be replaced when dependencies are built.
