file(REMOVE_RECURSE
  "CMakeFiles/fvctl.dir/fvctl.cpp.o"
  "CMakeFiles/fvctl.dir/fvctl.cpp.o.d"
  "fvctl"
  "fvctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
