# Empty dependencies file for fvctl.
# This may be replaced when dependencies are built.
