// Quickstart: configure FlowValve with a tc-style fv script, run traffic
// through the simulated NP SmartNIC, and read back per-class results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/flowvalve.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

using namespace flowvalve;

int main() {
  // 1. A discrete-event clock drives everything.
  sim::Simulator simulator;

  // 2. Describe the NIC: a Netronome-style 40GbE NP SmartNIC.
  np::NpConfig nic = np::agilio_cx_40g();

  // 3. Declare QoS policy exactly as an admin would with the fv CLI:
  //    two tenants share a 10 Gbps budget 2:1; "gold" may borrow whatever
  //    "silver" leaves unused (and vice versa). Filters classify by the
  //    SR-IOV virtual function a packet arrives on.
  core::FlowValveEngine engine(np::engine_options_for(nic));
  const std::string err = engine.configure(R"(
    fv qdisc add dev nic0 root handle 1: htb rate 10gbit
    fv class add dev nic0 parent 1: classid 1:10 name gold   weight 2
    fv class add dev nic0 parent 1: classid 1:11 name silver weight 1
    fv borrow add dev nic0 classid 1:10 from 1:11
    fv borrow add dev nic0 classid 1:11 from 1:10
    fv filter add dev nic0 pref 10 vf 0 classid 1:10
    fv filter add dev nic0 pref 11 vf 1 classid 1:11
  )");
  if (!err.empty()) {
    std::fprintf(stderr, "fv config error: %s\n", err.c_str());
    return 1;
  }

  // 4. Plug the engine into the NIC's worker micro-engines.
  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(simulator, nic, processor);

  // 5. Offer more traffic than each tenant is entitled to: 8 Gbps each
  //    against shares of 6.67 / 3.33 Gbps.
  sim::Rng rng(1);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  auto make_flow = [&](std::uint16_t vf) {
    traffic::FlowSpec spec;
    spec.flow_id = ids.next_flow_id();
    spec.app_id = vf;
    spec.vf_port = vf;
    spec.wire_bytes = 1518;
    spec.tuple.src_ip = 0x0a000001u + vf;
    spec.tuple.dst_ip = 0x0a000002;
    spec.tuple.src_port = static_cast<std::uint16_t>(40000 + vf);
    spec.tuple.dst_port = 5001;
    return std::make_unique<traffic::CbrFlow>(simulator, router, ids, spec,
                                              sim::Rate::gigabits_per_sec(8),
                                              rng.split(vf), 0.02);
  };
  auto gold = make_flow(0);
  auto silver = make_flow(1);
  gold->start();
  silver->start();

  // 6. Run one virtual second.
  simulator.run_until(sim::seconds(1));

  // 7. Inspect the scheduling tree: θ (token rate), Γ (measured consumption),
  //    forwarded bytes and the drops FlowValve performed instead of queueing.
  std::printf("FlowValve quickstart — 10G policy, gold:silver = 2:1, 8G offered each\n\n");
  stats::TablePrinter table({"class", "theta(Gbps)", "gamma(Gbps)", "delivered(Gbps)",
                             "drops"});
  const auto& tree = engine.tree();
  for (core::ClassId id = 0; id < tree.size(); ++id) {
    const auto& c = tree.at(id);
    table.add_row({c.name, stats::TablePrinter::fmt(c.theta.gbps()),
                   stats::TablePrinter::fmt(c.gamma().gbps()),
                   stats::TablePrinter::fmt(static_cast<double>(c.fwd_bytes) * 8.0 / 1e9),
                   std::to_string(c.drop_packets)});
  }
  table.print();

  std::printf("\nExpect gold ≈ 6.6 Gbps and silver ≈ 3.3 Gbps: the 2:1 policy, "
              "enforced by\nper-class token buckets on the NIC — no host CPU, no "
              "deep NIC queues.\n");
  std::printf("Flow cache hit rate: %.1f%%\n",
              engine.classifier().cache().stats().hit_rate() * 100.0);
  return 0;
}
