// Jitter-sensitive workloads: the paper's §V-B observation that FlowValve
// "almost causes no variations in delay ... making it suitable for
// scheduling jitter-sensitive workloads, e.g., the video traffic."
//
// A 30 Mbps "video" stream shares the egress with four greedy TCP apps,
// once through kernel HTB and once through NP-offloaded FlowValve. We
// report the video stream's one-way delay distribution under both.
#include <cstdio>

#include "exp/scenarios.h"

using namespace flowvalve;

int main() {
  std::printf("Jitter-sensitive video stream under fair-queueing load @10G\n\n");

  const auto htb = exp::run_fig14_htb(/*seed=*/3);
  const auto fv = exp::run_fig14_flowvalve(sim::Rate::gigabits_per_sec(10), /*seed=*/3);

  auto report = [](const exp::DelayResult& r) {
    std::printf("  %-16s mean %7.2f us   stddev %6.2f us   p50 %7.2f   p99 %7.2f\n",
                r.label.c_str(), r.mean_us, r.stddev_us, r.p50_us, r.p99_us);
  };
  report(htb);
  report(fv);

  const double jitter_ratio = htb.stddev_us / (fv.stddev_us > 0 ? fv.stddev_us : 1e-9);
  std::printf("\nDelay variation under the kernel scheduler is %.1fx FlowValve's.\n",
              jitter_ratio);
  std::printf(
      "Why: the kernel path batches GSO-sized bursts through a contended qdisc\n"
      "lock, so the video packets' wait varies with whatever burst is in front\n"
      "of them. FlowValve never queues per class — admitted packets go straight\n"
      "into a shallow wire FIFO, so delay is dominated by fixed pipeline\n"
      "constants. For a 33 ms video frame budget, p99 jitter is what causes\n"
      "visible stutter — compare the p99 columns above.\n");
  return 0;
}
