// Borrowing playground: a guided tour of FlowValve's shadow-bucket
// bandwidth sharing (paper §IV-C Subprocedure 2, Figs. 6(d)/9).
//
// Three phases on a 10 Gbps policy with classes A (4G), B (4G), C (2G),
// all allowed to borrow from each other:
//   Phase 1 — only A sends (8G offered): it borrows B's and C's idle rate.
//   Phase 2 — B wakes up (6G offered): lendable pools shrink, A is pushed
//             back toward its own share.
//   Phase 3 — everyone greedy: borrowing dries up entirely; shares follow
//             the configured weights.
#include <cstdio>

#include "core/flowvalve.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

using namespace flowvalve;

namespace {

void snapshot(const core::SchedulingTree& tree, const char* phase,
              const stats::ThroughputSeries* series, double t0, double t1) {
  std::printf("%s\n", phase);
  stats::TablePrinter table({"class", "theta(G)", "gamma(G)", "lendable(G)",
                             "borrowed(MB)", "delivered(G)"});
  for (core::ClassId id = 1; id < tree.size(); ++id) {
    const auto& c = tree.at(id);
    const std::size_t app = id - 1;
    const auto b0 = static_cast<std::size_t>(sim::seconds_f(t0) / sim::milliseconds(100));
    const auto b1 = static_cast<std::size_t>(sim::seconds_f(t1) / sim::milliseconds(100));
    table.add_row({c.name, stats::TablePrinter::fmt(c.theta.gbps()),
                   stats::TablePrinter::fmt(c.gamma().gbps()),
                   stats::TablePrinter::fmt(c.lendable.gbps()),
                   stats::TablePrinter::fmt(static_cast<double>(c.borrowed_bytes) / 1e6),
                   stats::TablePrinter::fmt(series[app].mean_rate(b0, b1).gbps())});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  sim::Simulator simulator;
  np::NpConfig nic = np::agilio_cx_40g();

  core::FlowValveEngine engine(np::engine_options_for(nic));
  const std::string err = engine.configure(R"(
    fv qdisc add dev nic0 root handle 1: htb rate 10gbit
    fv class add dev nic0 parent 1: classid 1:10 name A weight 4
    fv class add dev nic0 parent 1: classid 1:11 name B weight 4
    fv class add dev nic0 parent 1: classid 1:12 name C weight 2
    fv borrow add dev nic0 classid 1:10 from 1:11,1:12
    fv borrow add dev nic0 classid 1:11 from 1:10,1:12
    fv borrow add dev nic0 classid 1:12 from 1:10,1:11
    fv filter add dev nic0 pref 10 vf 0 classid 1:10
    fv filter add dev nic0 pref 11 vf 1 classid 1:11
    fv filter add dev nic0 pref 12 vf 2 classid 1:12
  )");
  if (!err.empty()) {
    std::fprintf(stderr, "fv config error: %s\n", err.c_str());
    return 1;
  }
  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(simulator, nic, processor);

  sim::Rng rng(11);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  stats::ThroughputSeries series[3] = {stats::ThroughputSeries(sim::milliseconds(100)),
                                       stats::ThroughputSeries(sim::milliseconds(100)),
                                       stats::ThroughputSeries(sim::milliseconds(100))};
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (std::uint16_t vf = 0; vf < 3; ++vf) {
    router.track_app(vf, &series[vf]);
    traffic::FlowSpec spec;
    spec.flow_id = ids.next_flow_id();
    spec.app_id = vf;
    spec.vf_port = vf;
    spec.wire_bytes = 1518;
    spec.tuple.src_ip = 0x0a000001u + vf;
    spec.tuple.src_port = static_cast<std::uint16_t>(41000 + vf);
    flows.push_back(std::make_unique<traffic::CbrFlow>(
        simulator, router, ids, spec, sim::Rate::gigabits_per_sec(vf == 0 ? 8.0 : 6.0),
        rng.split(vf), 0.02));
  }

  std::printf("Borrowing playground — 10G policy, A:B:C = 4:4:2, mutual borrowing\n\n");

  // Phase 1: only A.
  flows[0]->start();
  simulator.run_until(sim::seconds(1));
  snapshot(engine.tree(), "Phase 1 — A alone offers 8G (shares: A=4, B=4, C=2):",
           series, 0.5, 1.0);

  // Phase 2: B joins.
  flows[1]->start();
  simulator.run_until(sim::seconds(2));
  snapshot(engine.tree(), "Phase 2 — B joins with 6G offered:", series, 1.5, 2.0);

  // Phase 3: C joins too — everyone greedy.
  flows[2]->start();
  simulator.run_until(sim::seconds(3));
  snapshot(engine.tree(), "Phase 3 — all greedy (weights bind: 4:4:2):", series, 2.5,
           3.0);

  std::printf(
      "Things to notice:\n"
      "  * Phase 1: A's delivered rate ≈ its 4G share + B/C's lendable rate;\n"
      "    B and C keep advertising tokens through their shadow buckets even\n"
      "    while idle (borrower-driven updates keep them fresh).\n"
      "  * Phase 2: B's lendable collapses to ~0 as Γ_B approaches θ_B; A's\n"
      "    borrowing retreats to C's pool alone.\n"
      "  * Phase 3: no lendable anywhere; delivered rates follow 4:4:2.\n");
  return 0;
}
