// Multi-tenant isolation: the paper's motivating datacenter scenario
// (Fig. 2) — a host runs two guest VMs plus a management controller, each
// sending through its own SR-IOV virtual function, with a nested QoS policy
// enforced entirely on the SmartNIC.
//
// Shows: hierarchical weights, strict priority for the controller, a
// bandwidth guarantee for the ML service, and work-conserving borrowing as
// tenants come and go.
#include <cstdio>

#include "exp/scenarios.h"

using namespace flowvalve;

int main() {
  // The motivation policy and a staged tenant timeline are packaged in the
  // experiment library; this example runs them and narrates the result.
  std::printf("Multi-tenant isolation on a 10G budget (NP-offloaded FlowValve)\n");
  std::printf("Policy: NC strictly prior (ceil 7.5G, may borrow);\n");
  std::printf("        vm1 (KVS+ML) : vm2 (WS) = 2 : 1;\n");
  std::printf("        KVS prior over ML; ML guaranteed 2 Gbps.\n");
  std::printf("Timeline: NC 0-15s | KVS 15-45s | ML 15-60s | WS 30-60s\n\n");

  const auto result = exp::run_fig11a_fv_motivation(/*seed=*/7);

  std::printf("%s\n", result.table(sim::seconds(5)).c_str());
  std::printf("%s\n", result.ascii_chart(sim::Rate::gigabits_per_sec(10)).c_str());

  struct Check {
    const char* what;
    double got;
    double want;
  };
  const Check checks[] = {
      {"NC alone reaches the full budget (ceil + borrowing)",
       result.mean_rate("NC", 5, 15).gbps(), 10.0},
      {"ML never starves below its 2G guarantee (KVS greedy)",
       result.mean_rate("ML", 20, 30).gbps(), 2.0},
      {"WS takes its 1/3 share when it joins", result.mean_rate("WS", 35, 45).gbps(),
       3.3},
      {"ML absorbs KVS's share after it leaves", result.mean_rate("ML", 50, 60).gbps(),
       6.6},
  };
  std::printf("Isolation checkpoints (measured vs intended):\n");
  for (const auto& c : checks)
    std::printf("  %-52s %5.2f / %4.1f Gbps\n", c.what, c.got, c.want);
  std::printf("\nHost CPU spent on scheduling: %.2f cores (fully offloaded)\n",
              result.host_cores_used);
  return 0;
}
