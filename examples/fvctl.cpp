// fvctl — a command-line harness around the FlowValve library: load an fv
// policy script from a file, attach greedy TCP apps to VF ports, run the
// simulated SmartNIC, and print per-app throughput over time. The control
// subcommands drive the src/ctrl live-reconfiguration plane: `apply`
// submits a policy update mid-run through shadow validation and the
// epoch-versioned staged rollout, `rollback` demonstrates the operator
// restore path, and `status` reports the control-plane state.
//
// Usage:
//   fvctl run POLICY.fv   [--apps N] [--seconds S] [--conns C] [--wire GBPS]
//                         [--seed SEED] [--csv out.csv]
//   fvctl apply POLICY.fv UPDATE [--at-ms T] [...run options]
//   fvctl rollback POLICY.fv UPDATE [--at-ms T] [...run options]
//   fvctl status POLICY.fv [...run options]
//
//   (a bare `fvctl POLICY.fv ...` still works and means `run`)
//
// UPDATE is either a full fv script (lines starting with "fv ", swapped in
// atomically after structural compatibility checks) or per-class deltas:
//   delta gold weight=4
//   delta silver ceil=2gbit guarantee=500mbit prio=1
//
// Example policy file (see README for the grammar):
//   fv qdisc add dev nic0 root handle 1: htb rate 10gbit
//   fv class add dev nic0 parent 1: classid 1:10 name gold weight 2
//   fv class add dev nic0 parent 1: classid 1:11 name silver weight 1
//   fv filter add dev nic0 pref 1 vf 0 classid 1:10
//   fv filter add dev nic0 pref 2 vf 1 classid 1:11
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/flowvalve.h"
#include "core/frontend.h"
#include "core/introspect.h"
#include "ctrl/reconfig_manager.h"
#include "exp/scenarios.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/reconfig_tracker.h"
#include "sim/simulator.h"
#include "stats/series_export.h"
#include "traffic/app.h"

using namespace flowvalve;

namespace {

enum class Command { kRun, kApply, kRollback, kStatus };

struct Args {
  Command command = Command::kRun;
  std::string policy_path;
  std::string update_path;  // apply / rollback
  double at_ms = -1.0;      // submission instant; <0 ⇒ mid-run
  unsigned apps = 2;
  double seconds = 5.0;
  unsigned conns = 1;
  double wire_gbps = 40.0;
  std::uint64_t seed = 42;
  std::string csv_path;
};

bool parse_args(int argc, char** argv, Args* out) {
  int i = 1;
  if (argc < 2) return false;
  const std::string first = argv[1];
  if (first == "run") {
    out->command = Command::kRun;
    ++i;
  } else if (first == "apply") {
    out->command = Command::kApply;
    ++i;
  } else if (first == "rollback") {
    out->command = Command::kRollback;
    ++i;
  } else if (first == "status") {
    out->command = Command::kStatus;
    ++i;
  }  // anything else: legacy `fvctl POLICY.fv ...` ⇒ run
  if (i >= argc) return false;
  out->policy_path = argv[i++];
  if (out->command == Command::kApply || out->command == Command::kRollback) {
    if (i >= argc || argv[i][0] == '-') return false;
    out->update_path = argv[i++];
  }
  for (; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const char* val = argv[i + 1];
    if (key == "--apps") out->apps = static_cast<unsigned>(std::atoi(val));
    else if (key == "--seconds") out->seconds = std::atof(val);
    else if (key == "--conns") out->conns = static_cast<unsigned>(std::atoi(val));
    else if (key == "--wire") out->wire_gbps = std::atof(val);
    else if (key == "--seed") out->seed = std::strtoull(val, nullptr, 10);
    else if (key == "--csv") out->csv_path = val;
    else if (key == "--at-ms") out->at_ms = std::atof(val);
    else return false;
  }
  return out->apps > 0 && out->seconds > 0;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Parse an UPDATE file: full fv script, or `delta NAME key=value...` lines.
bool parse_update(const std::string& text, ctrl::PolicyUpdate* out,
                  std::string* error) {
  std::istringstream lines(text);
  std::string line;
  bool any_fv = false, any_delta = false;
  while (std::getline(lines, line)) {
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;
    if (word == "fv") {
      any_fv = true;
      continue;
    }
    if (word != "delta") {
      *error = "unrecognized update line: " + line;
      return false;
    }
    any_delta = true;
    ctrl::PolicyDelta d;
    if (!(ls >> d.class_name)) {
      *error = "delta line without a class name: " + line;
      return false;
    }
    while (ls >> word) {
      const std::size_t eq = word.find('=');
      if (eq == std::string::npos) {
        *error = "expected key=value, got '" + word + "'";
        return false;
      }
      const std::string key = word.substr(0, eq);
      const std::string val = word.substr(eq + 1);
      try {
        if (key == "weight") d.weight = std::stod(val);
        else if (key == "prio") d.prio = static_cast<core::PrioLevel>(std::stoul(val));
        else if (key == "rate" || key == "guarantee") d.guarantee = core::parse_rate(val);
        else if (key == "ceil") d.ceil = core::parse_rate(val);
        else {
          *error = "unknown delta key '" + key + "'";
          return false;
        }
      } catch (const std::exception& e) {
        *error = "bad value for '" + key + "': " + e.what();
        return false;
      }
    }
    out->deltas.push_back(std::move(d));
  }
  if (any_fv && any_delta) {
    *error = "update mixes a full fv script with delta lines — use one or the other";
    return false;
  }
  if (any_fv) {
    out->fv_script = text;
    out->deltas.clear();
  } else if (!any_delta) {
    *error = "update file contains neither fv script lines nor delta lines";
    return false;
  }
  return true;
}

/// Prints every control-plane lifecycle event with its virtual timestamp.
class PrintObserver final : public ctrl::ReconfigManager::Observer {
 public:
  void on_staged(std::uint32_t epoch, sim::SimTime now) override {
    std::printf("[%8.3f ms] staged rollout of epoch %u\n", ms(now), epoch);
  }
  void on_committed(std::uint32_t epoch, sim::SimTime now) override {
    std::printf("[%8.3f ms] committed epoch %u (probation passed)\n", ms(now),
                epoch);
  }
  void on_rolled_back(std::uint32_t from, std::uint32_t to,
                      const std::string& reason, sim::SimTime now) override {
    std::printf("[%8.3f ms] ROLLED BACK epoch %u -> %u: %s\n", ms(now), from,
                to, reason.c_str());
  }
  void on_stall(std::uint32_t epoch, sim::SimTime now) override {
    std::printf("[%8.3f ms] rollout of epoch %u stalled; forcing cutover\n",
                ms(now), epoch);
  }

 private:
  static double ms(sim::SimTime t) { return static_cast<double>(t) / 1e6; }
};

const char* state_name(ctrl::ReconfigManager::State s) {
  switch (s) {
    case ctrl::ReconfigManager::State::kIdle: return "idle";
    case ctrl::ReconfigManager::State::kRollout: return "rollout";
    case ctrl::ReconfigManager::State::kProbation: return "probation";
  }
  return "?";
}

int run_command(const Args& args) {
  std::string policy;
  if (!read_file(args.policy_path, &policy)) {
    std::fprintf(stderr, "cannot open policy file '%s'\n",
                 args.policy_path.c_str());
    return 1;
  }

  ctrl::PolicyUpdate update;
  if (args.command == Command::kApply || args.command == Command::kRollback) {
    std::string text, err;
    if (!read_file(args.update_path, &text)) {
      std::fprintf(stderr, "cannot open update file '%s'\n",
                   args.update_path.c_str());
      return 1;
    }
    if (!parse_update(text, &update, &err)) {
      std::fprintf(stderr, "update parse error: %s\n", err.c_str());
      return 1;
    }
  }

  sim::Simulator simulator;
  np::NpConfig nic = np::agilio_cx_40g();
  nic.wire_rate = sim::Rate::gigabits_per_sec(args.wire_gbps);

  core::FlowValveEngine engine(exp::superpacket_engine_options(nic));
  try {
    const std::string err = engine.configure(policy);
    if (!err.empty()) {
      std::fprintf(stderr, "policy error: %s\n", err.c_str());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "policy parse error: %s\n", e.what());
    return 1;
  }

  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(simulator, nic, processor);
  sim::Rng rng(args.seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);

  obs::ReconfigTracker tracker;
  PrintObserver print_observer;
  std::unique_ptr<ctrl::ReconfigManager> mgr;
  if (args.command != Command::kRun) {
    mgr = std::make_unique<ctrl::ReconfigManager>(simulator, pipeline, engine,
                                                  &tracker);
    mgr->set_observer(&print_observer);
  }

  std::vector<std::unique_ptr<stats::ThroughputSeries>> series;
  std::vector<std::unique_ptr<traffic::AppProcess>> apps;
  std::vector<stats::NamedSeries> named;
  for (unsigned i = 0; i < args.apps; ++i) {
    series.push_back(std::make_unique<stats::ThroughputSeries>(sim::milliseconds(100)));
    router.track_app(i, series.back().get());
    traffic::AppConfig cfg;
    cfg.name = "app" + std::to_string(i);
    cfg.app_id = i;
    cfg.vf_port = static_cast<std::uint16_t>(i);
    cfg.num_connections = args.conns;
    cfg.wire_bytes = exp::kSuperPacketBytes;
    cfg.tcp.max_rate = nic.wire_rate * 1.4;
    cfg.tcp.additive_increase = nic.wire_rate * 0.02;
    cfg.tcp.md_factor = 0.9;
    auto app = std::make_unique<traffic::AppProcess>(simulator, router, ids, cfg,
                                                     rng.split(cfg.name));
    app->start();
    named.push_back({cfg.name, series.back().get()});
    apps.push_back(std::move(app));
  }

  const sim::SimTime horizon = sim::seconds_f(args.seconds);

  if (args.command == Command::kApply || args.command == Command::kRollback) {
    const sim::SimTime at = args.at_ms >= 0.0
                                ? static_cast<sim::SimTime>(args.at_ms * 1e6)
                                : horizon / 2;
    ctrl::ReconfigManager* m = mgr.get();
    const ctrl::PolicyUpdate* u = &update;
    simulator.schedule_at(at, [m, u] {
      if (std::string err = m->apply(*u); !err.empty())
        std::printf("update REJECTED by shadow validation: %s\n", err.c_str());
    });
    if (args.command == Command::kRollback) {
      // Operator restore: yank the update back mid-probation.
      simulator.schedule_at(at + sim::milliseconds(4),
                            [m] { m->rollback("operator"); });
    }
  }

  simulator.run_until(horizon);

  std::printf("fvctl — %s | %u apps × %u conns | wire %.0fG | %.1fs | seed %llu\n\n",
              args.policy_path.c_str(), args.apps, args.conns, args.wire_gbps,
              args.seconds, static_cast<unsigned long long>(args.seed));
  std::printf("%s\n",
              stats::series_to_table(named, horizon, sim::seconds_f(args.seconds / 10.0))
                  .c_str());

  std::printf("fv class show (%s):\n%s\n",
              core::render_engine_summary(engine).c_str(),
              core::render_class_show(engine.tree()).c_str());

  if (mgr) {
    const ctrl::ReconfigManager::Stats& rs = mgr->stats();
    std::printf("control plane: epoch %u | state %s | %llu applied, "
                "%llu committed, %llu rolled back, %llu rejected, "
                "%llu coalesced | %llu mixed-epoch pkts\n",
                mgr->epoch(), state_name(mgr->state()),
                static_cast<unsigned long long>(rs.applied),
                static_cast<unsigned long long>(rs.committed),
                static_cast<unsigned long long>(rs.rolled_back),
                static_cast<unsigned long long>(rs.rejected),
                static_cast<unsigned long long>(rs.coalesced),
                static_cast<unsigned long long>(rs.mixed_epoch_packets));
    obs::JsonWriter w;
    obs::reconfig_json(w, tracker);
    std::printf("reconfig records: %s\n", w.str().c_str());
  }

  if (!args.csv_path.empty()) {
    if (stats::write_series_csv(args.csv_path, named, horizon))
      std::printf("\nwrote %s\n", args.csv_path.c_str());
    else
      std::fprintf(stderr, "\nfailed to write %s\n", args.csv_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s [run] POLICY.fv [--apps N] [--seconds S] [--conns C]\n"
                 "          [--wire GBPS] [--seed SEED] [--csv out.csv]\n"
                 "       %s apply POLICY.fv UPDATE [--at-ms T] [...run options]\n"
                 "       %s rollback POLICY.fv UPDATE [--at-ms T] [...run options]\n"
                 "       %s status POLICY.fv [...run options]\n",
                 argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  return run_command(args);
}
