// fvctl — a command-line harness around the FlowValve library: load an fv
// policy script from a file, attach greedy TCP apps to VF ports, run the
// simulated SmartNIC, and print per-app throughput over time.
//
// Usage:
//   fvctl POLICY.fv [--apps N] [--seconds S] [--conns C] [--wire GBPS]
//                    [--seed SEED] [--csv out.csv]
//
// Example policy file (see README for the grammar):
//   fv qdisc add dev nic0 root handle 1: htb rate 10gbit
//   fv class add dev nic0 parent 1: classid 1:10 name gold weight 2
//   fv class add dev nic0 parent 1: classid 1:11 name silver weight 1
//   fv filter add dev nic0 pref 1 vf 0 classid 1:10
//   fv filter add dev nic0 pref 2 vf 1 classid 1:11
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/flowvalve.h"
#include "core/introspect.h"
#include "exp/scenarios.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/series_export.h"
#include "traffic/app.h"

using namespace flowvalve;

namespace {

struct Args {
  std::string policy_path;
  unsigned apps = 2;
  double seconds = 5.0;
  unsigned conns = 1;
  double wire_gbps = 40.0;
  std::uint64_t seed = 42;
  std::string csv_path;
};

bool parse_args(int argc, char** argv, Args* out) {
  if (argc < 2) return false;
  out->policy_path = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const char* val = argv[i + 1];
    if (key == "--apps") out->apps = static_cast<unsigned>(std::atoi(val));
    else if (key == "--seconds") out->seconds = std::atof(val);
    else if (key == "--conns") out->conns = static_cast<unsigned>(std::atoi(val));
    else if (key == "--wire") out->wire_gbps = std::atof(val);
    else if (key == "--seed") out->seed = std::strtoull(val, nullptr, 10);
    else if (key == "--csv") out->csv_path = val;
    else return false;
  }
  return out->apps > 0 && out->seconds > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s POLICY.fv [--apps N] [--seconds S] [--conns C]\n"
                 "          [--wire GBPS] [--seed SEED] [--csv out.csv]\n",
                 argv[0]);
    return 2;
  }

  std::ifstream policy_file(args.policy_path);
  if (!policy_file) {
    std::fprintf(stderr, "cannot open policy file '%s'\n", args.policy_path.c_str());
    return 1;
  }
  std::stringstream policy;
  policy << policy_file.rdbuf();

  sim::Simulator simulator;
  np::NpConfig nic = np::agilio_cx_40g();
  nic.wire_rate = sim::Rate::gigabits_per_sec(args.wire_gbps);

  core::FlowValveEngine engine(exp::superpacket_engine_options(nic));
  try {
    const std::string err = engine.configure(policy.str());
    if (!err.empty()) {
      std::fprintf(stderr, "policy error: %s\n", err.c_str());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "policy parse error: %s\n", e.what());
    return 1;
  }

  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(simulator, nic, processor);
  sim::Rng rng(args.seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);

  std::vector<std::unique_ptr<stats::ThroughputSeries>> series;
  std::vector<std::unique_ptr<traffic::AppProcess>> apps;
  std::vector<stats::NamedSeries> named;
  for (unsigned i = 0; i < args.apps; ++i) {
    series.push_back(std::make_unique<stats::ThroughputSeries>(sim::milliseconds(100)));
    router.track_app(i, series.back().get());
    traffic::AppConfig cfg;
    cfg.name = "app" + std::to_string(i);
    cfg.app_id = i;
    cfg.vf_port = static_cast<std::uint16_t>(i);
    cfg.num_connections = args.conns;
    cfg.wire_bytes = exp::kSuperPacketBytes;
    cfg.tcp.max_rate = nic.wire_rate * 1.4;
    cfg.tcp.additive_increase = nic.wire_rate * 0.02;
    cfg.tcp.md_factor = 0.9;
    auto app = std::make_unique<traffic::AppProcess>(simulator, router, ids, cfg,
                                                     rng.split(cfg.name));
    app->start();
    named.push_back({cfg.name, series.back().get()});
    apps.push_back(std::move(app));
  }

  const sim::SimTime horizon = sim::seconds_f(args.seconds);
  simulator.run_until(horizon);

  std::printf("fvctl — %s | %u apps × %u conns | wire %.0fG | %.1fs | seed %llu\n\n",
              args.policy_path.c_str(), args.apps, args.conns, args.wire_gbps,
              args.seconds, static_cast<unsigned long long>(args.seed));
  std::printf("%s\n",
              stats::series_to_table(named, horizon, sim::seconds_f(args.seconds / 10.0))
                  .c_str());

  std::printf("fv class show (%s):\n%s\n",
              core::render_engine_summary(engine).c_str(),
              core::render_class_show(engine.tree()).c_str());

  if (!args.csv_path.empty()) {
    if (stats::write_series_csv(args.csv_path, named, horizon))
      std::printf("\nwrote %s\n", args.csv_path.c_str());
    else
      std::fprintf(stderr, "\nfailed to write %s\n", args.csv_path.c_str());
  }
  return 0;
}
