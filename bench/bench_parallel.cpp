// Parallel experiment-runtime bench: fans the standard fuzz corpus across
// the work-stealing runner at increasing --jobs and writes
// BENCH_parallel.json — the scenarios/sec scaling curve from 1 thread to
// every host core, with the sequential-equivalence oracle enforced at every
// rung (each seed's CheckReport under --jobs N must be bit-identical to the
// --jobs 1 reference; any divergence fails the bench immediately).
//
// Speedup is reported against the jobs=1 rung; efficiency normalizes by
// min(jobs, hardware threads), so the committed artifact is meaningful on
// any machine: a 1-core container honestly records ~1.0x while an 8-core
// host is expected to clear ~4x at the top rung (efficiency >= ~0.5).
//
// CI's perf-smoke job re-runs the reduced ladder with --quick --check: the
// gate is machine-independent — the oracle must hold at every rung and the
// top rung's parallel efficiency must not fall below the floor.
//
// Usage: bench_parallel [--out PATH] [--quick] [--seeds N]
//                       [--check BASELINE.json] [--efficiency-floor F]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/runner.h"
#include "exp/parallel_runner.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "stats/stats.h"

namespace {

using namespace flowvalve;

/// Best-of reps per ladder rung: wall-clock samples on a shared machine
/// scatter, and the max is the honest estimate of what the machine can do.
constexpr int kReps = 3;

std::string outcome_fingerprint(const check::SeedOutcome& o) {
  if (o.crashed) return "CRASH|" + o.crash_what;
  return check::report_fingerprint(o.report);
}

struct Rung {
  unsigned jobs = 0;
  double wall_ms = 0.0;          // best (minimum) wall time across reps
  double scenarios_per_sec = 0.0;
  double speedup = 1.0;          // vs the jobs=1 rung
  double efficiency = 1.0;       // speedup / min(jobs, hardware threads)
};

/// Ladder: 1, 2, 4, ... up to every hardware thread (the top rung is always
/// exactly hardware_jobs()). A 1-core host still gets the 2-thread rung so
/// the pool and the oracle are exercised even where no speedup is possible.
std::vector<unsigned> jobs_ladder() {
  const unsigned hw = exp::hardware_jobs();
  std::vector<unsigned> ladder{1};
  for (unsigned j = 2; j < hw; j *= 2) ladder.push_back(j);
  if (hw > 1) ladder.push_back(hw);
  if (hw == 1) ladder.push_back(2);
  return ladder;
}

bool extract_number(const std::string& json, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_parallel.json";
  std::string check_path;
  double efficiency_floor = 0.45;
  bool quick = false;
  std::uint64_t num_seeds = 0;  // 0 = per-mode default below
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--efficiency-floor") == 0 && i + 1 < argc) {
      efficiency_floor = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      num_seeds = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::cerr << "usage: bench_parallel [--out PATH] [--quick] [--seeds N] "
                   "[--check BASELINE.json] [--efficiency-floor F]\n";
      return 2;
    }
  }
  if (num_seeds == 0) num_seeds = quick ? 16 : 32;

  // The standard fuzz corpus: seed-derived scenarios, no forced options —
  // exactly what `fuzz_check --seeds N` runs.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= num_seeds; ++s) seeds.push_back(s);
  const check::RunOptions opts;

  const unsigned hw = exp::hardware_jobs();
  const std::vector<unsigned> ladder = jobs_ladder();

  // Sequential reference: fingerprints every rung must reproduce exactly.
  std::vector<std::string> reference;
  {
    const std::vector<check::SeedOutcome> outcomes =
        check::run_corpus(seeds, opts, /*jobs=*/1);
    reference.reserve(outcomes.size());
    for (const check::SeedOutcome& o : outcomes) {
      if (o.crashed) {
        std::cerr << "corpus seed 0x" << std::hex << o.seed << std::dec
                  << " crashed: " << o.crash_what << "\n";
        return 1;
      }
      reference.push_back(outcome_fingerprint(o));
    }
  }

  stats::TablePrinter table(
      {"jobs", "wall_ms", "scen_per_sec", "speedup", "efficiency", "oracle"});
  std::vector<Rung> rungs;
  bool oracle_ok = true;
  for (unsigned jobs : ladder) {
    Rung r;
    r.jobs = jobs;
    double best_wall_s = 0.0;
    for (int rep = 0; rep < (quick ? 2 : kReps); ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const std::vector<check::SeedOutcome> outcomes =
          check::run_corpus(seeds, opts, jobs);
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (best_wall_s == 0.0 || wall_s < best_wall_s) best_wall_s = wall_s;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcome_fingerprint(outcomes[i]) != reference[i]) {
          std::cerr << "ORACLE FAILURE: seed 0x" << std::hex << seeds[i]
                    << std::dec << " diverges from the sequential run at "
                    << jobs << " jobs\n";
          oracle_ok = false;
        }
      }
    }
    r.wall_ms = best_wall_s * 1e3;
    r.scenarios_per_sec =
        best_wall_s > 0.0 ? static_cast<double>(seeds.size()) / best_wall_s : 0.0;
    if (!rungs.empty() && r.wall_ms > 0.0)
      r.speedup = rungs.front().wall_ms / r.wall_ms;
    r.efficiency = r.speedup / static_cast<double>(std::min(jobs, hw));
    rungs.push_back(r);
    table.add_row({std::to_string(r.jobs),
                   stats::TablePrinter::fmt(r.wall_ms, 1),
                   stats::TablePrinter::fmt(r.scenarios_per_sec, 1),
                   stats::TablePrinter::fmt(r.speedup, 2),
                   stats::TablePrinter::fmt(r.efficiency, 2),
                   oracle_ok ? "ok" : "FAIL"});
  }
  table.print();

  const Rung& top = rungs.back();
  std::cout << "corpus " << seeds.size() << " seeds, " << hw
            << " hardware threads: " << top.speedup << "x at " << top.jobs
            << " jobs (efficiency " << top.efficiency << "), oracle "
            << (oracle_ok ? "bit-identical" : "FAILED") << "\n";
  if (!oracle_ok) return 1;

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("bench_parallel");
  w.key("corpus_seeds").value(static_cast<std::uint64_t>(seeds.size()));
  w.key("start_seed").value(std::uint64_t{1});
  w.key("hardware_threads").value(hw);
  w.key("reps").value(quick ? 2 : kReps);
  w.key("oracle_bit_identical").value(oracle_ok);
  w.key("runs").begin_array();
  for (const Rung& r : rungs) {
    w.begin_object()
        .key("jobs").value(r.jobs)
        .key("wall_ms").value(r.wall_ms)
        .key("scenarios_per_sec").value(r.scenarios_per_sec)
        .key("speedup").value(r.speedup)
        .key("efficiency").value(r.efficiency)
        .end_object();
  }
  w.end_array();
  w.key("max_jobs").value(top.jobs);
  w.key("speedup_at_max").value(top.speedup);
  w.key("efficiency_at_max").value(top.efficiency);
  w.end_object();

  if (!check_path.empty()) {
    // Scaling-curve gate. The committed artifact may come from a machine
    // with a different core count, so the gate is normalized, not absolute:
    // (1) the baseline must be a complete bench_parallel artifact, (2) this
    // machine's top-rung efficiency must clear the floor (0.45 ⇒ an 8-core
    // host runs the corpus >= ~4x faster than --jobs 1), and (3) the
    // equivalence oracle must have held at every rung (checked above).
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    double base_sps = 0.0;
    if (!extract_number(ss.str(), "scenarios_per_sec", &base_sps)) {
      std::cerr << "baseline has no scenarios_per_sec\n";
      return 1;
    }
    std::cout << "scaling gate: efficiency " << top.efficiency << " at "
              << top.jobs << " jobs (floor " << efficiency_floor
              << "), committed reference " << base_sps
              << " scenarios/sec at 1 job\n";
    if (top.efficiency < efficiency_floor) {
      std::cerr << "FAIL: parallel efficiency fell below " << efficiency_floor
                << " — the fan-out is no longer scaling\n";
      return 1;
    }
    std::cout << "gate OK\n";
    return 0;  // check mode does not rewrite the committed artifact
  }

  if (!obs::write_json_file(out_path, w.str())) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
