// Reproduces Fig. 11(b): FlowValve fair queueing at the 40GbE line rate.
// Four apps (4 TCP connections each) join at 0/10/20/30 s; active apps share
// the link equally and the total tracks line rate.
#include <cstdio>
#include <cstdlib>

#include "exp/scenarios.h"
#include "stats/series_export.h"

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("=== Fig. 11(b): FlowValve 40G fair queueing ===\n");
  std::printf("seed=%llu, 4 TCP connections per app\n\n",
              static_cast<unsigned long long>(seed));
  auto r = exp::run_fig11b_fair_queueing(seed);

  std::printf("%s\n", r.table(sim::seconds(5)).c_str());
  std::printf("%s\n", r.ascii_chart(sim::Rate::gigabits_per_sec(40)).c_str());

  std::printf("Checkpoints (expected equal shares among active apps):\n");
  std::printf("  0-10s : App0 %5.2f Gbps (~40, line rate alone)\n",
              r.mean_rate("App0", 3, 10).gbps());
  std::printf("  10-20s: App0 %5.2f  App1 %5.2f (~20/20)\n",
              r.mean_rate("App0", 13, 20).gbps(), r.mean_rate("App1", 13, 20).gbps());
  std::printf("  20-30s: App0 %5.2f  App1 %5.2f  App2 %5.2f (~13.3 each)\n",
              r.mean_rate("App0", 23, 30).gbps(), r.mean_rate("App1", 23, 30).gbps(),
              r.mean_rate("App2", 23, 30).gbps());
  std::printf("  30-40s: App0 %5.2f  App1 %5.2f  App2 %5.2f  App3 %5.2f (~10 each)\n",
              r.mean_rate("App0", 33, 40).gbps(), r.mean_rate("App1", 33, 40).gbps(),
              r.mean_rate("App2", 33, 40).gbps(), r.mean_rate("App3", 33, 40).gbps());
  std::printf("  total 33-40s: %5.2f Gbps (line rate)\n", r.total_rate(33, 40).gbps());
  std::printf("  host CPU cores consumed by scheduling: %.2f (offloaded)\n",
              r.host_cores_used);
  if (argc > 2) {
    // argv[2]: CSV output path with the full 100 ms-binned series.
    if (stats::write_series_csv(argv[2], r.named_series(), r.horizon))
      std::printf("\nwrote %s\n", argv[2]);
  }
  return 0;
}
