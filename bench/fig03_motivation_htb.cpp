// Reproduces Fig. 3: Linux traffic control (HTB with kernel artifacts) fails
// to enforce the motivation-example policy on a 10 Gbps ceiling:
//   1. NC cannot reach the policy rate even alone (sender-core + qdisc-lock
//      costs cap a single flow below 10G);
//   2. the 10G root ceiling measures ≈12G on the wire (rate-table
//      undercharging);
//   3. the KVS/ML priority is ignored — they split bandwidth equally
//      (priority-blind DRR borrowing under contention).
#include <cstdio>
#include <cstdlib>

#include "exp/scenarios.h"
#include "stats/series_export.h"

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("=== Fig. 3: Linux HTB, motivation example @10G ceiling ===\n");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));
  auto r = exp::run_fig3_htb_motivation(seed);

  std::printf("%s\n", r.table(sim::seconds(5)).c_str());
  std::printf("%s\n", r.ascii_chart(sim::Rate::gigabits_per_sec(13)).c_str());

  std::printf("Misbehaviour checkpoints (paper's observations):\n");
  std::printf("  1. NC 5-15s : %6.2f Gbps  — below the 10G it should get alone\n",
              r.mean_rate("NC", 5, 15).gbps());
  std::printf("  2. total 20-42s: %6.2f Gbps — exceeds the 10G root ceiling (~12G)\n",
              r.total_rate(20, 42).gbps());
  std::printf("  3. KVS 20-30s: %5.2f vs ML 20-30s: %5.2f — equal despite KVS prio\n",
              r.mean_rate("KVS", 20, 30).gbps(), r.mean_rate("ML", 20, 30).gbps());
  std::printf("  host CPU cores consumed by stack+scheduling: %.2f\n",
              r.host_cores_used);
  if (argc > 2) {
    // argv[2]: CSV output path with the full 100 ms-binned series.
    if (stats::write_series_csv(argv[2], r.named_series(), r.horizon))
      std::printf("\nwrote %s\n", argv[2]);
  }
  return 0;
}
