// Reproduces Fig. 13: maximum throughput (Mpps) of FlowValve vs the DPDK
// QoS Scheduler when enforcing fair queueing over fixed-size frames at
// 40GbE, plus the CPU cores each consumes. Paper reference points:
// FlowValve 3.23 / 4.75 / 19.69 Mpps at 1518/1024/64 B with ~0 host cores;
// DPDK 2.25 Mpps on one core at 1518 B, 9.06 Mpps on four cores at 64 B.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/scenarios.h"
#include "stats/stats.h"

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("=== Fig. 13: maximum throughput, fair queueing @40GbE ===\n");
  std::printf("seed=%llu (cores column: host CPU consumed by the scheduler)\n\n",
              static_cast<unsigned long long>(seed));

  const std::vector<std::uint32_t> sizes = {64, 128, 256, 512, 1024, 1518};
  stats::TablePrinter tp({"size(B)", "line(Mpps)", "FlowValve(Mpps)", "FV cores",
                          "DPDK(Mpps)", "DPDK cores", "DPDK@8c(Mpps)"});
  for (std::uint32_t size : sizes) {
    const auto row = exp::run_fig13_row(size, seed);
    tp.add_row({std::to_string(size), stats::TablePrinter::fmt(row.line_mpps),
                stats::TablePrinter::fmt(row.fv_mpps),
                stats::TablePrinter::fmt(row.fv_host_cores),
                stats::TablePrinter::fmt(row.dpdk_mpps),
                std::to_string(row.dpdk_cores),
                stats::TablePrinter::fmt(row.dpdk_mpps_8core)});
  }
  tp.print();
  std::printf(
      "\nShape to check against the paper: FlowValve saturates the wire for\n"
      "large frames and peaks near ~20 Mpps at 64 B using no host cores; the\n"
      "DPDK QoS Scheduler needs ~1 core per 2.25 Mpps and still trails\n"
      "FlowValve at 64 B even with 8 cores.\n");
  return 0;
}
