// Reconfiguration sweep: live policy updates against a loaded FlowValve NP
// pipeline through the src/ctrl staged-rollout manager, across worker counts
// and update submission rates. Writes BENCH_reconfig.json with, per cell,
// the swap latency (submission → durable commit, probation included), the
// mixed-epoch window (packets scheduled against the old epoch while the
// rollout was in flight), and the coalescing/rollback counters.
//
// The "baseline" object is the honest pre-change comparison: the bare
// SchedulingTree::reconfigure() call the repo shipped before the control
// plane existed. It swaps the policy word in zero virtual time — and does no
// shadow validation, no epoch confinement, and has no rollback, so its
// latency row is a floor, not an alternative.
//
// CI's perf-smoke job re-runs the fixed-parameter gate cell with --check:
// virtual-time results are deterministic, so the committed gate value must
// reproduce within the tolerance.
//
// Usage: reconfig_sweep [--out PATH] [--quick] [--horizon-ms N] [--seed S]
//                       [--check BASELINE.json [--tolerance F]] [--jobs N]
//   --jobs N  fan sweep cells (baseline, staged grid, gate) across N threads
//             (0 = all host cores). Cells are independent virtual-time
//             simulations, so results are bit-identical at any job count;
//             they merge into the JSON/table in sweep order.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/flowvalve.h"
#include "ctrl/reconfig_manager.h"
#include "exp/parallel_runner.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/reconfig_tracker.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

namespace {

using namespace flowvalve;

constexpr std::uint32_t kFrameBytes = 1518;
constexpr unsigned kNumClasses = 4;

std::string flat_policy(sim::Rate link) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link.gbps() << "gbit\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv class add dev nic0 parent 1: classid 1:1" << i << " name C" << i
      << " weight 1\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv filter add dev nic0 pref " << (10 * (i + 1)) << " vf " << i
      << " classid 1:1" << i << "\n";
  return s.str();
}

struct CellResult {
  unsigned workers = 0;
  sim::SimDuration interval = 0;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t mixed_epoch_packets = 0;
  std::uint64_t forced_cutovers = 0;
  sim::SimDuration worst_swap_latency = 0;
  double delivered_gbps = 0.0;
};

/// One sweep cell: `workers` engines, an update submitted every `interval`
/// inside [0.25, 0.75] × horizon. With `staged` false the same updates go
/// through the bare reconfigure() call instead (the pre-control-plane
/// baseline: zero-latency, unvalidated, no rollback).
CellResult run_cell(unsigned workers, sim::SimDuration interval,
                    sim::SimTime horizon, std::uint64_t seed, bool staged) {
  np::NpConfig cfg = np::agilio_cx_40g();
  cfg.num_workers = workers;
  cfg.recovery.admission_enabled = true;

  sim::Simulator sim;
  core::FlowValveEngine engine(np::engine_options_for(cfg));
  if (std::string err = engine.configure(flat_policy(cfg.wire_rate));
      !err.empty()) {
    std::cerr << "policy configure failed: " << err << "\n";
    std::exit(1);
  }

  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(sim, cfg, processor);
  traffic::FlowRouter router(pipeline);
  traffic::IdAllocator ids;

  obs::ReconfigTracker tracker;
  std::unique_ptr<ctrl::ReconfigManager> mgr;
  if (staged)
    mgr = std::make_unique<ctrl::ReconfigManager>(sim, pipeline, engine,
                                                  &tracker);

  // The update stream toggles C0's weight between 2× and 0.5× — always
  // valid, and it genuinely moves shares so the swap has consequences.
  CellResult cell;
  cell.workers = workers;
  cell.interval = interval;
  const core::ClassId target = engine.tree().find("C0");
  auto submit = [&, flip = false]() mutable {
    const double weight = flip ? 0.5 : 2.0;
    flip = !flip;
    ++cell.submitted;
    if (staged) {
      ctrl::PolicyDelta d;
      d.class_name = "C0";
      d.weight = weight;
      ctrl::PolicyUpdate u;
      u.deltas.push_back(std::move(d));
      mgr->apply(u);
    } else {
      core::NodePolicy p = engine.tree().at(target).policy;
      p.weight = weight;
      engine.tree().reconfigure(target, p);
    }
  };
  for (sim::SimTime t = horizon / 4; t < horizon * 3 / 4; t += interval)
    sim.schedule_at(t, [&submit] { submit(); });

  const sim::Rate offered = cfg.wire_rate * 1.1;  // sustained mild overload
  const sim::Rng rng(seed);
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (unsigned i = 0; i < kNumClasses; ++i) {
    traffic::FlowSpec fs;
    fs.flow_id = ids.next_flow_id();
    fs.app_id = i;
    fs.vf_port = static_cast<std::uint16_t>(i);
    fs.wire_bytes = kFrameBytes;
    flows.push_back(std::make_unique<traffic::CbrFlow>(
        sim, router, ids, fs, offered / double(kNumClasses),
        rng.split("cbr").split(i), 0.05));
  }
  for (auto& f : flows) f->start();

  sim.run_until(horizon);
  for (auto& f : flows) f->stop();
  sim.run_all();  // drain, including any probation window still open

  const np::NicPipeline::Stats& nic = pipeline.stats();
  cell.delivered_gbps =
      static_cast<double>(nic.wire_bytes) * 8.0 / static_cast<double>(horizon);
  if (staged) {
    const ctrl::ReconfigManager::Stats& rs = mgr->stats();
    cell.committed = rs.committed;
    cell.rolled_back = rs.rolled_back;
    cell.coalesced = rs.coalesced;
    cell.mixed_epoch_packets = rs.mixed_epoch_packets;
    cell.forced_cutovers = rs.forced_cutovers;
    cell.worst_swap_latency = tracker.worst_swap_latency();
  }
  return cell;
}

void emit_cell(obs::JsonWriter& w, const CellResult& c) {
  w.begin_object()
      .key("workers").value(c.workers)
      .key("update_interval_ns").value(static_cast<std::int64_t>(c.interval))
      .key("submitted").value(c.submitted)
      .key("committed").value(c.committed)
      .key("rolled_back").value(c.rolled_back)
      .key("coalesced").value(c.coalesced)
      .key("mixed_epoch_packets").value(c.mixed_epoch_packets)
      .key("forced_cutovers").value(c.forced_cutovers)
      .key("worst_swap_latency_ns")
      .value(static_cast<std::int64_t>(c.worst_swap_latency))
      .key("delivered_gbps").value(c.delivered_gbps)
      .end_object();
}

bool extract_number(const std::string& json, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

// Fixed-parameter regression-gate cell; identical no matter which flags the
// artifact was generated with, so --check works against any committed file.
constexpr unsigned kGateWorkers = 16;
constexpr std::uint64_t kGateSeed = 0x5eedu;
CellResult run_gate_cell() {
  return run_cell(kGateWorkers, sim::milliseconds(8), sim::milliseconds(15),
                  kGateSeed, true);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_reconfig.json";
  std::string check_path;
  double tolerance = 0.10;
  bool quick = false;
  std::int64_t horizon_ms = 60;
  std::uint64_t seed = 0xc0f1u;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--horizon-ms") == 0 && i + 1 < argc) {
      horizon_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    } else {
      std::cerr << "usage: reconfig_sweep [--out PATH] [--quick] "
                   "[--horizon-ms N] [--seed S] "
                   "[--check BASELINE.json [--tolerance F]] [--jobs N]\n";
      return 2;
    }
  }

  if (!check_path.empty()) {
    // Regression gate: re-run only the fixed gate cell and compare against
    // the committed artifact. The run is virtual-time deterministic, so any
    // drift beyond the tolerance is a real behavior change in the rollout
    // machinery, not measurement noise.
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    double gate_latency = 0.0, gate_committed = 0.0;
    if (!extract_number(ss.str(), "gate_worst_swap_latency_ns", &gate_latency) ||
        !extract_number(ss.str(), "gate_committed", &gate_committed)) {
      std::cerr << "baseline has no gate_worst_swap_latency_ns/gate_committed\n";
      return 1;
    }
    const CellResult g = run_gate_cell();
    const double ceiling = gate_latency * (1.0 + tolerance);
    std::cout << "regression gate: measured swap latency "
              << static_cast<std::int64_t>(g.worst_swap_latency)
              << " ns vs committed " << gate_latency << " (ceiling " << ceiling
              << ", tolerance " << tolerance << "), committed updates "
              << g.committed << " vs " << gate_committed << "\n";
    if (static_cast<double>(g.worst_swap_latency) > ceiling ||
        static_cast<double>(g.committed) <
            gate_committed) {  // fewer commits ⇒ updates started failing
      std::cout << "REGRESSION: swap latency/commit count degraded against "
                   "the committed baseline\n";
      return 1;
    }
    std::cout << "gate OK\n";
    return 0;  // check mode does not rewrite the committed artifact
  }

  const sim::SimTime horizon = sim::milliseconds(quick ? 15 : horizon_ms);
  const unsigned worker_sweep[] = {8, 16, 50};
  const sim::SimDuration interval_sweep[] = {sim::milliseconds(8),
                                             sim::milliseconds(2)};

  stats::TablePrinter table({"workers", "interval_ms", "submitted", "committed",
                             "rolled_back", "coalesced", "mixed_epoch_pkts",
                             "swap_latency_ms", "delivered_gbps"});

  // Flatten every cell of the sweep — the baseline trio, the staged grid,
  // and the fixed gate cell — into one task list, fan it across the runner,
  // and emit in sweep order after the barrier.
  struct CellSpec {
    unsigned workers;
    sim::SimDuration interval;
    bool staged;
    bool gate;
  };
  std::vector<CellSpec> specs;
  for (unsigned workers : worker_sweep)
    specs.push_back({workers, sim::milliseconds(8), false, false});
  const std::size_t staged_begin = specs.size();
  for (unsigned workers : worker_sweep)
    for (sim::SimDuration interval : interval_sweep)
      specs.push_back({workers, interval, true, false});
  const std::size_t gate_index = specs.size();
  specs.push_back({kGateWorkers, sim::milliseconds(8), true, true});

  exp::ParallelRunner runner(jobs);
  auto cells = runner.map<CellResult>(specs.size(), [&](std::size_t i) {
    const CellSpec& s = specs[i];
    if (s.gate) return run_gate_cell();
    return run_cell(s.workers, s.interval, horizon, seed, s.staged);
  });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].ok()) {
      std::cerr << "reconfig cell " << i
                << " crashed: " << cells[i].failure->what << "\n";
      return 1;
    }
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("reconfig_sweep");
  w.key("frame_bytes").value(kFrameBytes);
  w.key("classes").value(kNumClasses);
  w.key("horizon_ns").value(static_cast<std::int64_t>(horizon));
  w.key("offered_load").value(1.1);
  w.key("seed").value(static_cast<std::int64_t>(seed));

  w.key("baseline").begin_object();
  w.key("mechanism").value("bare SchedulingTree::reconfigure()");
  w.key("note").value(
      "pre-control-plane comparison: swaps the policy word in zero virtual "
      "time but performs no shadow validation, no epoch-confined rollout, "
      "and has no rollback — a latency floor, not an alternative");
  w.key("swap_latency_ns").value(0);
  w.key("runs").begin_array();
  for (std::size_t i = 0; i < staged_begin; ++i)
    emit_cell(w, *cells[i].result);
  w.end_array();
  w.end_object();

  w.key("runs").begin_array();
  for (std::size_t i = staged_begin; i < gate_index; ++i) {
    const CellResult& c = *cells[i].result;
    emit_cell(w, c);
    table.add_row(
        {std::to_string(c.workers),
         stats::TablePrinter::fmt(double(c.interval) / 1e6, 0),
         std::to_string(c.submitted), std::to_string(c.committed),
         std::to_string(c.rolled_back), std::to_string(c.coalesced),
         std::to_string(c.mixed_epoch_packets),
         stats::TablePrinter::fmt(double(c.worst_swap_latency) / 1e6, 2),
         stats::TablePrinter::fmt(c.delivered_gbps, 2)});
  }
  w.end_array();

  const CellResult gate = *cells[gate_index].result;
  w.key("gate").begin_object()
      .key("workers").value(kGateWorkers)
      .key("update_interval_ns")
      .value(static_cast<std::int64_t>(sim::milliseconds(8)))
      .key("horizon_ns").value(static_cast<std::int64_t>(sim::milliseconds(15)))
      .key("seed").value(static_cast<std::int64_t>(kGateSeed))
      .end_object();
  w.key("gate_worst_swap_latency_ns")
      .value(static_cast<std::int64_t>(gate.worst_swap_latency));
  w.key("gate_committed").value(gate.committed);
  w.end_object();

  table.print();
  if (!obs::write_json_file(out_path, w.str())) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
