// Simulation-core wall-clock bench: measures events/sec and simulated
// packets/sec of the event kernel on two scenarios, on both scheduler
// backends, and writes BENCH_simcore.json — the committed regression
// baseline for the hot-path overhaul (event pool + timing wheel + ring
// buffers). CI's perf-smoke job reruns it with --check against the
// committed artifact and fails on a >20% events/sec regression.
//
// Scenarios:
//   kernel_storm    — 256 self-rearming timers with pointer-sized closures;
//                     isolates the scheduler kernel (no pipeline).
//   bench_pipeline  — the flat-policy NP pipeline point from bench_pipeline
//                     (50 workers, load 0.8, four CBR flows, 40 ms horizon);
//                     the kernel plus the full per-packet domain logic.
//
// Each (scenario, scheduler) cell runs one discarded warmup plus --reps
// timed repetitions and reports the BEST events/sec (the least-interference
// estimate on a noisy host) alongside the median. The pre-change heap
// baseline constants below were measured on the same host from a worktree
// of the pre-overhaul tree (std::function + shared_ptr<bool> kernel,
// std::map reorder window, std::deque rings) with identical scenario code,
// the same CMake Release build, and best-of-3x3 interleaved rounds.
//
// Usage: bench_simcore [--out PATH] [--quick] [--reps N]
//                      [--check BASELINE.json [--tolerance F]]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/flowvalve.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "traffic/generators.h"

namespace {

using namespace flowvalve;

// Pre-change heap kernel, best-of-4 interleaved with the post-change build
// (see file header). Conservative: the BEST observed baseline rep is used,
// so the recorded speedup is a floor, not an average.
constexpr double kPrechangeStormEps = 1.069e7;
constexpr double kPrechangePipelineEps = 5.574e6;
constexpr double kTargetSpeedup = 3.0;

double wall_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t packets = 0;
  double best_eps = 0.0;    // events per second, best rep
  double median_eps = 0.0;  // events per second, median rep
  double best_pps = 0.0;    // delivered packets per second, best rep
};

// ---------------------------------------------------------------- storm ----

// Self-rearming timer whose closure captures a single pointer: the smallest
// realistic event, so the measurement is the kernel and nothing else.
struct StormTimer {
  sim::Simulator* sim;
  std::uint64_t* lcg;
  std::uint64_t limit;
  void fire() {
    if (sim->events_executed() < limit) {
      *lcg = *lcg * 6364136223846793005ull + 1442695040888963407ull;
      sim->schedule_after(
          1 + static_cast<sim::SimDuration>((*lcg >> 33) % 1000),
          [this] { fire(); });
    }
  }
};

double storm_once(sim::SchedulerKind kind, std::uint64_t limit,
                  std::uint64_t* events_out) {
  sim::Simulator sim(kind);
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  std::vector<StormTimer> timers(256);
  for (auto& t : timers) t = StormTimer{&sim, &lcg, limit};
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& t : timers) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    sim.schedule_after(1 + static_cast<sim::SimDuration>((lcg >> 33) % 1000),
                       [&t] { t.fire(); });
  }
  sim.run_all();
  const double ms = wall_ms(t0);
  *events_out = sim.events_executed();
  return static_cast<double>(sim.events_executed()) / (ms / 1e3);
}

// ------------------------------------------------------------- pipeline ----

std::string flat_policy(sim::Rate link) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link.gbps()
    << "gbit\n";
  for (unsigned i = 0; i < 4; ++i)
    s << "fv class add dev nic0 parent 1: classid 1:1" << i << " name C" << i
      << " weight 1\n";
  for (unsigned i = 0; i < 4; ++i)
    s << "fv filter add dev nic0 pref " << (10 * (i + 1)) << " vf " << i
      << " classid 1:1" << i << "\n";
  return s.str();
}

double pipeline_once(sim::SchedulerKind kind, sim::SimTime horizon,
                     std::uint64_t* events_out, std::uint64_t* packets_out,
                     double* pps_out) {
  np::NpConfig cfg = np::agilio_cx_40g();
  cfg.num_workers = 50;
  // This bench measures EVENT KERNEL throughput, so the workload must stay
  // one-event-per-packet; the batched data path (batch_size > 1) collapses
  // events ~20x and would turn this into a (much lighter) pipeline bench.
  cfg.batch_size = 1;
  sim::Simulator sim(kind);
  core::FlowValveEngine engine(np::engine_options_for(cfg));
  if (std::string err = engine.configure(flat_policy(cfg.wire_rate));
      !err.empty()) {
    std::cerr << "policy configure failed: " << err << "\n";
    std::exit(1);
  }
  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(sim, cfg, processor);
  traffic::FlowRouter router(pipeline);
  traffic::IdAllocator ids;
  const sim::Rate offered = cfg.wire_rate * 0.8;
  const sim::Rng rng(0xb13cu ^ 50u);
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (unsigned i = 0; i < 4; ++i) {
    traffic::FlowSpec fs;
    fs.flow_id = ids.next_flow_id();
    fs.app_id = i;
    fs.vf_port = static_cast<std::uint16_t>(i);
    fs.wire_bytes = 1518;
    flows.push_back(std::make_unique<traffic::CbrFlow>(
        sim, router, ids, fs, offered / 4.0, rng.split("cbr").split(i), 0.05));
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& f : flows) f->start();
  sim.run_until(horizon);
  for (auto& f : flows) f->stop();
  sim.run_all();
  const double ms = wall_ms(t0);
  *events_out = sim.events_executed();
  *packets_out = pipeline.stats().forwarded_to_wire;
  *pps_out = static_cast<double>(*packets_out) / (ms / 1e3);
  return static_cast<double>(sim.events_executed()) / (ms / 1e3);
}

// ------------------------------------------------------- reorder window ----

// Map-vs-ring micro comparison: replays the sliding-window access pattern
// (out-of-order commit within a worker-pool-sized window, then in-order
// release) against the pre-change std::map representation and the
// post-change power-of-two ring. Pure data-structure cost, no simulator.
struct MicroPkt {
  std::uint64_t seq;
  unsigned char payload[88];
};

double reorder_map_ops_per_sec(std::uint64_t ops) {
  std::map<std::uint64_t, std::optional<MicroPkt>> window;
  std::uint64_t next_release = 0, committed = 0, lcg = 12345;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (committed < ops) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t seq = committed + (lcg >> 33) % 8;  // jitter <= window
    if (window.find(seq) == window.end() && seq >= next_release)
      window[seq] = MicroPkt{seq, {}};
    ++committed;
    for (auto it = window.begin();
         it != window.end() && it->first == next_release;
         it = window.erase(it), ++next_release)
      if (it->second) sink += it->second->seq;
  }
  const double ms = wall_ms(t0);
  if (sink == 0xdeadbeef) std::cerr << "";  // defeat dead-code elimination
  return static_cast<double>(ops) / (ms / 1e3);
}

double reorder_ring_ops_per_sec(std::uint64_t ops) {
  struct Slot {
    enum class St : unsigned char { kEmpty, kPacket } st = St::kEmpty;
    MicroPkt pkt{};
  };
  std::vector<Slot> ring(64);
  const std::uint64_t mask = ring.size() - 1;
  std::uint64_t next_release = 0, committed = 0, lcg = 12345;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (committed < ops) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t seq = committed + (lcg >> 33) % 8;
    Slot& s = ring[seq & mask];
    if (s.st == Slot::St::kEmpty && seq >= next_release) {
      s.st = Slot::St::kPacket;
      s.pkt = MicroPkt{seq, {}};
    }
    ++committed;
    for (Slot* r = &ring[next_release & mask]; r->st == Slot::St::kPacket;
         r = &ring[next_release & mask]) {
      sink += r->pkt.seq;
      r->st = Slot::St::kEmpty;
      ++next_release;
    }
  }
  const double ms = wall_ms(t0);
  if (sink == 0xdeadbeef) std::cerr << "";
  return static_cast<double>(ops) / (ms / 1e3);
}

// ------------------------------------------------------------ harness ------

template <class RunFn>
RunResult repeat(unsigned reps, RunFn run) {
  RunResult r;
  std::vector<double> eps;
  run(&r);  // warmup, discarded
  for (unsigned i = 0; i < reps; ++i) {
    RunResult rep;
    eps.push_back(run(&rep));
    if (eps.back() >= r.best_eps) {
      r.best_eps = eps.back();
      r.best_pps = rep.best_pps;
    }
    r.events = rep.events;
    r.packets = rep.packets;
  }
  std::sort(eps.begin(), eps.end());
  r.median_eps = eps[eps.size() / 2];
  return r;
}

void emit_run(obs::JsonWriter& w, const char* scenario, const char* scheduler,
              const RunResult& r, unsigned reps) {
  w.begin_object()
      .key("scenario").value(scenario)
      .key("scheduler").value(scheduler)
      .key("reps").value(reps)
      .key("events").value(r.events)
      .key("packets").value(r.packets)
      .key("best_events_per_sec").value(r.best_eps)
      .key("median_events_per_sec").value(r.median_eps)
      .key("best_pkts_per_sec").value(r.best_pps)
      .end_object();
}

/// Extract `"key": <number>` from a JSON string (flat scan; enough for the
/// emitter's own compact output — there is no JSON parser in the repo).
bool extract_number(const std::string& json, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_simcore.json";
  std::string check_path;
  double tolerance = 0.20;
  bool quick = false;
  unsigned reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::cerr << "usage: bench_simcore [--out PATH] [--quick] [--reps N] "
                   "[--check BASELINE.json [--tolerance F]]\n";
      return 2;
    }
  }
  if (quick && reps == 5) reps = 3;
  reps = std::max(1u, reps);
  const std::uint64_t storm_limit = quick ? 500'000 : 2'000'000;
  const sim::SimTime horizon = sim::milliseconds(quick ? 10 : 40);
  const std::uint64_t micro_ops = quick ? 2'000'000 : 10'000'000;

  struct Cell {
    const char* scenario;
    sim::SchedulerKind kind;
    RunResult result;
  };
  std::vector<Cell> cells = {
      {"kernel_storm", sim::SchedulerKind::kHeap, {}},
      {"kernel_storm", sim::SchedulerKind::kWheel, {}},
      {"bench_pipeline", sim::SchedulerKind::kHeap, {}},
      {"bench_pipeline", sim::SchedulerKind::kWheel, {}},
  };
  for (Cell& c : cells) {
    if (std::strcmp(c.scenario, "kernel_storm") == 0) {
      c.result = repeat(reps, [&](RunResult* r) {
        return storm_once(c.kind, storm_limit, &r->events);
      });
    } else {
      c.result = repeat(reps, [&](RunResult* r) {
        return pipeline_once(c.kind, horizon, &r->events, &r->packets,
                             &r->best_pps);
      });
    }
    std::cout << c.scenario << " scheduler=" << scheduler_kind_name(c.kind)
              << " events=" << c.result.events
              << " best_eps=" << c.result.best_eps
              << " median_eps=" << c.result.median_eps << "\n";
  }
  // Same-binary sanity: the two backends must replay identical scenarios.
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    if (cells[i].result.events != cells[i + 1].result.events ||
        cells[i].result.packets != cells[i + 1].result.packets) {
      std::cerr << "determinism violation: heap and wheel disagree on "
                << cells[i].scenario << "\n";
      return 1;
    }
  }

  const double map_ops = reorder_map_ops_per_sec(micro_ops);
  const double ring_ops = reorder_ring_ops_per_sec(micro_ops);
  std::cout << "reorder_window map_ops_per_sec=" << map_ops
            << " ring_ops_per_sec=" << ring_ops << "\n";

  const RunResult& storm_wheel = cells[1].result;
  const RunResult& pipe_heap = cells[2].result;
  const RunResult& pipe_wheel = cells[3].result;
  const double storm_speedup = storm_wheel.best_eps / kPrechangeStormEps;
  const double pipe_speedup = pipe_wheel.best_eps / kPrechangePipelineEps;
  std::cout << "speedup_vs_prechange storm=" << storm_speedup
            << " bench_pipeline=" << pipe_speedup
            << " (target " << kTargetSpeedup << ")\n";

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    double gate = 0.0;
    if (!extract_number(ss.str(), "gate_events_per_sec", &gate)) {
      std::cerr << "baseline has no gate_events_per_sec\n";
      return 1;
    }
    const double floor = gate * (1.0 - tolerance);
    std::cout << "regression gate: measured " << pipe_wheel.best_eps
              << " events/sec vs committed " << gate << " (floor " << floor
              << ", tolerance " << tolerance << ")\n";
    if (pipe_wheel.best_eps < floor) {
      std::cerr << "FAIL: bench_pipeline events/sec regressed more than "
                << (tolerance * 100) << "% against the committed baseline\n";
      return 1;
    }
    std::cout << "gate OK\n";
    return 0;  // check mode does not rewrite the committed artifact
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("bench_simcore");
  w.key("quick").value(quick);
  w.key("reps").value(reps);
  w.key("storm_event_limit").value(storm_limit);
  w.key("pipeline_horizon_ns").value(static_cast<std::int64_t>(horizon));
  w.key("prechange_baseline").begin_object()
      .key("note")
      .value("heap kernel of the pre-overhaul tree (std::function + "
             "shared_ptr<bool> events, std::map reorder window, std::deque "
             "rings), identical scenario code and CMake Release build on "
             "the same host, best of 3x3 interleaved rounds")
      .key("kernel_storm_events_per_sec").value(kPrechangeStormEps)
      .key("bench_pipeline_events_per_sec").value(kPrechangePipelineEps)
      .end_object();
  w.key("runs").begin_array();
  for (const Cell& c : cells)
    emit_run(w, c.scenario, scheduler_kind_name(c.kind), c.result, reps);
  w.end_array();
  w.key("reorder_window").begin_object()
      .key("ops").value(micro_ops)
      .key("map_ops_per_sec").value(map_ops)
      .key("ring_ops_per_sec").value(ring_ops)
      .key("ring_vs_map_speedup").value(ring_ops / map_ops)
      .end_object();
  w.key("speedup").begin_object()
      .key("target_vs_prechange").value(kTargetSpeedup)
      .key("kernel_storm_wheel_vs_prechange").value(storm_speedup)
      .key("bench_pipeline_wheel_vs_prechange").value(pipe_speedup)
      .key("kernel_storm_wheel_vs_heap")
      .value(storm_wheel.best_eps / cells[0].result.best_eps)
      .key("bench_pipeline_wheel_vs_heap")
      .value(pipe_wheel.best_eps / pipe_heap.best_eps)
      .end_object();
  w.key("gate_events_per_sec").value(pipe_wheel.best_eps);
  w.end_object();

  if (!obs::write_json_file(out_path, w.str())) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
