// Pipeline observability bench: sweeps workers × offered load × policy tree
// × worker batch size over the FlowValve NP pipeline and writes
// BENCH_pipeline.json — per-stage latency percentiles (vf_wait / service /
// reorder_hold / tx_wait / wire_fixed / total), per-class windowed
// throughput, wall-clock packets/sec, and the full counter snapshot for
// every run. The committed artifact is the regression baseline both for the
// pipeline's latency decomposition and for its wall-clock throughput
// (gate_pkts_per_sec); CI's perf-smoke job reruns a reduced sweep with
// --quick --check on every push.
//
// Usage: bench_pipeline [--out PATH] [--quick] [--horizon-ms N]
//                       [--check BASELINE.json [--tolerance F]] [--jobs N]
//   --jobs N  fan sweep points across N threads (0 = all host cores).
//             Defaults to 1: this bench gates on WALL-CLOCK pkts/sec, and
//             concurrent cells contend for cores, deflating every sample.
//             Use >1 only for exploratory sweeps where relative shape,
//             not the absolute gate number, is what matters. Simulation
//             counters/latency percentiles are virtual-time and stay
//             bit-identical at any job count; output merges in sweep order.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/flowvalve.h"
#include "exp/parallel_runner.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics_hub.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

namespace {

using namespace flowvalve;

constexpr std::uint32_t kFrameBytes = 1518;
constexpr unsigned kNumClasses = 4;

/// Sender-side segmentation burst (TSO/GSO): each CBR flow emits this many
/// back-to-back frames per generation event. This is what an NP-based NIC
/// actually receives from offload-enabled hosts, and it is the arrival
/// shape under which worker-burst pulls engage.
constexpr unsigned kSenderClump = 16;

/// Wall-clock pkts/sec of the unbatched (one event per packet) pipeline on
/// the gate cell (workers=8, load=1.3, flat policy, clump 16, 20 ms
/// horizon — worker-limited, so the data path and not the wire is the
/// bottleneck), measured on the commit immediately before the batched data
/// path landed. Best observation from ten runs interleaved with the
/// batched build on the same machine — the strictest baseline the
/// pre-change code produced. The batched configuration is accepted only at
/// >= 2x this figure.
constexpr double kPrechangeUnbatchedPps = 2.64e6;

/// Wall-clock repetitions for the gate-relevant cells. Single wall-clock
/// samples on a shared machine scatter ~±25%; best-of-N pins the gate and
/// the speedup figure to the machine's actual capability.
constexpr int kGateReps = 3;

/// Four equal leaves directly under the root.
std::string flat_policy(sim::Rate link) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link.gbps() << "gbit\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv class add dev nic0 parent 1: classid 1:1" << i << " name C" << i
      << " weight 1\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv filter add dev nic0 pref " << (10 * (i + 1)) << " vf " << i
      << " classid 1:1" << i << "\n";
  return s.str();
}

/// Two inner classes (2:1) with two leaves each — exercises borrowing and
/// multi-level share propagation.
std::string tiered_policy(sim::Rate link) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link.gbps() << "gbit\n";
  s << "fv class add dev nic0 parent 1: classid 1:1 name S1 weight 2\n";
  s << "fv class add dev nic0 parent 1: classid 1:2 name S2 weight 1\n";
  s << "fv class add dev nic0 parent 1:1 classid 1:10 name C0 weight 1\n";
  s << "fv class add dev nic0 parent 1:1 classid 1:11 name C1 weight 1\n";
  s << "fv class add dev nic0 parent 1:2 classid 1:20 name C2 weight 2\n";
  s << "fv class add dev nic0 parent 1:2 classid 1:21 name C3 weight 1\n";
  s << "fv filter add dev nic0 pref 10 vf 0 classid 1:10\n";
  s << "fv filter add dev nic0 pref 20 vf 1 classid 1:11\n";
  s << "fv filter add dev nic0 pref 30 vf 2 classid 1:20\n";
  s << "fv filter add dev nic0 pref 40 vf 3 classid 1:21\n";
  return s.str();
}

struct RunSpec {
  unsigned workers = 50;
  double load = 0.8;          // offered / wire rate
  std::string policy_name;    // "flat" | "tiered"
  unsigned batch = 32;        // NpConfig::batch_size
};

struct PointResult {
  double pkts_per_sec = 0.0;  // worker-processed packets / wall second
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  std::string json;               // the point's complete "runs" entry
  std::vector<std::string> row;   // its table row
};

/// Run one sweep point; renders its JSON/table output locally so points can
/// run on any thread and still merge in deterministic sweep order.
PointResult run_point(const RunSpec& spec, sim::SimTime horizon) {
  np::NpConfig cfg = np::agilio_cx_40g();
  cfg.num_workers = spec.workers;
  cfg.batch_size = spec.batch;

  sim::Simulator sim;
  core::FlowValveEngine engine(np::engine_options_for(cfg));
  const std::string script = spec.policy_name == "flat"
                                 ? flat_policy(cfg.wire_rate)
                                 : tiered_policy(cfg.wire_rate);
  if (std::string err = engine.configure(script); !err.empty()) {
    std::cerr << "policy configure failed: " << err << "\n";
    std::exit(1);
  }

  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(sim, cfg, processor);
  traffic::FlowRouter router(pipeline);
  traffic::IdAllocator ids;

  obs::MetricsHub hub(sim, pipeline, {.window = horizon / 10});
  hub.attach_engine(engine);
  hub.start();

  const sim::Rate offered = cfg.wire_rate * spec.load;
  const sim::Rng rng(0xb13cu ^ spec.workers);
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (unsigned i = 0; i < kNumClasses; ++i) {
    traffic::FlowSpec fs;
    fs.flow_id = ids.next_flow_id();
    fs.app_id = i;
    fs.vf_port = static_cast<std::uint16_t>(i);
    fs.wire_bytes = kFrameBytes;
    flows.push_back(std::make_unique<traffic::CbrFlow>(
        sim, router, ids, fs, offered / double(kNumClasses),
        rng.split("cbr").split(i), 0.05, kSenderClump));
  }
  for (auto& f : flows) f->start();

  const auto wall_start = std::chrono::steady_clock::now();
  sim.run_until(horizon);
  for (auto& f : flows) f->stop();
  hub.stop_sampling();
  sim.run_all();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const obs::CounterSnapshot snap = hub.snapshot();
  PointResult res;
  res.wall_ms = wall_s * 1e3;
  res.pkts_per_sec =
      wall_s > 0.0 ? static_cast<double>(snap.nic.processed) / wall_s : 0.0;
  res.events = sim.events_executed();

  obs::JsonWriter w;
  w.begin_object()
      .key("workers").value(spec.workers)
      .key("load").value(spec.load)
      .key("policy").value(spec.policy_name)
      .key("batch").value(spec.batch)
      .key("offered_gbps").value(offered.gbps())
      .key("wall_ms").value(res.wall_ms)
      .key("pkts_per_sec").value(res.pkts_per_sec)
      .key("events").value(res.events);
  w.key("counters");
  obs::snapshot_json(w, snap);
  w.key("latency");
  obs::latency_json(w, hub.latency());
  w.key("throughput");
  obs::throughput_json(w, hub.throughput());
  w.end_object();
  res.json = w.str();

  const auto& total = hub.latency().segment(obs::Segment::kTotal);
  const double delivered_gbps =
      static_cast<double>(snap.nic.wire_bytes) * 8.0 /
      static_cast<double>(horizon);
  const std::uint64_t drops = snap.nic.vf_ring_drops + snap.nic.scheduler_drops +
                              snap.nic.tx_ring_drops +
                              snap.nic.reorder_flush_drops;
  res.row = {std::to_string(spec.workers),
             stats::TablePrinter::fmt(spec.load, 1), spec.policy_name,
             std::to_string(spec.batch),
             stats::TablePrinter::fmt(offered.gbps(), 1),
             stats::TablePrinter::fmt(delivered_gbps, 2),
             stats::TablePrinter::fmt(snap.worker_utilization, 3),
             stats::TablePrinter::fmt(double(total.p50()) / 1e3, 1),
             stats::TablePrinter::fmt(double(total.p99()) / 1e3, 1),
             std::to_string(drops),
             stats::TablePrinter::fmt(res.pkts_per_sec / 1e6, 2)};
  return res;
}

/// Extract `"key": <number>` from a JSON string (flat scan; enough for the
/// emitter's own compact output — there is no JSON parser in the repo).
bool extract_number(const std::string& json, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pipeline.json";
  std::string check_path;
  double tolerance = 0.30;
  bool quick = false;
  std::int64_t horizon_ms = 20;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--horizon-ms") == 0 && i + 1 < argc) {
      horizon_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    } else {
      std::cerr << "usage: bench_pipeline [--out PATH] [--quick] "
                   "[--horizon-ms N] [--check BASELINE.json [--tolerance F]] "
                   "[--jobs N]\n";
      return 2;
    }
  }

  const std::vector<unsigned> workers = quick ? std::vector<unsigned>{8}
                                              : std::vector<unsigned>{8, 50};
  const std::vector<double> loads = quick ? std::vector<double>{0.4, 1.3}
                                          : std::vector<double>{0.4, 0.8, 1.3};
  const std::vector<std::string> policies =
      quick ? std::vector<std::string>{"flat"}
            : std::vector<std::string>{"flat", "tiered"};
  const std::vector<unsigned> batches = quick ? std::vector<unsigned>{1, 32}
                                             : std::vector<unsigned>{1, 8, 32};
  const sim::SimTime horizon = sim::milliseconds(quick ? 5 : horizon_ms);

  stats::TablePrinter table({"workers", "load", "policy", "batch",
                             "offered_gbps", "delivered_gbps", "util",
                             "p50_us", "p99_us", "drops", "mpps_wall"});

  // The wall-clock gate cell: saturated flat policy on the small worker
  // pool at the largest batch — worker-limited (8 workers process ~3.1
  // Mpps in sim time against 4.3 Mpps offered), so bursts actually form
  // and the measurement exercises the batched data path rather than the
  // wire drain. Present in both the full and --quick sweeps, so the
  // committed gate number and the CI measurement match.
  const unsigned gate_batch = batches.back();
  double gate_pps = 0.0;
  double unbatched_pps = 0.0;

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("bench_pipeline");
  w.key("frame_bytes").value(kFrameBytes);
  w.key("classes").value(kNumClasses);
  w.key("horizon_ns").value(static_cast<std::int64_t>(horizon));
  w.key("link_gbps").value(np::agilio_cx_40g().wire_rate.gbps());
  // Flatten the sweep — every (spec, rep) pair is one task — then fan the
  // list across the runner and merge JSON/table/best-of-N in sweep order
  // after the barrier, so output matches a sequential run exactly.
  struct PointTask {
    RunSpec spec;
    bool gate_cell = false;
  };
  std::vector<PointTask> tasks;
  for (unsigned nw : workers)
    for (double load : loads)
      for (const std::string& policy : policies)
        for (unsigned batch : batches) {
          const bool gate_cell = nw == 8 && load == 1.3 && policy == "flat" &&
                                 (batch == gate_batch || batch == 1);
          const int reps = gate_cell ? kGateReps : 1;
          for (int rep = 0; rep < reps; ++rep)
            tasks.push_back({{nw, load, policy, batch}, gate_cell});
        }

  exp::ParallelRunner runner(jobs);
  auto points = runner.map<PointResult>(tasks.size(), [&](std::size_t i) {
    return run_point(tasks[i].spec, horizon);
  });

  w.key("runs").begin_array();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].ok()) {
      std::cerr << "sweep point " << i
                << " crashed: " << points[i].failure->what << "\n";
      return 1;
    }
    const PointResult& r = *points[i].result;
    w.raw_value(r.json);
    table.add_row(r.row);
    if (tasks[i].gate_cell) {
      if (tasks[i].spec.batch == gate_batch)
        gate_pps = std::max(gate_pps, r.pkts_per_sec);
      if (tasks[i].spec.batch == 1)
        unbatched_pps = std::max(unbatched_pps, r.pkts_per_sec);
    }
  }
  w.end_array();
  w.key("prechange_unbatched_pps").value(kPrechangeUnbatchedPps);
  w.key("unbatched_pkts_per_sec").value(unbatched_pps);
  w.key("gate_batch").value(gate_batch);
  w.key("gate_pkts_per_sec").value(gate_pps);
  w.key("speedup_vs_prechange").value(gate_pps / kPrechangeUnbatchedPps);
  w.end_object();

  table.print();
  std::cout << "gate cell (8 workers, load 1.3, flat, batch " << gate_batch
            << "): " << gate_pps << " pkts/sec wall-clock; batch 1 "
            << unbatched_pps << "; speedup vs committed pre-change baseline "
            << gate_pps / kPrechangeUnbatchedPps << "x\n";

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    double gate = 0.0;
    if (!extract_number(ss.str(), "gate_pkts_per_sec", &gate)) {
      std::cerr << "baseline has no gate_pkts_per_sec\n";
      return 1;
    }
    const double floor = gate * (1.0 - tolerance);
    std::cout << "regression gate: measured " << gate_pps
              << " pkts/sec vs committed " << gate << " (floor " << floor
              << ", tolerance " << tolerance << ")\n";
    if (gate_pps < floor) {
      std::cerr << "FAIL: bench_pipeline pkts/sec regressed more than "
                << (tolerance * 100) << "% against the committed baseline\n";
      return 1;
    }
    std::cout << "gate OK\n";
    return 0;  // check mode does not rewrite the committed artifact
  }

  if (!obs::write_json_file(out_path, w.str())) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
