// Pipeline observability bench: sweeps workers × offered load × policy tree
// over the FlowValve NP pipeline and writes BENCH_pipeline.json — per-stage
// latency percentiles (vf_wait / service / reorder_hold / tx_wait /
// wire_fixed / total), per-class windowed throughput, and the full counter
// snapshot for every run. The committed artifact is the regression baseline
// for the pipeline's latency decomposition; CI's perf-smoke job reruns a
// reduced sweep (--quick) on every push.
//
// Usage: bench_pipeline [--out PATH] [--quick] [--horizon-ms N]
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/flowvalve.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics_hub.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

namespace {

using namespace flowvalve;

constexpr std::uint32_t kFrameBytes = 1518;
constexpr unsigned kNumClasses = 4;

/// Four equal leaves directly under the root.
std::string flat_policy(sim::Rate link) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link.gbps() << "gbit\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv class add dev nic0 parent 1: classid 1:1" << i << " name C" << i
      << " weight 1\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv filter add dev nic0 pref " << (10 * (i + 1)) << " vf " << i
      << " classid 1:1" << i << "\n";
  return s.str();
}

/// Two inner classes (2:1) with two leaves each — exercises borrowing and
/// multi-level share propagation.
std::string tiered_policy(sim::Rate link) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link.gbps() << "gbit\n";
  s << "fv class add dev nic0 parent 1: classid 1:1 name S1 weight 2\n";
  s << "fv class add dev nic0 parent 1: classid 1:2 name S2 weight 1\n";
  s << "fv class add dev nic0 parent 1:1 classid 1:10 name C0 weight 1\n";
  s << "fv class add dev nic0 parent 1:1 classid 1:11 name C1 weight 1\n";
  s << "fv class add dev nic0 parent 1:2 classid 1:20 name C2 weight 2\n";
  s << "fv class add dev nic0 parent 1:2 classid 1:21 name C3 weight 1\n";
  s << "fv filter add dev nic0 pref 10 vf 0 classid 1:10\n";
  s << "fv filter add dev nic0 pref 20 vf 1 classid 1:11\n";
  s << "fv filter add dev nic0 pref 30 vf 2 classid 1:20\n";
  s << "fv filter add dev nic0 pref 40 vf 3 classid 1:21\n";
  return s.str();
}

struct RunSpec {
  unsigned workers = 50;
  double load = 0.8;          // offered / wire rate
  std::string policy_name;    // "flat" | "tiered"
};

/// Run one sweep point and append its JSON object to `w`.
void run_point(const RunSpec& spec, sim::SimTime horizon, obs::JsonWriter& w,
               stats::TablePrinter& table) {
  np::NpConfig cfg = np::agilio_cx_40g();
  cfg.num_workers = spec.workers;

  sim::Simulator sim;
  core::FlowValveEngine engine(np::engine_options_for(cfg));
  const std::string script = spec.policy_name == "flat"
                                 ? flat_policy(cfg.wire_rate)
                                 : tiered_policy(cfg.wire_rate);
  if (std::string err = engine.configure(script); !err.empty()) {
    std::cerr << "policy configure failed: " << err << "\n";
    std::exit(1);
  }

  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(sim, cfg, processor);
  traffic::FlowRouter router(pipeline);
  traffic::IdAllocator ids;

  obs::MetricsHub hub(sim, pipeline, {.window = horizon / 10});
  hub.attach_engine(engine);
  hub.start();

  const sim::Rate offered = cfg.wire_rate * spec.load;
  const sim::Rng rng(0xb13cu ^ spec.workers);
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (unsigned i = 0; i < kNumClasses; ++i) {
    traffic::FlowSpec fs;
    fs.flow_id = ids.next_flow_id();
    fs.app_id = i;
    fs.vf_port = static_cast<std::uint16_t>(i);
    fs.wire_bytes = kFrameBytes;
    flows.push_back(std::make_unique<traffic::CbrFlow>(
        sim, router, ids, fs, offered / double(kNumClasses),
        rng.split("cbr").split(i), 0.05));
  }
  for (auto& f : flows) f->start();

  sim.run_until(horizon);
  for (auto& f : flows) f->stop();
  hub.stop_sampling();
  sim.run_all();

  const obs::CounterSnapshot snap = hub.snapshot();
  w.begin_object()
      .key("workers").value(spec.workers)
      .key("load").value(spec.load)
      .key("policy").value(spec.policy_name)
      .key("offered_gbps").value(offered.gbps());
  w.key("counters");
  obs::snapshot_json(w, snap);
  w.key("latency");
  obs::latency_json(w, hub.latency());
  w.key("throughput");
  obs::throughput_json(w, hub.throughput());
  w.end_object();

  const auto& total = hub.latency().segment(obs::Segment::kTotal);
  const double delivered_gbps =
      static_cast<double>(snap.nic.wire_bytes) * 8.0 /
      static_cast<double>(horizon);
  const std::uint64_t drops = snap.nic.vf_ring_drops + snap.nic.scheduler_drops +
                              snap.nic.tx_ring_drops +
                              snap.nic.reorder_flush_drops;
  table.add_row({std::to_string(spec.workers),
                 stats::TablePrinter::fmt(spec.load, 1), spec.policy_name,
                 stats::TablePrinter::fmt(offered.gbps(), 1),
                 stats::TablePrinter::fmt(delivered_gbps, 2),
                 stats::TablePrinter::fmt(snap.worker_utilization, 3),
                 stats::TablePrinter::fmt(double(total.p50()) / 1e3, 1),
                 stats::TablePrinter::fmt(double(total.p99()) / 1e3, 1),
                 std::to_string(drops)});
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pipeline.json";
  bool quick = false;
  std::int64_t horizon_ms = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--horizon-ms") == 0 && i + 1 < argc) {
      horizon_ms = std::atoll(argv[++i]);
    } else {
      std::cerr << "usage: bench_pipeline [--out PATH] [--quick] [--horizon-ms N]\n";
      return 2;
    }
  }

  const std::vector<unsigned> workers = quick ? std::vector<unsigned>{16}
                                              : std::vector<unsigned>{16, 50};
  const std::vector<double> loads = quick ? std::vector<double>{0.4, 1.3}
                                          : std::vector<double>{0.4, 0.8, 1.3};
  const std::vector<std::string> policies =
      quick ? std::vector<std::string>{"flat"}
            : std::vector<std::string>{"flat", "tiered"};
  const sim::SimTime horizon = sim::milliseconds(quick ? 5 : horizon_ms);

  stats::TablePrinter table({"workers", "load", "policy", "offered_gbps",
                             "delivered_gbps", "util", "p50_us", "p99_us",
                             "drops"});

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("bench_pipeline");
  w.key("frame_bytes").value(kFrameBytes);
  w.key("classes").value(kNumClasses);
  w.key("horizon_ns").value(static_cast<std::int64_t>(horizon));
  w.key("link_gbps").value(np::agilio_cx_40g().wire_rate.gbps());
  w.key("runs").begin_array();
  for (unsigned nw : workers)
    for (double load : loads)
      for (const std::string& policy : policies)
        run_point({nw, load, policy}, horizon, w, table);
  w.end_array();
  w.end_object();

  table.print();
  if (!obs::write_json_file(out_path, w.str())) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
