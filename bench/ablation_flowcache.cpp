// Ablation for Observation 2: the exact-match flow cache's effect on
// throughput. With the EMC disabled every packet walks the wildcard rule
// table (we pad it with 48 non-matching rules, a realistic policy size);
// the per-packet labeling cost rises ~10x and the achievable packet rate
// collapses accordingly.
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/flowvalve.h"
#include "exp/scenarios.h"
#include "host/probes.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/stats.h"

namespace flowvalve {
namespace {

double run(bool cache_enabled, unsigned dummy_rules, std::uint64_t seed,
           double* hit_rate) {
  sim::Simulator sim;
  np::NpConfig nic = np::agilio_cx_40g();
  nic.num_vfs = 4;

  // Pad the filter table with high-priority rules that never match (an
  // unused destination ip), then the real per-VF rules.
  std::ostringstream script;
  script << "fv qdisc add dev nic0 root handle 1: htb rate 40gbit\n";
  for (unsigned i = 0; i < 4; ++i)
    script << "fv class add dev nic0 parent 1: classid 1:1" << i << " name app" << i
           << " weight 1\n";
  for (unsigned i = 0; i < dummy_rules; ++i)
    script << "fv filter add dev nic0 pref " << 100 + i
           << " dst 192.168.200.200/32 dport " << 700 + i << " classid 1:10\n";
  for (unsigned i = 0; i < 4; ++i)
    script << "fv filter add dev nic0 pref " << 500 + i << " vf " << i
           << " classid 1:1" << i << "\n";

  core::FlowValveEngine engine(np::engine_options_for(nic));
  const std::string err = engine.configure(script.str());
  if (!err.empty()) std::exit(1);
  engine.classifier().set_cache_enabled(cache_enabled);

  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(sim, nic, processor);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  host::SaturationLoad::Config cfg;
  cfg.num_flows = 64;
  cfg.wire_bytes = 64;
  cfg.offered = nic.wire_rate;
  cfg.num_vfs = 4;
  host::SaturationLoad load(sim, router, ids, cfg, sim::Rng(seed));
  load.start();
  sim.run_until(sim::milliseconds(20));
  load.begin_measurement();
  sim.run_until(sim::milliseconds(60));
  if (hit_rate) *hit_rate = engine.classifier().cache().stats().hit_rate();
  return load.delivered_mpps(sim::milliseconds(60));
}

}  // namespace
}  // namespace flowvalve

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("=== Ablation (Observation 2): exact-match flow cache, 64B @40G ===\n\n");
  stats::TablePrinter tp({"labeling path", "rules", "Mpps", "cache hit rate"});
  double hr = 0.0;
  const double with_cache = run(true, 48, seed, &hr);
  tp.add_row({"EMC + rule walk on miss", "52", stats::TablePrinter::fmt(with_cache),
              stats::TablePrinter::fmt(hr * 100.0, 1) + "%"});
  const double without = run(false, 48, seed, nullptr);
  tp.add_row({"rule walk every packet", "52", stats::TablePrinter::fmt(without), "off"});
  const double small_table = run(false, 0, seed, nullptr);
  tp.add_row({"rule walk, tiny table", "4", stats::TablePrinter::fmt(small_table), "off"});
  tp.print();
  std::printf("\nExpected: disabling the EMC against a realistic rule table costs a\n"
              "large fraction of the achievable packet rate (the paper cites ~10x\n"
              "faster lookups via the Netronome EMC's dedicated engines).\n");
  return 0;
}
