// Datacenter-churn stress (the paper's §I motivation): a latency-sensitive
// tenant running thousands of short heavy-tailed flows (KVS-style RPCs)
// shares the egress with a bulk tenant (ML-style long transfers). FlowValve
// must (a) hold the 50:50 isolation policy under flow churn — the flow
// cache sees every new flow — and (b) keep the RPC tenant's delay flat.
#include <cstdio>
#include <cstdlib>

#include "core/flowvalve.h"
#include "host/probes.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/app.h"
#include "traffic/workload.h"

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sim::Simulator simulator;
  np::NpConfig nic = np::agilio_cx_10g();

  core::FlowValveEngine engine(np::engine_options_for(nic));
  const std::string err = engine.configure(
      "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
      "fv class add dev nic0 parent 1: classid 1:10 name rpc weight 1\n"
      "fv class add dev nic0 parent 1: classid 1:11 name bulk weight 1\n"
      "fv borrow add dev nic0 classid 1:10 from 1:11\n"
      "fv borrow add dev nic0 classid 1:11 from 1:10\n"
      "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
      "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n"
      "fv class add dev nic0 parent 1: classid 1:99 name probe weight 0.05\n"
      "fv filter add dev nic0 pref 5 vf 5 classid 1:99\n");
  if (!err.empty()) {
    std::fprintf(stderr, "config error: %s\n", err.c_str());
    return 1;
  }
  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(simulator, nic, processor);

  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  stats::ThroughputSeries rpc_series(sim::milliseconds(100));
  stats::ThroughputSeries bulk_series(sim::milliseconds(100));
  router.track_app(0, &rpc_series);
  router.track_app(1, &bulk_series);

  // Tenant A: heavy-tailed RPC churn offering ~8G.
  traffic::DatacenterWorkloadConfig rpc;
  rpc.flows_per_sec = 8000;
  rpc.sizes = traffic::FlowSizeDistribution(1.2, 2 * 1460, 8 * 1024 * 1024);
  rpc.flow_rate = sim::Rate::gigabits_per_sec(3);
  rpc.app_id = 0;
  rpc.vf_port = 0;
  // Scale arrivals so offered ≈ 8G.
  rpc.flows_per_sec = 8e9 / 8.0 / rpc.sizes.mean_bytes();
  traffic::DatacenterWorkload churn(simulator, router, ids, rpc, rng.split("rpc"));

  // Tenant B: two greedy bulk TCP connections.
  traffic::AppConfig bulk;
  bulk.name = "bulk";
  bulk.app_id = 1;
  bulk.vf_port = 1;
  bulk.num_connections = 2;
  bulk.wire_bytes = 1518;
  bulk.tcp.max_rate = sim::Rate::gigabits_per_sec(14);
  bulk.tcp.additive_increase = sim::Rate::megabits_per_sec(200);
  bulk.tcp.md_factor = 0.9;
  traffic::AppProcess bulk_app(simulator, router, ids, bulk, rng.split("bulk"));

  // Probe inside the RPC tenant's traffic class.
  traffic::FlowSpec pspec;
  pspec.flow_id = ids.next_flow_id();
  pspec.app_id = 5;
  pspec.vf_port = 5;
  pspec.wire_bytes = 256;
  host::LatencyProbe probe(simulator, router, ids, pspec,
                           sim::Rate::megabits_per_sec(4), rng.split("probe"));

  churn.start();
  bulk_app.start();
  simulator.run_until(sim::milliseconds(300));
  probe.start();
  simulator.run_until(sim::seconds(3));

  std::printf("=== Datacenter churn: RPC tenant (heavy-tailed flows) vs bulk ===\n");
  std::printf("seed=%llu, policy rpc:bulk = 1:1 of 10G, RPC offered ~8G, bulk greedy\n\n",
              static_cast<unsigned long long>(seed));

  auto mean = [](const stats::ThroughputSeries& s) { return s.mean_rate(10, 30).gbps(); };
  std::printf("Delivered 1-3s:  rpc %.2f Gbps   bulk %.2f Gbps (expect ≈5/5)\n",
              mean(rpc_series), mean(bulk_series));
  std::printf("RPC flows: %llu started, %llu completed, %llu live at end; largest %.1f MB\n",
              static_cast<unsigned long long>(churn.flows_started()),
              static_cast<unsigned long long>(churn.flows_completed()),
              static_cast<unsigned long long>(churn.flows_active()),
              static_cast<double>(churn.largest_flow_bytes()) / 1e6);
  const auto& cache = engine.classifier().cache().stats();
  std::printf("Flow cache: %.1f%% hit rate over %llu lookups (%llu insertions)\n",
              cache.hit_rate() * 100.0,
              static_cast<unsigned long long>(cache.hits + cache.misses),
              static_cast<unsigned long long>(cache.insertions));
  std::printf("Probe delay: mean %.2f us, stddev %.2f us, p99 %.2f us (n=%llu)\n",
              probe.latency().mean_us(), probe.latency().stddev_us(),
              probe.latency().percentile_us(99),
              static_cast<unsigned long long>(probe.latency().count()));
  std::printf("\nChecks: isolation holds under per-packet flow churn; the exact-match\n"
              "cache absorbs the lookups; delay stays flat because FlowValve never\n"
              "builds per-class queues.\n");
  return 0;
}
