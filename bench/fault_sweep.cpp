// Fault sweep: injects every survivable fault kind — one at a time, at its
// default intensity — into an overloaded FlowValve NP pipeline, and writes
// BENCH_faults.json with the recovery record per fault (recovery time,
// packets lost by mechanism) plus the full counter snapshot. The printed
// table is the at-a-glance robustness report: every row must show the fault
// recovered, and the loss column is the price the recovery layer paid.
//
// Usage: fault_sweep [--out PATH] [--quick] [--horizon-ms N] [--seed S]
//                    [--jobs N]
//   --jobs N  fan fault kinds across N threads (0 = all host cores). Each
//             cell is an independent simulation measured in virtual time,
//             so results are bit-identical at any job count; cells merge
//             into the JSON/table in sweep order after the barrier.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/flowvalve.h"
#include "exp/parallel_runner.h"
#include "fault/fault_plane.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics_hub.h"
#include "obs/recovery_tracker.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

namespace {

using namespace flowvalve;

constexpr std::uint32_t kFrameBytes = 1518;
constexpr unsigned kNumClasses = 4;

std::string flat_policy(sim::Rate link) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link.gbps() << "gbit\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv class add dev nic0 parent 1: classid 1:1" << i << " name C" << i
      << " weight 1\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv filter add dev nic0 pref " << (10 * (i + 1)) << " vf " << i
      << " classid 1:1" << i << "\n";
  return s.str();
}

const fault::FaultKind kSweep[] = {
    fault::FaultKind::kWorkerStall,   fault::FaultKind::kWorkerCrash,
    fault::FaultKind::kWireDip,       fault::FaultKind::kTxBackpressure,
    fault::FaultKind::kReorderStall,  fault::FaultKind::kCacheStorm,
    fault::FaultKind::kCachePoison,
};

/// One cell's outputs, rendered locally so cells can run on any thread and
/// still merge into the document in deterministic sweep order.
struct CellOutput {
  std::string json;                 // the cell's complete "runs" entry
  std::vector<std::string> row;     // its table row
};

/// Run one fault kind; the whole simulation universe is local to the call.
CellOutput run_kind(fault::FaultKind kind, sim::SimTime horizon,
                    std::uint64_t seed) {
  np::NpConfig cfg = np::agilio_cx_40g();
  cfg.recovery.admission_enabled = true;

  sim::Simulator sim;
  core::FlowValveEngine engine(np::engine_options_for(cfg));
  if (std::string err = engine.configure(flat_policy(cfg.wire_rate));
      !err.empty()) {
    std::cerr << "policy configure failed: " << err << "\n";
    std::exit(1);
  }

  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(sim, cfg, processor);
  traffic::FlowRouter router(pipeline);
  traffic::IdAllocator ids;

  obs::MetricsHub hub(sim, pipeline, {.window = horizon / 10});
  hub.attach_engine(engine);
  obs::RecoveryTracker tracker;
  hub.attach_recovery(&tracker);
  hub.start();

  fault::FaultPlane plane(sim, pipeline, &engine, &tracker);
  // Inject at 1/3 of the horizon, clear at 1/2 — the back half of the run
  // is the recovery + steady-state window.
  const fault::FaultSchedule schedule =
      fault::single_fault(kind, horizon / 3, horizon / 6, cfg);
  plane.arm(schedule);

  const sim::Rate offered = cfg.wire_rate * 1.3;  // sustained overload
  const sim::Rng rng(seed);
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (unsigned i = 0; i < kNumClasses; ++i) {
    traffic::FlowSpec fs;
    fs.flow_id = ids.next_flow_id();
    fs.app_id = i;
    fs.vf_port = static_cast<std::uint16_t>(i);
    fs.wire_bytes = kFrameBytes;
    flows.push_back(std::make_unique<traffic::CbrFlow>(
        sim, router, ids, fs, offered / double(kNumClasses),
        rng.split("cbr").split(i), 0.05));
  }
  for (auto& f : flows) f->start();

  sim.run_until(horizon);
  for (auto& f : flows) f->stop();
  hub.stop_sampling();
  sim.run_all();
  plane.finalize();

  const obs::CounterSnapshot snap = hub.snapshot();
  obs::JsonWriter w;
  w.begin_object()
      .key("fault").value(fault::fault_kind_name(kind))
      .key("injected_at_ns").value(static_cast<std::int64_t>(horizon / 3))
      .key("duration_ns").value(static_cast<std::int64_t>(horizon / 6));
  w.key("counters");
  obs::snapshot_json(w, snap);
  w.key("recovery");
  obs::recovery_json(w, tracker);
  w.end_object();

  const obs::FaultRecord* rec =
      tracker.records().empty() ? nullptr : &tracker.records().front();
  const double delivered_gbps = static_cast<double>(snap.nic.wire_bytes) * 8.0 /
                                static_cast<double>(horizon);
  CellOutput out;
  out.json = w.str();
  out.row =
      {fault::fault_kind_name(kind),
       stats::TablePrinter::fmt(delivered_gbps, 2),
       rec && rec->recovered() ? "yes" : "NO",
       rec && rec->recovered()
           ? stats::TablePrinter::fmt(double(rec->recovery_time()) / 1e6, 2)
           : std::string("-"),
       std::to_string(rec ? rec->lost_watchdog : 0),
       std::to_string(rec ? rec->lost_timeout : 0),
       std::to_string(rec ? rec->lost_admission : 0),
       std::to_string(snap.nic.workers_repaired)};
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_faults.json";
  bool quick = false;
  std::int64_t horizon_ms = 60;
  std::uint64_t seed = 0xfau;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--horizon-ms") == 0 && i + 1 < argc) {
      horizon_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    } else {
      std::cerr << "usage: fault_sweep [--out PATH] [--quick] "
                   "[--horizon-ms N] [--seed S] [--jobs N]\n";
      return 2;
    }
  }
  const sim::SimTime horizon = sim::milliseconds(quick ? 15 : horizon_ms);

  stats::TablePrinter table({"fault", "delivered_gbps", "recovered",
                             "recovery_ms", "lost_watchdog", "lost_timeout",
                             "lost_admission", "repaired"});

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("fault_sweep");
  w.key("frame_bytes").value(kFrameBytes);
  w.key("classes").value(kNumClasses);
  w.key("horizon_ns").value(static_cast<std::int64_t>(horizon));
  w.key("offered_load").value(1.3);
  w.key("seed").value(static_cast<std::int64_t>(seed));
  // Fan the sweep cells across the runner; merge JSON fragments and table
  // rows in sweep order after the barrier, so output is identical to a
  // sequential run.
  exp::ParallelRunner runner(jobs);
  const std::size_t num_kinds = sizeof(kSweep) / sizeof(kSweep[0]);
  auto cells = runner.map<CellOutput>(num_kinds, [&](std::size_t i) {
    return run_kind(kSweep[i], horizon, seed);
  });
  w.key("runs").begin_array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].ok()) {
      std::cerr << "fault cell " << fault::fault_kind_name(kSweep[i])
                << " crashed: " << cells[i].failure->what << "\n";
      return 1;
    }
    w.raw_value(cells[i].result->json);
    table.add_row(cells[i].result->row);
  }
  w.end_array();
  w.end_object();

  table.print();
  if (!obs::write_json_file(out_path, w.str())) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
