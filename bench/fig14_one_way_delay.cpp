// Reproduces Fig. 14: one-way delay of the evaluated schedulers while
// enforcing fair queueing, measured with a netperf-style probe flow.
// Paper reference points: FlowValve has the lowest delay at 10 Gbps; at
// 40 Gbps its delay rises ~4x to the pipeline constant (forwarding-only is
// 161.01 µs) but with almost no variation; the software schedulers show
// substantially larger jitter.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/scenarios.h"
#include "stats/stats.h"

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const auto g10 = sim::Rate::gigabits_per_sec(10);
  const auto g40 = sim::Rate::gigabits_per_sec(40);

  std::printf("=== Fig. 14: one-way delay under fair queueing ===\n");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));

  std::vector<exp::DelayResult> rows;
  rows.push_back(exp::run_fig14_htb(seed));
  rows.push_back(exp::run_fig14_dpdk(g10, 1, seed));
  rows.push_back(exp::run_fig14_flowvalve(g10, seed));
  rows.push_back(exp::run_fig14_dpdk(g40, 2, seed));
  rows.push_back(exp::run_fig14_flowvalve(g40, seed));
  rows.push_back(exp::run_fig14_forwarding_only(seed));

  stats::TablePrinter tp({"scheduler", "mean(us)", "stddev(us)", "p50(us)", "p99(us)",
                          "samples"});
  for (const auto& r : rows) {
    tp.add_row({r.label, stats::TablePrinter::fmt(r.mean_us),
                stats::TablePrinter::fmt(r.stddev_us), stats::TablePrinter::fmt(r.p50_us),
                stats::TablePrinter::fmt(r.p99_us), std::to_string(r.samples)});
  }
  tp.print();
  std::printf(
      "\nShape to check: FlowValve@10G lowest; FlowValve@40G ≈ the forwarding-only\n"
      "pipeline constant (~161 µs) with the smallest stddev of all loaded setups;\n"
      "HTB and DPDK show larger jitter from lock contention and poll batching.\n");
  return 0;
}
