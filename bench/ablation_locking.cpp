// Ablation for Fig. 7: how the scheduling-tree update strategy affects
// throughput on a multi-core NP.
//   (a) global-lock  — one blocking lock around the whole scheduling
//       function (the "valid yet sequential" strategy of Fig. 7(b));
//   (b) flowvalve    — per-class try-locks, losers only meter (Fig. 7(c));
//   (c) frozen-theta — no runtime updates at all (static rates): fast but
//       cannot adapt, shown by a conformance probe.
// Measured at 64 B saturation like Fig. 13.
#include <cstdio>
#include <cstdlib>

#include "core/flowvalve.h"
#include "exp/scenarios.h"
#include "host/probes.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/sim_lock.h"
#include "sim/simulator.h"
#include "stats/stats.h"

namespace flowvalve {
namespace {

/// Serializes every scheduling-function execution behind one blocking lock,
/// charging the spin time to the worker (Fig. 7(b)).
class GlobalLockProcessor final : public np::PacketProcessor {
 public:
  GlobalLockProcessor(core::FlowValveEngine& engine, const np::NpConfig& nic)
      : engine_(engine), nic_(nic) {}

  Outcome process(net::Packet& pkt, sim::SimTime now) override {
    const auto r = engine_.process(pkt, now);
    const sim::SimDuration hold = nic_.cycles_to_ns(r.cycles);
    const sim::SimDuration wait = lock_.acquire(now, hold);
    const auto wait_cycles =
        static_cast<std::uint32_t>(static_cast<double>(wait) * nic_.freq_ghz);
    return {r.verdict == core::Verdict::kForward, r.cycles + wait_cycles};
  }

 private:
  core::FlowValveEngine& engine_;
  const np::NpConfig& nic_;
  sim::SimBlockingLock lock_;
};

double measure_mpps(np::PacketProcessor& proc, const np::NpConfig& nic,
                    std::uint64_t seed) {
  sim::Simulator sim;
  np::NicPipeline pipeline(sim, nic, proc);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  host::SaturationLoad::Config cfg;
  cfg.num_flows = 16;
  cfg.wire_bytes = 64;
  cfg.offered = nic.wire_rate;
  cfg.num_vfs = 4;
  host::SaturationLoad load(sim, router, ids, cfg, sim::Rng(seed));
  load.start();
  sim.run_until(sim::milliseconds(20));
  load.begin_measurement();
  sim.run_until(sim::milliseconds(60));
  return load.delivered_mpps(sim::milliseconds(60));
}

core::FlowValveEngine make_engine(const np::NpConfig& nic, bool freeze_theta) {
  core::FlowValveEngine::Options opt = np::engine_options_for(nic);
  opt.params.freeze_theta = freeze_theta;
  core::FlowValveEngine engine(opt);
  const std::string err = engine.configure(exp::fair_queueing_script(nic.wire_rate, 4));
  if (!err.empty()) {
    std::fprintf(stderr, "config error: %s\n", err.c_str());
    std::exit(1);
  }
  return engine;
}

}  // namespace
}  // namespace flowvalve

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  np::NpConfig nic = np::agilio_cx_40g();
  nic.num_vfs = 4;

  std::printf("=== Ablation (Fig. 7): scheduling-tree update strategies, 64B @40G ===\n\n");
  stats::TablePrinter tp({"strategy", "Mpps", "note"});

  {
    auto engine = make_engine(nic, false);
    GlobalLockProcessor proc(engine, nic);
    tp.add_row({"global-lock (7b)", stats::TablePrinter::fmt(measure_mpps(proc, nic, seed)),
                "whole function serialized"});
  }
  {
    auto engine = make_engine(nic, false);
    np::FlowValveProcessor proc(engine);
    tp.add_row({"flowvalve try-lock (7c)",
                stats::TablePrinter::fmt(measure_mpps(proc, nic, seed)),
                "per-class update, losers meter"});
  }
  {
    // Frozen θ: buckets replenish but rates stay at static seeded shares.
    auto engine = make_engine(nic, true);
    np::FlowValveProcessor proc(engine);
    tp.add_row({"frozen-theta", stats::TablePrinter::fmt(measure_mpps(proc, nic, seed)),
                "no runtime rate estimation (cannot adapt; see note)"});
  }
  tp.print();
  std::printf(
      "\nExpected: the global lock collapses the multi-core NP to roughly a\n"
      "single core's packet rate; FlowValve's try-lock design sustains ~20 Mpps.\n"
      "frozen-theta is as fast but its rates never react to flow churn — the\n"
      "propagation ablation (ablation_propagation) quantifies that adaptivity.\n");
  return 0;
}
