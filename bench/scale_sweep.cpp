// Scale sweep: the million-flow survivability curve behind DESIGN.md §14.
// A churn workload holds N concurrently-live flows (heavy-tailed lengths,
// Poisson replacement arrivals) against the cuckoo exact-match flow cache
// and sweeps N from 10^3 to 10^6 at fixed capacity, recording delivered
// throughput and the cache's steady-state hit rate (measured over the back
// half of the run, past the cold-start fill). The table is the at-a-glance
// answer to "does the flow table survive a million flows": hit rate must
// stay high and health must stay out of degraded mode at every point.
//
// Usage: scale_sweep [--out PATH] [--quick] [--check] [--horizon-ms N]
//                    [--seed S] [--jobs N]
//   --check  exit non-zero unless the largest cell ends healthy with a
//            steady-state hit rate >= 0.90 (the CI gate for BENCH_scale.json)
//   --jobs N fan sweep cells across N threads (0 = all host cores). Cells
//            are independent virtual-time simulations, so results are
//            bit-identical at any job count; they merge in sweep order.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/flowvalve.h"
#include "exp/parallel_runner.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics_hub.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/churn.h"

namespace {

using namespace flowvalve;

constexpr std::uint32_t kFrameBytes = 1518;
constexpr unsigned kNumClasses = 4;
/// Fixed table geometry across the sweep: 2^21 slots hold 10^6 live keys at
/// a load factor the cuckoo kick path absorbs without degrading.
constexpr std::size_t kEmcCapacity = std::size_t{1} << 21;

std::string flat_policy(sim::Rate link) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link.gbps() << "gbit\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv class add dev nic0 parent 1: classid 1:1" << i << " name C" << i
      << " weight 1\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv filter add dev nic0 pref " << (10 * (i + 1)) << " vf " << i
      << " classid 1:1" << i << "\n";
  return s.str();
}

struct CellResult {
  std::size_t flows = 0;
  double delivered_gbps = 0.0;
  double steady_hit_rate = 0.0;
  core::ExactMatchFlowCache::Health health =
      core::ExactMatchFlowCache::Health::kHealthy;
  std::string json;               // the cell's complete "runs" entry
  std::vector<std::string> row;   // its table row
};

CellResult run_cell(std::size_t live_flows, sim::SimTime horizon,
                    std::uint64_t seed) {
  np::NpConfig cfg = np::agilio_cx_40g();
  cfg.num_vfs = kNumClasses;
  cfg.emc_capacity = kEmcCapacity;
  // A generous idle timeout keeps the amortized per-lookup sweep on the hot
  // path without evicting entries the sweep horizon could still revisit.
  cfg.emc_idle_timeout = sim::milliseconds(250);

  sim::Simulator sim;
  core::FlowValveEngine engine(np::engine_options_for(cfg));
  if (std::string err = engine.configure(flat_policy(cfg.wire_rate));
      !err.empty()) {
    std::cerr << "policy configure failed: " << err << "\n";
    std::exit(1);
  }

  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(sim, cfg, processor);
  traffic::FlowRouter router(pipeline);
  traffic::IdAllocator ids;

  obs::MetricsHub hub(sim, pipeline, {.window = horizon / 10});
  hub.attach_engine(engine);
  hub.start();

  traffic::ChurnWorkloadConfig churn_cfg;
  churn_cfg.target_live_flows = live_flows;
  // 10x-live replacement churn, floored so small cells can refill fast
  // enough to keep the aggregate rate saturated over the whole horizon
  // (1024 short flows alone burn out in ~20 ms at 0.9x wire rate).
  churn_cfg.flows_per_sec =
      std::max(static_cast<double>(live_flows) * 10.0, 1e5);
  // Longer flows than the fuzz default: the sweep measures the table under
  // steady service, not pure cold-start (every flow's first packet is an
  // honest compulsory miss either way).
  churn_cfg.min_packets = 16;
  churn_cfg.max_packets = 512;
  churn_cfg.aggregate_rate = cfg.wire_rate * 0.9;
  churn_cfg.wire_bytes = kFrameBytes;
  churn_cfg.vf_count = kNumClasses;
  // Pre-fill: the wire cannot cycle 10^6 distinct flows within the sweep
  // horizon, so survivability is measured against a table already holding
  // the cell's whole live population — the exact keys churn will service
  // (ChurnWorkload::tuple_for is the shared serial→tuple scheme). At the
  // top cell this drives the cuckoo table to load factor 0.5, so the kick
  // path runs for real instead of vanishing into a cold, empty table.
  core::Classifier& cls = engine.classifier();
  core::ExactMatchFlowCache& cache = cls.cache_for_fault();
  for (std::uint64_t serial = 0; serial < live_flows; ++serial) {
    const net::FiveTuple t = traffic::ChurnWorkload::tuple_for(serial);
    const std::uint16_t vf = traffic::ChurnWorkload::vf_for(serial, kNumClasses);
    cache.insert(vf, t, cls.rule_walk_label(vf, t), /*now_tick=*/0,
                 cls.label_epoch());
  }

  traffic::ChurnWorkload churn(sim, router, ids, churn_cfg,
                               sim::Rng(seed).split("churn"));
  churn.start();

  // Steady-state window: snapshot the cache books mid-run, after the table
  // has filled, and measure the hit rate over the delta to the end.
  core::ExactMatchFlowCache::Stats mid{};
  sim.schedule_at(horizon / 2,
                  [&] { mid = engine.classifier().cache().stats(); });

  sim.run_until(horizon);
  churn.stop();
  hub.stop_sampling();
  sim.run_all();

  const obs::CounterSnapshot snap = hub.snapshot();
  const core::ExactMatchFlowCache::Stats& end = snap.emc;
  const std::uint64_t d_hits = end.hits - mid.hits;
  const std::uint64_t d_misses = end.misses - mid.misses;
  CellResult res;
  res.flows = live_flows;
  res.delivered_gbps = static_cast<double>(snap.nic.wire_bytes) * 8.0 /
                       static_cast<double>(horizon);
  res.steady_hit_rate =
      d_hits + d_misses == 0
          ? 0.0
          : static_cast<double>(d_hits) / static_cast<double>(d_hits + d_misses);
  res.health = snap.emc_health;

  obs::JsonWriter w;
  w.begin_object()
      .key("live_flows").value(static_cast<std::uint64_t>(live_flows))
      .key("flows_started").value(churn.flows_started())
      .key("flows_completed").value(churn.flows_completed())
      .key("delivered_gbps").value(res.delivered_gbps)
      .key("steady_hit_rate").value(res.steady_hit_rate);
  w.key("counters");
  obs::snapshot_json(w, snap);
  w.end_object();
  res.json = w.str();

  res.row = {std::to_string(live_flows),
             stats::TablePrinter::fmt(res.delivered_gbps, 2),
             stats::TablePrinter::fmt(100.0 * res.steady_hit_rate, 2),
             stats::TablePrinter::fmt(100.0 * end.hit_rate(), 2),
             std::to_string(end.kicks),
             std::to_string(end.evictions + end.idle_evictions),
             std::to_string(end.degraded_transitions),
             core::health_name(res.health)};
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scale.json";
  bool quick = false;
  bool check = false;
  std::int64_t horizon_ms = 80;
  std::uint64_t seed = 0x5ca1eu;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--horizon-ms") == 0 && i + 1 < argc) {
      horizon_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    } else {
      std::cerr << "usage: scale_sweep [--out PATH] [--quick] [--check] "
                   "[--horizon-ms N] [--seed S] [--jobs N]\n";
      return 2;
    }
  }
  const sim::SimTime horizon = sim::milliseconds(quick ? 20 : horizon_ms);
  const std::size_t sweep[] = {1024, 16384, 131072, 1048576};

  stats::TablePrinter table({"live_flows", "delivered_gbps", "steady_hit_pct",
                             "total_hit_pct", "kicks", "evictions",
                             "degraded", "health"});

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("scale_sweep");
  w.key("frame_bytes").value(kFrameBytes);
  w.key("classes").value(kNumClasses);
  w.key("emc_capacity").value(static_cast<std::uint64_t>(kEmcCapacity));
  w.key("horizon_ns").value(static_cast<std::int64_t>(horizon));
  w.key("seed").value(static_cast<std::int64_t>(seed));
  // Fan the sweep cells across the runner; merge JSON fragments and table
  // rows in sweep order after the barrier, so output is identical to a
  // sequential run.
  exp::ParallelRunner runner(jobs);
  const std::size_t num_cells = sizeof(sweep) / sizeof(sweep[0]);
  auto cells = runner.map<CellResult>(num_cells, [&](std::size_t i) {
    return run_cell(sweep[i], horizon, seed);
  });
  w.key("runs").begin_array();
  std::vector<CellResult> results;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].ok()) {
      std::cerr << "scale cell " << sweep[i]
                << " crashed: " << cells[i].failure->what << "\n";
      return 1;
    }
    w.raw_value(cells[i].result->json);
    table.add_row(cells[i].result->row);
    results.push_back(*cells[i].result);
  }
  w.end_array();
  w.end_object();

  table.print();
  if (!obs::write_json_file(out_path, w.str())) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";

  if (check) {
    const CellResult& top = results.back();
    bool ok = true;
    if (top.steady_hit_rate < 0.90) {
      std::cerr << "check FAILED: steady hit rate " << top.steady_hit_rate
                << " < 0.90 at " << top.flows << " flows\n";
      ok = false;
    }
    for (const CellResult& r : results) {
      if (r.health != core::ExactMatchFlowCache::Health::kHealthy) {
        std::cerr << "check FAILED: cache ended " << core::health_name(r.health)
                  << " at " << r.flows << " flows\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::cout << "check OK: hit rate "
              << stats::TablePrinter::fmt(100.0 * top.steady_hit_rate, 2)
              << "% at " << top.flows << " flows, all cells healthy\n";
  }
  return 0;
}
