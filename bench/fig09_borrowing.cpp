// Reproduces the Fig. 6(d)/Fig. 9 borrowing semantics: with KVS idle and
// ML + WS hungry, ML borrows via S2's and KVS's shadow buckets; S2's
// lendable rate already discounts ML's own consumption (Γ_S2 ≈ Γ_ML), so
// WS's borrowable share shrinks as ML takes more — interior-class sharing
// is preferential, exactly as §IV-C Subprocedure 2 describes.
#include <cstdio>
#include <cstdlib>

#include "core/flowvalve.h"
#include "exp/scenarios.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sim::Simulator simulator;
  np::NpConfig nic = np::agilio_cx_40g();
  const auto link = sim::Rate::gigabits_per_sec(10);

  core::FlowValveEngine engine(exp::superpacket_engine_options(nic));
  const std::string err = engine.configure(exp::motivation_policy_script(link));
  if (!err.empty()) {
    std::fprintf(stderr, "config error: %s\n", err.c_str());
    return 1;
  }
  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(simulator, nic, processor);

  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);

  // ML demands 6G (far above its 2G guarantee), WS demands 6G, KVS idle.
  auto make_cbr = [&](std::uint32_t app, std::uint16_t vf, double gbps) {
    traffic::FlowSpec spec;
    spec.flow_id = ids.next_flow_id();
    spec.app_id = app;
    spec.vf_port = vf;
    spec.wire_bytes = exp::kSuperPacketBytes;
    spec.tuple.src_ip = 0x0a000020 + app;
    spec.tuple.dst_ip = 0x0a000002;
    spec.tuple.src_port = static_cast<std::uint16_t>(23000 + app);
    spec.tuple.dst_port = 5001;
    return std::make_unique<traffic::CbrFlow>(simulator, router, ids, spec,
                                              sim::Rate::gigabits_per_sec(gbps),
                                              rng.split(app), 0.05);
  };
  auto ml = make_cbr(2, 2, 6.0);  // VF2 → ML
  auto ws = make_cbr(3, 3, 6.0);  // VF3 → WS
  ml->start();
  ws->start();
  simulator.run_until(sim::seconds(2));

  std::printf("=== Fig. 9: interior-class bandwidth sharing (KVS idle) ===\n");
  std::printf("seed=%llu, ML offered 6G, WS offered 6G, 10G policy\n\n",
              static_cast<unsigned long long>(seed));

  const auto& tree = engine.tree();
  stats::TablePrinter tp({"class", "theta(Gbps)", "gamma(Gbps)", "lendable(Gbps)",
                          "fwd(GB)", "borrowed(GB)", "drops"});
  for (core::ClassId id = 0; id < tree.size(); ++id) {
    const auto& c = tree.at(id);
    tp.add_row({c.name, stats::TablePrinter::fmt(c.theta.gbps()),
                stats::TablePrinter::fmt(c.gamma().gbps()),
                stats::TablePrinter::fmt(c.lendable.gbps()),
                stats::TablePrinter::fmt(static_cast<double>(c.fwd_bytes) / 1e9),
                stats::TablePrinter::fmt(static_cast<double>(c.borrowed_bytes) / 1e9),
                std::to_string(c.drop_packets)});
  }
  tp.print();

  const double ml_rate = 8.0 * static_cast<double>(tree.at(tree.find("ML")).fwd_bytes) / 2e9;
  const double ws_rate = 8.0 * static_cast<double>(tree.at(tree.find("WS")).fwd_bytes) / 2e9;
  std::printf("\nDelivered: ML %.2f Gbps (2G guarantee + borrowed), WS %.2f Gbps\n",
              ml_rate, ws_rate);
  std::printf("Check: ML > its 2G guarantee (it borrowed KVS/S2 slack); ML+WS ≈ 10G;\n"
              "S2.lendable ≈ max(0, θ_S2 − Γ_ML) — ML's usage discounts what WS can "
              "borrow.\n");
  return 0;
}
