// Recovery sweep: MTTR percentiles per fault kind × scheduler backend
// (BENCH_recovery.json). Every cell injects its fault family into a loaded
// NP pipeline over several seeds and aggregates the fault plane's measured
// clear→healthy recovery times into p50/p95/max, alongside packets lost to
// the fault. The single-fault rows (worker-stall/crash, wire-dip,
// reorder-stall) are the honest pre-change baselines: they exercise only the
// recovery machinery that existed before island failure domains landed. The
// island-blackout, flapping-worker, and compound-campaign rows measure the
// crash-recovery path added with DESIGN.md §16.
//
// CI's perf-smoke job re-runs the fixed gate cell with --check: a
// differential run with an island blackout, whose post-blackout share
// reconvergence time (measured by the RecoverySloChecker) must reproduce
// within the tolerance of the committed value — the regression gate on
// "how fast do shares come back after an island dies".
//
// Usage: recovery_sweep [--out PATH] [--quick] [--horizon-ms N] [--seed S]
//                       [--check BASELINE.json [--tolerance F]] [--jobs N]
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "check/runner.h"
#include "core/flowvalve.h"
#include "exp/parallel_runner.h"
#include "fault/fault_plane.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/recovery_tracker.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

namespace {

using namespace flowvalve;

constexpr std::uint32_t kFrameBytes = 1518;
constexpr unsigned kNumClasses = 4;

std::string flat_policy(sim::Rate link) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link.gbps() << "gbit\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv class add dev nic0 parent 1: classid 1:1" << i << " name C" << i
      << " weight 1\n";
  for (unsigned i = 0; i < kNumClasses; ++i)
    s << "fv filter add dev nic0 pref " << (10 * (i + 1)) << " vf " << i
      << " classid 1:1" << i << "\n";
  return s.str();
}

/// Sweep rows: the single-fault pre-change baselines, then the island
/// failure-domain kinds, then the compound campaign (kind == nullopt).
struct KindSpec {
  const char* label;
  bool campaign;                 // derive a compound campaign per seed
  fault::FaultKind kind;         // ignored when campaign
};
const KindSpec kKinds[] = {
    {"worker-stall", false, fault::FaultKind::kWorkerStall},
    {"worker-crash", false, fault::FaultKind::kWorkerCrash},
    {"wire-dip", false, fault::FaultKind::kWireDip},
    {"reorder-stall", false, fault::FaultKind::kReorderStall},
    {"island-blackout", false, fault::FaultKind::kIslandBlackout},
    {"flapping-worker", false, fault::FaultKind::kFlappingWorker},
    {"campaign", true, fault::FaultKind::kWorkerStall},
};
const core::BackendKind kBackends[] = {
    core::BackendKind::kFlowValve, core::BackendKind::kStfq,
    core::BackendKind::kEiffel, core::BackendKind::kSpPifo};

struct CellResult {
  std::string kind;
  core::BackendKind backend = core::BackendKind::kFlowValve;
  unsigned reps = 0;
  std::uint64_t injected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t packets_lost = 0;
  sim::SimDuration mttr_p50 = -1;
  sim::SimDuration mttr_p95 = -1;
  sim::SimDuration mttr_max = -1;
};

/// One loaded-pipeline run of the cell's fault family; returns through the
/// accumulators. The whole simulation universe is local to the call.
void run_once(const KindSpec& spec, core::BackendKind backend,
              sim::SimTime horizon, std::uint64_t seed, CellResult& cell,
              std::vector<sim::SimDuration>& times) {
  np::NpConfig cfg = np::agilio_cx_40g();
  cfg.recovery.admission_enabled = true;
  cfg.backend = backend;

  sim::Simulator sim;
  core::FlowValveEngine engine(np::engine_options_for(cfg));
  if (std::string err = engine.configure(flat_policy(cfg.wire_rate));
      !err.empty()) {
    std::cerr << "policy configure failed: " << err << "\n";
    std::exit(1);
  }

  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(sim, cfg, processor);
  traffic::FlowRouter router(pipeline);
  traffic::IdAllocator ids;

  obs::RecoveryTracker tracker;
  fault::FaultPlane plane(sim, pipeline, &engine, &tracker);
  const fault::FaultSchedule schedule =
      spec.campaign
          ? fault::generate_campaign_schedule(seed, horizon, cfg)
          : fault::single_fault(spec.kind, horizon / 3, horizon / 6, cfg);
  plane.arm(schedule);

  const sim::Rate offered = cfg.wire_rate * 1.3;  // sustained overload
  const sim::Rng rng(seed);
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (unsigned i = 0; i < kNumClasses; ++i) {
    traffic::FlowSpec fs;
    fs.flow_id = ids.next_flow_id();
    fs.app_id = i;
    fs.vf_port = static_cast<std::uint16_t>(i);
    fs.wire_bytes = kFrameBytes;
    flows.push_back(std::make_unique<traffic::CbrFlow>(
        sim, router, ids, fs, offered / double(kNumClasses),
        rng.split("cbr").split(i), 0.05));
  }
  for (auto& f : flows) f->start();

  sim.run_until(horizon);
  for (auto& f : flows) f->stop();
  sim.run_all();
  plane.finalize();

  cell.injected += tracker.injected();
  cell.recovered += tracker.recovered();
  cell.packets_lost += tracker.total_packets_lost();
  const std::vector<sim::SimDuration> t = tracker.recovery_times();
  times.insert(times.end(), t.begin(), t.end());
}

CellResult run_cell(const KindSpec& spec, core::BackendKind backend,
                    sim::SimTime horizon, std::uint64_t seed, unsigned reps) {
  CellResult cell;
  cell.kind = spec.label;
  cell.backend = backend;
  cell.reps = reps;
  std::vector<sim::SimDuration> times;
  for (unsigned r = 0; r < reps; ++r)
    run_once(spec, backend, horizon, seed + r * 7919, cell, times);
  std::sort(times.begin(), times.end());
  cell.mttr_p50 = obs::RecoveryTracker::percentile(times, 0.50);
  cell.mttr_p95 = obs::RecoveryTracker::percentile(times, 0.95);
  cell.mttr_max = times.empty() ? -1 : times.back();
  return cell;
}

bool extract_number(const std::string& json, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

// Fixed regression-gate cell: a differential scenario with an island
// blackout over [40%, 60%] of the horizon, run under the RecoverySloChecker.
// Deterministic, so the measured post-blackout share-reconvergence time must
// reproduce the committed value within the tolerance.
constexpr std::uint64_t kGateSeed = 0x15a4dull;
check::CheckReport run_gate_cell() {
  check::FuzzScenario sc = check::generate_differential_scenario(kGateSeed);
  sc.nic.recovery.admission_enabled = true;
  check::RunOptions opts;
  opts.differential = true;
  opts.campaign = true;  // arms the RecoverySloChecker
  opts.faults = fault::single_fault(fault::FaultKind::kIslandBlackout,
                                    sc.horizon * 2 / 5, sc.horizon / 5,
                                    sc.nic);
  return check::run_scenario(sc, opts);
}

std::string backend_name(core::BackendKind b) {
  return core::backend_kind_name(b);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_recovery.json";
  std::string check_path;
  double tolerance = 0.10;
  bool quick = false;
  std::int64_t horizon_ms = 20;
  std::uint64_t seed = 0x3ec0u;
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--horizon-ms") == 0 && i + 1 < argc) {
      horizon_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
    } else {
      std::cerr << "usage: recovery_sweep [--out PATH] [--quick] "
                   "[--horizon-ms N] [--seed S] "
                   "[--check BASELINE.json [--tolerance F]] [--jobs N]\n";
      return 2;
    }
  }

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    double gate_reconv = 0.0, gate_recovered = 0.0;
    if (!extract_number(ss.str(), "gate_share_reconvergence_ns", &gate_reconv) ||
        !extract_number(ss.str(), "gate_recovered", &gate_recovered)) {
      std::cerr
          << "baseline has no gate_share_reconvergence_ns/gate_recovered\n";
      return 1;
    }
    const check::CheckReport g = run_gate_cell();
    if (!g.ok()) {
      std::cout << "REGRESSION: gate cell fails its invariants: "
                << g.summary() << "\n";
      return 1;
    }
    // Relative tolerance plus one SLO window (500 µs) of absolute slack: a
    // committed baseline of 0 (reconverged within the first window) must not
    // mean zero headroom, only that reconvergence stays ~immediate.
    const double ceiling =
        gate_reconv * (1.0 + tolerance) + double(sim::microseconds(500));
    std::cout << "regression gate: measured share reconvergence "
              << static_cast<std::int64_t>(g.share_reconvergence)
              << " ns vs committed " << gate_reconv << " (ceiling " << ceiling
              << ", tolerance " << tolerance << "), recovered "
              << g.faults_recovered << " vs " << gate_recovered << "\n";
    if (g.share_reconvergence < 0 ||
        static_cast<double>(g.share_reconvergence) > ceiling ||
        static_cast<double>(g.faults_recovered) < gate_recovered) {
      std::cout << "REGRESSION: post-blackout reconvergence degraded against "
                   "the committed baseline\n";
      return 1;
    }
    std::cout << "gate OK\n";
    return 0;  // check mode does not rewrite the committed artifact
  }

  const sim::SimTime horizon = sim::milliseconds(quick ? 8 : horizon_ms);
  const unsigned reps = quick ? 2 : 4;

  struct CellSpec {
    std::size_t kind;
    std::size_t backend;
  };
  std::vector<CellSpec> specs;
  constexpr std::size_t num_kinds = sizeof(kKinds) / sizeof(kKinds[0]);
  constexpr std::size_t num_backends = sizeof(kBackends) / sizeof(kBackends[0]);
  for (std::size_t k = 0; k < num_kinds; ++k)
    for (std::size_t b = 0; b < num_backends; ++b) specs.push_back({k, b});

  exp::ParallelRunner runner(jobs);
  auto cells = runner.map<CellResult>(specs.size(), [&](std::size_t i) {
    const CellSpec& s = specs[i];
    return run_cell(kKinds[s.kind], kBackends[s.backend], horizon,
                    seed + 104729 * s.kind + 1299709 * s.backend, reps);
  });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].ok()) {
      std::cerr << "recovery cell " << i
                << " crashed: " << cells[i].failure->what << "\n";
      return 1;
    }
  }
  const check::CheckReport gate = run_gate_cell();
  if (!gate.ok()) {
    std::cerr << "gate cell fails its invariants: " << gate.summary() << "\n";
    return 1;
  }

  stats::TablePrinter table({"kind", "backend", "injected", "recovered",
                             "pkts_lost", "mttr_p50_us", "mttr_p95_us",
                             "mttr_max_us"});
  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("recovery_sweep");
  w.key("frame_bytes").value(kFrameBytes);
  w.key("classes").value(kNumClasses);
  w.key("horizon_ns").value(static_cast<std::int64_t>(horizon));
  w.key("offered_load").value(1.3);
  w.key("seed").value(static_cast<std::int64_t>(seed));
  w.key("reps_per_cell").value(reps);
  w.key("runs").begin_array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = *cells[i].result;
    w.begin_object()
        .key("kind").value(c.kind)
        .key("backend").value(backend_name(c.backend))
        .key("reps").value(c.reps)
        .key("injected").value(c.injected)
        .key("recovered").value(c.recovered)
        .key("packets_lost").value(c.packets_lost)
        .key("mttr_p50_ns").value(static_cast<std::int64_t>(c.mttr_p50))
        .key("mttr_p95_ns").value(static_cast<std::int64_t>(c.mttr_p95))
        .key("mttr_max_ns").value(static_cast<std::int64_t>(c.mttr_max))
        .end_object();
    table.add_row({c.kind, backend_name(c.backend), std::to_string(c.injected),
                   std::to_string(c.recovered), std::to_string(c.packets_lost),
                   stats::TablePrinter::fmt(double(c.mttr_p50) / 1e3, 1),
                   stats::TablePrinter::fmt(double(c.mttr_p95) / 1e3, 1),
                   stats::TablePrinter::fmt(double(c.mttr_max) / 1e3, 1)});
  }
  w.end_array();

  w.key("gate").begin_object()
      .key("seed").value(static_cast<std::int64_t>(kGateSeed))
      .key("fault").value("island-blackout @ 40%..60% of horizon")
      .key("scenario").value("differential family, RecoverySloChecker armed")
      .end_object();
  w.key("gate_share_reconvergence_ns")
      .value(static_cast<std::int64_t>(gate.share_reconvergence));
  w.key("gate_recovered").value(gate.faults_recovered);
  w.key("gate_worst_recovery_ns")
      .value(static_cast<std::int64_t>(gate.worst_recovery));
  w.end_object();

  table.print();
  if (!obs::write_json_file(out_path, w.str())) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
