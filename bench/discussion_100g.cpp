// §VI "Higher Line rate": the paper argues FlowValve's ~20 Mpps headroom
// already saturates 100GbE with MTU frames (8.33 Mpps at 1500 B), and that
// higher-end NPs (more micro-engines / higher clocks) raise the packet-rate
// ceiling further. This bench projects FlowValve onto a 100GbE NP model and
// sweeps the micro-engine provisioning.
#include <cstdio>
#include <cstdlib>

#include "core/flowvalve.h"
#include "exp/scenarios.h"
#include "host/probes.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/stats.h"

namespace {

using namespace flowvalve;

double run(np::NpConfig nic, std::uint32_t frame_bytes, std::uint64_t seed) {
  sim::Simulator sim;
  nic.num_vfs = 4;
  core::FlowValveEngine engine(np::engine_options_for(nic));
  const std::string err = engine.configure(exp::fair_queueing_script(nic.wire_rate, 4));
  if (!err.empty()) std::exit(1);
  np::FlowValveProcessor proc(engine);
  np::NicPipeline pipeline(sim, nic, proc);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  host::SaturationLoad::Config cfg;
  cfg.num_flows = 16;
  cfg.wire_bytes = frame_bytes;
  cfg.offered = nic.wire_rate;
  cfg.num_vfs = 4;
  host::SaturationLoad load(sim, router, ids, cfg, sim::Rng(seed));
  load.start();
  sim.run_until(sim::milliseconds(20));
  load.begin_measurement();
  sim.run_until(sim::milliseconds(60));
  return load.delivered_mpps(sim::milliseconds(60));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("=== Discussion §VI: porting FlowValve to 100GbE ===\n\n");
  stats::TablePrinter tp({"platform", "frame(B)", "line(Mpps)", "achieved(Mpps)",
                          "wire-limited?"});

  struct Platform {
    const char* name;
    unsigned workers;
    double freq;
  };
  const Platform platforms[] = {
      {"Agilio-CX-40G (50ME@1.2G)", 50, 1.2},
      {"100G NP, same silicon", 50, 1.2},
      {"100G NP, 80ME@1.2G", 80, 1.2},
      {"100G NP, 80ME@1.6G", 80, 1.6},
  };
  for (std::size_t p = 0; p < 4; ++p) {
    np::NpConfig nic = np::agilio_cx_40g();
    nic.num_workers = platforms[p].workers;
    nic.freq_ghz = platforms[p].freq;
    if (p > 0) nic.wire_rate = sim::Rate::gigabits_per_sec(100);
    for (std::uint32_t frame : {1518u, 512u, 64u}) {
      const double line = net::line_rate_pps(nic.wire_rate, frame) / 1e6;
      const double got = run(nic, frame, seed);
      tp.add_row({platforms[p].name, std::to_string(frame),
                  stats::TablePrinter::fmt(line), stats::TablePrinter::fmt(got),
                  got > 0.97 * line ? "yes" : "no (NP-bound)"});
    }
  }
  tp.print();
  std::printf(
      "\nThe paper's point: 100GbE at 1500 B needs only 8.33 Mpps — well within\n"
      "the 40G card's ~20 Mpps budget — and more/faster micro-engines push the\n"
      "small-frame ceiling up roughly linearly.\n");
  return 0;
}
