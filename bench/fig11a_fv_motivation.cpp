// Reproduces Fig. 11(a): FlowValve enforcing the motivation-example QoS
// policy on a 10 Gbps budget (40GbE port). Compare with fig03_motivation_htb
// to see the kernel baseline break the same policy.
//
// Timeline (EXPERIMENTS.md): NC greedy 0-15 s; KVS 15-45 s; ML 15-60 s;
// WS 30-60 s. Policy: NC prio (ceil 7.5G, may borrow), vm1:vm2 = 2:1,
// KVS prio over ML, ML guaranteed 2 Gbps.
#include <cstdio>
#include <cstdlib>

#include "exp/scenarios.h"
#include "stats/series_export.h"

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("=== Fig. 11(a): FlowValve, motivation example @10G policy ===\n");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));
  auto r = exp::run_fig11a_fv_motivation(seed);

  std::printf("%s\n", r.table(sim::seconds(5)).c_str());
  std::printf("%s\n", r.ascii_chart(sim::Rate::gigabits_per_sec(10)).c_str());

  std::printf("Expected shape (paper): NC gets ~all 10G alone; 15-30s KVS prio\n"
              "over ML with ML holding its 2G guarantee; WS joins at 30s taking\n"
              "~1/3 of vm-share; ML absorbs KVS's share after 45s.\n\n");
  std::printf("Checkpoints:\n");
  std::printf("  NC    5-15s : %6.2f Gbps (expect ~9.5-10)\n",
              r.mean_rate("NC", 5, 15).gbps());
  std::printf("  KVS  20-30s : %6.2f Gbps   ML 20-30s: %5.2f (ML >= ~2G guarantee)\n",
              r.mean_rate("KVS", 20, 30).gbps(), r.mean_rate("ML", 20, 30).gbps());
  std::printf("  WS   35-45s : %6.2f Gbps   KVS 35-45s: %5.2f   ML 35-45s: %5.2f\n",
              r.mean_rate("WS", 35, 45).gbps(), r.mean_rate("KVS", 35, 45).gbps(),
              r.mean_rate("ML", 35, 45).gbps());
  std::printf("  ML   50-60s : %6.2f Gbps (absorbs KVS share)   WS: %5.2f\n",
              r.mean_rate("ML", 50, 60).gbps(), r.mean_rate("WS", 50, 60).gbps());
  std::printf("  total 20-45s: %6.2f Gbps (never exceeds the 10G policy)\n",
              r.total_rate(20, 45).gbps());
  std::printf("  host CPU cores consumed by scheduling: %.2f (offloaded)\n",
              r.host_cores_used);
  if (argc > 2) {
    // argv[2]: CSV output path with the full 100 ms-binned series.
    if (stats::write_series_csv(argv[2], r.named_series(), r.horizon))
      std::printf("\nwrote %s\n", argv[2]);
  }
  return 0;
}
