// Ablation: conformance and adaptation speed vs the update epoch ΔT
// (§IV-C's update subprocedure cadence). Small epochs track demand shifts
// quickly but cost more locked updates; large epochs leave stale θ for
// longer (Fig. 10's propagation delay scales with them).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/flowvalve.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

namespace flowvalve {
namespace {

struct Outcome {
  double adapt_ms;     // time for A1 to reach 90% of its post-step share
  double updates_per_pkt;
};

Outcome run_with_interval(sim::SimDuration interval, std::uint64_t seed) {
  sim::Simulator simulator;
  np::NpConfig nic = np::agilio_cx_40g();
  core::FlowValveEngine::Options opt = np::engine_options_for(nic);
  opt.params.update_interval = interval;
  core::FlowValveEngine engine(opt);
  const std::string err = engine.configure(
      "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
      "fv class add dev nic0 parent 1: classid 1:10 name A0 prio 0 weight 1\n"
      "fv class add dev nic0 parent 1: classid 1:11 name A1 prio 1 weight 1\n"
      "fv filter add dev nic0 pref 10 vf 0 classid 1:10\n"
      "fv filter add dev nic0 pref 11 vf 1 classid 1:11\n");
  if (!err.empty()) std::exit(1);
  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(simulator, nic, processor);

  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  auto make_cbr = [&](std::uint32_t app, double gbps) {
    traffic::FlowSpec spec;
    spec.flow_id = ids.next_flow_id();
    spec.app_id = app;
    spec.vf_port = static_cast<std::uint16_t>(app);
    spec.wire_bytes = 1518;
    spec.tuple.src_ip = 0x0a000040 + app;
    spec.tuple.dst_ip = 0x0a000002;
    spec.tuple.src_port = static_cast<std::uint16_t>(25000 + app);
    spec.tuple.dst_port = 5001;
    return std::make_unique<traffic::CbrFlow>(simulator, router, ids, spec,
                                              sim::Rate::gigabits_per_sec(gbps),
                                              rng.split(app), 0.02);
  };
  auto a0 = make_cbr(0, 8.0);
  auto a1 = make_cbr(1, 9.5);
  a0->start();
  a1->start();

  const auto& tree = engine.tree();
  const auto id1 = tree.find("A1");
  double adapt_ms = -1;
  sim::PeriodicTimer sampler(simulator, sim::microseconds(100), [&] {
    const double t = sim::to_millis(simulator.now());
    if (t > 50 && adapt_ms < 0 && tree.at(id1).theta.gbps() > 0.9 * 9.0)
      adapt_ms = t - 50;
  });
  sampler.start();
  simulator.schedule_at(sim::milliseconds(50),
                        [&] { a0->set_rate(sim::Rate::megabits_per_sec(100)); });
  simulator.run_until(sim::milliseconds(120));

  Outcome out;
  out.adapt_ms = adapt_ms;
  const auto& st = engine.scheduler().stats();
  out.updates_per_pkt =
      static_cast<double>(st.updates) /
      static_cast<double>(st.forwarded + st.dropped ? st.forwarded + st.dropped : 1);
  return out;
}

}  // namespace
}  // namespace flowvalve

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("=== Ablation: update epoch ΔT vs adaptation speed ===\n");
  std::printf("A0 (prio) steps 8G→0.1G at 50ms; A1 should absorb the release.\n\n");
  stats::TablePrinter tp({"update ΔT", "A1 adapt time(ms)", "updates/pkt"});
  const std::vector<sim::SimDuration> sweeps = {
      sim::microseconds(50),  sim::microseconds(100), sim::microseconds(200),
      sim::microseconds(500), sim::milliseconds(1),   sim::milliseconds(5)};
  for (auto dt : sweeps) {
    const auto o = run_with_interval(dt, seed);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0fus", sim::to_micros(dt));
    tp.add_row({label,
                o.adapt_ms < 0 ? "n/a" : stats::TablePrinter::fmt(o.adapt_ms),
                stats::TablePrinter::fmt(o.updates_per_pkt, 4)});
  }
  tp.print();
  std::printf("\nExpected: adaptation time grows with ΔT (plus Γ-EWMA smoothing);\n"
              "update frequency per packet falls as epochs lengthen.\n");
  return 0;
}
