// Reproduces Fig. 15: the qualitative FlowValve-vs-Loom comparison — and
// extends it quantitatively by running the same weighted policy through
// (a) FlowValve's schedule-before-queueing tail-drop valve and (b) a
// PIFO/STFQ scheduler (the primitive Loom builds on). Both enforce the
// shares; the difference is deployability: the PIFO needs rank-insertable
// queue hardware, FlowValve runs on shipping FIFO-based NPs.
#include <cstdio>
#include <cstdlib>

#include "baseline/pifo.h"
#include "core/flowvalve.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

namespace {

using namespace flowvalve;

struct Shares {
  double a, b, c;  // delivered Gbps for weights 5:3:2 on a 10G port
};

/// Drive three CBR flows (6G each, weights 5:3:2) for 2 s; return shares.
template <typename MakeDevice>
Shares measure(MakeDevice&& make_device, std::uint64_t seed) {
  sim::Simulator sim;
  net::EgressDevice& dev = make_device(sim);
  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(dev);
  std::uint64_t bytes[3] = {};
  dev.set_on_delivered([&](const net::Packet& p) { bytes[p.app_id % 3] += p.wire_bytes; });

  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (std::uint16_t i = 0; i < 3; ++i) {
    traffic::FlowSpec spec;
    spec.flow_id = ids.next_flow_id();
    spec.app_id = i;
    spec.vf_port = i;
    spec.wire_bytes = 1518;
    spec.tuple.src_ip = 0x0a000001u + i;
    spec.tuple.src_port = static_cast<std::uint16_t>(42000 + i);
    flows.push_back(std::make_unique<traffic::CbrFlow>(
        sim, router, ids, spec, sim::Rate::gigabits_per_sec(6), rng.split(i), 0.02));
    flows.back()->start();
  }
  sim.run_until(sim::seconds(2));
  const double to_gbps = 8.0 / 2e9;
  return {bytes[0] * to_gbps, bytes[1] * to_gbps, bytes[2] * to_gbps};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flowvalve;
  using flowvalve::stats::TablePrinter;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("=== Fig. 15: FlowValve vs Loom ===\n\n");
  TablePrinter tp({"dimension", "FlowValve", "Loom"});
  tp.add_row({"Programming target", "Multi-core Network Processor",
              "Sequential Match-Action Table Pipeline"});
  tp.add_row({"Scheduling primitives", "Hierarchical Token Buckets",
              "Push-In-First-Out queues"});
  tp.add_row({"Ease of deployment", "Runs on shipping NP SmartNICs (P4+Micro-C)",
              "Requires a new NIC ASIC design"});
  tp.add_row({"Packet buffering", "Schedules before queueing (tail-drop valve)",
              "Queues before scheduling (PIFO ranks)"});
  tp.add_row({"Policy hierarchy", "Arbitrary class trees + runtime conditions",
              "Fixed by the programmed PIFO tree"});
  tp.add_row({"Work conservation", "Shadow-bucket borrowing (Eq. 6)",
              "Inherent in PIFO ordering"});
  tp.print();

  // Quantitative supplement: same 5:3:2 policy, both mechanisms.
  std::unique_ptr<core::FlowValveEngine> engine;
  std::unique_ptr<np::FlowValveProcessor> proc;
  std::unique_ptr<np::NicPipeline> pipeline;
  const Shares fv = measure(
      [&](sim::Simulator& sim) -> net::EgressDevice& {
        np::NpConfig nic = np::agilio_cx_40g();
        engine = std::make_unique<core::FlowValveEngine>(np::engine_options_for(nic));
        const std::string err = engine->configure(
            "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
            "fv class add dev nic0 parent 1: classid 1:10 name a weight 5\n"
            "fv class add dev nic0 parent 1: classid 1:11 name b weight 3\n"
            "fv class add dev nic0 parent 1: classid 1:12 name c weight 2\n"
            "fv filter add dev nic0 pref 1 vf 0 classid 1:10\n"
            "fv filter add dev nic0 pref 2 vf 1 classid 1:11\n"
            "fv filter add dev nic0 pref 3 vf 2 classid 1:12\n");
        if (!err.empty()) std::exit(1);
        proc = std::make_unique<np::FlowValveProcessor>(*engine);
        pipeline = std::make_unique<np::NicPipeline>(sim, nic, *proc);
        return *pipeline;
      },
      seed);

  std::unique_ptr<baseline::PifoScheduler> pifo;
  const Shares ps = measure(
      [&](sim::Simulator& sim) -> net::EgressDevice& {
        baseline::PifoConfig cfg;
        cfg.port_rate = sim::Rate::gigabits_per_sec(10);
        pifo = std::make_unique<baseline::PifoScheduler>(sim, cfg);
        pifo->add_class("a", 5);
        pifo->add_class("b", 3);
        pifo->add_class("c", 2);
        pifo->set_classifier(
            [](const net::Packet& p) { return static_cast<int>(p.app_id % 3); });
        return *pifo;
      },
      seed);

  std::printf("\nQuantitative supplement — 10G port, weights 5:3:2, 6G offered each:\n");
  TablePrinter q({"mechanism", "a(Gbps)", "b(Gbps)", "c(Gbps)", "how"});
  q.add_row({"FlowValve tail-drop valve", TablePrinter::fmt(fv.a), TablePrinter::fmt(fv.b),
             TablePrinter::fmt(fv.c), "drops excess before the FIFO"});
  q.add_row({"PIFO / STFQ (Loom-style)", TablePrinter::fmt(ps.a), TablePrinter::fmt(ps.b),
             TablePrinter::fmt(ps.c), "reorders a rank-insertable queue"});
  q.print();
  std::printf("\nBoth enforce 5:3:2 (expect ≈5.0/3.0/2.0); the deployment story in the\n"
              "table above is the paper's point. See fig13/fig14 for the performance\n"
              "side of this repo's reproduction.\n");
  return 0;
}
