// Related-work comparison (§VII "Efficient packet scheduling"): the same
// 4-class weighted policy (4:3:2:1 of 10G, every class offered 4G CBR)
// enforced by four mechanisms:
//   - FlowValve on the simulated NP (scheduling offloaded, drop-based)
//   - Carousel-style timing wheel (host software, timestamp-based) [4]
//   - DPDK QoS Scheduler (host software, queue-based)
//   - kernel HTB via the kernel host model (scheduling artifacts off, but
//     per-MTU skbs — no GSO — so the qdisc-lock packet-rate ceiling shows)
// Reported: per-class delivered rate, worst-case conformance error, and the
// host CPU cores each consumes — the offloading argument in one table.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "baseline/carousel.h"
#include "baseline/dpdk_sched.h"
#include "baseline/htb.h"
#include "baseline/kernel_host.h"
#include "core/flowvalve.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

namespace {

using namespace flowvalve;

constexpr double kSharesG[4] = {4.0, 3.0, 2.0, 1.0};
constexpr sim::SimTime kFrom = sim::milliseconds(200);
constexpr sim::SimTime kTo = sim::milliseconds(900);
constexpr sim::SimTime kEnd = sim::seconds(1);

struct Outcome {
  double gbps[4] = {};
  double max_err_pct = 0.0;
  double cores = 0.0;
};

/// Drive 4 CBR classes at 4G each through `device`; measure steady window.
Outcome drive(sim::Simulator& sim, net::EgressDevice& device, std::uint64_t seed,
              double cores) {
  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(device);
  Outcome out;
  out.cores = cores;
  std::uint64_t bytes[4] = {};
  device.set_on_delivered([&](const net::Packet& p) {
    if (p.wire_tx_done >= kFrom && p.wire_tx_done < kTo)
      bytes[p.app_id % 4] += p.wire_bytes;
  });
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (std::uint16_t i = 0; i < 4; ++i) {
    traffic::FlowSpec spec;
    spec.flow_id = ids.next_flow_id();
    spec.app_id = i;
    spec.vf_port = i;
    spec.wire_bytes = 1518;
    spec.tuple.src_ip = 0x0a000001u + i;
    spec.tuple.src_port = static_cast<std::uint16_t>(43000 + i);
    flows.push_back(std::make_unique<traffic::CbrFlow>(
        sim, router, ids, spec, sim::Rate::gigabits_per_sec(4), rng.split(i), 0.02));
    flows.back()->start();
  }
  sim.run_until(kEnd);
  for (int i = 0; i < 4; ++i) {
    out.gbps[i] = static_cast<double>(bytes[i]) * 8.0 / static_cast<double>(kTo - kFrom);
    out.max_err_pct = std::max(
        out.max_err_pct, std::abs(out.gbps[i] - kSharesG[i]) / kSharesG[i] * 100.0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  std::printf("=== Related work: one 4:3:2:1 policy, four mechanisms @10G ===\n");
  std::printf("Each class offered 4G CBR against shares of 4/3/2/1 G.\n\n");

  stats::TablePrinter tp({"mechanism", "c0(G)", "c1(G)", "c2(G)", "c3(G)",
                          "max err", "host cores"});
  auto add = [&](const char* name, const Outcome& o) {
    tp.add_row({name, stats::TablePrinter::fmt(o.gbps[0]),
                stats::TablePrinter::fmt(o.gbps[1]), stats::TablePrinter::fmt(o.gbps[2]),
                stats::TablePrinter::fmt(o.gbps[3]),
                stats::TablePrinter::fmt(o.max_err_pct, 1) + "%",
                stats::TablePrinter::fmt(o.cores)});
  };

  {  // FlowValve on the NP.
    sim::Simulator sim;
    np::NpConfig nic = np::agilio_cx_40g();
    core::FlowValveEngine engine(np::engine_options_for(nic));
    std::string script = "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n";
    for (int i = 0; i < 4; ++i) {
      script += "fv class add dev nic0 parent 1: classid 1:1" + std::to_string(i) +
                " name c" + std::to_string(i) + " weight " + std::to_string(4 - i) +
                "\n";
      script += "fv filter add dev nic0 pref " + std::to_string(10 + i) + " vf " +
                std::to_string(i) + " classid 1:1" + std::to_string(i) + "\n";
    }
    if (!engine.configure(script).empty()) return 1;
    np::FlowValveProcessor proc(engine);
    np::NicPipeline pipeline(sim, nic, proc);
    add("FlowValve (NP offload)", drive(sim, pipeline, seed, 0.02));
  }
  {  // Carousel.
    sim::Simulator sim;
    baseline::CarouselConfig cfg;
    baseline::CarouselShaper shaper(sim, cfg);
    shaper.set_rate_policy([](const net::Packet& p) {
      return sim::Rate::gigabits_per_sec(kSharesG[p.app_id % 4]);
    });
    shaper.start();
    Outcome o = drive(sim, shaper, seed, 0.0);
    o.cores = shaper.cores_used(sim.now());
    add("Carousel timing wheel", o);
  }
  {  // DPDK QoS.
    sim::Simulator sim;
    baseline::DpdkQosConfig cfg;
    cfg.port_rate = sim::Rate::gigabits_per_sec(10);
    baseline::DpdkQosScheduler sched(sim, cfg);
    for (int i = 0; i < 4; ++i) {
      baseline::DpdkPipeConfig pipe;
      pipe.name = "c" + std::to_string(i);
      pipe.rate = sim::Rate::gigabits_per_sec(kSharesG[i]);
      pipe.queues.push_back({"q", 0, 1.0});
      sched.add_pipe(pipe);
    }
    sched.set_classifier([](const net::Packet& p) {
      return "c" + std::to_string(p.app_id % 4) + "/q";
    });
    sched.start();
    Outcome o = drive(sim, sched, seed, sched.cores_used());
    add("DPDK QoS Scheduler (1c)", o);
  }
  {  // Idealized kernel HTB (artifacts off).
    sim::Simulator sim;
    auto htb = std::make_unique<baseline::HtbQdisc>(sim::Rate::gigabits_per_sec(10),
                                                    sim::Rate::gigabits_per_sec(10));
    for (int i = 0; i < 4; ++i) {
      baseline::HtbClassConfig c;
      c.name = "c" + std::to_string(i);
      c.rate = sim::Rate::gigabits_per_sec(kSharesG[i]);
      c.ceil = sim::Rate::gigabits_per_sec(kSharesG[i]);
      c.queue_limit = 128;
      htb->add_class(c);
    }
    htb->set_classifier(
        [](const net::Packet& p) { return "c" + std::to_string(p.app_id % 4); });
    baseline::KernelHostConfig host;
    host.wire_rate = sim::Rate::gigabits_per_sec(40);
    baseline::KernelHostDevice device(sim, host, std::move(htb));
    Outcome o = drive(sim, device, seed, 0.0);
    o.cores = device.cores_used(kEnd);
    add("kernel HTB (per-MTU skbs)", o);
  }
  tp.print();
  std::printf(
      "\nFlowValve, Carousel and DPDK all enforce the shares on CBR traffic; the\n"
      "differentiators are where the CPU burns (host cores column) and behaviour\n"
      "under TCP/jitter (figs. 3, 11, 14). The kernel row collapses because\n"
      "per-MTU skbs hit the global qdisc lock's ~0.9 Mpps ceiling — the locking\n"
      "overhead [23] the paper cites as the root cause of kernel inaccuracy.\n");
  return 0;
}
