// Google-benchmark microbenchmarks for the core data structures: token
// buckets, the scheduling tree's update/θ-derivation, the classifier with
// and without flow-cache hits, header parsing, the event queue, and the
// HTB baseline's hot paths. These are wall-clock benchmarks of the
// *implementation* (the figure benches measure virtual-time behaviour).
#include <benchmark/benchmark.h>

#include "baseline/htb.h"
#include "core/flowvalve.h"
#include "exp/scenarios.h"
#include "net/headers.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace flowvalve;

void BM_TokenBucketMeter(benchmark::State& state) {
  core::TokenBucket bucket(1e9, 1e9);
  std::uint64_t green = 0;
  for (auto _ : state) {
    bucket.add(1538.0);
    green += bucket.meter(1538) == core::MeterColor::kGreen;
  }
  benchmark::DoNotOptimize(green);
}
BENCHMARK(BM_TokenBucketMeter);

void BM_SchedTreeUpdate(benchmark::State& state) {
  core::SchedulingTree tree;
  const auto root = tree.add_root("root", sim::Rate::gigabits_per_sec(10));
  core::NodePolicy p;
  const auto a = tree.add_class("a", root, p);
  p.prio = 1;
  tree.add_class("b", root, p);
  tree.finalize();
  sim::SimTime now = 0;
  for (auto _ : state) {
    now += 200'000;
    tree.update_class(a, now);
  }
  benchmark::DoNotOptimize(tree.at(a).theta);
}
BENCHMARK(BM_SchedTreeUpdate);

void BM_ComputeThetaDeepTree(benchmark::State& state) {
  core::SchedulingTree tree;
  auto parent = tree.add_root("root", sim::Rate::gigabits_per_sec(40));
  core::ClassId leaf = parent;
  for (int d = 0; d < 4; ++d) {
    core::NodePolicy p;
    p.weight = 2.0;
    leaf = tree.add_class("c" + std::to_string(d), parent, p);
    core::NodePolicy q;
    q.prio = 1;
    tree.add_class("s" + std::to_string(d), parent, q);
    parent = leaf;
  }
  tree.finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.compute_theta(leaf, 1'000'000));
  }
}
BENCHMARK(BM_ComputeThetaDeepTree);

core::FlowValveEngine& shared_engine() {
  static core::FlowValveEngine* engine = [] {
    auto* e = new core::FlowValveEngine();
    const std::string err =
        e->configure(exp::fair_queueing_script(sim::Rate::gigabits_per_sec(40), 4));
    if (!err.empty()) std::abort();
    return e;
  }();
  return *engine;
}

void BM_EngineProcessCacheHit(benchmark::State& state) {
  auto& engine = shared_engine();
  net::Packet pkt;
  pkt.vf_port = 1;
  pkt.wire_bytes = 1518;
  pkt.tuple.src_ip = 0x0a000001;
  pkt.tuple.dst_ip = 0x0a000002;
  pkt.tuple.src_port = 999;
  pkt.tuple.dst_port = 80;
  sim::SimTime now = 0;
  for (auto _ : state) {
    now += 1000;
    benchmark::DoNotOptimize(engine.process(pkt, now));
  }
}
BENCHMARK(BM_EngineProcessCacheHit);

void BM_ClassifierMiss(benchmark::State& state) {
  auto& engine = shared_engine();
  net::Packet pkt;
  pkt.vf_port = 2;
  pkt.wire_bytes = 64;
  pkt.tuple.dst_port = 80;
  std::uint32_t ip = 0;
  std::uint64_t tick = 0;
  for (auto _ : state) {
    pkt.tuple.src_ip = ++ip;  // new flow every packet → cache miss+insert
    benchmark::DoNotOptimize(engine.classifier().classify(pkt, ++tick));
  }
}
BENCHMARK(BM_ClassifierMiss);

void BM_ParseTcpFrame(benchmark::State& state) {
  net::FiveTuple t;
  t.src_ip = 0x0a000001;
  t.dst_ip = 0x0a000002;
  t.src_port = 1234;
  t.dst_port = 80;
  const auto frame = net::build_frame_for_tuple(t, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_frame(frame));
  }
}
BENCHMARK(BM_ParseTcpFrame);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::Simulator sim;
  sim::Rng rng(7);
  // Keep a standing population of 1024 events; each handler re-arms itself.
  std::uint64_t fired = 0;
  std::function<void()> rearm = [&] {
    ++fired;
    sim.schedule_after(static_cast<sim::SimDuration>(rng.next_below(10'000) + 1), rearm);
  };
  for (int i = 0; i < 1024; ++i)
    sim.schedule_after(static_cast<sim::SimDuration>(rng.next_below(10'000) + 1), rearm);
  for (auto _ : state) {
    sim.step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueChurn);

void BM_HtbEnqueueDequeue(benchmark::State& state) {
  baseline::HtbQdisc htb(sim::Rate::gigabits_per_sec(10), sim::Rate::gigabits_per_sec(10));
  for (int i = 0; i < 4; ++i) {
    baseline::HtbClassConfig c;
    c.name = "c" + std::to_string(i);
    c.rate = sim::Rate::gigabits_per_sec(2.5);
    c.ceil = sim::Rate::gigabits_per_sec(10);
    htb.add_class(c);
  }
  htb.set_classifier(
      [](const net::Packet& p) { return "c" + std::to_string(p.app_id % 4); });
  net::Packet pkt;
  pkt.wire_bytes = 1518;
  sim::SimTime now = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    now += 1230;
    pkt.app_id = i++;
    htb.enqueue(pkt, now);
    benchmark::DoNotOptimize(htb.dequeue(now));
  }
}
BENCHMARK(BM_HtbEnqueueDequeue);

void BM_FiveTupleHash(benchmark::State& state) {
  net::FiveTuple t;
  t.src_ip = 0x0a000001;
  t.dst_ip = 0x0a000002;
  t.src_port = 1234;
  t.dst_port = 80;
  for (auto _ : state) {
    ++t.src_port;
    benchmark::DoNotOptimize(t.hash());
  }
}
BENCHMARK(BM_FiveTupleHash);

void BM_RngNextU64(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

}  // namespace

// ---- appended: PIFO vs Eiffel-style bucket queue, MAT, Carousel ----------

#include "baseline/bucket_queue.h"
#include "baseline/pifo.h"
#include "np/mat.h"

namespace {

using namespace flowvalve;

void BM_MultisetPifoChurn(benchmark::State& state) {
  // The PIFO comparator's std::multiset under steady push/pop.
  std::multiset<std::pair<double, std::uint64_t>> heap;
  sim::Rng rng(3);
  std::uint64_t seq = 0;
  for (int i = 0; i < 1024; ++i) heap.emplace(rng.next_double() * 4096.0, seq++);
  for (auto _ : state) {
    heap.emplace(rng.next_double() * 4096.0, seq++);
    heap.erase(heap.begin());
  }
  benchmark::DoNotOptimize(heap.size());
}
BENCHMARK(BM_MultisetPifoChurn);

void BM_BucketQueueChurn(benchmark::State& state) {
  // Eiffel-style FFS bucket queue on the same workload (quantized ranks).
  baseline::BucketQueue<std::uint64_t> q(4096);
  sim::Rng rng(3);
  std::uint64_t seq = 0;
  for (int i = 0; i < 1024; ++i)
    q.push(static_cast<std::size_t>(rng.next_below(4096)), seq++);
  for (auto _ : state) {
    q.push(static_cast<std::size_t>(rng.next_below(4096)), seq++);
    benchmark::DoNotOptimize(q.pop_min());
  }
}
BENCHMARK(BM_BucketQueueChurn);

void BM_MatProgramApply(benchmark::State& state) {
  np::mat::MatProgram prog;
  np::mat::MatTable table("labeling");
  for (std::uint32_t i = 0; i < 16; ++i) {
    np::mat::TableEntry e;
    e.match = {np::mat::MatchSpec::exact(np::mat::Field::kVfPort, i)};
    e.priority = i;
    e.action = np::mat::Action::set_label(i);
    table.add_entry(e);
  }
  table.set_default_action(np::mat::Action::drop());
  prog.add_table(std::move(table));
  net::Packet pkt;
  pkt.wire_bytes = 300;
  std::uint16_t vf = 0;
  for (auto _ : state) {
    pkt.vf_port = vf++ % 16;
    benchmark::DoNotOptimize(prog.run(pkt));
  }
}
BENCHMARK(BM_MatProgramApply);

}  // namespace

BENCHMARK_MAIN();
