file(REMOVE_RECURSE
  "CMakeFiles/fig11a_fv_motivation.dir/fig11a_fv_motivation.cpp.o"
  "CMakeFiles/fig11a_fv_motivation.dir/fig11a_fv_motivation.cpp.o.d"
  "fig11a_fv_motivation"
  "fig11a_fv_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_fv_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
