# Empty dependencies file for fig11a_fv_motivation.
# This may be replaced when dependencies are built.
