# Empty dependencies file for fig13_max_throughput.
# This may be replaced when dependencies are built.
