file(REMOVE_RECURSE
  "CMakeFiles/fig13_max_throughput.dir/fig13_max_throughput.cpp.o"
  "CMakeFiles/fig13_max_throughput.dir/fig13_max_throughput.cpp.o.d"
  "fig13_max_throughput"
  "fig13_max_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_max_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
