file(REMOVE_RECURSE
  "CMakeFiles/fig11c_weighted_fq.dir/fig11c_weighted_fq.cpp.o"
  "CMakeFiles/fig11c_weighted_fq.dir/fig11c_weighted_fq.cpp.o.d"
  "fig11c_weighted_fq"
  "fig11c_weighted_fq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_weighted_fq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
