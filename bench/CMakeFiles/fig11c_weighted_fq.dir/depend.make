# Empty dependencies file for fig11c_weighted_fq.
# This may be replaced when dependencies are built.
