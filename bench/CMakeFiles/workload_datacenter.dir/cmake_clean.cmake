file(REMOVE_RECURSE
  "CMakeFiles/workload_datacenter.dir/workload_datacenter.cpp.o"
  "CMakeFiles/workload_datacenter.dir/workload_datacenter.cpp.o.d"
  "workload_datacenter"
  "workload_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
