# Empty dependencies file for workload_datacenter.
# This may be replaced when dependencies are built.
