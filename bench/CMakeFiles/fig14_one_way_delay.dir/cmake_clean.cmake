file(REMOVE_RECURSE
  "CMakeFiles/fig14_one_way_delay.dir/fig14_one_way_delay.cpp.o"
  "CMakeFiles/fig14_one_way_delay.dir/fig14_one_way_delay.cpp.o.d"
  "fig14_one_way_delay"
  "fig14_one_way_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_one_way_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
