# Empty dependencies file for fig14_one_way_delay.
# This may be replaced when dependencies are built.
