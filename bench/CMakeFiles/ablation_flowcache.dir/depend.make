# Empty dependencies file for ablation_flowcache.
# This may be replaced when dependencies are built.
