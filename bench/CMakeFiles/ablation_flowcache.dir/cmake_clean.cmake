file(REMOVE_RECURSE
  "CMakeFiles/ablation_flowcache.dir/ablation_flowcache.cpp.o"
  "CMakeFiles/ablation_flowcache.dir/ablation_flowcache.cpp.o.d"
  "ablation_flowcache"
  "ablation_flowcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flowcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
