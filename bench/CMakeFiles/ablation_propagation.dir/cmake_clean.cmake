file(REMOVE_RECURSE
  "CMakeFiles/ablation_propagation.dir/ablation_propagation.cpp.o"
  "CMakeFiles/ablation_propagation.dir/ablation_propagation.cpp.o.d"
  "ablation_propagation"
  "ablation_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
