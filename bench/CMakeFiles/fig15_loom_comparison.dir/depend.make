# Empty dependencies file for fig15_loom_comparison.
# This may be replaced when dependencies are built.
