file(REMOVE_RECURSE
  "CMakeFiles/fig15_loom_comparison.dir/fig15_loom_comparison.cpp.o"
  "CMakeFiles/fig15_loom_comparison.dir/fig15_loom_comparison.cpp.o.d"
  "fig15_loom_comparison"
  "fig15_loom_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_loom_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
