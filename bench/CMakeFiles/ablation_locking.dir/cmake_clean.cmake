file(REMOVE_RECURSE
  "CMakeFiles/ablation_locking.dir/ablation_locking.cpp.o"
  "CMakeFiles/ablation_locking.dir/ablation_locking.cpp.o.d"
  "ablation_locking"
  "ablation_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
