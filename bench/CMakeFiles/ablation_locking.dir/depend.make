# Empty dependencies file for ablation_locking.
# This may be replaced when dependencies are built.
