file(REMOVE_RECURSE
  "CMakeFiles/fig11b_fair_queueing.dir/fig11b_fair_queueing.cpp.o"
  "CMakeFiles/fig11b_fair_queueing.dir/fig11b_fair_queueing.cpp.o.d"
  "fig11b_fair_queueing"
  "fig11b_fair_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_fair_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
