# Empty dependencies file for fig11b_fair_queueing.
# This may be replaced when dependencies are built.
