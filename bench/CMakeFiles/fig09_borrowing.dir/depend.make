# Empty dependencies file for fig09_borrowing.
# This may be replaced when dependencies are built.
