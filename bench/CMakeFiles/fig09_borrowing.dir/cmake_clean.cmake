file(REMOVE_RECURSE
  "CMakeFiles/fig09_borrowing.dir/fig09_borrowing.cpp.o"
  "CMakeFiles/fig09_borrowing.dir/fig09_borrowing.cpp.o.d"
  "fig09_borrowing"
  "fig09_borrowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_borrowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
