file(REMOVE_RECURSE
  "CMakeFiles/related_software_shapers.dir/related_software_shapers.cpp.o"
  "CMakeFiles/related_software_shapers.dir/related_software_shapers.cpp.o.d"
  "related_software_shapers"
  "related_software_shapers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_software_shapers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
