# Empty dependencies file for related_software_shapers.
# This may be replaced when dependencies are built.
