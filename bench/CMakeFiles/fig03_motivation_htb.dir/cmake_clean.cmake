file(REMOVE_RECURSE
  "CMakeFiles/fig03_motivation_htb.dir/fig03_motivation_htb.cpp.o"
  "CMakeFiles/fig03_motivation_htb.dir/fig03_motivation_htb.cpp.o.d"
  "fig03_motivation_htb"
  "fig03_motivation_htb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_motivation_htb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
