# Empty dependencies file for fig03_motivation_htb.
# This may be replaced when dependencies are built.
