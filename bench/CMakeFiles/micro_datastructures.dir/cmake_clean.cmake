file(REMOVE_RECURSE
  "CMakeFiles/micro_datastructures.dir/micro_datastructures.cpp.o"
  "CMakeFiles/micro_datastructures.dir/micro_datastructures.cpp.o.d"
  "micro_datastructures"
  "micro_datastructures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_datastructures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
