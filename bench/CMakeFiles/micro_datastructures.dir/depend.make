# Empty dependencies file for micro_datastructures.
# This may be replaced when dependencies are built.
