# Empty dependencies file for ablation_update_interval.
# This may be replaced when dependencies are built.
