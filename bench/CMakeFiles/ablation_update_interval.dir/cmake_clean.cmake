file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_interval.dir/ablation_update_interval.cpp.o"
  "CMakeFiles/ablation_update_interval.dir/ablation_update_interval.cpp.o.d"
  "ablation_update_interval"
  "ablation_update_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
