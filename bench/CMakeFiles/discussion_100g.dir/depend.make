# Empty dependencies file for discussion_100g.
# This may be replaced when dependencies are built.
