file(REMOVE_RECURSE
  "CMakeFiles/discussion_100g.dir/discussion_100g.cpp.o"
  "CMakeFiles/discussion_100g.dir/discussion_100g.cpp.o.d"
  "discussion_100g"
  "discussion_100g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_100g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
