// Reproduces Fig. 11(c): FlowValve 40G weighted fair queueing with the
// nested 1:1 policy of Fig. 12 (App0:S1, App1:S2, App2:App3). App2+App3's
// arrival at 20 s must not affect App0; when App0 leaves at 30 s the rest
// share the link roughly equally (borrowing is unweighted).
#include <cstdio>
#include <cstdlib>

#include "exp/scenarios.h"
#include "stats/series_export.h"

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("=== Fig. 11(c): FlowValve 40G weighted fair queueing (Fig. 12) ===\n");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));
  auto r = exp::run_fig11c_weighted_fq(seed);

  std::printf("%s\n", r.table(sim::seconds(5)).c_str());
  std::printf("%s\n", r.ascii_chart(sim::Rate::gigabits_per_sec(40)).c_str());

  std::printf("Checkpoints:\n");
  std::printf("  20-30s: App0 %5.2f (weights hold it at ~20 despite App2/3 joining)\n",
              r.mean_rate("App0", 23, 30).gbps());
  std::printf("          App1 %5.2f  App2 %5.2f  App3 %5.2f (~10/5/5)\n",
              r.mean_rate("App1", 23, 30).gbps(), r.mean_rate("App2", 23, 30).gbps(),
              r.mean_rate("App3", 23, 30).gbps());
  std::printf("  30-40s (App0 gone): App1 %5.2f  App2 %5.2f  App3 %5.2f "
              "(roughly equal — unweighted borrowing)\n",
              r.mean_rate("App1", 33, 40).gbps(), r.mean_rate("App2", 33, 40).gbps(),
              r.mean_rate("App3", 33, 40).gbps());
  std::printf("  total 33-40s: %5.2f Gbps\n", r.total_rate(33, 40).gbps());
  if (argc > 2) {
    // argv[2]: CSV output path with the full 100 ms-binned series.
    if (stats::write_series_csv(argv[2], r.named_series(), r.horizon))
      std::printf("\nwrote %s\n", argv[2]);
  }
  return 0;
}
