// Ablation for Fig. 10 (§IV-D): token-rate propagation delay down a strict
// priority chain A0 > A1 > A2. A0's demand steps down at t=50 ms; A1 reacts
// one update epoch later, A2 one more epoch after that. We sample each
// class's θ from the shared scheduling tree to measure the delays.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/flowvalve.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"
#include "stats/stats.h"
#include "traffic/generators.h"

int main(int argc, char** argv) {
  using namespace flowvalve;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sim::Simulator simulator;
  np::NpConfig nic = np::agilio_cx_40g();

  // Strict priority chain as siblings with ascending prio levels.
  std::string script =
      "fv qdisc add dev nic0 root handle 1: htb rate 10gbit\n"
      "fv class add dev nic0 parent 1: classid 1:10 name A0 prio 0 weight 1\n"
      "fv class add dev nic0 parent 1: classid 1:11 name A1 prio 1 weight 1\n"
      "fv class add dev nic0 parent 1: classid 1:12 name A2 prio 2 weight 1\n"
      "fv filter add dev nic0 pref 10 vf 0 classid 1:10\n"
      "fv filter add dev nic0 pref 11 vf 1 classid 1:11\n"
      "fv filter add dev nic0 pref 12 vf 2 classid 1:12\n";

  core::FlowValveEngine engine(np::engine_options_for(nic));
  const std::string err = engine.configure(script);
  if (!err.empty()) {
    std::fprintf(stderr, "config error: %s\n", err.c_str());
    return 1;
  }
  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(simulator, nic, processor);

  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  auto make_cbr = [&](std::uint32_t app, double gbps) {
    traffic::FlowSpec spec;
    spec.flow_id = ids.next_flow_id();
    spec.app_id = app;
    spec.vf_port = static_cast<std::uint16_t>(app);
    spec.wire_bytes = 1518;
    spec.tuple.src_ip = 0x0a000030 + app;
    spec.tuple.dst_ip = 0x0a000002;
    spec.tuple.src_port = static_cast<std::uint16_t>(24000 + app);
    spec.tuple.dst_port = 5001;
    return std::make_unique<traffic::CbrFlow>(simulator, router, ids, spec,
                                              sim::Rate::gigabits_per_sec(gbps),
                                              rng.split(app), 0.02);
  };
  auto a0 = make_cbr(0, 8.0);
  auto a1 = make_cbr(1, 4.0);
  auto a2 = make_cbr(2, 9.0);
  a0->start();
  a1->start();
  a2->start();

  // Sample θ of A1/A2 every 100 µs.
  const auto& tree = engine.tree();
  const auto id1 = tree.find("A1");
  const auto id2 = tree.find("A2");
  struct Sample {
    double t_ms;
    double th1, th2;
  };
  std::vector<Sample> samples;
  sim::PeriodicTimer sampler(simulator, sim::microseconds(100), [&] {
    samples.push_back({sim::to_millis(simulator.now()), tree.at(id1).theta.gbps(),
                       tree.at(id2).theta.gbps()});
  });
  sampler.start();

  // A0 steps from 8G down to 1G at t=50 ms.
  simulator.schedule_at(sim::milliseconds(50), [&] {
    a0->set_rate(sim::Rate::gigabits_per_sec(1.0));
  });
  simulator.run_until(sim::milliseconds(80));

  std::printf("=== Ablation (Fig. 10): θ propagation after A0 steps 8G→1G @50ms ===\n");
  std::printf("seed=%llu, update_interval=%.0fus\n\n",
              static_cast<unsigned long long>(seed),
              sim::to_micros(engine.tree().params().update_interval));

  // Detect when each class's θ first rises 30% above its pre-step value.
  double pre1 = 0, pre2 = 0;
  for (const auto& s : samples)
    if (s.t_ms > 45 && s.t_ms <= 50) {
      pre1 = s.th1;
      pre2 = s.th2;
    }
  double t1 = -1, t2 = -1;
  for (const auto& s : samples) {
    if (s.t_ms <= 50) continue;
    if (t1 < 0 && s.th1 > pre1 + 1.0) t1 = s.t_ms;
    if (t2 < 0 && s.th2 > pre2 + 1.0) t2 = s.t_ms;
  }
  std::printf("pre-step: θ_A1=%.2fG θ_A2=%.2fG (residual shares under A0@8G)\n", pre1,
              pre2);
  std::printf("ΔD_A1 = %.2f ms, ΔD_A2 = %.2f ms (A2 adjusts after A1 — Fig. 10's\n"
              "cascade; both within a few update epochs + Γ smoothing)\n\n",
              t1 - 50, t2 - 50);

  std::printf("θ trace around the step (ms: θ_A1 θ_A2):\n");
  for (const auto& s : samples) {
    if (s.t_ms < 48 || s.t_ms > 62) continue;
    if (static_cast<int>(s.t_ms * 10) % 5 != 0) continue;  // every 0.5 ms
    std::printf("  %6.1f: %5.2f %5.2f\n", s.t_ms, s.th1, s.th2);
  }
  return 0;
}
