#include "host/probes.h"

#include <algorithm>

namespace flowvalve::host {

// ---------------------------------------------------------- LatencyProbe --

LatencyProbe::LatencyProbe(sim::Simulator& sim, traffic::FlowRouter& router,
                           traffic::IdAllocator& ids, traffic::FlowSpec spec, Rate rate,
                           sim::Rng rng)
    : sim_(sim), router_(router), ids_(ids), spec_(spec), rate_(rate), rng_(rng) {
  router_.register_flow(spec_.flow_id, this);
}

LatencyProbe::~LatencyProbe() {
  stop();
  router_.unregister_flow(spec_.flow_id);
}

void LatencyProbe::start() {
  if (active_) return;
  active_ = true;
  send_next();
}

void LatencyProbe::stop() {
  active_ = false;
  send_event_.cancel();
}

void LatencyProbe::send_next() {
  if (!active_) return;
  net::Packet pkt = traffic::make_packet(spec_, ids_, sim_.now(), seq_++);
  ++sent_;
  router_.device().submit(std::move(pkt));
  const double gap_ns =
      static_cast<double>(spec_.wire_bytes) * 8e9 / std::max(rate_.bps(), 1e3);
  // Slightly jittered so probes do not phase-lock with poll loops.
  const double jitter = 1.0 + 0.2 * (rng_.next_double() - 0.5);
  send_event_ = sim_.schedule_after(
      std::max<SimDuration>(1, static_cast<SimDuration>(gap_ns * jitter)),
      [this] { send_next(); });
}

void LatencyProbe::on_delivered(const net::Packet& pkt) {
  latency_.add(pkt.delivered_at - pkt.created_at);
}

// -------------------------------------------------------- SaturationLoad --

SaturationLoad::SaturationLoad(sim::Simulator& sim, traffic::FlowRouter& router,
                               traffic::IdAllocator& ids, Config config, sim::Rng rng)
    : sim_(sim), router_(router), ids_(ids), config_(config), rng_(rng) {
  specs_.reserve(config_.num_flows);
  for (unsigned i = 0; i < config_.num_flows; ++i) {
    traffic::FlowSpec spec;
    spec.flow_id = ids_.next_flow_id();
    spec.app_id = config_.app_id + i % 4;  // spread over apps/classes
    spec.vf_port = static_cast<std::uint16_t>(config_.vf_base + i % config_.num_vfs);
    spec.wire_bytes = config_.wire_bytes;
    spec.tuple.src_ip = 0x0a000100 + i;
    spec.tuple.dst_ip = 0x0a000002;
    spec.tuple.src_port = static_cast<std::uint16_t>(30000 + i);
    spec.tuple.dst_port = 5201;
    spec.tuple.proto = net::IpProto::kUdp;
    router_.register_flow(spec.flow_id, this);
    specs_.push_back(spec);
  }
}

SaturationLoad::~SaturationLoad() {
  stop();
  for (const auto& spec : specs_) router_.unregister_flow(spec.flow_id);
}

void SaturationLoad::start() {
  if (active_) return;
  active_ = true;
  send_next();
}

void SaturationLoad::stop() {
  active_ = false;
  send_event_.cancel();
}

void SaturationLoad::send_next() {
  if (!active_) return;
  const traffic::FlowSpec& spec = specs_[rr_];
  rr_ = (rr_ + 1) % specs_.size();
  net::Packet pkt = traffic::make_packet(spec, ids_, sim_.now(), seq_++);
  ++sent_;
  router_.device().submit(std::move(pkt));
  // Aggregate pacing across all flows.
  const double gap_ns =
      static_cast<double>(config_.wire_bytes + net::kEthernetOverheadBytes) * 8e9 /
      std::max(config_.offered.bps(), 1e3);
  send_event_ = sim_.schedule_after(
      std::max<SimDuration>(1, static_cast<SimDuration>(gap_ns)), [this] { send_next(); });
}

void SaturationLoad::on_delivered(const net::Packet& pkt) {
  if (pkt.wire_tx_done >= measure_from_ && measure_from_ > 0) ++counted_;
}

double SaturationLoad::delivered_mpps(SimTime until) const {
  const SimDuration window = until - measure_from_;
  if (window <= 0 || measure_from_ == 0) return 0.0;
  return static_cast<double>(counted_) / sim::to_seconds(window) / 1e6;
}

}  // namespace flowvalve::host
