// Measurement probes mirroring the paper's tooling:
//  - LatencyProbe  — netperf-style one-way delay sampler (Fig. 14)
//  - SaturationLoad — fixed-size full-speed injector for the maximum
//    throughput sweeps (Fig. 13), measuring delivered Mpps over a window.
#pragma once

#include <memory>
#include <vector>

#include "sim/rng.h"
#include "stats/stats.h"
#include "traffic/source.h"

namespace flowvalve::host {

using sim::Rate;
using sim::SimDuration;
using sim::SimTime;

/// Sends small probe packets at a modest rate and records the one-way delay
/// (created → delivered) of every probe that survives.
class LatencyProbe final : public traffic::TrafficSource {
 public:
  LatencyProbe(sim::Simulator& sim, traffic::FlowRouter& router, traffic::IdAllocator& ids,
               traffic::FlowSpec spec, Rate rate, sim::Rng rng);
  ~LatencyProbe() override;

  void start();
  void stop();

  const stats::LatencyStats& latency() const { return latency_; }
  std::uint64_t sent() const { return sent_; }
  std::uint64_t lost() const { return lost_; }

  void on_delivered(const net::Packet& pkt) override;
  void on_dropped(const net::Packet&) override { ++lost_; }

 private:
  void send_next();

  sim::Simulator& sim_;
  traffic::FlowRouter& router_;
  traffic::IdAllocator& ids_;
  traffic::FlowSpec spec_;
  Rate rate_;
  sim::Rng rng_;
  bool active_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
  stats::LatencyStats latency_;
  sim::EventHandle send_event_;
};

/// Open-loop saturation load: `num_flows` flows of fixed-size frames with an
/// aggregate offered rate, spread over VF ports. Counts deliveries after a
/// warmup mark to compute achieved Mpps, mirroring how the paper stresses
/// each scheduler with fixed-length packets at full speed.
class SaturationLoad final : public traffic::TrafficSource {
 public:
  struct Config {
    unsigned num_flows = 16;
    std::uint32_t wire_bytes = 64;
    Rate offered = Rate::gigabits_per_sec(40);
    std::uint32_t app_id = 0;
    std::uint16_t vf_base = 0;
    unsigned num_vfs = 4;
  };

  SaturationLoad(sim::Simulator& sim, traffic::FlowRouter& router,
                 traffic::IdAllocator& ids, Config config, sim::Rng rng);
  ~SaturationLoad() override;

  void start();
  void stop();

  void begin_measurement() { measure_from_ = sim_.now(); counted_ = 0; }
  double delivered_mpps(SimTime until) const;
  std::uint64_t sent() const { return sent_; }
  std::uint64_t counted() const { return counted_; }

  void on_delivered(const net::Packet& pkt) override;
  void on_dropped(const net::Packet&) override {}

 private:
  void send_next();

  sim::Simulator& sim_;
  traffic::FlowRouter& router_;
  traffic::IdAllocator& ids_;
  Config config_;
  sim::Rng rng_;
  std::vector<traffic::FlowSpec> specs_;
  bool active_ = false;
  std::size_t rr_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  SimTime measure_from_ = 0;
  std::uint64_t counted_ = 0;
  sim::EventHandle send_event_;
};

}  // namespace flowvalve::host
