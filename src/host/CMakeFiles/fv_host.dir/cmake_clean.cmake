file(REMOVE_RECURSE
  "CMakeFiles/fv_host.dir/probes.cpp.o"
  "CMakeFiles/fv_host.dir/probes.cpp.o.d"
  "libfv_host.a"
  "libfv_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
