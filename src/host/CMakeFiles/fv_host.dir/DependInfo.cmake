
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/probes.cpp" "src/host/CMakeFiles/fv_host.dir/probes.cpp.o" "gcc" "src/host/CMakeFiles/fv_host.dir/probes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/sim/CMakeFiles/fv_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/fv_net.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/fv_stats.dir/DependInfo.cmake"
  "/root/repo/src/traffic/CMakeFiles/fv_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
