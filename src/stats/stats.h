// Measurement utilities: EWMA filters, windowed rate meters, binned time
// series (throughput-over-time figures), and latency histograms with
// percentile queries (one-way-delay figure).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace flowvalve::stats {

using sim::Rate;
using sim::SimDuration;
using sim::SimTime;

/// Exponentially weighted moving average with explicit time-decay: the
/// weight of old samples decays with the gap between observations, so the
/// filter behaves identically regardless of sampling cadence.
class Ewma {
 public:
  /// `half_life` — time after which an old sample's weight halves.
  explicit Ewma(SimDuration half_life = sim::milliseconds(2)) : half_life_(half_life) {}

  void set_half_life(SimDuration half_life) { half_life_ = half_life; }

  void observe(SimTime now, double value);
  double value() const { return value_; }
  bool has_value() const { return initialized_; }
  void reset();

 private:
  SimDuration half_life_;
  double value_ = 0.0;
  SimTime last_ = 0;
  bool initialized_ = false;
};

/// Measures a byte rate over fixed windows: call add(now, bytes) on every
/// packet; rate() reports the rate of the most recently *completed* window
/// blended with the live partial window. This mirrors how the paper's
/// scheduling function evaluates Γ per update epoch.
class RateMeter {
 public:
  explicit RateMeter(SimDuration window = sim::milliseconds(10));

  void add(SimTime now, std::uint64_t bytes);
  Rate rate(SimTime now) const;
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_packets() const { return total_packets_; }
  void reset();

 private:
  void roll(SimTime now) const;

  SimDuration window_;
  mutable SimTime window_start_ = 0;
  mutable std::uint64_t window_bytes_ = 0;
  mutable double last_window_rate_bps_ = 0.0;
  mutable bool have_last_window_ = false;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_packets_ = 0;
};

/// Per-interval byte accounting producing a throughput time series — the
/// backbone of every Figure-3/11 style plot. Bins are fixed-width from t=0.
class ThroughputSeries {
 public:
  explicit ThroughputSeries(SimDuration bin_width = sim::milliseconds(100));

  void add(SimTime now, std::uint64_t bytes);

  /// Number of complete+partial bins touched so far.
  std::size_t bins() const { return bytes_per_bin_.size(); }

  /// Average rate within bin `i`.
  Rate bin_rate(std::size_t i) const;

  /// Bin midpoint time in seconds (for plotting).
  double bin_mid_seconds(std::size_t i) const;

  SimDuration bin_width() const { return bin_width_; }

  /// Average rate over bins [from, to) — used by conformance assertions.
  Rate mean_rate(std::size_t from, std::size_t to) const;

  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  SimDuration bin_width_;
  std::vector<std::uint64_t> bytes_per_bin_;
  std::uint64_t total_bytes_ = 0;
};

/// Latency histogram with exact storage of samples (sample counts in our
/// experiments are small enough) and percentile/mean/stddev queries.
class LatencyStats {
 public:
  void add(SimDuration sample);

  std::size_t count() const { return samples_.size(); }
  double mean_us() const;
  double stddev_us() const;
  double percentile_us(double p) const;  // p in [0,100]
  double min_us() const;
  double max_us() const;
  void reset() { samples_.clear(); sorted_ = true; }

 private:
  void ensure_sorted() const;
  mutable std::vector<SimDuration> samples_;
  mutable bool sorted_ = true;
};

/// Basic packet counters kept by every scheduler/pipeline stage.
struct PacketCounters {
  std::uint64_t offered_packets = 0;
  std::uint64_t offered_bytes = 0;
  std::uint64_t forwarded_packets = 0;
  std::uint64_t forwarded_bytes = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;

  double drop_fraction() const {
    return offered_packets == 0
               ? 0.0
               : static_cast<double>(dropped_packets) / static_cast<double>(offered_packets);
  }
  void on_offered(std::uint64_t bytes) { ++offered_packets; offered_bytes += bytes; }
  void on_forwarded(std::uint64_t bytes) { ++forwarded_packets; forwarded_bytes += bytes; }
  void on_dropped(std::uint64_t bytes) { ++dropped_packets; dropped_bytes += bytes; }
};

/// Fixed-layout console table printer used by the benches so that every
/// figure/table reproduction prints in a uniform, diff-able format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render to stdout.
  void print() const;
  std::string to_string() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flowvalve::stats
