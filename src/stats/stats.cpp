#include "stats/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace flowvalve::stats {

// ---------------------------------------------------------------- Ewma ----

void Ewma::observe(SimTime now, double value) {
  if (!initialized_) {
    value_ = value;
    last_ = now;
    initialized_ = true;
    return;
  }
  const SimDuration dt = now - last_;
  last_ = now;
  if (dt <= 0) {
    // Same-instant observation: average in with half weight.
    value_ = 0.5 * value_ + 0.5 * value;
    return;
  }
  const double decay = std::exp2(-static_cast<double>(dt) / static_cast<double>(half_life_));
  value_ = decay * value_ + (1.0 - decay) * value;
}

void Ewma::reset() {
  value_ = 0.0;
  last_ = 0;
  initialized_ = false;
}

// ----------------------------------------------------------- RateMeter ----

RateMeter::RateMeter(SimDuration window) : window_(window) { assert(window > 0); }

void RateMeter::roll(SimTime now) const {
  while (now >= window_start_ + window_) {
    last_window_rate_bps_ =
        static_cast<double>(window_bytes_) * 8e9 / static_cast<double>(window_);
    have_last_window_ = true;
    window_bytes_ = 0;
    window_start_ += window_;
    // If the gap spans several empty windows, they all report zero; skip
    // directly when far behind to stay O(1).
    if (now - window_start_ > 2 * window_) {
      last_window_rate_bps_ = 0.0;
      window_start_ = now - (now % window_);
    }
  }
}

void RateMeter::add(SimTime now, std::uint64_t bytes) {
  roll(now);
  window_bytes_ += bytes;
  total_bytes_ += bytes;
  ++total_packets_;
}

Rate RateMeter::rate(SimTime now) const {
  roll(now);
  const SimDuration elapsed = now - window_start_;
  if (!have_last_window_) {
    if (elapsed <= 0) return Rate::zero();
    return Rate::bits_per_sec(static_cast<double>(window_bytes_) * 8e9 /
                              static_cast<double>(elapsed));
  }
  // Blend completed window with live partial window, weighted by coverage.
  const double frac = static_cast<double>(elapsed) / static_cast<double>(window_);
  const double live_bps =
      elapsed > 0 ? static_cast<double>(window_bytes_) * 8e9 / static_cast<double>(elapsed) : 0.0;
  return Rate::bits_per_sec((1.0 - frac) * last_window_rate_bps_ + frac * live_bps);
}

void RateMeter::reset() {
  window_start_ = 0;
  window_bytes_ = 0;
  last_window_rate_bps_ = 0.0;
  have_last_window_ = false;
  total_bytes_ = 0;
  total_packets_ = 0;
}

// ---------------------------------------------------- ThroughputSeries ----

ThroughputSeries::ThroughputSeries(SimDuration bin_width) : bin_width_(bin_width) {
  assert(bin_width > 0);
}

void ThroughputSeries::add(SimTime now, std::uint64_t bytes) {
  const auto bin = static_cast<std::size_t>(now / bin_width_);
  if (bin >= bytes_per_bin_.size()) bytes_per_bin_.resize(bin + 1, 0);
  bytes_per_bin_[bin] += bytes;
  total_bytes_ += bytes;
}

Rate ThroughputSeries::bin_rate(std::size_t i) const {
  if (i >= bytes_per_bin_.size()) return Rate::zero();
  return Rate::bits_per_sec(static_cast<double>(bytes_per_bin_[i]) * 8e9 /
                            static_cast<double>(bin_width_));
}

double ThroughputSeries::bin_mid_seconds(std::size_t i) const {
  return sim::to_seconds(static_cast<SimTime>(i) * bin_width_ + bin_width_ / 2);
}

Rate ThroughputSeries::mean_rate(std::size_t from, std::size_t to) const {
  if (from >= to) return Rate::zero();
  std::uint64_t bytes = 0;
  for (std::size_t i = from; i < to && i < bytes_per_bin_.size(); ++i)
    bytes += bytes_per_bin_[i];
  const auto span = static_cast<double>((to - from) * static_cast<std::size_t>(bin_width_));
  return Rate::bits_per_sec(static_cast<double>(bytes) * 8e9 / span);
}

// -------------------------------------------------------- LatencyStats ----

void LatencyStats::add(SimDuration sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void LatencyStats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyStats::mean_us() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (auto s : samples_) acc += sim::to_micros(s);
  return acc / static_cast<double>(samples_.size());
}

double LatencyStats::stddev_us() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean_us();
  double acc = 0.0;
  for (auto s : samples_) {
    const double d = sim::to_micros(s) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double LatencyStats::percentile_us(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sim::to_micros(samples_[lo]) * (1.0 - frac) + sim::to_micros(samples_[hi]) * frac;
}

double LatencyStats::min_us() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return sim::to_micros(samples_.front());
}

double LatencyStats::max_us() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return sim::to_micros(samples_.back());
}

// -------------------------------------------------------- TablePrinter ----

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << std::string(width[c] + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace flowvalve::stats
