# Empty dependencies file for fv_stats.
# This may be replaced when dependencies are built.
