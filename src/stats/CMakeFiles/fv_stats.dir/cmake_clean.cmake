file(REMOVE_RECURSE
  "CMakeFiles/fv_stats.dir/series_export.cpp.o"
  "CMakeFiles/fv_stats.dir/series_export.cpp.o.d"
  "CMakeFiles/fv_stats.dir/stats.cpp.o"
  "CMakeFiles/fv_stats.dir/stats.cpp.o.d"
  "libfv_stats.a"
  "libfv_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
