file(REMOVE_RECURSE
  "libfv_stats.a"
)
