// Rendering helpers for throughput time series: CSV export for offline
// plotting and a compact ASCII strip chart that lets the Fig. 3/11 benches
// show the *shape* of each series directly in the terminal.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "stats/stats.h"

namespace flowvalve::stats {

/// A named series sampled on a shared bin grid.
struct NamedSeries {
  std::string name;
  const ThroughputSeries* series = nullptr;
};

/// Emit "time_s,name1_gbps,name2_gbps,..." rows covering [0, horizon).
std::string series_to_csv(const std::vector<NamedSeries>& series, SimTime horizon);

/// Write CSV to a file; returns false on I/O failure.
bool write_series_csv(const std::string& path, const std::vector<NamedSeries>& series,
                      SimTime horizon);

/// Render each series as one row of unicode block characters, scaled to
/// `max_rate`, with `cols` columns covering [0, horizon). A legend line maps
/// glyph height to Gbps.
std::string series_to_ascii(const std::vector<NamedSeries>& series, SimTime horizon,
                            Rate max_rate, std::size_t cols = 60);

/// Print a per-interval rate table: one row per `step` of virtual time, one
/// column per series (in Gbps). This is the primary textual form of the
/// throughput-over-time figures.
std::string series_to_table(const std::vector<NamedSeries>& series, SimTime horizon,
                            SimDuration step);

}  // namespace flowvalve::stats
