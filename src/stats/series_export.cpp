#include "stats/series_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace flowvalve::stats {
namespace {

double series_rate_at(const ThroughputSeries& s, SimTime t0, SimTime t1) {
  // Average the bins overlapping [t0, t1).
  const SimDuration bw = s.bin_width();
  const auto b0 = static_cast<std::size_t>(t0 / bw);
  const auto b1 = static_cast<std::size_t>((t1 + bw - 1) / bw);
  if (b1 <= b0) return s.bin_rate(b0).gbps();
  double acc = 0.0;
  for (std::size_t b = b0; b < b1; ++b) acc += s.bin_rate(b).gbps();
  return acc / static_cast<double>(b1 - b0);
}

}  // namespace

std::string series_to_csv(const std::vector<NamedSeries>& series, SimTime horizon) {
  std::ostringstream out;
  out << "time_s";
  for (const auto& s : series) out << ',' << s.name << "_gbps";
  out << '\n';
  if (series.empty()) return out.str();
  const SimDuration bw = series.front().series->bin_width();
  const auto nbins = static_cast<std::size_t>(horizon / bw);
  char buf[64];
  for (std::size_t b = 0; b < nbins; ++b) {
    std::snprintf(buf, sizeof(buf), "%.3f", series.front().series->bin_mid_seconds(b));
    out << buf;
    for (const auto& s : series) {
      std::snprintf(buf, sizeof(buf), "%.4f", s.series->bin_rate(b).gbps());
      out << ',' << buf;
    }
    out << '\n';
  }
  return out.str();
}

bool write_series_csv(const std::string& path, const std::vector<NamedSeries>& series,
                      SimTime horizon) {
  std::ofstream f(path);
  if (!f) return false;
  f << series_to_csv(series, horizon);
  return static_cast<bool>(f);
}

std::string series_to_ascii(const std::vector<NamedSeries>& series, SimTime horizon,
                            Rate max_rate, std::size_t cols) {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  std::ostringstream out;
  std::size_t name_w = 0;
  for (const auto& s : series) name_w = std::max(name_w, s.name.size());
  for (const auto& s : series) {
    out << s.name << std::string(name_w - s.name.size(), ' ') << " |";
    for (std::size_t c = 0; c < cols; ++c) {
      const SimTime t0 = static_cast<SimTime>(static_cast<double>(horizon) * c / cols);
      const SimTime t1 = static_cast<SimTime>(static_cast<double>(horizon) * (c + 1) / cols);
      const double g = series_rate_at(*s.series, t0, t1);
      int level = max_rate.gbps() <= 0.0
                      ? 0
                      : static_cast<int>(g / max_rate.gbps() * 8.0 + 0.5);
      level = std::clamp(level, 0, 8);
      out << kBlocks[level];
    }
    out << "| 0.." << max_rate.gbps() << " Gbps\n";
  }
  return out.str();
}

std::string series_to_table(const std::vector<NamedSeries>& series, SimTime horizon,
                            SimDuration step) {
  TablePrinter::fmt(0.0);  // keep linker honest about inline usage
  std::vector<std::string> headers{"t(s)"};
  for (const auto& s : series) headers.push_back(s.name + "(Gbps)");
  headers.push_back("total(Gbps)");
  TablePrinter tp(std::move(headers));
  for (SimTime t = 0; t + step <= horizon; t += step) {
    std::vector<std::string> row;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%5.1f-%5.1f", sim::to_seconds(t),
                  sim::to_seconds(t + step));
    row.emplace_back(buf);
    double total = 0.0;
    for (const auto& s : series) {
      const double g = series_rate_at(*s.series, t, t + step);
      total += g;
      row.push_back(TablePrinter::fmt(g, 2));
    }
    row.push_back(TablePrinter::fmt(total, 2));
    tp.add_row(std::move(row));
  }
  return tp.to_string();
}

}  // namespace flowvalve::stats
