// Adapter plugging the FlowValve engine into the NP pipeline's worker loop.
#pragma once

#include "core/flowvalve.h"
#include "np/nic_pipeline.h"

namespace flowvalve::np {

/// Engine options whose virtual-time lock hold matches the NP clock and
/// whose scheduling discipline follows the NIC's configured backend.
inline core::FlowValveEngine::Options engine_options_for(const NpConfig& cfg) {
  core::FlowValveEngine::Options opt;
  opt.sched_costs.lock_hold_ns = cfg.cycles_to_ns(opt.sched_costs.update_cycles);
  opt.backend = cfg.backend;
  opt.emc.capacity = cfg.emc_capacity;
  opt.emc.idle_timeout_ticks = static_cast<std::uint64_t>(cfg.emc_idle_timeout);
  return opt;
}

class FlowValveProcessor final : public PacketProcessor {
 public:
  explicit FlowValveProcessor(core::FlowValveEngine& engine) : engine_(engine) {}

  Outcome process(net::Packet& pkt, sim::SimTime now) override {
    const auto r = engine_.process(pkt, now);
    return {r.verdict == core::Verdict::kForward, r.cycles};
  }

  /// Burst path: hand the whole burst to the engine so it can amortize
  /// EMC lookups and repeated tail drops across same-flow packets (exact
  /// per the batch-1 differential oracle).
  void process_batch(BatchSlot* slots, std::size_t n, sim::SimTime now) override {
    entries_.clear();
    for (std::size_t i = 0; i < n; ++i)
      entries_.push_back({slots[i].pkt, {}});
    engine_.process_batch(entries_.data(), n, now);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& r = entries_[i].result;
      slots[i].out = {r.verdict == core::Verdict::kForward, r.cycles};
    }
  }

 private:
  core::FlowValveEngine& engine_;
  std::vector<core::FlowValveEngine::BatchEntry> entries_;  // scratch
};

}  // namespace flowvalve::np
