file(REMOVE_RECURSE
  "CMakeFiles/fv_np.dir/mat.cpp.o"
  "CMakeFiles/fv_np.dir/mat.cpp.o.d"
  "CMakeFiles/fv_np.dir/nic_pipeline.cpp.o"
  "CMakeFiles/fv_np.dir/nic_pipeline.cpp.o.d"
  "libfv_np.a"
  "libfv_np.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_np.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
