# Empty dependencies file for fv_np.
# This may be replaced when dependencies are built.
