file(REMOVE_RECURSE
  "libfv_np.a"
)
