// P4-style match-action table engine.
//
// The paper's back-end processing pipeline is "developed in P4 and the
// scheduling function is written in Micro-C. The P4 and Micro-C programs
// are linked together to run on the SmartNIC." This module is the P4 side:
// a parser that extracts header fields into a field vector, match-action
// tables with exact/ternary/LPM/any match kinds, and actions that set the
// QoS label metadata or drop — sufficient to express FlowValve's labeling
// function (and arbitrary ACLs) as a table program.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "net/headers.h"
#include "net/packet.h"

namespace flowvalve::np::mat {

/// Header fields the parser exposes to tables (P4 "headers + metadata").
enum class Field : std::uint8_t {
  kVfPort = 0,
  kSrcIp,
  kDstIp,
  kSrcPort,
  kDstPort,
  kProto,
  kDscp,
  kFrameLen,
  kCount,  // sentinel
};

/// Parsed field vector.
class FieldValues {
 public:
  std::uint32_t get(Field f) const { return v_[static_cast<std::size_t>(f)]; }
  void set(Field f, std::uint32_t value) { v_[static_cast<std::size_t>(f)] = value; }

 private:
  std::uint32_t v_[static_cast<std::size_t>(Field::kCount)] = {};
};

/// Extract the field vector from simulator packet metadata.
FieldValues parse_packet(const net::Packet& pkt);

/// Extract the field vector from raw frame bytes (full parser path);
/// nullopt on malformed frames.
std::optional<FieldValues> parse_frame_bytes(std::span<const std::uint8_t> frame,
                                             std::uint16_t vf_port);

/// One match criterion on a field.
struct MatchSpec {
  enum class Kind : std::uint8_t { kExact, kTernary, kLpm, kAny };

  Field field = Field::kVfPort;
  Kind kind = Kind::kAny;
  std::uint32_t value = 0;
  std::uint32_t mask = 0;       // ternary mask
  std::uint8_t prefix_len = 0;  // lpm

  bool matches(std::uint32_t v) const;

  static MatchSpec exact(Field f, std::uint32_t value);
  static MatchSpec ternary(Field f, std::uint32_t value, std::uint32_t mask);
  static MatchSpec lpm(Field f, std::uint32_t value, std::uint8_t prefix_len);
  static MatchSpec any(Field f);
};

/// Table actions (P4 action set of the labeling pipeline).
struct Action {
  enum class Kind : std::uint8_t { kNoAction, kSetLabel, kDrop, kGoto };
  Kind kind = Kind::kNoAction;
  std::uint32_t arg = 0;  // label id, or next-table index for kGoto

  static Action set_label(net::ClassLabelId label) {
    return {Kind::kSetLabel, label};
  }
  static Action drop() { return {Kind::kDrop, 0}; }
  static Action go_to(std::uint32_t table_index) { return {Kind::kGoto, table_index}; }
  static Action none() { return {}; }
};

struct TableEntry {
  std::vector<MatchSpec> match;
  std::uint32_t priority = 0;  // lower wins (tc pref semantics)
  Action action;
  std::string name;  // diagnostics
};

/// A single match-action table: priority-ordered entries plus a default.
class MatTable {
 public:
  explicit MatTable(std::string name) : name_(std::move(name)) {}

  void add_entry(TableEntry entry);
  void set_default_action(Action a) { default_action_ = a; }

  /// First (lowest-priority-number) matching entry's action.
  const Action& lookup(const FieldValues& fields) const;

  const std::string& name() const { return name_; }
  std::size_t size() const { return entries_.size(); }

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t defaults = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::string name_;
  std::vector<TableEntry> entries_;  // kept sorted by priority
  Action default_action_;
  mutable Stats stats_;
};

/// A straight-line table program (P4 ingress control): tables applied in
/// order; kGoto skips forward (no loops — P4 pipelines are acyclic);
/// kSetLabel writes the label metadata; kDrop short-circuits.
class MatProgram {
 public:
  struct Result {
    bool drop = false;
    net::ClassLabelId label = net::kUnclassified;
    std::uint32_t tables_visited = 0;
  };

  /// Returns the table index for later kGoto targets.
  std::uint32_t add_table(MatTable table);
  MatTable& table(std::uint32_t index) { return tables_[index]; }
  std::size_t table_count() const { return tables_.size(); }

  Result apply(const FieldValues& fields) const;

  /// Convenience: parse + apply + write the packet's label.
  Result run(net::Packet& pkt) const;

 private:
  std::vector<MatTable> tables_;
};

/// Compile a FlowValve classifier's wildcard rules into a one-table MAT
/// program (the shape the prototype's P4 labeling stage takes). The
/// program's classification is equivalent to the rule walk: first match by
/// pref wins, unmatched packets get the classifier's default label (or an
/// explicit drop when there is none).
MatProgram compile_labeling_program(const core::Classifier& classifier);

}  // namespace flowvalve::np::mat
