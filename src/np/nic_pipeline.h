// The simulated NP-based SmartNIC processing pipeline (paper Fig. 4).
//
// Packets submitted on SR-IOV VF ports wait in per-VF Rx rings; idle worker
// micro-engines pull them (run-to-completion), invoke the plugged
// PacketProcessor (FlowValve, or a null forwarder), and either drop the
// packet or append it to the shared Tx ring, which the traffic manager
// drains at wire rate. Everything runs in virtual time on the discrete-event
// simulator; worker parallelism is modeled via per-worker busy intervals.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include <optional>

#include "net/device.h"
#include "net/packet.h"
#include "np/np_config.h"
#include "sim/simulator.h"
#include "stats/stats.h"

namespace flowvalve::np {

/// What a worker core does to each packet. Implementations return the
/// forwarding decision plus the micro-engine cycles consumed.
class PacketProcessor {
 public:
  virtual ~PacketProcessor() = default;
  struct Outcome {
    bool forward = true;
    std::uint32_t cycles = 0;
  };
  virtual Outcome process(net::Packet& pkt, sim::SimTime now) = 0;
};

/// Forwards everything at zero extra cost — the "FlowValve disabled" mode
/// used by the paper to isolate the pipeline's intrinsic delay.
class NullProcessor final : public PacketProcessor {
 public:
  Outcome process(net::Packet&, sim::SimTime) override { return {true, 0}; }
};

enum class DropReason : std::uint8_t {
  kVfRingFull,     // PCIe-side backpressure
  kScheduler,      // FlowValve's specialized tail drop
  kTxRingFull,     // common tail drop at the shared FIFO
  kReorderFlush,   // completion arrived after its slot was flushed as lost
};

const char* drop_reason_name(DropReason reason);

/// Passive tap on every pipeline lifecycle event, independent of the
/// delivery/drop callbacks (which the traffic FlowRouter owns). src/check
/// attaches its invariant harness here; all hooks default to no-ops so the
/// pipeline costs nothing when unobserved.
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;
  /// Host submitted a packet (before the VF-ring admission check).
  virtual void on_submit(const net::Packet&, sim::SimTime) {}
  /// The load balancer handed the packet to an idle worker; `busy` is the
  /// run-to-completion interval the worker is occupied for.
  virtual void on_dispatch(const net::Packet&, unsigned /*worker*/,
                           std::uint64_t /*ingress_seq*/, sim::SimTime,
                           sim::SimDuration /*busy*/) {}
  virtual void on_drop(const net::Packet&, DropReason, sim::SimTime) {}
  /// Last bit of the frame left on the wire.
  virtual void on_wire_tx(const net::Packet&, sim::SimTime) {}
  /// Observed at the receiver (after the fixed pipeline delay).
  virtual void on_delivered(const net::Packet&, sim::SimTime) {}
};

class NicPipeline final : public net::EgressDevice {
 public:
  NicPipeline(sim::Simulator& sim, NpConfig config, PacketProcessor& processor);

  /// Host-side submission on a VF port. Returns false if the VF ring was
  /// full (the packet is dropped and the drop callback fires).
  bool submit(net::Packet pkt) override;

  /// Optional detailed drop callback (the EgressDevice one also fires).
  void set_detailed_drop_callback(
      std::function<void(const net::Packet&, DropReason)> cb) {
    on_dropped_detailed_ = std::move(cb);
  }

  /// Attach a passive observer (nullptr detaches). Not owned; must outlive
  /// the pipeline or be detached first.
  void set_observer(PipelineObserver* observer) { observer_ = observer; }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t vf_ring_drops = 0;
    std::uint64_t scheduler_drops = 0;
    std::uint64_t tx_ring_drops = 0;
    std::uint64_t reorder_flush_drops = 0;  // late completions of flushed slots
    std::uint64_t forwarded_to_wire = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t worker_busy_ns = 0;   // Σ completed per-worker busy time
    std::uint64_t processed = 0;        // packets through a worker
    std::uint64_t processing_cycles = 0;
    std::uint64_t reorder_flushes = 0;          // forced gap skips at the cap
    std::uint64_t reorder_occupancy_peak = 0;   // high-water buffered packets
  };
  const Stats& stats() const { return stats_; }
  const NpConfig& config() const { return config_; }

  /// Mean worker utilization in [0,1] over [0, now]. Completed busy
  /// intervals are credited in full; a busy interval straddling `now` is
  /// credited only for its elapsed part, so the result never exceeds 1.
  double worker_utilization(sim::SimTime now) const;

  /// Packets currently waiting in VF rings + Tx ring + in flight.
  std::size_t in_flight() const { return in_flight_; }

  /// Completed packets currently parked in the reorder buffer.
  std::size_t reorder_occupancy() const { return reorder_buffer_.size(); }

 private:
  void try_dispatch();
  void worker_finish(unsigned worker, net::Packet pkt);
  /// Reorder system: commit `seq` (with a packet to transmit, or nothing if
  /// it was dropped) and release any now-in-order packets to the Tx ring.
  void reorder_commit(std::uint64_t seq, std::optional<net::Packet> pkt);
  void release_reorder_prefix();
  void tx_admit(net::Packet pkt);
  void arm_tx_drain();
  void tx_drain_complete();
  void drop(const net::Packet& pkt, DropReason reason);

  sim::Simulator& sim_;
  NpConfig config_;
  PacketProcessor& processor_;

  std::vector<std::deque<net::Packet>> vf_rings_;
  std::vector<bool> worker_idle_;
  std::vector<sim::SimTime> worker_busy_start_;  // valid while !worker_idle_
  std::vector<unsigned> idle_workers_;
  unsigned rr_vf_ = 0;  // round-robin pull pointer over VF rings

  std::deque<net::Packet> tx_ring_;
  bool tx_draining_ = false;

  // Reorder system state.
  std::uint64_t next_ingress_seq_ = 0;   // assigned at dispatch
  std::uint64_t next_release_seq_ = 0;   // next seq allowed into the Tx ring
  std::map<std::uint64_t, std::optional<net::Packet>> reorder_buffer_;

  std::function<void(const net::Packet&, DropReason)> on_dropped_detailed_;
  PipelineObserver* observer_ = nullptr;

  Stats stats_;
  std::size_t in_flight_ = 0;
  std::uint64_t forward_count_ = 0;  // fault-injection counter (test-only)
};

}  // namespace flowvalve::np
