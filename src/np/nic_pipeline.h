// The simulated NP-based SmartNIC processing pipeline (paper Fig. 4).
//
// Packets submitted on SR-IOV VF ports wait in per-VF Rx rings; idle worker
// micro-engines pull them (run-to-completion), invoke the plugged
// PacketProcessor (FlowValve, or a null forwarder), and either drop the
// packet or append it to the shared Tx ring, which the traffic manager
// drains at wire rate. Everything runs in virtual time on the discrete-event
// simulator; worker parallelism is modeled via per-worker busy intervals.
//
// The pipeline also carries a robustness layer (NpConfig::Recovery): a
// watchdog that salvages packets off workers stuck past a cycle budget, a
// bounded reorder-window timeout that flushes past head-of-line holes
// instead of wedging, and optional graceful-degradation admission control.
// Fault hooks (fault_*) let src/fault inject micro-engine, wire, and queue
// faults against a running pipeline; they are inert unless called.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include <optional>

#include "net/device.h"
#include "net/packet.h"
#include "np/np_config.h"
#include "sim/fixed_ring.h"
#include "sim/simulator.h"
#include "stats/stats.h"

namespace flowvalve::np {

/// What a worker core does to each packet. Implementations return the
/// forwarding decision plus the micro-engine cycles consumed.
class PacketProcessor {
 public:
  virtual ~PacketProcessor() = default;
  struct Outcome {
    bool forward = true;
    std::uint32_t cycles = 0;
  };
  virtual Outcome process(net::Packet& pkt, sim::SimTime now) = 0;

  /// One packet of a worker burst handed to process_batch. The pipeline
  /// fills `pkt`; the processor fills `out`.
  struct BatchSlot {
    net::Packet* pkt = nullptr;
    Outcome out;
  };

  /// Process a burst of fresh packets pulled by one worker at the same
  /// instant. The default loops process() per slot, so every processor is
  /// batch-correct by construction; FlowValveProcessor overrides this to
  /// amortize EMC flow-cache lookups across same-flow packets. Must fill
  /// every slot's `out` with exactly what per-packet process() calls at
  /// `now` would have produced (the batch-1-vs-32 differential oracle in
  /// tests/test_np_batch_diff.cpp holds implementations to that).
  virtual void process_batch(BatchSlot* slots, std::size_t n, sim::SimTime now) {
    for (std::size_t i = 0; i < n; ++i) slots[i].out = process(*slots[i].pkt, now);
  }
};

/// Forwards everything at zero extra cost — the "FlowValve disabled" mode
/// used by the paper to isolate the pipeline's intrinsic delay.
class NullProcessor final : public PacketProcessor {
 public:
  Outcome process(net::Packet&, sim::SimTime) override { return {true, 0}; }
};

enum class DropReason : std::uint8_t {
  kVfRingFull,      // PCIe-side backpressure
  kScheduler,       // FlowValve's specialized tail drop
  kTxRingFull,      // common tail drop at the shared FIFO
  kReorderFlush,    // completion arrived after its slot was flushed as lost
  kReorderTimeout,  // head-of-line hole aged out; occupants declared lost
  kWatchdogAbort,   // salvaged off a stuck worker, retry budget exhausted
  kAdmission,       // graceful-degradation proportional drop under overload
  kIslandRestart,   // in-flight occupant of an island that blacked out
};

const char* drop_reason_name(DropReason reason);

/// Runtime fault injection against a live pipeline, used by src/fault (and
/// by src/check to prove the invariant checkers catch real pipeline bugs —
/// a checker that never fires is worthless). All fields 0 ⇒ inert.
struct InjectedFaults {
  /// Every Nth forwarded packet vanishes after its worker finishes: no
  /// reorder commit, no Tx admit, no drop accounting. Breaks packet
  /// conservation and stalls the reorder window behind the hole.
  std::uint64_t leak_commit_every = 0;

  /// Every Nth forwarded packet bypasses the reorder system (admitted to
  /// the Tx ring immediately, its sequence committed as a hole). Breaks
  /// in-order delivery without stalling the pipeline.
  std::uint64_t bypass_reorder_every = 0;

  bool any() const { return leak_commit_every || bypass_reorder_every; }
};

/// Control-plane hook consulted at each worker's safe burst boundary — the
/// instant an idle worker pulls fresh packets, before its run-to-completion
/// interval starts. The hook decides which policy epoch every fresh packet
/// of the burst is stamped with (a cutover can only land between bursts,
/// never mid-burst) and may charge extra micro-engine cycles for a cutover
/// performed at this boundary (src/ctrl staged rollout). `packets` is the
/// number of fresh packets the boundary covers, so per-packet accounting
/// (e.g. the mixed-epoch window) stays exact at any batch size. Watchdog
/// retries are NOT re-stamped: a salvaged packet keeps the epoch of its
/// original dispatch, as a real salvaged context would, and all-retry
/// bursts skip the hook entirely.
class ControlHook {
 public:
  virtual ~ControlHook() = default;
  struct Cutover {
    std::uint32_t epoch = 0;         // policy epoch to stamp the burst with
    std::uint32_t extra_cycles = 0;  // cutover work charged to this burst
  };
  virtual Cutover on_packet_boundary(unsigned worker, sim::SimTime now,
                                     unsigned packets) = 0;
};

/// Passive tap on every pipeline lifecycle event, independent of the
/// delivery/drop callbacks (which the traffic FlowRouter owns). src/check
/// attaches its invariant harness here; all hooks default to no-ops so the
/// pipeline costs nothing when unobserved.
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;
  /// Host submitted a packet (before the VF-ring admission check).
  virtual void on_submit(const net::Packet&, sim::SimTime) {}
  /// The load balancer handed the packet to an idle worker; `busy` is the
  /// packet's own slice of the run-to-completion interval. Within a burst
  /// the hook fires once per packet at staggered logical instants that tile
  /// the burst's busy window back-to-back (packet i starts where packet
  /// i-1's slice ends), so per-packet latency decomposition and the
  /// worker-exclusivity invariant stay exact at any batch size. Fires again
  /// with the same ingress_seq if the watchdog requeues the packet.
  virtual void on_dispatch(const net::Packet&, unsigned /*worker*/,
                           std::uint64_t /*ingress_seq*/, sim::SimTime,
                           sim::SimDuration /*busy*/) {}
  virtual void on_drop(const net::Packet&, DropReason, sim::SimTime) {}
  /// The watchdog aborted a worker's in-progress execution and salvaged its
  /// packet (requeued for re-dispatch under the same ingress_seq, or — if
  /// the retry budget is gone or the slot already timed out — dropped).
  virtual void on_watchdog(const net::Packet&, unsigned /*worker*/,
                           std::uint64_t /*ingress_seq*/, sim::SimTime) {}
  /// Last bit of the frame left on the wire.
  virtual void on_wire_tx(const net::Packet&, sim::SimTime) {}
  /// Observed at the receiver (after the fixed pipeline delay).
  virtual void on_delivered(const net::Packet&, sim::SimTime) {}
};

class NicPipeline final : public net::EgressDevice {
 public:
  NicPipeline(sim::Simulator& sim, NpConfig config, PacketProcessor& processor);

  /// Host-side submission on a VF port. Returns false if the packet was
  /// dropped at admission (VF ring full, or degradation-mode proportional
  /// drop); the drop callback fires either way.
  bool submit(net::Packet pkt) override;

  /// Optional detailed drop callback (the EgressDevice one also fires).
  void set_detailed_drop_callback(
      std::function<void(const net::Packet&, DropReason)> cb) {
    on_dropped_detailed_ = std::move(cb);
  }

  /// Attach a passive observer (nullptr detaches). Not owned; must outlive
  /// the pipeline or be detached first.
  void set_observer(PipelineObserver* observer) { observer_ = observer; }

  /// Attach the control-plane cutover hook (nullptr detaches). Not owned;
  /// must outlive the pipeline or be detached first.
  void set_control_hook(ControlHook* hook) { control_hook_ = hook; }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t vf_ring_drops = 0;
    std::uint64_t scheduler_drops = 0;
    std::uint64_t tx_ring_drops = 0;
    std::uint64_t reorder_flush_drops = 0;  // late completions of flushed slots
    std::uint64_t forwarded_to_wire = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t worker_busy_ns = 0;   // Σ completed per-worker busy time
    std::uint64_t processed = 0;        // packets through a worker (incl. retries)
    std::uint64_t processing_cycles = 0;
    std::uint64_t reorder_flushes = 0;          // forced gap skips at the cap
    std::uint64_t reorder_occupancy_peak = 0;   // high-water buffered packets
    // Robustness layer.
    std::uint64_t watchdog_requeues = 0;        // salvaged + requeued packets
    std::uint64_t watchdog_drops = 0;           // retry budget exhausted
    std::uint64_t reorder_timeout_flushes = 0;  // aged-out holes skipped
    std::uint64_t reorder_timeout_drops = 0;    // occupants of aged-out holes
    std::uint64_t admission_drops = 0;          // degradation-mode tail drops
    std::uint64_t workers_repaired = 0;         // hung workers rejoining
    std::uint64_t island_restart_drops = 0;     // doomed by an island blackout
    std::uint64_t islands_restarted = 0;        // completed blackout restarts
  };
  const Stats& stats() const { return stats_; }
  const NpConfig& config() const { return config_; }

  /// Mean worker utilization in [0,1] over [0, now]. Completed busy
  /// intervals are credited in full; a busy interval straddling `now` is
  /// credited only for its elapsed part, so the result never exceeds 1.
  double worker_utilization(sim::SimTime now) const;

  /// Packets currently waiting in VF rings + Tx ring + in flight.
  std::size_t in_flight() const { return in_flight_; }

  /// Completed packets currently parked in the reorder buffer.
  std::size_t reorder_occupancy() const { return reorder_count_; }

  /// Reorder sliding-window span in sequence numbers (power of two).
  std::size_t reorder_window() const { return reorder_ring_.size(); }

  /// Workers wedged by an injected stall/crash, awaiting repair_worker().
  unsigned hung_workers() const;

  /// Packets salvaged by the watchdog, waiting for re-dispatch.
  std::size_t retry_backlog() const { return retry_queue_.size(); }

  /// Resolved recovery parameters (after 0 = auto derivation).
  sim::SimDuration watchdog_budget() const { return watchdog_budget_; }
  sim::SimDuration watchdog_period() const { return watchdog_period_; }
  sim::SimDuration reorder_timeout() const { return reorder_timeout_; }

  /// Current degradation-mode drop modulus (0 when admission is idle).
  std::uint64_t admission_modulus() const {
    return admission_active_ ? admission_modulus_ : 0;
  }

  // --- Control-plane degradation (src/ctrl) ------------------------------
  // During a stalled policy rollout the reconfiguration manager may shed
  // load through the existing admission machinery. While forced, the
  // watermark automation neither escalates nor disengages it; only
  // control_release_admission() does.

  /// Engage admission shedding at a fixed modulus (drop every Nth submit).
  /// No-op when `modulus` is 0.
  void control_force_admission(std::uint64_t modulus);

  /// Release a forced shed; watermark-driven admission resumes from idle.
  void control_release_admission();

  bool admission_forced() const { return admission_forced_; }
  /// True while a restarted island holds the forced-admission valve as
  /// post-restart probation (a legitimate non-reconfig use of the valve —
  /// the swap-conservation checker must not attribute its drops to a swap).
  bool restart_probation_active() const { return restart_probation_active_; }

  // --- Fault hooks (src/fault) -------------------------------------------
  // All hooks are deterministic and inert until called. Worker faults mark
  // the target `fault_frozen`; a frozen worker never rejoins the idle pool
  // on its own — only repair_worker() (the fault clearing) brings it back.

  /// Freeze worker `w`: if busy, its completion is postponed by `duration`
  /// (the watchdog salvages the packet if the postponement exceeds the
  /// budget); if idle, it is pulled from the pool until repaired.
  void fault_stall_worker(unsigned w, sim::SimDuration duration);

  /// Kill worker `w`: an in-progress execution never completes (the
  /// watchdog must salvage its packet); the worker stays dead until
  /// repair_worker().
  void fault_crash_worker(unsigned w);

  /// Clear a stall/crash on worker `w`; a hung worker rejoins the pool.
  void repair_worker(unsigned w);

  // --- Island failure domains (DESIGN.md §16) ----------------------------
  // Islands are NpConfig::island_range groups; they die and restart as a
  // unit. Blackout is crash-only: every in-flight occupant of the island is
  // dropped immediately (DropReason::kIslandRestart) with its reorder slot
  // committed as a gap, so conservation holds across the boundary and the
  // window never waits on a dead worker. Restart re-admits the island's
  // workers and, when configured, runs them under admission probation.

  /// Black out island `island` (clamped to the last island): each of its
  /// workers drops its whole burst, is removed from the idle pool, and is
  /// marked fault-frozen until restart_island()/repair_worker().
  void fault_blackout_island(unsigned island);

  /// Restart island `island`: every frozen/hung worker of the island
  /// rejoins the pool, and — if recovery.restart_probation_modulus > 0 and
  /// no one else holds the admission valve — forced admission shedding
  /// engages for recovery.restart_probation before auto-releasing.
  void restart_island(unsigned island);

  /// Scale the Tx drain rate by `factor` ∈ [0, 1]; 0 pauses the wire (the
  /// frame currently serializing still finishes). 1 restores full rate.
  void fault_set_wire_factor(double factor);

  /// Cap the Tx ring below its configured capacity (0 restores). Packets
  /// already queued above the cap drain normally; new admissions tail-drop.
  void fault_set_tx_capacity(std::size_t capacity);

  /// Freeze the reorder release pointer: completions park in the buffer
  /// (no capacity flushing, no timeout flushing) until unfrozen.
  void fault_freeze_reorder(bool frozen);

  /// Runtime leak/bypass bug injection (see InjectedFaults).
  void set_injected_faults(InjectedFaults faults) { injected_ = faults; }
  const InjectedFaults& injected_faults() const { return injected_; }

 private:
  /// One packet of a worker's in-flight burst. `busy` is this packet's own
  /// slice of the run-to-completion interval; the burst's slices tile the
  /// worker's busy window back-to-back in pull order.
  struct BurstItem {
    net::Packet pkt;
    std::uint64_t seq = 0;
    sim::SimDuration busy = 0;
    bool forward = false;
    unsigned retries = 0;           // re-executions already consumed
    bool doomed = false;            // packet already dropped by a flush
  };

  struct WorkerCtx {
    enum class State : std::uint8_t { kIdle, kBusy, kHung };
    State state = State::kIdle;
    std::uint32_t epoch = 0;        // guards stale completion closures
    sim::SimTime busy_start = 0;    // valid while kBusy
    sim::SimTime busy_end = 0;      // scheduled completion instant
    sim::EventHandle completion;
    std::vector<BurstItem> burst;   // valid while kBusy; ≤ batch_size items
    bool fault_frozen = false;      // stall/crash injected; awaits repair
  };

  struct RetryEntry {
    net::Packet pkt;
    std::uint64_t seq = 0;
    bool forward = false;
    unsigned retries = 0;
  };

  /// One slot of the reorder sliding window, indexed by ingress_seq & mask.
  /// kDropped marks a sequence committed without a packet (scheduler drop,
  /// watchdog give-up, injected bypass) so the window can advance past it.
  struct ReorderSlot {
    enum class State : std::uint8_t { kEmpty, kPacket, kDropped };
    State state = State::kEmpty;
    net::Packet pkt;  // valid iff state == kPacket
  };

  void try_dispatch();
  /// Pull up to batch_size packets (retries first, then round-robin over the
  /// VF rings in the legacy pull order) into `worker`'s burst, consult the
  /// control hook once, run the processor's batch hook, fire staggered
  /// per-packet on_dispatch observers, and schedule ONE completion event at
  /// busy_start + Σ per-packet busy. Precondition: the worker is idle,
  /// already popped from idle_workers_, and work is pending (retry queue or
  /// VF rings non-empty).
  void dispatch_burst(unsigned worker);
  void on_completion(unsigned worker, std::uint32_t epoch);
  void worker_finish(unsigned worker, net::Packet pkt);
  /// Reorder system: commit `seq` with a packet to transmit and release any
  /// now-in-order packets to the Tx ring. reorder_commit_gap commits a
  /// sequence without a packet (scheduler drop, watchdog give-up, injected
  /// bypass) so the window can advance past it.
  void reorder_commit(std::uint64_t seq, net::Packet&& pkt);
  void reorder_commit_gap(std::uint64_t seq);
  /// Shared tail of the commit paths: occupancy accounting, in-order
  /// release, capacity flush, hole tracking.
  ReorderSlot& reorder_slot_for(std::uint64_t seq);
  void reorder_committed();
  void release_reorder_prefix();
  /// Drop every live occupant (worker-burst item or retry-queue entry) of
  /// the hole [next_release_seq_, head) that a flush is about to skip, so
  /// drops always precede the deliveries that overtake them. Every path
  /// that jumps the release pointer past a hole must call this first.
  void doom_flushed_range(std::uint64_t head, DropReason reason);
  void update_hole_tracking();
  /// Oldest buffered (non-empty) sequence; precondition reorder_count_ > 0.
  std::uint64_t oldest_buffered_seq() const;
  /// Double the reorder window until `seq` fits (frozen-release pathology;
  /// preserves the old map's grow-without-bound semantics).
  void grow_reorder_ring(std::uint64_t seq);
  void tx_admit(net::Packet pkt);
  /// Arm the traffic-manager drain. At batch_size == 1 this serializes one
  /// frame per event (legacy). At batch_size > 1 it serializes up to
  /// batch_size queued frames under ONE event, stamping each frame's
  /// wire_tx_done analytically AT ARM TIME (so a mid-batch wire_factor
  /// fault cannot corrupt timestamps already committed to the wire model).
  void arm_tx_drain();
  void tx_drain_complete();
  void tx_drain_batch_complete(std::size_t frames);
  /// Deliver every queued packet whose delivered_at ≤ now (coalesced
  /// delivery: one event per drain batch, armed at the queue tail's
  /// delivered_at), then re-arm for the new tail if any remains.
  void delivery_flush();
  void drop(const net::Packet& pkt, DropReason reason);

  // Watchdog machinery: a lazily armed one-shot chain that ticks only while
  // there is work it could act on, so a drained pipeline schedules nothing
  // and run_all() still quiesces.
  bool watchdog_work_pending() const;
  /// Hot-path wrapper: at steady state the watchdog is already armed, so
  /// the per-packet callers pay one flag test, not a function call.
  void maybe_arm_watchdog() {
    if (watchdog_armed_) return;
    arm_watchdog_slow();
  }
  void arm_watchdog_slow();
  void watchdog_tick();
  void watchdog_abort(unsigned worker);
  void reorder_timeout_flush();
  void admission_update();
  std::size_t effective_tx_capacity() const;

  sim::Simulator& sim_;
  NpConfig config_;
  PacketProcessor& processor_;

  std::vector<sim::FixedRing<net::Packet>> vf_rings_;
  std::vector<WorkerCtx> workers_;
  std::vector<unsigned> idle_workers_;
  unsigned rr_vf_ = 0;  // round-robin pull pointer over VF rings
  std::size_t vf_waiting_ = 0;  // packets across all VF rings (scan early-out)
  unsigned vf_index_mask_ = 0;  // num_vfs - 1 when num_vfs is a power of two
  std::deque<RetryEntry> retry_queue_;  // watchdog-salvaged, served first

  sim::FixedRing<net::Packet> tx_ring_;
  bool tx_draining_ = false;
  std::size_t tx_inflight_frames_ = 0;    // frames under the armed drain event
  std::uint32_t ser_cache_bytes_ = 0;     // memo: serialization_delay of the
  sim::SimDuration ser_cache_delay_ = 0;  // last wire occupancy (factor 1.0)
  double wire_factor_ = 1.0;          // injected wire dip (1 = healthy)
  std::size_t tx_capacity_override_ = 0;  // injected backpressure (0 = none)

  // Coalesced receiver-side delivery (batch_size > 1): packets whose
  // delivered_at is already stamped wait here for one flush event armed at
  // the queue tail's delivered_at.
  std::deque<net::Packet> delivery_queue_;
  bool delivery_armed_ = false;

  // Completion-scratch: on_completion swaps the worker's burst here before
  // running commit callbacks, so a synchronous submit() from a drop callback
  // can safely re-dispatch the same worker. Completions never nest (events
  // serialize), so one scratch suffices.
  std::vector<BurstItem> burst_scratch_;
  std::vector<PacketProcessor::BatchSlot> slot_scratch_;

  // Reorder system state.
  std::uint64_t next_ingress_seq_ = 0;   // assigned at dispatch
  std::uint64_t next_release_seq_ = 0;   // next seq allowed into the Tx ring
  // Power-of-two sliding window over ingress sequence numbers: slot for
  // seq s is reorder_ring_[s & reorder_mask_]. Spans [next_release_seq_,
  // next_release_seq_ + window); sized so steady-state traffic (capacity
  // cap + every in-flight/retry slot) never wraps onto a live entry.
  std::vector<ReorderSlot> reorder_ring_;
  std::uint64_t reorder_mask_ = 0;
  std::size_t reorder_count_ = 0;     // occupied (non-kEmpty) slots
  bool reorder_frozen_ = false;       // injected release-pointer stall
  bool hole_active_ = false;          // head-of-line hole currently open
  std::uint64_t hole_seq_ = 0;        // the missing seq the window waits on
  sim::SimTime hole_since_ = 0;       // when that hole opened

  // Resolved recovery parameters (< 0 ⇒ disabled).
  sim::SimDuration watchdog_budget_ = -1;
  sim::SimDuration watchdog_period_ = -1;
  sim::SimDuration reorder_timeout_ = -1;
  bool watchdog_armed_ = false;

  // Graceful-degradation admission state.
  bool admission_active_ = false;
  bool admission_forced_ = false;  // control-plane override (src/ctrl)
  // Island-restart probation: restart_island() forced the valve and armed a
  // timed release. The token invalidates a pending release when probation
  // is superseded (another restart, or src/ctrl taking the valve).
  bool restart_probation_active_ = false;
  std::uint64_t probation_token_ = 0;
  std::uint64_t admission_modulus_ = 0;
  std::uint64_t admission_seq_ = 0;     // submissions seen while active
  unsigned admission_over_ticks_ = 0;   // consecutive ticks over watermark

  std::function<void(const net::Packet&, DropReason)> on_dropped_detailed_;
  PipelineObserver* observer_ = nullptr;
  ControlHook* control_hook_ = nullptr;

  Stats stats_;
  std::size_t in_flight_ = 0;
  InjectedFaults injected_;
  std::uint64_t forward_count_ = 0;  // injected-fault modulo counter
};

}  // namespace flowvalve::np
