#include "np/nic_pipeline.h"

#include <algorithm>
#include <cassert>

namespace flowvalve::np {

NpConfig agilio_cx_40g() {
  NpConfig c;
  c.wire_rate = Rate::gigabits_per_sec(40);
  c.fixed_pipeline_delay = sim::microseconds(161);
  return c;
}

NpConfig agilio_cx_10g() {
  NpConfig c;
  c.wire_rate = Rate::gigabits_per_sec(10);
  c.fixed_pipeline_delay = sim::microseconds(15);
  return c;
}

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kVfRingFull: return "vf-ring-full";
    case DropReason::kScheduler: return "scheduler";
    case DropReason::kTxRingFull: return "tx-ring-full";
    case DropReason::kReorderFlush: return "reorder-flush";
    case DropReason::kReorderTimeout: return "reorder-timeout";
    case DropReason::kWatchdogAbort: return "watchdog-abort";
    case DropReason::kAdmission: return "admission";
    case DropReason::kIslandRestart: return "island-restart";
  }
  return "unknown";
}

NicPipeline::NicPipeline(sim::Simulator& sim, NpConfig config, PacketProcessor& processor)
    : sim_(sim), config_(config), processor_(processor) {
  config_.validate();
  vf_rings_.resize(config_.num_vfs);
  for (auto& ring : vf_rings_) ring.reset_capacity(config_.vf_ring_capacity);
  // Power-of-two VF counts (the common case) route with a mask instead of a
  // per-packet integer division.
  if ((config_.num_vfs & (config_.num_vfs - 1)) == 0)
    vf_index_mask_ = config_.num_vfs - 1;
  tx_ring_.reset_capacity(config_.tx_ring_capacity);
  // Window span: the capacity cap bounds buffered completions, and every
  // other live sequence sits on a busy worker's burst or in the retry queue
  // (at most a few burst-loads per worker across watchdog rounds). The
  // margin keeps steady-state wrap-arounds off the grow path; at
  // batch_size 1 this reduces to the legacy derivation exactly.
  {
    std::size_t window = 1;
    const std::size_t need = config_.reorder_capacity +
                             4 * config_.num_workers * config_.batch_size + 64;
    while (window < need) window <<= 1;
    reorder_ring_.resize(window);
    reorder_mask_ = window - 1;
  }
  workers_.resize(config_.num_workers);
  idle_workers_.reserve(config_.num_workers);
  for (unsigned w = 0; w < config_.num_workers; ++w) {
    workers_[w].burst.reserve(config_.batch_size);
    idle_workers_.push_back(w);
  }
  burst_scratch_.reserve(config_.batch_size);
  slot_scratch_.reserve(config_.batch_size);

  // Resolve the recovery policy: 0 = derive from the cycle model, < 0 =
  // disabled. The auto watchdog budget is far above any legitimate
  // run-to-completion interval (tens of µs at the default cycle costs), so
  // a fault-free pipeline never trips it.
  const auto& rec = config_.recovery;
  if (rec.watchdog_budget < 0) {
    watchdog_budget_ = -1;
  } else if (rec.watchdog_budget > 0) {
    watchdog_budget_ = rec.watchdog_budget;
  } else {
    watchdog_budget_ = std::max<sim::SimDuration>(
        sim::microseconds(250),
        64 * config_.cycles_to_ns(config_.base_rx_cycles + config_.base_tx_cycles));
  }
  if (rec.reorder_timeout < 0) {
    reorder_timeout_ = -1;
  } else if (rec.reorder_timeout > 0) {
    reorder_timeout_ = rec.reorder_timeout;
  } else {
    reorder_timeout_ =
        watchdog_budget_ > 0 ? 2 * watchdog_budget_ : sim::microseconds(500);
  }
  if (rec.watchdog_period > 0) {
    watchdog_period_ = rec.watchdog_period;
  } else {
    const sim::SimDuration base =
        watchdog_budget_ > 0
            ? watchdog_budget_
            : (reorder_timeout_ > 0 ? reorder_timeout_ : sim::microseconds(400));
    watchdog_period_ = std::max<sim::SimDuration>(sim::microseconds(1), base / 4);
  }
}

void NicPipeline::drop(const net::Packet& pkt, DropReason reason) {
  switch (reason) {
    case DropReason::kVfRingFull: ++stats_.vf_ring_drops; break;
    case DropReason::kScheduler: ++stats_.scheduler_drops; break;
    case DropReason::kTxRingFull: ++stats_.tx_ring_drops; break;
    case DropReason::kReorderFlush: ++stats_.reorder_flush_drops; break;
    case DropReason::kReorderTimeout: ++stats_.reorder_timeout_drops; break;
    case DropReason::kWatchdogAbort: ++stats_.watchdog_drops; break;
    case DropReason::kAdmission: ++stats_.admission_drops; break;
    case DropReason::kIslandRestart: ++stats_.island_restart_drops; break;
  }
  if (observer_) observer_->on_drop(pkt, reason, sim_.now());
  if (on_dropped_detailed_) on_dropped_detailed_(pkt, reason);
  notify_drop(pkt);
}

bool NicPipeline::submit(net::Packet pkt) {
  ++stats_.submitted;
  pkt.nic_arrival = sim_.now();
  if (observer_) observer_->on_submit(pkt, sim_.now());
  // Graceful degradation: under sustained overload every Nth submission is
  // shed here, before the rings grow, so queueing delay stays bounded and
  // the loss is spread proportionally across senders.
  if (admission_active_) {
    ++admission_seq_;
    if (admission_modulus_ != 0 && admission_seq_ % admission_modulus_ == 0) {
      drop(pkt, DropReason::kAdmission);
      return false;
    }
  }
  const unsigned vf = vf_index_mask_ != 0
                          ? (pkt.vf_port & vf_index_mask_)
                          : pkt.vf_port % config_.num_vfs;
  if (vf_rings_[vf].size() >= config_.vf_ring_capacity) {
    drop(pkt, DropReason::kVfRingFull);
    return false;
  }
  vf_rings_[vf].push_back(std::move(pkt));
  ++vf_waiting_;
  ++in_flight_;
  try_dispatch();
  return true;
}

void NicPipeline::try_dispatch() {
  // The load balancer hands waiting packets to idle workers in bursts of up
  // to batch_size. Watchdog-salvaged packets go first (their ingress slot is
  // the oldest), then VF rings are polled round-robin so no port starves.
  while (!idle_workers_.empty() &&
         (!retry_queue_.empty() || vf_waiting_ > 0)) {
    const unsigned worker = idle_workers_.back();
    idle_workers_.pop_back();
    dispatch_burst(worker);
  }
}

void NicPipeline::dispatch_burst(unsigned worker) {
  WorkerCtx& ctx = workers_[worker];
  const sim::SimTime now = sim_.now();
  assert(ctx.burst.empty());

  // Pull phase 1 — watchdog retries. Re-execution skips the processor:
  // labeling + scheduling state lives in shared memory and survived the
  // aborted micro-engine, so the first verdict (and its meter debits)
  // stands; only the base packet-handling work is repeated.
  while (ctx.burst.size() < config_.batch_size && !retry_queue_.empty()) {
    RetryEntry e = std::move(retry_queue_.front());
    retry_queue_.pop_front();
    std::uint64_t cycles = config_.base_rx_cycles;
    if (e.forward) cycles += config_.base_tx_cycles;
    stats_.processing_cycles += cycles;
    ++stats_.processed;
    BurstItem item;
    item.pkt = std::move(e.pkt);
    item.seq = e.seq;
    item.busy = config_.cycles_to_ns(cycles);
    item.forward = e.forward;
    item.retries = e.retries;
    ctx.burst.push_back(std::move(item));
  }

  // Pull phase 2 — fresh packets, round-robin over the VF rings in the
  // exact legacy order (scan from rr_vf_ for the first non-empty ring, take
  // its front, advance the pointer once, repeat).
  const std::size_t fresh = std::min<std::size_t>(
      config_.batch_size - ctx.burst.size(), vf_waiting_);
  const std::size_t first_fresh = ctx.burst.size();

  // Safe burst boundary: the control plane stamps the policy epoch every
  // fresh packet of this burst schedules against and may charge cutover
  // cycles here, before the run-to-completion interval starts. A cutover
  // can only land here — never mid-burst. Retries keep their original
  // epoch, and all-retry bursts skip the hook entirely.
  std::uint32_t ctrl_cycles = 0;
  std::uint32_t ctrl_epoch = 0;
  const bool stamp_epoch = control_hook_ != nullptr && fresh > 0;
  if (stamp_epoch) {
    const ControlHook::Cutover cut = control_hook_->on_packet_boundary(
        worker, now, static_cast<unsigned>(fresh));
    ctrl_epoch = cut.epoch;
    ctrl_cycles = cut.extra_cycles;
  }

  for (std::size_t i = 0; i < fresh; ++i) {
    while (vf_rings_[rr_vf_].empty()) {
      if (++rr_vf_ >= config_.num_vfs) rr_vf_ = 0;
    }
    auto& ring = vf_rings_[rr_vf_];
    BurstItem item;
    item.pkt = std::move(ring.front());
    item.seq = next_ingress_seq_++;
    if (stamp_epoch) item.pkt.policy_epoch = ctrl_epoch;
    ring.pop_front();
    --vf_waiting_;
    if (++rr_vf_ >= config_.num_vfs) rr_vf_ = 0;
    ctx.burst.push_back(std::move(item));
  }
  if (ctx.burst.empty()) {  // raced empty; return the micro-engine
    idle_workers_.push_back(worker);
    return;
  }

  // Run-to-completion over the fresh slice: base Rx work + processor + base
  // Tx work per packet, all "at" the dispatch instant. The processor's batch
  // hook amortizes flow-cache lookups across same-flow packets but must
  // produce exactly what per-packet calls would (the batch-1 differential
  // oracle holds it to that). Cutover cycles are charged to the first fresh
  // packet; cycles for dropped packets omit the Tx copy.
  if (fresh > 0) {
    slot_scratch_.clear();
    for (std::size_t i = first_fresh; i < ctx.burst.size(); ++i)
      slot_scratch_.push_back({&ctx.burst[i].pkt, {}});
    processor_.process_batch(slot_scratch_.data(), fresh, now);
    for (std::size_t i = 0; i < fresh; ++i) {
      const PacketProcessor::Outcome& out = slot_scratch_[i].out;
      std::uint64_t cycles = config_.base_rx_cycles + out.cycles;
      if (i == 0) cycles += ctrl_cycles;
      if (out.forward) cycles += config_.base_tx_cycles;
      stats_.processing_cycles += cycles;
      ++stats_.processed;
      BurstItem& item = ctx.burst[first_fresh + i];
      item.busy = config_.cycles_to_ns(cycles);
      item.forward = out.forward;
    }
  }

  // Observers see one dispatch per packet at staggered logical instants
  // tiling the busy window back-to-back, so per-packet latency
  // decomposition and worker exclusivity stay exact at any batch size. The
  // dispatch instant and busy interval are then stamped on the packet like
  // every other stage timestamp — observers read them at delivery instead
  // of keeping a per-packet side table. Observe-then-stamp order lets an
  // observer tell a fresh dispatch (dispatched_at still -1) from a
  // watchdog retry.
  sim::SimDuration total_busy = 0;
  {
    sim::SimTime t = now;
    for (BurstItem& item : ctx.burst) {
      if (observer_) observer_->on_dispatch(item.pkt, worker, item.seq, t, item.busy);
      item.pkt.dispatched_at = t;
      item.pkt.service_busy = item.busy;
      t += item.busy;
      total_busy += item.busy;
    }
  }

  ctx.state = WorkerCtx::State::kBusy;
  ++ctx.epoch;
  ctx.busy_start = now;
  ctx.busy_end = now + total_busy;
  ctx.completion = sim_.schedule_after(
      total_busy,
      [this, worker, epoch = ctx.epoch] { on_completion(worker, epoch); });
  maybe_arm_watchdog();
}

void NicPipeline::on_completion(unsigned worker, std::uint32_t epoch) {
  WorkerCtx& ctx = workers_[worker];
  // A stale epoch means the watchdog already aborted this execution and the
  // worker was re-dispatched; the cancelled handle normally prevents this,
  // but guard anyway.
  if (ctx.state != WorkerCtx::State::kBusy || ctx.epoch != epoch) return;

  // Busy time is credited on completion, never at dispatch: charging the
  // full interval up front made utilization exceed 1.0 whenever busy
  // intervals straddled the query instant.
  stats_.worker_busy_ns +=
      static_cast<std::uint64_t>(sim_.now() - ctx.busy_start);

  // Swap the burst out of the worker context BEFORE running commit
  // callbacks: a drop/delivery callback may synchronously submit() and
  // re-enter try_dispatch, and the worker must look cleanly busy-with-
  // nothing rather than holding a half-committed burst. Completions never
  // nest (events serialize), so one scratch vector suffices.
  assert(burst_scratch_.empty());
  burst_scratch_.swap(ctx.burst);

  for (BurstItem& item : burst_scratch_) {
    if (item.doomed) {
      // Doomed executions already gave their packet up to a timeout flush;
      // the completion only returns the micro-engine.
      continue;
    }
    net::Packet pkt = std::move(item.pkt);  // POD move; stale copy never read
    if (item.forward) {
      ++forward_count_;
      if (injected_.leak_commit_every != 0 &&
          forward_count_ % injected_.leak_commit_every == 0) {
        // Injected bug: the packet vanishes without a commit or any drop
        // accounting. The conservation checker must notice.
      } else if (injected_.bypass_reorder_every != 0 &&
                 config_.enforce_reorder &&
                 forward_count_ % injected_.bypass_reorder_every == 0) {
        // Injected bug: jump the reorder queue. The ordering checker must
        // notice; committing the hole keeps the rest of the stream moving.
        tx_admit(std::move(pkt));
        reorder_commit_gap(item.seq);
      } else if (config_.enforce_reorder) {
        reorder_commit(item.seq, std::move(pkt));
      } else {
        worker_finish(worker, std::move(pkt));
      }
    } else {
      --in_flight_;
      drop(pkt, DropReason::kScheduler);
      if (config_.enforce_reorder) reorder_commit_gap(item.seq);
    }
  }
  burst_scratch_.clear();

  if (ctx.fault_frozen) {
    ctx.state = WorkerCtx::State::kHung;  // still faulty; awaits repair
  } else {
    ctx.state = WorkerCtx::State::kIdle;
    idle_workers_.push_back(worker);
  }
  try_dispatch();
}

void NicPipeline::worker_finish(unsigned /*worker*/, net::Packet pkt) {
  tx_admit(std::move(pkt));
}

void NicPipeline::reorder_commit(std::uint64_t seq, net::Packet&& pkt) {
  if (seq < next_release_seq_) {
    // This slot was already flushed as lost (capacity overrun or hole
    // timeout skipped the gap). Survivors behind it are long gone, so
    // admitting the straggler now would reorder the stream: count it as a
    // reorder-flush drop.
    --in_flight_;
    drop(pkt, DropReason::kReorderFlush);
    return;
  }
  if (seq == next_release_seq_ && reorder_count_ == 0 && !reorder_frozen_) {
    // In-order commit into an empty window — the common case whenever
    // workers finish in dispatch order. The packet would be buffered and
    // released in the same call, so skip the ring round-trip (two Packet
    // copies) and admit it directly. Observable state matches the slow
    // path: occupancy peaked at 1, no hole, window empty.
    stats_.reorder_occupancy_peak =
        std::max<std::uint64_t>(stats_.reorder_occupancy_peak, 1);
    ++next_release_seq_;
    hole_active_ = false;
    tx_admit(std::move(pkt));
    maybe_arm_watchdog();
    return;
  }
  ReorderSlot& slot = reorder_slot_for(seq);
  slot.state = ReorderSlot::State::kPacket;
  slot.pkt = std::move(pkt);
  reorder_committed();
}

void NicPipeline::reorder_commit_gap(std::uint64_t seq) {
  if (seq < next_release_seq_) return;  // already flushed as lost
  if (seq == next_release_seq_ && reorder_count_ == 0 && !reorder_frozen_) {
    // In-order gap at the head of an empty window: buffering the kDropped
    // marker would release it immediately, so just advance the pointer.
    stats_.reorder_occupancy_peak =
        std::max<std::uint64_t>(stats_.reorder_occupancy_peak, 1);
    ++next_release_seq_;
    hole_active_ = false;
    maybe_arm_watchdog();
    return;
  }
  reorder_slot_for(seq).state = ReorderSlot::State::kDropped;
  reorder_committed();
}

NicPipeline::ReorderSlot& NicPipeline::reorder_slot_for(std::uint64_t seq) {
  if (seq - next_release_seq_ > reorder_mask_) grow_reorder_ring(seq);
  ReorderSlot& slot = reorder_ring_[seq & reorder_mask_];
  assert(slot.state == ReorderSlot::State::kEmpty &&
         "ingress sequence committed twice");
  return slot;
}

void NicPipeline::reorder_committed() {
  ++reorder_count_;
  stats_.reorder_occupancy_peak =
      std::max<std::uint64_t>(stats_.reorder_occupancy_peak, reorder_count_);
  if (!reorder_frozen_) {
    release_reorder_prefix();
    // Capacity cap: a stalled hole (e.g. a leaked completion) must not grow
    // the buffer without bound. Declare the missing head sequence(s) lost —
    // dropping any occupant still alive on a worker or in the retry queue
    // BEFORE survivors behind it release — then jump the release pointer to
    // the oldest buffered completion and drain.
    while (reorder_count_ > config_.reorder_capacity) {
      ++stats_.reorder_flushes;
      const std::uint64_t head = oldest_buffered_seq();
      doom_flushed_range(head, DropReason::kReorderFlush);
      next_release_seq_ = head;
      release_reorder_prefix();
    }
  }
  update_hole_tracking();
  maybe_arm_watchdog();
}

void NicPipeline::release_reorder_prefix() {
  ReorderSlot* slot = &reorder_ring_[next_release_seq_ & reorder_mask_];
  while (reorder_count_ > 0 && slot->state != ReorderSlot::State::kEmpty) {
    if (slot->state == ReorderSlot::State::kPacket) {
      tx_admit(std::move(slot->pkt));  // kEmpty below is what frees the slot
    }
    slot->state = ReorderSlot::State::kEmpty;
    --reorder_count_;
    ++next_release_seq_;
    slot = &reorder_ring_[next_release_seq_ & reorder_mask_];
  }
}

std::uint64_t NicPipeline::oldest_buffered_seq() const {
  assert(reorder_count_ > 0);
  std::uint64_t seq = next_release_seq_;
  while (reorder_ring_[seq & reorder_mask_].state ==
         ReorderSlot::State::kEmpty)
    ++seq;
  return seq;
}

void NicPipeline::grow_reorder_ring(std::uint64_t seq) {
  // Only a frozen release pointer (injected reorder stall) can push the
  // window this far; mirror the old std::map's grow-without-bound behavior
  // instead of inventing a new flush policy for the pathological case.
  std::size_t window = reorder_ring_.size();
  while (seq - next_release_seq_ > window - 1) window <<= 1;
  std::vector<ReorderSlot> grown(window);
  const std::uint64_t new_mask = window - 1;
  std::size_t moved = 0;
  for (std::uint64_t s = next_release_seq_;
       moved < reorder_count_ && s - next_release_seq_ <= reorder_mask_; ++s) {
    ReorderSlot& old_slot = reorder_ring_[s & reorder_mask_];
    if (old_slot.state == ReorderSlot::State::kEmpty) continue;
    grown[s & new_mask] = std::move(old_slot);
    ++moved;
  }
  reorder_ring_ = std::move(grown);
  reorder_mask_ = new_mask;
}

void NicPipeline::update_hole_tracking() {
  if (reorder_frozen_) return;
  if (reorder_count_ == 0) {  // empty window can't have a hole; skip the ring read
    hole_active_ = false;
    return;
  }
  const bool hole =
      reorder_ring_[next_release_seq_ & reorder_mask_].state ==
          ReorderSlot::State::kEmpty;
  if (!hole) {
    hole_active_ = false;
    return;
  }
  // Age is tracked per missing sequence: when a flush (or late commit)
  // moves the window to a different hole, the timeout clock restarts.
  if (!hole_active_ || hole_seq_ != next_release_seq_) {
    hole_active_ = true;
    hole_seq_ = next_release_seq_;
    hole_since_ = sim_.now();
  }
}

void NicPipeline::reorder_timeout_flush() {
  if (reorder_timeout_ <= 0 || reorder_frozen_ || !hole_active_) return;
  if (sim_.now() - hole_since_ < reorder_timeout_) return;
  if (reorder_count_ == 0) return;  // hole closed since the last commit
  const std::uint64_t head = oldest_buffered_seq();
  // The hole [next_release_seq_, head) aged out: its slots are declared
  // lost and any live occupant is dropped before survivors release.
  doom_flushed_range(head, DropReason::kReorderTimeout);
  ++stats_.reorder_timeout_flushes;
  next_release_seq_ = head;
  release_reorder_prefix();
  update_hole_tracking();
}

void NicPipeline::doom_flushed_range(std::uint64_t head, DropReason reason) {
  for (WorkerCtx& ctx : workers_) {
    if (ctx.state != WorkerCtx::State::kBusy) continue;
    for (BurstItem& item : ctx.burst) {
      if (!item.doomed && item.seq >= next_release_seq_ && item.seq < head) {
        item.doomed = true;
        --in_flight_;
        drop(item.pkt, reason);
      }
    }
  }
  for (auto it = retry_queue_.begin(); it != retry_queue_.end();) {
    if (it->seq >= next_release_seq_ && it->seq < head) {
      --in_flight_;
      drop(it->pkt, reason);
      it = retry_queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void NicPipeline::tx_admit(net::Packet pkt) {
  if (tx_ring_.size() >= effective_tx_capacity()) {
    --in_flight_;
    drop(pkt, DropReason::kTxRingFull);
    return;
  }
  pkt.tx_enqueue = sim_.now();
  tx_ring_.push_back(std::move(pkt));
  arm_tx_drain();
}

std::size_t NicPipeline::effective_tx_capacity() const {
  if (tx_capacity_override_ == 0) return config_.tx_ring_capacity;
  return std::min(tx_capacity_override_, config_.tx_ring_capacity);
}

void NicPipeline::arm_tx_drain() {
  if (tx_draining_ || tx_ring_.empty() || wire_factor_ <= 0.0) return;
  tx_draining_ = true;
  if (config_.batch_size <= 1) {
    // Legacy single-frame path: one event per frame, wire_tx_done stamped
    // at the completion instant. Kept bit-identical as the batch-1 side of
    // the differential oracle.
    const auto& head = tx_ring_.front();
    const std::uint32_t occ = head.wire_occupancy_bytes();
    sim::SimDuration ser;
    if (wire_factor_ == 1.0 && occ == ser_cache_bytes_) {
      // Uniform traffic hits this memo every time; the double divide in
      // serialization_delay is measurable at millions of packets per second.
      ser = ser_cache_delay_;
    } else {
      ser = config_.wire_rate.serialization_delay(occ);
      if (wire_factor_ < 1.0) {  // injected wire dip: the port drains slower
        ser = static_cast<sim::SimDuration>(static_cast<double>(ser) / wire_factor_ + 0.5);
      } else {
        ser_cache_bytes_ = occ;
        ser_cache_delay_ = ser;
      }
    }
    sim_.schedule_after(ser, [this] { tx_drain_complete(); });
    return;
  }
  // Batched traffic manager: serialize up to batch_size queued frames under
  // ONE event. Each frame's wire_tx_done is computed analytically NOW, at
  // arm time, with the current wire_factor — a mid-batch wire dip cannot
  // retroactively corrupt timestamps the wire model already committed to
  // (the batch in flight finishes at the rate it started at, the same way
  // the legacy path lets the frame currently serializing finish).
  const std::size_t frames =
      std::min<std::size_t>(tx_ring_.size(), config_.batch_size);
  sim::SimTime t = sim_.now();
  for (std::size_t i = 0; i < frames; ++i) {
    net::Packet& pkt = tx_ring_[i];
    const std::uint32_t occ = pkt.wire_occupancy_bytes();
    sim::SimDuration ser;
    if (wire_factor_ == 1.0 && occ == ser_cache_bytes_) {
      ser = ser_cache_delay_;
    } else {
      ser = config_.wire_rate.serialization_delay(occ);
      if (wire_factor_ < 1.0) {
        ser = static_cast<sim::SimDuration>(static_cast<double>(ser) / wire_factor_ + 0.5);
      } else {
        ser_cache_bytes_ = occ;
        ser_cache_delay_ = ser;
      }
    }
    t += ser;
    pkt.wire_tx_done = t;
  }
  tx_inflight_frames_ = frames;
  sim_.schedule_at(t, [this, frames] { tx_drain_batch_complete(frames); });
}

void NicPipeline::tx_drain_complete() {
  assert(!tx_ring_.empty());
  // Timestamp the head in place, then move it straight from the ring into
  // the delivery closure — no intermediate Packet copy.
  net::Packet& head = tx_ring_.front();
  tx_draining_ = false;
  --in_flight_;

  head.wire_tx_done = sim_.now();
  ++stats_.forwarded_to_wire;
  stats_.wire_bytes += head.wire_bytes;
  if (observer_) observer_->on_wire_tx(head, sim_.now());

  // Deliver after the fixed pipeline constant (reorder system, internal
  // queueing, receiver-side capture path).
  sim_.schedule_after(config_.fixed_pipeline_delay, [this, pkt = std::move(head)]() mutable {
    pkt.delivered_at = sim_.now();
    if (observer_) observer_->on_delivered(pkt, sim_.now());
    deliver(pkt);
  });
  tx_ring_.pop_front();
  arm_tx_drain();
}

void NicPipeline::tx_drain_batch_complete(std::size_t frames) {
  tx_draining_ = false;
  tx_inflight_frames_ = 0;
  // The first `frames` ring entries are exactly the ones stamped at arm
  // time: drains are the only pops and this event is the only drain in
  // flight, so nothing overtook them. Account + hand each to the coalesced
  // delivery queue; every per-packet timestamp was already final.
  for (std::size_t i = 0; i < frames; ++i) {
    assert(!tx_ring_.empty());
    net::Packet& head = tx_ring_.front();
    --in_flight_;
    ++stats_.forwarded_to_wire;
    stats_.wire_bytes += head.wire_bytes;
    if (observer_) observer_->on_wire_tx(head, sim_.now());
    head.delivered_at = head.wire_tx_done + config_.fixed_pipeline_delay;
    delivery_queue_.push_back(std::move(head));
    tx_ring_.pop_front();
  }
  if (!delivery_armed_ && !delivery_queue_.empty()) {
    // One flush event per drain batch, armed at the queue tail's
    // delivered_at (delivered_at is monotone along the queue, so the tail
    // covers everything queued).
    delivery_armed_ = true;
    sim_.schedule_at(delivery_queue_.back().delivered_at,
                     [this] { delivery_flush(); });
  }
  arm_tx_drain();
}

void NicPipeline::delivery_flush() {
  delivery_armed_ = false;
  const sim::SimTime now = sim_.now();
  while (!delivery_queue_.empty() &&
         delivery_queue_.front().delivered_at <= now) {
    net::Packet pkt = std::move(delivery_queue_.front());
    delivery_queue_.pop_front();
    if (observer_) observer_->on_delivered(pkt, now);
    deliver(pkt);
    // deliver() may synchronously submit (closed-loop traffic) and re-arm
    // the drain, which can re-arm delivery for frames queued behind us —
    // the loop keeps draining its own prefix either way.
  }
  if (!delivery_queue_.empty() && !delivery_armed_) {
    delivery_armed_ = true;
    sim_.schedule_at(delivery_queue_.back().delivered_at,
                     [this] { delivery_flush(); });
  }
}

// --- Watchdog / recovery ---------------------------------------------------

bool NicPipeline::watchdog_work_pending() const {
  for (const WorkerCtx& ctx : workers_)
    if (ctx.state == WorkerCtx::State::kBusy) return true;
  if (!retry_queue_.empty()) return true;
  if (config_.enforce_reorder && reorder_count_ > 0 && !reorder_frozen_)
    return true;
  // A control-plane forced shed is not the watchdog's to disengage, so it
  // alone must not keep the tick chain alive (submit() checks
  // admission_active_ directly, so shedding still works unarmed).
  if (admission_active_ && !admission_forced_) return true;
  return false;
}

void NicPipeline::arm_watchdog_slow() {
  if (watchdog_armed_ || watchdog_period_ <= 0) return;
  if (watchdog_budget_ <= 0 && reorder_timeout_ <= 0 &&
      !config_.recovery.admission_enabled)
    return;
  if (!watchdog_work_pending()) return;
  watchdog_armed_ = true;
  sim_.schedule_after(watchdog_period_, [this] { watchdog_tick(); });
}

void NicPipeline::watchdog_tick() {
  watchdog_armed_ = false;
  if (watchdog_budget_ > 0) {
    bool aborted = false;
    for (unsigned w = 0; w < workers_.size(); ++w) {
      WorkerCtx& ctx = workers_[w];
      if (ctx.state != WorkerCtx::State::kBusy) continue;
      // The budget bounds ONE packet's service; a burst's legitimate
      // run-to-completion window is proportionally longer, so the stuck
      // check scales with the number of packets the worker is holding —
      // a healthy full burst never trips at any batch size.
      const sim::SimDuration allowance =
          watchdog_budget_ *
          static_cast<sim::SimDuration>(std::max<std::size_t>(1, ctx.burst.size()));
      if (sim_.now() - ctx.busy_start >= allowance) {
        watchdog_abort(w);
        aborted = true;
      }
    }
    if (aborted) try_dispatch();
  }
  reorder_timeout_flush();
  admission_update();
  // One-shot chain: re-arm only while there is still work the watchdog
  // could act on, so a drained pipeline leaves the event queue empty.
  maybe_arm_watchdog();
}

void NicPipeline::watchdog_abort(unsigned worker) {
  WorkerCtx& ctx = workers_[worker];
  ctx.completion.cancel();
  stats_.worker_busy_ns +=
      static_cast<std::uint64_t>(sim_.now() - ctx.busy_start);
  // The whole in-flight burst is salvaged: every live packet is requeued
  // under its original ingress_seq (a salvaged micro-engine context loses
  // all the frames it was holding, not just one), or dropped once its
  // retry budget is gone.
  for (BurstItem& item : ctx.burst) {
    net::Packet pkt = std::move(item.pkt);
    if (item.doomed) continue;
    if (observer_) observer_->on_watchdog(pkt, worker, item.seq, sim_.now());
    if (item.retries < config_.recovery.watchdog_max_retries) {
      ++stats_.watchdog_requeues;
      retry_queue_.push_back(
          RetryEntry{std::move(pkt), item.seq, item.forward, item.retries + 1});
    } else {
      // Retry budget exhausted: the packet is declared lost and its
      // sequence slot committed empty so the window moves on.
      --in_flight_;
      drop(pkt, DropReason::kWatchdogAbort);
      if (config_.enforce_reorder) reorder_commit_gap(item.seq);
    }
  }
  ctx.burst.clear();
  if (ctx.fault_frozen) {
    ctx.state = WorkerCtx::State::kHung;  // dead until repair_worker()
  } else {
    // A merely-slow micro-engine gets a context reset and rejoins at once.
    ctx.state = WorkerCtx::State::kIdle;
    idle_workers_.push_back(worker);
  }
}

void NicPipeline::control_force_admission(std::uint64_t modulus) {
  if (modulus == 0) return;
  // A caller taking the valve supersedes island-restart probation: the
  // probation's timed release must not later drop a hold it doesn't own.
  restart_probation_active_ = false;
  admission_forced_ = true;
  admission_active_ = true;
  admission_modulus_ = modulus;
  admission_over_ticks_ = 0;
}

void NicPipeline::control_release_admission() {
  if (!admission_forced_) return;
  restart_probation_active_ = false;
  admission_forced_ = false;
  admission_active_ = false;
  admission_modulus_ = 0;
  admission_over_ticks_ = 0;
}

void NicPipeline::admission_update() {
  if (admission_forced_) return;  // held by the control plane
  if (!config_.recovery.admission_enabled) return;
  const auto& rec = config_.recovery;
  const double occ = static_cast<double>(tx_ring_.size()) /
                     static_cast<double>(effective_tx_capacity());
  if (admission_active_) {
    if (occ < rec.admission_low_watermark) {
      admission_active_ = false;
      admission_modulus_ = 0;
      admission_over_ticks_ = 0;
    } else if (occ >= rec.admission_high_watermark) {
      if (++admission_over_ticks_ >= rec.admission_escalation_ticks &&
          admission_modulus_ > rec.admission_min_modulus) {
        admission_modulus_ =
            std::max<std::uint64_t>(rec.admission_min_modulus,
                                    admission_modulus_ / 2);
        admission_over_ticks_ = 0;
      }
    } else {
      admission_over_ticks_ = 0;
    }
  } else if (occ >= rec.admission_high_watermark) {
    if (++admission_over_ticks_ >= rec.admission_escalation_ticks) {
      admission_active_ = true;
      admission_modulus_ = rec.admission_start_modulus;
      admission_over_ticks_ = 0;
    }
  } else {
    admission_over_ticks_ = 0;
  }
}

// --- Fault hooks (src/fault) -----------------------------------------------

unsigned NicPipeline::hung_workers() const {
  unsigned n = 0;
  for (const WorkerCtx& ctx : workers_)
    if (ctx.state == WorkerCtx::State::kHung) ++n;
  return n;
}

void NicPipeline::fault_stall_worker(unsigned w, sim::SimDuration duration) {
  if (w >= workers_.size()) return;
  WorkerCtx& ctx = workers_[w];
  ctx.fault_frozen = true;
  if (ctx.state == WorkerCtx::State::kBusy) {
    // Postpone the in-progress completion by the freeze; the watchdog
    // salvages the packet instead if the postponement blows the budget.
    ctx.completion.cancel();
    ctx.busy_end = std::max(ctx.busy_end, sim_.now()) +
                   std::max<sim::SimDuration>(duration, 0);
    ctx.completion = sim_.schedule_at(
        ctx.busy_end,
        [this, w, epoch = ctx.epoch] { on_completion(w, epoch); });
  } else if (ctx.state == WorkerCtx::State::kIdle) {
    idle_workers_.erase(
        std::remove(idle_workers_.begin(), idle_workers_.end(), w),
        idle_workers_.end());
    ctx.state = WorkerCtx::State::kHung;
  }
  maybe_arm_watchdog();
}

void NicPipeline::fault_crash_worker(unsigned w) {
  if (w >= workers_.size()) return;
  WorkerCtx& ctx = workers_[w];
  ctx.fault_frozen = true;
  if (ctx.state == WorkerCtx::State::kBusy) {
    // The execution never completes; only the watchdog can salvage it.
    ctx.completion.cancel();
    maybe_arm_watchdog();
  } else if (ctx.state == WorkerCtx::State::kIdle) {
    idle_workers_.erase(
        std::remove(idle_workers_.begin(), idle_workers_.end(), w),
        idle_workers_.end());
    ctx.state = WorkerCtx::State::kHung;
  }
}

void NicPipeline::repair_worker(unsigned w) {
  if (w >= workers_.size()) return;
  WorkerCtx& ctx = workers_[w];
  if (!ctx.fault_frozen && ctx.state != WorkerCtx::State::kHung) return;
  ctx.fault_frozen = false;
  if (ctx.state == WorkerCtx::State::kHung) {
    ctx.state = WorkerCtx::State::kIdle;
    idle_workers_.push_back(w);
    ++stats_.workers_repaired;
    try_dispatch();
  }
}

void NicPipeline::fault_blackout_island(unsigned island) {
  const auto [first, last] = config_.island_range(island);
  for (unsigned w = first; w < last; ++w) {
    WorkerCtx& ctx = workers_[w];
    ctx.fault_frozen = true;
    if (ctx.state == WorkerCtx::State::kBusy) {
      // Crash-only: the burst dies with the island. Unlike a single-worker
      // crash there is no waiting for watchdog salvage — the blackout knows
      // every occupant is gone, so each is dropped now and its sequence
      // committed as a gap so the reorder window never waits on a dead
      // worker. Doomed items were already dropped by an earlier flush.
      ctx.completion.cancel();
      stats_.worker_busy_ns +=
          static_cast<std::uint64_t>(sim_.now() - ctx.busy_start);
      for (BurstItem& item : ctx.burst) {
        if (item.doomed) continue;
        --in_flight_;
        drop(item.pkt, DropReason::kIslandRestart);
        if (config_.enforce_reorder) reorder_commit_gap(item.seq);
      }
      ctx.burst.clear();
      ctx.state = WorkerCtx::State::kHung;
    } else if (ctx.state == WorkerCtx::State::kIdle) {
      idle_workers_.erase(
          std::remove(idle_workers_.begin(), idle_workers_.end(), w),
          idle_workers_.end());
      ctx.state = WorkerCtx::State::kHung;
    }
    // kHung already: an earlier fault took this worker; the blackout
    // subsumes it and the island restart will bring it back.
  }
  maybe_arm_watchdog();
}

void NicPipeline::restart_island(unsigned island) {
  const auto [first, last] = config_.island_range(island);
  bool any = false;
  for (unsigned w = first; w < last; ++w) {
    WorkerCtx& ctx = workers_[w];
    if (!ctx.fault_frozen && ctx.state != WorkerCtx::State::kHung) continue;
    ctx.fault_frozen = false;
    if (ctx.state == WorkerCtx::State::kHung) {
      ctx.state = WorkerCtx::State::kIdle;
      idle_workers_.push_back(w);
      ++stats_.workers_repaired;
      any = true;
    }
  }
  ++stats_.islands_restarted;
  const auto& rec = config_.recovery;
  if (rec.restart_probation_modulus >= 2 && rec.restart_probation > 0 &&
      !admission_forced_) {
    control_force_admission(rec.restart_probation_modulus);
    restart_probation_active_ = true;
    // Timed auto-release, token-guarded: if another restart re-arms
    // probation or src/ctrl takes/releases the valve meanwhile, this
    // release belongs to a superseded probation and must do nothing.
    const std::uint64_t token = ++probation_token_;
    sim_.schedule_after(rec.restart_probation, [this, token] {
      if (restart_probation_active_ && probation_token_ == token) {
        restart_probation_active_ = false;
        control_release_admission();
      }
    });
  }
  if (any) try_dispatch();
}

void NicPipeline::fault_set_wire_factor(double factor) {
  wire_factor_ = std::clamp(factor, 0.0, 1.0);
  if (wire_factor_ > 0.0) arm_tx_drain();
}

void NicPipeline::fault_set_tx_capacity(std::size_t capacity) {
  tx_capacity_override_ = capacity;
}

void NicPipeline::fault_freeze_reorder(bool frozen) {
  if (reorder_frozen_ == frozen) return;
  reorder_frozen_ = frozen;
  if (frozen) {
    // The timeout clock restarts from the unfreeze, not from before it.
    hole_active_ = false;
    return;
  }
  release_reorder_prefix();
  while (reorder_count_ > config_.reorder_capacity) {
    ++stats_.reorder_flushes;
    const std::uint64_t head = oldest_buffered_seq();
    doom_flushed_range(head, DropReason::kReorderFlush);
    next_release_seq_ = head;
    release_reorder_prefix();
  }
  update_hole_tracking();
  maybe_arm_watchdog();
}

double NicPipeline::worker_utilization(sim::SimTime now) const {
  if (now <= 0) return 0.0;
  // Completed intervals (stats_) plus the elapsed part of every in-progress
  // interval. Elapsed time can never exceed wall time, so the ratio stays
  // within [0, 1]; the final min() only absorbs ns rounding.
  double busy_ns = static_cast<double>(stats_.worker_busy_ns);
  for (const WorkerCtx& ctx : workers_)
    if (ctx.state == WorkerCtx::State::kBusy && now > ctx.busy_start)
      busy_ns += static_cast<double>(now - ctx.busy_start);
  const double capacity_ns =
      static_cast<double>(now) * static_cast<double>(config_.num_workers);
  return std::min(1.0, busy_ns / capacity_ns);
}

}  // namespace flowvalve::np
