#include "np/nic_pipeline.h"

#include <algorithm>
#include <cassert>

namespace flowvalve::np {

NpConfig agilio_cx_40g() {
  NpConfig c;
  c.wire_rate = Rate::gigabits_per_sec(40);
  c.fixed_pipeline_delay = sim::microseconds(161);
  return c;
}

NpConfig agilio_cx_10g() {
  NpConfig c;
  c.wire_rate = Rate::gigabits_per_sec(10);
  c.fixed_pipeline_delay = sim::microseconds(15);
  return c;
}

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kVfRingFull: return "vf-ring-full";
    case DropReason::kScheduler: return "scheduler";
    case DropReason::kTxRingFull: return "tx-ring-full";
    case DropReason::kReorderFlush: return "reorder-flush";
  }
  return "unknown";
}

NicPipeline::NicPipeline(sim::Simulator& sim, NpConfig config, PacketProcessor& processor)
    : sim_(sim), config_(config), processor_(processor) {
  config_.validate();
  vf_rings_.resize(config_.num_vfs);
  worker_idle_.assign(config_.num_workers, true);
  worker_busy_start_.assign(config_.num_workers, 0);
  idle_workers_.reserve(config_.num_workers);
  for (unsigned w = 0; w < config_.num_workers; ++w) idle_workers_.push_back(w);
}

void NicPipeline::drop(const net::Packet& pkt, DropReason reason) {
  switch (reason) {
    case DropReason::kVfRingFull: ++stats_.vf_ring_drops; break;
    case DropReason::kScheduler: ++stats_.scheduler_drops; break;
    case DropReason::kTxRingFull: ++stats_.tx_ring_drops; break;
    case DropReason::kReorderFlush: ++stats_.reorder_flush_drops; break;
  }
  if (observer_) observer_->on_drop(pkt, reason, sim_.now());
  if (on_dropped_detailed_) on_dropped_detailed_(pkt, reason);
  notify_drop(pkt);
}

bool NicPipeline::submit(net::Packet pkt) {
  ++stats_.submitted;
  pkt.nic_arrival = sim_.now();
  if (observer_) observer_->on_submit(pkt, sim_.now());
  const unsigned vf = pkt.vf_port % config_.num_vfs;
  if (vf_rings_[vf].size() >= config_.vf_ring_capacity) {
    drop(pkt, DropReason::kVfRingFull);
    return false;
  }
  vf_rings_[vf].push_back(std::move(pkt));
  ++in_flight_;
  try_dispatch();
  return true;
}

void NicPipeline::try_dispatch() {
  // The load balancer hands waiting packets to idle workers, polling VF
  // rings round-robin so no port starves.
  while (!idle_workers_.empty()) {
    net::Packet* next = nullptr;
    unsigned scanned = 0;
    while (scanned < config_.num_vfs) {
      auto& ring = vf_rings_[rr_vf_];
      if (!ring.empty()) {
        next = &ring.front();
        break;
      }
      rr_vf_ = (rr_vf_ + 1) % config_.num_vfs;
      ++scanned;
    }
    if (next == nullptr) return;  // all rings empty

    net::Packet pkt = std::move(*next);
    vf_rings_[rr_vf_].pop_front();
    rr_vf_ = (rr_vf_ + 1) % config_.num_vfs;

    const unsigned worker = idle_workers_.back();
    idle_workers_.pop_back();
    worker_idle_[worker] = false;
    const std::uint64_t ingress_seq = next_ingress_seq_++;

    // Run-to-completion: base Rx work + processor + base Tx work. The
    // processor runs "at" dispatch time; its cycle cost extends the busy
    // interval. Cycles for dropped packets omit the Tx copy.
    const sim::SimTime now = sim_.now();
    PacketProcessor::Outcome out = processor_.process(pkt, now);
    std::uint64_t cycles = config_.base_rx_cycles + out.cycles;
    if (out.forward) cycles += config_.base_tx_cycles;
    stats_.processing_cycles += cycles;
    ++stats_.processed;
    const sim::SimDuration busy = config_.cycles_to_ns(cycles);
    worker_busy_start_[worker] = now;
    if (observer_) observer_->on_dispatch(pkt, worker, ingress_seq, now, busy);

    sim_.schedule_after(busy, [this, worker, ingress_seq, busy,
                               pkt = std::move(pkt),
                               forward = out.forward]() mutable {
      // Busy time is credited on completion, never at dispatch: charging the
      // full interval up front made utilization exceed 1.0 whenever busy
      // intervals straddled the query instant.
      stats_.worker_busy_ns += static_cast<std::uint64_t>(busy);
      if (forward) {
        ++forward_count_;
        const auto& faults = config_.faults;
        if (faults.leak_commit_every != 0 &&
            forward_count_ % faults.leak_commit_every == 0) {
          // Injected bug: the packet vanishes without a commit or any drop
          // accounting. The conservation checker must notice.
        } else if (faults.bypass_reorder_every != 0 && config_.enforce_reorder &&
                   forward_count_ % faults.bypass_reorder_every == 0) {
          // Injected bug: jump the reorder queue. The ordering checker must
          // notice; committing the hole keeps the rest of the stream moving.
          tx_admit(std::move(pkt));
          reorder_commit(ingress_seq, std::nullopt);
        } else if (config_.enforce_reorder) {
          reorder_commit(ingress_seq, std::move(pkt));
        } else {
          worker_finish(worker, std::move(pkt));
        }
      } else {
        --in_flight_;
        drop(pkt, DropReason::kScheduler);
        if (config_.enforce_reorder) reorder_commit(ingress_seq, std::nullopt);
      }
      worker_idle_[worker] = true;
      idle_workers_.push_back(worker);
      try_dispatch();
    });
  }
}

void NicPipeline::worker_finish(unsigned /*worker*/, net::Packet pkt) {
  tx_admit(std::move(pkt));
}

void NicPipeline::reorder_commit(std::uint64_t seq, std::optional<net::Packet> pkt) {
  if (seq < next_release_seq_) {
    // This slot was already flushed as lost (capacity overrun skipped the
    // gap). Survivors behind it are long gone, so admitting the straggler
    // now would reorder the stream: count it as a reorder-flush drop.
    if (pkt.has_value()) {
      --in_flight_;
      drop(*pkt, DropReason::kReorderFlush);
    }
    return;
  }
  reorder_buffer_.emplace(seq, std::move(pkt));
  stats_.reorder_occupancy_peak =
      std::max<std::uint64_t>(stats_.reorder_occupancy_peak, reorder_buffer_.size());
  release_reorder_prefix();
  // Capacity cap: a stalled hole (e.g. a leaked completion) must not grow
  // the buffer without bound. Declare the missing head sequence(s) lost,
  // jump the release pointer to the oldest buffered completion, and drain.
  while (reorder_buffer_.size() > config_.reorder_capacity) {
    ++stats_.reorder_flushes;
    next_release_seq_ = reorder_buffer_.begin()->first;
    release_reorder_prefix();
  }
}

void NicPipeline::release_reorder_prefix() {
  auto it = reorder_buffer_.begin();
  while (it != reorder_buffer_.end() && it->first == next_release_seq_) {
    if (it->second.has_value()) tx_admit(std::move(*it->second));
    it = reorder_buffer_.erase(it);
    ++next_release_seq_;
  }
}

void NicPipeline::tx_admit(net::Packet pkt) {
  if (tx_ring_.size() >= config_.tx_ring_capacity) {
    --in_flight_;
    drop(pkt, DropReason::kTxRingFull);
    return;
  }
  pkt.tx_enqueue = sim_.now();
  tx_ring_.push_back(std::move(pkt));
  arm_tx_drain();
}

void NicPipeline::arm_tx_drain() {
  if (tx_draining_ || tx_ring_.empty()) return;
  tx_draining_ = true;
  const auto& head = tx_ring_.front();
  const sim::SimDuration ser =
      config_.wire_rate.serialization_delay(head.wire_occupancy_bytes());
  sim_.schedule_after(ser, [this] { tx_drain_complete(); });
}

void NicPipeline::tx_drain_complete() {
  assert(!tx_ring_.empty());
  net::Packet pkt = std::move(tx_ring_.front());
  tx_ring_.pop_front();
  tx_draining_ = false;
  --in_flight_;

  pkt.wire_tx_done = sim_.now();
  ++stats_.forwarded_to_wire;
  stats_.wire_bytes += pkt.wire_bytes;
  if (observer_) observer_->on_wire_tx(pkt, sim_.now());

  // Deliver after the fixed pipeline constant (reorder system, internal
  // queueing, receiver-side capture path).
  sim_.schedule_after(config_.fixed_pipeline_delay, [this, pkt = std::move(pkt)]() mutable {
    pkt.delivered_at = sim_.now();
    if (observer_) observer_->on_delivered(pkt, sim_.now());
    deliver(pkt);
  });
  arm_tx_drain();
}

double NicPipeline::worker_utilization(sim::SimTime now) const {
  if (now <= 0) return 0.0;
  // Completed intervals (stats_) plus the elapsed part of every in-progress
  // interval. Elapsed time can never exceed wall time, so the ratio stays
  // within [0, 1]; the final min() only absorbs ns rounding.
  double busy_ns = static_cast<double>(stats_.worker_busy_ns);
  for (unsigned w = 0; w < config_.num_workers; ++w)
    if (!worker_idle_[w] && now > worker_busy_start_[w])
      busy_ns += static_cast<double>(now - worker_busy_start_[w]);
  const double capacity_ns =
      static_cast<double>(now) * static_cast<double>(config_.num_workers);
  return std::min(1.0, busy_ns / capacity_ns);
}

}  // namespace flowvalve::np
