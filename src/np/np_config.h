// Configuration of the simulated NP-based SmartNIC (paper §III-B, Fig. 4).
//
// The defaults approximate a Netronome Agilio CX 40GbE: tens of worker
// micro-engine contexts at 1.2 GHz, a shared Tx ring drained by the traffic
// manager at wire rate, and per-VF receive rings on the PCIe side. The
// base_rx/base_tx cycle costs cover buffer pulls, header parsing, packet
// modification and the reorder system — everything a worker does besides
// FlowValve's labeling + scheduling functions, whose costs are accounted
// separately (ClassifierCosts / SchedulerCosts).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/scheduler_backend.h"
#include "sim/time.h"

namespace flowvalve::np {

using sim::Rate;
using sim::SimDuration;

struct NpConfig {
  /// Effective worker contexts (micro-engines × useful threads). The Agilio
  /// CX exposes ~50 usable worker MEs to P4/Micro-C programs.
  unsigned num_workers = 50;

  /// Micro-engine clock. Agilio CX islands run at 1.2 GHz (§IV-D).
  double freq_ghz = 1.2;

  /// NP islands: contiguous worker groups that share power/memory rails and
  /// fail as a unit (the NFP-4000 packs MEs into islands; SuperNIC makes
  /// the same groups the tenant failure-domain boundary). Worker w belongs
  /// to island w / island_size(). Clamped to num_workers; 5 islands of 10
  /// workers on the default 50-worker Agilio model.
  unsigned num_islands = 5;

  /// Wire-side port rate (the single physical port we model).
  Rate wire_rate = Rate::gigabits_per_sec(40);

  /// Shared Tx FIFO depth (packets) in front of the traffic manager. This is
  /// the queue FlowValve abstracts as F0 and protects via proportional tail
  /// drop; common tail drop happens here when it overflows.
  std::size_t tx_ring_capacity = 2048;

  /// Per-VF receive ring depth (packets) on the PCIe side. Overflow models
  /// host-driver backpressure and surfaces to senders as loss.
  std::size_t vf_ring_capacity = 512;

  /// Number of SR-IOV virtual function ports.
  unsigned num_vfs = 8;

  /// Worker burst size: an idle micro-engine pulls up to this many packets
  /// from the load balancer in one go (retries first, then round-robin over
  /// the VF rings), runs them back-to-back as one run-to-completion interval
  /// and completes them with a single timing-wheel event. 1 recovers the
  /// legacy one-packet-per-event path exactly (the differential oracle in
  /// tests/test_np_batch_diff.cpp holds the two equivalent); 32 matches
  /// what real NP/DPDK data paths move per burst.
  unsigned batch_size = 32;

  /// Scheduling discipline the worker micro-engines run behind the shared
  /// labeling + try-lock contention structure (core/scheduler_backend.h).
  /// FlowValve's tree is the default; STFQ/Eiffel/SP-PIFO rank valves are
  /// selectable per NIC (and per fuzz scenario / fuzz_check --backend).
  core::BackendKind backend = core::BackendKind::kFlowValve;

  /// Exact-match flow-cache capacity in entries (the cuckoo EMC clamps this
  /// to at least two 4-slot buckets and a power-of-two bucket count). The
  /// million-flow scale bench raises it; the default matches the Agilio
  /// EMC's 64k-flow table.
  std::size_t emc_capacity = 64 * 1024;

  /// Evict EMC entries idle for longer than this (amortized into lookups).
  /// 0 keeps idle eviction off — pure LRU-under-pressure, the legacy
  /// behavior every differential oracle runs with.
  SimDuration emc_idle_timeout = 0;

  /// The reorder system (Fig. 4): when enabled, packets enter the Tx FIFO
  /// in their NIC-arrival order even if a later packet's worker finished
  /// first (run-to-completion cores take different cycle counts per packet).
  /// Dropped packets release their slot immediately.
  bool enforce_reorder = true;

  /// Reorder-buffer occupancy cap (completed packets parked behind a
  /// sequence hole). Real reorder engines have finite slot memory: when the
  /// cap is exceeded the engine declares the missing sequence lost, skips
  /// the hole, and releases the in-order prefix; a completion arriving for
  /// an already-skipped sequence is dropped (DropReason::kReorderFlush).
  /// Sized so the worst legitimate service-time disparity across workers
  /// never reaches it — only a stuck/leaked completion does.
  std::size_t reorder_capacity = 4096;

  /// Per-packet fixed worker cost outside the scheduler: pull from the Rx
  /// ring + parse (base_rx) and modify + copy into the Tx ring + reorder
  /// bookkeeping (base_tx). ~2800 cycles total leaves ~250 cycles for the
  /// labeling + scheduling functions within a ~3050-cycle/packet budget,
  /// which yields the ≈19.7 Mpps peak of Fig. 13 on 50 workers at 1.2 GHz.
  std::uint32_t base_rx_cycles = 1100;
  std::uint32_t base_tx_cycles = 1700;

  /// Fixed latency of the rest of the NIC pipeline (DMA, internal queueing,
  /// reorder system). The paper measures 161 µs at 40 Gbps even with
  /// FlowValve disabled and attributes it to processing it could not
  /// change; at 10 Gbps the same path is far shallower.
  SimDuration fixed_pipeline_delay = sim::microseconds(40);

  /// Self-healing policy for the pipeline's robustness layer (watchdog,
  /// reorder-window timeout, graceful-degradation admission control). The
  /// watchdog and timeout default ON with budgets derived from the cycle
  /// model — generous enough that a fault-free pipeline never trips them —
  /// while admission control defaults OFF so baseline drop accounting is
  /// unchanged unless a scenario opts in.
  struct Recovery {
    /// Watchdog: the budget bounds ONE packet's service time; a worker busy
    /// past budget × (packets in its burst) is declared stuck and its whole
    /// in-flight burst is salvaged — each packet requeued (up to
    /// watchdog_max_retries) or dropped with DropReason::kWatchdogAbort.
    /// 0 derives the budget from the cycle model: max(250 µs,
    /// 64 × cycles_to_ns(base_rx + base_tx)); negative disables the
    /// watchdog entirely.
    SimDuration watchdog_budget = 0;

    /// Watchdog scan period. 0 derives budget / 4 (min 1 µs).
    SimDuration watchdog_period = 0;

    /// Re-executions a salvaged packet may consume before it is dropped.
    unsigned watchdog_max_retries = 3;

    /// Reorder-window hole timeout: a head-of-line hole older than this is
    /// declared lost and flushed past (DropReason::kReorderTimeout) instead
    /// of wedging the window until the capacity cap. 0 derives
    /// 2 × watchdog budget; negative disables timeout flushing.
    SimDuration reorder_timeout = 0;

    /// Graceful degradation: under sustained Tx-ring occupancy above the
    /// high watermark, drop every Nth submission at the VF boundary
    /// (proportionally, before the rings grow), escalating N = start → …
    /// → min modulus while overload persists; disengage below the low
    /// watermark. OFF by default.
    bool admission_enabled = false;
    double admission_high_watermark = 0.85;
    double admission_low_watermark = 0.50;
    /// Consecutive watchdog ticks over the high watermark before the drop
    /// modulus escalates one step.
    unsigned admission_escalation_ticks = 4;
    std::uint64_t admission_start_modulus = 8;
    std::uint64_t admission_min_modulus = 2;

    /// Island-restart probation (DESIGN.md §16): workers restarted after an
    /// island blackout re-enter behind a forced admission modulus (drop
    /// every Nth submission) for `restart_probation`, instead of
    /// cold-starting the refilled island at full offered rate while its
    /// scheduler state and flow cache are still re-warming. 0 modulus
    /// disables probation. Only engages when no one else (control plane,
    /// overload escalation) already holds the admission valve.
    std::uint64_t restart_probation_modulus = 8;
    SimDuration restart_probation = sim::microseconds(500);
  };
  Recovery recovery;

  /// Reject configurations the pipeline cannot run: num_vfs == 0 is a
  /// modulo-by-zero in submit/try_dispatch, num_workers == 0 deadlocks
  /// dispatch, zero ring/reorder capacities silently drop or wedge every
  /// packet, and non-positive clock/wire rates break the delay arithmetic.
  /// Throws std::invalid_argument; called from the NicPipeline constructor.
  void validate() const {
    auto reject = [](const std::string& what) {
      throw std::invalid_argument("NpConfig: " + what);
    };
    if (num_workers == 0) reject("num_workers must be >= 1");
    if (num_vfs == 0) reject("num_vfs must be >= 1");
    if (batch_size == 0) reject("batch_size must be >= 1");
    if (batch_size > 4096) reject("batch_size must be <= 4096");
    if (vf_ring_capacity == 0) reject("vf_ring_capacity must be >= 1");
    if (tx_ring_capacity == 0) reject("tx_ring_capacity must be >= 1");
    if (reorder_capacity == 0) reject("reorder_capacity must be >= 1");
    if (!(freq_ghz > 0.0)) reject("freq_ghz must be > 0");
    if (wire_rate.is_zero()) reject("wire_rate must be > 0");
    if (fixed_pipeline_delay < 0) reject("fixed_pipeline_delay must be >= 0");
    if (emc_idle_timeout < 0) reject("emc_idle_timeout must be >= 0");
    if (recovery.watchdog_max_retries == 0)
      reject("recovery.watchdog_max_retries must be >= 1");
    if (!(recovery.admission_high_watermark > 0.0) ||
        recovery.admission_high_watermark > 1.0)
      reject("recovery.admission_high_watermark must be in (0, 1]");
    if (recovery.admission_low_watermark < 0.0 ||
        recovery.admission_low_watermark >= recovery.admission_high_watermark)
      reject("recovery.admission_low_watermark must be in [0, high)");
    if (recovery.admission_min_modulus < 2)
      reject("recovery.admission_min_modulus must be >= 2");
    if (recovery.admission_start_modulus < recovery.admission_min_modulus)
      reject("recovery.admission_start_modulus must be >= min_modulus");
    if (recovery.admission_escalation_ticks == 0)
      reject("recovery.admission_escalation_ticks must be >= 1");
    if (num_islands == 0) reject("num_islands must be >= 1");
    if (recovery.restart_probation_modulus == 1)
      reject("recovery.restart_probation_modulus must be 0 (off) or >= 2");
    if (recovery.restart_probation < 0)
      reject("recovery.restart_probation must be >= 0");
  }

  /// Failure-domain geometry. Islands partition [0, num_workers) into
  /// contiguous ranges of island_size() workers; the last island absorbs
  /// the remainder when the division is uneven.
  unsigned effective_islands() const {
    return std::max(1u, std::min(num_islands, num_workers));
  }
  unsigned island_size() const { return num_workers / effective_islands(); }
  unsigned island_of(unsigned worker) const {
    return std::min(worker / island_size(), effective_islands() - 1);
  }
  /// Workers [first, second) of island i (i clamped to the last island).
  std::pair<unsigned, unsigned> island_range(unsigned island) const {
    const unsigned n = effective_islands();
    if (island >= n) island = n - 1;
    const unsigned first = island * island_size();
    const unsigned last =
        (island + 1 == n) ? num_workers : first + island_size();
    return {first, last};
  }

  SimDuration cycles_to_ns(std::uint64_t cycles) const {
    return static_cast<SimDuration>(static_cast<double>(cycles) / freq_ghz + 0.5);
  }

  /// Aggregate packet-processing capacity in packets/s given a per-packet
  /// cycle cost (used for sanity checks and the Fig. 13 analysis).
  double peak_pps(std::uint64_t cycles_per_packet) const {
    return static_cast<double>(num_workers) * freq_ghz * 1e9 /
           static_cast<double>(cycles_per_packet);
  }
};

/// Preset matching the paper's 40GbE testbed.
NpConfig agilio_cx_40g();

/// Preset for the 10 Gbps motivation-example link (same silicon, port
/// negotiated down; shallower internal pipeline).
NpConfig agilio_cx_10g();

}  // namespace flowvalve::np
