// Configuration of the simulated NP-based SmartNIC (paper §III-B, Fig. 4).
//
// The defaults approximate a Netronome Agilio CX 40GbE: tens of worker
// micro-engine contexts at 1.2 GHz, a shared Tx ring drained by the traffic
// manager at wire rate, and per-VF receive rings on the PCIe side. The
// base_rx/base_tx cycle costs cover buffer pulls, header parsing, packet
// modification and the reorder system — everything a worker does besides
// FlowValve's labeling + scheduling functions, whose costs are accounted
// separately (ClassifierCosts / SchedulerCosts).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/time.h"

namespace flowvalve::np {

using sim::Rate;
using sim::SimDuration;

struct NpConfig {
  /// Effective worker contexts (micro-engines × useful threads). The Agilio
  /// CX exposes ~50 usable worker MEs to P4/Micro-C programs.
  unsigned num_workers = 50;

  /// Micro-engine clock. Agilio CX islands run at 1.2 GHz (§IV-D).
  double freq_ghz = 1.2;

  /// Wire-side port rate (the single physical port we model).
  Rate wire_rate = Rate::gigabits_per_sec(40);

  /// Shared Tx FIFO depth (packets) in front of the traffic manager. This is
  /// the queue FlowValve abstracts as F0 and protects via proportional tail
  /// drop; common tail drop happens here when it overflows.
  std::size_t tx_ring_capacity = 2048;

  /// Per-VF receive ring depth (packets) on the PCIe side. Overflow models
  /// host-driver backpressure and surfaces to senders as loss.
  std::size_t vf_ring_capacity = 512;

  /// Number of SR-IOV virtual function ports.
  unsigned num_vfs = 8;

  /// The reorder system (Fig. 4): when enabled, packets enter the Tx FIFO
  /// in their NIC-arrival order even if a later packet's worker finished
  /// first (run-to-completion cores take different cycle counts per packet).
  /// Dropped packets release their slot immediately.
  bool enforce_reorder = true;

  /// Reorder-buffer occupancy cap (completed packets parked behind a
  /// sequence hole). Real reorder engines have finite slot memory: when the
  /// cap is exceeded the engine declares the missing sequence lost, skips
  /// the hole, and releases the in-order prefix; a completion arriving for
  /// an already-skipped sequence is dropped (DropReason::kReorderFlush).
  /// Sized so the worst legitimate service-time disparity across workers
  /// never reaches it — only a stuck/leaked completion does.
  std::size_t reorder_capacity = 4096;

  /// Per-packet fixed worker cost outside the scheduler: pull from the Rx
  /// ring + parse (base_rx) and modify + copy into the Tx ring + reorder
  /// bookkeeping (base_tx). ~2800 cycles total leaves ~250 cycles for the
  /// labeling + scheduling functions within a ~3050-cycle/packet budget,
  /// which yields the ≈19.7 Mpps peak of Fig. 13 on 50 workers at 1.2 GHz.
  std::uint32_t base_rx_cycles = 1100;
  std::uint32_t base_tx_cycles = 1700;

  /// Fixed latency of the rest of the NIC pipeline (DMA, internal queueing,
  /// reorder system). The paper measures 161 µs at 40 Gbps even with
  /// FlowValve disabled and attributes it to processing it could not
  /// change; at 10 Gbps the same path is far shallower.
  SimDuration fixed_pipeline_delay = sim::microseconds(40);

  /// Test-only fault injection, used by src/check to prove that the
  /// invariant checkers catch real pipeline bugs (a checker that never
  /// fires is worthless). Every field is 0 — i.e. disabled — outside the
  /// checker-validation tests.
  struct PipelineFaults {
    /// Every Nth forwarded packet vanishes after its worker finishes: no
    /// reorder commit, no Tx admit, no drop accounting. Breaks packet
    /// conservation and stalls the reorder window behind the hole.
    std::uint64_t leak_commit_every = 0;

    /// Every Nth forwarded packet bypasses the reorder system (admitted to
    /// the Tx ring immediately, its sequence committed as a hole). Breaks
    /// in-order delivery without stalling the pipeline.
    std::uint64_t bypass_reorder_every = 0;

    bool any() const { return leak_commit_every || bypass_reorder_every; }
  };
  PipelineFaults faults;

  /// Reject configurations the pipeline cannot run: num_vfs == 0 is a
  /// modulo-by-zero in submit/try_dispatch, num_workers == 0 deadlocks
  /// dispatch, zero ring/reorder capacities silently drop or wedge every
  /// packet, and non-positive clock/wire rates break the delay arithmetic.
  /// Throws std::invalid_argument; called from the NicPipeline constructor.
  void validate() const {
    auto reject = [](const std::string& what) {
      throw std::invalid_argument("NpConfig: " + what);
    };
    if (num_workers == 0) reject("num_workers must be >= 1");
    if (num_vfs == 0) reject("num_vfs must be >= 1");
    if (vf_ring_capacity == 0) reject("vf_ring_capacity must be >= 1");
    if (tx_ring_capacity == 0) reject("tx_ring_capacity must be >= 1");
    if (reorder_capacity == 0) reject("reorder_capacity must be >= 1");
    if (!(freq_ghz > 0.0)) reject("freq_ghz must be > 0");
    if (wire_rate.is_zero()) reject("wire_rate must be > 0");
    if (fixed_pipeline_delay < 0) reject("fixed_pipeline_delay must be >= 0");
  }

  SimDuration cycles_to_ns(std::uint64_t cycles) const {
    return static_cast<SimDuration>(static_cast<double>(cycles) / freq_ghz + 0.5);
  }

  /// Aggregate packet-processing capacity in packets/s given a per-packet
  /// cycle cost (used for sanity checks and the Fig. 13 analysis).
  double peak_pps(std::uint64_t cycles_per_packet) const {
    return static_cast<double>(num_workers) * freq_ghz * 1e9 /
           static_cast<double>(cycles_per_packet);
  }
};

/// Preset matching the paper's 40GbE testbed.
NpConfig agilio_cx_40g();

/// Preset for the 10 Gbps motivation-example link (same silicon, port
/// negotiated down; shallower internal pipeline).
NpConfig agilio_cx_10g();

}  // namespace flowvalve::np
