#include "np/mat.h"

#include <algorithm>
#include <cassert>

namespace flowvalve::np::mat {

FieldValues parse_packet(const net::Packet& pkt) {
  FieldValues f;
  f.set(Field::kVfPort, pkt.vf_port);
  f.set(Field::kSrcIp, pkt.tuple.src_ip);
  f.set(Field::kDstIp, pkt.tuple.dst_ip);
  f.set(Field::kSrcPort, pkt.tuple.src_port);
  f.set(Field::kDstPort, pkt.tuple.dst_port);
  f.set(Field::kProto, static_cast<std::uint32_t>(pkt.tuple.proto));
  f.set(Field::kDscp, 0);
  f.set(Field::kFrameLen, pkt.wire_bytes);
  return f;
}

std::optional<FieldValues> parse_frame_bytes(std::span<const std::uint8_t> frame,
                                             std::uint16_t vf_port) {
  const auto parsed = net::parse_frame(frame);
  if (!parsed) return std::nullopt;
  FieldValues f;
  const net::FiveTuple t = parsed->five_tuple();
  f.set(Field::kVfPort, vf_port);
  f.set(Field::kSrcIp, t.src_ip);
  f.set(Field::kDstIp, t.dst_ip);
  f.set(Field::kSrcPort, t.src_port);
  f.set(Field::kDstPort, t.dst_port);
  f.set(Field::kProto, static_cast<std::uint32_t>(t.proto));
  f.set(Field::kDscp, parsed->ip.dscp);
  f.set(Field::kFrameLen,
        static_cast<std::uint32_t>(frame.size() + net::kFcsBytes));
  return f;
}

bool MatchSpec::matches(std::uint32_t v) const {
  switch (kind) {
    case Kind::kAny:
      return true;
    case Kind::kExact:
      return v == value;
    case Kind::kTernary:
      return (v & mask) == (value & mask);
    case Kind::kLpm: {
      if (prefix_len == 0) return true;
      const std::uint32_t m = prefix_len >= 32 ? 0xffffffffu : ~(0xffffffffu >> prefix_len);
      return (v & m) == (value & m);
    }
  }
  return false;
}

MatchSpec MatchSpec::exact(Field f, std::uint32_t value) {
  MatchSpec s;
  s.field = f;
  s.kind = Kind::kExact;
  s.value = value;
  return s;
}

MatchSpec MatchSpec::ternary(Field f, std::uint32_t value, std::uint32_t mask) {
  MatchSpec s;
  s.field = f;
  s.kind = Kind::kTernary;
  s.value = value;
  s.mask = mask;
  return s;
}

MatchSpec MatchSpec::lpm(Field f, std::uint32_t value, std::uint8_t prefix_len) {
  MatchSpec s;
  s.field = f;
  s.kind = Kind::kLpm;
  s.value = value;
  s.prefix_len = prefix_len;
  return s;
}

MatchSpec MatchSpec::any(Field f) {
  MatchSpec s;
  s.field = f;
  s.kind = Kind::kAny;
  return s;
}

void MatTable::add_entry(TableEntry entry) {
  entries_.push_back(std::move(entry));
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const TableEntry& a, const TableEntry& b) {
                     return a.priority < b.priority;
                   });
}

const Action& MatTable::lookup(const FieldValues& fields) const {
  ++stats_.lookups;
  for (const auto& e : entries_) {
    bool ok = true;
    for (const auto& m : e.match) {
      if (!m.matches(fields.get(m.field))) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ++stats_.hits;
      return e.action;
    }
  }
  ++stats_.defaults;
  return default_action_;
}

std::uint32_t MatProgram::add_table(MatTable table) {
  tables_.push_back(std::move(table));
  return static_cast<std::uint32_t>(tables_.size() - 1);
}

MatProgram::Result MatProgram::apply(const FieldValues& fields) const {
  Result r;
  std::uint32_t index = 0;
  while (index < tables_.size()) {
    ++r.tables_visited;
    const Action& a = tables_[index].lookup(fields);
    switch (a.kind) {
      case Action::Kind::kDrop:
        r.drop = true;
        return r;
      case Action::Kind::kSetLabel:
        r.label = a.arg;
        ++index;
        break;
      case Action::Kind::kGoto:
        // Acyclic: only forward jumps are legal.
        assert(a.arg > index && "MatProgram gotos must jump forward");
        index = a.arg;
        break;
      case Action::Kind::kNoAction:
        ++index;
        break;
    }
  }
  return r;
}

MatProgram::Result MatProgram::run(net::Packet& pkt) const {
  const Result r = apply(parse_packet(pkt));
  if (!r.drop && r.label != net::kUnclassified) pkt.label = r.label;
  return r;
}

MatProgram compile_labeling_program(const core::Classifier& classifier) {
  MatProgram prog;
  MatTable table("fv_labeling");
  std::uint32_t prio = 0;
  for (const auto& rule : classifier.rules()) {
    TableEntry e;
    e.name = rule.name;
    e.priority = prio++;  // rules() is already pref-ordered
    if (rule.vf_port) e.match.push_back(MatchSpec::exact(Field::kVfPort, *rule.vf_port));
    if (rule.proto)
      e.match.push_back(
          MatchSpec::exact(Field::kProto, static_cast<std::uint32_t>(*rule.proto)));
    if (rule.src_prefix_len > 0)
      e.match.push_back(MatchSpec::lpm(Field::kSrcIp, rule.src_ip, rule.src_prefix_len));
    if (rule.dst_prefix_len > 0)
      e.match.push_back(MatchSpec::lpm(Field::kDstIp, rule.dst_ip, rule.dst_prefix_len));
    if (rule.src_port) e.match.push_back(MatchSpec::exact(Field::kSrcPort, *rule.src_port));
    if (rule.dst_port) e.match.push_back(MatchSpec::exact(Field::kDstPort, *rule.dst_port));
    if (rule.dscp)
      e.match.push_back(MatchSpec::exact(Field::kDscp, *rule.dscp));
    e.action = Action::set_label(rule.label);
    table.add_entry(std::move(e));
  }
  if (classifier.default_label() != net::kUnclassified)
    table.set_default_action(Action::set_label(classifier.default_label()));
  else
    table.set_default_action(Action::drop());
  prog.add_table(std::move(table));
  return prog;
}

}  // namespace flowvalve::np::mat
