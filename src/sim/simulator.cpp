#include "sim/simulator.h"

#include <cassert>
#include <memory>

namespace flowvalve::sim {

EventHandle Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule an event in the past");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{at, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast is UB-adjacent,
    // so copy the small fields and move the callable through a mutable pop
    // pattern: re-wrap in a local.
    Event ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled
    now_ = ev.at;
    *ev.alive = false;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    if (queue_.top().at > until) break;
    if (step()) ++n;
  }
  // Advance the clock to the horizon even if nothing fires exactly there so
  // that back-to-back run_until calls observe monotonic time.
  if (until != kSimTimeMax && until > now_) now_ = until;
  return n;
}

}  // namespace flowvalve::sim
