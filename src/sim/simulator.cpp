#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

namespace flowvalve::sim {

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kHeap: return "heap";
    case SchedulerKind::kWheel: return "wheel";
  }
  return "unknown";
}

SimTime Simulator::next_event_time() {
  if (kind_ == SchedulerKind::kHeap) {
    // Drop cancelled events before peeking: a cancelled event must neither
    // gate the horizon check (historically it could let a LIVE event past
    // the horizon slip through) nor misreport the next firing time.
    while (!queue_.empty() && !*queue_.top().alive) queue_.pop();
    return queue_.empty() ? kSimTimeMax : queue_.top().at;
  }
  return wheel_next_time();
}

bool Simulator::step() {
  return kind_ == SchedulerKind::kHeap ? heap_step() : wheel_step();
}

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t n = 0;
  if (kind_ == SchedulerKind::kHeap) {
    for (;;) {
      const SimTime t = next_event_time();
      if (t > until) break;
      if (!heap_step()) break;  // drained (only when until == kSimTimeMax)
      ++n;
    }
  } else {
    for (;;) {
      // The horizon peek leaves the front of early_/due_ armed, so the
      // execute half runs without re-deriving the next event.
      const SimTime t = wheel_next_time();
      if (t > until) break;
      if (t == kSimTimeMax && live_count_ == 0) break;
      wheel_exec_ready();
      ++n;
    }
  }
  // Advance the clock to the horizon even if nothing fires exactly there so
  // that back-to-back run_until calls observe monotonic time.
  if (until != kSimTimeMax && until > now_) now_ = until;
  return n;
}

// --- legacy binary-heap backend ---------------------------------------------

EventHandle Simulator::heap_schedule(SimTime at, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  queue_.push(HeapEvent{at, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

EventHandle Simulator::heap_schedule_periodic(SimDuration period,
                                              std::function<void()> fn) {
  // One shared flag doubles as the handle's liveness AND every chain
  // event's `alive`: cancelling it kills the next firing in place, so the
  // heap backend counts exactly the same executed events as the wheel.
  auto running = std::make_shared<bool>(true);
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  heap_periodic_arm(running, shared_fn, period);
  return EventHandle(running);
}

void Simulator::heap_periodic_arm(std::shared_ptr<bool> running,
                                  std::shared_ptr<std::function<void()>> fn,
                                  SimDuration period) {
  queue_.push(HeapEvent{now_ + period, next_seq_++,
                        [this, running, fn, period] {
                          // heap_step cleared the flag on pop; a periodic
                          // event stays pending through its own callback.
                          *running = true;
                          (*fn)();
                          if (*running) heap_periodic_arm(running, fn, period);
                        },
                        running});
}

bool Simulator::heap_step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast is UB-adjacent,
    // so copy the small fields and move the callable through a mutable pop
    // pattern: re-wrap in a local.
    HeapEvent ev = queue_.top();
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled
    now_ = ev.at;
    *ev.alive = false;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

// --- pooled slab + hierarchical timing wheel backend ------------------------

std::uint32_t Simulator::alloc_slot() {
  if (free_.empty()) {
    if (pool_size_ == chunks_.size() * kPoolChunk)
      chunks_.push_back(std::make_unique<EventSlot[]>(kPoolChunk));
    return static_cast<std::uint32_t>(pool_size_++);
  }
  const std::uint32_t idx = free_.back();
  free_.pop_back();
  return idx;
}

void Simulator::free_slot(std::uint32_t idx) {
  EventSlot& s = slot_at(idx);
  s.fn.reset();  // release captured resources promptly
  s.state = EventSlot::State::kFree;
  s.period = 0;
  s.next = -1;
  ++s.gen;  // outstanding handles to this slot turn inert
  free_.push_back(idx);
}

void Simulator::wheel_place(std::uint32_t idx) {
  EventSlot& s = slot_at(idx);
  const std::uint64_t t = static_cast<std::uint64_t>(s.at);
  if (t < wheel_time_) {
    // Scheduled behind the cursor: possible only after a horizon peek
    // advanced the wheel past `now_`. Such an event is earlier than
    // everything still in the wheel, so it lives in a small sorted
    // side-list that drains before the wheel.
    const auto before = [this](std::uint32_t a, std::uint32_t b) {
      const EventSlot& x = slot_at(a);
      const EventSlot& y = slot_at(b);
      if (x.at != y.at) return x.at < y.at;
      return x.seq < y.seq;
    };
    early_.insert(std::lower_bound(early_.begin(), early_.end(), idx, before),
                  idx);
    s.next = -1;
    return;
  }
  // Minimal level whose block still contains the cursor: level 0 slots
  // resolve single instants; level L >= 1 slots cascade 2^(12+8(L-1)) ns at
  // a time. The highest bit where `t` and the cursor differ picks the level
  // directly (all bits above level_shift(L) + level_bits(L) must agree).
  unsigned level = 0;
  if (const std::uint64_t diff = t ^ wheel_time_; diff >= level_slots(0)) {
    const unsigned hsb = 63u - static_cast<unsigned>(__builtin_clzll(diff));
    level = (hsb - kL0Bits) / kLxBits + 1;  // <= kWheelLevels - 1 by coverage
  }
  const unsigned slot = static_cast<unsigned>((t >> level_shift(level)) &
                                              (level_slots(level) - 1));
  std::int32_t& head = wheel_head_[head_offset(level) + slot];
  s.next = head;
  head = static_cast<std::int32_t>(idx);
  occupancy_[occ_offset(level) + (slot >> 6)] |= 1ull << (slot & 63);
}

int Simulator::scan_occupancy(unsigned level, unsigned from) const {
  const unsigned slots = level_slots(level);
  if (from >= slots) return -1;
  const std::uint64_t* occ = &occupancy_[occ_offset(level)];
  unsigned word = from >> 6;
  std::uint64_t mask = ~0ull << (from & 63);
  for (; word < slots / 64; ++word) {
    const std::uint64_t bits = occ[word] & mask;
    if (bits != 0)
      return static_cast<int>(word * 64 +
                              static_cast<unsigned>(__builtin_ctzll(bits)));
    mask = ~0ull;
  }
  return -1;
}

void Simulator::wheel_advance() {
  for (;;) {
    // The earliest occupied slot: level-L events live inside the cursor's
    // level-(L+1) block while level-(L+1) events live strictly beyond it,
    // so every level-L candidate precedes every level-(L+1) candidate and
    // the FIRST occupied level (scanning upward) holds the global minimum.
    // Slots strictly behind a level's cursor are always empty (the cursor
    // only jumps to minima, and insertions land at or ahead of it), so a
    // forward scan per level suffices.
    std::uint64_t best_time = ~0ull;
    unsigned best_level = 0;
    unsigned best_slot = 0;
    bool found = false;
    for (unsigned level = 0; level < kWheelLevels; ++level) {
      const unsigned shift = level_shift(level);
      const unsigned cur = static_cast<unsigned>((wheel_time_ >> shift) &
                                                 (level_slots(level) - 1));
      const int j = scan_occupancy(level, level == 0 ? cur : cur + 1);
      if (j < 0) continue;
      const unsigned span = shift + level_bits(level);
      const std::uint64_t base =
          span < 64 ? wheel_time_ & ~((1ull << span) - 1) : 0;
      best_time = base + (static_cast<std::uint64_t>(j) << shift);
      best_level = level;
      best_slot = static_cast<unsigned>(j);
      found = true;
      break;
    }
    assert(found && "live events exist but no wheel slot is occupied");
    if (!found) return;

    std::int32_t head = wheel_head_[head_offset(best_level) + best_slot];
    wheel_head_[head_offset(best_level) + best_slot] = -1;
    occupancy_[occ_offset(best_level) + (best_slot >> 6)] &=
        ~(1ull << (best_slot & 63));
    wheel_time_ = best_time;

    if (best_level == 0) {
      // Exact instant reached: batch the slot's survivors, restore
      // same-instant FIFO by sequence number.
      while (head >= 0) {
        const std::uint32_t idx = static_cast<std::uint32_t>(head);
        head = slot_at(idx).next;
        slot_at(idx).next = -1;
        if (slot_at(idx).state == EventSlot::State::kArmed) {
          due_.push_back(idx);
        } else {
          free_slot(idx);
        }
      }
      if (!due_.empty()) {
        if (due_.size() > 1)  // batches of one (sparse workloads) skip it
          std::sort(due_.begin(), due_.end(),
                    [this](std::uint32_t a, std::uint32_t b) {
                      return slot_at(a).seq < slot_at(b).seq;
                    });
        return;
      }
      // Slot held only cancelled events; keep searching.
    } else {
      // Block boundary reached: cascade occupants into strictly lower
      // levels (their level-`best_level` block now contains the cursor).
      while (head >= 0) {
        const std::uint32_t idx = static_cast<std::uint32_t>(head);
        head = slot_at(idx).next;
        slot_at(idx).next = -1;
        if (slot_at(idx).state == EventSlot::State::kArmed) {
          wheel_place(idx);
        } else {
          free_slot(idx);
        }
      }
    }
  }
}

SimTime Simulator::wheel_next_time() {
  for (;;) {
    while (!early_.empty()) {
      const std::uint32_t idx = early_.front();
      if (slot_at(idx).state == EventSlot::State::kArmed) return slot_at(idx).at;
      free_slot(idx);
      early_.erase(early_.begin());
    }
    while (due_pos_ < due_.size()) {
      const std::uint32_t idx = due_[due_pos_];
      if (slot_at(idx).state == EventSlot::State::kArmed) return slot_at(idx).at;
      free_slot(idx);
      ++due_pos_;
    }
    due_.clear();
    due_pos_ = 0;
    if (live_count_ == 0) return kSimTimeMax;
    wheel_advance();
  }
}

bool Simulator::wheel_step() {
  const SimTime t = wheel_next_time();
  if (t == kSimTimeMax && live_count_ == 0) return false;
  wheel_exec_ready();
  return true;
}

void Simulator::wheel_exec_ready() {
  std::uint32_t idx;
  if (!early_.empty()) {
    idx = early_.front();
    early_.erase(early_.begin());
  } else {
    idx = due_[due_pos_++];
  }

  EventSlot& s = slot_at(idx);  // chunked pool: stable through reentrant scheduling
  now_ = s.at;
  ++events_executed_;
  if (s.period > 0) {
    s.fn();  // stays kArmed (and pending) through its own callback
    if (s.state == EventSlot::State::kArmed) {
      // Rearm in place: same slot, same generation, same closure — a new
      // deadline and sequence number are the only per-period work.
      s.at = now_ + s.period;
      s.seq = next_seq_++;
      wheel_place(idx);
    } else {
      free_slot(idx);  // cancelled from inside its own callback
    }
  } else {
    s.state = EventSlot::State::kCancelled;  // no longer pending during fn
    --live_count_;
    s.fn();
    free_slot(idx);
  }
}

}  // namespace flowvalve::sim
