// Virtual-time lock models.
//
// Real NP micro-engines and kernel CPUs contend on locks in wall-clock time.
// In a discrete-event simulation everything executes sequentially, so locks
// are modeled by *occupancy intervals*: a core that acquires a lock at time T
// for H cycles makes the lock busy until T + H. Another core arriving inside
// that window either fails a try_lock (FlowValve's Algorithm 1) or measures
// the stall it would have suffered (kernel/DPDK cost models).
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace flowvalve::sim {

/// Statistics shared by the lock models; used by the benches to report
/// contention (Fig. 7 locking ablation).
struct LockStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t try_failures = 0;
  SimDuration total_wait = 0;      // blocking waits accumulated
  SimDuration total_hold = 0;      // time the lock was held

  void reset() { *this = LockStats{}; }
};

/// A try-lock in virtual time. FlowValve guards per-class update sections
/// with this: the loser simply skips the update (it only meters), so there
/// is never a stall — exactly the paper's Figure 8 semantics.
class SimTryLock {
 public:
  /// Attempt to take the lock at `now`, holding it for `hold`. Returns true
  /// on success (lock busy until now + hold).
  bool try_acquire(SimTime now, SimDuration hold) {
    if (now < busy_until_) {
      ++stats_.try_failures;
      return false;
    }
    busy_until_ = now + hold;
    ++stats_.acquisitions;
    stats_.total_hold += hold;
    return true;
  }

  bool is_busy(SimTime now) const { return now < busy_until_; }
  SimTime busy_until() const { return busy_until_; }

  const LockStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  SimTime busy_until_ = 0;
  LockStats stats_;
};

/// A blocking (FIFO-ish) lock in virtual time. Callers are serialized: each
/// acquire returns the time at which the critical section actually *starts*,
/// which is max(now, previous release). The kernel-qdisc and DPDK models use
/// this to charge lock-spin time to the host CPU.
class SimBlockingLock {
 public:
  /// Acquire at `now`, holding for `hold`. Returns the wait duration the
  /// caller spent spinning before entering the critical section.
  SimDuration acquire(SimTime now, SimDuration hold) {
    SimTime start = now < busy_until_ ? busy_until_ : now;
    SimDuration wait = start - now;
    busy_until_ = start + hold;
    ++stats_.acquisitions;
    stats_.total_wait += wait;
    stats_.total_hold += hold;
    return wait;
  }

  bool is_busy(SimTime now) const { return now < busy_until_; }
  SimTime busy_until() const { return busy_until_; }

  const LockStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  SimTime busy_until_ = 0;
  LockStats stats_;
};

}  // namespace flowvalve::sim
