// Small-buffer-optimized move-only callable, the event kernel's closure
// type. The legacy kernel stored every callback in a std::function, which
// heap-allocates for anything bigger than two pointers — and the pipeline's
// hottest closure (the delivery lambda capturing a whole net::Packet by
// value) is ~100 bytes, so *every* packet paid a malloc/free pair. This
// type inlines captures up to `Capacity` bytes into the event slot itself;
// only pathological closures fall back to the heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace flowvalve::sim {

template <std::size_t Capacity>
class InlineCallback {
 public:
  InlineCallback() = default;

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& fn) {  // NOLINT: implicit, mirrors std::function
    emplace(std::forward<F>(fn));
  }

  ~InlineCallback() { reset(); }

  /// Replace the stored callable, constructing the new one in place. Lets a
  /// pooled event slot adopt a closure with zero intermediate moves.
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  void assign(F&& fn) {
    reset();
    emplace(std::forward<F>(fn));
  }

  /// Invoke the stored callable. Precondition: engaged.
  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroy the stored callable (if any), releasing captured resources.
  /// Trivially-destructible captures (the common case on the event hot
  /// path) skip the indirect destroy call entirely.
  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial_destroy) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* p);
    void (*move)(void* dst, void* src);  // move-construct dst from src
    void (*destroy)(void* p);
    bool trivial_destroy;
  };

  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
        std::is_trivially_destructible_v<Fn>,
    };
    return &ops;
  }

  template <class Fn>
  static const Ops* boxed_ops() {
    static constexpr Ops ops = {
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* dst, void* src) {
          auto& sp = *static_cast<Fn**>(src);
          ::new (dst) Fn*(sp);
          sp = nullptr;  // source destroy must not double-delete
        },
        [](void* p) { delete *static_cast<Fn**>(p); },
        false,  // boxed: delete is never skippable
    };
    return &ops;
  }

  template <class F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = boxed_ops<Fn>();
    }
  }

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(buf_, other.buf_);
      if (!ops_->trivial_destroy) ops_->destroy(other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace flowvalve::sim
