#include "sim/rng.h"

#include <cassert>
#include <cmath>

namespace flowvalve::sim {
namespace {

// splitmix64 — used to expand seeds into full generator state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// FNV-1a for stream-name hashing.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

Rng::Rng(std::uint64_t seed, const std::uint64_t state[4]) : seed_(seed) {
  for (int i = 0; i < 4; ++i) s_[i] = state[i];
}

Rng Rng::split(std::string_view component_name) const {
  return split(fnv1a(component_name));
}

Rng Rng::split(std::uint64_t index) const {
  // Mix the child's index into a fresh splitmix expansion of our seed so
  // child streams neither overlap each other nor the parent.
  std::uint64_t x = seed_ ^ (index * 0x9e3779b97f4a7c15ULL) ^ 0xa5a5a5a55a5a5a5aULL;
  std::uint64_t st[4];
  for (auto& w : st) w = splitmix64(x);
  return Rng(x, st);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound != 0);
  // Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double acc = 0.0;
  for (int i = 0; i < 12; ++i) acc += next_double();
  return mean + (acc - 6.0) * stddev;
}

bool Rng::chance(double p) { return next_double() < p; }

}  // namespace flowvalve::sim
