// Virtual time and rate primitives for the FlowValve simulation kernel.
//
// All simulation time is expressed in integer nanoseconds (SimTime). All
// rates are expressed in bits per second via the Rate value type. Keeping a
// single canonical unit at module boundaries avoids the classic
// bits-vs-bytes / ns-vs-us unit bugs that plague schedulers.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace flowvalve::sim {

/// Virtual time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A duration in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

// -- duration constructors ---------------------------------------------------

constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(std::int64_t us) { return us * 1'000; }
constexpr SimDuration milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr SimDuration seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Fractional seconds; rounds to the nearest nanosecond.
constexpr SimDuration seconds_f(double s) {
  return static_cast<SimDuration>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

// -- duration accessors ------------------------------------------------------

constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) / 1e9; }
constexpr double to_millis(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_micros(SimDuration d) { return static_cast<double>(d) / 1e3; }

/// A transmission/processing rate. Canonically stored in bits per second.
///
/// Rate is a regular value type: copyable, comparable, and cheap. Helper
/// accessors convert to the units used by token buckets (bytes) and the
/// micro-engine cost model (packets, cycles).
class Rate {
 public:
  constexpr Rate() = default;

  static constexpr Rate bits_per_sec(double bps) { return Rate(bps); }
  static constexpr Rate kilobits_per_sec(double kbps) { return Rate(kbps * 1e3); }
  static constexpr Rate megabits_per_sec(double mbps) { return Rate(mbps * 1e6); }
  static constexpr Rate gigabits_per_sec(double gbps) { return Rate(gbps * 1e9); }
  static constexpr Rate bytes_per_sec(double Bps) { return Rate(Bps * 8.0); }
  static constexpr Rate zero() { return Rate(0.0); }

  constexpr double bps() const { return bits_per_sec_; }
  constexpr double kbps() const { return bits_per_sec_ / 1e3; }
  constexpr double mbps() const { return bits_per_sec_ / 1e6; }
  constexpr double gbps() const { return bits_per_sec_ / 1e9; }
  constexpr double bytes_per_sec() const { return bits_per_sec_ / 8.0; }
  constexpr double bytes_per_ns() const { return bits_per_sec_ / 8e9; }

  constexpr bool is_zero() const { return bits_per_sec_ <= 0.0; }

  /// Time to serialize `bytes` bytes at this rate. Returns kSimTimeMax for a
  /// zero rate (nothing ever finishes on a dead wire).
  constexpr SimDuration serialization_delay(std::uint64_t bytes) const {
    if (bits_per_sec_ <= 0.0) return kSimTimeMax;
    return static_cast<SimDuration>(static_cast<double>(bytes) * 8e9 / bits_per_sec_ + 0.5);
  }

  /// Bytes transferable in duration `d` at this rate.
  constexpr double bytes_in(SimDuration d) const {
    return bytes_per_ns() * static_cast<double>(d);
  }

  friend constexpr Rate operator+(Rate a, Rate b) { return Rate(a.bits_per_sec_ + b.bits_per_sec_); }
  friend constexpr Rate operator-(Rate a, Rate b) { return Rate(a.bits_per_sec_ - b.bits_per_sec_); }
  friend constexpr Rate operator*(Rate a, double k) { return Rate(a.bits_per_sec_ * k); }
  friend constexpr Rate operator*(double k, Rate a) { return Rate(a.bits_per_sec_ * k); }
  friend constexpr Rate operator/(Rate a, double k) { return Rate(a.bits_per_sec_ / k); }
  friend constexpr double operator/(Rate a, Rate b) { return a.bits_per_sec_ / b.bits_per_sec_; }
  friend constexpr auto operator<=>(Rate a, Rate b) = default;

  Rate& operator+=(Rate o) { bits_per_sec_ += o.bits_per_sec_; return *this; }
  Rate& operator-=(Rate o) { bits_per_sec_ -= o.bits_per_sec_; return *this; }

  /// Clamp negative rates (which arise transiently from Eq. 4-style
  /// subtraction) to zero.
  constexpr Rate clamped() const { return Rate(bits_per_sec_ < 0.0 ? 0.0 : bits_per_sec_); }

  std::string to_string() const;

 private:
  explicit constexpr Rate(double bps) : bits_per_sec_(bps) {}
  double bits_per_sec_ = 0.0;
};

}  // namespace flowvalve::sim
