// Deterministic pseudo-random number generation for the simulator.
//
// A single seeded root generator is split into per-component streams so that
// adding a new random consumer does not perturb the draws seen by existing
// components (important for reproducible experiment diffs).
#pragma once

#include <cstdint>
#include <string_view>

namespace flowvalve::sim {

/// xoshiro256** 1.0 — fast, high-quality, and trivially seedable. We avoid
/// std::mt19937_64 because its state is large and its distributions are not
/// reproducible across standard library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derive an independent stream for a named component. Streams derived
  /// with different names (or indices) are statistically independent.
  Rng split(std::string_view component_name) const;
  Rng split(std::uint64_t index) const;

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Approximately normal via sum of uniforms (Irwin-Hall, n=12); good
  /// enough for jitter modeling and has no transcendental calls.
  double normal(double mean, double stddev);

  /// Bernoulli draw.
  bool chance(double p);

  std::uint64_t seed() const { return seed_; }

 private:
  Rng(std::uint64_t seed, const std::uint64_t state[4]);

  std::uint64_t seed_ = 0;
  std::uint64_t s_[4] = {};
};

}  // namespace flowvalve::sim
