// Fixed-capacity power-of-two ring buffer (SPSC-style FIFO semantics, but
// single-threaded like everything in the simulator). Replaces std::deque on
// the pipeline's per-packet hot paths: a deque push touches its block map
// and allocates a fresh block every few hundred entries, while a ring push
// is one masked store on memory that never moves after construction —
// matching how real NP Tx/Rx rings are laid out in NIC SRAM.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace flowvalve::sim {

template <class T>
class FixedRing {
 public:
  FixedRing() = default;
  explicit FixedRing(std::size_t min_capacity) { reset_capacity(min_capacity); }

  FixedRing(FixedRing&&) noexcept = default;
  FixedRing& operator=(FixedRing&&) noexcept = default;
  FixedRing(const FixedRing&) = delete;
  FixedRing& operator=(const FixedRing&) = delete;

  /// (Re)allocate storage: the next power of two >= max(1, min_capacity).
  /// Drops any current contents.
  void reset_capacity(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    buf_ = std::make_unique<T[]>(cap);
    mask_ = cap - 1;
    head_ = tail_ = 0;
  }

  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == capacity(); }
  std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }
  std::size_t capacity() const { return mask_ + 1; }

  void push_back(T value) {
    assert(!full() && "FixedRing overflow");
    buf_[tail_ & mask_] = std::move(value);
    ++tail_;
  }

  T& front() { return buf_[head_ & mask_]; }
  const T& front() const { return buf_[head_ & mask_]; }

  void pop_front() {
    assert(!empty() && "FixedRing underflow");
    // Release the slot's resources promptly; a trivially-destructible T
    // owns nothing, so skip the (surprisingly hot) whole-struct store.
    if constexpr (!std::is_trivially_destructible_v<T>) {
      buf_[head_ & mask_] = T();
    }
    ++head_;
  }

  /// FIFO-order access: operator[](0) is the front.
  T& operator[](std::size_t i) { return buf_[(head_ + i) & mask_]; }
  const T& operator[](std::size_t i) const { return buf_[(head_ + i) & mask_]; }

 private:
  std::unique_ptr<T[]> buf_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;  // monotonic; masked on access
  std::uint64_t tail_ = 0;
};

}  // namespace flowvalve::sim
