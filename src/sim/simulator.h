// Discrete-event simulation kernel.
//
// The Simulator owns a priority queue of (time, sequence, callback) events.
// Events scheduled for the same instant execute in scheduling order, which
// keeps runs fully deterministic. All hardware and host models in this repo
// are driven from this single virtual clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace flowvalve::sim {

/// Handle that can cancel a pending event. Cancellation is lazy: the event
/// stays in the heap but becomes a no-op when popped.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  bool pending() const { return alive_ && *alive_; }

  /// Cancel the event if it is still pending. Safe to call repeatedly.
  void cancel() {
    if (alive_) *alive_ = false;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` after the current time.
  EventHandle schedule_after(SimDuration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains or virtual time would pass `until`.
  /// Events at exactly `until` are executed. Returns the number of events run.
  std::uint64_t run_until(SimTime until);

  /// Run until the queue is empty.
  std::uint64_t run_all() { return run_until(kSimTimeMax); }

  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// A recurring timer bound to a simulator: reschedules itself every `period`
/// until stopped. Used by rate meters, scenario timelines, and drain loops.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }

  void stop() {
    running_ = false;
    handle_.cancel();
  }

  bool running() const { return running_; }
  SimDuration period() const { return period_; }

 private:
  void arm() {
    handle_ = sim_.schedule_after(period_, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm();
    });
  }

  Simulator& sim_;
  SimDuration period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventHandle handle_;
};

}  // namespace flowvalve::sim
