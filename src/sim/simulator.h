// Discrete-event simulation kernel.
//
// The Simulator executes (time, sequence, callback) events in (at, seq)
// order: earlier times first, and events scheduled for the same instant in
// scheduling order, which keeps runs fully deterministic. All hardware and
// host models in this repo are driven from this single virtual clock.
//
// Two interchangeable scheduler backends sit behind the same API:
//
//  - SchedulerKind::kWheel (default): a slab/free-list event pool with
//    generation-counter handles feeding a hierarchical timing wheel
//    (8 levels x 256 slots, Varghese/Lauck-style with Carousel's
//    array-backed philosophy). No allocation on the schedule/fire hot
//    path: closures live inline in pooled slots (InlineCallback), wheel
//    slots are intrusive singly-linked lists, and cancellation is a
//    generation check.
//  - SchedulerKind::kHeap: the original binary-heap kernel
//    (std::function + shared_ptr<bool> liveness flag per event), kept as
//    the reference implementation for differential testing and as the
//    honest pre-optimization baseline for bench_simcore.
//
// Both backends execute the exact same event sequence for the same inputs
// (asserted by tests/test_sim_kernel_diff.cpp), so every determinism
// golden stays valid regardless of backend.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/time.h"

namespace flowvalve::sim {

class Simulator;

enum class SchedulerKind : std::uint8_t {
  kHeap,   // reference: binary heap, per-event shared_ptr + std::function
  kWheel,  // default: pooled slots + hierarchical timing wheel
};

const char* scheduler_kind_name(SchedulerKind kind);

/// Handle that can cancel a pending event. Cancellation is lazy: the event
/// stays queued but becomes a no-op when reached. For pooled events the
/// handle is (slot index, generation); a recycled slot bumps its generation
/// so stale handles turn inert instead of touching the new occupant.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled. A periodic
  /// event stays pending across firings until cancelled.
  bool pending() const;

  /// Cancel the event if it is still pending. Safe to call repeatedly.
  void cancel();

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  // Legacy-heap events are tracked by a shared liveness flag; pooled events
  // by (simulator, slot, generation). Exactly one side is populated.
  std::shared_ptr<bool> alive_;
  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  /// Callbacks up to this size (the pipeline's delivery lambda captures a
  /// whole net::Packet) execute without any heap allocation.
  static constexpr std::size_t kInlineCallbackBytes = 128;
  using Callback = InlineCallback<kInlineCallbackBytes>;

  explicit Simulator(SchedulerKind kind = SchedulerKind::kWheel)
      : kind_(kind) {
    for (auto& head : wheel_head_) head = -1;
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  SchedulerKind scheduler_kind() const { return kind_; }

  /// Schedule `fn` to run at absolute time `at` (>= now).
  template <class F>
  EventHandle schedule_at(SimTime at, F&& fn) {
    assert(at >= now_ && "cannot schedule an event in the past");
    if (kind_ == SchedulerKind::kHeap)
      return heap_schedule(at, std::function<void()>(std::forward<F>(fn)));
    return wheel_schedule(at, /*period=*/0, std::forward<F>(fn));
  }

  /// Schedule `fn` to run `delay` after the current time.
  template <class F>
  EventHandle schedule_after(SimDuration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule `fn` every `period` (> 0), first firing at now + period, until
  /// the returned handle is cancelled. The pooled backend rearms the SAME
  /// event slot in place (new deadline + sequence, closure untouched), so a
  /// steady periodic timer costs zero allocations per firing.
  template <class F>
  EventHandle schedule_periodic(SimDuration period, F&& fn) {
    assert(period > 0 && "periodic events need a positive period");
    if (kind_ == SchedulerKind::kHeap)
      return heap_schedule_periodic(period,
                                    std::function<void()>(std::forward<F>(fn)));
    return wheel_schedule(now_ + period, period, std::forward<F>(fn));
  }

  /// Run until the event queue drains or virtual time would pass `until`.
  /// Events at exactly `until` are executed. Returns the number of events
  /// run. Cancelled events never advance the clock and never count.
  std::uint64_t run_until(SimTime until);

  /// Run until the queue is empty.
  std::uint64_t run_all() { return run_until(kSimTimeMax); }

  /// Execute at most one live event; returns false if none remain.
  bool step();

  bool empty() const {
    return kind_ == SchedulerKind::kHeap ? queue_.empty() : live_count_ == 0;
  }
  /// Events awaiting execution. The heap backend counts lazily-cancelled
  /// events still draining; the pooled backend counts live events only.
  std::size_t pending_events() const {
    return kind_ == SchedulerKind::kHeap ? queue_.size() : live_count_;
  }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  friend class EventHandle;

  // --- shared state ---------------------------------------------------------
  SchedulerKind kind_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;

  /// Time of the next live event, or kSimTimeMax if none. May lazily drop
  /// cancelled events (both backends).
  SimTime next_event_time();

  // --- legacy binary-heap backend (reference implementation) ---------------
  struct HeapEvent {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const HeapEvent& a, const HeapEvent& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  EventHandle heap_schedule(SimTime at, std::function<void()> fn);
  EventHandle heap_schedule_periodic(SimDuration period,
                                     std::function<void()> fn);
  void heap_periodic_arm(std::shared_ptr<bool> running,
                         std::shared_ptr<std::function<void()>> fn,
                         SimDuration period);
  bool heap_step();

  std::priority_queue<HeapEvent, std::vector<HeapEvent>, Later> queue_;

  // --- pooled slab + hierarchical timing wheel backend ----------------------
  //
  // Pool: slots live in fixed-size chunks (stable addresses under
  // reentrant scheduling, and plain shift+mask indexing — a deque's
  // two-level block map costs a division per access on this very hot
  // lookup) and are recycled through a free list; each recycle bumps the
  // slot's generation, invalidating outstanding handles.
  //
  // Wheel: a wide 4096-slot level 0 (one slot per ns across a 4 µs span —
  // the pipeline's completion/drain/arrival deltas land here directly, no
  // cascading) topped by seven 256-slot levels, 68 bits of total coverage.
  // Each slot is an intrusive singly-linked list (EventSlot::next) with an
  // occupancy bitmap per level for O(1) next-slot scans. Advancing to a
  // level-0 slot collects its list into `due_` sorted by sequence number
  // (same-instant FIFO); crossing a higher-level slot boundary cascades its
  // list into strictly lower levels. `early_` absorbs the rare event
  // scheduled before wheel_time_ (possible after a run_until horizon peek
  // advanced the wheel): such an event is provably earlier than everything
  // still in the wheel.
  static constexpr unsigned kWheelLevels = 8;
  static constexpr unsigned kL0Bits = 12;  // level 0: 4096 one-ns slots
  static constexpr unsigned kLxBits = 8;   // levels 1..7: 256 slots each

  static constexpr unsigned level_bits(unsigned level) {
    return level == 0 ? kL0Bits : kLxBits;
  }
  static constexpr unsigned level_shift(unsigned level) {
    return level == 0 ? 0 : kL0Bits + kLxBits * (level - 1);
  }
  static constexpr unsigned level_slots(unsigned level) {
    return 1u << level_bits(level);
  }
  /// Index of `level`'s first entry in the flattened head / bitmap arrays.
  static constexpr unsigned head_offset(unsigned level) {
    return level == 0 ? 0 : level_slots(0) + (level - 1) * level_slots(1);
  }
  static constexpr unsigned occ_offset(unsigned level) {
    return level == 0 ? 0 : level_slots(0) / 64 + (level - 1) * (level_slots(1) / 64);
  }
  static constexpr unsigned kTotalSlots =
      (1u << kL0Bits) + (kWheelLevels - 1) * (1u << kLxBits);

  struct EventSlot {
    enum class State : std::uint8_t { kFree, kArmed, kCancelled };
    SimTime at = 0;
    std::uint64_t seq = 0;
    SimDuration period = 0;  // > 0: rearm in place after each firing
    std::uint32_t gen = 0;
    std::int32_t next = -1;  // intrusive wheel-slot list link
    State state = State::kFree;
    Callback fn;
  };

  /// Arm a fresh pooled event. The closure is constructed directly inside
  /// the slot (no intermediate Callback move of up to 128 capture bytes).
  template <class F>
  EventHandle wheel_schedule(SimTime at, SimDuration period, F&& fn) {
    const std::uint32_t idx = alloc_slot();
    EventSlot& s = slot_at(idx);
    s.at = at;
    s.seq = next_seq_++;
    s.period = period;
    s.state = EventSlot::State::kArmed;
    s.fn.assign(std::forward<F>(fn));
    ++live_count_;
    wheel_place(idx);
    return EventHandle(this, idx, s.gen);
  }
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t idx);
  void wheel_place(std::uint32_t idx);
  void wheel_advance();  // pre: live events exist, due_/early_ drained
  SimTime wheel_next_time();
  bool wheel_step();
  void wheel_exec_ready();  // pre: wheel_next_time just returned a live event
  int scan_occupancy(unsigned level, unsigned from) const;

  static constexpr unsigned kPoolChunkBits = 8;  // 256 slots per chunk
  static constexpr unsigned kPoolChunk = 1u << kPoolChunkBits;

  EventSlot& slot_at(std::uint32_t idx) {
    return chunks_[idx >> kPoolChunkBits][idx & (kPoolChunk - 1)];
  }
  const EventSlot& slot_at(std::uint32_t idx) const {
    return chunks_[idx >> kPoolChunkBits][idx & (kPoolChunk - 1)];
  }

  bool handle_pending(std::uint32_t slot, std::uint32_t gen) const {
    return slot < pool_size_ && slot_at(slot).gen == gen &&
           slot_at(slot).state == EventSlot::State::kArmed;
  }
  void handle_cancel(std::uint32_t slot, std::uint32_t gen) {
    if (slot >= pool_size_) return;
    EventSlot& s = slot_at(slot);
    if (s.gen != gen || s.state != EventSlot::State::kArmed) return;
    s.state = EventSlot::State::kCancelled;
    --live_count_;
  }

  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  std::size_t pool_size_ = 0;  // constructed slots across all chunks
  std::vector<std::uint32_t> free_;
  std::size_t live_count_ = 0;  // armed events (excludes cancelled)

  std::uint64_t wheel_time_ = 0;  // wheel cursor; <= every event in the wheel
  std::int32_t wheel_head_[kTotalSlots];  // flattened per-level lists; -1 = empty
  std::uint64_t occupancy_[kTotalSlots / 64] = {};

  std::vector<std::uint32_t> due_;  // current-instant batch, seq-sorted
  std::size_t due_pos_ = 0;
  std::vector<std::uint32_t> early_;  // events behind the cursor, (at,seq)-sorted
};

inline bool EventHandle::pending() const {
  if (alive_) return *alive_;
  return sim_ != nullptr && sim_->handle_pending(slot_, gen_);
}

inline void EventHandle::cancel() {
  if (alive_) {
    *alive_ = false;
  } else if (sim_ != nullptr) {
    sim_->handle_cancel(slot_, gen_);
  }
}

/// A recurring timer bound to a simulator: fires every `period` until
/// stopped. Used by rate meters, scenario timelines, and drain loops.
/// Backed by Simulator::schedule_periodic, so on the pooled backend the
/// timer reuses one event slot for its whole lifetime instead of
/// allocating a fresh closure per firing.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    handle_ = sim_.schedule_periodic(period_, [this] { fn_(); });
  }

  void stop() {
    running_ = false;
    handle_.cancel();
  }

  bool running() const { return running_; }
  SimDuration period() const { return period_; }

 private:
  Simulator& sim_;
  SimDuration period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventHandle handle_;
};

}  // namespace flowvalve::sim
