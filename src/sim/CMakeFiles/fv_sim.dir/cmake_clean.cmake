file(REMOVE_RECURSE
  "CMakeFiles/fv_sim.dir/rng.cpp.o"
  "CMakeFiles/fv_sim.dir/rng.cpp.o.d"
  "CMakeFiles/fv_sim.dir/simulator.cpp.o"
  "CMakeFiles/fv_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/fv_sim.dir/time.cpp.o"
  "CMakeFiles/fv_sim.dir/time.cpp.o.d"
  "libfv_sim.a"
  "libfv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
