#include "sim/time.h"

#include <cstdio>

namespace flowvalve::sim {

std::string Rate::to_string() const {
  char buf[64];
  if (bits_per_sec_ >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fGbps", gbps());
  } else if (bits_per_sec_ >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fMbps", mbps());
  } else if (bits_per_sec_ >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fKbps", kbps());
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fbps", bps());
  }
  return buf;
}

}  // namespace flowvalve::sim
