// Packet model.
//
// The simulator moves Packet values (not wire bytes) between components for
// speed; src/net/headers.h can materialize/parse real Ethernet/IPv4/TCP/UDP
// frames for the classifier and its tests. The `wire_bytes` field is the
// full frame length including FCS; per-packet wire occupancy additionally
// pays kEthernetOverheadBytes of preamble + inter-frame gap, matching how
// 40GbE line rate is computed in the paper's Fig. 13 (64B → 59.5 Mpps).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/time.h"

namespace flowvalve::net {

using sim::SimTime;

/// Preamble (8B) + inter-frame gap (12B): consumed on the wire per frame but
/// not part of the frame itself.
inline constexpr std::uint32_t kEthernetOverheadBytes = 20;

/// Minimum/maximum Ethernet frame sizes (with FCS).
inline constexpr std::uint32_t kMinFrameBytes = 64;
inline constexpr std::uint32_t kMaxFrameBytes = 1518;

enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

/// Classic 5-tuple flow key.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kTcp;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;

  /// Stable 64-bit hash (used by the exact-match flow cache model).
  std::uint64_t hash() const;

  std::string to_string() const;
};

/// Identifier of a traffic class / QoS label assigned by the classifier.
/// kUnclassified means the labeling function has not matched a filter yet.
using ClassLabelId = std::uint32_t;
inline constexpr ClassLabelId kUnclassified = 0xffffffffu;

/// A simulated packet. Timestamp fields are filled in as the packet moves
/// through the pipeline and feed the one-way delay measurements (Fig. 14).
struct Packet {
  std::uint64_t id = 0;            // globally unique, assigned at creation
  std::uint32_t flow_id = 0;       // application flow identity
  std::uint32_t app_id = 0;        // sending application/process
  std::uint16_t vf_port = 0;       // SR-IOV virtual function of entry
  std::uint32_t wire_bytes = kMinFrameBytes;  // frame length incl. FCS
  std::uint64_t seq_in_flow = 0;
  FiveTuple tuple;

  ClassLabelId label = kUnclassified;

  /// Control-plane policy epoch the dispatching worker had cut over to when
  /// this packet entered its run-to-completion interval (src/ctrl staged
  /// rollout). 0 until a live reconfiguration has ever been staged.
  std::uint32_t policy_epoch = 0;

  SimTime created_at = 0;      // handed to the host NIC driver
  SimTime nic_arrival = 0;     // pulled by a micro-engine / qdisc enqueue
  SimTime dispatched_at = -1;  // start of the worker's run-to-completion
                               // interval; -1 until dispatched. A watchdog
                               // retry overwrites it (last dispatch wins).
  sim::SimDuration service_busy = 0;  // busy interval of that dispatch
  SimTime tx_enqueue = 0;      // accepted into the Tx FIFO
  SimTime wire_tx_done = 0;    // last bit on the wire
  SimTime delivered_at = 0;    // observed at the receiver (incl. pipeline constants)

  /// Wire occupancy of this frame (frame + preamble + IFG).
  std::uint32_t wire_occupancy_bytes() const { return wire_bytes + kEthernetOverheadBytes; }
};

/// Line rate in packets/s for a fixed frame size. 40GbE @64B → ~59.52 Mpps.
double line_rate_pps(sim::Rate line_rate, std::uint32_t frame_bytes);

}  // namespace flowvalve::net

template <>
struct std::hash<flowvalve::net::FiveTuple> {
  std::size_t operator()(const flowvalve::net::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};
