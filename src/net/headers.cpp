#include "net/headers.h"

#include <algorithm>
#include <cassert>

namespace flowvalve::net {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16 & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8 & 0xff));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

std::uint16_t get_u16(std::span<const std::uint8_t> d, std::size_t off) {
  return static_cast<std::uint16_t>(d[off] << 8 | d[off + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> d, std::size_t off) {
  return static_cast<std::uint32_t>(d[off]) << 24 | static_cast<std::uint32_t>(d[off + 1]) << 16 |
         static_cast<std::uint32_t>(d[off + 2]) << 8 | static_cast<std::uint32_t>(d[off + 3]);
}

void append_ethernet(std::vector<std::uint8_t>& out, const EthernetHeader& eth) {
  out.insert(out.end(), eth.dst.begin(), eth.dst.end());
  out.insert(out.end(), eth.src.begin(), eth.src.end());
  put_u16(out, eth.ethertype);
}

// Appends the 20-byte IPv4 header with a correct checksum. `payload_len` is
// the L4 length (header + data).
void append_ipv4(std::vector<std::uint8_t>& out, Ipv4Header ip, std::size_t l4_len) {
  ip.total_length = static_cast<std::uint16_t>(kIpv4HeaderBytes + l4_len);
  const std::size_t start = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(static_cast<std::uint8_t>(ip.dscp << 2));
  put_u16(out, ip.total_length);
  put_u16(out, ip.identification);
  put_u16(out, 0x4000);  // flags: DF, fragment offset 0
  out.push_back(ip.ttl);
  out.push_back(ip.protocol);
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, ip.src_ip);
  put_u32(out, ip.dst_ip);
  const std::uint16_t csum =
      internet_checksum({out.data() + start, kIpv4HeaderBytes});
  out[start + 10] = static_cast<std::uint8_t>(csum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(csum & 0xff);
}

void append_payload(std::vector<std::uint8_t>& out, std::size_t len) {
  // Deterministic filler so frames are byte-for-byte reproducible.
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(static_cast<std::uint8_t>(i * 31 + 7));
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::vector<std::uint8_t> build_tcp_frame(const EthernetHeader& eth, Ipv4Header ip,
                                          TcpHeader tcp, std::size_t payload_len) {
  std::vector<std::uint8_t> out;
  out.reserve(kEthernetHeaderBytes + kIpv4HeaderBytes + kTcpHeaderBytes + payload_len);
  append_ethernet(out, eth);
  ip.protocol = 6;
  append_ipv4(out, ip, kTcpHeaderBytes + payload_len);
  put_u16(out, tcp.src_port);
  put_u16(out, tcp.dst_port);
  put_u32(out, tcp.seq);
  put_u32(out, tcp.ack);
  out.push_back(0x50);  // data offset 5, reserved 0
  out.push_back(tcp.flags);
  put_u16(out, tcp.window);
  put_u16(out, 0);  // checksum (not computed: the NIC offloads it)
  put_u16(out, 0);  // urgent pointer
  append_payload(out, payload_len);
  return out;
}

std::vector<std::uint8_t> build_udp_frame(const EthernetHeader& eth, Ipv4Header ip,
                                          UdpHeader udp, std::size_t payload_len) {
  std::vector<std::uint8_t> out;
  out.reserve(kEthernetHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes + payload_len);
  append_ethernet(out, eth);
  ip.protocol = 17;
  append_ipv4(out, ip, kUdpHeaderBytes + payload_len);
  put_u16(out, udp.src_port);
  put_u16(out, udp.dst_port);
  put_u16(out, static_cast<std::uint16_t>(kUdpHeaderBytes + payload_len));
  put_u16(out, 0);  // checksum optional for IPv4
  append_payload(out, payload_len);
  return out;
}

std::vector<std::uint8_t> build_frame_for_tuple(const FiveTuple& tuple,
                                                std::uint32_t frame_bytes_with_fcs,
                                                std::uint8_t dscp) {
  const bool tcp = tuple.proto == IpProto::kTcp;
  const std::size_t l4_hdr = tcp ? kTcpHeaderBytes : kUdpHeaderBytes;
  const std::size_t min_frame =
      kEthernetHeaderBytes + kIpv4HeaderBytes + l4_hdr + kFcsBytes;
  const std::size_t target = std::max<std::size_t>(frame_bytes_with_fcs, min_frame);
  const std::size_t payload_len = target - min_frame;

  EthernetHeader eth;
  eth.dst = {0x02, 0, 0, 0, 0, 0x01};
  eth.src = {0x02, 0, 0, 0, 0, 0x02};
  Ipv4Header ip;
  ip.src_ip = tuple.src_ip;
  ip.dst_ip = tuple.dst_ip;
  ip.dscp = dscp;
  if (tcp) {
    TcpHeader h;
    h.src_port = tuple.src_port;
    h.dst_port = tuple.dst_port;
    h.flags = 0x10;  // ACK
    return build_tcp_frame(eth, ip, h, payload_len);
  }
  UdpHeader h;
  h.src_port = tuple.src_port;
  h.dst_port = tuple.dst_port;
  return build_udp_frame(eth, ip, h, payload_len);
}

FiveTuple ParsedFrame::five_tuple() const {
  FiveTuple t;
  t.src_ip = ip.src_ip;
  t.dst_ip = ip.dst_ip;
  if (is_tcp) {
    t.src_port = tcp.src_port;
    t.dst_port = tcp.dst_port;
    t.proto = IpProto::kTcp;
  } else {
    t.src_port = udp.src_port;
    t.dst_port = udp.dst_port;
    t.proto = IpProto::kUdp;
  }
  return t;
}

std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() < kEthernetHeaderBytes + kIpv4HeaderBytes) return std::nullopt;
  ParsedFrame pf;
  std::copy_n(frame.begin(), 6, pf.eth.dst.begin());
  std::copy_n(frame.begin() + 6, 6, pf.eth.src.begin());
  pf.eth.ethertype = get_u16(frame, 12);
  if (pf.eth.ethertype != kEtherTypeIpv4) return std::nullopt;

  const std::size_t ip_off = kEthernetHeaderBytes;
  if ((frame[ip_off] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(frame[ip_off] & 0x0f) * 4;
  if (ihl != kIpv4HeaderBytes) return std::nullopt;  // options unsupported
  if (internet_checksum({frame.data() + ip_off, kIpv4HeaderBytes}) != 0) return std::nullopt;

  pf.ip.dscp = static_cast<std::uint8_t>(frame[ip_off + 1] >> 2);
  pf.ip.total_length = get_u16(frame, ip_off + 2);
  pf.ip.identification = get_u16(frame, ip_off + 4);
  pf.ip.ttl = frame[ip_off + 8];
  pf.ip.protocol = frame[ip_off + 9];
  pf.ip.checksum = get_u16(frame, ip_off + 10);
  pf.ip.src_ip = get_u32(frame, ip_off + 12);
  pf.ip.dst_ip = get_u32(frame, ip_off + 16);

  if (frame.size() < ip_off + pf.ip.total_length) return std::nullopt;
  const std::size_t l4_off = ip_off + kIpv4HeaderBytes;
  if (pf.ip.protocol == 6) {
    if (frame.size() < l4_off + kTcpHeaderBytes) return std::nullopt;
    pf.is_tcp = true;
    pf.tcp.src_port = get_u16(frame, l4_off);
    pf.tcp.dst_port = get_u16(frame, l4_off + 2);
    pf.tcp.seq = get_u32(frame, l4_off + 4);
    pf.tcp.ack = get_u32(frame, l4_off + 8);
    const std::size_t doff = static_cast<std::size_t>(frame[l4_off + 12] >> 4) * 4;
    if (doff < kTcpHeaderBytes || frame.size() < l4_off + doff) return std::nullopt;
    pf.tcp.flags = frame[l4_off + 13];
    pf.tcp.window = get_u16(frame, l4_off + 14);
    pf.payload_offset = l4_off + doff;
  } else if (pf.ip.protocol == 17) {
    if (frame.size() < l4_off + kUdpHeaderBytes) return std::nullopt;
    pf.is_tcp = false;
    pf.udp.src_port = get_u16(frame, l4_off);
    pf.udp.dst_port = get_u16(frame, l4_off + 2);
    pf.udp.length = get_u16(frame, l4_off + 4);
    pf.payload_offset = l4_off + kUdpHeaderBytes;
  } else {
    return std::nullopt;
  }
  pf.payload_length = ip_off + pf.ip.total_length - pf.payload_offset;
  return pf;
}

}  // namespace flowvalve::net
