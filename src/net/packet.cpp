#include "net/packet.h"

#include <cstdio>

namespace flowvalve::net {

std::uint64_t FiveTuple::hash() const {
  // Two rounds of a 64-bit finalizer over the packed tuple; cheap and well
  // distributed for synthetic addresses.
  std::uint64_t a = (static_cast<std::uint64_t>(src_ip) << 32) | dst_ip;
  std::uint64_t b = (static_cast<std::uint64_t>(src_port) << 32) |
                    (static_cast<std::uint64_t>(dst_port) << 16) |
                    static_cast<std::uint64_t>(proto);
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  return mix(a ^ mix(b + 0x9e3779b97f4a7c15ULL));
}

std::string FiveTuple::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u->%u.%u.%u.%u:%u/%u",
                src_ip >> 24 & 0xff, src_ip >> 16 & 0xff, src_ip >> 8 & 0xff, src_ip & 0xff,
                src_port,
                dst_ip >> 24 & 0xff, dst_ip >> 16 & 0xff, dst_ip >> 8 & 0xff, dst_ip & 0xff,
                dst_port, static_cast<unsigned>(proto));
  return buf;
}

double line_rate_pps(sim::Rate line_rate, std::uint32_t frame_bytes) {
  const double bits_per_frame =
      static_cast<double>(frame_bytes + kEthernetOverheadBytes) * 8.0;
  return line_rate.bps() / bits_per_frame;
}

}  // namespace flowvalve::net
