// Wire-format header construction and parsing (Ethernet II / IPv4 / TCP /
// UDP). The NP pipeline's labeling function parses real frames in the
// Netronome prototype; we keep a byte-accurate implementation so the
// classifier can be exercised and tested against genuine packet bytes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"

namespace flowvalve::net {

using MacAddr = std::array<std::uint8_t, 6>;

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::size_t kEthernetHeaderBytes = 14;
inline constexpr std::size_t kIpv4HeaderBytes = 20;  // no options
inline constexpr std::size_t kTcpHeaderBytes = 20;   // no options
inline constexpr std::size_t kUdpHeaderBytes = 8;
inline constexpr std::size_t kFcsBytes = 4;

struct EthernetHeader {
  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ethertype = kEtherTypeIpv4;
};

struct Ipv4Header {
  std::uint8_t dscp = 0;          // QoS code point (6 bits used)
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 6;      // TCP
  std::uint16_t total_length = 0; // filled by builder
  std::uint16_t identification = 0;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t checksum = 0;     // filled by builder / verified by parser
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;         // CWR..FIN
  std::uint16_t window = 65535;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;       // filled by builder
};

/// Result of parsing a complete frame.
struct ParsedFrame {
  EthernetHeader eth;
  Ipv4Header ip;
  bool is_tcp = false;
  TcpHeader tcp;    // valid iff is_tcp
  UdpHeader udp;    // valid iff !is_tcp
  std::size_t payload_offset = 0;
  std::size_t payload_length = 0;

  FiveTuple five_tuple() const;
};

/// RFC 1071 internet checksum over `data` (as 16-bit big-endian words).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Build a full frame (without FCS bytes — the 4-byte FCS is accounted for
/// in sizes but not materialized). `payload_len` bytes of deterministic
/// filler payload are appended. Returns the frame bytes.
std::vector<std::uint8_t> build_tcp_frame(const EthernetHeader& eth, Ipv4Header ip,
                                          TcpHeader tcp, std::size_t payload_len);
std::vector<std::uint8_t> build_udp_frame(const EthernetHeader& eth, Ipv4Header ip,
                                          UdpHeader udp, std::size_t payload_len);

/// Convenience: build a frame from a five-tuple with a target *total* frame
/// size (headers + payload + FCS). Sizes below the minimum encodable are
/// clamped. dscp is copied into the IPv4 header (classifiers may match it).
std::vector<std::uint8_t> build_frame_for_tuple(const FiveTuple& tuple,
                                                std::uint32_t frame_bytes_with_fcs,
                                                std::uint8_t dscp = 0);

/// Parse a frame produced by the builders (or any Ethernet/IPv4/TCP|UDP
/// frame without IP options). Returns nullopt on malformed input, unknown
/// ethertype/protocol, or bad IPv4 checksum.
std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame);

}  // namespace flowvalve::net
