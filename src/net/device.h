// EgressDevice — the common contract between traffic sources and every
// scheduling substrate in this repo (NP SmartNIC pipeline, kernel qdisc
// host model, DPDK QoS host model). Sources submit packets; the device
// eventually either delivers them (last bit on the wire + pipeline
// constants) or reports a drop. Both signals drive TCP feedback.
#pragma once

#include <functional>

#include "net/packet.h"

namespace flowvalve::net {

class EgressDevice {
 public:
  virtual ~EgressDevice() = default;

  /// Submit a packet for transmission. Returns false if it was rejected
  /// synchronously (entry ring full); the drop callback fires either way
  /// for any lost packet, synchronous or not.
  virtual bool submit(Packet pkt) = 0;

  void set_on_delivered(std::function<void(const Packet&)> cb) {
    on_delivered_ = std::move(cb);
  }
  void set_on_dropped(std::function<void(const Packet&)> cb) {
    on_dropped_ = std::move(cb);
  }

 protected:
  void deliver(const Packet& pkt) {
    if (on_delivered_) on_delivered_(pkt);
  }
  void notify_drop(const Packet& pkt) {
    if (on_dropped_) on_dropped_(pkt);
  }

 private:
  std::function<void(const Packet&)> on_delivered_;
  std::function<void(const Packet&)> on_dropped_;
};

}  // namespace flowvalve::net
