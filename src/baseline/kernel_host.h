// Kernel software-scheduler host model (paper §II-A, Fig. 3).
//
// Models what happens when scheduling stays on the host: every sender
// process runs the socket/TCP stack on its own core, serializes on the
// *global qdisc lock* for each enqueue ([23]'s locking-overhead finding),
// and the qdisc is drained to the wire by kernel transmit work that also
// takes the lock. Sender-core cycle budgets cap single-flow throughput
// below line rate; lock contention inflates costs as senders multiply;
// queue-limit tail drops feed TCP loss signals.
#pragma once

#include <memory>
#include <vector>

#include "baseline/qdisc.h"
#include "net/device.h"
#include "sim/sim_lock.h"
#include "sim/simulator.h"

namespace flowvalve::baseline {

struct KernelHostConfig {
  unsigned sender_cores = 4;
  double core_freq_ghz = 2.3;  // the paper's 8-core 2.3 GHz Xeon

  /// Per-skb sender-path cost: socket + TCP + skb alloc + qdisc enqueue.
  std::uint32_t per_skb_cycles = 3500;
  /// Copy/segmentation cost per payload byte (caps one core near ~9 Gbps
  /// for MTU traffic, matching single-flow iperf3-through-HTB reality).
  double cycles_per_byte = 2.2;

  /// Transmit-side per-skb cost (qdisc dequeue + driver xmit), charged to a
  /// softirq core.
  std::uint32_t xmit_skb_cycles = 2200;
  double xmit_cycles_per_byte = 0.30;

  /// Qdisc spinlock hold per enqueue/dequeue.
  sim::SimDuration lock_hold = sim::nanoseconds(260);

  /// Socket buffer: how far ahead of real time a sender core may queue work
  /// before the app blocks/drops.
  sim::SimDuration core_backlog_limit = sim::milliseconds(2);

  Rate wire_rate = Rate::gigabits_per_sec(10);
  sim::SimDuration fixed_delay = sim::microseconds(8);  // driver+NIC+capture
};

class KernelHostDevice final : public net::EgressDevice {
 public:
  KernelHostDevice(sim::Simulator& sim, KernelHostConfig config,
                   std::unique_ptr<Qdisc> root);

  bool submit(net::Packet pkt) override;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t socket_drops = 0;   // sender core hopelessly behind
    std::uint64_t qdisc_drops = 0;    // queue-limit tail drop
    std::uint64_t transmitted = 0;
    std::uint64_t wire_bytes = 0;
  };
  const Stats& stats() const { return stats_; }
  Qdisc& qdisc() { return *root_; }

  /// CPU cores' busy fraction over [0, now]: index 0..sender_cores-1 are
  /// sender cores, the last entry is the softirq/xmit core.
  std::vector<double> core_utilization(sim::SimTime now) const;

  /// Total CPU cores consumed by scheduling+stack work (Σ busy / elapsed).
  double cores_used(sim::SimTime now) const;

  const sim::LockStats& qdisc_lock_stats() const { return qdisc_lock_.stats(); }

 private:
  void kick_drain();
  void drain_step();

  sim::Simulator& sim_;
  KernelHostConfig config_;
  std::unique_ptr<Qdisc> root_;

  std::vector<sim::SimTime> core_busy_until_;
  std::vector<std::uint64_t> core_busy_ns_;
  sim::SimTime softirq_busy_until_ = 0;
  std::uint64_t softirq_busy_ns_ = 0;

  sim::SimBlockingLock qdisc_lock_;
  bool drain_armed_ = false;
  bool retry_armed_ = false;
  sim::SimTime wire_free_at_ = 0;
  unsigned in_flight_ = 0;

  Stats stats_;
};

}  // namespace flowvalve::baseline
