#include "baseline/pifo.h"

#include <algorithm>
#include <cassert>

namespace flowvalve::baseline {

PifoScheduler::PifoScheduler(sim::Simulator& sim, PifoConfig config)
    : sim_(sim), config_(config) {}

std::uint32_t PifoScheduler::add_class(std::string name, double weight) {
  assert(weight > 0.0);
  ClassState c;
  c.name = std::move(name);
  c.weight = weight;
  classes_.push_back(std::move(c));
  return static_cast<std::uint32_t>(classes_.size() - 1);
}

bool PifoScheduler::submit(net::Packet pkt) {
  assert(classify_);
  const int cls = classify_(pkt);
  if (cls < 0 || cls >= static_cast<int>(classes_.size())) {
    ++stats_.dropped;
    notify_drop(pkt);
    return false;
  }
  ClassState& c = classes_[static_cast<std::size_t>(cls)];

  // STFQ: start tag = max(virtual time, class's last finish tag); the
  // finish tag advances by the packet's weighted length. Rank on start tag.
  const double start = std::max(virtual_time_, c.last_finish);

  // Push-in, push-out admission: a full PIFO evicts its worst-ranked entry
  // rather than tail-dropping the arrival — otherwise a heavy low-weight
  // class could fill the buffer with far-future ranks and starve everyone.
  if (heap_.size() >= config_.capacity) {
    auto worst = std::prev(heap_.end());
    if (worst->rank <= start) {
      ++stats_.dropped;  // arrival ranks worse than everything queued
      notify_drop(pkt);
      return false;
    }
    ClassState& victim = classes_[worst->pkt.label];
    --victim.queued;
    // Roll the victim class's finish tag back to the evicted packet's start
    // tag (within a class tags are monotone, so the global worst entry is
    // that class's most recent enqueue): evicted packets must not consume
    // virtual service the class never received.
    //
    // That monotonicity argument must survive rank ties BETWEEN classes:
    // the multiset orders by (rank, seq), so prev(end) is the strict
    // maximum under that order — any same-class entry with a later seq
    // would itself be the worst (equal rank ⇒ larger seq wins; within a
    // class start tags never decrease, even across rollbacks, so a later
    // enqueue can't have a smaller rank). Verify both halves in debug
    // builds before mutating the tag.
#ifndef NDEBUG
    for (const Ranked& e : heap_) {
      if (&e == &*worst || e.pkt.label != worst->pkt.label) continue;
      assert(e.seq != worst->seq);
      assert((e.rank < worst->rank ||
              (e.rank == worst->rank && e.seq < worst->seq)) &&
             "push-out victim must be its class's most recent enqueue");
    }
    assert(worst->rank <= victim.last_finish &&
           "rollback must never advance the victim's finish tag");
#endif
    victim.last_finish = worst->rank;
    ++stats_.pushed_out;
    notify_drop(worst->pkt);
    heap_.erase(worst);
  }

  c.last_finish = start + static_cast<double>(pkt.wire_bytes) / c.weight;
  pkt.nic_arrival = sim_.now();
  pkt.label = static_cast<net::ClassLabelId>(cls);  // reuse label for class idx
  heap_.insert(Ranked{start, seq_++, std::move(pkt)});
  ++c.queued;
  ++stats_.enqueued;
  drain();
  return true;
}

void PifoScheduler::drain() {
  if (wire_busy_ || heap_.empty()) return;
  wire_busy_ = true;
  auto it = heap_.begin();
  Ranked top{it->rank, it->seq, std::move(it->pkt)};
  heap_.erase(it);
  --classes_[top.pkt.label].queued;
  // Advance virtual time to the served packet's start tag (STFQ rule).
  virtual_time_ = std::max(virtual_time_, top.rank);
  const SimDuration ser =
      config_.port_rate.serialization_delay(top.pkt.wire_occupancy_bytes());
  sim_.schedule_after(ser, [this, pkt = std::move(top.pkt)]() mutable {
    wire_busy_ = false;
    pkt.wire_tx_done = sim_.now();
    classes_[pkt.label].tx_bytes += pkt.wire_bytes;
    ++stats_.transmitted;
    stats_.wire_bytes += pkt.wire_bytes;
    sim_.schedule_after(config_.fixed_delay, [this, pkt = std::move(pkt)]() mutable {
      pkt.delivered_at = sim_.now();
      deliver(pkt);
    });
    drain();
  });
}

}  // namespace flowvalve::baseline
