#include "baseline/dpdk_sched.h"

#include <algorithm>
#include <cassert>

namespace flowvalve::baseline {

DpdkQosScheduler::DpdkQosScheduler(sim::Simulator& sim, DpdkQosConfig config)
    : sim_(sim), config_(config), jitter_rng_(config.jitter_seed) {}

void DpdkQosScheduler::add_pipe(const DpdkPipeConfig& cfg) {
  Pipe p;
  p.cfg = cfg;
  for (const auto& qc : cfg.queues) {
    Queue q;
    q.cfg = qc;
    p.queues.push_back(std::move(q));
  }
  // Pipe token bucket: ~4 ms of burst, floored at 2 MTU, like rte_sched's
  // default tb_size relative to rate.
  p.tb_burst = std::max(cfg.rate.bytes_per_ns() * 4e6, 2.0 * 1518.0);
  p.tb_tokens = p.tb_burst;
  pipes_.push_back(std::move(p));
}

void DpdkQosScheduler::start() {
  assert(!started_);
  started_ = true;
  poll_timer_ = std::make_unique<sim::PeriodicTimer>(sim_, config_.poll_interval,
                                                     [this] { poll(); });
  poll_timer_->start();
}

int DpdkQosScheduler::find_queue(const std::string& pipe_queue, int* pipe_idx) const {
  const auto slash = pipe_queue.find('/');
  const std::string pipe_name =
      slash == std::string::npos ? pipe_queue : pipe_queue.substr(0, slash);
  const std::string queue_name =
      slash == std::string::npos ? std::string() : pipe_queue.substr(slash + 1);
  for (std::size_t pi = 0; pi < pipes_.size(); ++pi) {
    if (pipes_[pi].cfg.name != pipe_name) continue;
    if (pipe_idx) *pipe_idx = static_cast<int>(pi);
    if (queue_name.empty()) return pipes_[pi].queues.empty() ? -1 : 0;
    for (std::size_t qi = 0; qi < pipes_[pi].queues.size(); ++qi)
      if (pipes_[pi].queues[qi].cfg.name == queue_name) return static_cast<int>(qi);
    return -1;
  }
  if (pipe_idx) *pipe_idx = -1;
  return -1;
}

bool DpdkQosScheduler::submit(net::Packet pkt) {
  assert(started_ && classify_);
  ++stats_.submitted;
  int pipe_idx = -1;
  const int qi = find_queue(classify_(pkt), &pipe_idx);
  if (pipe_idx < 0 || qi < 0) {
    ++stats_.classify_drops;
    notify_drop(pkt);
    return false;
  }
  Queue& q = pipes_[static_cast<std::size_t>(pipe_idx)].queues[static_cast<std::size_t>(qi)];
  if (q.q.size() >= config_.queue_limit) {
    ++stats_.queue_drops;
    notify_drop(pkt);
    return false;
  }
  pkt.nic_arrival = sim_.now();
  q.q.push_back(std::move(pkt));
  return true;
}

bool DpdkQosScheduler::wire_has_room() const {
  // Port credits: the run loop may schedule at most ~two poll intervals of
  // wire time ahead, mirroring rte_sched's port token bucket. Without this
  // the scheduler would burst unboundedly ahead of the line.
  return wire_free_at_ < sim_.now() + 2 * config_.poll_interval;
}

void DpdkQosScheduler::poll() {
  ++stats_.polls;
  const SimTime now = sim_.now();
  // CPU budget for this poll: how many packets the run cores can push
  // through the enqueue+dequeue pipeline in one interval.
  std::uint64_t budget = static_cast<std::uint64_t>(
      config_.effective_pps() * sim::to_seconds(config_.poll_interval));
  budget = std::max<std::uint64_t>(budget, 1);

  while (budget > 0 && wire_has_room()) {
    // Grinder: visit pipes round-robin.
    bool progress = false;
    for (std::size_t visited = 0; visited < pipes_.size(); ++visited) {
      Pipe& pipe = pipes_[grinder_];
      grinder_ = (grinder_ + 1) % pipes_.size();

      // Replenish the pipe token bucket.
      if (!pipe.cfg.rate.is_zero()) {
        const SimDuration dt = now - pipe.tb_last;
        if (dt > 0) {
          pipe.tb_tokens = std::min(
              pipe.tb_burst,
              pipe.tb_tokens + pipe.cfg.rate.bytes_per_ns() * static_cast<double>(dt));
          pipe.tb_last = now;
        }
      }

      // Highest-priority non-empty TC.
      int best_tc = -1;
      for (const auto& q : pipe.queues)
        if (!q.q.empty() &&
            (best_tc < 0 || static_cast<int>(q.cfg.tc) < best_tc))
          best_tc = static_cast<int>(q.cfg.tc);
      if (best_tc < 0) continue;

      // WRR among the TC's queues: pick the non-empty queue with the
      // largest credit; replenish credits when all are exhausted.
      Queue* pick = nullptr;
      for (int pass = 0; pass < 2 && pick == nullptr; ++pass) {
        double best_credit = 0.0;
        for (auto& q : pipe.queues) {
          if (q.q.empty() || static_cast<int>(q.cfg.tc) != best_tc) continue;
          if (q.wrr_credit >= static_cast<double>(q.q.front().wire_bytes) &&
              (pick == nullptr || q.wrr_credit > best_credit)) {
            pick = &q;
            best_credit = q.wrr_credit;
          }
        }
        if (pick == nullptr) {
          for (auto& q : pipe.queues)
            if (!q.q.empty() && static_cast<int>(q.cfg.tc) == best_tc)
              q.wrr_credit += q.cfg.wrr_weight * 4.0 * 1518.0;
        }
      }
      if (pick == nullptr) continue;

      // Pipe shaping: skip the pipe if its bucket lacks tokens.
      const std::uint32_t bytes = pick->q.front().wire_bytes;
      if (!pipe.cfg.rate.is_zero() && pipe.tb_tokens < static_cast<double>(bytes))
        continue;

      net::Packet pkt = std::move(pick->q.front());
      pick->q.pop_front();
      pick->wrr_credit -= static_cast<double>(bytes);
      if (!pipe.cfg.rate.is_zero()) pipe.tb_tokens -= static_cast<double>(bytes);
      push_to_wire(std::move(pkt));
      --budget;
      progress = true;
      break;
    }
    if (!progress) break;
  }
}

void DpdkQosScheduler::push_to_wire(net::Packet pkt) {
  const SimDuration ser = config_.port_rate.serialization_delay(pkt.wire_occupancy_bytes());
  const SimTime tx_start = std::max(sim_.now(), wire_free_at_);
  wire_free_at_ = tx_start + ser;
  // Contention jitter on the receive path (does not gate the wire).
  const double jitter_mean =
      static_cast<double>(config_.contention_jitter_mean) *
      (1.0 + 0.5 * (static_cast<double>(config_.run_cores) - 1.0));
  const auto jitter = static_cast<SimDuration>(jitter_rng_.exponential(jitter_mean));
  sim_.schedule_at(wire_free_at_, [this, pkt = std::move(pkt), jitter]() mutable {
    pkt.wire_tx_done = sim_.now();
    ++stats_.transmitted;
    stats_.wire_bytes += pkt.wire_bytes;
    sim_.schedule_after(config_.fixed_delay + jitter,
                        [this, pkt = std::move(pkt)]() mutable {
      pkt.delivered_at = sim_.now();
      deliver(pkt);
    });
  });
}

std::uint64_t DpdkQosScheduler::queue_backlog(const std::string& pipe_queue) const {
  int pipe_idx = -1;
  const int qi = find_queue(pipe_queue, &pipe_idx);
  if (pipe_idx < 0 || qi < 0) return 0;
  return pipes_[static_cast<std::size_t>(pipe_idx)]
      .queues[static_cast<std::size_t>(qi)]
      .q.size();
}

}  // namespace flowvalve::baseline
