#include "baseline/kernel_host.h"

#include <algorithm>
#include <cassert>

namespace flowvalve::baseline {

KernelHostDevice::KernelHostDevice(sim::Simulator& sim, KernelHostConfig config,
                                   std::unique_ptr<Qdisc> root)
    : sim_(sim), config_(config), root_(std::move(root)) {
  core_busy_until_.assign(config_.sender_cores, 0);
  core_busy_ns_.assign(config_.sender_cores, 0);
}

bool KernelHostDevice::submit(net::Packet pkt) {
  ++stats_.submitted;
  const sim::SimTime now = sim_.now();
  const unsigned core = pkt.app_id % config_.sender_cores;

  // Socket-buffer backpressure: if the sender core has accumulated more
  // than core_backlog_limit of pending work, the app's send fails (models
  // a full sk_buff queue → immediate loss signal to our TCP model).
  if (core_busy_until_[core] > now + config_.core_backlog_limit) {
    ++stats_.socket_drops;
    notify_drop(pkt);
    return false;
  }

  const sim::SimTime start = std::max(now, core_busy_until_[core]);
  // Stack + enqueue work, plus the global qdisc lock. The lock is modeled
  // at submission time (not at the future instant the core reaches the
  // enqueue) so that its busy window stays coherent with the drain side's
  // acquisitions; the wait still lands on this sender's core budget.
  const double cycles = static_cast<double>(config_.per_skb_cycles) +
                        config_.cycles_per_byte * static_cast<double>(pkt.wire_bytes);
  const sim::SimDuration work =
      static_cast<sim::SimDuration>(cycles / config_.core_freq_ghz);
  const sim::SimDuration lock_wait = qdisc_lock_.acquire(now, config_.lock_hold);
  const sim::SimDuration busy = work + lock_wait + config_.lock_hold;
  core_busy_until_[core] = start + busy;
  core_busy_ns_[core] += static_cast<std::uint64_t>(busy);

  // The enqueue lands when the core finishes the send path.
  sim_.schedule_at(core_busy_until_[core], [this, pkt = std::move(pkt)]() mutable {
    pkt.nic_arrival = sim_.now();
    // Enqueue by copy so the packet is still intact for drop reporting.
    if (!root_->enqueue(pkt, sim_.now())) {
      ++stats_.qdisc_drops;
      notify_drop(pkt);
      return;
    }
    kick_drain();
  });
  return true;
}

void KernelHostDevice::kick_drain() {
  if (drain_armed_) return;
  drain_armed_ = true;
  sim_.schedule_after(0, [this] {
    drain_armed_ = false;
    drain_step();
  });
}

void KernelHostDevice::drain_step() {
  // Pipeline driver work with wire serialization. The driver TX ring holds a
  // few skbs ahead of the wire (BQL-ish depth): enough to keep the link busy,
  // and — with GSO-sized skbs — a real head-of-line jitter source for
  // latency-sensitive traffic behind it.
  while (in_flight_ < 4) {
    const sim::SimTime now = sim_.now();
    auto pkt = root_->dequeue(now);
    if (!pkt) {
      const sim::SimTime next = root_->next_event(now);
      if (next == sim::kSimTimeMax || in_flight_ > 0) return;
      const sim::SimTime at = std::max(next, now + 500);
      if (!retry_armed_) {
        retry_armed_ = true;
        sim_.schedule_at(at, [this] {
          retry_armed_ = false;
          drain_step();
        });
      }
      return;
    }

    // Transmit work: charged to the softirq core. qdisc_run holds the qdisc
    // lock for the whole dequeue+xmit of the skb (not just a touch), which
    // is what concurrent enqueuers actually contend with — and a large part
    // of the kernel path's delay jitter once skbs are GSO-sized.
    const double cycles =
        static_cast<double>(config_.xmit_skb_cycles) +
        config_.xmit_cycles_per_byte * static_cast<double>(pkt->wire_bytes);
    const sim::SimDuration work =
        static_cast<sim::SimDuration>(cycles / config_.core_freq_ghz);
    const sim::SimDuration lock_wait = qdisc_lock_.acquire(now, work);
    const sim::SimDuration busy = work + lock_wait;
    softirq_busy_ns_ += static_cast<std::uint64_t>(busy);

    const sim::SimDuration ser =
        config_.wire_rate.serialization_delay(pkt->wire_occupancy_bytes());
    const sim::SimTime ready = now + busy;
    const sim::SimTime tx_start = std::max(ready, wire_free_at_);
    wire_free_at_ = tx_start + ser;
    ++in_flight_;
    sim_.schedule_at(wire_free_at_, [this, pkt = std::move(*pkt)]() mutable {
      --in_flight_;
      pkt.wire_tx_done = sim_.now();
      ++stats_.transmitted;
      stats_.wire_bytes += pkt.wire_bytes;
      sim_.schedule_after(config_.fixed_delay, [this, pkt = std::move(pkt)]() mutable {
        pkt.delivered_at = sim_.now();
        deliver(pkt);
      });
      drain_step();
    });
  }
}

std::vector<double> KernelHostDevice::core_utilization(sim::SimTime now) const {
  std::vector<double> out;
  out.reserve(core_busy_ns_.size() + 1);
  const double t = std::max<double>(1.0, static_cast<double>(now));
  for (auto ns : core_busy_ns_) out.push_back(static_cast<double>(ns) / t);
  out.push_back(static_cast<double>(softirq_busy_ns_) / t);
  return out;
}

double KernelHostDevice::cores_used(sim::SimTime now) const {
  double total = 0.0;
  for (double u : core_utilization(now)) total += u;
  return total;
}

}  // namespace flowvalve::baseline
