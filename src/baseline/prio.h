// PRIO qdisc (paper §I, §III-A): N bands, each holding a child discipline;
// dequeue always serves the lowest-numbered non-empty (and unthrottled)
// band. Matches the kernel's sch_prio with configurable child qdiscs.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "baseline/qdisc.h"

namespace flowvalve::baseline {

class PrioQdisc final : public Qdisc {
 public:
  /// `band_of` maps a packet to a band index; out-of-range = dropped.
  PrioQdisc(std::vector<std::unique_ptr<Qdisc>> bands,
            std::function<int(const net::Packet&)> band_of)
      : bands_(std::move(bands)), band_of_(std::move(band_of)) {}

  bool enqueue(net::Packet pkt, SimTime now) override {
    const int band = band_of_(pkt);
    if (band < 0 || band >= static_cast<int>(bands_.size())) return false;
    return bands_[static_cast<std::size_t>(band)]->enqueue(std::move(pkt), now);
  }

  std::optional<net::Packet> dequeue(SimTime now) override {
    for (auto& band : bands_) {
      if (auto pkt = band->dequeue(now)) return pkt;
    }
    return std::nullopt;
  }

  SimTime next_event(SimTime now) override {
    SimTime earliest = sim::kSimTimeMax;
    for (auto& band : bands_) earliest = std::min(earliest, band->next_event(now));
    return earliest;
  }

  std::size_t backlog_packets() const override {
    std::size_t n = 0;
    for (const auto& band : bands_) n += band->backlog_packets();
    return n;
  }
  std::uint64_t backlog_bytes() const override {
    std::uint64_t n = 0;
    for (const auto& band : bands_) n += band->backlog_bytes();
    return n;
  }

  Qdisc& band(std::size_t i) { return *bands_[i]; }

 private:
  std::vector<std::unique_ptr<Qdisc>> bands_;
  std::function<int(const net::Packet&)> band_of_;
};

}  // namespace flowvalve::baseline
