// Carousel-style timing-wheel shaper (related work, §VII: Carousel [4]).
//
// Carousel scales end-host shaping by replacing per-class queues with a
// single timing wheel: every packet gets a release timestamp from its
// flow's pacing rate and is buffered in the wheel slot covering that time;
// a single core drains due slots. It is the strongest *software* shaping
// design the paper cites, so we implement it as an extra comparator: very
// accurate and cheap per packet, but still a host-CPU consumer and still a
// buffering shaper (delay grows with backlog) — in contrast to FlowValve's
// on-NIC drop-based valve.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/device.h"
#include "sim/simulator.h"

namespace flowvalve::baseline {

using sim::Rate;
using sim::SimDuration;
using sim::SimTime;

struct CarouselConfig {
  Rate wire_rate = Rate::gigabits_per_sec(10);
  /// Wheel slot granularity; Carousel's paper uses single-digit µs slots.
  SimDuration slot_width = sim::microseconds(8);
  /// Wheel horizon: packets whose release time falls beyond it are dropped
  /// at enqueue (the wheel is a bounded buffer by construction).
  std::size_t num_slots = 4096;
  /// Per-packet host CPU cost of timestamping + wheel insert + extraction.
  std::uint32_t cycles_per_packet = 450;
  double core_freq_ghz = 2.3;
  SimDuration fixed_delay = sim::microseconds(8);
};

class CarouselShaper final : public net::EgressDevice {
 public:
  CarouselShaper(sim::Simulator& sim, CarouselConfig config);
  ~CarouselShaper() override;

  /// Pacing-rate policy: returns the per-class rate for a packet (the rate
  /// limit Carousel would receive from its policy layer). Zero = drop.
  void set_rate_policy(std::function<Rate(const net::Packet&)> fn) {
    rate_of_ = std::move(fn);
  }

  void start();
  bool submit(net::Packet pkt) override;

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t horizon_drops = 0;  // release time beyond the wheel
    std::uint64_t policy_drops = 0;   // no pacing rate for the packet
    std::uint64_t transmitted = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t cpu_cycles = 0;
    std::uint64_t pacing_evictions = 0;  // GC'd idle pacing-state entries
  };
  const Stats& stats() const { return stats_; }
  std::size_t backlog() const { return backlog_; }
  /// Live per-class pacing-state entries (bounded: entries whose release
  /// clock has passed are garbage-collected each wheel revolution).
  std::size_t pacing_flows() const { return next_release_.size(); }

  /// CPU cores consumed by the shaper so far (Σ cycles / freq / elapsed).
  double cores_used(SimTime now) const;

 private:
  void tick();
  void wire_drain();

  sim::Simulator& sim_;
  CarouselConfig config_;
  std::function<Rate(const net::Packet&)> rate_of_;

  std::vector<std::deque<net::Packet>> slots_;
  std::size_t cursor_ = 0;          // slot under the drain hand
  SimTime wheel_epoch_ = 0;         // time of the cursor slot's left edge
  std::size_t ticks_since_gc_ = 0;  // pacing-state GC cadence counter
  // Per-class pacing state: next allowed release time. An entry whose time
  // has passed is equivalent to no entry (release = max(now, next)), so GC
  // may prune it; only admitted packets may create or advance one.
  std::unordered_map<std::uint32_t, SimTime> next_release_;

  std::deque<net::Packet> wire_fifo_;
  bool wire_busy_ = false;
  std::size_t backlog_ = 0;
  std::unique_ptr<sim::PeriodicTimer> ticker_;
  Stats stats_;
};

}  // namespace flowvalve::baseline
