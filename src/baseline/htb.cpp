#include "baseline/htb.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flowvalve::baseline {
namespace {

// tc's r2q default: quantum = rate_bytes_per_sec / r2q.
constexpr double kR2q = 10.0;

double auto_burst(Rate rate, std::uint32_t mtu = 1518) {
  // Kernel tc sizes burst ≈ rate / HZ (HZ=1000) with an MTU floor.
  return std::max(rate.bytes_per_ns() * 1e6, static_cast<double>(2 * mtu));
}

}  // namespace

HtbQdisc::HtbQdisc(Rate root_rate, Rate root_ceil, HtbArtifacts artifacts)
    : artifacts_(artifacts) {
  HtbClass root;
  root.cfg.name = "root";
  root.cfg.rate = root_rate;
  root.cfg.ceil = root_ceil.is_zero() ? root_rate : root_ceil;
  root.id = 0;
  root.burst = auto_burst(root.cfg.rate);
  root.cburst = auto_burst(root.cfg.ceil);
  root.tokens = root.burst;
  root.ctokens = root.cburst;
  classes_.push_back(std::move(root));
  by_name_["root"] = 0;
}

void HtbQdisc::add_class(const HtbClassConfig& config) {
  assert(!config.name.empty());
  if (by_name_.count(config.name)) throw std::invalid_argument("duplicate htb class");
  HtbClass c;
  c.cfg = config;
  if (c.cfg.ceil.is_zero()) c.cfg.ceil = c.cfg.rate;
  c.id = static_cast<int>(classes_.size());
  const std::string& parent = config.parent.empty() ? "root" : config.parent;
  c.parent_id = find_class(parent);
  if (c.parent_id < 0) throw std::invalid_argument("unknown htb parent " + parent);
  if (c.cfg.quantum_bytes == 0)
    c.cfg.quantum_bytes = static_cast<std::uint32_t>(
        std::max(1518.0, c.cfg.rate.bytes_per_sec() / kR2q / 1000.0));
  c.burst = auto_burst(c.cfg.rate);
  c.cburst = auto_burst(c.cfg.ceil);
  c.tokens = c.burst;
  c.ctokens = c.cburst;
  classes_[static_cast<std::size_t>(c.parent_id)].children.push_back(c.id);
  by_name_[c.cfg.name] = c.id;
  classes_.push_back(std::move(c));
  // Recompute levels: leaf = 0, parents = max(child)+1.
  for (auto it = classes_.rbegin(); it != classes_.rend(); ++it) {
    int lvl = 0;
    for (int ch : it->children)
      lvl = std::max(lvl, classes_[static_cast<std::size_t>(ch)].level + 1);
    it->level = lvl;
  }
}

int HtbQdisc::find_class(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

double HtbQdisc::charged_bytes(std::uint32_t wire_bytes) const {
  if (!artifacts_.enabled) return static_cast<double>(wire_bytes);
  if (artifacts_.charge_factor > 0.0)
    return static_cast<double>(wire_bytes) * artifacts_.charge_factor;
  const std::uint32_t cell = artifacts_.charge_cell_bytes;
  const std::uint32_t quantized = wire_bytes / cell * cell;
  return static_cast<double>(std::max(cell, quantized));
}

void HtbQdisc::replenish_all(SimTime now) {
  for (auto& c : classes_) {
    const SimDuration dt = now - c.t_last;
    if (dt <= 0) continue;
    c.tokens = std::min(c.burst, c.tokens + c.cfg.rate.bytes_per_ns() * static_cast<double>(dt));
    c.ctokens =
        std::min(c.cburst, c.ctokens + c.cfg.ceil.bytes_per_ns() * static_cast<double>(dt));
    c.t_last = now;
  }
}

bool HtbQdisc::enqueue(net::Packet pkt, SimTime now) {
  assert(classify_ && "htb needs a classifier");
  const int id = find_class(classify_(pkt));
  if (id < 0) return false;
  HtbClass& c = classes_[static_cast<std::size_t>(id)];
  assert(c.is_leaf() && "packets must classify to leaf classes");
  ++c.stats.enq_packets;
  if (c.queue.size() >= c.cfg.queue_limit) {
    ++c.stats.drops;
    return false;
  }
  pkt.nic_arrival = now;
  c.queue_bytes += pkt.wire_bytes;
  total_backlog_bytes_ += pkt.wire_bytes;
  ++total_backlog_pkts_;
  c.queue.push_back(std::move(pkt));
  return true;
}

// Kernel semantics: a leaf may send if its own tokens are non-negative
// (HTB_CAN_SEND); otherwise it may borrow from the nearest ancestor with
// positive tokens, provided every class on the path (leaf included) still
// has ceiling tokens (HTB_MAY_BORROW).
int HtbQdisc::lend_level(const HtbClass& leaf) const {
  if (leaf.tokens >= 0.0) return -1;
  if (leaf.ctokens < 0.0) return -2;
  int cur = leaf.parent_id;
  while (cur >= 0) {
    const HtbClass& a = classes_[static_cast<std::size_t>(cur)];
    if (a.ctokens < 0.0) return -2;
    if (a.tokens >= 0.0) return cur;
    cur = a.parent_id;
  }
  return -2;
}

void HtbQdisc::charge(HtbClass& leaf, int lender_id, std::uint32_t wire_bytes) {
  const double bytes = charged_bytes(wire_bytes);
  // Deduct rate tokens from the leaf up to (and including) the lender, and
  // ceiling tokens along the entire ancestor chain.
  bool charging_tokens = true;
  int cur = leaf.id;
  while (cur >= 0) {
    HtbClass& c = classes_[static_cast<std::size_t>(cur)];
    if (charging_tokens) c.tokens -= bytes;
    c.ctokens -= bytes;
    if (lender_id >= 0 && cur == lender_id) charging_tokens = false;
    if (lender_id < 0 && cur == leaf.id) charging_tokens = false;  // own-rate send
    cur = c.parent_id;
  }
  if (lender_id >= 0) leaf.stats.borrowed_bytes += wire_bytes;
}

std::optional<net::Packet> HtbQdisc::dequeue(SimTime now) {
  if (total_backlog_pkts_ == 0) return std::nullopt;
  replenish_all(now);

  // Collect backlogged leaves.
  std::vector<int> leaves;
  leaves.reserve(classes_.size());
  for (const auto& c : classes_)
    if (c.is_leaf() && !c.queue.empty()) leaves.push_back(c.id);
  if (leaves.empty()) return std::nullopt;

  // Service order: leaves that can send on their own tokens first (these are
  // never priority-arbitrated in the kernel either — rate is a guarantee),
  // then borrowers by priority level (unless the artifact collapses prio).
  auto try_serve = [&](int id, bool allow_borrow) -> std::optional<net::Packet> {
    HtbClass& c = classes_[static_cast<std::size_t>(id)];
    const int lender = lend_level(c);
    if (lender == -2) return std::nullopt;
    if (lender >= 0 && !allow_borrow) return std::nullopt;
    net::Packet pkt = std::move(c.queue.front());
    c.queue.pop_front();
    c.queue_bytes -= pkt.wire_bytes;
    total_backlog_bytes_ -= pkt.wire_bytes;
    --total_backlog_pkts_;
    charge(c, lender, pkt.wire_bytes);
    ++c.stats.deq_packets;
    c.stats.deq_bytes += pkt.wire_bytes;
    return pkt;
  };

  // Pass 1: own-rate senders, round-robin for fairness.
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const std::size_t idx = (rr_cursor_ + i) % leaves.size();
    HtbClass& c = classes_[static_cast<std::size_t>(leaves[idx])];
    if (c.tokens >= 0.0 && c.ctokens >= 0.0) {
      if (auto pkt = try_serve(leaves[idx], false)) {
        rr_cursor_ = idx + 1;
        return pkt;
      }
    }
  }

  // Pass 2: borrowers. DRR with quanta; priority levels honored unless the
  // contention artifact is active.
  auto prio_of = [&](int id) {
    return (artifacts_.enabled && artifacts_.prio_blind_borrowing)
               ? 0
               : classes_[static_cast<std::size_t>(id)].cfg.prio;
  };
  int best_prio = std::numeric_limits<int>::max();
  for (int id : leaves) {
    const HtbClass& c = classes_[static_cast<std::size_t>(id)];
    if (lend_level(c) >= 0) best_prio = std::min(best_prio, prio_of(id));
  }
  if (best_prio == std::numeric_limits<int>::max()) return std::nullopt;

  // DRR among borrowers at best_prio. The iteration bound covers packets
  // much larger than the quantum (super-packet scenarios) — each visit adds
  // one quantum to the leaf's deficit.
  const std::size_t max_rounds = 128 * leaves.size();
  for (std::size_t i = 0; i < max_rounds; ++i) {
    const std::size_t idx = (rr_cursor_ + i) % leaves.size();
    HtbClass& c = classes_[static_cast<std::size_t>(leaves[idx])];
    if (prio_of(leaves[idx]) != best_prio) continue;
    const int lender = lend_level(c);
    if (lender < 0) continue;
    if (c.deficit < static_cast<double>(c.queue.front().wire_bytes)) {
      c.deficit += c.cfg.quantum_bytes;
      continue;
    }
    c.deficit -= static_cast<double>(c.queue.front().wire_bytes);
    if (auto pkt = try_serve(leaves[idx], true)) {
      rr_cursor_ = idx;  // stay on this leaf while its deficit lasts
      return pkt;
    }
  }
  return std::nullopt;
}

SimTime HtbQdisc::next_event(SimTime now) {
  if (total_backlog_pkts_ == 0) return sim::kSimTimeMax;
  replenish_all(now);
  // If anything is ready, it's now.
  for (const auto& c : classes_) {
    if (!c.is_leaf() || c.queue.empty()) continue;
    if (lend_level(c) != -2) return now;
  }
  // Otherwise find the earliest token-recovery instant across blocked
  // leaves (considering both their own debt and ancestor ceilings).
  SimTime earliest = sim::kSimTimeMax;
  for (const auto& c : classes_) {
    if (!c.is_leaf() || c.queue.empty()) continue;
    // Time for this leaf's own tokens or ceiling to recover:
    double wait_ns = 0.0;
    const HtbClass* cur = &c;
    while (true) {
      if (cur->ctokens < 0.0 && !cur->cfg.ceil.is_zero())
        wait_ns = std::max(wait_ns, -cur->ctokens / cur->cfg.ceil.bytes_per_ns());
      if (cur->parent_id < 0) break;
      cur = &classes_[static_cast<std::size_t>(cur->parent_id)];
    }
    // Rate-token recovery of the leaf itself (it could also borrow sooner,
    // but this is a conservative upper bound for the watchdog).
    if (c.tokens < 0.0 && !c.cfg.rate.is_zero())
      wait_ns = std::max(wait_ns, std::min(-c.tokens / c.cfg.rate.bytes_per_ns(),
                                           wait_ns > 0 ? wait_ns : 1e18));
    if (wait_ns <= 0.0) wait_ns = 1000.0;  // minimal progress guard
    SimTime t = now + static_cast<SimTime>(wait_ns);
    if (artifacts_.enabled) {
      const SimDuration tick = artifacts_.watchdog_tick;
      t = (t + tick - 1) / tick * tick;  // kernel watchdog rounds up
    }
    earliest = std::min(earliest, t);
  }
  return earliest;
}

std::size_t HtbQdisc::backlog_packets() const { return total_backlog_pkts_; }
std::uint64_t HtbQdisc::backlog_bytes() const { return total_backlog_bytes_; }

const HtbQdisc::ClassStats& HtbQdisc::class_stats(const std::string& name) const {
  const int id = find_class(name);
  assert(id >= 0);
  return classes_[static_cast<std::size_t>(id)].stats;
}

double HtbQdisc::tokens_of(const std::string& name) const {
  const int id = find_class(name);
  assert(id >= 0);
  return classes_[static_cast<std::size_t>(id)].tokens;
}

}  // namespace flowvalve::baseline
