#include "baseline/carousel.h"

#include <algorithm>
#include <cassert>

namespace flowvalve::baseline {

CarouselShaper::CarouselShaper(sim::Simulator& sim, CarouselConfig config)
    : sim_(sim), config_(config) {
  slots_.resize(config_.num_slots);
}

CarouselShaper::~CarouselShaper() = default;

void CarouselShaper::start() {
  wheel_epoch_ = sim_.now();
  ticker_ = std::make_unique<sim::PeriodicTimer>(sim_, config_.slot_width,
                                                 [this] { tick(); });
  ticker_->start();
}

bool CarouselShaper::submit(net::Packet pkt) {
  assert(rate_of_ && ticker_ && "set a rate policy and call start()");
  stats_.cpu_cycles += config_.cycles_per_packet;
  const Rate rate = rate_of_(pkt);
  if (rate.is_zero()) {
    ++stats_.policy_drops;
    notify_drop(pkt);
    return false;
  }

  // Timestamping: the flow's next release time advances by the packet's
  // serialization time at the pacing rate (leaky-bucket pacing). Keying by
  // app id matches how the benches express per-class policies. Read-only
  // lookup here: a horizon-dropped packet must not default-insert pacing
  // state for a class the wheel never admitted (that map entry would
  // otherwise live — and grow the map — forever under flow churn).
  const SimTime now = sim_.now();
  const auto it = next_release_.find(pkt.app_id);
  const SimTime release =
      it == next_release_.end() ? now : std::max(now, it->second);

  // Bounded wheel: beyond-horizon releases are dropped (Carousel's
  // "deferred completion" backpressure appears to our TCP as loss, which is
  // the same signal its socket-level mechanism ultimately produces). A
  // dropped packet must not consume pacing budget, so the release clock
  // only advances for admitted packets.
  const SimTime horizon =
      wheel_epoch_ + static_cast<SimTime>(config_.num_slots) * config_.slot_width;
  if (release >= horizon) {
    ++stats_.horizon_drops;
    notify_drop(pkt);
    return false;
  }
  next_release_[pkt.app_id] =
      release + rate.serialization_delay(pkt.wire_occupancy_bytes());

  const auto offset = static_cast<std::size_t>((release - wheel_epoch_) /
                                               config_.slot_width);
  const std::size_t slot = (cursor_ + offset) % config_.num_slots;
  pkt.nic_arrival = now;
  slots_[slot].push_back(std::move(pkt));
  ++backlog_;
  ++stats_.enqueued;
  return true;
}

void CarouselShaper::tick() {
  // Drain the slot under the hand into the wire FIFO, then advance.
  auto& slot = slots_[cursor_];
  while (!slot.empty()) {
    stats_.cpu_cycles += config_.cycles_per_packet / 2;  // extraction half
    wire_fifo_.push_back(std::move(slot.front()));
    slot.pop_front();
    --backlog_;
  }
  cursor_ = (cursor_ + 1) % config_.num_slots;
  wheel_epoch_ += config_.slot_width;

  // Pacing-state GC, once per wheel revolution: an entry whose release
  // clock has fallen behind `now` no longer constrains anything (release =
  // max(now, next) would pick `now` anyway), so idle classes are evicted
  // and the map stays bounded by the classes active within one revolution.
  if (++ticks_since_gc_ >= config_.num_slots) {
    ticks_since_gc_ = 0;
    const SimTime now = sim_.now();
    for (auto it = next_release_.begin(); it != next_release_.end();) {
      if (it->second <= now) {
        it = next_release_.erase(it);
        ++stats_.pacing_evictions;
      } else {
        ++it;
      }
    }
  }
  wire_drain();
}

void CarouselShaper::wire_drain() {
  if (wire_busy_ || wire_fifo_.empty()) return;
  wire_busy_ = true;
  net::Packet pkt = std::move(wire_fifo_.front());
  wire_fifo_.pop_front();
  const SimDuration ser =
      config_.wire_rate.serialization_delay(pkt.wire_occupancy_bytes());
  sim_.schedule_after(ser, [this, pkt = std::move(pkt)]() mutable {
    wire_busy_ = false;
    pkt.wire_tx_done = sim_.now();
    ++stats_.transmitted;
    stats_.wire_bytes += pkt.wire_bytes;
    sim_.schedule_after(config_.fixed_delay, [this, pkt = std::move(pkt)]() mutable {
      pkt.delivered_at = sim_.now();
      deliver(pkt);
    });
    wire_drain();
  });
}

double CarouselShaper::cores_used(SimTime now) const {
  if (now <= 0) return 0.0;
  return static_cast<double>(stats_.cpu_cycles) /
         (config_.core_freq_ghz * static_cast<double>(now));
}

}  // namespace flowvalve::baseline
