// Eiffel-style bucketed priority queue (related work §VII: Eiffel [35]).
//
// Eiffel's observation: packet ranks need only limited precision, so a
// priority queue can be an array of FIFO buckets plus a hierarchical bitmap
// of non-empty buckets; find-min is one or two Find-First-Set instructions
// instead of O(log n) heap churn. We implement the two-level bitmap variant
// (64×64 = 4096 buckets) as a reusable container, benchmark it against the
// std::multiset the PIFO comparator uses, and test the queue semantics.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace flowvalve::baseline {

/// A min-priority queue over integer ranks in [0, num_buckets) with FIFO
/// order inside a bucket. O(1) push; find-min via two FFS ops.
template <typename T>
class BucketQueue {
 public:
  static constexpr std::size_t kWordBits = 64;
  /// Two-level bitmap ceiling: one root word indexes at most 64 words of 64
  /// buckets. Requests beyond it are clamped — a larger count would make
  /// `root_ |= 1ull << w` shift by ≥ 64 (UB) for the excess words. Requests
  /// of 0 are clamped up to one word so push()'s saturation rank exists.
  static constexpr std::size_t kMaxBuckets = kWordBits * kWordBits;  // 4096

  /// `num_buckets` is rounded up to a multiple of 64 and clamped into
  /// [64, 4096].
  explicit BucketQueue(std::size_t num_buckets = kMaxBuckets)
      : num_buckets_(std::clamp<std::size_t>(
            ((num_buckets + kWordBits - 1) / kWordBits) * kWordBits, kWordBits,
            kMaxBuckets)) {
    buckets_.resize(num_buckets_);
    words_.resize(num_buckets_ / kWordBits, 0);
  }

  std::size_t num_buckets() const { return num_buckets_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Push with rank clamped into range (Eiffel saturates overflow ranks
  /// into the last bucket).
  void push(std::size_t rank, T value) {
    if (rank >= num_buckets_) rank = num_buckets_ - 1;
    buckets_[rank].push_back(std::move(value));
    const std::size_t w = rank / kWordBits;
    words_[w] |= 1ull << (rank % kWordBits);
    root_ |= 1ull << w;
    ++size_;
  }

  /// Smallest occupied rank; nullopt when empty.
  std::optional<std::size_t> min_rank() const {
    if (root_ == 0) return std::nullopt;
    const auto w = static_cast<std::size_t>(std::countr_zero(root_));
    const auto b = static_cast<std::size_t>(std::countr_zero(words_[w]));
    return w * kWordBits + b;
  }

  /// Pop the FIFO head of the minimum-rank bucket.
  std::optional<T> pop_min() {
    const auto rank = min_rank();
    if (!rank) return std::nullopt;
    auto& bucket = buckets_[*rank];
    T value = std::move(bucket.front());
    bucket.pop_front();
    --size_;
    if (bucket.empty()) {
      const std::size_t w = *rank / kWordBits;
      words_[w] &= ~(1ull << (*rank % kWordBits));
      if (words_[w] == 0) root_ &= ~(1ull << w);
    }
    return value;
  }

  /// Pop from the *maximum* occupied rank (push-out victim selection).
  std::optional<T> pop_max() {
    if (root_ == 0) return std::nullopt;
    const auto w =
        kWordBits - 1 - static_cast<std::size_t>(std::countl_zero(root_));
    const auto b =
        kWordBits - 1 - static_cast<std::size_t>(std::countl_zero(words_[w]));
    const std::size_t rank = w * kWordBits + b;
    auto& bucket = buckets_[rank];
    T value = std::move(bucket.back());
    bucket.pop_back();
    --size_;
    if (bucket.empty()) {
      words_[w] &= ~(1ull << b);
      if (words_[w] == 0) root_ &= ~(1ull << w);
    }
    return value;
  }

  void clear() {
    for (auto& b : buckets_) b.clear();
    std::fill(words_.begin(), words_.end(), 0);
    root_ = 0;
    size_ = 0;
  }

 private:
  std::size_t num_buckets_;
  std::vector<std::deque<T>> buckets_;
  std::vector<std::uint64_t> words_;  // per-64-bucket occupancy
  std::uint64_t root_ = 0;            // per-word occupancy
  std::size_t size_ = 0;
};

}  // namespace flowvalve::baseline
