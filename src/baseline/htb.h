// Classful Hierarchy Token Bucket — a faithful (simplified) reimplementation
// of the Linux HTB qdisc (paper §II-A, §III-A): per-class rate/ceil token
// buckets, borrowing from ancestors, DRR with quanta among leaves, and
// strict priority between borrow levels.
//
// Two documented *kernel artifacts* are modeled behind HtbArtifacts, because
// the paper's motivation experiment (Fig. 3) depends on them:
//
//  1. Rate-table charge quantization. Classic tc/psched rate tables quantize
//     per-packet transmission cost; at multi-gigabit rates with MTU frames
//     the bucket is undercharged by ~15-20%, so a 10 Gbps ceiling measures
//     ≈12 Gbps on the wire — the paper observes exactly this overshoot.
//     Modeled as charged_bytes = max(cell, floor(bytes/cell)·cell), or an
//     explicit charge_factor for super-packet scenarios.
//
//  2. Priority-blind borrowing. Under multi-core contention the kernel's
//     borrow arbitration degenerates to quantum-fair DRR, which is why the
//     paper sees KVS and ML split bandwidth equally despite KVS's higher
//     priority. Modeled as a flag that collapses the priority levels in the
//     borrow path.
//
// Both artifacts default ON for the "kernel" persona and OFF for the
// idealized-HTB persona used in unit tests and the locking ablation.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "baseline/qdisc.h"

namespace flowvalve::baseline {

struct HtbArtifacts {
  bool enabled = false;

  /// Rate-table cell size in bytes (artifact 1). 256 B reproduces the
  /// ~16% undercharge at 1518 B frames.
  std::uint32_t charge_cell_bytes = 256;

  /// If > 0, overrides cell quantization with a flat multiplicative
  /// undercharge (for super-packet scenarios where the cell math degenerates).
  double charge_factor = 0.0;

  /// Artifact 2: ignore leaf priorities in the borrow path.
  bool prio_blind_borrowing = true;

  /// Watchdog timer granularity: when throttled, the next dequeue
  /// opportunity is rounded up to this tick (kernel HZ/hrtimer slack).
  SimDuration watchdog_tick = sim::milliseconds(1);
};

struct HtbClassConfig {
  std::string name;
  std::string parent;          // empty = attach under root
  Rate rate = Rate::zero();    // committed rate (tokens)
  Rate ceil = Rate::zero();    // ceiling (ctokens); 0 = same as rate
  int prio = 0;                // 0 = most preferred in the borrow path
  std::uint32_t quantum_bytes = 0;  // 0 = auto (rate / r2q)
  std::size_t queue_limit = 1000;   // leaf pfifo depth in packets
};

class HtbQdisc final : public Qdisc {
 public:
  /// `root_rate`/`root_ceil`: the root class (1:1 in tc terms).
  HtbQdisc(Rate root_rate, Rate root_ceil, HtbArtifacts artifacts = {});

  /// Add a class. Parent must already exist (or be empty for root children).
  /// Classes with children must be added before their children. A class is
  /// a leaf iff no other class names it as parent when enqueueing starts.
  void add_class(const HtbClassConfig& config);

  /// Maps packets to leaf class names. Unmatched packets are dropped.
  void set_classifier(std::function<std::string(const net::Packet&)> fn) {
    classify_ = std::move(fn);
  }

  bool enqueue(net::Packet pkt, SimTime now) override;
  std::optional<net::Packet> dequeue(SimTime now) override;
  SimTime next_event(SimTime now) override;
  std::size_t backlog_packets() const override;
  std::uint64_t backlog_bytes() const override;

  /// Per-class counters for assertions/benches.
  struct ClassStats {
    std::uint64_t enq_packets = 0;
    std::uint64_t deq_packets = 0;
    std::uint64_t deq_bytes = 0;
    std::uint64_t drops = 0;
    std::uint64_t borrowed_bytes = 0;  // sent while own tokens < 0
  };
  const ClassStats& class_stats(const std::string& name) const;
  double tokens_of(const std::string& name) const;  // test hook

 private:
  struct HtbClass {
    HtbClassConfig cfg;
    int id = -1;
    int parent_id = -1;
    std::vector<int> children;
    int level = 0;  // 0 = leaf (kernel convention)

    double tokens = 0.0;    // bytes; negative = in debt
    double ctokens = 0.0;
    double burst = 0.0;
    double cburst = 0.0;
    SimTime t_last = 0;

    std::deque<net::Packet> queue;  // leaves only
    std::uint64_t queue_bytes = 0;
    double deficit = 0.0;           // DRR
    ClassStats stats;

    bool is_leaf() const { return children.empty(); }
  };

  int find_class(const std::string& name) const;
  void replenish_all(SimTime now);
  double charged_bytes(std::uint32_t wire_bytes) const;
  /// Lending ancestor id for a backlogged leaf, -1 if the leaf can send on
  /// its own tokens, -2 if blocked entirely.
  int lend_level(const HtbClass& leaf) const;
  void charge(HtbClass& leaf, int lender_id, std::uint32_t wire_bytes);

  HtbArtifacts artifacts_;
  std::vector<HtbClass> classes_;
  std::map<std::string, int, std::less<>> by_name_;
  std::function<std::string(const net::Packet&)> classify_;
  std::size_t rr_cursor_ = 0;  // DRR position over leaves
  std::uint64_t total_backlog_pkts_ = 0;
  std::uint64_t total_backlog_bytes_ = 0;
};

}  // namespace flowvalve::baseline
