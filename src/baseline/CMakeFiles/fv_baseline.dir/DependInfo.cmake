
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/carousel.cpp" "src/baseline/CMakeFiles/fv_baseline.dir/carousel.cpp.o" "gcc" "src/baseline/CMakeFiles/fv_baseline.dir/carousel.cpp.o.d"
  "/root/repo/src/baseline/dpdk_sched.cpp" "src/baseline/CMakeFiles/fv_baseline.dir/dpdk_sched.cpp.o" "gcc" "src/baseline/CMakeFiles/fv_baseline.dir/dpdk_sched.cpp.o.d"
  "/root/repo/src/baseline/htb.cpp" "src/baseline/CMakeFiles/fv_baseline.dir/htb.cpp.o" "gcc" "src/baseline/CMakeFiles/fv_baseline.dir/htb.cpp.o.d"
  "/root/repo/src/baseline/kernel_host.cpp" "src/baseline/CMakeFiles/fv_baseline.dir/kernel_host.cpp.o" "gcc" "src/baseline/CMakeFiles/fv_baseline.dir/kernel_host.cpp.o.d"
  "/root/repo/src/baseline/pifo.cpp" "src/baseline/CMakeFiles/fv_baseline.dir/pifo.cpp.o" "gcc" "src/baseline/CMakeFiles/fv_baseline.dir/pifo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/sim/CMakeFiles/fv_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/fv_net.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/fv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
