file(REMOVE_RECURSE
  "libfv_baseline.a"
)
