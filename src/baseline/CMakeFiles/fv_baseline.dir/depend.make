# Empty dependencies file for fv_baseline.
# This may be replaced when dependencies are built.
