file(REMOVE_RECURSE
  "CMakeFiles/fv_baseline.dir/carousel.cpp.o"
  "CMakeFiles/fv_baseline.dir/carousel.cpp.o.d"
  "CMakeFiles/fv_baseline.dir/dpdk_sched.cpp.o"
  "CMakeFiles/fv_baseline.dir/dpdk_sched.cpp.o.d"
  "CMakeFiles/fv_baseline.dir/htb.cpp.o"
  "CMakeFiles/fv_baseline.dir/htb.cpp.o.d"
  "CMakeFiles/fv_baseline.dir/kernel_host.cpp.o"
  "CMakeFiles/fv_baseline.dir/kernel_host.cpp.o.d"
  "CMakeFiles/fv_baseline.dir/pifo.cpp.o"
  "CMakeFiles/fv_baseline.dir/pifo.cpp.o.d"
  "libfv_baseline.a"
  "libfv_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
