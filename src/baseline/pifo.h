// PIFO (Push-In-First-Out) scheduler — the primitive behind Loom [13] and
// programmable packet scheduling [33]: packets are pushed with a rank
// computed at enqueue time and the queue always releases the minimum-rank
// packet. We implement start-time fair queueing (STFQ) ranks over weighted
// classes, the canonical PIFO program, as a quantitative companion to the
// paper's Fig. 15 comparison.
//
// The contrast with FlowValve is architectural, not behavioural: a PIFO
// needs queue hardware that can insert at arbitrary positions (Loom is a
// new NIC design), while FlowValve reuses shipping FIFO queueing systems
// and drops instead of reordering.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "net/device.h"
#include "sim/simulator.h"

namespace flowvalve::baseline {

using sim::Rate;
using sim::SimDuration;
using sim::SimTime;

struct PifoConfig {
  Rate port_rate = Rate::gigabits_per_sec(10);
  std::size_t capacity = 2048;  // total buffered packets
  SimDuration fixed_delay = sim::microseconds(8);
};

class PifoScheduler final : public net::EgressDevice {
 public:
  PifoScheduler(sim::Simulator& sim, PifoConfig config);

  /// Declare a weighted class; returns its index.
  std::uint32_t add_class(std::string name, double weight);

  /// Maps packets to class indices (< add_class count); negative = drop.
  void set_classifier(std::function<int(const net::Packet&)> fn) {
    classify_ = std::move(fn);
  }

  bool submit(net::Packet pkt) override;

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;    // rejected at admission (worst rank)
    std::uint64_t pushed_out = 0; // evicted to admit a better-ranked packet
    std::uint64_t transmitted = 0;
    std::uint64_t wire_bytes = 0;
  };
  const Stats& stats() const { return stats_; }
  std::uint64_t class_bytes(std::uint32_t cls) const { return classes_[cls].tx_bytes; }
  std::size_t backlog() const { return heap_.size(); }
  std::uint64_t class_backlog(std::uint32_t cls) const { return classes_[cls].queued; }

 private:
  struct Ranked {
    double rank;
    std::uint64_t seq;  // FIFO tiebreak
    mutable net::Packet pkt;
    bool operator<(const Ranked& o) const {
      if (rank != o.rank) return rank < o.rank;
      return seq < o.seq;
    }
  };
  struct ClassState {
    std::string name;
    double weight = 1.0;
    double last_finish = 0.0;  // STFQ per-class finish tag
    std::uint64_t tx_bytes = 0;
    std::uint64_t queued = 0;
  };

  void drain();

  sim::Simulator& sim_;
  PifoConfig config_;
  std::vector<ClassState> classes_;
  std::function<int(const net::Packet&)> classify_;
  std::multiset<Ranked> heap_;  // min = begin(), push-out victim = rbegin()
  double virtual_time_ = 0.0;
  std::uint64_t seq_ = 0;
  bool wire_busy_ = false;
  Stats stats_;
};

}  // namespace flowvalve::baseline
