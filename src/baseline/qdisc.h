// Queueing-discipline interface for the kernel baseline models (paper §II-A,
// §III-A): classful schedulers that queue packets *before* scheduling —
// exactly the structure FlowValve inverts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "net/packet.h"
#include "sim/time.h"
#include "stats/stats.h"

namespace flowvalve::baseline {

using sim::Rate;
using sim::SimDuration;
using sim::SimTime;

class Qdisc {
 public:
  virtual ~Qdisc() = default;

  /// Enqueue; returns false if the packet was dropped (queue limit).
  virtual bool enqueue(net::Packet pkt, SimTime now) = 0;

  /// Pop the next packet the discipline is willing to release at `now`
  /// (shapers return nullopt while throttled even if backlogged).
  virtual std::optional<net::Packet> dequeue(SimTime now) = 0;

  /// Earliest time a dequeue might succeed when currently throttled;
  /// kSimTimeMax when empty, `now` when a packet is ready.
  virtual SimTime next_event(SimTime now) = 0;

  virtual std::size_t backlog_packets() const = 0;
  virtual std::uint64_t backlog_bytes() const = 0;
};

/// Tail-drop FIFO (pfifo): the default leaf discipline.
class FifoQdisc final : public Qdisc {
 public:
  explicit FifoQdisc(std::size_t limit_packets = 1000) : limit_(limit_packets) {}

  bool enqueue(net::Packet pkt, SimTime) override {
    if (q_.size() >= limit_) {
      ++drops_;
      return false;
    }
    bytes_ += pkt.wire_bytes;
    q_.push_back(std::move(pkt));
    return true;
  }

  std::optional<net::Packet> dequeue(SimTime) override {
    if (q_.empty()) return std::nullopt;
    net::Packet pkt = std::move(q_.front());
    q_.pop_front();
    bytes_ -= pkt.wire_bytes;
    return pkt;
  }

  SimTime next_event(SimTime now) override {
    return q_.empty() ? sim::kSimTimeMax : now;
  }

  std::size_t backlog_packets() const override { return q_.size(); }
  std::uint64_t backlog_bytes() const override { return bytes_; }
  std::uint64_t drops() const { return drops_; }

 private:
  std::size_t limit_;
  std::deque<net::Packet> q_;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace flowvalve::baseline
