// DPDK QoS Scheduler model (rte_sched) — the paper's second baseline.
//
// Reproduces the librte_sched hierarchy: a port drained at line rate,
// pipes with token-bucket shaping, four strict-priority traffic classes per
// pipe, and WRR among the queues of a traffic class. The run-to-completion
// polling cost model captures the behaviour behind Fig. 13: accurate rate
// conformance, but ~2.3 Mpps of enqueue+dequeue work per 2.3 GHz core, with
// a small multi-core penalty from the thread-safety and cache-line sharing
// costs the paper digs into (§V-B).
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/device.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "stats/stats.h"

namespace flowvalve::baseline {

using sim::Rate;
using sim::SimDuration;
using sim::SimTime;

struct DpdkQosConfig {
  Rate port_rate = Rate::gigabits_per_sec(10);
  unsigned run_cores = 1;       // lcores running the scheduler poll loop
  double core_freq_ghz = 2.3;

  /// Per-packet scheduler work (enqueue + dequeue + prefetch misses):
  /// ~1010 cycles/packet ≈ 2.27 Mpps per 2.3 GHz core, matching the
  /// paper's measured 2.25 Mpps @1518 B on one core.
  std::uint32_t cycles_per_packet = 1010;

  /// Fractional throughput loss per additional core (spinlocks + shared
  /// cache lines, §V-B): eff = n·(1 − penalty·(n−1)).
  double multi_core_penalty = 0.005;

  /// Poll/batch granularity of the run loop.
  SimDuration poll_interval = sim::microseconds(20);

  std::size_t queue_limit = 128;  // packets per queue
  SimDuration fixed_delay = sim::microseconds(8);

  /// Per-packet contention jitter (exponential mean): spinlock waits and
  /// cache-line bouncing between enqueue and dequeue lcores make rte_sched's
  /// per-packet latency noticeably noisier than hardware paths (§V-B). The
  /// mean scales with the number of run cores.
  SimDuration contention_jitter_mean = sim::microseconds(8);
  std::uint64_t jitter_seed = 0x5eed;

  /// Effective packets/s of the scheduler stage.
  double effective_pps() const {
    const double n = static_cast<double>(run_cores);
    const double scale = n * (1.0 - multi_core_penalty * (n - 1.0));
    return scale * core_freq_ghz * 1e9 / static_cast<double>(cycles_per_packet);
  }
};

/// One queue inside a pipe: a strict-priority traffic class (0 = highest)
/// and a WRR weight among same-TC queues.
struct DpdkQueueConfig {
  std::string name;
  unsigned tc = 0;         // 0..3, strict priority
  double wrr_weight = 1.0;
};

struct DpdkPipeConfig {
  std::string name;
  Rate rate = Rate::zero();  // pipe token-bucket rate (zero = unshaped)
  std::vector<DpdkQueueConfig> queues;
};

class DpdkQosScheduler final : public net::EgressDevice {
 public:
  DpdkQosScheduler(sim::Simulator& sim, DpdkQosConfig config);

  void add_pipe(const DpdkPipeConfig& pipe);

  /// Maps packets to "pipe/queue" names. Unmatched packets are dropped.
  void set_classifier(std::function<std::string(const net::Packet&)> fn) {
    classify_ = std::move(fn);
  }

  /// Call after configuration, before traffic.
  void start();

  bool submit(net::Packet pkt) override;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t classify_drops = 0;
    std::uint64_t queue_drops = 0;
    std::uint64_t transmitted = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t polls = 0;
  };
  const Stats& stats() const { return stats_; }
  const DpdkQosConfig& config() const { return config_; }

  /// DPDK lcores poll at 100%: cores used equals provisioned run cores.
  double cores_used() const { return static_cast<double>(config_.run_cores); }

  std::uint64_t queue_backlog(const std::string& pipe_queue) const;

 private:
  struct Queue {
    DpdkQueueConfig cfg;
    std::deque<net::Packet> q;
    double wrr_credit = 0.0;
  };
  struct Pipe {
    DpdkPipeConfig cfg;
    std::vector<Queue> queues;
    double tb_tokens = 0.0;   // bytes
    double tb_burst = 0.0;
    SimTime tb_last = 0;
  };

  void poll();
  bool wire_has_room() const;
  void push_to_wire(net::Packet pkt);

  int find_queue(const std::string& pipe_queue, int* pipe_idx) const;

  sim::Simulator& sim_;
  DpdkQosConfig config_;
  std::vector<Pipe> pipes_;
  std::function<std::string(const net::Packet&)> classify_;

  std::size_t grinder_ = 0;  // round-robin pipe cursor
  SimTime wire_free_at_ = 0;
  sim::Rng jitter_rng_{0x5eed};
  bool started_ = false;
  std::unique_ptr<sim::PeriodicTimer> poll_timer_;

  Stats stats_;
};

}  // namespace flowvalve::baseline
