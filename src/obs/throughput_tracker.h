// Windowed per-class throughput/drop/borrow time series.
//
// Events are accumulated per VF port (the benches map one leaf class onto
// one VF, so "class" and "VF" coincide there) into the currently open
// window; MetricsHub calls sample() on its PeriodicTimer to close the
// window and open the next. The result is an explicit time series — one
// row per window per class — rather than a smoothed rate, so a stall, a
// drop burst, or a borrowing episode is visible at window resolution.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.h"
#include "sim/time.h"

namespace flowvalve::obs {

class ThroughputTracker {
 public:
  struct ClassWindow {
    std::uint64_t tx_bytes = 0;    // delivered to the wire
    std::uint64_t tx_packets = 0;
    std::uint64_t drops = 0;       // any DropReason
    std::uint64_t borrows = 0;     // forwarded via a lender's budget
  };

  struct Window {
    sim::SimTime start = 0;
    sim::SimTime end = 0;
    std::map<std::uint16_t, ClassWindow> classes;

    /// Mean wire rate of `vf` over this window.
    sim::Rate rate(std::uint16_t vf) const;
  };

  void on_wire_tx(const net::Packet& pkt);
  void on_drop(const net::Packet& pkt);
  void on_borrow(const net::Packet& pkt);

  /// Close the currently open window at `now` and start the next one.
  /// Empty windows are kept (a silent class is a data point too).
  void sample(sim::SimTime now);

  const std::vector<Window>& windows() const { return windows_; }

  /// Whole-run totals per class (includes the still-open window).
  std::map<std::uint16_t, ClassWindow> totals() const;

 private:
  /// Hot-path accumulator: VF ports are small dense integers, so per-class
  /// counters live in a flat vector indexed by port (grown on demand) and
  /// are folded into the map-shaped Window only when a window closes —
  /// the per-packet taps fire for every wire/drop event and must not pay
  /// a tree lookup each time.
  ClassWindow& slot(std::vector<ClassWindow>& v, std::uint16_t vf) {
    if (v.size() <= vf) v.resize(std::size_t(vf) + 1);
    return v[vf];
  }
  static std::map<std::uint16_t, ClassWindow> to_map(
      const std::vector<ClassWindow>& v);

  std::vector<Window> windows_;
  sim::SimTime current_start_ = 0;
  std::vector<ClassWindow> current_classes_;
  std::vector<ClassWindow> totals_;
};

}  // namespace flowvalve::obs
