// Control-plane reconfiguration observability: one ReconfigRecord per
// PolicyUpdate (accepted or rejected), tracking swap latency, the size of
// the mixed-epoch window, and the commit / rollback outcome. Mirrors
// recovery_tracker.h; exported to JSON via obs::reconfig_json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace flowvalve::obs {

struct ReconfigRecord {
  std::uint32_t target_epoch = 0;  // 0 for rejected updates (never staged)
  std::string kind;                // "delta" | "script"
  sim::SimTime submitted_at = 0;
  sim::SimTime committed_at = -1;    // probation passed; epoch is permanent
  sim::SimTime rolled_back_at = -1;  // guard tripped; prior policies restored

  /// Packets scheduled against the *old* epoch while the rollout was in
  /// progress — the bounded mixed-epoch window the tentpole promises.
  std::uint64_t mixed_epoch_packets = 0;
  unsigned cutover_workers = 0;   // workers that cut over at a packet boundary
  unsigned forced_cutovers = 0;   // workers force-cut by the stall handler
  bool stalled = false;           // rollout hit the stall timeout
  bool shed_engaged = false;      // admission shedding was forced during the swap

  std::string outcome;  // "committed" | "rolled-back: R" | "rejected: E"

  bool committed() const { return committed_at >= 0; }
  bool rolled_back() const { return rolled_back_at >= 0; }
  /// Submit → commit latency (virtual time); -1 if never committed.
  sim::SimDuration swap_latency() const {
    return committed() ? committed_at - submitted_at : -1;
  }
};

class ReconfigTracker {
 public:
  ReconfigRecord& record() {
    records_.emplace_back();
    return records_.back();
  }
  const std::vector<ReconfigRecord>& records() const { return records_; }

  void note_coalesced() { ++coalesced_; }
  std::uint64_t coalesced() const { return coalesced_; }

  std::uint64_t committed() const {
    std::uint64_t n = 0;
    for (const auto& r : records_) n += r.committed();
    return n;
  }
  std::uint64_t rolled_back() const {
    std::uint64_t n = 0;
    for (const auto& r : records_) n += r.rolled_back();
    return n;
  }
  std::uint64_t rejected() const {
    std::uint64_t n = 0;
    for (const auto& r : records_) n += (r.target_epoch == 0 && !r.committed());
    return n;
  }

  sim::SimDuration worst_swap_latency() const {
    sim::SimDuration worst = -1;
    for (const auto& r : records_)
      if (r.committed() && r.swap_latency() > worst) worst = r.swap_latency();
    return worst;
  }
  std::uint64_t total_mixed_epoch_packets() const {
    std::uint64_t n = 0;
    for (const auto& r : records_) n += r.mixed_epoch_packets;
    return n;
  }

 private:
  std::vector<ReconfigRecord> records_;
  std::uint64_t coalesced_ = 0;
};

}  // namespace flowvalve::obs
