#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace flowvalve::obs {

std::uint64_t LogHistogram::bucket_mid(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int msb = static_cast<int>(index / kSubBuckets) + 3;
  const std::uint64_t sub = index % kSubBuckets;
  const int shift = msb - 4;
  const std::uint64_t lo = (kSubBuckets + sub) << shift;
  const std::uint64_t width = std::uint64_t{1} << shift;
  return lo + width / 2;
}

double LogHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  if (target >= count_) return max_;  // the top rank is tracked exactly
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target)
      return std::clamp(bucket_mid(i), min_, max_);
  }
  return max_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

void LogHistogram::reset() {
  buckets_.clear();
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

}  // namespace flowvalve::obs
