// Log-bucketed latency histogram (HdrHistogram-style layout).
//
// Values below 16 ns land in exact unit buckets; above that, each octave is
// split into 16 sub-buckets, bounding the relative quantization error of any
// recorded value by 1/16 (6.25%). Storage grows on demand and tops out at a
// few KiB even for second-scale samples, so a recorder can keep one
// histogram per pipeline segment per class without thinking about memory.
// Exact min/max/sum are tracked on the side, so mean() is exact and
// percentile() is clamped into the true value range.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace flowvalve::obs {

class LogHistogram {
 public:
  /// Sub-buckets per octave; also the threshold below which values are exact.
  static constexpr std::uint64_t kSubBuckets = 16;

  /// Inline: called ~7x per delivered packet from the recorder hot path.
  void record(std::uint64_t value) {
    const std::size_t idx = bucket_index(value);
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
    ++buckets_[idx];
    if (count_ == 0 || value < min_) min_ = value;
    if (value > max_) max_ = value;
    sum_ += static_cast<double>(value);
    ++count_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double sum() const { return sum_; }
  double mean() const;

  /// Value at percentile `p` in [0, 100]: the representative (midpoint) of
  /// the bucket holding the p-th ranked sample, clamped to [min, max].
  /// Returns 0 on an empty histogram.
  std::uint64_t percentile(double p) const;

  std::uint64_t p50() const { return percentile(50.0); }
  std::uint64_t p90() const { return percentile(90.0); }
  std::uint64_t p99() const { return percentile(99.0); }
  std::uint64_t p999() const { return percentile(99.9); }

  /// Merge another histogram's samples into this one.
  void merge(const LogHistogram& other);

  void reset();

  /// Bucket index a value maps to (exposed for tests).
  static std::size_t bucket_index(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - 4;  // keep the top 4 bits after the leading one
    const std::uint64_t sub = (value >> shift) & (kSubBuckets - 1);
    return static_cast<std::size_t>((msb - 3)) * kSubBuckets +
           static_cast<std::size_t>(sub);
  }
  /// Midpoint of the value range covered by bucket `index`.
  static std::uint64_t bucket_mid(std::size_t index);

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace flowvalve::obs
