// Log-bucketed latency histogram (HdrHistogram-style layout).
//
// Values below 16 ns land in exact unit buckets; above that, each octave is
// split into 16 sub-buckets, bounding the relative quantization error of any
// recorded value by 1/16 (6.25%). Storage grows on demand and tops out at a
// few KiB even for second-scale samples, so a recorder can keep one
// histogram per pipeline segment per class without thinking about memory.
// Exact min/max/sum are tracked on the side, so mean() is exact and
// percentile() is clamped into the true value range.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flowvalve::obs {

class LogHistogram {
 public:
  /// Sub-buckets per octave; also the threshold below which values are exact.
  static constexpr std::uint64_t kSubBuckets = 16;

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double sum() const { return sum_; }
  double mean() const;

  /// Value at percentile `p` in [0, 100]: the representative (midpoint) of
  /// the bucket holding the p-th ranked sample, clamped to [min, max].
  /// Returns 0 on an empty histogram.
  std::uint64_t percentile(double p) const;

  std::uint64_t p50() const { return percentile(50.0); }
  std::uint64_t p90() const { return percentile(90.0); }
  std::uint64_t p99() const { return percentile(99.0); }
  std::uint64_t p999() const { return percentile(99.9); }

  /// Merge another histogram's samples into this one.
  void merge(const LogHistogram& other);

  void reset();

  /// Bucket index a value maps to (exposed for tests).
  static std::size_t bucket_index(std::uint64_t value);
  /// Midpoint of the value range covered by bucket `index`.
  static std::uint64_t bucket_mid(std::size_t index);

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace flowvalve::obs
