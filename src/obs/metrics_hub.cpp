#include "obs/metrics_hub.h"

namespace flowvalve::obs {

MetricsHub::MetricsHub(sim::Simulator& sim, np::NicPipeline& pipeline,
                       Options options)
    : sim_(sim), pipeline_(pipeline), options_(options) {}

MetricsHub::~MetricsHub() {
  if (started_) pipeline_.set_observer(nullptr);
  if (engine_ && started_) engine_->set_process_observer(nullptr);
}

void MetricsHub::attach_engine(core::FlowValveEngine& engine) {
  engine_ = &engine;
}

void MetricsHub::start() {
  started_ = true;
  pipeline_.set_observer(this);
  if (engine_) {
    engine_->set_process_observer(
        [this](const net::Packet& pkt, const core::FlowValveEngine::Result& r,
               sim::SimTime) {
          if (r.borrowed) throughput_.on_borrow(pkt);
        });
  }
  sample_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, options_.window, [this] { throughput_.sample(sim_.now()); });
  sample_timer_->start();
}

void MetricsHub::stop_sampling() {
  if (sample_timer_) sample_timer_->stop();
  throughput_.sample(sim_.now());
}

CounterSnapshot MetricsHub::snapshot() const {
  CounterSnapshot s;
  s.at = sim_.now();
  s.nic = pipeline_.stats();
  if (engine_ && engine_->ready()) {
    s.sched = engine_->backend().stats();
    s.backend = engine_->backend_kind();
    s.have_sched = true;
  }
  if (engine_) {
    const core::ExactMatchFlowCache& cache = engine_->classifier().cache();
    s.emc = cache.stats();
    s.emc_health = cache.health();
    s.emc_occupancy = cache.occupancy_histogram();
    s.emc_size = cache.size();
    s.emc_capacity = cache.capacity();
    s.have_emc = true;
  }
  s.worker_utilization = pipeline_.worker_utilization(sim_.now());
  s.reorder_occupancy = pipeline_.reorder_occupancy();
  s.in_flight = pipeline_.in_flight();
  return s;
}

void MetricsHub::on_dispatch(const net::Packet& pkt, unsigned /*worker*/,
                             std::uint64_t /*seq*/, sim::SimTime now,
                             sim::SimDuration busy) {
  latency_.on_dispatch(pkt, now, busy);
}

void MetricsHub::on_drop(const net::Packet& pkt, np::DropReason /*reason*/,
                         sim::SimTime /*now*/) {
  latency_.on_drop(pkt);
  throughput_.on_drop(pkt);
}

void MetricsHub::on_wire_tx(const net::Packet& pkt, sim::SimTime /*now*/) {
  throughput_.on_wire_tx(pkt);
}

void MetricsHub::on_delivered(const net::Packet& pkt, sim::SimTime /*now*/) {
  latency_.on_delivered(pkt);
}

}  // namespace flowvalve::obs
