#include "obs/latency_recorder.h"

#include <algorithm>

namespace flowvalve::obs {

const char* segment_name(Segment s) {
  switch (s) {
    case Segment::kVfWait: return "vf_wait";
    case Segment::kService: return "service";
    case Segment::kReorderHold: return "reorder_hold";
    case Segment::kTxWait: return "tx_wait";
    case Segment::kWireFixed: return "wire_fixed";
    case Segment::kTotal: return "total";
  }
  return "?";
}

void LatencyRecorder::on_dispatch(const net::Packet& pkt, sim::SimTime /*now*/,
                                  sim::SimDuration /*busy*/) {
  // The pipeline stamps dispatched_at AFTER notifying observers, so a
  // still-unstamped packet is a fresh dispatch and a stamped one is a
  // watchdog retry of a dispatch already counted here.
  if (pkt.dispatched_at < 0) ++pending_;
}

void LatencyRecorder::on_drop(const net::Packet& pkt) {
  if (pkt.dispatched_at >= 0) --pending_;
}

void LatencyRecorder::on_delivered(const net::Packet& pkt) {
  if (pkt.dispatched_at < 0) return;  // bypassed dispatch (shouldn't happen)
  --pending_;

  auto rec = [this](Segment s, sim::SimDuration d) {
    segments_[static_cast<std::size_t>(s)].record(
        static_cast<std::uint64_t>(std::max<sim::SimDuration>(d, 0)));
  };
  const sim::SimTime service_done = pkt.dispatched_at + pkt.service_busy;
  rec(Segment::kVfWait, pkt.dispatched_at - pkt.nic_arrival);
  rec(Segment::kService, pkt.service_busy);
  rec(Segment::kReorderHold, pkt.tx_enqueue - service_done);
  rec(Segment::kTxWait, pkt.wire_tx_done - pkt.tx_enqueue);
  rec(Segment::kWireFixed, pkt.delivered_at - pkt.wire_tx_done);
  const sim::SimDuration total = pkt.delivered_at - pkt.nic_arrival;
  rec(Segment::kTotal, total);
  if (per_class_total_.size() <= pkt.vf_port)
    per_class_total_.resize(std::size_t(pkt.vf_port) + 1);
  per_class_total_[pkt.vf_port].record(
      static_cast<std::uint64_t>(std::max<sim::SimDuration>(total, 0)));
  ++recorded_;
}

std::map<std::uint16_t, LogHistogram> LatencyRecorder::per_class_total() const {
  std::map<std::uint16_t, LogHistogram> out;
  for (std::size_t vf = 0; vf < per_class_total_.size(); ++vf)
    if (per_class_total_[vf].count() > 0)
      out.emplace(static_cast<std::uint16_t>(vf), per_class_total_[vf]);
  return out;
}

}  // namespace flowvalve::obs
