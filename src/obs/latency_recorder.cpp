#include "obs/latency_recorder.h"

#include <algorithm>

namespace flowvalve::obs {

const char* segment_name(Segment s) {
  switch (s) {
    case Segment::kVfWait: return "vf_wait";
    case Segment::kService: return "service";
    case Segment::kReorderHold: return "reorder_hold";
    case Segment::kTxWait: return "tx_wait";
    case Segment::kWireFixed: return "wire_fixed";
    case Segment::kTotal: return "total";
  }
  return "?";
}

void LatencyRecorder::on_dispatch(const net::Packet& pkt, sim::SimTime now,
                                  sim::SimDuration busy) {
  pending_[pkt.id] = Pending{now, busy};
}

void LatencyRecorder::on_drop(const net::Packet& pkt) {
  pending_.erase(pkt.id);
}

void LatencyRecorder::on_delivered(const net::Packet& pkt) {
  const auto it = pending_.find(pkt.id);
  if (it == pending_.end()) return;  // bypassed dispatch (shouldn't happen)
  const Pending p = it->second;
  pending_.erase(it);

  auto rec = [this](Segment s, sim::SimDuration d) {
    segments_[static_cast<std::size_t>(s)].record(
        static_cast<std::uint64_t>(std::max<sim::SimDuration>(d, 0)));
  };
  const sim::SimTime service_done = p.dispatched_at + p.busy;
  rec(Segment::kVfWait, p.dispatched_at - pkt.nic_arrival);
  rec(Segment::kService, p.busy);
  rec(Segment::kReorderHold, pkt.tx_enqueue - service_done);
  rec(Segment::kTxWait, pkt.wire_tx_done - pkt.tx_enqueue);
  rec(Segment::kWireFixed, pkt.delivered_at - pkt.wire_tx_done);
  const sim::SimDuration total = pkt.delivered_at - pkt.nic_arrival;
  rec(Segment::kTotal, total);
  per_class_total_[pkt.vf_port].record(
      static_cast<std::uint64_t>(std::max<sim::SimDuration>(total, 0)));
  ++recorded_;
}

}  // namespace flowvalve::obs
