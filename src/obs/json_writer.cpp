#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace flowvalve::obs {

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::append_escaped(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma_if_needed();
  out_ += '"';
  append_escaped(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_if_needed();
  out_ += '"';
  append_escaped(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  comma_if_needed();
  out_ += json;
  return *this;
}

}  // namespace flowvalve::obs
