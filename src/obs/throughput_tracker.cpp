#include "obs/throughput_tracker.h"

namespace flowvalve::obs {

sim::Rate ThroughputTracker::Window::rate(std::uint16_t vf) const {
  const auto it = classes.find(vf);
  if (it == classes.end() || end <= start) return sim::Rate::zero();
  const double seconds = static_cast<double>(end - start) * 1e-9;
  return sim::Rate::bytes_per_sec(static_cast<double>(it->second.tx_bytes) / seconds);
}

void ThroughputTracker::on_wire_tx(const net::Packet& pkt) {
  ClassWindow& c = slot(current_classes_, pkt.vf_port);
  c.tx_bytes += pkt.wire_bytes;
  ++c.tx_packets;
  ClassWindow& t = slot(totals_, pkt.vf_port);
  t.tx_bytes += pkt.wire_bytes;
  ++t.tx_packets;
}

void ThroughputTracker::on_drop(const net::Packet& pkt) {
  ++slot(current_classes_, pkt.vf_port).drops;
  ++slot(totals_, pkt.vf_port).drops;
}

void ThroughputTracker::on_borrow(const net::Packet& pkt) {
  ++slot(current_classes_, pkt.vf_port).borrows;
  ++slot(totals_, pkt.vf_port).borrows;
}

void ThroughputTracker::sample(sim::SimTime now) {
  if (now > current_start_) {
    Window w;
    w.start = current_start_;
    w.end = now;
    w.classes = to_map(current_classes_);
    windows_.push_back(std::move(w));
  }
  current_classes_.clear();
  current_start_ = now;
}

std::map<std::uint16_t, ThroughputTracker::ClassWindow>
ThroughputTracker::to_map(const std::vector<ClassWindow>& v) {
  // A class is "present" iff some tap touched it; every tap increments at
  // least one counter, so all-zero slots are exactly the untouched ones.
  std::map<std::uint16_t, ClassWindow> out;
  for (std::size_t vf = 0; vf < v.size(); ++vf) {
    const ClassWindow& c = v[vf];
    if (c.tx_packets | c.tx_bytes | c.drops | c.borrows)
      out.emplace(static_cast<std::uint16_t>(vf), c);
  }
  return out;
}

std::map<std::uint16_t, ThroughputTracker::ClassWindow>
ThroughputTracker::totals() const {
  return to_map(totals_);
}

}  // namespace flowvalve::obs
