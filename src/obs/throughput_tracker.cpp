#include "obs/throughput_tracker.h"

namespace flowvalve::obs {

sim::Rate ThroughputTracker::Window::rate(std::uint16_t vf) const {
  const auto it = classes.find(vf);
  if (it == classes.end() || end <= start) return sim::Rate::zero();
  const double seconds = static_cast<double>(end - start) * 1e-9;
  return sim::Rate::bytes_per_sec(static_cast<double>(it->second.tx_bytes) / seconds);
}

void ThroughputTracker::on_wire_tx(const net::Packet& pkt) {
  auto& c = current_.classes[pkt.vf_port];
  c.tx_bytes += pkt.wire_bytes;
  ++c.tx_packets;
  auto& t = totals_[pkt.vf_port];
  t.tx_bytes += pkt.wire_bytes;
  ++t.tx_packets;
}

void ThroughputTracker::on_drop(const net::Packet& pkt) {
  ++current_.classes[pkt.vf_port].drops;
  ++totals_[pkt.vf_port].drops;
}

void ThroughputTracker::on_borrow(const net::Packet& pkt) {
  ++current_.classes[pkt.vf_port].borrows;
  ++totals_[pkt.vf_port].borrows;
}

void ThroughputTracker::sample(sim::SimTime now) {
  current_.end = now;
  if (current_.end > current_.start) windows_.push_back(current_);
  current_ = Window{};
  current_.start = now;
}

std::map<std::uint16_t, ThroughputTracker::ClassWindow>
ThroughputTracker::totals() const {
  return totals_;
}

}  // namespace flowvalve::obs
