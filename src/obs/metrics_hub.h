// MetricsHub — the one PipelineObserver of the observability layer.
//
// A NicPipeline has a single observer slot; the hub claims it and fans the
// lifecycle events out to the LatencyRecorder and the ThroughputTracker,
// runs the sampling PeriodicTimer that closes throughput windows, and — if
// an engine is attached — taps the FlowValve process observer for borrow
// accounting. snapshot() folds the pipeline's counters, the scheduling
// function's stats, live worker utilization, and reorder occupancy into
// one struct; obs::export_json (export.h) turns the whole hub into the
// BENCH_pipeline.json shape.
//
// Note: the hub and a check::CheckHarness want the same observer slot, so a
// run is either checked or measured, not both.
#pragma once

#include <memory>

#include "core/flowvalve.h"
#include "np/nic_pipeline.h"
#include "obs/latency_recorder.h"
#include "obs/recovery_tracker.h"
#include "obs/throughput_tracker.h"
#include "sim/simulator.h"

namespace flowvalve::obs {

/// Folded counter state at one instant.
struct CounterSnapshot {
  sim::SimTime at = 0;
  np::NicPipeline::Stats nic;
  core::SchedulerBackend::Stats sched;  // zeros unless an engine is attached
  core::BackendKind backend = core::BackendKind::kFlowValve;
  bool have_sched = false;
  double worker_utilization = 0.0;
  std::uint64_t reorder_occupancy = 0;
  std::uint64_t in_flight = 0;
  // Flow-cache (cuckoo EMC) state; zeros unless an engine is attached.
  core::ExactMatchFlowCache::Stats emc;
  core::ExactMatchFlowCache::Health emc_health =
      core::ExactMatchFlowCache::Health::kHealthy;
  std::array<std::uint64_t, core::ExactMatchFlowCache::kSlots + 1>
      emc_occupancy{};  // buckets holding 0..kSlots live entries
  std::uint64_t emc_size = 0;
  std::uint64_t emc_capacity = 0;
  bool have_emc = false;
};

class MetricsHub final : public np::PipelineObserver {
 public:
  struct Options {
    sim::SimDuration window = sim::milliseconds(1);  // throughput window
  };

  MetricsHub(sim::Simulator& sim, np::NicPipeline& pipeline, Options options);
  MetricsHub(sim::Simulator& sim, np::NicPipeline& pipeline)
      : MetricsHub(sim, pipeline, Options{}) {}
  ~MetricsHub() override;

  /// Tap the engine's process observer for borrow events and expose its
  /// scheduler stats in snapshots. Optional; call before start().
  void attach_engine(core::FlowValveEngine& engine);

  /// Expose a fault plane's recovery records in metrics_to_json. Optional;
  /// not owned — must outlive the hub (or be detached with nullptr).
  void attach_recovery(const RecoveryTracker* tracker) { recovery_ = tracker; }
  const RecoveryTracker* recovery() const { return recovery_; }

  /// Claim the pipeline observer slot and arm the sampling timer.
  void start();
  /// Close the final window and stop the timer so the simulator can drain.
  void stop_sampling();

  const LatencyRecorder& latency() const { return latency_; }
  const ThroughputTracker& throughput() const { return throughput_; }
  CounterSnapshot snapshot() const;

  // PipelineObserver:
  void on_dispatch(const net::Packet& pkt, unsigned worker, std::uint64_t seq,
                   sim::SimTime now, sim::SimDuration busy) override;
  void on_drop(const net::Packet& pkt, np::DropReason reason,
               sim::SimTime now) override;
  void on_wire_tx(const net::Packet& pkt, sim::SimTime now) override;
  void on_delivered(const net::Packet& pkt, sim::SimTime now) override;

 private:
  sim::Simulator& sim_;
  np::NicPipeline& pipeline_;
  core::FlowValveEngine* engine_ = nullptr;
  const RecoveryTracker* recovery_ = nullptr;
  Options options_;
  LatencyRecorder latency_;
  ThroughputTracker throughput_;
  std::unique_ptr<sim::PeriodicTimer> sample_timer_;
  bool started_ = false;
};

}  // namespace flowvalve::obs
