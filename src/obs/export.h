// JSON rendering of the observability layer (the BENCH_pipeline.json shape;
// schema documented in DESIGN.md §8).
#pragma once

#include <string>

#include "obs/json_writer.h"
#include "obs/latency_recorder.h"
#include "obs/metrics_hub.h"
#include "obs/reconfig_tracker.h"
#include "obs/recovery_tracker.h"
#include "obs/throughput_tracker.h"

namespace flowvalve::obs {

/// {"count":..,"min_ns":..,"max_ns":..,"mean_ns":..,"p50_ns":..,...}
void histogram_json(JsonWriter& w, const LogHistogram& h);

/// {"segments":{name:histogram,...},"per_class_total":{"vf":histogram,...}}
void latency_json(JsonWriter& w, const LatencyRecorder& r);

/// {"window_ns":...,"windows":[{"start_ns","end_ns","classes":{...}}],
///  "totals":{...}}
void throughput_json(JsonWriter& w, const ThroughputTracker& t);

/// Counter snapshot including pipeline stats, scheduler stats (if any),
/// utilization, and reorder occupancy.
void snapshot_json(JsonWriter& w, const CounterSnapshot& s);

/// Fault-recovery records: {"injected":..,"recovered":..,
///  "total_packets_lost":..,"worst_recovery_ns":..,"faults":[...]}.
void recovery_json(JsonWriter& w, const RecoveryTracker& t);

/// Control-plane reconfiguration records: {"updates":..,"committed":..,
///  "rolled_back":..,"rejected":..,"coalesced":..,
///  "worst_swap_latency_ns":..,"mixed_epoch_packets":..,"records":[...]}.
void reconfig_json(JsonWriter& w, const ReconfigTracker& t);

/// Whole hub: {"counters":...,"latency":...,"throughput":...}.
std::string metrics_to_json(const MetricsHub& hub);

/// Write a JSON string to `path` atomically (temp file + rename): readers
/// never observe a truncated artifact, even if the writer is interrupted or
/// several processes race on the same path. Returns false on I/O failure.
bool write_json_file(const std::string& path, const std::string& json);

}  // namespace flowvalve::obs
