// Per-fault recovery bookkeeping for the fault-injection plane (src/fault).
//
// The FaultPlane opens one FaultRecord when it injects a fault, stamps the
// clearing instant, and closes the record when its recovery probe sees the
// pipeline healthy again (no hung workers, no retry backlog, fault-
// attributed drop counters quiescent). Packets-lost-to-fault is the delta
// of the robustness layer's drop counters over the fault's lifetime, broken
// out by mechanism. obs::recovery_json (export.h) renders the records into
// the BENCH JSON shape.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace flowvalve::obs {

struct FaultRecord {
  std::string kind;
  sim::SimTime injected_at = 0;
  sim::SimTime cleared_at = -1;    // -1: fault never cleared (permanent)
  sim::SimTime recovered_at = -1;  // -1: pipeline never probed healthy

  // Drops attributable to surviving the fault, over [injected, recovered]
  // (or the end of probing if recovery was never observed).
  std::uint64_t lost_watchdog = 0;   // retry budget exhausted
  std::uint64_t lost_timeout = 0;    // reorder-window timeout flushes
  std::uint64_t lost_admission = 0;  // degradation-mode tail drops
  std::uint64_t lost_restart = 0;    // doomed by an island blackout
  std::uint64_t packets_lost() const {
    return lost_watchdog + lost_timeout + lost_admission + lost_restart;
  }

  bool cleared() const { return cleared_at >= 0; }
  bool recovered() const { return recovered_at >= 0; }
  /// Time from the fault clearing to the pipeline probing healthy again.
  sim::SimDuration recovery_time() const {
    return (cleared() && recovered()) ? recovered_at - cleared_at : -1;
  }
};

class RecoveryTracker {
 public:
  void record(FaultRecord r) { records_.push_back(std::move(r)); }
  const std::vector<FaultRecord>& records() const { return records_; }

  std::size_t injected() const { return records_.size(); }
  std::size_t recovered() const {
    std::size_t n = 0;
    for (const FaultRecord& r : records_)
      if (r.recovered()) ++n;
    return n;
  }
  std::uint64_t total_packets_lost() const {
    std::uint64_t n = 0;
    for (const FaultRecord& r : records_) n += r.packets_lost();
    return n;
  }
  /// Longest observed clear→healthy interval (0 if none recovered).
  sim::SimDuration worst_recovery_time() const {
    sim::SimDuration worst = 0;
    for (const FaultRecord& r : records_)
      if (r.recovered() && r.recovery_time() > worst) worst = r.recovery_time();
    return worst;
  }

  /// All recorded clear→healthy intervals (MTTR samples), sorted ascending.
  /// Episodes that never recovered are excluded — report them via
  /// injected() − recovered(), never averaged away.
  std::vector<sim::SimDuration> recovery_times() const {
    std::vector<sim::SimDuration> out;
    for (const FaultRecord& r : records_)
      if (r.recovered() && r.recovery_time() >= 0)
        out.push_back(r.recovery_time());
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Nearest-rank percentile over recovery_times(); -1 with no samples.
  static sim::SimDuration percentile(
      const std::vector<sim::SimDuration>& sorted, double p) {
    if (sorted.empty()) return -1;
    const double clamped = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
    std::size_t rank = static_cast<std::size_t>(
        clamped * static_cast<double>(sorted.size()) + 0.5);
    if (rank > 0) --rank;
    if (rank >= sorted.size()) rank = sorted.size() - 1;
    return sorted[rank];
  }

 private:
  std::vector<FaultRecord> records_;
};

}  // namespace flowvalve::obs
