// Per-stage latency decomposition fed from the PipelineObserver tap.
//
// Every delivered packet's sojourn (nic_arrival → delivered_at) is split
// into the five segments a packet actually traverses in the NP pipeline:
//
//   vf_wait      dispatch − nic_arrival      waiting in the per-VF Rx ring
//   service      worker busy interval        run-to-completion processing
//   reorder_hold tx_enqueue − end-of-service parked in the reorder buffer
//   tx_wait      wire_tx_done − tx_enqueue   shared Tx FIFO queueing + own
//                                            serialization delay
//   wire_fixed   delivered_at − wire_tx_done fixed pipeline constant
//   total        delivered_at − nic_arrival  whole-NIC sojourn
//
// The decomposition needs only the timestamps the pipeline already stamps
// on net::Packet plus the dispatch instant and busy interval reported by
// on_dispatch, which the recorder remembers per packet id until delivery
// or drop. All segments go into LogHistograms (p50/p90/p99/p999); the
// total additionally goes into a per-class histogram keyed by VF port.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "net/packet.h"
#include "obs/histogram.h"
#include "sim/time.h"

namespace flowvalve::obs {

enum class Segment : std::uint8_t {
  kVfWait,
  kService,
  kReorderHold,
  kTxWait,
  kWireFixed,
  kTotal,
};
inline constexpr std::size_t kNumSegments = 6;

const char* segment_name(Segment s);

class LatencyRecorder {
 public:
  void on_dispatch(const net::Packet& pkt, sim::SimTime now,
                   sim::SimDuration busy);
  void on_drop(const net::Packet& pkt);
  void on_delivered(const net::Packet& pkt);

  const LogHistogram& segment(Segment s) const {
    return segments_[static_cast<std::size_t>(s)];
  }
  /// Whole-NIC sojourn per VF port (≡ leaf class in the benches).
  const std::map<std::uint16_t, LogHistogram>& per_class_total() const {
    return per_class_total_;
  }

  std::uint64_t recorded() const { return recorded_; }
  /// Packets dispatched but not yet delivered/dropped (leak telltale).
  std::size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    sim::SimTime dispatched_at = 0;
    sim::SimDuration busy = 0;
  };

  std::array<LogHistogram, kNumSegments> segments_;
  std::map<std::uint16_t, LogHistogram> per_class_total_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t recorded_ = 0;
};

}  // namespace flowvalve::obs
