// Per-stage latency decomposition fed from the PipelineObserver tap.
//
// Every delivered packet's sojourn (nic_arrival → delivered_at) is split
// into the five segments a packet actually traverses in the NP pipeline:
//
//   vf_wait      dispatch − nic_arrival      waiting in the per-VF Rx ring
//   service      worker busy interval        run-to-completion processing
//   reorder_hold tx_enqueue − end-of-service parked in the reorder buffer
//   tx_wait      wire_tx_done − tx_enqueue   shared Tx FIFO queueing + own
//                                            serialization delay
//   wire_fixed   delivered_at − wire_tx_done fixed pipeline constant
//   total        delivered_at − nic_arrival  whole-NIC sojourn
//
// The decomposition needs only timestamps the pipeline stamps on
// net::Packet — including the dispatch instant and busy interval
// (dispatched_at / service_busy), so the recorder keeps no per-packet side
// state at all; on_dispatch only maintains the outstanding-dispatch count
// (leak telltale). All segments go into LogHistograms (p50/p90/p99/p999);
// the total additionally goes into a per-class histogram keyed by VF port.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.h"
#include "obs/histogram.h"
#include "sim/time.h"

namespace flowvalve::obs {

enum class Segment : std::uint8_t {
  kVfWait,
  kService,
  kReorderHold,
  kTxWait,
  kWireFixed,
  kTotal,
};
inline constexpr std::size_t kNumSegments = 6;

const char* segment_name(Segment s);

class LatencyRecorder {
 public:
  void on_dispatch(const net::Packet& pkt, sim::SimTime now,
                   sim::SimDuration busy);
  void on_drop(const net::Packet& pkt);
  void on_delivered(const net::Packet& pkt);

  const LogHistogram& segment(Segment s) const {
    return segments_[static_cast<std::size_t>(s)];
  }
  /// Whole-NIC sojourn per VF port (≡ leaf class in the benches).
  std::map<std::uint16_t, LogHistogram> per_class_total() const;

  std::uint64_t recorded() const { return recorded_; }
  /// Packets dispatched but not yet delivered/dropped (leak telltale).
  std::size_t pending() const { return static_cast<std::size_t>(pending_); }

 private:
  std::array<LogHistogram, kNumSegments> segments_;
  // Flat per-VF histograms (VF ports are small dense integers); converted
  // to the map shape only when read — record() runs once per delivered
  // packet and must not pay a tree lookup.
  std::vector<LogHistogram> per_class_total_;
  std::int64_t pending_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace flowvalve::obs
