#include "obs/export.h"

#include <cstdio>
#include <fstream>

#include <unistd.h>

namespace flowvalve::obs {

void histogram_json(JsonWriter& w, const LogHistogram& h) {
  w.begin_object()
      .key("count").value(h.count())
      .key("min_ns").value(h.min())
      .key("max_ns").value(h.max())
      .key("mean_ns").value(h.mean())
      .key("p50_ns").value(h.p50())
      .key("p90_ns").value(h.p90())
      .key("p99_ns").value(h.p99())
      .key("p999_ns").value(h.p999())
      .end_object();
}

void latency_json(JsonWriter& w, const LatencyRecorder& r) {
  w.begin_object();
  w.key("recorded").value(r.recorded());
  w.key("segments").begin_object();
  for (std::size_t i = 0; i < kNumSegments; ++i) {
    const auto seg = static_cast<Segment>(i);
    w.key(segment_name(seg));
    histogram_json(w, r.segment(seg));
  }
  w.end_object();
  w.key("per_class_total").begin_object();
  for (const auto& [vf, hist] : r.per_class_total()) {
    w.key(std::to_string(vf));
    histogram_json(w, hist);
  }
  w.end_object();
  w.end_object();
}

namespace {

void class_window_json(JsonWriter& w, const ThroughputTracker::ClassWindow& c) {
  w.begin_object()
      .key("tx_bytes").value(c.tx_bytes)
      .key("tx_packets").value(c.tx_packets)
      .key("drops").value(c.drops)
      .key("borrows").value(c.borrows)
      .end_object();
}

}  // namespace

void throughput_json(JsonWriter& w, const ThroughputTracker& t) {
  w.begin_object();
  w.key("windows").begin_array();
  for (const auto& win : t.windows()) {
    w.begin_object()
        .key("start_ns").value(static_cast<std::int64_t>(win.start))
        .key("end_ns").value(static_cast<std::int64_t>(win.end));
    w.key("classes").begin_object();
    for (const auto& [vf, c] : win.classes) {
      w.key(std::to_string(vf));
      w.begin_object()
          .key("tx_bytes").value(c.tx_bytes)
          .key("tx_packets").value(c.tx_packets)
          .key("drops").value(c.drops)
          .key("borrows").value(c.borrows)
          .key("gbps").value(win.rate(vf).gbps())
          .end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("totals").begin_object();
  for (const auto& [vf, c] : t.totals()) {
    w.key(std::to_string(vf));
    class_window_json(w, c);
  }
  w.end_object();
  w.end_object();
}

void snapshot_json(JsonWriter& w, const CounterSnapshot& s) {
  w.begin_object();
  w.key("at_ns").value(static_cast<std::int64_t>(s.at));
  w.key("nic").begin_object()
      .key("submitted").value(s.nic.submitted)
      .key("vf_ring_drops").value(s.nic.vf_ring_drops)
      .key("scheduler_drops").value(s.nic.scheduler_drops)
      .key("tx_ring_drops").value(s.nic.tx_ring_drops)
      .key("reorder_flush_drops").value(s.nic.reorder_flush_drops)
      .key("forwarded_to_wire").value(s.nic.forwarded_to_wire)
      .key("wire_bytes").value(s.nic.wire_bytes)
      .key("worker_busy_ns").value(s.nic.worker_busy_ns)
      .key("processed").value(s.nic.processed)
      .key("processing_cycles").value(s.nic.processing_cycles)
      .key("reorder_flushes").value(s.nic.reorder_flushes)
      .key("reorder_occupancy_peak").value(s.nic.reorder_occupancy_peak)
      .key("watchdog_requeues").value(s.nic.watchdog_requeues)
      .key("watchdog_drops").value(s.nic.watchdog_drops)
      .key("reorder_timeout_flushes").value(s.nic.reorder_timeout_flushes)
      .key("reorder_timeout_drops").value(s.nic.reorder_timeout_drops)
      .key("admission_drops").value(s.nic.admission_drops)
      .key("workers_repaired").value(s.nic.workers_repaired)
      .key("island_restart_drops").value(s.nic.island_restart_drops)
      .key("islands_restarted").value(s.nic.islands_restarted)
      .end_object();
  if (s.have_sched) {
    w.key("sched").begin_object()
        .key("backend").value(core::backend_kind_name(s.backend))
        .key("forwarded").value(s.sched.forwarded)
        .key("dropped").value(s.sched.dropped)
        .key("borrowed").value(s.sched.borrowed)
        .key("updates").value(s.sched.updates)
        .key("lock_failures").value(s.sched.lock_failures)
        .key("policy_commits").value(s.sched.policy_commits)
        .key("rank_admissions").value(s.sched.rank_admissions)
        .key("rank_lead_drops").value(s.sched.rank_lead_drops)
        .key("rank_horizon_drops").value(s.sched.rank_horizon_drops)
        .key("calendar_rebases").value(s.sched.calendar_rebases)
        .key("band_adaptations").value(s.sched.band_adaptations)
        .end_object();
  }
  if (s.have_emc) {
    w.key("emc").begin_object()
        .key("health").value(core::health_name(s.emc_health))
        .key("size").value(s.emc_size)
        .key("capacity").value(s.emc_capacity)
        .key("hits").value(s.emc.hits)
        .key("misses").value(s.emc.misses)
        .key("hit_rate").value(s.emc.hit_rate())
        .key("insertions").value(s.emc.insertions)
        .key("evictions").value(s.emc.evictions)
        .key("stale_invalidations").value(s.emc.stale_invalidations)
        .key("idle_evictions").value(s.emc.idle_evictions)
        .key("kicks").value(s.emc.kicks)
        .key("kick_failures").value(s.emc.kick_failures)
        .key("corruption_detected").value(s.emc.corruption_detected)
        .key("suppressed_inserts").value(s.emc.suppressed_inserts)
        .key("degraded_transitions").value(s.emc.degraded_transitions)
        .key("degraded_dwell_lookups").value(s.emc.degraded_dwell_lookups)
        .key("recovering_dwell_lookups").value(s.emc.recovering_dwell_lookups);
    w.key("bucket_occupancy").begin_array();
    for (std::uint64_t n : s.emc_occupancy) w.value(n);
    w.end_array();
    w.end_object();
  }
  w.key("worker_utilization").value(s.worker_utilization);
  w.key("reorder_occupancy").value(s.reorder_occupancy);
  w.key("in_flight").value(s.in_flight);
  w.end_object();
}

void recovery_json(JsonWriter& w, const RecoveryTracker& t) {
  w.begin_object();
  w.key("injected").value(static_cast<std::uint64_t>(t.injected()));
  w.key("recovered").value(static_cast<std::uint64_t>(t.recovered()));
  w.key("total_packets_lost").value(t.total_packets_lost());
  w.key("worst_recovery_ns")
      .value(static_cast<std::int64_t>(t.worst_recovery_time()));
  w.key("faults").begin_array();
  for (const FaultRecord& r : t.records()) {
    w.begin_object()
        .key("kind").value(r.kind)
        .key("injected_at_ns").value(static_cast<std::int64_t>(r.injected_at))
        .key("cleared_at_ns").value(static_cast<std::int64_t>(r.cleared_at))
        .key("recovered_at_ns").value(static_cast<std::int64_t>(r.recovered_at))
        .key("recovery_ns").value(static_cast<std::int64_t>(r.recovery_time()))
        .key("packets_lost").value(r.packets_lost())
        .key("lost_watchdog").value(r.lost_watchdog)
        .key("lost_timeout").value(r.lost_timeout)
        .key("lost_admission").value(r.lost_admission)
        .key("lost_restart").value(r.lost_restart)
        .end_object();
  }
  w.end_array();
  w.end_object();
}

void reconfig_json(JsonWriter& w, const ReconfigTracker& t) {
  w.begin_object();
  w.key("updates").value(static_cast<std::uint64_t>(t.records().size()));
  w.key("committed").value(t.committed());
  w.key("rolled_back").value(t.rolled_back());
  w.key("rejected").value(t.rejected());
  w.key("coalesced").value(t.coalesced());
  w.key("worst_swap_latency_ns")
      .value(static_cast<std::int64_t>(t.worst_swap_latency()));
  w.key("mixed_epoch_packets").value(t.total_mixed_epoch_packets());
  w.key("records").begin_array();
  for (const ReconfigRecord& r : t.records()) {
    w.begin_object()
        .key("target_epoch").value(r.target_epoch)
        .key("kind").value(r.kind)
        .key("submitted_at_ns").value(static_cast<std::int64_t>(r.submitted_at))
        .key("committed_at_ns").value(static_cast<std::int64_t>(r.committed_at))
        .key("rolled_back_at_ns").value(static_cast<std::int64_t>(r.rolled_back_at))
        .key("swap_latency_ns").value(static_cast<std::int64_t>(r.swap_latency()))
        .key("mixed_epoch_packets").value(r.mixed_epoch_packets)
        .key("cutover_workers").value(r.cutover_workers)
        .key("forced_cutovers").value(r.forced_cutovers)
        .key("stalled").value(r.stalled)
        .key("shed_engaged").value(r.shed_engaged)
        .key("outcome").value(r.outcome)
        .end_object();
  }
  w.end_array();
  w.end_object();
}

std::string metrics_to_json(const MetricsHub& hub) {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  snapshot_json(w, hub.snapshot());
  w.key("latency");
  latency_json(w, hub.latency());
  w.key("throughput");
  throughput_json(w, hub.throughput());
  if (hub.recovery()) {
    w.key("recovery");
    recovery_json(w, *hub.recovery());
  }
  w.end_object();
  return w.str();
}

bool write_json_file(const std::string& path, const std::string& json) {
  // Atomic publish: write a sibling temp file, then rename over the target.
  // A parallel or interrupted run can therefore never commit a truncated
  // BENCH_*.json — readers see either the old artifact or the complete new
  // one. The temp name is pid-qualified so two writers racing on the same
  // path cannot interleave inside one temp file either.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << json << "\n";
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace flowvalve::obs
