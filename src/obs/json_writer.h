// Minimal dependency-free JSON emitter.
//
// A push-style writer: begin_object/key/value calls build a compact JSON
// string, with commas inserted automatically. Covers exactly what the
// metrics exporter needs (objects, arrays, strings, integers, doubles,
// bools); it is an emitter only — no parsing, no DOM.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace flowvalve::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Splice an already-rendered JSON value (object, array, or scalar) in
  /// value position. The parallel sweeps use this to merge per-cell
  /// fragments — each produced by an independent JsonWriter on its own
  /// thread — into the final document in deterministic cell order.
  JsonWriter& raw_value(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void comma_if_needed();
  void append_escaped(std::string_view s);

  std::string out_;
  // One flag per open container: true once the first element was written.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace flowvalve::obs
