
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/export.cpp" "src/obs/CMakeFiles/fv_obs.dir/export.cpp.o" "gcc" "src/obs/CMakeFiles/fv_obs.dir/export.cpp.o.d"
  "/root/repo/src/obs/histogram.cpp" "src/obs/CMakeFiles/fv_obs.dir/histogram.cpp.o" "gcc" "src/obs/CMakeFiles/fv_obs.dir/histogram.cpp.o.d"
  "/root/repo/src/obs/json_writer.cpp" "src/obs/CMakeFiles/fv_obs.dir/json_writer.cpp.o" "gcc" "src/obs/CMakeFiles/fv_obs.dir/json_writer.cpp.o.d"
  "/root/repo/src/obs/latency_recorder.cpp" "src/obs/CMakeFiles/fv_obs.dir/latency_recorder.cpp.o" "gcc" "src/obs/CMakeFiles/fv_obs.dir/latency_recorder.cpp.o.d"
  "/root/repo/src/obs/metrics_hub.cpp" "src/obs/CMakeFiles/fv_obs.dir/metrics_hub.cpp.o" "gcc" "src/obs/CMakeFiles/fv_obs.dir/metrics_hub.cpp.o.d"
  "/root/repo/src/obs/throughput_tracker.cpp" "src/obs/CMakeFiles/fv_obs.dir/throughput_tracker.cpp.o" "gcc" "src/obs/CMakeFiles/fv_obs.dir/throughput_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/sim/CMakeFiles/fv_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/fv_net.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/fv_stats.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/fv_core.dir/DependInfo.cmake"
  "/root/repo/src/np/CMakeFiles/fv_np.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
