# Empty dependencies file for fv_obs.
# This may be replaced when dependencies are built.
