file(REMOVE_RECURSE
  "CMakeFiles/fv_obs.dir/export.cpp.o"
  "CMakeFiles/fv_obs.dir/export.cpp.o.d"
  "CMakeFiles/fv_obs.dir/histogram.cpp.o"
  "CMakeFiles/fv_obs.dir/histogram.cpp.o.d"
  "CMakeFiles/fv_obs.dir/json_writer.cpp.o"
  "CMakeFiles/fv_obs.dir/json_writer.cpp.o.d"
  "CMakeFiles/fv_obs.dir/latency_recorder.cpp.o"
  "CMakeFiles/fv_obs.dir/latency_recorder.cpp.o.d"
  "CMakeFiles/fv_obs.dir/metrics_hub.cpp.o"
  "CMakeFiles/fv_obs.dir/metrics_hub.cpp.o.d"
  "CMakeFiles/fv_obs.dir/throughput_tracker.cpp.o"
  "CMakeFiles/fv_obs.dir/throughput_tracker.cpp.o.d"
  "libfv_obs.a"
  "libfv_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
