file(REMOVE_RECURSE
  "libfv_obs.a"
)
