// FaultPlane — arms a FaultSchedule against a live pipeline and watches it
// heal.
//
// For every event the plane schedules an injection at `at` and (for
// non-permanent faults) a clearing at `at + duration`; after the clearing
// it probes the pipeline on a bounded one-shot chain until it looks healthy
// again — no hung workers, no watchdog retry backlog, and the robustness
// layer's drop counters quiescent since the previous probe — and writes a
// FaultRecord (recovery time + packets lost, by mechanism) into the
// attached obs::RecoveryTracker. Probing gives up at `probe_deadline` so a
// fault the pipeline cannot absorb still terminates the simulation.
//
// Everything is driven off the simulator's virtual clock and the schedule
// content only, so a given (seed, schedule) is bit-reproducible.
#pragma once

#include <memory>
#include <vector>

#include "core/flowvalve.h"
#include "fault/fault.h"
#include "np/nic_pipeline.h"
#include "obs/recovery_tracker.h"
#include "sim/simulator.h"

namespace flowvalve::ctrl {
class ReconfigManager;
}

namespace flowvalve::fault {

class FaultPlane {
 public:
  struct Options {
    /// Give up probing for recovery this long after the fault clears.
    sim::SimDuration probe_deadline = sim::milliseconds(50);
    /// Probe spacing (0 ⇒ max(100 µs, pipeline watchdog period)).
    sim::SimDuration probe_period = 0;
  };

  /// `engine` may be null (cache faults become no-ops); `tracker` may be
  /// null (recovery goes unrecorded). Neither is owned; both must outlive
  /// the armed simulation.
  FaultPlane(sim::Simulator& sim, np::NicPipeline& pipeline,
             core::FlowValveEngine* engine, obs::RecoveryTracker* tracker,
             Options options);
  FaultPlane(sim::Simulator& sim, np::NicPipeline& pipeline,
             core::FlowValveEngine* engine, obs::RecoveryTracker* tracker)
      : FaultPlane(sim, pipeline, engine, tracker, Options{}) {}

  /// Attach the control-plane reconfiguration manager the kTornUpdate /
  /// kStaleEpoch / kUpdateStorm faults target (nullptr detaches; those
  /// kinds then become no-ops). Not owned; must outlive the armed run.
  void set_reconfig(ctrl::ReconfigManager* reconfig) { reconfig_ = reconfig; }

  /// Schedule every event in the schedule. Call once, before running.
  void arm(const FaultSchedule& schedule);

  /// Close the books on faults still open (permanent, or probing when the
  /// run ended): their loss counters are finalized as of now. Idempotent;
  /// call after the simulation drains.
  void finalize();

  std::size_t armed_events() const { return active_.size(); }

 private:
  struct Counters {
    std::uint64_t watchdog_drops = 0;
    std::uint64_t timeout_drops = 0;
    std::uint64_t admission_drops = 0;
    std::uint64_t restart_drops = 0;
  };
  struct ActiveFault {
    FaultEvent ev;
    obs::FaultRecord rec;
    Counters at_inject;
    Counters at_last_probe;
    bool closed = false;
    // kIslandBlackout: scheduler/meter runtime captured at injection; the
    // clearing restores from it (crash-recovery state reconstruction).
    core::SchedulingTree::RuntimeSnapshot tree_snapshot;
    bool has_snapshot = false;
    // kFlappingWorker: true while the targets are in the crashed half of
    // the flap cycle (the clearing only needs to repair in that case).
    bool flap_down = false;
  };

  Counters read_counters() const;
  void inject(ActiveFault& f);
  void clear(ActiveFault& f);
  void probe(ActiveFault& f);
  void close(ActiveFault& f, sim::SimTime recovered_at);
  /// One wave of a periodic cache storm (full eviction, same-bucket
  /// collision keys, or churn keys, per the fault's kind).
  void storm_action(ActiveFault& f, std::uint64_t tick);
  void storm_tick(ActiveFault* f, sim::SimTime end, sim::SimDuration period,
                  std::uint64_t tick);
  /// kFlappingWorker's crash/heal oscillator: every half-period the targets
  /// toggle between crashed and repaired, until the final clear() repairs
  /// them for good.
  void flap_tick(ActiveFault* f, sim::SimTime end, sim::SimDuration half);
  sim::SimDuration probe_period() const;

  sim::Simulator& sim_;
  np::NicPipeline& pipeline_;
  core::FlowValveEngine* engine_;
  obs::RecoveryTracker* tracker_;
  ctrl::ReconfigManager* reconfig_ = nullptr;
  Options options_;
  std::vector<std::unique_ptr<ActiveFault>> active_;
  // Under a compound campaign one fault's probe window can overlap another
  // still-active fault; health is only reachable once the LAST scheduled
  // clearing has run, so the give-up deadline anchors there, not at each
  // fault's own clear.
  sim::SimTime last_scheduled_clear_ = 0;
};

}  // namespace flowvalve::fault
