// Deterministic fault-injection plane: what can break, and when.
//
// A FaultSchedule is a list of seeded, reproducible fault events to throw
// at a running NicPipeline (and optionally its FlowValveEngine). The
// FaultPlane (fault_plane.h) arms the schedule against the simulator,
// injects each fault at its instant, clears it after its duration, and then
// probes the pipeline until it is healthy again, recording recovery time
// and packets lost into an obs::RecoveryTracker.
//
// Fault model (ISSUE 3 / paper §III-B failure modes):
//   kWorkerStall     micro-engine context freezes for the fault duration;
//                    an in-progress packet finishes late (or is salvaged by
//                    the watchdog if the freeze blows the cycle budget)
//   kWorkerCrash     micro-engine dies; its in-progress packet never
//                    completes and only the watchdog can salvage it
//   kWireDip         the Tx drain slows to `magnitude` × wire rate
//                    (0 pauses the port entirely)
//   kTxBackpressure  the shared Tx ring shrinks to `magnitude` × capacity
//   kReorderStall    the reorder release pointer freezes; completions park
//   kCacheStorm      periodic full eviction of the exact-match flow cache
//   kCachePoison     a fraction of cached labels is corrupted in place
//   kHashCollisionStorm  adversarial same-bucket keys hammer one cuckoo
//                    bucket pair each period until the kick budget trips
//                    the cache into degraded mode (DESIGN.md §14)
//   kChurnStorm      a flow arrival/death rate spike: waves of synthetic
//                    short-lived keys churn cache occupancy everywhere
//   kLeakCommit      every Nth forwarded packet vanishes uncommitted
//                    (checker-validation bug, not a survivable fault)
//   kBypassReorder   every Nth forwarded packet jumps the reorder queue
//                    (checker-validation bug, not a survivable fault)
//
// Control-plane faults (ISSUE 5) target an armed ctrl::ReconfigManager
// (FaultPlane::set_reconfig); without one they are no-ops:
//   kTornUpdate      a live swap loses a fraction of its staged per-class
//                    policy words before the final commit; the manager's
//                    post-commit verification must detect the tear and
//                    roll back deterministically
//   kStaleEpoch      worker `worker` never acknowledges an epoch cutover;
//                    a rollout including it stalls and rolls back
//   kUpdateStorm     `period` back-to-back policy updates submitted at
//                    once; all but the newest pending one must coalesce
//
// Correlated compound-campaign kinds (ISSUE 10, DESIGN.md §16):
//   kIslandBlackout  a contiguous worker island (NpConfig failure domain)
//                    dies as a unit: crash-only, every in-flight occupant
//                    is dropped (DropReason::kIslandRestart), and the
//                    clearing is a crash-recovery restart — scheduler/meter
//                    runtime reconstructed from a SchedulingTree snapshot,
//                    flow cache re-warmed lazily, workers re-entering under
//                    admission-control probation. `worker` is the ISLAND
//                    index (not a worker id) for this kind.
//   kFlappingWorker  targets [worker, worker+worker_count) crash and heal
//                    every period/2, stressing the watchdog epoch guard
//                    with overlapping salvage/repair cycles
//   kCtrlPartition   the control plane is partitioned from the targeted
//                    worker range mid-rollout: every rollout including one
//                    of them stalls at the ack wave and must take the
//                    probation/rollback path; the clearing heals the
//                    partition (no-op without a ReconfigManager)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "np/np_config.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace flowvalve::fault {

enum class FaultKind : std::uint8_t {
  kWorkerStall,
  kWorkerCrash,
  kWireDip,
  kTxBackpressure,
  kReorderStall,
  kCacheStorm,
  kCachePoison,
  kHashCollisionStorm,
  kChurnStorm,
  kLeakCommit,
  kBypassReorder,
  kTornUpdate,
  kStaleEpoch,
  kUpdateStorm,
  kIslandBlackout,
  kFlappingWorker,
  kCtrlPartition,
};

/// Every FaultKind, in enum order. New kinds MUST be appended here (and to
/// the fault_kind_name switch, which compiles with no default case, so a
/// missing name is a -Werror=switch build break, not a stale string). The
/// exhaustiveness test in tests/ iterates this array and asserts density.
inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kWorkerStall,    FaultKind::kWorkerCrash,
    FaultKind::kWireDip,        FaultKind::kTxBackpressure,
    FaultKind::kReorderStall,   FaultKind::kCacheStorm,
    FaultKind::kCachePoison,    FaultKind::kHashCollisionStorm,
    FaultKind::kChurnStorm,     FaultKind::kLeakCommit,
    FaultKind::kBypassReorder,  FaultKind::kTornUpdate,
    FaultKind::kStaleEpoch,     FaultKind::kUpdateStorm,
    FaultKind::kIslandBlackout, FaultKind::kFlappingWorker,
    FaultKind::kCtrlPartition,
};
inline constexpr std::size_t kFaultKindCount =
    sizeof(kAllFaultKinds) / sizeof(kAllFaultKinds[0]);

const char* fault_kind_name(FaultKind kind);

/// Inverse of fault_kind_name: resolves a name against kAllFaultKinds (so
/// it is exhaustive by construction). Returns false on an unknown name.
bool fault_kind_from_name(const std::string& name, FaultKind& out);

struct FaultEvent {
  FaultKind kind = FaultKind::kWorkerStall;
  sim::SimTime at = 0;          // injection instant
  sim::SimDuration duration = 0;  // 0 ⇒ permanent (worker/leak/bypass kinds)

  // Worker faults: contiguous targets [worker, worker + worker_count).
  // kIslandBlackout: `worker` is the island index, worker_count unused.
  unsigned worker = 0;
  unsigned worker_count = 1;

  // Kind-specific intensity: wire factor (kWireDip), capacity fraction
  // (kTxBackpressure), poisoned fraction (kCachePoison), same-bucket keys
  // per period relative to the default wave (kHashCollisionStorm), fraction
  // of cache capacity churned per period (kChurnStorm). Unused otherwise.
  double magnitude = 0.0;

  // kCacheStorm / kHashCollisionStorm / kChurnStorm: storm interval
  // (0 ⇒ duration / 8).
  // kFlappingWorker: full crash+heal cycle length (0 ⇒ duration / 6).
  // kLeakCommit / kBypassReorder: the every-Nth modulo (0 ⇒ 97).
  // kUpdateStorm: number of back-to-back updates (0 ⇒ 8).
  sim::SimDuration period = 0;

  std::string describe() const;
};

using FaultSchedule = std::vector<FaultEvent>;

/// Machine round-trippable one-token encoding of an event, suitable for a
/// CLI flag: `kind@at,dur,worker,count,magnitude,period` with the magnitude
/// rendered at full double precision. format→parse→format is the identity.
std::string format_fault_event(const FaultEvent& ev);

/// Inverse of format_fault_event. Returns false (out untouched) on any
/// syntax error or unknown kind name.
bool parse_fault_event(const std::string& text, FaultEvent& out);

/// One fault of `kind` at its ISSUE-3 "default intensity": a quarter of the
/// workers stalled/crashed, the wire dipped to 25%, the Tx ring cut to 10%,
/// half the flow cache poisoned, an eviction storm every duration/8, island
/// 0 blacked out, one island flapping every duration/6.
FaultSchedule single_fault(FaultKind kind, sim::SimTime at,
                           sim::SimDuration duration, const np::NpConfig& cfg);

/// Seeded chaos schedule for fuzzing: 1–4 non-overlapping-per-kind faults
/// inside [0.2, 0.7] × horizon, every one cleared by 0.9 × horizon so the
/// run can drain and re-converge. Same seed ⇒ identical schedule.
FaultSchedule generate_fault_schedule(std::uint64_t seed,
                                      sim::SimDuration horizon,
                                      const np::NpConfig& cfg);

/// Seeded compound-fault campaign (ISSUE 10): 2–5 OVERLAPPING episodes
/// drawn from the survivable kinds plus the correlated campaign kinds
/// (island blackout, flapping workers, control-plane partition). Worker-
/// targeting episodes are assigned pairwise-disjoint islands — the failure
/// domains fail independently, so every clearing restores exactly the
/// workers its injection took — while at most one episode of each global
/// kind is drawn. Everything clears by 0.9 × horizon. Same seed ⇒
/// identical campaign.
FaultSchedule generate_campaign_schedule(std::uint64_t seed,
                                         sim::SimDuration horizon,
                                         const np::NpConfig& cfg);

std::string describe_schedule(const FaultSchedule& schedule);

}  // namespace flowvalve::fault
