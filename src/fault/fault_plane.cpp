#include "fault/fault_plane.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <type_traits>

#include "ctrl/reconfig_manager.h"

namespace flowvalve::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWorkerStall: return "worker-stall";
    case FaultKind::kWorkerCrash: return "worker-crash";
    case FaultKind::kWireDip: return "wire-dip";
    case FaultKind::kTxBackpressure: return "tx-backpressure";
    case FaultKind::kReorderStall: return "reorder-stall";
    case FaultKind::kCacheStorm: return "cache-storm";
    case FaultKind::kCachePoison: return "cache-poison";
    case FaultKind::kHashCollisionStorm: return "hash-collision-storm";
    case FaultKind::kChurnStorm: return "churn-storm";
    case FaultKind::kLeakCommit: return "leak-commit";
    case FaultKind::kBypassReorder: return "bypass-reorder";
    case FaultKind::kTornUpdate: return "torn-update";
    case FaultKind::kStaleEpoch: return "stale-epoch";
    case FaultKind::kUpdateStorm: return "update-storm";
    case FaultKind::kIslandBlackout: return "island-blackout";
    case FaultKind::kFlappingWorker: return "flapping-worker";
    case FaultKind::kCtrlPartition: return "ctrl-partition";
  }
  return "unknown";
}

bool fault_kind_from_name(const std::string& name, FaultKind& out) {
  for (FaultKind k : kAllFaultKinds) {
    if (name == fault_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::string FaultEvent::describe() const {
  std::ostringstream s;
  s << fault_kind_name(kind) << " at=" << at << "ns dur=" << duration << "ns";
  switch (kind) {
    case FaultKind::kWorkerStall:
    case FaultKind::kWorkerCrash:
      s << " workers=[" << worker << "," << worker + worker_count << ")";
      break;
    case FaultKind::kWireDip:
    case FaultKind::kTxBackpressure:
    case FaultKind::kCachePoison:
      s << " magnitude=" << magnitude;
      break;
    case FaultKind::kCacheStorm:
      s << " period=" << period << "ns";
      break;
    case FaultKind::kHashCollisionStorm:
    case FaultKind::kChurnStorm:
      s << " magnitude=" << magnitude << " period=" << period << "ns";
      break;
    case FaultKind::kLeakCommit:
    case FaultKind::kBypassReorder:
      s << " every=" << (period > 0 ? period : 97);
      break;
    case FaultKind::kTornUpdate:
      s << " torn_fraction=" << magnitude;
      break;
    case FaultKind::kStaleEpoch:
      s << " worker=" << worker;
      break;
    case FaultKind::kUpdateStorm:
      s << " updates=" << (period > 0 ? period : 8);
      break;
    case FaultKind::kIslandBlackout:
      s << " island=" << worker;
      break;
    case FaultKind::kFlappingWorker:
      s << " workers=[" << worker << "," << worker + worker_count << ")"
        << " period=" << period << "ns";
      break;
    case FaultKind::kCtrlPartition:
      s << " workers=[" << worker << "," << worker + worker_count << ")";
      break;
    case FaultKind::kReorderStall:
      break;
  }
  return s.str();
}

std::string format_fault_event(const FaultEvent& ev) {
  char mag[64];
  std::snprintf(mag, sizeof(mag), "%.17g", ev.magnitude);
  std::ostringstream s;
  s << fault_kind_name(ev.kind) << '@' << ev.at << ',' << ev.duration << ','
    << ev.worker << ',' << ev.worker_count << ',' << mag << ',' << ev.period;
  return s.str();
}

bool parse_fault_event(const std::string& text, FaultEvent& out) {
  const std::size_t at_pos = text.find('@');
  if (at_pos == std::string::npos) return false;
  FaultEvent ev;
  if (!fault_kind_from_name(text.substr(0, at_pos), ev.kind)) return false;
  const char* p = text.c_str() + at_pos + 1;
  char* end = nullptr;
  auto comma = [&]() {
    if (*p != ',') return false;
    ++p;
    return true;
  };
  auto i64 = [&](auto& v) {
    v = static_cast<std::decay_t<decltype(v)>>(std::strtoll(p, &end, 10));
    if (end == p) return false;
    p = end;
    return true;
  };
  auto u32 = [&](unsigned& v) {
    const unsigned long raw = std::strtoul(p, &end, 10);
    if (end == p) return false;
    v = static_cast<unsigned>(raw);
    p = end;
    return true;
  };
  if (!i64(ev.at) || !comma() || !i64(ev.duration) || !comma() ||
      !u32(ev.worker) || !comma() || !u32(ev.worker_count) || !comma())
    return false;
  ev.magnitude = std::strtod(p, &end);
  if (end == p) return false;
  p = end;
  if (!comma() || !i64(ev.period)) return false;
  if (*p != '\0') return false;
  out = ev;
  return true;
}

std::string describe_schedule(const FaultSchedule& schedule) {
  std::ostringstream s;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i) s << "; ";
    s << schedule[i].describe();
  }
  return s.str();
}

namespace {

/// Kinds whose clearing is a restore of shared state — a zero duration
/// would leave the pipeline degraded forever and the run could never
/// drain, so these get a floor instead of "permanent".
bool needs_duration_floor(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWireDip:
    case FaultKind::kTxBackpressure:
    case FaultKind::kReorderStall:
    case FaultKind::kCacheStorm:
    case FaultKind::kHashCollisionStorm:
    case FaultKind::kChurnStorm:
    // Control-plane faults are latched/sticky on the reconfiguration
    // manager: the floor guarantees a clear() runs to un-latch them and
    // start the recovery probe that closes the FaultRecord.
    case FaultKind::kTornUpdate:
    case FaultKind::kStaleEpoch:
    case FaultKind::kUpdateStorm:
    // A blackout that never restarts (or a partition/flap that never heals)
    // leaves an island dead and, for the blackout, its restart path never
    // exercised — the clearing IS the recovery under test.
    case FaultKind::kIslandBlackout:
    case FaultKind::kFlappingWorker:
    case FaultKind::kCtrlPartition:
      return true;
    default:
      return false;
  }
}

}  // namespace

FaultSchedule single_fault(FaultKind kind, sim::SimTime at,
                           sim::SimDuration duration, const np::NpConfig& cfg) {
  FaultEvent ev;
  ev.kind = kind;
  ev.at = at;
  ev.duration = duration;
  switch (kind) {
    case FaultKind::kWorkerStall:
    case FaultKind::kWorkerCrash:
      ev.worker = 0;
      ev.worker_count = std::max(1u, cfg.num_workers / 4);
      break;
    case FaultKind::kWireDip: ev.magnitude = 0.25; break;
    case FaultKind::kTxBackpressure: ev.magnitude = 0.10; break;
    case FaultKind::kCachePoison: ev.magnitude = 0.50; break;
    case FaultKind::kCacheStorm: ev.period = duration / 8; break;
    case FaultKind::kHashCollisionStorm:
      ev.magnitude = 1.0;
      ev.period = duration / 8;
      break;
    case FaultKind::kChurnStorm:
      ev.magnitude = 0.25;
      ev.period = duration / 8;
      break;
    case FaultKind::kReorderStall: break;
    case FaultKind::kLeakCommit:
    case FaultKind::kBypassReorder:
      ev.period = 97;
      break;
    case FaultKind::kTornUpdate: ev.magnitude = 0.5; break;
    case FaultKind::kStaleEpoch:
      ev.worker = 0;
      ev.worker_count = 1;
      break;
    case FaultKind::kUpdateStorm: ev.period = 8; break;
    case FaultKind::kIslandBlackout:
      ev.worker = 0;  // island index
      break;
    case FaultKind::kFlappingWorker: {
      const auto range = cfg.island_range(0);
      ev.worker = range.first;
      ev.worker_count = range.second - range.first;
      ev.period = duration / 6;
      break;
    }
    case FaultKind::kCtrlPartition: {
      const auto range = cfg.island_range(0);
      ev.worker = range.first;
      ev.worker_count = range.second - range.first;
      break;
    }
  }
  return {ev};
}

FaultSchedule generate_fault_schedule(std::uint64_t seed,
                                      sim::SimDuration horizon,
                                      const np::NpConfig& cfg) {
  sim::Rng rng = sim::Rng(seed).split("fault-schedule");
  // Distinct kinds per schedule: it also guarantees same-kind faults never
  // overlap, so each clearing restores exactly the state its injection
  // changed. Leak/bypass are deliberate accounting bugs, not survivable
  // faults — a chaos run must stay checker-clean, so they are excluded.
  std::vector<FaultKind> pool = {
      FaultKind::kWorkerStall,  FaultKind::kWorkerCrash,
      FaultKind::kWireDip,      FaultKind::kTxBackpressure,
      FaultKind::kReorderStall, FaultKind::kCacheStorm,
      FaultKind::kCachePoison,  FaultKind::kHashCollisionStorm,
      FaultKind::kChurnStorm,
  };
  const std::size_t n = 1 + rng.next_below(4);
  FaultSchedule out;
  for (std::size_t i = 0; i < n && !pool.empty(); ++i) {
    const std::size_t pick = rng.next_below(pool.size());
    const FaultKind kind = pool[pick];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));

    FaultEvent ev;
    ev.kind = kind;
    ev.at = static_cast<sim::SimTime>(static_cast<double>(horizon) *
                                      rng.uniform(0.2, 0.6));
    ev.duration = static_cast<sim::SimDuration>(static_cast<double>(horizon) *
                                                rng.uniform(0.05, 0.2));
    // Everything must clear by 0.9 × horizon so the run drains and the
    // shares have a window to re-converge in.
    const sim::SimTime latest_clear =
        static_cast<sim::SimTime>(static_cast<double>(horizon) * 0.9);
    if (ev.at + ev.duration > latest_clear)
      ev.duration = std::max<sim::SimDuration>(latest_clear - ev.at,
                                               sim::microseconds(200));
    switch (kind) {
      case FaultKind::kWorkerStall:
      case FaultKind::kWorkerCrash: {
        const unsigned span = std::max(1u, cfg.num_workers / 4);
        ev.worker_count = 1 + static_cast<unsigned>(rng.next_below(span));
        ev.worker = static_cast<unsigned>(
            rng.next_below(std::max(1u, cfg.num_workers - ev.worker_count + 1)));
        break;
      }
      case FaultKind::kWireDip: ev.magnitude = rng.uniform(0.0, 0.5); break;
      case FaultKind::kTxBackpressure:
        ev.magnitude = rng.uniform(0.05, 0.3);
        break;
      case FaultKind::kCachePoison:
        ev.magnitude = rng.uniform(0.25, 0.75);
        break;
      case FaultKind::kCacheStorm:
        ev.period = ev.duration / (4 + rng.next_below(8));
        break;
      case FaultKind::kHashCollisionStorm:
        ev.magnitude = rng.uniform(0.5, 2.0);
        ev.period = ev.duration / (4 + rng.next_below(8));
        break;
      case FaultKind::kChurnStorm:
        ev.magnitude = rng.uniform(0.1, 0.5);
        ev.period = ev.duration / (4 + rng.next_below(8));
        break;
      case FaultKind::kReorderStall:
      case FaultKind::kLeakCommit:
      case FaultKind::kBypassReorder:
      case FaultKind::kTornUpdate:
      case FaultKind::kStaleEpoch:
      case FaultKind::kUpdateStorm:
      case FaultKind::kIslandBlackout:
      case FaultKind::kFlappingWorker:
      case FaultKind::kCtrlPartition:
        break;
    }
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return out;
}

FaultSchedule generate_campaign_schedule(std::uint64_t seed,
                                         sim::SimDuration horizon,
                                         const np::NpConfig& cfg) {
  sim::Rng rng = sim::Rng(seed).split("fault-campaign");
  // Episodes deliberately OVERLAP (at-windows interleave), unlike the
  // single-fault chaos generator. Independence comes from the failure-
  // domain geometry instead: every worker-scoped episode owns a distinct
  // island, so each clearing restores exactly the workers its injection
  // took, and global kinds are drawn at most once each.
  const unsigned n_islands = cfg.effective_islands();
  std::vector<unsigned> islands;
  for (unsigned i = 0; i < n_islands; ++i) islands.push_back(i);
  std::vector<FaultKind> worker_pool = {
      FaultKind::kIslandBlackout, FaultKind::kFlappingWorker,
      FaultKind::kWorkerStall,    FaultKind::kWorkerCrash,
      FaultKind::kCtrlPartition,
  };
  std::vector<FaultKind> global_pool = {
      FaultKind::kWireDip,     FaultKind::kTxBackpressure,
      FaultKind::kReorderStall, FaultKind::kCacheStorm,
      FaultKind::kCachePoison, FaultKind::kHashCollisionStorm,
      FaultKind::kChurnStorm,
  };
  const std::size_t n = 2 + rng.next_below(4);  // 2–5 overlapping episodes
  const sim::SimTime latest_clear =
      static_cast<sim::SimTime>(static_cast<double>(horizon) * 0.9);
  FaultSchedule out;
  for (std::size_t i = 0; i < n; ++i) {
    // The first episode is always worker-scoped, so every campaign
    // exercises at least one correlated failure-domain fault.
    const bool pick_worker =
        !worker_pool.empty() && !islands.empty() &&
        (i == 0 || global_pool.empty() || rng.next_below(2) == 0);
    if (!pick_worker && global_pool.empty()) break;

    FaultEvent ev;
    ev.at = static_cast<sim::SimTime>(static_cast<double>(horizon) *
                                      rng.uniform(0.15, 0.55));
    ev.duration = static_cast<sim::SimDuration>(static_cast<double>(horizon) *
                                                rng.uniform(0.08, 0.25));
    if (ev.at + ev.duration > latest_clear)
      ev.duration = std::max<sim::SimDuration>(latest_clear - ev.at,
                                               sim::microseconds(200));
    if (pick_worker) {
      std::size_t pick = rng.next_below(worker_pool.size());
      ev.kind = worker_pool[pick];
      worker_pool.erase(worker_pool.begin() +
                        static_cast<std::ptrdiff_t>(pick));
      pick = rng.next_below(islands.size());
      const unsigned island = islands[pick];
      islands.erase(islands.begin() + static_cast<std::ptrdiff_t>(pick));
      const auto range = cfg.island_range(island);
      const unsigned size = range.second - range.first;
      switch (ev.kind) {
        case FaultKind::kIslandBlackout:
          ev.worker = island;  // island index, not a worker id
          break;
        case FaultKind::kFlappingWorker:
          ev.worker = range.first;
          ev.worker_count = 1 + static_cast<unsigned>(rng.next_below(size));
          // 3–6 full crash/heal cycles across the episode.
          ev.period = ev.duration /
                      static_cast<sim::SimDuration>(3 + rng.next_below(4));
          break;
        case FaultKind::kCtrlPartition:
          ev.worker = range.first;
          ev.worker_count = size;  // the whole island loses the ctrl plane
          break;
        case FaultKind::kWorkerStall:
        case FaultKind::kWorkerCrash:
          ev.worker_count = 1 + static_cast<unsigned>(rng.next_below(size));
          ev.worker = range.first + static_cast<unsigned>(rng.next_below(
                                        size - ev.worker_count + 1));
          break;
        default:
          break;
      }
    } else {
      const std::size_t pick = rng.next_below(global_pool.size());
      ev.kind = global_pool[pick];
      global_pool.erase(global_pool.begin() +
                        static_cast<std::ptrdiff_t>(pick));
      switch (ev.kind) {
        case FaultKind::kWireDip: ev.magnitude = rng.uniform(0.1, 0.5); break;
        case FaultKind::kTxBackpressure:
          ev.magnitude = rng.uniform(0.05, 0.3);
          break;
        case FaultKind::kCachePoison:
          ev.magnitude = rng.uniform(0.25, 0.75);
          break;
        case FaultKind::kCacheStorm:
          ev.period = ev.duration / (4 + rng.next_below(8));
          break;
        case FaultKind::kHashCollisionStorm:
          ev.magnitude = rng.uniform(0.5, 2.0);
          ev.period = ev.duration / (4 + rng.next_below(8));
          break;
        case FaultKind::kChurnStorm:
          ev.magnitude = rng.uniform(0.1, 0.5);
          ev.period = ev.duration / (4 + rng.next_below(8));
          break;
        default:
          break;
      }
    }
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return out;
}

// --- FaultPlane ------------------------------------------------------------

FaultPlane::FaultPlane(sim::Simulator& sim, np::NicPipeline& pipeline,
                       core::FlowValveEngine* engine,
                       obs::RecoveryTracker* tracker, Options options)
    : sim_(sim),
      pipeline_(pipeline),
      engine_(engine),
      tracker_(tracker),
      options_(options) {}

sim::SimDuration FaultPlane::probe_period() const {
  if (options_.probe_period > 0) return options_.probe_period;
  return std::max<sim::SimDuration>(sim::microseconds(100),
                                    pipeline_.watchdog_period());
}

FaultPlane::Counters FaultPlane::read_counters() const {
  const auto& s = pipeline_.stats();
  return Counters{s.watchdog_drops, s.reorder_timeout_drops,
                  s.admission_drops, s.island_restart_drops};
}

void FaultPlane::arm(const FaultSchedule& schedule) {
  const np::NpConfig& cfg = pipeline_.config();
  const unsigned workers = cfg.num_workers;
  for (const FaultEvent& src : schedule) {
    auto holder = std::make_unique<ActiveFault>();
    ActiveFault* f = holder.get();
    f->ev = src;
    if (f->ev.duration <= 0 && needs_duration_floor(f->ev.kind))
      f->ev.duration = sim::milliseconds(1);
    if (f->ev.kind == FaultKind::kWorkerStall ||
        f->ev.kind == FaultKind::kWorkerCrash ||
        f->ev.kind == FaultKind::kFlappingWorker ||
        f->ev.kind == FaultKind::kCtrlPartition) {
      f->ev.worker = std::min(f->ev.worker, workers - 1);
      f->ev.worker_count =
          std::min(f->ev.worker_count, workers - f->ev.worker);
      // A permanent fault must leave at least one micro-engine alive or
      // nothing could ever drain the rings.
      if (f->ev.duration <= 0 && f->ev.worker_count >= workers)
        f->ev.worker_count = workers - 1;
      if (f->ev.worker_count == 0) continue;
    }
    if (f->ev.kind == FaultKind::kIslandBlackout)
      f->ev.worker = std::min(f->ev.worker, cfg.effective_islands() - 1);
    active_.push_back(std::move(holder));
    sim_.schedule_at(std::max<sim::SimTime>(f->ev.at, 0),
                     [this, f] { inject(*f); });
    if (f->ev.duration > 0) {
      const sim::SimTime clear_at =
          std::max<sim::SimTime>(f->ev.at, 0) + f->ev.duration;
      last_scheduled_clear_ = std::max(last_scheduled_clear_, clear_at);
      sim_.schedule_at(clear_at, [this, f] { clear(*f); });
    }
  }
}

void FaultPlane::inject(ActiveFault& f) {
  f.rec.kind = fault_kind_name(f.ev.kind);
  f.rec.injected_at = sim_.now();
  f.at_inject = read_counters();
  const FaultEvent& ev = f.ev;
  switch (ev.kind) {
    case FaultKind::kWorkerStall:
      for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w) {
        // A zero-duration stall never resumes: model it as a crash.
        if (ev.duration > 0)
          pipeline_.fault_stall_worker(w, ev.duration);
        else
          pipeline_.fault_crash_worker(w);
      }
      break;
    case FaultKind::kWorkerCrash:
      for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w)
        pipeline_.fault_crash_worker(w);
      break;
    case FaultKind::kWireDip:
      pipeline_.fault_set_wire_factor(std::clamp(ev.magnitude, 0.0, 1.0));
      break;
    case FaultKind::kTxBackpressure: {
      const auto cap = static_cast<std::size_t>(
          static_cast<double>(pipeline_.config().tx_ring_capacity) *
              std::clamp(ev.magnitude, 0.0, 1.0) +
          0.5);
      pipeline_.fault_set_tx_capacity(std::max<std::size_t>(1, cap));
      break;
    }
    case FaultKind::kReorderStall:
      pipeline_.fault_freeze_reorder(true);
      break;
    case FaultKind::kCacheStorm:
    case FaultKind::kHashCollisionStorm:
    case FaultKind::kChurnStorm: {
      if (!engine_) break;
      storm_action(f, 0);
      sim::SimDuration period = ev.period > 0 ? ev.period : ev.duration / 8;
      period = std::max<sim::SimDuration>(period, sim::microseconds(10));
      storm_tick(&f, sim_.now() + ev.duration, period, 1);
      break;
    }
    case FaultKind::kCachePoison: {
      if (!engine_) break;
      const double fraction = std::clamp(ev.magnitude, 0.01, 1.0);
      const auto stride = static_cast<std::size_t>(
          std::max(1.0, std::round(1.0 / fraction)));
      const auto label_count = static_cast<net::ClassLabelId>(
          engine_->frontend().labels().size());
      engine_->classifier().cache_for_fault().poison(stride, label_count);
      break;
    }
    case FaultKind::kLeakCommit: {
      np::InjectedFaults inj = pipeline_.injected_faults();
      inj.leak_commit_every = ev.period > 0 ? ev.period : 97;
      pipeline_.set_injected_faults(inj);
      break;
    }
    case FaultKind::kBypassReorder: {
      np::InjectedFaults inj = pipeline_.injected_faults();
      inj.bypass_reorder_every = ev.period > 0 ? ev.period : 97;
      pipeline_.set_injected_faults(inj);
      break;
    }
    case FaultKind::kTornUpdate: {
      if (!reconfig_) break;
      const double fraction = std::clamp(ev.magnitude, 0.01, 1.0);
      const auto stride =
          static_cast<unsigned>(std::max(1.0, std::round(1.0 / fraction)));
      reconfig_->fault_tear_update(stride);
      break;
    }
    case FaultKind::kStaleEpoch:
      if (reconfig_) reconfig_->fault_stale_worker(ev.worker);
      break;
    case FaultKind::kUpdateStorm:
      if (reconfig_)
        reconfig_->storm(ev.period > 0 ? static_cast<unsigned>(ev.period) : 8u);
      break;
    case FaultKind::kIslandBlackout:
      // Snapshot the scheduler/meter runtime BEFORE the crash wipes the
      // island: the restart reconstructs from this, not from whatever the
      // dead workers left mid-update (DESIGN.md §16).
      if (engine_) {
        f.tree_snapshot = engine_->tree().snapshot_runtime();
        f.has_snapshot = true;
      }
      pipeline_.fault_blackout_island(ev.worker);
      break;
    case FaultKind::kFlappingWorker: {
      for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w)
        pipeline_.fault_crash_worker(w);
      f.flap_down = true;
      sim::SimDuration half =
          (ev.period > 0 ? ev.period : ev.duration / 6) / 2;
      half = std::max<sim::SimDuration>(half, sim::microseconds(20));
      flap_tick(&f, sim_.now() + ev.duration, half);
      break;
    }
    case FaultKind::kCtrlPartition:
      // Each partitioned worker stops acking epoch cutovers; any rollout
      // including one of them stalls at the ack wave and must take the
      // probation/rollback path. No-op without a control plane to lose.
      if (reconfig_)
        for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w)
          reconfig_->fault_stale_worker(w);
      break;
  }
}

void FaultPlane::flap_tick(ActiveFault* f, sim::SimTime end,
                           sim::SimDuration half) {
  const sim::SimTime next = sim_.now() + half;
  if (next >= end) return;  // clear() performs the final repair
  sim_.schedule_at(next, [this, f, end, half] {
    const FaultEvent& ev = f->ev;
    if (f->flap_down) {
      for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w)
        pipeline_.repair_worker(w);
    } else {
      for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w)
        pipeline_.fault_crash_worker(w);
    }
    f->flap_down = !f->flap_down;
    flap_tick(f, end, half);
  });
}

void FaultPlane::storm_action(ActiveFault& f, std::uint64_t tick) {
  if (!engine_) return;
  auto& cache = engine_->classifier().cache_for_fault();
  const auto now_tick = static_cast<std::uint64_t>(sim_.now());
  switch (f.ev.kind) {
    case FaultKind::kCacheStorm:
      cache.invalidate_all();
      break;
    case FaultKind::kHashCollisionStorm: {
      // Same seed every tick: the attack hammers one bucket pair with one
      // stable adversarial key set for the fault's whole lifetime. Resident
      // keys refresh; the overflow keys fail their kick search again each
      // wave, keeping the pressure score up while the storm lasts.
      const std::uint64_t seed =
          0x9e3779b97f4a7c15ULL *
          (static_cast<std::uint64_t>(f.ev.at) + 0x1dULL);
      const double m = f.ev.magnitude > 0.0 ? f.ev.magnitude : 1.0;
      const auto n = static_cast<std::size_t>(std::clamp(m, 0.25, 4.0) * 64.0);
      cache.fault_collision_storm(seed, n, now_tick);
      break;
    }
    case FaultKind::kChurnStorm: {
      // Fresh keys every tick: an arrival-rate spike of short-lived flows.
      const std::uint64_t seed =
          0x9e3779b97f4a7c15ULL *
          (static_cast<std::uint64_t>(f.ev.at) + tick + 0x2eULL);
      const double m =
          std::clamp(f.ev.magnitude > 0.0 ? f.ev.magnitude : 0.25, 0.01, 1.0);
      const auto n = std::max<std::size_t>(
          64, static_cast<std::size_t>(
                  static_cast<double>(cache.capacity()) * m / 8.0));
      cache.fault_churn_storm(seed, n, now_tick);
      break;
    }
    default:
      break;
  }
}

void FaultPlane::storm_tick(ActiveFault* f, sim::SimTime end,
                            sim::SimDuration period, std::uint64_t tick) {
  const sim::SimTime next = sim_.now() + period;
  if (next >= end) return;
  sim_.schedule_at(next, [this, f, end, period, tick] {
    storm_action(*f, tick);
    storm_tick(f, end, period, tick + 1);
  });
}

void FaultPlane::clear(ActiveFault& f) {
  f.rec.cleared_at = sim_.now();
  const FaultEvent& ev = f.ev;
  switch (ev.kind) {
    case FaultKind::kWorkerStall:
    case FaultKind::kWorkerCrash:
      for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w)
        pipeline_.repair_worker(w);
      break;
    case FaultKind::kWireDip:
      pipeline_.fault_set_wire_factor(1.0);
      break;
    case FaultKind::kTxBackpressure:
      pipeline_.fault_set_tx_capacity(0);
      break;
    case FaultKind::kReorderStall:
      pipeline_.fault_freeze_reorder(false);
      break;
    case FaultKind::kCacheStorm:
    case FaultKind::kHashCollisionStorm:
    case FaultKind::kChurnStorm:
      // The storm chains stop on their own at `end`. No flush: degraded-
      // mode hysteresis must re-admit gradually on its own (DESIGN.md §14);
      // leftover synthetic entries age out under normal pressure.
      break;
    case FaultKind::kCachePoison:
      // Flush the corrupted entries so correct labels repopulate.
      if (engine_) engine_->classifier().cache_for_fault().invalidate_all();
      break;
    case FaultKind::kLeakCommit: {
      np::InjectedFaults inj = pipeline_.injected_faults();
      inj.leak_commit_every = 0;
      pipeline_.set_injected_faults(inj);
      break;
    }
    case FaultKind::kBypassReorder: {
      np::InjectedFaults inj = pipeline_.injected_faults();
      inj.bypass_reorder_every = 0;
      pipeline_.set_injected_faults(inj);
      break;
    }
    case FaultKind::kTornUpdate:
      if (reconfig_) reconfig_->clear_tear_fault();
      break;
    case FaultKind::kStaleEpoch:
      if (reconfig_) reconfig_->repair_stale_workers();
      break;
    case FaultKind::kUpdateStorm:
      break;  // the storm is instantaneous; nothing to un-latch
    case FaultKind::kIslandBlackout:
      // Crash-recovery restart: reconstruct scheduler/meter runtime from
      // the injection-time snapshot (buckets conservatively drained, Γ and
      // activity restored, θ/lendable re-derived by the refresh_theta
      // sweep), flush the EMC so labels re-warm lazily through the honest
      // rule-walk fallback, then re-admit the island's workers — under
      // admission probation when configured.
      if (engine_) {
        if (f.has_snapshot)
          engine_->tree().restore_runtime(f.tree_snapshot, sim_.now());
        engine_->classifier().cache_for_fault().invalidate_all();
      }
      pipeline_.restart_island(ev.worker);
      break;
    case FaultKind::kFlappingWorker:
      // The oscillator chain stopped before `end`; whatever half-cycle it
      // parked in, the final repair is idempotent per worker.
      for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w)
        pipeline_.repair_worker(w);
      break;
    case FaultKind::kCtrlPartition:
      if (reconfig_) reconfig_->repair_stale_workers();
      break;
  }
  f.at_last_probe = read_counters();
  ActiveFault* fp = &f;
  sim_.schedule_after(probe_period(), [this, fp] { probe(*fp); });
}

void FaultPlane::probe(ActiveFault& f) {
  if (f.closed) return;
  const Counters now_c = read_counters();
  const bool quiescent = now_c.watchdog_drops == f.at_last_probe.watchdog_drops &&
                         now_c.timeout_drops == f.at_last_probe.timeout_drops &&
                         now_c.admission_drops == f.at_last_probe.admission_drops &&
                         now_c.restart_drops == f.at_last_probe.restart_drops;
  const bool cache_healthy =
      engine_ == nullptr ||
      engine_->classifier().cache().health() ==
          core::ExactMatchFlowCache::Health::kHealthy;
  if (quiescent && cache_healthy && pipeline_.hung_workers() == 0 &&
      pipeline_.retry_backlog() == 0 && (!reconfig_ || !reconfig_->busy())) {
    close(f, sim_.now());
    return;
  }
  f.at_last_probe = now_c;
  // In a compound campaign this fault's probe window can overlap other
  // still-active faults, during which health is unreachable through no
  // fault of this episode's recovery — so the give-up clock anchors at the
  // campaign's LAST scheduled clearing, not this fault's own.
  const sim::SimTime quiet_at =
      std::max(f.rec.cleared_at, last_scheduled_clear_);
  if (sim_.now() - quiet_at >= options_.probe_deadline) {
    close(f, -1);  // the pipeline never probed healthy: recorded as such
    return;
  }
  ActiveFault* fp = &f;
  sim_.schedule_after(probe_period(), [this, fp] { probe(*fp); });
}

void FaultPlane::close(ActiveFault& f, sim::SimTime recovered_at) {
  f.rec.recovered_at = recovered_at;
  const Counters now_c = read_counters();
  f.rec.lost_watchdog = now_c.watchdog_drops - f.at_inject.watchdog_drops;
  f.rec.lost_timeout = now_c.timeout_drops - f.at_inject.timeout_drops;
  f.rec.lost_admission = now_c.admission_drops - f.at_inject.admission_drops;
  f.rec.lost_restart = now_c.restart_drops - f.at_inject.restart_drops;
  f.closed = true;
  if (tracker_) tracker_->record(f.rec);
}

void FaultPlane::finalize() {
  for (auto& f : active_)
    if (!f->closed) close(*f, -1);
}

}  // namespace flowvalve::fault
