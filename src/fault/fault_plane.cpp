#include "fault/fault_plane.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ctrl/reconfig_manager.h"

namespace flowvalve::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWorkerStall: return "worker-stall";
    case FaultKind::kWorkerCrash: return "worker-crash";
    case FaultKind::kWireDip: return "wire-dip";
    case FaultKind::kTxBackpressure: return "tx-backpressure";
    case FaultKind::kReorderStall: return "reorder-stall";
    case FaultKind::kCacheStorm: return "cache-storm";
    case FaultKind::kCachePoison: return "cache-poison";
    case FaultKind::kHashCollisionStorm: return "hash-collision-storm";
    case FaultKind::kChurnStorm: return "churn-storm";
    case FaultKind::kLeakCommit: return "leak-commit";
    case FaultKind::kBypassReorder: return "bypass-reorder";
    case FaultKind::kTornUpdate: return "torn-update";
    case FaultKind::kStaleEpoch: return "stale-epoch";
    case FaultKind::kUpdateStorm: return "update-storm";
  }
  return "unknown";
}

std::string FaultEvent::describe() const {
  std::ostringstream s;
  s << fault_kind_name(kind) << " at=" << at << "ns dur=" << duration << "ns";
  switch (kind) {
    case FaultKind::kWorkerStall:
    case FaultKind::kWorkerCrash:
      s << " workers=[" << worker << "," << worker + worker_count << ")";
      break;
    case FaultKind::kWireDip:
    case FaultKind::kTxBackpressure:
    case FaultKind::kCachePoison:
      s << " magnitude=" << magnitude;
      break;
    case FaultKind::kCacheStorm:
      s << " period=" << period << "ns";
      break;
    case FaultKind::kHashCollisionStorm:
    case FaultKind::kChurnStorm:
      s << " magnitude=" << magnitude << " period=" << period << "ns";
      break;
    case FaultKind::kLeakCommit:
    case FaultKind::kBypassReorder:
      s << " every=" << (period > 0 ? period : 97);
      break;
    case FaultKind::kTornUpdate:
      s << " torn_fraction=" << magnitude;
      break;
    case FaultKind::kStaleEpoch:
      s << " worker=" << worker;
      break;
    case FaultKind::kUpdateStorm:
      s << " updates=" << (period > 0 ? period : 8);
      break;
    case FaultKind::kReorderStall:
      break;
  }
  return s.str();
}

std::string describe_schedule(const FaultSchedule& schedule) {
  std::ostringstream s;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i) s << "; ";
    s << schedule[i].describe();
  }
  return s.str();
}

namespace {

/// Kinds whose clearing is a restore of shared state — a zero duration
/// would leave the pipeline degraded forever and the run could never
/// drain, so these get a floor instead of "permanent".
bool needs_duration_floor(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWireDip:
    case FaultKind::kTxBackpressure:
    case FaultKind::kReorderStall:
    case FaultKind::kCacheStorm:
    case FaultKind::kHashCollisionStorm:
    case FaultKind::kChurnStorm:
    // Control-plane faults are latched/sticky on the reconfiguration
    // manager: the floor guarantees a clear() runs to un-latch them and
    // start the recovery probe that closes the FaultRecord.
    case FaultKind::kTornUpdate:
    case FaultKind::kStaleEpoch:
    case FaultKind::kUpdateStorm:
      return true;
    default:
      return false;
  }
}

}  // namespace

FaultSchedule single_fault(FaultKind kind, sim::SimTime at,
                           sim::SimDuration duration, const np::NpConfig& cfg) {
  FaultEvent ev;
  ev.kind = kind;
  ev.at = at;
  ev.duration = duration;
  switch (kind) {
    case FaultKind::kWorkerStall:
    case FaultKind::kWorkerCrash:
      ev.worker = 0;
      ev.worker_count = std::max(1u, cfg.num_workers / 4);
      break;
    case FaultKind::kWireDip: ev.magnitude = 0.25; break;
    case FaultKind::kTxBackpressure: ev.magnitude = 0.10; break;
    case FaultKind::kCachePoison: ev.magnitude = 0.50; break;
    case FaultKind::kCacheStorm: ev.period = duration / 8; break;
    case FaultKind::kHashCollisionStorm:
      ev.magnitude = 1.0;
      ev.period = duration / 8;
      break;
    case FaultKind::kChurnStorm:
      ev.magnitude = 0.25;
      ev.period = duration / 8;
      break;
    case FaultKind::kReorderStall: break;
    case FaultKind::kLeakCommit:
    case FaultKind::kBypassReorder:
      ev.period = 97;
      break;
    case FaultKind::kTornUpdate: ev.magnitude = 0.5; break;
    case FaultKind::kStaleEpoch:
      ev.worker = 0;
      ev.worker_count = 1;
      break;
    case FaultKind::kUpdateStorm: ev.period = 8; break;
  }
  return {ev};
}

FaultSchedule generate_fault_schedule(std::uint64_t seed,
                                      sim::SimDuration horizon,
                                      const np::NpConfig& cfg) {
  sim::Rng rng = sim::Rng(seed).split("fault-schedule");
  // Distinct kinds per schedule: it also guarantees same-kind faults never
  // overlap, so each clearing restores exactly the state its injection
  // changed. Leak/bypass are deliberate accounting bugs, not survivable
  // faults — a chaos run must stay checker-clean, so they are excluded.
  std::vector<FaultKind> pool = {
      FaultKind::kWorkerStall,  FaultKind::kWorkerCrash,
      FaultKind::kWireDip,      FaultKind::kTxBackpressure,
      FaultKind::kReorderStall, FaultKind::kCacheStorm,
      FaultKind::kCachePoison,  FaultKind::kHashCollisionStorm,
      FaultKind::kChurnStorm,
  };
  const std::size_t n = 1 + rng.next_below(4);
  FaultSchedule out;
  for (std::size_t i = 0; i < n && !pool.empty(); ++i) {
    const std::size_t pick = rng.next_below(pool.size());
    const FaultKind kind = pool[pick];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));

    FaultEvent ev;
    ev.kind = kind;
    ev.at = static_cast<sim::SimTime>(static_cast<double>(horizon) *
                                      rng.uniform(0.2, 0.6));
    ev.duration = static_cast<sim::SimDuration>(static_cast<double>(horizon) *
                                                rng.uniform(0.05, 0.2));
    // Everything must clear by 0.9 × horizon so the run drains and the
    // shares have a window to re-converge in.
    const sim::SimTime latest_clear =
        static_cast<sim::SimTime>(static_cast<double>(horizon) * 0.9);
    if (ev.at + ev.duration > latest_clear)
      ev.duration = std::max<sim::SimDuration>(latest_clear - ev.at,
                                               sim::microseconds(200));
    switch (kind) {
      case FaultKind::kWorkerStall:
      case FaultKind::kWorkerCrash: {
        const unsigned span = std::max(1u, cfg.num_workers / 4);
        ev.worker_count = 1 + static_cast<unsigned>(rng.next_below(span));
        ev.worker = static_cast<unsigned>(
            rng.next_below(std::max(1u, cfg.num_workers - ev.worker_count + 1)));
        break;
      }
      case FaultKind::kWireDip: ev.magnitude = rng.uniform(0.0, 0.5); break;
      case FaultKind::kTxBackpressure:
        ev.magnitude = rng.uniform(0.05, 0.3);
        break;
      case FaultKind::kCachePoison:
        ev.magnitude = rng.uniform(0.25, 0.75);
        break;
      case FaultKind::kCacheStorm:
        ev.period = ev.duration / (4 + rng.next_below(8));
        break;
      case FaultKind::kHashCollisionStorm:
        ev.magnitude = rng.uniform(0.5, 2.0);
        ev.period = ev.duration / (4 + rng.next_below(8));
        break;
      case FaultKind::kChurnStorm:
        ev.magnitude = rng.uniform(0.1, 0.5);
        ev.period = ev.duration / (4 + rng.next_below(8));
        break;
      case FaultKind::kReorderStall:
      case FaultKind::kLeakCommit:
      case FaultKind::kBypassReorder:
      case FaultKind::kTornUpdate:
      case FaultKind::kStaleEpoch:
      case FaultKind::kUpdateStorm:
        break;
    }
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return out;
}

// --- FaultPlane ------------------------------------------------------------

FaultPlane::FaultPlane(sim::Simulator& sim, np::NicPipeline& pipeline,
                       core::FlowValveEngine* engine,
                       obs::RecoveryTracker* tracker, Options options)
    : sim_(sim),
      pipeline_(pipeline),
      engine_(engine),
      tracker_(tracker),
      options_(options) {}

sim::SimDuration FaultPlane::probe_period() const {
  if (options_.probe_period > 0) return options_.probe_period;
  return std::max<sim::SimDuration>(sim::microseconds(100),
                                    pipeline_.watchdog_period());
}

FaultPlane::Counters FaultPlane::read_counters() const {
  const auto& s = pipeline_.stats();
  return Counters{s.watchdog_drops, s.reorder_timeout_drops,
                  s.admission_drops};
}

void FaultPlane::arm(const FaultSchedule& schedule) {
  const unsigned workers = pipeline_.config().num_workers;
  for (const FaultEvent& src : schedule) {
    auto holder = std::make_unique<ActiveFault>();
    ActiveFault* f = holder.get();
    f->ev = src;
    if (f->ev.duration <= 0 && needs_duration_floor(f->ev.kind))
      f->ev.duration = sim::milliseconds(1);
    if (f->ev.kind == FaultKind::kWorkerStall ||
        f->ev.kind == FaultKind::kWorkerCrash) {
      f->ev.worker = std::min(f->ev.worker, workers - 1);
      f->ev.worker_count =
          std::min(f->ev.worker_count, workers - f->ev.worker);
      // A permanent fault must leave at least one micro-engine alive or
      // nothing could ever drain the rings.
      if (f->ev.duration <= 0 && f->ev.worker_count >= workers)
        f->ev.worker_count = workers - 1;
      if (f->ev.worker_count == 0) continue;
    }
    active_.push_back(std::move(holder));
    sim_.schedule_at(std::max<sim::SimTime>(f->ev.at, 0),
                     [this, f] { inject(*f); });
    if (f->ev.duration > 0)
      sim_.schedule_at(std::max<sim::SimTime>(f->ev.at, 0) + f->ev.duration,
                       [this, f] { clear(*f); });
  }
}

void FaultPlane::inject(ActiveFault& f) {
  f.rec.kind = fault_kind_name(f.ev.kind);
  f.rec.injected_at = sim_.now();
  f.at_inject = read_counters();
  const FaultEvent& ev = f.ev;
  switch (ev.kind) {
    case FaultKind::kWorkerStall:
      for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w) {
        // A zero-duration stall never resumes: model it as a crash.
        if (ev.duration > 0)
          pipeline_.fault_stall_worker(w, ev.duration);
        else
          pipeline_.fault_crash_worker(w);
      }
      break;
    case FaultKind::kWorkerCrash:
      for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w)
        pipeline_.fault_crash_worker(w);
      break;
    case FaultKind::kWireDip:
      pipeline_.fault_set_wire_factor(std::clamp(ev.magnitude, 0.0, 1.0));
      break;
    case FaultKind::kTxBackpressure: {
      const auto cap = static_cast<std::size_t>(
          static_cast<double>(pipeline_.config().tx_ring_capacity) *
              std::clamp(ev.magnitude, 0.0, 1.0) +
          0.5);
      pipeline_.fault_set_tx_capacity(std::max<std::size_t>(1, cap));
      break;
    }
    case FaultKind::kReorderStall:
      pipeline_.fault_freeze_reorder(true);
      break;
    case FaultKind::kCacheStorm:
    case FaultKind::kHashCollisionStorm:
    case FaultKind::kChurnStorm: {
      if (!engine_) break;
      storm_action(f, 0);
      sim::SimDuration period = ev.period > 0 ? ev.period : ev.duration / 8;
      period = std::max<sim::SimDuration>(period, sim::microseconds(10));
      storm_tick(&f, sim_.now() + ev.duration, period, 1);
      break;
    }
    case FaultKind::kCachePoison: {
      if (!engine_) break;
      const double fraction = std::clamp(ev.magnitude, 0.01, 1.0);
      const auto stride = static_cast<std::size_t>(
          std::max(1.0, std::round(1.0 / fraction)));
      const auto label_count = static_cast<net::ClassLabelId>(
          engine_->frontend().labels().size());
      engine_->classifier().cache_for_fault().poison(stride, label_count);
      break;
    }
    case FaultKind::kLeakCommit: {
      np::InjectedFaults inj = pipeline_.injected_faults();
      inj.leak_commit_every = ev.period > 0 ? ev.period : 97;
      pipeline_.set_injected_faults(inj);
      break;
    }
    case FaultKind::kBypassReorder: {
      np::InjectedFaults inj = pipeline_.injected_faults();
      inj.bypass_reorder_every = ev.period > 0 ? ev.period : 97;
      pipeline_.set_injected_faults(inj);
      break;
    }
    case FaultKind::kTornUpdate: {
      if (!reconfig_) break;
      const double fraction = std::clamp(ev.magnitude, 0.01, 1.0);
      const auto stride =
          static_cast<unsigned>(std::max(1.0, std::round(1.0 / fraction)));
      reconfig_->fault_tear_update(stride);
      break;
    }
    case FaultKind::kStaleEpoch:
      if (reconfig_) reconfig_->fault_stale_worker(ev.worker);
      break;
    case FaultKind::kUpdateStorm:
      if (reconfig_)
        reconfig_->storm(ev.period > 0 ? static_cast<unsigned>(ev.period) : 8u);
      break;
  }
}

void FaultPlane::storm_action(ActiveFault& f, std::uint64_t tick) {
  if (!engine_) return;
  auto& cache = engine_->classifier().cache_for_fault();
  const auto now_tick = static_cast<std::uint64_t>(sim_.now());
  switch (f.ev.kind) {
    case FaultKind::kCacheStorm:
      cache.invalidate_all();
      break;
    case FaultKind::kHashCollisionStorm: {
      // Same seed every tick: the attack hammers one bucket pair with one
      // stable adversarial key set for the fault's whole lifetime. Resident
      // keys refresh; the overflow keys fail their kick search again each
      // wave, keeping the pressure score up while the storm lasts.
      const std::uint64_t seed =
          0x9e3779b97f4a7c15ULL *
          (static_cast<std::uint64_t>(f.ev.at) + 0x1dULL);
      const double m = f.ev.magnitude > 0.0 ? f.ev.magnitude : 1.0;
      const auto n = static_cast<std::size_t>(std::clamp(m, 0.25, 4.0) * 64.0);
      cache.fault_collision_storm(seed, n, now_tick);
      break;
    }
    case FaultKind::kChurnStorm: {
      // Fresh keys every tick: an arrival-rate spike of short-lived flows.
      const std::uint64_t seed =
          0x9e3779b97f4a7c15ULL *
          (static_cast<std::uint64_t>(f.ev.at) + tick + 0x2eULL);
      const double m =
          std::clamp(f.ev.magnitude > 0.0 ? f.ev.magnitude : 0.25, 0.01, 1.0);
      const auto n = std::max<std::size_t>(
          64, static_cast<std::size_t>(
                  static_cast<double>(cache.capacity()) * m / 8.0));
      cache.fault_churn_storm(seed, n, now_tick);
      break;
    }
    default:
      break;
  }
}

void FaultPlane::storm_tick(ActiveFault* f, sim::SimTime end,
                            sim::SimDuration period, std::uint64_t tick) {
  const sim::SimTime next = sim_.now() + period;
  if (next >= end) return;
  sim_.schedule_at(next, [this, f, end, period, tick] {
    storm_action(*f, tick);
    storm_tick(f, end, period, tick + 1);
  });
}

void FaultPlane::clear(ActiveFault& f) {
  f.rec.cleared_at = sim_.now();
  const FaultEvent& ev = f.ev;
  switch (ev.kind) {
    case FaultKind::kWorkerStall:
    case FaultKind::kWorkerCrash:
      for (unsigned w = ev.worker; w < ev.worker + ev.worker_count; ++w)
        pipeline_.repair_worker(w);
      break;
    case FaultKind::kWireDip:
      pipeline_.fault_set_wire_factor(1.0);
      break;
    case FaultKind::kTxBackpressure:
      pipeline_.fault_set_tx_capacity(0);
      break;
    case FaultKind::kReorderStall:
      pipeline_.fault_freeze_reorder(false);
      break;
    case FaultKind::kCacheStorm:
    case FaultKind::kHashCollisionStorm:
    case FaultKind::kChurnStorm:
      // The storm chains stop on their own at `end`. No flush: degraded-
      // mode hysteresis must re-admit gradually on its own (DESIGN.md §14);
      // leftover synthetic entries age out under normal pressure.
      break;
    case FaultKind::kCachePoison:
      // Flush the corrupted entries so correct labels repopulate.
      if (engine_) engine_->classifier().cache_for_fault().invalidate_all();
      break;
    case FaultKind::kLeakCommit: {
      np::InjectedFaults inj = pipeline_.injected_faults();
      inj.leak_commit_every = 0;
      pipeline_.set_injected_faults(inj);
      break;
    }
    case FaultKind::kBypassReorder: {
      np::InjectedFaults inj = pipeline_.injected_faults();
      inj.bypass_reorder_every = 0;
      pipeline_.set_injected_faults(inj);
      break;
    }
    case FaultKind::kTornUpdate:
      if (reconfig_) reconfig_->clear_tear_fault();
      break;
    case FaultKind::kStaleEpoch:
      if (reconfig_) reconfig_->repair_stale_workers();
      break;
    case FaultKind::kUpdateStorm:
      break;  // the storm is instantaneous; nothing to un-latch
  }
  f.at_last_probe = read_counters();
  ActiveFault* fp = &f;
  sim_.schedule_after(probe_period(), [this, fp] { probe(*fp); });
}

void FaultPlane::probe(ActiveFault& f) {
  if (f.closed) return;
  const Counters now_c = read_counters();
  const bool quiescent = now_c.watchdog_drops == f.at_last_probe.watchdog_drops &&
                         now_c.timeout_drops == f.at_last_probe.timeout_drops &&
                         now_c.admission_drops == f.at_last_probe.admission_drops;
  const bool cache_healthy =
      engine_ == nullptr ||
      engine_->classifier().cache().health() ==
          core::ExactMatchFlowCache::Health::kHealthy;
  if (quiescent && cache_healthy && pipeline_.hung_workers() == 0 &&
      pipeline_.retry_backlog() == 0 && (!reconfig_ || !reconfig_->busy())) {
    close(f, sim_.now());
    return;
  }
  f.at_last_probe = now_c;
  if (sim_.now() - f.rec.cleared_at >= options_.probe_deadline) {
    close(f, -1);  // the pipeline never probed healthy: recorded as such
    return;
  }
  ActiveFault* fp = &f;
  sim_.schedule_after(probe_period(), [this, fp] { probe(*fp); });
}

void FaultPlane::close(ActiveFault& f, sim::SimTime recovered_at) {
  f.rec.recovered_at = recovered_at;
  const Counters now_c = read_counters();
  f.rec.lost_watchdog = now_c.watchdog_drops - f.at_inject.watchdog_drops;
  f.rec.lost_timeout = now_c.timeout_drops - f.at_inject.timeout_drops;
  f.rec.lost_admission = now_c.admission_drops - f.at_inject.admission_drops;
  f.closed = true;
  if (tracker_) tracker_->record(f.rec);
}

void FaultPlane::finalize() {
  for (auto& f : active_)
    if (!f->closed) close(*f, -1);
}

}  // namespace flowvalve::fault
