// Rank-program scheduling backends behind FlowValve's contention structure.
//
// PIFO-style disciplines compute a rank at enqueue and release packets in
// rank order — but they assume queue hardware that can insert anywhere,
// which the paper argues shipping NPs don't have. These backends re-express
// the rank programs as *valves*: the rank a PIFO would insert at becomes an
// admission test, so the discipline still decides who gets the wire while
// the data path stays never-queueing (drop-or-forward, Tx FIFO unchanged).
//
// Shared discipline (STFQ, the canonical PIFO program): a global virtual
// time V advances at the link rate; each leaf keeps a virtual finish tag
// that a forwarded packet pushes forward by wire_bytes / w, where the
// weight w = θ_leaf / θ_root is read live from the scheduling tree — the
// same try-lock update machinery (and therefore the same ctrl-plane epoch
// rollout) that feeds FlowValve's buckets feeds these weights. A packet is
// admitted while its start tag leads V by at most the class's burst
// allowance (the analogue of FlowValve's bucket depth); a saturated class
// therefore forwards at w · link — the same weighted-fair share HTB and
// FlowValve converge to, which is what lets the differential oracle run
// unchanged across backends.
//
//   StfqBackend    exact start-time ranks (PIFO/STFQ valve)
//   EiffelBackend  + an Eiffel FFS bucket-queue calendar tracking admitted
//                    packets by quantized finish tag (bounded rank horizon)
//   SpPifoBackend  + SP-PIFO adaptive strict-priority banding over the
//                    ranks (push-up/push-down bound adaptation telemetry)
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "baseline/bucket_queue.h"
#include "core/scheduler_backend.h"

namespace flowvalve::core {

class StfqBackend : public SchedulerBackend {
 public:
  StfqBackend(SchedulingTree& tree, const LabelTable& labels,
              SchedulerCosts costs);

  BackendKind kind() const override { return BackendKind::kStfq; }
  SchedDecision schedule(net::Packet& pkt, sim::SimTime now) override;

 protected:
  /// Admission state for one packet, computed by the shared STFQ prologue.
  struct RankView {
    ClassId leaf = kNoClass;
    double weight = 0.0;        // θ_leaf / θ_root, live
    double start = 0.0;         // max(V, finish[leaf]), virtual bytes
    double deficit_bytes = 0.0; // (start − V) · w: credit consumed ahead of V
    double lead_bytes = 0.0;    // burst allowance (bucket-depth analogue)
  };

  /// Advance V to `now` and rank the packet's class. Returns false when the
  /// class has no live rate (θ == 0) — callers must drop.
  bool rank(const QosLabel& label, sim::SimTime now, RankView& rv);

  /// Forward epilogue: push the finish tag and book the forward. Returns
  /// the new finish tag (virtual bytes).
  double admit(net::Packet& pkt, const QosLabel& label, const RankView& rv,
               SchedDecision& d);

  double vtime_ = 0.0;              // global virtual time, virtual bytes
  sim::SimTime last_advance_ = 0;
  std::vector<double> finish_;      // per-class virtual finish tag
};

class EiffelBackend final : public StfqBackend {
 public:
  static constexpr std::size_t kWheelBuckets = 1024;

  EiffelBackend(SchedulingTree& tree, const LabelTable& labels,
                SchedulerCosts costs);

  BackendKind kind() const override { return BackendKind::kEiffel; }
  SchedDecision schedule(net::Packet& pkt, sim::SimTime now) override;

  /// Admitted-but-not-virtually-finished packets, by quantized finish tag.
  std::size_t calendar_backlog() const { return calendar_.size(); }

 private:
  std::size_t bucket_of(double virtual_bytes) const;
  void drain_calendar();
  void rebase_calendar();

  baseline::BucketQueue<ClassId> calendar_{kWheelBuckets};
  double cal_base_ = 0.0;   // virtual-byte origin of bucket 0
  double quantum_ = 0.0;    // virtual bytes per bucket (sized lazily)
};

class SpPifoBackend final : public StfqBackend {
 public:
  static constexpr std::size_t kBands = 8;

  SpPifoBackend(SchedulingTree& tree, const LabelTable& labels,
                SchedulerCosts costs);

  BackendKind kind() const override { return BackendKind::kSpPifo; }
  SchedDecision schedule(net::Packet& pkt, sim::SimTime now) override;

  const std::array<double, kBands>& bounds() const { return bounds_; }
  const std::array<std::uint64_t, kBands>& band_admits() const {
    return band_admits_;
  }

 private:
  // Ascending queue bounds over the normalized rank r = deficit / lead in
  // [0, 1]; band k-1 holds the worst (farthest-future) admitted ranks.
  std::array<double, kBands> bounds_{};
  std::array<std::uint64_t, kBands> band_admits_{};
};

}  // namespace flowvalve::core
