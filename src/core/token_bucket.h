// Token buckets and the two-color meter (paper §IV, Fig. 8).
//
// Buckets hold tokens denominated in *bytes* and are replenished explicitly
// by the scheduling function's update subprocedure (tokens += θ · ΔT). The
// meter is modeled after the NFP's atomic meter instruction: a single
// conditional-subtract that never blocks.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.h"

namespace flowvalve::core {

using sim::Rate;
using sim::SimDuration;
using sim::SimTime;

/// Meter colors per the paper's Eq. 1 (two-color marking).
enum class MeterColor : std::uint8_t { kGreen, kRed };

class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double capacity_bytes, double initial_bytes)
      : capacity_(capacity_bytes), tokens_(std::min(initial_bytes, capacity_bytes)) {}

  double tokens() const { return tokens_; }
  double capacity() const { return capacity_; }

  void set_capacity(double capacity_bytes) {
    capacity_ = capacity_bytes;
    tokens_ = std::min(tokens_, capacity_);
  }

  /// Add θ·ΔT worth of tokens, saturating at capacity. Called only from the
  /// (lock-guarded) update subprocedure.
  void replenish(Rate theta, SimDuration dt) {
    add(theta.bytes_per_ns() * static_cast<double>(dt));
  }

  void add(double bytes) { tokens_ = std::min(capacity_, tokens_ + bytes); }

  /// Tolerated relative shortfall when metering: repeated sub-byte
  /// replenishes accumulate floating-point error that can leave the fill at
  /// `bytes - ε` when the exact sum equals `bytes`; without the epsilon a
  /// deserved GREEN turns RED. One part in 10⁶ of a frame is far below any
  /// conformance bound we assert.
  static constexpr double kMeterEpsilon = 1e-6;

  /// Atomic meter: if `bytes` tokens are available (within kMeterEpsilon,
  /// relative to the request) consume them and return GREEN, otherwise
  /// leave the bucket unchanged and return RED.
  MeterColor meter(std::uint32_t bytes) {
    const double need = static_cast<double>(bytes);
    if (tokens_ >= need - kMeterEpsilon * need) {
      tokens_ = std::max(0.0, tokens_ - need);
      return MeterColor::kGreen;
    }
    return MeterColor::kRed;
  }

  /// Drain all tokens (used when restoring expired status).
  void reset(double tokens = 0.0) { tokens_ = std::min(tokens, capacity_); }

 private:
  double capacity_ = 0.0;
  double tokens_ = 0.0;
};

/// Default bucket sizing: hold `burst_window` worth of tokens at rate θ but
/// never less than `min_bytes` (typically two max-size frames), so a freshly
/// promoted rate can emit back-to-back frames immediately.
inline double default_burst_bytes(Rate theta, SimDuration burst_window,
                                  double min_bytes = 2.0 * 1518.0) {
  return std::max(theta.bytes_per_ns() * static_cast<double>(burst_window), min_bytes);
}

}  // namespace flowvalve::core
