file(REMOVE_RECURSE
  "CMakeFiles/fv_core.dir/classifier.cpp.o"
  "CMakeFiles/fv_core.dir/classifier.cpp.o.d"
  "CMakeFiles/fv_core.dir/flowvalve.cpp.o"
  "CMakeFiles/fv_core.dir/flowvalve.cpp.o.d"
  "CMakeFiles/fv_core.dir/frontend.cpp.o"
  "CMakeFiles/fv_core.dir/frontend.cpp.o.d"
  "CMakeFiles/fv_core.dir/introspect.cpp.o"
  "CMakeFiles/fv_core.dir/introspect.cpp.o.d"
  "CMakeFiles/fv_core.dir/sched_tree.cpp.o"
  "CMakeFiles/fv_core.dir/sched_tree.cpp.o.d"
  "CMakeFiles/fv_core.dir/scheduling_function.cpp.o"
  "CMakeFiles/fv_core.dir/scheduling_function.cpp.o.d"
  "libfv_core.a"
  "libfv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
