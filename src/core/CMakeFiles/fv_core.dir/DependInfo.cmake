
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/fv_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/fv_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/flowvalve.cpp" "src/core/CMakeFiles/fv_core.dir/flowvalve.cpp.o" "gcc" "src/core/CMakeFiles/fv_core.dir/flowvalve.cpp.o.d"
  "/root/repo/src/core/frontend.cpp" "src/core/CMakeFiles/fv_core.dir/frontend.cpp.o" "gcc" "src/core/CMakeFiles/fv_core.dir/frontend.cpp.o.d"
  "/root/repo/src/core/introspect.cpp" "src/core/CMakeFiles/fv_core.dir/introspect.cpp.o" "gcc" "src/core/CMakeFiles/fv_core.dir/introspect.cpp.o.d"
  "/root/repo/src/core/sched_tree.cpp" "src/core/CMakeFiles/fv_core.dir/sched_tree.cpp.o" "gcc" "src/core/CMakeFiles/fv_core.dir/sched_tree.cpp.o.d"
  "/root/repo/src/core/scheduling_function.cpp" "src/core/CMakeFiles/fv_core.dir/scheduling_function.cpp.o" "gcc" "src/core/CMakeFiles/fv_core.dir/scheduling_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/sim/CMakeFiles/fv_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/fv_net.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/fv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
