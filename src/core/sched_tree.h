// The scheduling tree (paper §IV-B) and its per-class update subprocedure
// (§IV-C, Subprocedures 1-3).
//
// Each node is a traffic class holding a token bucket (leaf classes limit,
// interior classes measure), a shadow bucket exposing lendable tokens
// (Eq. 6), a consumed-token counter driving the Γ estimate (Eq. 3), and a
// try-lock guarding the update section (Fig. 8). θ derivation implements the
// paper's condition templates: strict priority between levels (Eq. 4),
// weighted split within a level (Eq. 5), demand-limited guarantees and
// ceilings (§IV-C-3).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "core/token_bucket.h"
#include "sim/sim_lock.h"
#include "stats/stats.h"

namespace flowvalve::core {

using ClassId = std::uint32_t;
inline constexpr ClassId kNoClass = 0xffffffffu;

/// A packet's QoS label (paper §IV-B): the hierarchy class label (root→leaf
/// path on the scheduling tree) plus the borrowing class label (ordered list
/// of classes whose shadow buckets this flow may query).
struct QosLabel {
  std::vector<ClassId> path;
  std::vector<ClassId> borrow;
};

/// One traffic class. Configuration fields are immutable after finalize();
/// the runtime block is shared mutable state touched by (virtual) NP cores.
struct SchedClass {
  // -- configuration -----------------------------------------------------
  std::string name;
  ClassId id = kNoClass;
  ClassId parent = kNoClass;
  std::vector<ClassId> children;
  NodePolicy policy;
  int depth = 0;

  // -- staged reconfiguration (src/ctrl epoch rollout) ---------------------
  // A pending policy for the next epoch. Committed under the class's update
  // lock by the first new-epoch packet that touches the class, so the word
  // swap rides the paper's existing try-lock cycle budget (Fig. 8).
  NodePolicy staged_policy;
  bool has_staged = false;

  // -- shared runtime state ----------------------------------------------
  Rate theta;                     // current token rate
  Rate lendable;                  // current lendable token rate (Eq. 6)
  TokenBucket bucket;             // leaf: limits; interior: unused
  TokenBucket shadow;             // lendable tokens for borrowers
  double consumed_bytes = 0.0;    // since the last update epoch
  stats::Ewma gamma_bps;          // smoothed token consumption rate Γ
  sim::SimTime last_update = 0;
  sim::SimTime last_seen = 0;     // last packet arrival touching this class
  bool ever_seen = false;
  sim::SimTryLock update_lock;

  // -- cumulative statistics ----------------------------------------------
  std::uint64_t fwd_packets = 0;
  std::uint64_t fwd_bytes = 0;
  std::uint64_t drop_packets = 0;
  std::uint64_t drop_bytes = 0;
  std::uint64_t borrowed_packets = 0;  // forwarded via a lender's shadow bucket
  std::uint64_t borrowed_bytes = 0;

  bool is_leaf() const { return children.empty(); }
  bool is_root() const { return parent == kNoClass; }

  /// Γ as a Rate (smoothed).
  Rate gamma() const {
    return gamma_bps.has_value() ? Rate::bits_per_sec(gamma_bps.value()) : Rate::zero();
  }
};

class SchedulingTree {
 public:
  explicit SchedulingTree(FvParams params = {});

  /// Add the root class carrying the link/ceiling rate. Must be first.
  ClassId add_root(std::string name, Rate link_rate);

  /// Add a class under `parent`. Classes may be added in any order after the
  /// root, but finalize() must run before scheduling starts.
  ClassId add_class(std::string name, ClassId parent, NodePolicy policy);

  /// Freeze configuration: compute depths, seed θ with the static weighted
  /// shares, and size all buckets. Idempotent.
  void finalize(sim::SimTime now = 0);
  bool finalized() const { return finalized_; }

  ClassId find(std::string_view name) const;  // kNoClass if absent
  const SchedClass& at(ClassId id) const { return nodes_[id]; }
  SchedClass& at(ClassId id) { return nodes_[id]; }
  std::size_t size() const { return nodes_.size(); }
  ClassId root() const { return nodes_.empty() ? kNoClass : 0; }
  const FvParams& params() const { return params_; }

  /// Build the hierarchy label (root→leaf) for a leaf class plus an explicit
  /// borrowing label. Borrow entries are resolved names/ids of any classes.
  QosLabel label_for(ClassId leaf, std::vector<ClassId> borrow = {}) const;

  /// True if the class saw a packet within the expiry threshold.
  bool is_active(const SchedClass& c, sim::SimTime now) const {
    return c.ever_seen && now - c.last_seen <= params_.expiry_threshold;
  }

  /// The update subprocedure for one class (Fig. 8 stage 3 + Subprocedures
  /// 1-3): evaluate Γ over the elapsed epoch, restore expired status,
  /// recompute θ from the parent and sibling shared state, replenish the
  /// regular and shadow buckets. Caller must hold the class's update lock
  /// (or be the only toucher, e.g. in unit tests).
  void update_class(ClassId id, sim::SimTime now);

  /// θ derivation for a non-root class from current shared state (condition
  /// template engine). Exposed for tests and the propagation-delay bench.
  Rate compute_theta(ClassId id, sim::SimTime now) const;
  /// Re-derive θ for every class top-down (control-plane commit path only).
  void refresh_theta(sim::SimTime now);

  /// Record a forwarded packet's bytes on every class of `path` (Eq. 3
  /// consumption counting) — called after a FORWARD decision.
  void count_forwarded(const std::vector<ClassId>& path, std::uint32_t bytes);

  /// Record a packet arrival (activity) on every class of `path`.
  void touch(const std::vector<ClassId>& path, sim::SimTime now);

  /// Validate structural invariants (weights positive, guarantees below
  /// ceilings, single root). Returns a human-readable error or empty string.
  std::string validate() const;

  /// Runtime reconfiguration (§II-B: fixed traffic managers cannot do this;
  /// FlowValve's software tree can). Atomically replaces a class's policy;
  /// the new rates take effect at each class's next update epoch, exactly
  /// like any other θ change propagating through the tree. Returns false if
  /// the new policy is semantically invalid (validate_deltas rejects it).
  bool reconfigure(ClassId id, const NodePolicy& policy);

  /// A batch of per-class policy replacements, pre-resolution.
  using PolicyManifest = std::vector<std::pair<ClassId, NodePolicy>>;

  /// Semantic validation of a policy manifest, dry-run against a clone of
  /// the current per-class policies with the deltas applied: finite positive
  /// weights, non-negative guarantees, positive ceilings, guarantee <= ceil,
  /// and per-parent sum of child guarantees <= the parent's effective ceil.
  /// Returns a human-readable error or empty string.
  std::string validate_deltas(const PolicyManifest& deltas) const;

  // -- epoch-versioned staging (src/ctrl) ----------------------------------
  // Epochs are monotonic: a rollback re-stages the *prior policies* at a new,
  // higher epoch number rather than reusing an old one, which keeps epoch
  // confinement checking sound (a packet stamped with epoch E can never be
  // scheduled against two different policy sets both called E).

  /// Committed policy epoch (what non-cut-over workers schedule against).
  std::uint32_t policy_epoch() const { return epoch_; }
  /// Epoch being rolled out; equals policy_epoch() when idle.
  std::uint32_t staged_epoch() const { return staged_epoch_; }
  bool rollout_active() const { return staged_epoch_ != epoch_; }
  std::size_t staged_remaining() const { return staged_remaining_; }

  /// Stage a pre-validated manifest for the next epoch. Returns the new
  /// staged epoch number. Caller must have run validate_deltas first.
  std::uint32_t stage(const PolicyManifest& deltas);

  /// Commit one class's staged policy (no-op without one). Called under the
  /// class's update lock by the data path.
  void commit_class(ClassId id, sim::SimTime now);

  /// Commit every remaining staged policy and advance the committed epoch to
  /// the staged one. Control-plane finish/rollback path.
  void commit_all(sim::SimTime now);

  /// Drop all staged policies and retract the staged epoch.
  void abandon_stage();

  // -- crash-recovery runtime snapshots (src/fault island restarts) --------
  // An island blackout wipes the workers that were actively mutating the
  // shared runtime block mid-burst; the restart path reconstructs a sane
  // runtime from a snapshot taken at injection instead of trusting whatever
  // half-written state the dead workers left behind (DESIGN.md §16).

  /// Per-class runtime worth persisting across a crash: the slow-moving Γ
  /// estimate and activity timestamps. Token/shadow credit and the epoch
  /// consumption counter are deliberately NOT captured — restoring them
  /// could double-grant bandwidth already spent before the crash.
  struct ClassRuntime {
    double gamma_value = 0.0;
    bool gamma_valid = false;
    sim::SimTime last_seen = 0;
    bool ever_seen = false;
  };
  struct RuntimeSnapshot {
    sim::SimTime at = 0;
    std::vector<ClassRuntime> classes;  // indexed by ClassId
  };

  RuntimeSnapshot snapshot_runtime() const;

  /// Crash-only restart: rebuild every class's runtime block conservatively
  /// from `snap` — buckets drained to zero (never grant burst credit the
  /// pre-crash epoch may already have spent), consumption counters reset,
  /// Γ/activity restored from the snapshot, then a full refresh_theta sweep
  /// re-derives θ/lendable top-down. Safe while traffic is flowing: every
  /// field it writes is one the data path re-derives on the next update
  /// epoch. Ignores snapshots whose class count mismatches (a reconfig that
  /// changed the tree shape between snapshot and restore).
  void restore_runtime(const RuntimeSnapshot& snap, sim::SimTime now);

 private:
  double sibling_weight_sum(const SchedClass& parent) const;

  FvParams params_;
  std::vector<SchedClass> nodes_;
  bool finalized_ = false;
  std::uint32_t epoch_ = 0;
  std::uint32_t staged_epoch_ = 0;
  std::size_t staged_remaining_ = 0;
};

}  // namespace flowvalve::core
