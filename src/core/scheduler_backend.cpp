#include "core/scheduler_backend.h"

#include <cassert>

namespace flowvalve::core {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kFlowValve: return "fv";
    case BackendKind::kStfq: return "stfq";
    case BackendKind::kEiffel: return "eiffel";
    case BackendKind::kSpPifo: return "sppifo";
  }
  return "?";
}

bool parse_backend_kind(std::string_view name, BackendKind& out) {
  if (name == "fv" || name == "flowvalve") {
    out = BackendKind::kFlowValve;
  } else if (name == "stfq" || name == "pifo") {
    out = BackendKind::kStfq;
  } else if (name == "eiffel") {
    out = BackendKind::kEiffel;
  } else if (name == "sppifo" || name == "sp-pifo") {
    out = BackendKind::kSpPifo;
  } else {
    return false;
  }
  return true;
}

SchedulerBackend::SchedulerBackend(SchedulingTree& tree,
                                   const LabelTable& labels,
                                   SchedulerCosts costs)
    : tree_(tree), labels_(labels), costs_(costs) {
  assert(tree.finalized() && "finalize() the tree before scheduling");
}

std::uint32_t SchedulerBackend::maybe_update(ClassId id, sim::SimTime now,
                                             std::uint32_t pkt_epoch,
                                             SchedDecision& d) {
  SchedClass& c = tree_.at(id);
  std::uint32_t cycles = 0;
  const bool wants_commit = tree_.rollout_active() && c.has_staged &&
                            pkt_epoch >= tree_.staged_epoch();
  if (!wants_commit && now - c.last_update < tree_.params().update_interval) return cycles;
  cycles += costs_.lock_attempt_cycles;
  ++d.lock_attempts;
  if (c.update_lock.try_acquire(now, costs_.lock_hold_ns)) {
    if (wants_commit) {
      // A packet from a cut-over worker pulls the staged policy in under the
      // same lock the update subprocedure already takes (Fig. 8): no extra
      // synchronization, just commit_cycles more inside the guarded section.
      tree_.commit_class(id, now);
      cycles += costs_.commit_cycles;
      ++stats_.policy_commits;
    }
    tree_.update_class(id, now);
    cycles += costs_.update_cycles;
    ++d.updates_run;
    ++stats_.updates;
  } else {
    // Another core is updating this class right now; we only meter
    // (Fig. 8 — this does not compromise validity).
    ++stats_.lock_failures;
  }
  return cycles;
}

void SchedulerBackend::walk_path(const QosLabel& label, net::Packet& pkt,
                                 sim::SimTime now, SchedDecision& d) {
  // Record activity first: even packets that end up dropped represent
  // demand, which the expiry logic must see.
  tree_.touch(label.path, now);

  // Lines 1-5: walk the hierarchy class label, refreshing token buckets.
  for (ClassId id : label.path) {
    d.cycles += maybe_update(id, now, pkt.policy_epoch, d);
    d.cycles += costs_.count_cycles;
  }
}

void SchedulerBackend::book_drop(ClassId leaf, const net::Packet& pkt) {
  SchedClass& leaf_cls = tree_.at(leaf);
  ++leaf_cls.drop_packets;
  leaf_cls.drop_bytes += pkt.wire_bytes;
  ++stats_.dropped;
}

SchedDecision SchedulerBackend::repeat_tail_drop(net::Packet& pkt,
                                                 sim::SimTime now,
                                                 const SchedDecision& prev) {
  assert(pkt.label != net::kUnclassified && "packet must be labeled first");
  assert(prev.verdict == Verdict::kDrop && !prev.borrowed &&
         prev.updates_run == 0 && !tree_.rollout_active());
  (void)now;
  const QosLabel& label = labels_.get(pkt.label);
  // With updates_run == 0 every lock attempt the predecessor made was a
  // failure, and a lock held past `now` fails identically for this packet's
  // same-instant attempts — re-book them without touching the locks.
  stats_.lock_failures += prev.lock_attempts;
  book_drop(label.path.back(), pkt);
  return prev;
}

}  // namespace flowvalve::core
