// SchedulerBackend — the scheduling discipline as a strategy.
//
// The paper's architectural claim is that what makes offloaded scheduling
// fast on an NP is the *contention structure* — per-class try-locks
// arbitrating the update subprocedure while everyone else only meters
// (Fig. 8) — not the particular discipline that consumes the resulting θ
// rates. This interface makes that claim executable: the base class owns
// everything discipline-independent (the root→leaf walk, the try-lock +
// staged-policy-commit machinery, cycle accounting, forward/drop
// bookkeeping) and a backend supplies only decide(): given a labeled packet
// whose path state is fresh, FORWARD or DROP.
//
// Backends never queue. A rank-based discipline (STFQ/PIFO, Eiffel,
// SP-PIFO) is expressed as a *valve*: the rank a PIFO would insert at
// becomes an admission test against a bounded lead over virtual time, so
// the discipline still shapes who gets the wire without requiring the
// insertion-anywhere queue hardware the paper argues NPs don't have.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "core/classifier.h"
#include "core/sched_tree.h"
#include "net/packet.h"
#include "sim/time.h"

namespace flowvalve::core {

enum class Verdict : std::uint8_t { kForward, kDrop };

/// Selectable scheduling disciplines behind the shared contention structure.
enum class BackendKind : std::uint8_t {
  kFlowValve,  // scheduling tree + token buckets + shadow-bucket borrowing
  kStfq,       // PIFO/STFQ start-time ranks as a drop-based admission valve
  kEiffel,     // STFQ ranks tracked in an Eiffel FFS bucket-queue calendar
  kSpPifo,     // STFQ ranks + SP-PIFO adaptive strict-priority banding
};

const char* backend_kind_name(BackendKind kind);
/// Parse "fv|flowvalve", "stfq|pifo", "eiffel", "sppifo|sp-pifo".
/// Returns false (and leaves `out` untouched) on an unknown name.
bool parse_backend_kind(std::string_view name, BackendKind& out);

/// Cycle cost model for Algorithm 1's constituent operations on the NFP:
/// atomic counter adds and the meter instruction are cheap hardware ops;
/// the update subprocedure does guarded multiplies/divides (§IV-D). Rank
/// backends reuse the same budget: a rank computation + admission compare
/// is modeled at meter cost, a calendar insert/scan at count cost.
struct SchedulerCosts {
  std::uint32_t lock_attempt_cycles = 10;
  std::uint32_t update_cycles = 320;        // guarded θ recomputation
  std::uint32_t count_cycles = 18;          // atomic add per class
  std::uint32_t meter_cycles = 40;          // atomic meter instruction
  std::uint32_t borrow_query_cycles = 55;   // shadow bucket meter per lender
  std::uint32_t commit_cycles = 48;         // staged-policy word swap under the lock

  /// Virtual-time duration the update lock is held (update_cycles at the
  /// core frequency); the NP pipeline overrides this from its clock.
  sim::SimDuration lock_hold_ns = 267;
};

/// Per-call outcome with the micro-engine cycles consumed, fed into the NP
/// pipeline's capacity model.
struct SchedDecision {
  Verdict verdict = Verdict::kDrop;
  std::uint32_t cycles = 0;
  bool metered_green = false;   // leaf bucket had tokens (FlowValve only)
  bool borrowed = false;        // forwarded via a lender's shadow bucket
  ClassId borrowed_from = kNoClass;
  std::uint32_t updates_run = 0;    // classes whose update we executed
  std::uint32_t lock_attempts = 0;  // try-locks attempted (won or lost)
};

class SchedulerBackend {
 public:
  virtual ~SchedulerBackend() = default;

  virtual BackendKind kind() const = 0;

  /// The per-packet scheduling function. `now` is the virtual time at which
  /// the worker core runs. Every backend shares the same prologue (activity
  /// touch + root→leaf update walk under try-locks); only the verdict logic
  /// differs.
  virtual SchedDecision schedule(net::Packet& pkt, sim::SimTime now) = 0;

  /// Burst replay (see SchedulingFunction for the full argument): callers
  /// may re-apply a predecessor's decision for the next same-flow packet of
  /// one burst iff repeat_applicable() says the replay is pure. The default
  /// is "never applicable" — rank backends mutate virtual-time state on
  /// every call, so each packet must run the full discipline.
  virtual bool repeat_applicable(const net::Packet& /*prev_pkt*/,
                                 const net::Packet& /*pkt*/,
                                 const SchedDecision& /*prev*/) const {
    return false;
  }
  virtual SchedDecision repeat_tail_drop(net::Packet& pkt, sim::SimTime now,
                                         const SchedDecision& prev);

  /// Aggregate statistics. The first block is discipline-generic; the rank
  /// block stays zero under the FlowValve backend (src/obs exports both).
  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t borrowed = 0;
    std::uint64_t updates = 0;
    std::uint64_t lock_failures = 0;
    std::uint64_t policy_commits = 0;  // staged policies committed on-path

    // -- rank-backend extras ------------------------------------------------
    std::uint64_t rank_admissions = 0;     // forwarded through the rank valve
    std::uint64_t rank_lead_drops = 0;     // finish tag too far ahead of V
    std::uint64_t rank_horizon_drops = 0;  // beyond the Eiffel wheel horizon
    std::uint64_t calendar_rebases = 0;    // Eiffel wheel origin shifts
    std::uint64_t band_adaptations = 0;    // SP-PIFO bound push-up/push-down
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  SchedulingTree& tree() { return tree_; }

 protected:
  SchedulerBackend(SchedulingTree& tree, const LabelTable& labels,
                   SchedulerCosts costs);

  /// Run the update subprocedure for `id` if its epoch elapsed and the
  /// try-lock is won; returns cycles spent. `pkt_epoch` is the policy epoch
  /// the dispatching worker had cut over to: a new-epoch packet that wins a
  /// class's lock also commits that class's staged policy (monotonic
  /// per-class cutover riding the paper's try-lock cycle budget). This is
  /// the contention structure every backend shares — which is also what
  /// keeps the ctrl-plane epoch rollout working under any discipline.
  std::uint32_t maybe_update(ClassId id, sim::SimTime now,
                             std::uint32_t pkt_epoch, SchedDecision& d);

  /// Shared prologue: record activity, then walk the hierarchy class label
  /// root→leaf running maybe_update + the atomic per-class count.
  void walk_path(const QosLabel& label, net::Packet& pkt, sim::SimTime now,
                 SchedDecision& d);

  /// Shared drop epilogue (leaf counters + stats).
  void book_drop(ClassId leaf, const net::Packet& pkt);

  SchedulingTree& tree_;
  const LabelTable& labels_;
  SchedulerCosts costs_;
  Stats stats_;
};

/// Construct the backend for `kind` over a finalized tree. Defined in
/// rank_backends.cpp so scheduling_function.cpp stays FlowValve-only.
std::unique_ptr<SchedulerBackend> make_backend(BackendKind kind,
                                               SchedulingTree& tree,
                                               const LabelTable& labels,
                                               SchedulerCosts costs);

}  // namespace flowvalve::core
