// The fv front end (paper §III-E): a tc-compatible command grammar that
// builds the scheduling tree, filter rules, and borrowing labels. The paper
// implements this part as a host-side Python service; here it is a small
// C++ parser so policies in examples/benches are declared exactly as an
// administrator would type them.
//
// Supported grammar (one command per line, '#' comments):
//   fv qdisc add dev DEV root handle H: (htb|prio) [rate RATE]
//   fv qdisc add dev DEV parent H:ID handle H2: (htb|prio) [bands N]
//       — qdisc chaining (§IV-A): attaches a child discipline under class
//         H:ID. "prio bands N" expands to N classes H2:0..H2:N-1 with
//         ascending strict priorities; "htb" just opens a new handle scope
//         whose classes nest under H:ID.
//   fv class add dev DEV parent H:[PID] classid H:ID
//        [rate RATE] [ceil RATE] [prio N] [weight W] [guarantee RATE] [name S]
//   fv filter add dev DEV [pref N] match [vf N] [proto tcp|udp]
//        [src A.B.C.D/L] [dst A.B.C.D/L] [sport N] [dport N] classid H:ID
//   fv borrow add dev DEV classid H:ID from H:ID[,H:ID...]
//
// RATE := <number>(bit|kbit|mbit|gbit)   e.g. 10gbit, 500mbit, 2.5gbit
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/classifier.h"
#include "core/sched_tree.h"

namespace flowvalve::core {

/// Parse "10gbit" style rate strings. Throws std::invalid_argument on
/// malformed input.
Rate parse_rate(std::string_view text);

/// Parse "A.B.C.D" dotted quad. Throws std::invalid_argument.
std::uint32_t parse_ipv4(std::string_view text);

class FvFrontend {
 public:
  explicit FvFrontend(FvParams params = {});
  /// Full plumbing: cycle-cost model and flow-cache geometry for the
  /// classifier (FlowValveEngine::Options carries both).
  FvFrontend(FvParams params, ClassifierCosts classifier_costs,
             ExactMatchFlowCache::Options emc);

  /// Apply one fv command. Throws std::invalid_argument with a message
  /// pointing at the offending token on parse errors.
  void apply(std::string_view command);

  /// Apply a multi-line script (blank lines and '#' comments ignored).
  void apply_script(std::string_view script);

  /// Freeze the configuration: finalize the tree, intern one QoS label per
  /// leaf (hierarchy path + its borrowing list), and resolve filters.
  /// Returns a human-readable error or empty string on success.
  std::string finalize(sim::SimTime now = 0);

  SchedulingTree& tree() { return tree_; }
  const SchedulingTree& tree() const { return tree_; }
  LabelTable& labels() { return labels_; }
  const LabelTable& labels() const { return labels_; }
  Classifier& classifier() { return classifier_; }
  const Classifier& classifier() const { return classifier_; }

  /// Label id assigned to a leaf class (valid after finalize()).
  ClassLabelId label_of(ClassId leaf) const;
  ClassLabelId label_of(std::string_view class_name) const;

  /// Resolve "H:ID" notation to the internal ClassId (kNoClass if unknown).
  ClassId resolve_classid(std::string_view classid) const;

  bool finalized() const { return finalized_; }

 private:
  struct PendingFilter {
    FilterRule rule;
    std::string target_classid;
  };

  void cmd_qdisc(const std::vector<std::string>& tok);
  void cmd_class(const std::vector<std::string>& tok);
  void cmd_filter(const std::vector<std::string>& tok);
  void cmd_borrow(const std::vector<std::string>& tok);

  FvParams params_;
  SchedulingTree tree_;
  LabelTable labels_;
  Classifier classifier_;

  std::map<std::string, ClassId, std::less<>> classid_map_;  // "1:10" → id
  std::string default_classid_;                              // qdisc 'default'
  std::map<ClassId, std::vector<std::string>> borrow_specs_; // leaf → classids
  std::vector<PendingFilter> pending_filters_;
  std::map<ClassId, ClassLabelId> leaf_labels_;
  bool finalized_ = false;
};

}  // namespace flowvalve::core
