// The FlowValve scheduling function — paper Algorithm 1 — as the default
// SchedulerBackend.
//
// Executed by every (virtual) micro-engine for every packet after labeling:
// walk the hierarchy class label root→leaf, try-locking each class to run
// the update subprocedure (losers only meter — Fig. 8), meter at the leaf,
// and on RED walk the borrowing class label's shadow buckets. The function
// never queues a packet: the decision is FORWARD (into the shared Tx FIFO)
// or DROP (the "specialized tail drop" that assigns buffers conceptually).
//
// The walk/try-lock/commit scaffolding lives in SchedulerBackend (shared
// with the rank backends in rank_backends.h); this class adds what is
// FlowValve-specific — leaf metering and shadow-bucket borrowing.
#pragma once

#include <cstdint>

#include "core/scheduler_backend.h"

namespace flowvalve::core {

class SchedulingFunction final : public SchedulerBackend {
 public:
  SchedulingFunction(SchedulingTree& tree, const LabelTable& labels,
                     SchedulerCosts costs = {});

  BackendKind kind() const override { return BackendKind::kFlowValve; }

  /// Algorithm 1. `now` is the virtual time at which the worker core runs.
  SchedDecision schedule(net::Packet& pkt, sim::SimTime now) override;

  /// Amortized replay for the 2nd..Nth same-flow packet of one worker burst
  /// whose burst-predecessor's decision `prev` (same label, same wire
  /// occupancy, same `now`) was a borrow-free tail drop that ran no
  /// updates. Under those gates a full schedule() call is a pure replay —
  /// touch is idempotent at the same instant, every maybe_update is gated
  /// off (interval unelapsed and no rollout commit pending; a lock held
  /// past `now` fails identically for every same-instant attempt with the
  /// same cycle count), the empty leaf bucket cannot refill within the
  /// instant, and the borrow walk re-queries the same empty shadows — so
  /// only the drop bookkeeping is re-run. Callers must check
  /// repeat_applicable() first.
  bool repeat_applicable(const net::Packet& prev_pkt, const net::Packet& pkt,
                         const SchedDecision& prev) const override {
    return prev.verdict == Verdict::kDrop && !prev.borrowed &&
           prev.updates_run == 0 && !tree_.rollout_active() &&
           pkt.wire_occupancy_bytes() == prev_pkt.wire_occupancy_bytes() &&
           pkt.label == prev_pkt.label &&
           pkt.policy_epoch == prev_pkt.policy_epoch;
  }
};

}  // namespace flowvalve::core
