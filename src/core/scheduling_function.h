// The scheduling function — paper Algorithm 1.
//
// Executed by every (virtual) micro-engine for every packet after labeling:
// walk the hierarchy class label root→leaf, try-locking each class to run
// the update subprocedure (losers only meter — Fig. 8), meter at the leaf,
// and on RED walk the borrowing class label's shadow buckets. The function
// never queues a packet: the decision is FORWARD (into the shared Tx FIFO)
// or DROP (the "specialized tail drop" that assigns buffers conceptually).
#pragma once

#include <cstdint>

#include "core/classifier.h"
#include "core/sched_tree.h"
#include "net/packet.h"
#include "sim/time.h"

namespace flowvalve::core {

enum class Verdict : std::uint8_t { kForward, kDrop };

/// Cycle cost model for Algorithm 1's constituent operations on the NFP:
/// atomic counter adds and the meter instruction are cheap hardware ops;
/// the update subprocedure does guarded multiplies/divides (§IV-D).
struct SchedulerCosts {
  std::uint32_t lock_attempt_cycles = 10;
  std::uint32_t update_cycles = 320;        // guarded θ recomputation
  std::uint32_t count_cycles = 18;          // atomic add per class
  std::uint32_t meter_cycles = 40;          // atomic meter instruction
  std::uint32_t borrow_query_cycles = 55;   // shadow bucket meter per lender
  std::uint32_t commit_cycles = 48;         // staged-policy word swap under the lock

  /// Virtual-time duration the update lock is held (update_cycles at the
  /// core frequency); the NP pipeline overrides this from its clock.
  sim::SimDuration lock_hold_ns = 267;
};

/// Per-call outcome with the micro-engine cycles consumed, fed into the NP
/// pipeline's capacity model.
struct SchedDecision {
  Verdict verdict = Verdict::kDrop;
  std::uint32_t cycles = 0;
  bool metered_green = false;   // leaf bucket had tokens
  bool borrowed = false;        // forwarded via a lender's shadow bucket
  ClassId borrowed_from = kNoClass;
  std::uint32_t updates_run = 0;    // classes whose update we executed
  std::uint32_t lock_attempts = 0;  // try-locks attempted (won or lost)
};

class SchedulingFunction {
 public:
  SchedulingFunction(SchedulingTree& tree, const LabelTable& labels,
                     SchedulerCosts costs = {});

  /// Algorithm 1. `now` is the virtual time at which the worker core runs.
  SchedDecision schedule(net::Packet& pkt, sim::SimTime now);

  /// Amortized replay for the 2nd..Nth same-flow packet of one worker burst
  /// whose burst-predecessor's decision `prev` (same label, same wire
  /// occupancy, same `now`) was a borrow-free tail drop that ran no
  /// updates. Under those gates a full schedule() call is a pure replay —
  /// touch is idempotent at the same instant, every maybe_update is gated
  /// off (interval unelapsed and no rollout commit pending; a lock held
  /// past `now` fails identically for every same-instant attempt with the
  /// same cycle count), the empty leaf bucket cannot refill within the
  /// instant, and the borrow walk re-queries the same empty shadows — so
  /// only the drop bookkeeping is re-run. Callers must check
  /// repeat_applicable() first.
  SchedDecision repeat_tail_drop(net::Packet& pkt, sim::SimTime now,
                                 const SchedDecision& prev);
  bool repeat_applicable(const net::Packet& prev_pkt, const net::Packet& pkt,
                         const SchedDecision& prev) const {
    return prev.verdict == Verdict::kDrop && !prev.borrowed &&
           prev.updates_run == 0 && !tree_.rollout_active() &&
           pkt.wire_occupancy_bytes() == prev_pkt.wire_occupancy_bytes() &&
           pkt.label == prev_pkt.label &&
           pkt.policy_epoch == prev_pkt.policy_epoch;
  }

  /// Aggregate statistics for the ablation benches.
  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t borrowed = 0;
    std::uint64_t updates = 0;
    std::uint64_t lock_failures = 0;
    std::uint64_t policy_commits = 0;  // staged policies committed on-path
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  SchedulingTree& tree() { return tree_; }

 private:
  /// Run the update subprocedure for `id` if its epoch elapsed and the
  /// try-lock is won; returns cycles spent. `pkt_epoch` is the policy epoch
  /// the dispatching worker had cut over to: a new-epoch packet that wins a
  /// class's lock also commits that class's staged policy (monotonic
  /// per-class cutover riding the paper's try-lock cycle budget).
  std::uint32_t maybe_update(ClassId id, sim::SimTime now, std::uint32_t pkt_epoch,
                             SchedDecision& d);

  SchedulingTree& tree_;
  const LabelTable& labels_;
  SchedulerCosts costs_;
  Stats stats_;
};

}  // namespace flowvalve::core
