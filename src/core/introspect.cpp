#include "core/introspect.h"

#include <functional>
#include <sstream>

#include "stats/stats.h"

namespace flowvalve::core {
namespace {

void visit_preorder(const SchedulingTree& tree, ClassId id,
                    const std::function<void(const SchedClass&)>& fn) {
  const SchedClass& c = tree.at(id);
  fn(c);
  for (ClassId child : c.children) visit_preorder(tree, child, fn);
}

ClassSnapshot snap(const SchedClass& c) {
  ClassSnapshot s;
  s.name = c.name;
  s.id = c.id;
  s.depth = c.depth;
  s.leaf = c.is_leaf();
  s.prio = c.policy.prio;
  s.weight = c.policy.weight;
  s.guarantee_gbps = c.policy.guarantee.gbps();
  s.ceil_gbps = c.policy.ceil.gbps();
  s.theta_gbps = c.theta.gbps();
  s.gamma_gbps = c.gamma().gbps();
  s.lendable_gbps = c.lendable.gbps();
  s.fwd_packets = c.fwd_packets;
  s.fwd_bytes = c.fwd_bytes;
  s.drop_packets = c.drop_packets;
  s.borrowed_bytes = c.borrowed_bytes;
  return s;
}

}  // namespace

std::vector<ClassSnapshot> snapshot_classes(const SchedulingTree& tree) {
  std::vector<ClassSnapshot> out;
  if (tree.size() == 0) return out;
  visit_preorder(tree, tree.root(), [&](const SchedClass& c) { out.push_back(snap(c)); });
  return out;
}

std::string render_class_show(const SchedulingTree& tree) {
  std::ostringstream out;
  char buf[256];
  for (const auto& s : snapshot_classes(tree)) {
    std::string indent(static_cast<std::size_t>(s.depth) * 2, ' ');
    std::snprintf(buf, sizeof(buf),
                  "%s%-12s prio %u weight %-5.2f%s%s\n", indent.c_str(),
                  (s.name + (s.leaf ? "" : "*")).c_str(), s.prio, s.weight,
                  s.guarantee_gbps > 0
                      ? (" guarantee " + stats::TablePrinter::fmt(s.guarantee_gbps) + "G")
                            .c_str()
                      : "",
                  s.ceil_gbps < 1e5
                      ? (" ceil " + stats::TablePrinter::fmt(s.ceil_gbps) + "G").c_str()
                      : "");
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "%s  theta %.2fG gamma %.2fG lendable %.2fG | fwd %llu pkts "
                  "(%.2f GB) drop %llu borrow %.1f MB\n",
                  indent.c_str(), s.theta_gbps, s.gamma_gbps, s.lendable_gbps,
                  static_cast<unsigned long long>(s.fwd_packets),
                  static_cast<double>(s.fwd_bytes) / 1e9,
                  static_cast<unsigned long long>(s.drop_packets),
                  static_cast<double>(s.borrowed_bytes) / 1e6);
    out << buf;
  }
  return out.str();
}

std::string render_stats_export(const SchedulingTree& tree) {
  std::ostringstream out;
  for (const auto& s : snapshot_classes(tree)) {
    out << s.name << ".theta_gbps " << s.theta_gbps << '\n';
    out << s.name << ".gamma_gbps " << s.gamma_gbps << '\n';
    out << s.name << ".lendable_gbps " << s.lendable_gbps << '\n';
    out << s.name << ".fwd_packets " << s.fwd_packets << '\n';
    out << s.name << ".fwd_bytes " << s.fwd_bytes << '\n';
    out << s.name << ".drop_packets " << s.drop_packets << '\n';
    out << s.name << ".borrowed_bytes " << s.borrowed_bytes << '\n';
  }
  return out.str();
}

std::string render_engine_summary(const FlowValveEngine& engine) {
  std::ostringstream out;
  const auto& cache = engine.frontend().classifier().cache().stats();
  out << "classes=" << engine.tree().size()
      << " labels=" << engine.frontend().labels().size()
      << " cache_hit_rate=" << stats::TablePrinter::fmt(cache.hit_rate() * 100.0, 1)
      << "%";
  if (engine.ready()) {
    const auto& st = engine.frontend();
    (void)st;
    out << " forwarded=" << engine.tree().at(engine.tree().root()).fwd_packets;
  }
  return out.str();
}

}  // namespace flowvalve::core
