// Introspection of a running FlowValve engine — the `fv show` side of the
// CLI (mirroring `tc -s qdisc/class show`): human-readable scheduling-tree
// dumps with live rates, and a machine-readable key=value export.
#pragma once

#include <string>

#include "core/flowvalve.h"

namespace flowvalve::core {

/// One row of `fv class show`: configuration + live runtime state.
struct ClassSnapshot {
  std::string name;
  ClassId id = kNoClass;
  int depth = 0;
  bool leaf = false;
  PrioLevel prio = 0;
  double weight = 1.0;
  double guarantee_gbps = 0.0;
  double ceil_gbps = 0.0;
  double theta_gbps = 0.0;
  double gamma_gbps = 0.0;
  double lendable_gbps = 0.0;
  std::uint64_t fwd_packets = 0;
  std::uint64_t fwd_bytes = 0;
  std::uint64_t drop_packets = 0;
  std::uint64_t borrowed_bytes = 0;
};

/// Snapshot every class (pre-order: parents before children).
std::vector<ClassSnapshot> snapshot_classes(const SchedulingTree& tree);

/// `fv class show` — an indented tree with policy and live columns.
std::string render_class_show(const SchedulingTree& tree);

/// `fv -s show` — flat `class.key value` lines, one per datum; stable order,
/// intended for scripts/tests to parse.
std::string render_stats_export(const SchedulingTree& tree);

/// One-line summary of the engine (classes, filters, cache hit rate).
std::string render_engine_summary(const FlowValveEngine& engine);

}  // namespace flowvalve::core
