// The labeling function (paper Fig. 5): filter rules, the exact-match flow
// cache (modeling Netronome's EMC with its dedicated lookup engines,
// Observation 2), and the label table mapping match results to QoS labels.
//
// The flow cache is a bucketized cuckoo hash table (DESIGN.md §14) sized
// for millions of concurrent (vf, five-tuple) keys: two bucket candidates
// derived from one splitmix64-mixed 64-bit hash, 4-slot buckets, a
// bounded-length BFS kick path on insert (never an unbounded loop on the
// data path), idle-entry eviction amortized into lookups, and an explicit
// degraded mode — under a collision storm the cache stops admitting
// inserts, classification falls back to the honest rule-walk cost, and
// admission resumes gradually (hysteresis, no flush) once pressure clears.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sched_tree.h"
#include "net/packet.h"

namespace flowvalve::core {

using net::ClassLabelId;
using net::FiveTuple;
using net::IpProto;

/// Interns QoS labels; packets carry only the small id.
class LabelTable {
 public:
  ClassLabelId intern(QosLabel label);
  const QosLabel& get(ClassLabelId id) const { return labels_[id]; }
  std::size_t size() const { return labels_.size(); }

 private:
  std::vector<QosLabel> labels_;
};

/// A tc-style filter rule. Unset optionals are wildcards; ip prefixes use
/// mask lengths. Rules are evaluated in ascending `pref` order (first match
/// wins), mirroring `tc filter ... pref N`.
struct FilterRule {
  std::uint32_t pref = 100;

  std::optional<std::uint16_t> vf_port;
  std::optional<IpProto> proto;
  std::uint32_t src_ip = 0;
  std::uint8_t src_prefix_len = 0;  // 0 = any
  std::uint32_t dst_ip = 0;
  std::uint8_t dst_prefix_len = 0;  // 0 = any
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<std::uint8_t> dscp;

  ClassLabelId label = net::kUnclassified;  // assigned label on match
  std::string name;                         // for diagnostics

  bool matches(std::uint16_t pkt_vf, const FiveTuple& t, std::uint8_t pkt_dscp) const;
};

/// Cycle cost model of the labeling path, used by the NP pipeline to charge
/// micro-engine time (Observation 2: the EMC is ~10x faster than a software
/// rule walk).
struct ClassifierCosts {
  std::uint32_t cache_hit_cycles = 120;
  std::uint32_t cache_miss_cycles = 250;     // hash + failed lookup
  std::uint32_t per_rule_cycles = 90;        // wildcard rule comparison
  std::uint32_t cache_insert_cycles = 150;
  std::uint32_t per_kick_cycles = 35;        // one cuckoo displacement
};

/// Exact-match flow cache: (vf, five-tuple) → label. Bucketized cuckoo hash
/// table: every key has exactly two candidate buckets of kSlots entries
/// each; inserts displace residents along a BFS-discovered kick path of
/// bounded length, falling back to a stalest-entry eviction when no path
/// exists within the budget.
class ExactMatchFlowCache {
 public:
  static constexpr std::size_t kSlots = 4;  // entries per bucket

  /// VF ids reserved for fault-injected synthetic keys; real traffic never
  /// carries them, so storm entries can never alias a live flow's label.
  static constexpr std::uint16_t kCollisionStormVf = 0xFFFF;
  static constexpr std::uint16_t kChurnStormVf = 0xFFFE;

  /// splitmix64 finalizer behind every hash in the table (bucket indices
  /// and integrity tags): full avalanche, so every output bit depends on
  /// every key bit. The old `hash ^ vf * 0x9e37` mix barely perturbed the
  /// high half and aliased VFs into the same sets; public so the
  /// distribution test can lock the avalanche property directly.
  static constexpr std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  struct Options {
    /// Requested capacity in entries. Clamped in the constructor: at least
    /// two buckets (a cuckoo table needs two distinct candidates), rounded
    /// up to a power-of-two bucket count so the index masks are valid for
    /// any value — zero and non-multiples of kSlots are safe.
    std::size_t capacity = 64 * 1024;
    /// Evict entries not touched for this many ticks, amortized into
    /// lookups (one extra bucket swept per probe). 0 disables idle
    /// eviction, preserving pure-LRU pressure eviction.
    std::uint64_t idle_timeout_ticks = 0;
    /// BFS kick search: at most this many buckets expanded per insert, and
    /// no kick chain longer than max_kick_depth displacements.
    std::uint32_t kick_budget = 64;
    std::uint32_t max_kick_depth = 4;
    /// Degraded-mode state machine (all thresholds in lookups, so the
    /// machine is deterministic for a deterministic packet sequence).
    std::uint32_t degrade_threshold = 16;   // failure score → kDegraded
    std::uint32_t relapse_threshold = 4;    // score during kRecovering → back
    std::uint32_t failure_score_cap = 64;
    std::uint32_t decay_interval_lookups = 64;   // score -1 per interval
    std::uint32_t min_degraded_dwell = 1024;     // lookups before recovery
    std::uint32_t recovery_admit_every = 8;      // admit 1-in-N inserts
    std::uint32_t recovery_clean_lookups = 1024; // quiet lookups → healthy
  };

  /// Insert-admission health (DESIGN.md §14). kDegraded suppresses all new
  /// inserts; kRecovering admits 1-in-recovery_admit_every. Lookups always
  /// proceed. Transitions are driven by the lookup stream, so a cache that
  /// stops seeing misses still heals.
  enum class Health : std::uint8_t { kHealthy, kDegraded, kRecovering };

  explicit ExactMatchFlowCache(std::size_t capacity = 64 * 1024)
      : ExactMatchFlowCache(Options{.capacity = capacity}) {}
  explicit ExactMatchFlowCache(Options options);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// Entries lazily invalidated because their label epoch was stale — a
    /// live reconfiguration moved the label space from under them (no full
    /// flush, stale hits re-classify instead).
    std::uint64_t stale_invalidations = 0;
    /// Idle entries reclaimed by the amortized lookup-time sweep.
    std::uint64_t idle_evictions = 0;
    /// Cuckoo displacements performed (one per entry moved on a kick path).
    std::uint64_t kicks = 0;
    /// Inserts whose BFS found no kick path within budget (fell back to
    /// stalest-entry eviction, or were the trigger for degradation).
    std::uint64_t kick_failures = 0;
    /// Hits rejected because the entry's integrity tag did not match its
    /// (key, label, epoch) — poisoned state detected and invalidated.
    std::uint64_t corruption_detected = 0;
    /// Inserts refused by the degraded/recovering admission gate.
    std::uint64_t suppressed_inserts = 0;
    /// Times the cache entered kDegraded.
    std::uint64_t degraded_transitions = 0;
    /// Lookups served while degraded / while recovering (dwell counters —
    /// deterministic for a deterministic run, and exported via obs).
    std::uint64_t degraded_dwell_lookups = 0;
    std::uint64_t recovering_dwell_lookups = 0;
    double hit_rate() const {
      const auto total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// `epoch` is the current label epoch: a tuple match carrying a different
  /// epoch tag is invalidated in place and reported as a miss, so one stale
  /// entry costs one re-classification instead of a full cache flush.
  std::optional<ClassLabelId> lookup(std::uint16_t vf, const FiveTuple& t,
                                     std::uint64_t now_tick, std::uint32_t epoch = 0);

  /// Outcome of an insert attempt: whether the entry is now resident, and
  /// how many cuckoo displacements the kick path performed (0 on a direct
  /// slot, a refresh, or a suppressed insert).
  struct InsertOutcome {
    bool inserted = false;
    std::uint32_t kicks = 0;
  };
  InsertOutcome insert(std::uint16_t vf, const FiveTuple& t, ClassLabelId label,
                       std::uint64_t now_tick, std::uint32_t epoch = 0);
  void clear();

  /// Observational probe: is (vf, t) resident under `epoch` right now?
  /// Touches no stats and mutates nothing — for checkers and tests.
  std::optional<ClassLabelId> peek(std::uint16_t vf, const FiveTuple& t,
                                   std::uint32_t epoch = 0) const;

  /// Fault injection: drop every valid entry (an eviction storm). Unlike
  /// clear(), running stats survive and the flushed entries count as
  /// evictions. Returns the number of entries flushed.
  std::size_t invalidate_all();

  /// Fault injection: corrupt the label of every `stride`-th valid entry to
  /// (label + 1) % label_count — a deterministic model of EMC state
  /// corruption. By default the integrity tag is left stale, so the next
  /// lookup detects the corruption, invalidates the entry, and re-walks the
  /// rules (counted in corruption_detected). With fix_tag the tag is
  /// recomputed — silent corruption that serves the wrong class until the
  /// entry is evicted or flushed (used to validate the coherence checker).
  std::size_t poison(std::size_t stride, ClassLabelId label_count,
                     bool fix_tag = false);

  /// Fault injection, kHashCollisionStorm: force `n` synthetic keys
  /// (vf = kCollisionStormVf, tuples derived from `seed`) through the
  /// normal admission path but pinned to one seed-chosen bucket pair —
  /// adversarial same-bucket pressure that exhausts the kick budget while
  /// the table is mostly empty. Returns the number actually admitted.
  std::size_t fault_collision_storm(std::uint64_t seed, std::size_t n,
                                    std::uint64_t now_tick);

  /// Fault injection, kChurnStorm: force `n` synthetic uniformly-hashed
  /// keys (vf = kChurnStormVf) through the normal admission path — a flow
  /// arrival-rate spike that churns occupancy everywhere. Returns the
  /// number actually admitted.
  std::size_t fault_churn_storm(std::uint64_t seed, std::size_t n,
                                std::uint64_t now_tick);

  /// Account a repeat hit the batched data path elided: within one worker
  /// burst, the second and later packets of a flow would each have hit the
  /// entry the first lookup touched (or just inserted), so the amortized
  /// path charges hit cycles and books the hit here without re-probing.
  void count_repeat_hit() { ++stats_.hits; }

  const Stats& stats() const { return stats_; }
  Health health() const { return health_; }
  /// Current insert-failure pressure score (decays with lookups).
  std::uint32_t failure_score() const { return failure_score_; }
  /// Live entries currently resident.
  std::size_t size() const { return live_; }
  /// Total entry slots (buckets × kSlots) after constructor clamping.
  std::size_t capacity() const { return slots_.size(); }
  std::size_t bucket_count() const { return buckets_; }

  /// Monotonic counter that changes whenever any resident entry could have
  /// been added, removed, or relabeled — the batched data path's replay
  /// guard: an unchanged stamp means a previously-probed entry is still
  /// resident and unmodified.
  std::uint64_t mutation_stamp() const {
    return stats_.insertions + stats_.evictions + stats_.stale_invalidations +
           stats_.idle_evictions + stats_.corruption_detected + clears_;
  }

  /// Buckets by live-slot count (index 0..kSlots) — the per-set occupancy
  /// distribution exported via obs. O(capacity); for snapshots, not the
  /// data path.
  std::array<std::uint64_t, kSlots + 1> occupancy_histogram() const;

  const Options& options() const { return options_; }

 private:
  struct Entry {
    bool valid = false;
    std::uint16_t vf = 0;
    FiveTuple tuple;
    ClassLabelId label = net::kUnclassified;
    std::uint32_t epoch = 0;       // label epoch the entry was inserted under
    std::uint64_t last_used = 0;
    std::uint64_t hash = 0;        // mixed 64-bit key hash (bucket source)
    std::uint32_t alt_bucket = 0;  // the key's other candidate bucket
    std::uint64_t tag = 0;         // integrity tag over (hash, label, epoch)
  };

  std::uint64_t key_hash(std::uint16_t vf, const FiveTuple& t) const;
  std::uint32_t bucket_of(std::uint64_t hash) const;
  std::uint32_t alt_bucket_of(std::uint64_t hash, std::uint32_t b1) const;
  std::uint64_t entry_tag(std::uint64_t hash, ClassLabelId label,
                          std::uint32_t epoch) const;

  Entry* find_slot(std::uint32_t bucket, std::uint64_t hash, std::uint16_t vf,
                   const FiveTuple& t);
  const Entry* find_slot(std::uint32_t bucket, std::uint64_t hash,
                         std::uint16_t vf, const FiveTuple& t) const;

  /// The full admission path with explicit candidate buckets (the fault
  /// hooks pin these; normal inserts derive them from the hash).
  InsertOutcome insert_at(std::uint32_t b1, std::uint32_t b2, std::uint64_t hash,
                          std::uint16_t vf, const FiveTuple& t, ClassLabelId label,
                          std::uint64_t now_tick, std::uint32_t epoch);
  /// BFS for a kick path from {b1, b2} to a free slot within the budget.
  /// On success performs the displacements and returns the freed slot.
  Entry* bfs_free_slot(std::uint32_t b1, std::uint32_t b2, std::uint32_t* kicks);
  void note_kick_failure();
  void note_lookup();
  void sweep_idle(std::uint64_t now_tick);
  void invalidate(Entry& e) {
    e.valid = false;
    --live_;
  }

  Options options_;
  std::vector<Entry> slots_;  // buckets_ × kSlots entries
  std::size_t buckets_ = 0;
  std::size_t live_ = 0;
  Stats stats_;
  std::uint64_t clears_ = 0;

  // Degraded-mode state machine (lookup-driven, deterministic).
  Health health_ = Health::kHealthy;
  std::uint32_t failure_score_ = 0;
  std::uint64_t lookup_serial_ = 0;
  std::uint64_t dwell_ = 0;          // lookups in the current non-healthy state
  std::uint64_t admit_counter_ = 0;  // 1-in-N admission while recovering

  std::size_t sweep_cursor_ = 0;  // amortized idle-sweep position (buckets)
};

const char* health_name(ExactMatchFlowCache::Health h);

/// The full labeling function: flow-cache fast path falling back to an
/// ordered rule walk; resolved labels are cached. A default label (e.g. a
/// best-effort class) catches unmatched traffic.
class Classifier {
 public:
  explicit Classifier(ClassifierCosts costs = {}, std::size_t cache_capacity = 64 * 1024);
  Classifier(ClassifierCosts costs, ExactMatchFlowCache::Options cache_options);

  void add_rule(FilterRule rule);
  /// Replace the whole rule set atomically (control-plane script swap).
  /// Existing cache entries stay resident but are lazily invalidated via the
  /// label epoch — call bump_label_epoch() after swapping.
  void replace_rules(std::vector<FilterRule> rules);
  void set_default_label(ClassLabelId label) { default_label_ = label; }
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  /// Advance the label epoch: every cache entry inserted before the bump is
  /// treated as a miss (and invalidated) on its next lookup.
  void bump_label_epoch() { ++label_epoch_; }
  std::uint32_t label_epoch() const { return label_epoch_; }

  struct Result {
    ClassLabelId label = net::kUnclassified;
    std::uint32_t cycles = 0;
    bool cache_hit = false;
    /// The flow's entry is guaranteed resident after this classification
    /// (it hit, or the miss path admitted the insert). False when the cache
    /// is disabled, the label was unclassified, or the degraded-mode gate
    /// suppressed the insert.
    bool resident = false;
  };

  /// Classify a packet; `now_tick` is any monotonically increasing counter
  /// (we pass virtual time) used for cache aging.
  Result classify(const net::Packet& pkt, std::uint64_t now_tick);

  /// Amortized classification for the 2nd..Nth same-flow packet of one
  /// worker burst, given the burst-first packet's `first` result at the
  /// same tick. Produces exactly what classify() would: the entry is
  /// guaranteed resident (the first lookup hit it, or the miss path just
  /// inserted it) with last_used == now_tick and the current label epoch,
  /// so a real probe would hit at cache_hit_cycles with no entry mutation.
  /// Callers must guard with repeat_would_hit() — when it is false (cache
  /// disabled, or the first classification left no resident entry) the
  /// repeat must re-run classify().
  Result classify_repeat(const Result& first);
  bool repeat_would_hit(const Result& first) const {
    return cache_enabled_ && first.resident;
  }

  bool cache_enabled() const { return cache_enabled_; }

  const ExactMatchFlowCache& cache() const { return cache_; }
  /// Mutable cache access for fault injection (poison / eviction storms).
  ExactMatchFlowCache& cache_for_fault() { return cache_; }
  std::size_t rule_count() const { return rules_.size(); }
  /// Rules in evaluation (pref) order — used by the MAT compiler and tests.
  const std::vector<FilterRule>& rules() const { return rules_; }
  ClassLabelId default_label() const { return default_label_; }

  /// The label a fresh rule walk would assign right now — the coherence
  /// oracle (CacheCoherenceChecker): every cache hit must agree with this.
  ClassLabelId rule_walk_label(std::uint16_t vf, const FiveTuple& t) const;

 private:
  ClassifierCosts costs_;
  std::vector<FilterRule> rules_;  // kept sorted by pref
  ClassLabelId default_label_ = net::kUnclassified;
  ExactMatchFlowCache cache_;
  bool cache_enabled_ = true;
  std::uint32_t label_epoch_ = 0;
};

}  // namespace flowvalve::core
