// The labeling function (paper Fig. 5): filter rules, the exact-match flow
// cache (modeling Netronome's EMC with its dedicated lookup engines,
// Observation 2), and the label table mapping match results to QoS labels.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sched_tree.h"
#include "net/packet.h"

namespace flowvalve::core {

using net::ClassLabelId;
using net::FiveTuple;
using net::IpProto;

/// Interns QoS labels; packets carry only the small id.
class LabelTable {
 public:
  ClassLabelId intern(QosLabel label);
  const QosLabel& get(ClassLabelId id) const { return labels_[id]; }
  std::size_t size() const { return labels_.size(); }

 private:
  std::vector<QosLabel> labels_;
};

/// A tc-style filter rule. Unset optionals are wildcards; ip prefixes use
/// mask lengths. Rules are evaluated in ascending `pref` order (first match
/// wins), mirroring `tc filter ... pref N`.
struct FilterRule {
  std::uint32_t pref = 100;

  std::optional<std::uint16_t> vf_port;
  std::optional<IpProto> proto;
  std::uint32_t src_ip = 0;
  std::uint8_t src_prefix_len = 0;  // 0 = any
  std::uint32_t dst_ip = 0;
  std::uint8_t dst_prefix_len = 0;  // 0 = any
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<std::uint8_t> dscp;

  ClassLabelId label = net::kUnclassified;  // assigned label on match
  std::string name;                         // for diagnostics

  bool matches(std::uint16_t pkt_vf, const FiveTuple& t, std::uint8_t pkt_dscp) const;
};

/// Cycle cost model of the labeling path, used by the NP pipeline to charge
/// micro-engine time (Observation 2: the EMC is ~10x faster than a software
/// rule walk).
struct ClassifierCosts {
  std::uint32_t cache_hit_cycles = 120;
  std::uint32_t cache_miss_cycles = 250;     // hash + failed lookup
  std::uint32_t per_rule_cycles = 90;        // wildcard rule comparison
  std::uint32_t cache_insert_cycles = 150;
};

/// Exact-match flow cache: (vf, five-tuple) → label. Fixed capacity with
/// bucketed eviction (4-way set associative, evict the stalest way), which
/// is how hardware flow caches behave under pressure.
class ExactMatchFlowCache {
 public:
  explicit ExactMatchFlowCache(std::size_t capacity = 64 * 1024);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// Entries lazily invalidated because their label epoch was stale — a
    /// live reconfiguration moved the label space from under them (tentpole
    /// satellite: no full flush, stale hits re-classify instead).
    std::uint64_t stale_invalidations = 0;
    double hit_rate() const {
      const auto total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// `epoch` is the current label epoch: a tuple match carrying a different
  /// epoch tag is invalidated in place and reported as a miss, so one stale
  /// entry costs one re-classification instead of a full cache flush.
  std::optional<ClassLabelId> lookup(std::uint16_t vf, const FiveTuple& t,
                                     std::uint64_t now_tick, std::uint32_t epoch = 0);
  void insert(std::uint16_t vf, const FiveTuple& t, ClassLabelId label,
              std::uint64_t now_tick, std::uint32_t epoch = 0);
  void clear();

  /// Fault injection: drop every valid entry (an eviction storm). Unlike
  /// clear(), running stats survive and the flushed entries count as
  /// evictions. Returns the number of entries flushed.
  std::size_t invalidate_all();

  /// Fault injection: corrupt the label of every `stride`-th valid entry to
  /// (label + 1) % label_count — a deterministic model of EMC state
  /// corruption. Subsequent hits return the wrong class until the entry is
  /// evicted or flushed. Returns the number of entries poisoned.
  std::size_t poison(std::size_t stride, ClassLabelId label_count);

  /// Account a repeat hit the batched data path elided: within one worker
  /// burst, the second and later packets of a flow would each have hit the
  /// entry the first lookup touched (or just inserted), so the amortized
  /// path charges hit cycles and books the hit here without re-probing.
  void count_repeat_hit() { ++stats_.hits; }

  const Stats& stats() const { return stats_; }
  std::size_t capacity() const { return ways_.size(); }

 private:
  struct Entry {
    bool valid = false;
    std::uint16_t vf = 0;
    FiveTuple tuple;
    ClassLabelId label = net::kUnclassified;
    std::uint64_t last_used = 0;
    std::uint32_t epoch = 0;  // label epoch the entry was inserted under
  };
  static constexpr std::size_t kWays = 4;

  std::size_t set_index(std::uint16_t vf, const FiveTuple& t) const;

  std::vector<Entry> ways_;  // sets_ * kWays entries
  std::size_t sets_ = 0;
  Stats stats_;
};

/// The full labeling function: flow-cache fast path falling back to an
/// ordered rule walk; resolved labels are cached. A default label (e.g. a
/// best-effort class) catches unmatched traffic.
class Classifier {
 public:
  explicit Classifier(ClassifierCosts costs = {}, std::size_t cache_capacity = 64 * 1024);

  void add_rule(FilterRule rule);
  /// Replace the whole rule set atomically (control-plane script swap).
  /// Existing cache entries stay resident but are lazily invalidated via the
  /// label epoch — call bump_label_epoch() after swapping.
  void replace_rules(std::vector<FilterRule> rules);
  void set_default_label(ClassLabelId label) { default_label_ = label; }
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  /// Advance the label epoch: every cache entry inserted before the bump is
  /// treated as a miss (and invalidated) on its next lookup.
  void bump_label_epoch() { ++label_epoch_; }
  std::uint32_t label_epoch() const { return label_epoch_; }

  struct Result {
    ClassLabelId label = net::kUnclassified;
    std::uint32_t cycles = 0;
    bool cache_hit = false;
  };

  /// Classify a packet; `now_tick` is any monotonically increasing counter
  /// (we pass virtual time) used for cache aging.
  Result classify(const net::Packet& pkt, std::uint64_t now_tick);

  /// Amortized classification for the 2nd..Nth same-flow packet of one
  /// worker burst, given the burst-first packet's `first` result at the
  /// same tick. Produces exactly what classify() would: the entry is
  /// guaranteed resident (the first lookup hit it, or the miss path just
  /// inserted it) with last_used == now_tick and the current label epoch,
  /// so a real probe would hit at cache_hit_cycles with no entry mutation.
  /// Callers must guard with repeat_would_hit() — when it is false (cache
  /// disabled, or an unclassified first result was never inserted) the
  /// repeat must re-run classify().
  Result classify_repeat(const Result& first);
  bool repeat_would_hit(const Result& first) const {
    return cache_enabled_ &&
           (first.cache_hit || first.label != net::kUnclassified);
  }

  bool cache_enabled() const { return cache_enabled_; }

  const ExactMatchFlowCache& cache() const { return cache_; }
  /// Mutable cache access for fault injection (poison / eviction storms).
  ExactMatchFlowCache& cache_for_fault() { return cache_; }
  std::size_t rule_count() const { return rules_.size(); }
  /// Rules in evaluation (pref) order — used by the MAT compiler and tests.
  const std::vector<FilterRule>& rules() const { return rules_; }
  ClassLabelId default_label() const { return default_label_; }

 private:
  ClassifierCosts costs_;
  std::vector<FilterRule> rules_;  // kept sorted by pref
  ClassLabelId default_label_ = net::kUnclassified;
  ExactMatchFlowCache cache_;
  bool cache_enabled_ = true;
  std::uint32_t label_epoch_ = 0;
};

}  // namespace flowvalve::core
