#include "core/rank_backends.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/scheduling_function.h"

namespace flowvalve::core {

// ---------------------------------------------------------------------------
// StfqBackend
// ---------------------------------------------------------------------------

StfqBackend::StfqBackend(SchedulingTree& tree, const LabelTable& labels,
                         SchedulerCosts costs)
    : SchedulerBackend(tree, labels, costs), finish_(tree.size(), 0.0) {}

bool StfqBackend::rank(const QosLabel& label, sim::SimTime now,
                       RankView& rv) {
  // V advances at the link (root θ) rate in real time: with normalized
  // weights summing to ~1 over active classes, total admission tracks the
  // wire and the valve stays work-conserving.
  const Rate link = tree_.at(tree_.root()).theta;
  if (now > last_advance_) {
    vtime_ += static_cast<double>(now - last_advance_) * link.bytes_per_ns();
    last_advance_ = now;
  }

  rv.leaf = label.path.back();
  const SchedClass& leaf = tree_.at(rv.leaf);
  if (link.is_zero() || leaf.theta.is_zero()) return false;
  rv.weight = leaf.theta / link;

  // STFQ: start tag = max(virtual time, the class's last finish tag); the
  // finish tag advances by the packet's weighted length (rank_backends.h).
  rv.start = std::max(vtime_, finish_[rv.leaf]);
  rv.deficit_bytes = (rv.start - vtime_) * rv.weight;

  // Burst allowance mirrors FlowValve's bucket sizing: a time window at the
  // class's current rate, floored at two frames.
  rv.lead_bytes = std::max(leaf.theta.bytes_in(tree_.params().burst_window),
                           tree_.params().min_burst_bytes);
  return true;
}

double StfqBackend::admit(net::Packet& pkt, const QosLabel& label,
                          const RankView& rv, SchedDecision& d) {
  const std::uint32_t charge = pkt.wire_occupancy_bytes();
  const double fin = rv.start + static_cast<double>(charge) / rv.weight;
  finish_[rv.leaf] = fin;
  d.verdict = Verdict::kForward;
  tree_.count_forwarded(label.path, charge);
  ++stats_.forwarded;
  ++stats_.rank_admissions;
  return fin;
}

SchedDecision StfqBackend::schedule(net::Packet& pkt, sim::SimTime now) {
  SchedDecision d;
  assert(pkt.label != net::kUnclassified && "packet must be labeled first");
  const QosLabel& label = labels_.get(pkt.label);
  assert(!label.path.empty());

  walk_path(label, pkt, now, d);

  RankView rv;
  d.cycles += costs_.meter_cycles;  // rank computation + admission compare
  if (rank(label, now, rv) && rv.deficit_bytes <= rv.lead_bytes) {
    admit(pkt, label, rv, d);
    return d;
  }
  ++stats_.rank_lead_drops;
  book_drop(label.path.back(), pkt);
  return d;
}

// ---------------------------------------------------------------------------
// EiffelBackend
// ---------------------------------------------------------------------------

EiffelBackend::EiffelBackend(SchedulingTree& tree, const LabelTable& labels,
                             SchedulerCosts costs)
    : StfqBackend(tree, labels, costs) {}

std::size_t EiffelBackend::bucket_of(double virtual_bytes) const {
  const double rel = (virtual_bytes - cal_base_) / quantum_;
  return rel <= 0.0 ? 0 : static_cast<std::size_t>(rel);
}

void EiffelBackend::drain_calendar() {
  // Entries whose finish tag V has passed have received their virtual
  // service; two FFS probes per pop (Eiffel's find-min).
  const std::size_t vbucket = bucket_of(vtime_);
  while (auto min = calendar_.min_rank()) {
    if (*min >= vbucket) break;
    calendar_.pop_min();
  }
}

void EiffelBackend::rebase_calendar() {
  // Shift the wheel origin up to V, preserving relative order: pop the
  // survivors in rank order and reinsert them shifted.
  const std::size_t shift = bucket_of(vtime_);
  std::vector<std::pair<std::size_t, ClassId>> survivors;
  survivors.reserve(calendar_.size());
  while (auto min = calendar_.min_rank()) {
    survivors.emplace_back(*min - std::min(*min, shift), *calendar_.pop_min());
  }
  for (const auto& [rank, leaf] : survivors) calendar_.push(rank, leaf);
  cal_base_ += static_cast<double>(shift) * quantum_;
  ++stats_.calendar_rebases;
}

SchedDecision EiffelBackend::schedule(net::Packet& pkt, sim::SimTime now) {
  SchedDecision d;
  assert(pkt.label != net::kUnclassified && "packet must be labeled first");
  const QosLabel& label = labels_.get(pkt.label);
  assert(!label.path.empty());

  walk_path(label, pkt, now, d);

  RankView rv;
  d.cycles += costs_.meter_cycles;
  const bool rankable = rank(label, now, rv);

  // Size the wheel on first use: span ≈ 8 burst windows at link rate, so a
  // class's legitimate lead (≤ ~1 burst window at link rate) always fits
  // with headroom for the half-wheel rebase hysteresis.
  if (quantum_ == 0.0) {
    const Rate link = tree_.at(tree_.root()).theta;
    quantum_ = std::max(
        64.0, link.bytes_in(tree_.params().burst_window) * 8.0 /
                  static_cast<double>(kWheelBuckets));
    cal_base_ = vtime_;
  }
  if (bucket_of(vtime_) >= kWheelBuckets / 2) rebase_calendar();
  d.cycles += costs_.count_cycles;  // calendar probe/insert
  drain_calendar();

  if (!rankable || rv.deficit_bytes > rv.lead_bytes) {
    ++stats_.rank_lead_drops;
    book_drop(label.path.back(), pkt);
    return d;
  }

  // Eiffel's bounded integer-rank horizon: a finish tag beyond the wheel
  // cannot be represented, so the packet is dropped rather than aliased
  // into a wrong bucket (the never-queueing analogue of Eiffel's overflow
  // saturation).
  const double fin =
      rv.start + static_cast<double>(pkt.wire_occupancy_bytes()) / rv.weight;
  const std::size_t idx = bucket_of(fin);
  if (idx >= kWheelBuckets) {
    ++stats_.rank_horizon_drops;
    book_drop(label.path.back(), pkt);
    return d;
  }

  admit(pkt, label, rv, d);
  calendar_.push(idx, rv.leaf);
  return d;
}

// ---------------------------------------------------------------------------
// SpPifoBackend
// ---------------------------------------------------------------------------

SpPifoBackend::SpPifoBackend(SchedulingTree& tree, const LabelTable& labels,
                             SchedulerCosts costs)
    : StfqBackend(tree, labels, costs) {
  for (std::size_t i = 0; i < kBands; ++i)
    bounds_[i] = static_cast<double>(i + 1) / static_cast<double>(kBands);
}

SchedDecision SpPifoBackend::schedule(net::Packet& pkt, sim::SimTime now) {
  SchedDecision d;
  assert(pkt.label != net::kUnclassified && "packet must be labeled first");
  const QosLabel& label = labels_.get(pkt.label);
  assert(!label.path.empty());

  walk_path(label, pkt, now, d);

  RankView rv;
  d.cycles += costs_.meter_cycles;
  d.cycles += costs_.count_cycles;  // band scan
  if (!rank(label, now, rv) || rv.deficit_bytes > rv.lead_bytes) {
    ++stats_.rank_lead_drops;
    book_drop(label.path.back(), pkt);
    return d;
  }

  // SP-PIFO mapping (admitted ranks only — in a never-queueing valve the
  // band carries no release-order effect; it measures how well k strict-
  // priority FIFOs would approximate the exact rank order). Normalized
  // rank r ∈ [0, 1]; scan bands worst-first for the first bound ≤ r:
  // push-up raises that bound to r. If even the best band's bound exceeds
  // r, push-down shifts every bound toward r (the unpifoness signal).
  const double r = rv.lead_bytes > 0.0 ? rv.deficit_bytes / rv.lead_bytes : 0.0;
  std::size_t band = 0;
  bool placed = false;
  for (std::size_t i = kBands; i-- > 0;) {
    if (bounds_[i] <= r) {
      band = i;
      bounds_[i] = r;  // push-up
      placed = true;
      break;
    }
  }
  if (!placed) {
    const double delta = bounds_[0] - r;
    for (double& b : bounds_) b -= delta;  // push-down
    ++stats_.band_adaptations;
  }
  ++band_admits_[band];

  admit(pkt, label, rv, d);
  return d;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<SchedulerBackend> make_backend(BackendKind kind,
                                               SchedulingTree& tree,
                                               const LabelTable& labels,
                                               SchedulerCosts costs) {
  switch (kind) {
    case BackendKind::kFlowValve:
      return std::make_unique<SchedulingFunction>(tree, labels, costs);
    case BackendKind::kStfq:
      return std::make_unique<StfqBackend>(tree, labels, costs);
    case BackendKind::kEiffel:
      return std::make_unique<EiffelBackend>(tree, labels, costs);
    case BackendKind::kSpPifo:
      return std::make_unique<SpPifoBackend>(tree, labels, costs);
  }
  return nullptr;
}

}  // namespace flowvalve::core
