// FlowValveEngine — the public entry point of the core library.
//
// Combines the labeling function (classifier + flow cache) and the
// scheduling function (Algorithm 1) over one scheduling tree, exactly the
// per-packet work a worker micro-engine performs in the paper's back end.
// The NP pipeline (src/np) plugs an engine into every worker core; the
// examples use it directly.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/frontend.h"
#include "core/scheduling_function.h"

namespace flowvalve::core {

class FlowValveEngine {
 public:
  struct Options {
    FvParams params;
    SchedulerCosts sched_costs;
    ClassifierCosts classifier_costs;
    /// Flow-cache geometry and degraded-mode thresholds (DESIGN.md §14).
    ExactMatchFlowCache::Options emc;
    /// Scheduling discipline run behind the shared contention structure
    /// (scheduler_backend.h). The FlowValve tree is the default; rank
    /// backends reuse the same labeling, update walk, and batching path.
    BackendKind backend = BackendKind::kFlowValve;
  };

  // Two overloads rather than `Options options = {}`: GCC defers parsing a
  // nested class's default member initializers to the end of the enclosing
  // class, so a brace default argument here can't see Options::backend's.
  FlowValveEngine();
  explicit FlowValveEngine(Options options);

  /// Apply an fv policy script and finalize. Throws std::invalid_argument
  /// on parse errors; returns a non-empty error string on semantic errors.
  std::string configure(std::string_view fv_script, sim::SimTime now = 0);

  /// Per-packet processing: label then schedule. The packet's label field
  /// is filled in. Returns the combined decision with total cycles spent.
  struct Result {
    Verdict verdict = Verdict::kDrop;
    std::uint32_t cycles = 0;
    bool cache_hit = false;
    bool borrowed = false;
  };
  Result process(net::Packet& pkt, sim::SimTime now);

  /// One packet of a worker burst handed to process_batch.
  struct BatchEntry {
    net::Packet* pkt = nullptr;
    Result result;
  };

  /// Process a worker burst at one instant, in order, filling each entry's
  /// result. Produces exactly what per-packet process() calls would (the
  /// batch-1 differential oracle holds it to that) while amortizing the
  /// per-flow work real NP firmware amortizes across a burst:
  ///  - EMC lookups: the 2nd..Nth packet of a flow replays the flow's first
  ///    classification (a guaranteed same-tick cache hit) instead of
  ///    re-probing — valid only while no intervening classification
  ///    inserted into the cache, since an insert could evict the entry.
  ///  - Tail drops: a packet whose burst-predecessor (same flow, adjacent
  ///    in pull order) took a pure borrow-free tail drop replays that
  ///    decision instead of re-walking the tree (SchedulingFunction
  ///    documents why that is a pure replay).
  /// The process observer fires once per entry, exactly as per-packet.
  void process_batch(BatchEntry* entries, std::size_t n, sim::SimTime now);

  /// Passive tap fired after every process() call with the labeled packet
  /// and the decision taken — src/check hangs its scheduler-conformance
  /// checkers here. Empty (and free) by default.
  using ProcessObserver =
      std::function<void(const net::Packet&, const Result&, sim::SimTime)>;
  void set_process_observer(ProcessObserver observer) {
    process_observer_ = std::move(observer);
  }

  FvFrontend& frontend() { return frontend_; }
  const FvFrontend& frontend() const { return frontend_; }
  SchedulingTree& tree() { return frontend_.tree(); }
  const SchedulingTree& tree() const { return frontend_.tree(); }
  /// The configured discipline (any backend).
  SchedulerBackend& backend() { return *sched_; }
  const SchedulerBackend& backend() const { return *sched_; }
  BackendKind backend_kind() const { return options_.backend; }
  /// The FlowValve scheduling function. Only valid under the default
  /// backend (asserts otherwise) — legacy accessor for the ablation
  /// benches and FlowValve-specific tests.
  SchedulingFunction& scheduler();
  Classifier& classifier() { return frontend_.classifier(); }

  bool ready() const { return sched_ != nullptr; }

 private:
  /// Per-burst flow-group scratch (the engine is single-threaded): the
  /// flow's first classification this burst, and the cache mutation stamp
  /// right after it — a changed stamp means a later classification added,
  /// removed, or relabeled some entry (insert, kick-path eviction, stale or
  /// idle invalidation, corruption detection) and the replay guarantee is
  /// void.
  struct FlowGroup {
    std::uint16_t vf = 0;
    net::FiveTuple tuple;
    Classifier::Result first;
    std::uint64_t stamp_after = 0;
  };

  Options options_;
  FvFrontend frontend_;
  std::unique_ptr<SchedulerBackend> sched_;  // created once configured
  ProcessObserver process_observer_;
  std::vector<FlowGroup> batch_groups_;  // scratch, cleared per burst
};

}  // namespace flowvalve::core
