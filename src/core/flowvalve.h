// FlowValveEngine — the public entry point of the core library.
//
// Combines the labeling function (classifier + flow cache) and the
// scheduling function (Algorithm 1) over one scheduling tree, exactly the
// per-packet work a worker micro-engine performs in the paper's back end.
// The NP pipeline (src/np) plugs an engine into every worker core; the
// examples use it directly.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "core/frontend.h"
#include "core/scheduling_function.h"

namespace flowvalve::core {

class FlowValveEngine {
 public:
  struct Options {
    FvParams params;
    SchedulerCosts sched_costs;
    ClassifierCosts classifier_costs;
  };

  explicit FlowValveEngine(Options options = {});

  /// Apply an fv policy script and finalize. Throws std::invalid_argument
  /// on parse errors; returns a non-empty error string on semantic errors.
  std::string configure(std::string_view fv_script, sim::SimTime now = 0);

  /// Per-packet processing: label then schedule. The packet's label field
  /// is filled in. Returns the combined decision with total cycles spent.
  struct Result {
    Verdict verdict = Verdict::kDrop;
    std::uint32_t cycles = 0;
    bool cache_hit = false;
    bool borrowed = false;
  };
  Result process(net::Packet& pkt, sim::SimTime now);

  /// Passive tap fired after every process() call with the labeled packet
  /// and the decision taken — src/check hangs its scheduler-conformance
  /// checkers here. Empty (and free) by default.
  using ProcessObserver =
      std::function<void(const net::Packet&, const Result&, sim::SimTime)>;
  void set_process_observer(ProcessObserver observer) {
    process_observer_ = std::move(observer);
  }

  FvFrontend& frontend() { return frontend_; }
  const FvFrontend& frontend() const { return frontend_; }
  SchedulingTree& tree() { return frontend_.tree(); }
  const SchedulingTree& tree() const { return frontend_.tree(); }
  SchedulingFunction& scheduler() { return *sched_; }
  Classifier& classifier() { return frontend_.classifier(); }

  bool ready() const { return sched_ != nullptr; }

 private:
  Options options_;
  FvFrontend frontend_;
  std::unique_ptr<SchedulingFunction> sched_;  // created once configured
  ProcessObserver process_observer_;
};

}  // namespace flowvalve::core
