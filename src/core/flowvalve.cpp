#include "core/flowvalve.h"

#include <cassert>

namespace flowvalve::core {

FlowValveEngine::FlowValveEngine() : FlowValveEngine(Options{}) {}

FlowValveEngine::FlowValveEngine(Options options)
    : options_(options),
      frontend_(options.params, options.classifier_costs, options.emc) {}

std::string FlowValveEngine::configure(std::string_view fv_script, sim::SimTime now) {
  frontend_.apply_script(fv_script);
  if (auto err = frontend_.finalize(now); !err.empty()) return err;
  sched_ = make_backend(options_.backend, frontend_.tree(), frontend_.labels(),
                        options_.sched_costs);
  return {};
}

SchedulingFunction& FlowValveEngine::scheduler() {
  assert(ready() && sched_->kind() == BackendKind::kFlowValve &&
         "scheduler() is only valid under the FlowValve backend");
  return static_cast<SchedulingFunction&>(*sched_);
}

FlowValveEngine::Result FlowValveEngine::process(net::Packet& pkt, sim::SimTime now) {
  assert(ready() && "configure() the engine first");
  Result r;
  const auto cls = frontend_.classifier().classify(pkt, static_cast<std::uint64_t>(now));
  r.cycles += cls.cycles;
  r.cache_hit = cls.cache_hit;
  pkt.label = cls.label;
  if (pkt.label == net::kUnclassified) {
    // No filter matched and no default class configured: drop, as the NIC
    // has no class whose budget could account for this packet.
    r.verdict = Verdict::kDrop;
    if (process_observer_) process_observer_(pkt, r, now);
    return r;
  }
  const SchedDecision d = sched_->schedule(pkt, now);
  r.cycles += d.cycles;
  r.verdict = d.verdict;
  r.borrowed = d.borrowed;
  if (process_observer_) process_observer_(pkt, r, now);
  return r;
}

void FlowValveEngine::process_batch(BatchEntry* entries, std::size_t n,
                                    sim::SimTime now) {
  assert(ready() && "configure() the engine first");
  Classifier& cls = frontend_.classifier();
  batch_groups_.clear();

  // Scheduler-replay window: the decision taken for the immediately
  // preceding entry, valid only while the run of same-flow packets is
  // unbroken (an interleaved flow's borrow walk could refill buckets the
  // replay assumes unchanged).
  bool prev_scheduled = false;
  SchedDecision prev_d;

  for (std::size_t i = 0; i < n; ++i) {
    net::Packet& pkt = *entries[i].pkt;
    Result r;

    FlowGroup* group = nullptr;
    for (FlowGroup& g : batch_groups_) {
      if (g.vf == pkt.vf_port && g.tuple == pkt.tuple) {
        group = &g;
        break;
      }
    }
    Classifier::Result c;
    if (group != nullptr && cls.repeat_would_hit(group->first) &&
        cls.cache().mutation_stamp() == group->stamp_after) {
      c = cls.classify_repeat(group->first);
    } else {
      c = cls.classify(pkt, static_cast<std::uint64_t>(now));
      if (group != nullptr) {
        group->first = c;
        group->stamp_after = cls.cache().mutation_stamp();
      } else {
        batch_groups_.push_back(
            {pkt.vf_port, pkt.tuple, c, cls.cache().mutation_stamp()});
      }
    }
    r.cycles += c.cycles;
    r.cache_hit = c.cache_hit;
    pkt.label = c.label;

    if (pkt.label == net::kUnclassified) {
      r.verdict = Verdict::kDrop;
      entries[i].result = r;
      if (process_observer_) process_observer_(pkt, r, now);
      prev_scheduled = false;
      continue;
    }

    SchedDecision d;
    const bool same_flow_as_prev =
        i > 0 && entries[i - 1].pkt->vf_port == pkt.vf_port &&
        entries[i - 1].pkt->tuple == pkt.tuple;
    if (prev_scheduled && same_flow_as_prev &&
        sched_->repeat_applicable(*entries[i - 1].pkt, pkt, prev_d)) {
      d = sched_->repeat_tail_drop(pkt, now, prev_d);
    } else {
      d = sched_->schedule(pkt, now);
    }
    prev_scheduled = true;
    prev_d = d;

    r.cycles += d.cycles;
    r.verdict = d.verdict;
    r.borrowed = d.borrowed;
    entries[i].result = r;
    if (process_observer_) process_observer_(pkt, r, now);
  }
}

}  // namespace flowvalve::core
