#include "core/flowvalve.h"

#include <cassert>

namespace flowvalve::core {

FlowValveEngine::FlowValveEngine(Options options)
    : options_(options), frontend_(options.params) {}

std::string FlowValveEngine::configure(std::string_view fv_script, sim::SimTime now) {
  frontend_.apply_script(fv_script);
  if (auto err = frontend_.finalize(now); !err.empty()) return err;
  sched_ = std::make_unique<SchedulingFunction>(frontend_.tree(), frontend_.labels(),
                                                options_.sched_costs);
  return {};
}

FlowValveEngine::Result FlowValveEngine::process(net::Packet& pkt, sim::SimTime now) {
  assert(ready() && "configure() the engine first");
  Result r;
  const auto cls = frontend_.classifier().classify(pkt, static_cast<std::uint64_t>(now));
  r.cycles += cls.cycles;
  r.cache_hit = cls.cache_hit;
  pkt.label = cls.label;
  if (pkt.label == net::kUnclassified) {
    // No filter matched and no default class configured: drop, as the NIC
    // has no class whose budget could account for this packet.
    r.verdict = Verdict::kDrop;
    if (process_observer_) process_observer_(pkt, r, now);
    return r;
  }
  const SchedDecision d = sched_->schedule(pkt, now);
  r.cycles += d.cycles;
  r.verdict = d.verdict;
  r.borrowed = d.borrowed;
  if (process_observer_) process_observer_(pkt, r, now);
  return r;
}

}  // namespace flowvalve::core
