#include "core/classifier.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace flowvalve::core {

// ---------------------------------------------------------- LabelTable ----

ClassLabelId LabelTable::intern(QosLabel label) {
  labels_.push_back(std::move(label));
  return static_cast<ClassLabelId>(labels_.size() - 1);
}

// ---------------------------------------------------------- FilterRule ----

namespace {
bool prefix_match(std::uint32_t addr, std::uint32_t rule_addr, std::uint8_t len) {
  if (len == 0) return true;
  const std::uint32_t mask = len >= 32 ? 0xffffffffu : ~(0xffffffffu >> len);
  return (addr & mask) == (rule_addr & mask);
}
}  // namespace

bool FilterRule::matches(std::uint16_t pkt_vf, const FiveTuple& t,
                         std::uint8_t pkt_dscp) const {
  if (vf_port && *vf_port != pkt_vf) return false;
  if (proto && *proto != t.proto) return false;
  if (!prefix_match(t.src_ip, src_ip, src_prefix_len)) return false;
  if (!prefix_match(t.dst_ip, dst_ip, dst_prefix_len)) return false;
  if (src_port && *src_port != t.src_port) return false;
  if (dst_port && *dst_port != t.dst_port) return false;
  if (dscp && *dscp != pkt_dscp) return false;
  return true;
}

// ------------------------------------------------- ExactMatchFlowCache ----

ExactMatchFlowCache::ExactMatchFlowCache(std::size_t capacity) {
  sets_ = std::max<std::size_t>(1, std::bit_ceil(capacity / kWays));
  ways_.resize(sets_ * kWays);
}

std::size_t ExactMatchFlowCache::set_index(std::uint16_t vf, const FiveTuple& t) const {
  return static_cast<std::size_t>((t.hash() ^ (static_cast<std::uint64_t>(vf) * 0x9e37U)) &
                                  (sets_ - 1));
}

std::optional<ClassLabelId> ExactMatchFlowCache::lookup(std::uint16_t vf,
                                                        const FiveTuple& t,
                                                        std::uint64_t now_tick,
                                                        std::uint32_t epoch) {
  Entry* set = &ways_[set_index(vf, t) * kWays];
  for (std::size_t w = 0; w < kWays; ++w) {
    Entry& e = set[w];
    if (e.valid && e.vf == vf && e.tuple == t) {
      if (e.epoch != epoch) {
        // Stale label epoch: a reconfiguration changed the label bindings
        // since this entry was cached. Invalidate just this entry and fall
        // through to the rule walk (lazy, per-flow re-classification).
        e = Entry{};
        ++stats_.stale_invalidations;
        break;
      }
      e.last_used = now_tick;
      ++stats_.hits;
      return e.label;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ExactMatchFlowCache::insert(std::uint16_t vf, const FiveTuple& t, ClassLabelId label,
                                 std::uint64_t now_tick, std::uint32_t epoch) {
  Entry* set = &ways_[set_index(vf, t) * kWays];
  Entry* victim = &set[0];
  for (std::size_t w = 0; w < kWays; ++w) {
    Entry& e = set[w];
    if (e.valid && e.vf == vf && e.tuple == t) {  // refresh existing
      e.label = label;
      e.last_used = now_tick;
      e.epoch = epoch;
      return;
    }
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.last_used < victim->last_used) victim = &e;
  }
  if (victim->valid) ++stats_.evictions;
  *victim = Entry{true, vf, t, label, now_tick, epoch};
  ++stats_.insertions;
}

void ExactMatchFlowCache::clear() {
  std::fill(ways_.begin(), ways_.end(), Entry{});
  stats_ = Stats{};
}

std::size_t ExactMatchFlowCache::invalidate_all() {
  std::size_t flushed = 0;
  for (Entry& e : ways_) {
    if (!e.valid) continue;
    e = Entry{};
    ++flushed;
  }
  stats_.evictions += flushed;
  return flushed;
}

std::size_t ExactMatchFlowCache::poison(std::size_t stride, ClassLabelId label_count) {
  if (stride == 0 || label_count < 2) return 0;
  std::size_t seen = 0, poisoned = 0;
  for (Entry& e : ways_) {
    if (!e.valid) continue;
    if (seen++ % stride != 0) continue;
    e.label = static_cast<ClassLabelId>((e.label + 1) % label_count);
    ++poisoned;
  }
  return poisoned;
}

// ---------------------------------------------------------- Classifier ----

Classifier::Classifier(ClassifierCosts costs, std::size_t cache_capacity)
    : costs_(costs), cache_(cache_capacity) {}

void Classifier::add_rule(FilterRule rule) {
  rules_.push_back(std::move(rule));
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const FilterRule& a, const FilterRule& b) { return a.pref < b.pref; });
}

void Classifier::replace_rules(std::vector<FilterRule> rules) {
  rules_ = std::move(rules);
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const FilterRule& a, const FilterRule& b) { return a.pref < b.pref; });
}

Classifier::Result Classifier::classify(const net::Packet& pkt, std::uint64_t now_tick) {
  Result r;
  if (cache_enabled_) {
    if (auto hit = cache_.lookup(pkt.vf_port, pkt.tuple, now_tick, label_epoch_)) {
      r.label = *hit;
      r.cycles = costs_.cache_hit_cycles;
      r.cache_hit = true;
      return r;
    }
    r.cycles += costs_.cache_miss_cycles;
  }
  // Ordered rule walk (first match wins). DSCP is not modeled per-packet in
  // the fast path; rules that require it match only a zero code point here,
  // while byte-level tests exercise the full parse path.
  std::uint32_t walked = 0;
  ClassLabelId matched = default_label_;
  for (const auto& rule : rules_) {
    ++walked;
    if (rule.matches(pkt.vf_port, pkt.tuple, /*pkt_dscp=*/0)) {
      matched = rule.label;
      break;
    }
  }
  r.cycles += walked * costs_.per_rule_cycles;
  r.label = matched;
  if (cache_enabled_ && matched != net::kUnclassified) {
    cache_.insert(pkt.vf_port, pkt.tuple, matched, now_tick, label_epoch_);
    r.cycles += costs_.cache_insert_cycles;
  }
  return r;
}

Classifier::Result Classifier::classify_repeat(const Result& first) {
  assert(repeat_would_hit(first));
  cache_.count_repeat_hit();
  Result r;
  r.label = first.label;
  r.cycles = costs_.cache_hit_cycles;
  r.cache_hit = true;
  return r;
}

}  // namespace flowvalve::core
