#include "core/classifier.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace flowvalve::core {

// ---------------------------------------------------------- LabelTable ----

ClassLabelId LabelTable::intern(QosLabel label) {
  labels_.push_back(std::move(label));
  return static_cast<ClassLabelId>(labels_.size() - 1);
}

// ---------------------------------------------------------- FilterRule ----

namespace {

bool prefix_match(std::uint32_t addr, std::uint32_t rule_addr, std::uint8_t len) {
  if (len == 0) return true;
  const std::uint32_t mask = len >= 32 ? 0xffffffffu : ~(0xffffffffu >> len);
  return (addr & mask) == (rule_addr & mask);
}

// The splitmix64 finalizer lives on ExactMatchFlowCache (classifier.h) so
// the distribution test can lock its avalanche property; member functions
// below reach it unqualified.
constexpr std::uint64_t kVfSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kLabelSalt = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kEpochSalt = 0x165667b19e3779f9ULL;
constexpr std::uint64_t kTagSalt = 0x27d4eb2f165667c5ULL;

}  // namespace

bool FilterRule::matches(std::uint16_t pkt_vf, const FiveTuple& t,
                         std::uint8_t pkt_dscp) const {
  if (vf_port && *vf_port != pkt_vf) return false;
  if (proto && *proto != t.proto) return false;
  if (!prefix_match(t.src_ip, src_ip, src_prefix_len)) return false;
  if (!prefix_match(t.dst_ip, dst_ip, dst_prefix_len)) return false;
  if (src_port && *src_port != t.src_port) return false;
  if (dst_port && *dst_port != t.dst_port) return false;
  if (dscp && *dscp != pkt_dscp) return false;
  return true;
}

// ------------------------------------------------- ExactMatchFlowCache ----

ExactMatchFlowCache::ExactMatchFlowCache(Options options) : options_(options) {
  // Capacity clamp: at least two buckets (cuckoo needs two distinct
  // candidates), rounded up to a power of two so the index masks hold for
  // any requested capacity, including 0 and non-multiples of kSlots.
  const std::size_t want_buckets =
      std::max<std::size_t>(1, (options_.capacity + kSlots - 1) / kSlots);
  buckets_ = std::max<std::size_t>(2, std::bit_ceil(want_buckets));
  slots_.resize(buckets_ * kSlots);

  // Threshold sanity clamps — a zero interval or budget would deadlock the
  // state machine or the kick search.
  options_.kick_budget = std::max<std::uint32_t>(options_.kick_budget, 2);
  options_.max_kick_depth = std::max<std::uint32_t>(options_.max_kick_depth, 1);
  options_.decay_interval_lookups =
      std::max<std::uint32_t>(options_.decay_interval_lookups, 1);
  options_.recovery_admit_every =
      std::max<std::uint32_t>(options_.recovery_admit_every, 1);
  options_.degrade_threshold = std::max<std::uint32_t>(options_.degrade_threshold, 1);
  options_.relapse_threshold = std::max<std::uint32_t>(options_.relapse_threshold, 1);
  options_.failure_score_cap =
      std::max(options_.failure_score_cap, options_.degrade_threshold);
}

std::uint64_t ExactMatchFlowCache::key_hash(std::uint16_t vf, const FiveTuple& t) const {
  return mix64(t.hash() ^ (kVfSalt * (static_cast<std::uint64_t>(vf) + 1)));
}

std::uint32_t ExactMatchFlowCache::bucket_of(std::uint64_t hash) const {
  return static_cast<std::uint32_t>(hash & (buckets_ - 1));
}

std::uint32_t ExactMatchFlowCache::alt_bucket_of(std::uint64_t hash,
                                                 std::uint32_t b1) const {
  std::uint32_t b2 = static_cast<std::uint32_t>((hash >> 32) & (buckets_ - 1));
  if (b2 == b1) b2 ^= 1;  // buckets_ >= 2 and a power of two, so b2 is valid
  return b2;
}

std::uint64_t ExactMatchFlowCache::entry_tag(std::uint64_t hash, ClassLabelId label,
                                             std::uint32_t epoch) const {
  return mix64(hash ^ (static_cast<std::uint64_t>(label) * kLabelSalt) ^
               (static_cast<std::uint64_t>(epoch) * kEpochSalt) ^ kTagSalt);
}

ExactMatchFlowCache::Entry* ExactMatchFlowCache::find_slot(std::uint32_t bucket,
                                                           std::uint64_t hash,
                                                           std::uint16_t vf,
                                                           const FiveTuple& t) {
  Entry* base = &slots_[static_cast<std::size_t>(bucket) * kSlots];
  for (std::size_t s = 0; s < kSlots; ++s) {
    Entry& e = base[s];
    if (e.valid && e.hash == hash && e.vf == vf && e.tuple == t) return &e;
  }
  return nullptr;
}

const ExactMatchFlowCache::Entry* ExactMatchFlowCache::find_slot(
    std::uint32_t bucket, std::uint64_t hash, std::uint16_t vf,
    const FiveTuple& t) const {
  return const_cast<ExactMatchFlowCache*>(this)->find_slot(bucket, hash, vf, t);
}

void ExactMatchFlowCache::note_lookup() {
  ++lookup_serial_;
  if (failure_score_ > 0 && lookup_serial_ % options_.decay_interval_lookups == 0)
    --failure_score_;
  switch (health_) {
    case Health::kHealthy:
      break;
    case Health::kDegraded:
      ++stats_.degraded_dwell_lookups;
      ++dwell_;
      if (dwell_ >= options_.min_degraded_dwell && failure_score_ == 0) {
        health_ = Health::kRecovering;
        dwell_ = 0;
        admit_counter_ = 0;
      }
      break;
    case Health::kRecovering:
      ++stats_.recovering_dwell_lookups;
      ++dwell_;
      if (dwell_ >= options_.recovery_clean_lookups && failure_score_ == 0) {
        health_ = Health::kHealthy;
        dwell_ = 0;
      }
      break;
  }
}

void ExactMatchFlowCache::note_kick_failure() {
  ++stats_.kick_failures;
  // A failed kick search on a mostly-full table is ordinary capacity
  // pressure — the stalest-eviction fallback is the honest hardware
  // behavior and costs bounded work. A failed search while the table has
  // free space is pathological (adversarial same-bucket keys); only that
  // raises the pressure score that drives degradation.
  if (live_ * 8 >= capacity() * 7) return;
  failure_score_ = std::min(failure_score_ + 1, options_.failure_score_cap);
  const bool degrade =
      (health_ == Health::kHealthy && failure_score_ >= options_.degrade_threshold) ||
      (health_ == Health::kRecovering && failure_score_ >= options_.relapse_threshold);
  if (degrade) {
    health_ = Health::kDegraded;
    ++stats_.degraded_transitions;
    dwell_ = 0;
  }
}

void ExactMatchFlowCache::sweep_idle(std::uint64_t now_tick) {
  if (options_.idle_timeout_ticks == 0) return;
  const std::uint32_t bucket =
      static_cast<std::uint32_t>(sweep_cursor_++ & (buckets_ - 1));
  Entry* base = &slots_[static_cast<std::size_t>(bucket) * kSlots];
  for (std::size_t s = 0; s < kSlots; ++s) {
    Entry& e = base[s];
    if (e.valid && now_tick > e.last_used &&
        now_tick - e.last_used > options_.idle_timeout_ticks) {
      invalidate(e);
      ++stats_.idle_evictions;
    }
  }
}

std::optional<ClassLabelId> ExactMatchFlowCache::lookup(std::uint16_t vf,
                                                        const FiveTuple& t,
                                                        std::uint64_t now_tick,
                                                        std::uint32_t epoch) {
  note_lookup();
  const std::uint64_t h = key_hash(vf, t);
  const std::uint32_t b1 = bucket_of(h);
  Entry* e = find_slot(b1, h, vf, t);
  if (e == nullptr) e = find_slot(alt_bucket_of(h, b1), h, vf, t);
  sweep_idle(now_tick);
  if (e != nullptr) {
    if (e->epoch != epoch) {
      // Stale label epoch: a reconfiguration changed the label bindings
      // since this entry was cached. Invalidate just this entry and fall
      // through to the rule walk (lazy, per-flow re-classification).
      invalidate(*e);
      ++stats_.stale_invalidations;
    } else if (e->tag != entry_tag(e->hash, e->label, e->epoch)) {
      // Integrity tag mismatch: the entry's state was corrupted (cache
      // poison fault). Detect, invalidate, and take the honest miss path
      // rather than serving a wrong label.
      invalidate(*e);
      ++stats_.corruption_detected;
    } else {
      e->last_used = now_tick;
      ++stats_.hits;
      return e->label;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

std::optional<ClassLabelId> ExactMatchFlowCache::peek(std::uint16_t vf,
                                                      const FiveTuple& t,
                                                      std::uint32_t epoch) const {
  const std::uint64_t h = key_hash(vf, t);
  const std::uint32_t b1 = bucket_of(h);
  const Entry* e = find_slot(b1, h, vf, t);
  if (e == nullptr) e = find_slot(alt_bucket_of(h, b1), h, vf, t);
  if (e == nullptr || e->epoch != epoch) return std::nullopt;
  if (e->tag != entry_tag(e->hash, e->label, e->epoch)) return std::nullopt;
  return e->label;
}

ExactMatchFlowCache::Entry* ExactMatchFlowCache::bfs_free_slot(std::uint32_t b1,
                                                               std::uint32_t b2,
                                                               std::uint32_t* kicks) {
  // Breadth-first search over buckets reachable by displacing residents,
  // bounded by kick_budget expanded buckets and max_kick_depth chain
  // length. Nodes record how they were reached so the kick chain can be
  // replayed backwards once a free slot is found.
  struct Node {
    std::uint32_t bucket;
    std::int32_t parent;      // index into nodes, -1 for roots
    std::uint8_t slot;        // slot in parent bucket whose entry leads here
    std::uint8_t depth;
  };
  std::vector<Node> nodes;
  nodes.reserve(options_.kick_budget);
  nodes.push_back({b1, -1, 0, 0});
  if (b2 != b1) nodes.push_back({b2, -1, 0, 0});

  for (std::size_t head = 0; head < nodes.size(); ++head) {
    const Node n = nodes[head];
    Entry* base = &slots_[static_cast<std::size_t>(n.bucket) * kSlots];
    // A free slot in this bucket terminates the search: walk the chain
    // backwards, moving each predecessor's entry into the freed slot.
    for (std::size_t s = 0; s < kSlots; ++s) {
      if (base[s].valid) continue;
      Entry* freed = &base[s];
      std::int32_t cur = static_cast<std::int32_t>(head);
      while (nodes[cur].parent >= 0) {
        const Node& link = nodes[cur];
        Entry& from =
            slots_[static_cast<std::size_t>(nodes[link.parent].bucket) * kSlots +
                   link.slot];
        *freed = from;
        freed->alt_bucket = nodes[link.parent].bucket;
        from.valid = false;
        freed = &from;
        ++stats_.kicks;
        ++*kicks;
        cur = link.parent;
      }
      return freed;  // a now-free slot in b1 or b2
    }
    if (n.depth >= options_.max_kick_depth) continue;
    for (std::size_t s = 0; s < kSlots && nodes.size() < options_.kick_budget; ++s) {
      const std::uint32_t target = base[s].alt_bucket;
      bool seen = false;
      for (const Node& m : nodes) {
        if (m.bucket == target) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      nodes.push_back({target, static_cast<std::int32_t>(head),
                       static_cast<std::uint8_t>(s),
                       static_cast<std::uint8_t>(n.depth + 1)});
    }
  }
  return nullptr;
}

ExactMatchFlowCache::InsertOutcome ExactMatchFlowCache::insert_at(
    std::uint32_t b1, std::uint32_t b2, std::uint64_t hash, std::uint16_t vf,
    const FiveTuple& t, ClassLabelId label, std::uint64_t now_tick,
    std::uint32_t epoch) {
  // Refresh an existing entry in place (not an insert; no admission gate).
  Entry* e = find_slot(b1, hash, vf, t);
  if (e == nullptr) e = find_slot(b2, hash, vf, t);
  if (e != nullptr) {
    // A label or epoch change mutates a resident entry, which must advance
    // the mutation stamp (the batch replay guard keys off it).
    if (e->label != label || e->epoch != epoch) ++stats_.insertions;
    e->label = label;
    e->epoch = epoch;
    e->last_used = now_tick;
    e->tag = entry_tag(hash, label, epoch);
    return {true, 0};
  }

  // Degraded-mode admission gate (DESIGN.md §14).
  if (health_ == Health::kDegraded) {
    ++stats_.suppressed_inserts;
    return {false, 0};
  }
  if (health_ == Health::kRecovering &&
      (admit_counter_++ % options_.recovery_admit_every) != 0) {
    ++stats_.suppressed_inserts;
    return {false, 0};
  }

  const auto place = [&](Entry* slot, std::uint32_t in_bucket,
                         std::uint32_t kicks) -> InsertOutcome {
    slot->valid = true;
    slot->vf = vf;
    slot->tuple = t;
    slot->label = label;
    slot->epoch = epoch;
    slot->last_used = now_tick;
    slot->hash = hash;
    slot->alt_bucket = in_bucket == b1 ? b2 : b1;
    slot->tag = entry_tag(hash, label, epoch);
    ++live_;
    ++stats_.insertions;
    return {true, kicks};
  };

  // Direct free slot in either candidate bucket.
  for (std::uint32_t b : {b1, b2}) {
    Entry* base = &slots_[static_cast<std::size_t>(b) * kSlots];
    for (std::size_t s = 0; s < kSlots; ++s)
      if (!base[s].valid) return place(&base[s], b, 0);
  }

  // Bounded BFS kick path.
  std::uint32_t kicks = 0;
  if (Entry* freed = bfs_free_slot(b1, b2, &kicks)) {
    const std::uint32_t in_bucket =
        static_cast<std::uint32_t>((freed - slots_.data()) / kSlots);
    return place(freed, in_bucket, kicks);
  }

  // Kick budget exhausted: evict the stalest resident of the two candidate
  // buckets (the hardware-honest bounded fallback) and record the failure —
  // repeated failures at low table load raise the degradation score.
  note_kick_failure();
  Entry* victim = nullptr;
  std::uint32_t victim_bucket = b1;
  for (std::uint32_t b : {b1, b2}) {
    Entry* base = &slots_[static_cast<std::size_t>(b) * kSlots];
    for (std::size_t s = 0; s < kSlots; ++s) {
      if (victim == nullptr || base[s].last_used < victim->last_used) {
        victim = &base[s];
        victim_bucket = b;
      }
    }
  }
  if (health_ == Health::kDegraded) {
    // note_kick_failure() tripped the threshold on this very insert: the
    // gate closes now, including for this packet.
    ++stats_.suppressed_inserts;
    return {false, kicks};
  }
  ++stats_.evictions;
  --live_;
  return place(victim, victim_bucket, kicks);
}

ExactMatchFlowCache::InsertOutcome ExactMatchFlowCache::insert(
    std::uint16_t vf, const FiveTuple& t, ClassLabelId label,
    std::uint64_t now_tick, std::uint32_t epoch) {
  const std::uint64_t h = key_hash(vf, t);
  const std::uint32_t b1 = bucket_of(h);
  return insert_at(b1, alt_bucket_of(h, b1), h, vf, t, label, now_tick, epoch);
}

void ExactMatchFlowCache::clear() {
  std::fill(slots_.begin(), slots_.end(), Entry{});
  live_ = 0;
  stats_ = Stats{};
  ++clears_;
  health_ = Health::kHealthy;
  failure_score_ = 0;
  lookup_serial_ = 0;
  dwell_ = 0;
  admit_counter_ = 0;
  sweep_cursor_ = 0;
}

std::size_t ExactMatchFlowCache::invalidate_all() {
  std::size_t flushed = 0;
  for (Entry& e : slots_) {
    if (!e.valid) continue;
    invalidate(e);
    ++flushed;
  }
  stats_.evictions += flushed;
  return flushed;
}

std::size_t ExactMatchFlowCache::poison(std::size_t stride, ClassLabelId label_count,
                                        bool fix_tag) {
  if (stride == 0 || label_count < 2) return 0;
  std::size_t seen = 0, poisoned = 0;
  for (Entry& e : slots_) {
    if (!e.valid) continue;
    if (seen++ % stride != 0) continue;
    e.label = static_cast<ClassLabelId>((e.label + 1) % label_count);
    if (fix_tag) e.tag = entry_tag(e.hash, e.label, e.epoch);
    ++poisoned;
  }
  return poisoned;
}

std::size_t ExactMatchFlowCache::fault_collision_storm(std::uint64_t seed,
                                                       std::size_t n,
                                                       std::uint64_t now_tick) {
  // All storm keys are pinned to one seed-chosen bucket pair, regardless of
  // their own hashes — the model of an attacker who found same-bucket
  // five-tuples. They still pass through the normal admission path, so the
  // degraded-mode gate sees (and eventually refuses) them.
  const std::uint64_t s = mix64(seed ^ kTagSalt);
  const std::uint32_t p = bucket_of(s);
  const std::uint32_t q = alt_bucket_of(s, p);
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = mix64(seed + (i + 1) * kVfSalt);
    FiveTuple t;
    t.src_ip = static_cast<std::uint32_t>(r >> 32);
    t.dst_ip = static_cast<std::uint32_t>(r);
    t.src_port = static_cast<std::uint16_t>(i);
    t.dst_port = static_cast<std::uint16_t>(i >> 16);
    t.proto = IpProto::kUdp;
    const std::uint64_t h = key_hash(kCollisionStormVf, t);
    admitted += insert_at(p, q, h, kCollisionStormVf, t, /*label=*/0, now_tick,
                          /*epoch=*/0)
                    .inserted;
  }
  return admitted;
}

std::size_t ExactMatchFlowCache::fault_churn_storm(std::uint64_t seed, std::size_t n,
                                                   std::uint64_t now_tick) {
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = mix64(seed + (i + 1) * kLabelSalt);
    FiveTuple t;
    t.src_ip = static_cast<std::uint32_t>(r >> 32);
    t.dst_ip = static_cast<std::uint32_t>(r);
    t.src_port = static_cast<std::uint16_t>(i);
    t.dst_port = static_cast<std::uint16_t>(i >> 16);
    t.proto = IpProto::kUdp;
    admitted +=
        insert(kChurnStormVf, t, /*label=*/0, now_tick, /*epoch=*/0).inserted;
  }
  return admitted;
}

std::array<std::uint64_t, ExactMatchFlowCache::kSlots + 1>
ExactMatchFlowCache::occupancy_histogram() const {
  std::array<std::uint64_t, kSlots + 1> hist{};
  for (std::size_t b = 0; b < buckets_; ++b) {
    std::size_t occ = 0;
    for (std::size_t s = 0; s < kSlots; ++s)
      occ += slots_[b * kSlots + s].valid ? 1 : 0;
    ++hist[occ];
  }
  return hist;
}

const char* health_name(ExactMatchFlowCache::Health h) {
  switch (h) {
    case ExactMatchFlowCache::Health::kHealthy:
      return "healthy";
    case ExactMatchFlowCache::Health::kDegraded:
      return "degraded";
    case ExactMatchFlowCache::Health::kRecovering:
      return "recovering";
  }
  return "unknown";
}

// ---------------------------------------------------------- Classifier ----

Classifier::Classifier(ClassifierCosts costs, std::size_t cache_capacity)
    : Classifier(costs, ExactMatchFlowCache::Options{.capacity = cache_capacity}) {}

Classifier::Classifier(ClassifierCosts costs, ExactMatchFlowCache::Options cache_options)
    : costs_(costs), cache_(cache_options) {}

void Classifier::add_rule(FilterRule rule) {
  rules_.push_back(std::move(rule));
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const FilterRule& a, const FilterRule& b) { return a.pref < b.pref; });
}

void Classifier::replace_rules(std::vector<FilterRule> rules) {
  rules_ = std::move(rules);
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const FilterRule& a, const FilterRule& b) { return a.pref < b.pref; });
}

ClassLabelId Classifier::rule_walk_label(std::uint16_t vf, const FiveTuple& t) const {
  for (const auto& rule : rules_)
    if (rule.matches(vf, t, /*pkt_dscp=*/0)) return rule.label;
  return default_label_;
}

Classifier::Result Classifier::classify(const net::Packet& pkt, std::uint64_t now_tick) {
  Result r;
  if (cache_enabled_) {
    if (auto hit = cache_.lookup(pkt.vf_port, pkt.tuple, now_tick, label_epoch_)) {
      r.label = *hit;
      r.cycles = costs_.cache_hit_cycles;
      r.cache_hit = true;
      r.resident = true;
      return r;
    }
    r.cycles += costs_.cache_miss_cycles;
  }
  // Ordered rule walk (first match wins). DSCP is not modeled per-packet in
  // the fast path; rules that require it match only a zero code point here,
  // while byte-level tests exercise the full parse path.
  std::uint32_t walked = 0;
  ClassLabelId matched = default_label_;
  for (const auto& rule : rules_) {
    ++walked;
    if (rule.matches(pkt.vf_port, pkt.tuple, /*pkt_dscp=*/0)) {
      matched = rule.label;
      break;
    }
  }
  r.cycles += walked * costs_.per_rule_cycles;
  r.label = matched;
  if (cache_enabled_ && matched != net::kUnclassified) {
    const auto out =
        cache_.insert(pkt.vf_port, pkt.tuple, matched, now_tick, label_epoch_);
    if (out.inserted) {
      // A suppressed insert (degraded mode) charges nothing extra: the
      // packet already paid the honest miss + rule-walk cost.
      r.cycles += costs_.cache_insert_cycles + out.kicks * costs_.per_kick_cycles;
      r.resident = true;
    }
  }
  return r;
}

Classifier::Result Classifier::classify_repeat(const Result& first) {
  assert(repeat_would_hit(first));
  cache_.count_repeat_hit();
  Result r;
  r.label = first.label;
  r.cycles = costs_.cache_hit_cycles;
  r.cache_hit = true;
  r.resident = true;
  return r;
}

}  // namespace flowvalve::core
