#include "core/sched_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace flowvalve::core {

SchedulingTree::SchedulingTree(FvParams params) : params_(params) {}

ClassId SchedulingTree::add_root(std::string name, Rate link_rate) {
  assert(nodes_.empty() && "root must be the first class");
  SchedClass c;
  c.name = std::move(name);
  c.id = 0;
  c.policy.ceil = link_rate;
  c.theta = link_rate;
  c.gamma_bps.set_half_life(params_.gamma_half_life);
  nodes_.push_back(std::move(c));
  return 0;
}

ClassId SchedulingTree::add_class(std::string name, ClassId parent, NodePolicy policy) {
  assert(!nodes_.empty() && "add_root first");
  assert(parent < nodes_.size());
  assert(policy.weight > 0.0);
  SchedClass c;
  c.name = std::move(name);
  c.id = static_cast<ClassId>(nodes_.size());
  c.parent = parent;
  c.policy = policy;
  c.gamma_bps.set_half_life(params_.gamma_half_life);
  nodes_[parent].children.push_back(c.id);
  nodes_.push_back(std::move(c));
  finalized_ = false;
  return static_cast<ClassId>(nodes_.size() - 1);
}

void SchedulingTree::finalize(sim::SimTime now) {
  // Depth-first depth assignment + static θ seeding so buckets are usable
  // before the first update epoch completes.
  for (auto& n : nodes_) {
    n.depth = 0;
    for (ClassId p = n.parent; p != kNoClass; p = nodes_[p].parent) ++n.depth;
  }
  // Seed θ top-down with the pure weighted share (guarantees honored as
  // minimums); the runtime templates refine this within a few epochs.
  std::vector<ClassId> order(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) order[i] = static_cast<ClassId>(i);
  std::sort(order.begin(), order.end(),
            [&](ClassId a, ClassId b) { return nodes_[a].depth < nodes_[b].depth; });
  for (ClassId id : order) {
    SchedClass& n = nodes_[id];
    if (!n.is_root()) {
      const SchedClass& p = nodes_[n.parent];
      const double wsum = sibling_weight_sum(p);
      Rate share = p.theta * (n.policy.weight / wsum);
      if (n.policy.has_guarantee() && n.policy.guarantee > share) share = n.policy.guarantee;
      if (share > n.policy.ceil) share = n.policy.ceil;
      n.theta = share;
    }
    n.lendable = n.theta;
    n.bucket.set_capacity(default_burst_bytes(n.theta, params_.burst_window, params_.min_burst_bytes));
    n.bucket.reset(n.bucket.capacity());
    n.shadow.set_capacity(default_burst_bytes(n.theta, params_.shadow_burst_window, params_.min_burst_bytes));
    n.shadow.reset(n.shadow.capacity());
    n.last_update = now;
  }
  finalized_ = true;
}

ClassId SchedulingTree::find(std::string_view name) const {
  for (const auto& n : nodes_)
    if (n.name == name) return n.id;
  return kNoClass;
}

QosLabel SchedulingTree::label_for(ClassId leaf, std::vector<ClassId> borrow) const {
  assert(leaf < nodes_.size());
  QosLabel label;
  for (ClassId c = leaf; c != kNoClass; c = nodes_[c].parent) label.path.push_back(c);
  std::reverse(label.path.begin(), label.path.end());
  label.borrow = std::move(borrow);
  return label;
}

double SchedulingTree::sibling_weight_sum(const SchedClass& parent) const {
  double w = 0.0;
  for (ClassId c : parent.children) w += nodes_[c].policy.weight;
  return w > 0.0 ? w : 1.0;
}

// Demand-limited reservation of a guaranteed sibling (see policy.h): an
// inactive class reserves nothing; an active one reserves up to
// min(guarantee, weighted share) but no more than its measured demand plus
// ramp headroom.
static Rate reserved_rate(const SchedClass& c, Rate weighted_share, const FvParams& p,
                          bool active) {
  if (!c.policy.has_guarantee() || !active) return Rate::zero();
  Rate policy_res = std::min(c.policy.guarantee, weighted_share);
  Rate demand_lim = c.gamma() * p.demand_headroom + weighted_share * p.activation_floor_frac;
  return std::min(policy_res, demand_lim).clamped();
}

Rate SchedulingTree::compute_theta(ClassId id, sim::SimTime now) const {
  const SchedClass& me = nodes_[id];
  if (me.is_root()) return me.policy.ceil;
  const SchedClass& parent = nodes_[me.parent];
  const Rate tp = parent.theta;
  const double wsum = sibling_weight_sum(parent);

  // Pass 1: per-sibling weighted shares and guarantee reservations.
  Rate total_reserved = Rate::zero();
  Rate my_reserved = Rate::zero();
  for (ClassId sid : parent.children) {
    const SchedClass& s = nodes_[sid];
    const Rate wshare = tp * (s.policy.weight / wsum);
    const Rate r = reserved_rate(s, wshare, params_, is_active(s, now));
    total_reserved += r;
    if (sid == id) my_reserved = r;
  }
  Rate avail = (tp - total_reserved).clamped();

  // Pass 2: walk priority levels in ascending order. Every level sees the
  // bandwidth left over after the *measured* consumption of the levels above
  // it (Eq. 4 generalized); within a level, the split is weighted (Eq. 5).
  std::map<PrioLevel, double> level_weights;
  for (ClassId sid : parent.children)
    level_weights[nodes_[sid].policy.prio] += nodes_[sid].policy.weight;

  for (const auto& [level, lw] : level_weights) {
    if (level == me.policy.prio) {
      Rate theta = my_reserved + avail * (me.policy.weight / lw);
      if (theta > me.policy.ceil) theta = me.policy.ceil;
      return theta;
    }
    if (level > me.policy.prio) break;  // map is ordered; shouldn't happen
    // Subtract what this (more preferred) level actually consumes.
    Rate consumed = Rate::zero();
    for (ClassId sid : parent.children) {
      const SchedClass& s = nodes_[sid];
      if (s.policy.prio != level) continue;
      if (!is_active(s, now)) continue;
      const Rate wshare = tp * (s.policy.weight / wsum);
      const Rate r = reserved_rate(s, wshare, params_, true);
      Rate s_theta = r + avail * (s.policy.weight / lw);
      if (s_theta > s.policy.ceil) s_theta = s.policy.ceil;
      const Rate above_res = (s.gamma() - r).clamped();
      const Rate cap = (s_theta - r).clamped();
      consumed += std::min(above_res, cap);
    }
    avail = (avail - consumed).clamped();
  }
  // `me` not among the parent's children levels — structurally impossible.
  return Rate::zero();
}

void SchedulingTree::update_class(ClassId id, sim::SimTime now) {
  SchedClass& c = nodes_[id];
  const sim::SimDuration dt = now - c.last_update;
  if (dt <= 0) return;

  // Γ evaluation over the closing epoch (Eq. 3), with expired-status
  // restoration (Subprocedure 3).
  const double inst_gamma_bps = c.consumed_bytes * 8e9 / static_cast<double>(dt);
  c.consumed_bytes = 0.0;
  if (c.ever_seen && now - c.last_seen > params_.expiry_threshold) {
    c.gamma_bps.reset();  // restore to initial: flow has gone quiet
  } else {
    c.gamma_bps.observe(now, inst_gamma_bps);
  }

  // θ recomputation from shared state (condition templates).
  if (!params_.freeze_theta) c.theta = compute_theta(id, now);

  // Replenish the limiting bucket at the new rate.
  c.bucket.set_capacity(default_burst_bytes(c.theta, params_.burst_window, params_.min_burst_bytes));
  c.bucket.replenish(c.theta, dt);

  // Lendable rate (Eq. 6) feeds the shadow bucket — but only for classes
  // whose slack is not already redistributed by the priority-residual rule
  // (Eq. 4). A class with lower-priority siblings hands its unused rate to
  // them through θ recomputation; exposing the same slack through the
  // shadow bucket would double-allocate it (the subtree could then exceed
  // its parent's budget). Pure-weighted classes and the lowest priority
  // level lend normally; that is exactly what Fig. 9's labels rely on.
  bool residual_goes_to_siblings = false;
  if (!c.is_root()) {
    for (ClassId sid : nodes_[c.parent].children) {
      if (sid != id && nodes_[sid].policy.prio > c.policy.prio) {
        residual_goes_to_siblings = true;
        break;
      }
    }
  }
  c.lendable = residual_goes_to_siblings ? Rate::zero() : (c.theta - c.gamma()).clamped();
  c.shadow.set_capacity(default_burst_bytes(c.lendable, params_.shadow_burst_window, params_.min_burst_bytes));
  c.shadow.replenish(c.lendable, dt);

  c.last_update = now;
}

void SchedulingTree::count_forwarded(const std::vector<ClassId>& path, std::uint32_t bytes) {
  for (ClassId id : path) {
    SchedClass& c = nodes_[id];
    c.consumed_bytes += static_cast<double>(bytes);
    ++c.fwd_packets;
    c.fwd_bytes += bytes;
  }
}

void SchedulingTree::touch(const std::vector<ClassId>& path, sim::SimTime now) {
  for (ClassId id : path) {
    nodes_[id].last_seen = now;
    nodes_[id].ever_seen = true;
  }
}

bool SchedulingTree::reconfigure(ClassId id, const NodePolicy& policy) {
  if (!validate_deltas({{id, policy}}).empty()) return false;
  SchedClass& c = nodes_[id];
  if (c.is_root()) {
    // Root carries the link/ceiling rate; θ follows immediately.
    c.policy = policy;
    c.theta = policy.ceil;
    return true;
  }
  c.policy = policy;
  return true;
}

std::string SchedulingTree::validate_deltas(const PolicyManifest& deltas) const {
  // Per-policy shape checks.
  for (const auto& [id, p] : deltas) {
    if (id >= nodes_.size()) return "unknown class id " + std::to_string(id);
    const std::string& name = nodes_[id].name;
    if (!std::isfinite(p.weight) || p.weight <= 0.0)
      return "class '" + name + "': weight must be positive and finite";
    if (p.guarantee < Rate::zero())
      return "class '" + name + "': negative guarantee rate";
    if (!(p.ceil > Rate::zero()))
      return "class '" + name + "': ceil must be positive";
    if (p.has_guarantee() && p.guarantee > p.ceil)
      return "class '" + name + "': guarantee exceeds ceil";
  }
  // Dry run: clone the current policies, apply the deltas, and check that no
  // parent's ceiling is oversubscribed by the sum of its children's
  // guarantees — the class of bug the bare reconfigure() used to let in.
  std::vector<NodePolicy> merged(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) merged[i] = nodes_[i].policy;
  for (const auto& [id, p] : deltas) merged[id] = p;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const SchedClass& parent = nodes_[i];
    if (parent.children.empty()) continue;
    Rate guarantee_sum = Rate::zero();
    for (ClassId cid : parent.children)
      if (merged[cid].has_guarantee()) guarantee_sum += merged[cid].guarantee;
    if (guarantee_sum > merged[i].ceil)
      return "children of '" + parent.name +
             "' have guarantees summing above the parent ceil (" +
             std::to_string(guarantee_sum.gbps()) + " > " +
             std::to_string(merged[i].ceil.gbps()) + " Gbps)";
  }
  return {};
}

std::uint32_t SchedulingTree::stage(const PolicyManifest& deltas) {
  for (const auto& [id, p] : deltas) {
    assert(id < nodes_.size());
    SchedClass& c = nodes_[id];
    if (!c.has_staged) ++staged_remaining_;
    c.staged_policy = p;
    c.has_staged = true;
  }
  staged_epoch_ = epoch_ + 1;
  return staged_epoch_;
}

void SchedulingTree::commit_class(ClassId id, sim::SimTime now) {
  SchedClass& c = nodes_[id];
  if (!c.has_staged) return;
  c.policy = c.staged_policy;
  c.has_staged = false;
  if (staged_remaining_ > 0) --staged_remaining_;
  if (c.is_root()) c.theta = c.policy.ceil;
  refresh_theta(now);
}

void SchedulingTree::refresh_theta(sim::SimTime now) {
  // A committed policy changes the shared words every class's θ derivation
  // reads. Idle siblings never run update_class, so without this sweep they
  // would hold θ derived from the OLD weights forever and a per-level budget
  // could stay oversubscribed across the swap. Index order is top-down
  // (parents precede children), matching compute_theta's dependency on
  // parent θ.
  if (params_.freeze_theta) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    SchedClass& c = nodes_[i];
    c.theta = compute_theta(static_cast<ClassId>(i), now);
    // Stale lendable (θ_old − γ) may now exceed the shrunk θ; under-lending
    // until the class's next update epoch is safe, over-lending is not.
    if (c.lendable > c.theta) c.lendable = c.theta;
  }
}

SchedulingTree::RuntimeSnapshot SchedulingTree::snapshot_runtime() const {
  RuntimeSnapshot snap;
  snap.classes.reserve(nodes_.size());
  for (const auto& c : nodes_) {
    ClassRuntime r;
    r.gamma_valid = c.gamma_bps.has_value();
    r.gamma_value = r.gamma_valid ? c.gamma_bps.value() : 0.0;
    r.last_seen = c.last_seen;
    r.ever_seen = c.ever_seen;
    snap.classes.push_back(r);
  }
  return snap;
}

void SchedulingTree::restore_runtime(const RuntimeSnapshot& snap,
                                     sim::SimTime now) {
  if (snap.classes.size() != nodes_.size()) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    SchedClass& c = nodes_[i];
    const ClassRuntime& r = snap.classes[i];
    // Zero credit, not pre-crash credit: a dead worker may have consumed
    // tokens it never reported, so any restored balance risks over-grant.
    // Under-grant self-heals within one replenish epoch.
    c.bucket.reset(0.0);
    c.shadow.reset(0.0);
    c.consumed_bytes = 0.0;
    c.last_update = now;
    c.gamma_bps.reset();
    // Ewma's first observe() adopts the value directly, so this restores
    // the pre-crash Γ estimate exactly rather than re-warming from zero.
    if (r.gamma_valid) c.gamma_bps.observe(now, r.gamma_value);
    c.last_seen = r.last_seen;
    c.ever_seen = r.ever_seen;
  }
  refresh_theta(now);
}

void SchedulingTree::commit_all(sim::SimTime now) {
  for (auto& n : nodes_)
    if (n.has_staged) commit_class(n.id, now);
  epoch_ = staged_epoch_;
  staged_remaining_ = 0;
}

void SchedulingTree::abandon_stage() {
  for (auto& n : nodes_) n.has_staged = false;
  staged_remaining_ = 0;
  staged_epoch_ = epoch_;
}

std::string SchedulingTree::validate() const {
  if (nodes_.empty()) return "tree has no root";
  for (const auto& n : nodes_) {
    if (n.policy.weight <= 0.0) return "class '" + n.name + "' has non-positive weight";
    if (n.policy.has_guarantee() && n.policy.guarantee > n.policy.ceil)
      return "class '" + n.name + "' guarantee exceeds ceil";
    if (!n.is_root() && n.parent >= nodes_.size())
      return "class '" + n.name + "' has invalid parent";
    if (!n.is_root() && nodes_[n.parent].id == n.id)
      return "class '" + n.name + "' is its own parent";
  }
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].is_root()) return "multiple roots";
  return {};
}

}  // namespace flowvalve::core
