// Traffic-class policy descriptors and FlowValve tuning knobs.
//
// A class's bandwidth share is described by the "condition templates" of
// paper §IV-C: a priority level (strict between levels), a weight (split
// within a level, Eq. 5), an optional guarantee (minimum reserved rate, the
// ML example) and an optional ceiling (the ¾·B NC example). Root classes
// carry the link rate.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "sim/time.h"

namespace flowvalve::core {

using sim::Rate;
using sim::SimDuration;

/// Priority level: 0 is the most preferred; classes at a numerically lower
/// level strictly preempt higher levels among siblings.
using PrioLevel = std::uint8_t;

struct NodePolicy {
  PrioLevel prio = 0;
  double weight = 1.0;                    // relative among same-level siblings
  Rate guarantee = Rate::zero();          // reserved minimum (0 = none)
  Rate ceil = Rate::gigabits_per_sec(1e6);  // effectively unlimited

  bool has_guarantee() const { return !guarantee.is_zero(); }
};

/// Global FlowValve tuning parameters (defaults follow the prototype's
/// characteristics described in §IV-D: millisecond-scale update epochs,
/// tens-of-milliseconds expiry).
struct FvParams {
  /// Minimum gap between two update-subprocedure executions for one class.
  SimDuration update_interval = sim::microseconds(100);

  /// Status older than this is considered expired and restored to initial
  /// values (Subprocedure 3).
  SimDuration expiry_threshold = sim::milliseconds(20);

  /// Half-life of the Γ (token consumption rate) EWMA smoothing.
  SimDuration gamma_half_life = sim::milliseconds(2);

  /// Token bucket depth expressed as time at the class's current θ.
  SimDuration burst_window = sim::microseconds(150);

  /// Shadow (lendable) bucket depth as time at the lendable rate.
  SimDuration shadow_burst_window = sim::microseconds(100);

  /// Bucket depth floor in bytes (two MTU frames by default). Scenarios
  /// using super-packet aggregation raise this to two super-packets.
  double min_burst_bytes = 2.0 * 1518.0;

  /// Demand headroom factor: a guaranteed class's reservation follows
  /// min(policy reservation, headroom · Γ + activation floor) so idle
  /// guarantees do not strand bandwidth but active classes can ramp.
  double demand_headroom = 1.25;

  /// Activation floor as a fraction of the weighted share, granted to any
  /// recently-seen class so it can ramp from zero.
  double activation_floor_frac = 0.05;

  /// Ablation switch: when true, update epochs replenish buckets and
  /// evaluate Γ but never recompute θ — rates stay at their static seeded
  /// shares (no runtime estimation; see bench/ablation_locking).
  bool freeze_theta = false;
};

}  // namespace flowvalve::core
