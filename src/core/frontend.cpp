#include "core/frontend.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace flowvalve::core {
namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (std::isspace(static_cast<unsigned char>(ch))) {
      if (!cur.empty()) out.push_back(std::move(cur)), cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

[[noreturn]] void fail(const std::string& msg) { throw std::invalid_argument("fv: " + msg); }

double parse_number(std::string_view s, std::string_view what) {
  double v = 0.0;
  const auto* end = s.data() + s.size();
  auto res = std::from_chars(s.data(), end, v);
  if (res.ec != std::errc() || res.ptr != end)
    fail("bad " + std::string(what) + " '" + std::string(s) + "'");
  return v;
}

std::uint64_t parse_uint(std::string_view s, std::string_view what) {
  std::uint64_t v = 0;
  const auto* end = s.data() + s.size();
  auto res = std::from_chars(s.data(), end, v);
  if (res.ec != std::errc() || res.ptr != end)
    fail("bad " + std::string(what) + " '" + std::string(s) + "'");
  return v;
}

}  // namespace

Rate parse_rate(std::string_view text) {
  std::size_t unit_pos = 0;
  while (unit_pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[unit_pos])) || text[unit_pos] == '.'))
    ++unit_pos;
  if (unit_pos == 0) fail("rate '" + std::string(text) + "' has no number");
  const double v = parse_number(text.substr(0, unit_pos), "rate");
  std::string unit(text.substr(unit_pos));
  std::transform(unit.begin(), unit.end(), unit.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (unit == "bit" || unit == "bps") return Rate::bits_per_sec(v);
  if (unit == "kbit") return Rate::kilobits_per_sec(v);
  if (unit == "mbit") return Rate::megabits_per_sec(v);
  if (unit == "gbit") return Rate::gigabits_per_sec(v);
  fail("unknown rate unit '" + unit + "'");
}

std::uint32_t parse_ipv4(std::string_view text) {
  std::uint32_t out = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    std::size_t dot = text.find('.', pos);
    std::string_view part =
        octet < 3 ? text.substr(pos, dot - pos) : text.substr(pos);
    if (octet < 3 && dot == std::string_view::npos) fail("bad ip '" + std::string(text) + "'");
    const std::uint64_t v = parse_uint(part, "ip octet");
    if (v > 255) fail("ip octet out of range in '" + std::string(text) + "'");
    out = out << 8 | static_cast<std::uint32_t>(v);
    pos = dot + 1;
  }
  return out;
}

FvFrontend::FvFrontend(FvParams params) : FvFrontend(params, {}, {}) {}

FvFrontend::FvFrontend(FvParams params, ClassifierCosts classifier_costs,
                       ExactMatchFlowCache::Options emc)
    : params_(params), tree_(params), classifier_(classifier_costs, emc) {}

void FvFrontend::apply(std::string_view command) {
  auto tok = tokenize(command);
  if (tok.empty()) return;
  std::size_t i = 0;
  if (tok[0] == "fv") ++i;
  if (i >= tok.size()) fail("empty command");
  const std::string& object = tok[i];
  if (i + 1 >= tok.size() || tok[i + 1] != "add")
    fail("only 'add' commands are supported (got '" + object + " ...')");
  if (object == "qdisc") {
    cmd_qdisc(tok);
  } else if (object == "class") {
    cmd_class(tok);
  } else if (object == "filter") {
    cmd_filter(tok);
  } else if (object == "borrow") {
    cmd_borrow(tok);
  } else {
    fail("unknown object '" + object + "'");
  }
  finalized_ = false;
}

void FvFrontend::apply_script(std::string_view script) {
  std::size_t pos = 0;
  while (pos <= script.size()) {
    std::size_t nl = script.find('\n', pos);
    std::string_view line =
        script.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    if (auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    if (!line.empty() && line.find_first_not_of(" \t\r") != std::string_view::npos)
      apply(line);
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
}

void FvFrontend::cmd_qdisc(const std::vector<std::string>& tok) {
  std::string handle = "1:";
  std::string parent_id;
  std::string kind = "htb";
  Rate rate = Rate::gigabits_per_sec(10);
  bool have_rate = false;
  unsigned bands = 3;
  for (std::size_t i = 0; i + 1 < tok.size(); ++i) {
    if (tok[i] == "handle") handle = tok[i + 1];
    if (tok[i] == "parent") parent_id = tok[i + 1];
    if (tok[i] == "rate") {
      rate = parse_rate(tok[i + 1]);
      have_rate = true;
    }
    if (tok[i] == "bands") bands = static_cast<unsigned>(parse_uint(tok[i + 1], "bands"));
    if (tok[i] == "default") default_classid_ = tok[i + 1];
    if (tok[i + 1] == "htb" || tok[i + 1] == "prio") kind = tok[i + 1];
  }
  if (!handle.empty() && handle.back() != ':') fail("handle must end with ':'");
  if (classid_map_.count(handle)) fail("duplicate qdisc handle '" + handle + "'");

  if (parent_id.empty()) {
    // Root qdisc.
    if (tree_.size() != 0) fail("root qdisc already declared");
    if (!have_rate) fail("root qdisc needs an explicit 'rate' (the link rate)");
    const ClassId root = tree_.add_root("root", rate);
    classid_map_[handle] = root;
    classid_map_[handle + "0"] = root;
  } else {
    // Chained qdisc: the new handle scopes classes under an existing class.
    auto pit = classid_map_.find(parent_id);
    if (pit == classid_map_.end()) fail("qdisc parent '" + parent_id + "' unknown");
    classid_map_[handle] = pit->second;
    classid_map_[handle + "0"] = pit->second;
  }

  if (kind == "prio") {
    // PRIO expands to one class per band with ascending strict priorities.
    const ClassId attach = classid_map_[handle];
    for (unsigned b = 0; b < bands; ++b) {
      NodePolicy pol;
      pol.prio = static_cast<PrioLevel>(b);
      const std::string classid = handle + std::to_string(b);
      if (b == 0 && classid_map_.count(classid)) {
        // handle+"0" aliases the attach point for htb; for prio it must be
        // the band class — rebind it.
        classid_map_.erase(classid);
      }
      const ClassId id =
          tree_.add_class("band" + std::to_string(b) + "@" + handle, attach, pol);
      classid_map_[classid] = id;
    }
  }
}

void FvFrontend::cmd_class(const std::vector<std::string>& tok) {
  std::string parent_id, classid, name;
  NodePolicy pol;
  bool have_rate = false;
  Rate rate = Rate::zero();
  // Scan generically: options may appear anywhere after "add".
  for (std::size_t i = 0; i + 1 < tok.size(); ++i) {
    const std::string& k = tok[i];
    const std::string& v = tok[i + 1];
    if (k == "parent") parent_id = v;
    else if (k == "classid") classid = v;
    else if (k == "rate") { rate = parse_rate(v); have_rate = true; }
    else if (k == "ceil") pol.ceil = parse_rate(v);
    else if (k == "guarantee") pol.guarantee = parse_rate(v);
    else if (k == "prio") pol.prio = static_cast<PrioLevel>(parse_uint(v, "prio"));
    else if (k == "weight") pol.weight = parse_number(v, "weight");
    else if (k == "name") name = v;
  }
  if (parent_id.empty() || classid.empty()) fail("class needs 'parent' and 'classid'");
  auto pit = classid_map_.find(parent_id);
  if (pit == classid_map_.end()) fail("unknown parent '" + parent_id + "'");
  if (classid_map_.count(classid)) fail("duplicate classid '" + classid + "'");
  // `rate` in tc-HTB terms is the committed rate; we map it onto the weight
  // if no explicit weight was given (proportional shares), and onto the
  // guarantee when 'guarantee' was not given but prio > 0 semantics need it.
  if (have_rate && pol.weight == 1.0) pol.weight = std::max(rate.mbps(), 1e-3);
  if (name.empty()) name = classid;
  const ClassId id = tree_.add_class(name, pit->second, pol);
  classid_map_[classid] = id;
}

void FvFrontend::cmd_filter(const std::vector<std::string>& tok) {
  PendingFilter pf;
  for (std::size_t i = 0; i + 1 < tok.size(); ++i) {
    const std::string& k = tok[i];
    const std::string& v = tok[i + 1];
    if (k == "pref") pf.rule.pref = static_cast<std::uint32_t>(parse_uint(v, "pref"));
    else if (k == "vf") pf.rule.vf_port = static_cast<std::uint16_t>(parse_uint(v, "vf"));
    else if (k == "proto") {
      if (v == "tcp") pf.rule.proto = net::IpProto::kTcp;
      else if (v == "udp") pf.rule.proto = net::IpProto::kUdp;
      else fail("unknown proto '" + v + "'");
    } else if (k == "src" || k == "dst") {
      std::string_view spec = v;
      std::uint8_t len = 32;
      if (auto slash = spec.find('/'); slash != std::string_view::npos) {
        len = static_cast<std::uint8_t>(parse_uint(spec.substr(slash + 1), "prefix len"));
        spec = spec.substr(0, slash);
      }
      if (len > 32) fail("prefix length > 32");
      const std::uint32_t addr = parse_ipv4(spec);
      if (k == "src") { pf.rule.src_ip = addr; pf.rule.src_prefix_len = len; }
      else { pf.rule.dst_ip = addr; pf.rule.dst_prefix_len = len; }
    } else if (k == "sport") {
      pf.rule.src_port = static_cast<std::uint16_t>(parse_uint(v, "sport"));
    } else if (k == "dport") {
      pf.rule.dst_port = static_cast<std::uint16_t>(parse_uint(v, "dport"));
    } else if (k == "classid") {
      pf.target_classid = v;
    }
  }
  if (pf.target_classid.empty()) fail("filter needs 'classid'");
  pf.rule.name = "filter->" + pf.target_classid;
  pending_filters_.push_back(std::move(pf));
}

void FvFrontend::cmd_borrow(const std::vector<std::string>& tok) {
  std::string classid, from;
  for (std::size_t i = 0; i + 1 < tok.size(); ++i) {
    if (tok[i] == "classid") classid = tok[i + 1];
    if (tok[i] == "from") from = tok[i + 1];
  }
  if (classid.empty() || from.empty()) fail("borrow needs 'classid' and 'from'");
  auto it = classid_map_.find(classid);
  if (it == classid_map_.end()) fail("unknown classid '" + classid + "'");
  auto& spec = borrow_specs_[it->second];
  std::size_t pos = 0;
  while (pos <= from.size()) {
    std::size_t comma = from.find(',', pos);
    spec.push_back(from.substr(pos, comma == std::string::npos ? std::string::npos
                                                               : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
}

ClassId FvFrontend::resolve_classid(std::string_view classid) const {
  auto it = classid_map_.find(classid);
  return it == classid_map_.end() ? kNoClass : it->second;
}

std::string FvFrontend::finalize(sim::SimTime now) {
  if (tree_.size() == 0) return "no root qdisc declared";
  if (auto err = tree_.validate(); !err.empty()) return err;
  tree_.finalize(now);

  // One label per leaf: hierarchy path + resolved borrowing list.
  leaf_labels_.clear();
  for (ClassId id = 0; id < tree_.size(); ++id) {
    const SchedClass& c = tree_.at(id);
    if (!c.is_leaf() || c.is_root()) continue;
    std::vector<ClassId> borrow;
    if (auto it = borrow_specs_.find(id); it != borrow_specs_.end()) {
      for (const std::string& spec : it->second) {
        const ClassId lender = resolve_classid(spec);
        if (lender == kNoClass) return "borrow: unknown classid '" + spec + "'";
        borrow.push_back(lender);
      }
    }
    leaf_labels_[id] = labels_.intern(tree_.label_for(id, std::move(borrow)));
  }

  // Resolve filters now that labels exist.
  for (auto& pf : pending_filters_) {
    const ClassId target = resolve_classid(pf.target_classid);
    if (target == kNoClass) return "filter: unknown classid '" + pf.target_classid + "'";
    auto lit = leaf_labels_.find(target);
    if (lit == leaf_labels_.end())
      return "filter targets non-leaf class '" + pf.target_classid + "'";
    FilterRule rule = pf.rule;
    rule.label = lit->second;
    classifier_.add_rule(std::move(rule));
  }

  if (!default_classid_.empty()) {
    const ClassId def = resolve_classid(default_classid_);
    if (def == kNoClass) return "qdisc default: unknown classid '" + default_classid_ + "'";
    auto lit = leaf_labels_.find(def);
    if (lit == leaf_labels_.end())
      return "qdisc default targets non-leaf class '" + default_classid_ + "'";
    classifier_.set_default_label(lit->second);
  }
  finalized_ = true;
  return {};
}

ClassLabelId FvFrontend::label_of(ClassId leaf) const {
  auto it = leaf_labels_.find(leaf);
  return it == leaf_labels_.end() ? net::kUnclassified : it->second;
}

ClassLabelId FvFrontend::label_of(std::string_view class_name) const {
  const ClassId id = tree_.find(class_name);
  return id == kNoClass ? net::kUnclassified : label_of(id);
}

}  // namespace flowvalve::core
