#include "core/scheduling_function.h"

#include <cassert>

namespace flowvalve::core {

SchedulingFunction::SchedulingFunction(SchedulingTree& tree, const LabelTable& labels,
                                       SchedulerCosts costs)
    : tree_(tree), labels_(labels), costs_(costs) {
  assert(tree.finalized() && "finalize() the tree before scheduling");
}

std::uint32_t SchedulingFunction::maybe_update(ClassId id, sim::SimTime now,
                                               std::uint32_t pkt_epoch,
                                               SchedDecision& d) {
  SchedClass& c = tree_.at(id);
  std::uint32_t cycles = 0;
  const bool wants_commit = tree_.rollout_active() && c.has_staged &&
                            pkt_epoch >= tree_.staged_epoch();
  if (!wants_commit && now - c.last_update < tree_.params().update_interval) return cycles;
  cycles += costs_.lock_attempt_cycles;
  ++d.lock_attempts;
  if (c.update_lock.try_acquire(now, costs_.lock_hold_ns)) {
    if (wants_commit) {
      // A packet from a cut-over worker pulls the staged policy in under the
      // same lock the update subprocedure already takes (Fig. 8): no extra
      // synchronization, just commit_cycles more inside the guarded section.
      tree_.commit_class(id, now);
      cycles += costs_.commit_cycles;
      ++stats_.policy_commits;
    }
    tree_.update_class(id, now);
    cycles += costs_.update_cycles;
    ++d.updates_run;
    ++stats_.updates;
  } else {
    // Another core is updating this class right now; we only meter
    // (Fig. 8 — this does not compromise validity).
    ++stats_.lock_failures;
  }
  return cycles;
}

SchedDecision SchedulingFunction::schedule(net::Packet& pkt, sim::SimTime now) {
  SchedDecision d;
  assert(pkt.label != net::kUnclassified && "packet must be labeled first");
  const QosLabel& label = labels_.get(pkt.label);
  assert(!label.path.empty());

  // Record activity first: even packets that end up dropped represent
  // demand, which the expiry logic must see.
  tree_.touch(label.path, now);

  // Lines 1-5: walk the hierarchy class label, refreshing token buckets.
  for (ClassId id : label.path) {
    d.cycles += maybe_update(id, now, pkt.policy_epoch, d);
    d.cycles += costs_.count_cycles;
  }

  // Lines 6-8: meter at the leaf. Tokens are charged for full wire
  // occupancy (frame + preamble + IFG): an on-NIC scheduler meters what the
  // wire actually serializes, which is what keeps the Tx FIFO shallow.
  const ClassId leaf = label.path.back();
  const std::uint32_t charge = pkt.wire_occupancy_bytes();
  d.cycles += costs_.meter_cycles;
  if (tree_.at(leaf).bucket.meter(charge) == MeterColor::kGreen) {
    d.metered_green = true;
    d.verdict = Verdict::kForward;
    tree_.count_forwarded(label.path, charge);
    ++stats_.forwarded;
    return d;
  }

  // Lines 9-15: borrowing — query each lender's shadow bucket, refreshing
  // the lender's epoch on the way (borrower-driven updates keep idle
  // lenders' lendable rates live).
  for (ClassId lender : label.borrow) {
    d.cycles += maybe_update(lender, now, pkt.policy_epoch, d);
    d.cycles += costs_.borrow_query_cycles;
    if (tree_.at(lender).shadow.meter(charge) == MeterColor::kGreen) {
      d.verdict = Verdict::kForward;
      d.borrowed = true;
      d.borrowed_from = lender;
      tree_.count_forwarded(label.path, charge);
      SchedClass& leaf_cls = tree_.at(leaf);
      ++leaf_cls.borrowed_packets;
      leaf_cls.borrowed_bytes += pkt.wire_bytes;
      ++stats_.forwarded;
      ++stats_.borrowed;
      return d;
    }
  }

  // Line 16: drop.
  d.verdict = Verdict::kDrop;
  SchedClass& leaf_cls = tree_.at(leaf);
  ++leaf_cls.drop_packets;
  leaf_cls.drop_bytes += pkt.wire_bytes;
  ++stats_.dropped;
  return d;
}

SchedDecision SchedulingFunction::repeat_tail_drop(net::Packet& pkt,
                                                   sim::SimTime now,
                                                   const SchedDecision& prev) {
  assert(pkt.label != net::kUnclassified && "packet must be labeled first");
  assert(prev.verdict == Verdict::kDrop && !prev.borrowed &&
         prev.updates_run == 0 && !tree_.rollout_active());
  (void)now;
  const QosLabel& label = labels_.get(pkt.label);
  const ClassId leaf = label.path.back();
  // With updates_run == 0 every lock attempt the predecessor made was a
  // failure, and a lock held past `now` fails identically for this packet's
  // same-instant attempts — re-book them without touching the locks.
  stats_.lock_failures += prev.lock_attempts;
  SchedClass& leaf_cls = tree_.at(leaf);
  ++leaf_cls.drop_packets;
  leaf_cls.drop_bytes += pkt.wire_bytes;
  ++stats_.dropped;
  return prev;
}

}  // namespace flowvalve::core
