#include "core/scheduling_function.h"

#include <cassert>

namespace flowvalve::core {

SchedulingFunction::SchedulingFunction(SchedulingTree& tree, const LabelTable& labels,
                                       SchedulerCosts costs)
    : SchedulerBackend(tree, labels, costs) {}

SchedDecision SchedulingFunction::schedule(net::Packet& pkt, sim::SimTime now) {
  SchedDecision d;
  assert(pkt.label != net::kUnclassified && "packet must be labeled first");
  const QosLabel& label = labels_.get(pkt.label);
  assert(!label.path.empty());

  // Lines 1-5: activity touch + update walk (shared contention structure).
  walk_path(label, pkt, now, d);

  // Lines 6-8: meter at the leaf. Tokens are charged for full wire
  // occupancy (frame + preamble + IFG): an on-NIC scheduler meters what the
  // wire actually serializes, which is what keeps the Tx FIFO shallow.
  const ClassId leaf = label.path.back();
  const std::uint32_t charge = pkt.wire_occupancy_bytes();
  d.cycles += costs_.meter_cycles;
  if (tree_.at(leaf).bucket.meter(charge) == MeterColor::kGreen) {
    d.metered_green = true;
    d.verdict = Verdict::kForward;
    tree_.count_forwarded(label.path, charge);
    ++stats_.forwarded;
    return d;
  }

  // Lines 9-15: borrowing — query each lender's shadow bucket, refreshing
  // the lender's epoch on the way (borrower-driven updates keep idle
  // lenders' lendable rates live).
  for (ClassId lender : label.borrow) {
    d.cycles += maybe_update(lender, now, pkt.policy_epoch, d);
    d.cycles += costs_.borrow_query_cycles;
    if (tree_.at(lender).shadow.meter(charge) == MeterColor::kGreen) {
      d.verdict = Verdict::kForward;
      d.borrowed = true;
      d.borrowed_from = lender;
      tree_.count_forwarded(label.path, charge);
      SchedClass& leaf_cls = tree_.at(leaf);
      ++leaf_cls.borrowed_packets;
      leaf_cls.borrowed_bytes += pkt.wire_bytes;
      ++stats_.forwarded;
      ++stats_.borrowed;
      return d;
    }
  }

  // Line 16: drop.
  d.verdict = Verdict::kDrop;
  book_drop(leaf, pkt);
  return d;
}

}  // namespace flowvalve::core
