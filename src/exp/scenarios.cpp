#include "exp/scenarios.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "baseline/dpdk_sched.h"
#include "baseline/htb.h"
#include "baseline/kernel_host.h"
#include "core/flowvalve.h"
#include "host/probes.h"
#include "np/flowvalve_processor.h"
#include "np/nic_pipeline.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "traffic/app.h"
#include "traffic/generators.h"

namespace flowvalve::exp {
namespace {

using baseline::DpdkPipeConfig;
using baseline::DpdkQosConfig;
using baseline::DpdkQosScheduler;
using baseline::HtbArtifacts;
using baseline::HtbClassConfig;
using baseline::HtbQdisc;
using baseline::KernelHostConfig;
using baseline::KernelHostDevice;
using core::FlowValveEngine;
using np::NicPipeline;
using np::NpConfig;


/// AIMD preset for greedy "iperf-style" apps on a `link`-rate policy.
traffic::TcpAimdConfig greedy_tcp(Rate link) {
  traffic::TcpAimdConfig tcp;
  tcp.start_rate = link * 0.02;
  tcp.min_rate = Rate::megabits_per_sec(20);
  tcp.max_rate = link * 1.4;  // probe beyond the policy so drops shape it
  tcp.rtt = sim::milliseconds(2);
  tcp.additive_increase = link * 0.02;
  tcp.md_factor = 0.9;
  return tcp;
}

/// Estimated host CPU for FlowValve runs: the mTCP/DPDK send path costs a
/// few hundred cycles per (super-)packet; everything else is on the NIC.
double fv_host_cores(const NicPipeline& pipeline, SimTime horizon) {
  constexpr double kSendPathCycles = 350.0;
  constexpr double kHostFreqHz = 2.3e9;
  const double cycles =
      static_cast<double>(pipeline.stats().submitted) * kSendPathCycles;
  return cycles / kHostFreqHz / sim::to_seconds(horizon);
}

struct AppDef {
  std::string name;
  std::uint32_t app_id;
  std::uint16_t vf;
  double start_s;
  double stop_s;
  unsigned conns = 1;
};

/// Shared driver for the throughput-over-time scenarios.
TimeSeriesResult drive_timeseries(sim::Simulator& sim, net::EgressDevice& device,
                                  const std::vector<AppDef>& defs, Rate link,
                                  SimTime horizon, std::uint64_t seed,
                                  std::uint32_t wire_bytes = kSuperPacketBytes) {
  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(device);

  TimeSeriesResult result;
  result.horizon = horizon;
  result.seed = seed;

  std::vector<std::unique_ptr<traffic::AppProcess>> apps;
  for (const auto& def : defs) {
    auto curve = std::make_unique<stats::ThroughputSeries>(sim::milliseconds(100));
    router.track_app(def.app_id, curve.get());
    result.apps.push_back(AppCurve{def.name, std::move(curve)});

    traffic::AppConfig cfg;
    cfg.name = def.name;
    cfg.app_id = def.app_id;
    cfg.vf_port = def.vf;
    cfg.num_connections = def.conns;
    cfg.wire_bytes = wire_bytes;
    cfg.tcp = greedy_tcp(link);
    cfg.src_port_base = static_cast<std::uint16_t>(20000 + 100 * def.app_id);
    auto app = std::make_unique<traffic::AppProcess>(sim, router, ids, cfg,
                                                     rng.split(def.name));
    app->run_between(sim::seconds_f(def.start_s), sim::seconds_f(def.stop_s));
    apps.push_back(std::move(app));
  }

  sim.run_until(horizon);
  return result;
}

}  // namespace

// With 64 KiB aggregation frames, buckets and epochs scale up ~13x so that
// one update epoch replenishes several frames' worth of tokens (the same
// tokens-per-frame granularity the MTU-scale defaults give).
core::FlowValveEngine::Options superpacket_engine_options(const np::NpConfig& nic) {
  core::FlowValveEngine::Options opt = np::engine_options_for(nic);
  opt.params.min_burst_bytes = 4.0 * kSuperPacketBytes;
  opt.params.update_interval = sim::microseconds(500);
  opt.params.burst_window = sim::milliseconds(2);
  opt.params.shadow_burst_window = sim::milliseconds(1);
  return opt;
}

// ------------------------------------------------------- result helpers ---

Rate TimeSeriesResult::mean_rate(const std::string& name, double t0_s,
                                 double t1_s) const {
  for (const auto& app : apps) {
    if (app.name != name) continue;
    const SimDuration bw = app.series->bin_width();
    const auto b0 = static_cast<std::size_t>(sim::seconds_f(t0_s) / bw);
    const auto b1 = static_cast<std::size_t>(sim::seconds_f(t1_s) / bw);
    return app.series->mean_rate(b0, b1);
  }
  return Rate::zero();
}

Rate TimeSeriesResult::total_rate(double t0_s, double t1_s) const {
  Rate total = Rate::zero();
  for (const auto& app : apps) total += mean_rate(app.name, t0_s, t1_s);
  return total;
}

std::vector<stats::NamedSeries> TimeSeriesResult::named_series() const {
  std::vector<stats::NamedSeries> out;
  out.reserve(apps.size());
  for (const auto& app : apps) out.push_back({app.name, app.series.get()});
  return out;
}

std::string TimeSeriesResult::table(SimDuration step) const {
  return stats::series_to_table(named_series(), horizon, step);
}

std::string TimeSeriesResult::ascii_chart(Rate max_rate) const {
  return stats::series_to_ascii(named_series(), horizon, max_rate);
}

// ------------------------------------------------------- policy scripts ---

std::string motivation_policy_script(Rate link_rate) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link_rate.gbps() << "gbit\n";
  s << "fv class add dev nic0 parent 1: classid 1:1 name NC prio 0 weight 1 ceil "
    << link_rate.gbps() * 0.75 << "gbit\n";
  s << "fv class add dev nic0 parent 1: classid 1:2 name S1 prio 1 weight 1\n";
  s << "fv class add dev nic0 parent 1:2 classid 1:20 name WS weight 1\n";
  s << "fv class add dev nic0 parent 1:2 classid 1:21 name S2 weight 2\n";
  s << "fv class add dev nic0 parent 1:21 classid 1:210 name KVS prio 0 weight 1\n";
  s << "fv class add dev nic0 parent 1:21 classid 1:211 name ML prio 1 weight 1 "
       "guarantee 2gbit\n";
  // Borrowing labels per §IV-C: NC may exceed its ceiling using S1's slack;
  // WS borrows vm1's slack via S2; ML borrows S2's slack and KVS's
  // reservation; KVS borrows ML's reservation and WS's share.
  s << "fv borrow add dev nic0 classid 1:1 from 1:2\n";
  s << "fv borrow add dev nic0 classid 1:20 from 1:21\n";
  s << "fv borrow add dev nic0 classid 1:211 from 1:21,1:210\n";
  s << "fv borrow add dev nic0 classid 1:210 from 1:211,1:20\n";
  s << "fv filter add dev nic0 pref 10 vf 0 classid 1:1\n";
  s << "fv filter add dev nic0 pref 20 vf 1 classid 1:210\n";
  s << "fv filter add dev nic0 pref 30 vf 2 classid 1:211\n";
  s << "fv filter add dev nic0 pref 40 vf 3 classid 1:20\n";
  return s.str();
}

std::string fair_queueing_script(Rate link_rate, unsigned classes) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link_rate.gbps() << "gbit\n";
  for (unsigned i = 0; i < classes; ++i)
    s << "fv class add dev nic0 parent 1: classid 1:1" << i << " name app" << i
      << " weight 1\n";
  for (unsigned i = 0; i < classes; ++i) {
    s << "fv borrow add dev nic0 classid 1:1" << i << " from ";
    bool first = true;
    for (unsigned j = 0; j < classes; ++j) {
      if (j == i) continue;
      if (!first) s << ",";
      s << "1:1" << j;
      first = false;
    }
    s << "\n";
  }
  for (unsigned i = 0; i < classes; ++i)
    s << "fv filter add dev nic0 pref " << 10 + i << " vf " << i << " classid 1:1" << i
      << "\n";
  return s.str();
}

std::string weighted_fq_script(Rate link_rate) {
  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << link_rate.gbps() << "gbit\n";
  // Fig. 12: App0:S1 = 1:1; App1:S2 = 1:1; App2:App3 = 1:1.
  s << "fv class add dev nic0 parent 1: classid 1:10 name App0 weight 1\n";
  s << "fv class add dev nic0 parent 1: classid 1:2 name S1 weight 1\n";
  s << "fv class add dev nic0 parent 1:2 classid 1:20 name App1 weight 1\n";
  s << "fv class add dev nic0 parent 1:2 classid 1:21 name S2 weight 1\n";
  s << "fv class add dev nic0 parent 1:21 classid 1:210 name App2 weight 1\n";
  s << "fv class add dev nic0 parent 1:21 classid 1:211 name App3 weight 1\n";
  // Unweighted mutual borrowing among all leaves (§V-A: "we do not enforce
  // weighted borrowing").
  s << "fv borrow add dev nic0 classid 1:10 from 1:20,1:210,1:211\n";
  s << "fv borrow add dev nic0 classid 1:20 from 1:10,1:210,1:211\n";
  s << "fv borrow add dev nic0 classid 1:210 from 1:10,1:20,1:211\n";
  s << "fv borrow add dev nic0 classid 1:211 from 1:10,1:20,1:210\n";
  s << "fv filter add dev nic0 pref 10 vf 0 classid 1:10\n";
  s << "fv filter add dev nic0 pref 11 vf 1 classid 1:20\n";
  s << "fv filter add dev nic0 pref 12 vf 2 classid 1:210\n";
  s << "fv filter add dev nic0 pref 13 vf 3 classid 1:211\n";
  return s.str();
}

// ------------------------------------------------ Fig. 3 / 11(a) runners --

namespace {

const std::vector<AppDef>& motivation_timeline() {
  static const std::vector<AppDef> defs = {
      {"NC", 0, 0, 0.0, 15.0, 1},
      {"KVS", 1, 1, 15.0, 45.0, 1},
      {"ML", 2, 2, 15.0, 60.0, 1},
      {"WS", 3, 3, 30.0, 60.0, 1},
  };
  return defs;
}

}  // namespace

TimeSeriesResult run_fig11a_fv_motivation(std::uint64_t seed, SimTime horizon) {
  sim::Simulator sim;
  // The physical port is the 40GbE Netronome; the 10 Gbps budget is policy.
  NpConfig nic = np::agilio_cx_40g();
  const Rate link = Rate::gigabits_per_sec(10);

  FlowValveEngine engine(superpacket_engine_options(nic));
  const std::string err = engine.configure(motivation_policy_script(link));
  if (!err.empty()) throw std::runtime_error("fv config: " + err);

  np::FlowValveProcessor processor(engine);
  NicPipeline pipeline(sim, nic, processor);

  TimeSeriesResult result =
      drive_timeseries(sim, pipeline, motivation_timeline(), link, horizon, seed);
  result.host_cores_used = fv_host_cores(pipeline, horizon);
  return result;
}

TimeSeriesResult run_fig3_htb_motivation(std::uint64_t seed, SimTime horizon) {
  sim::Simulator sim;
  const Rate link = Rate::gigabits_per_sec(10);

  HtbArtifacts artifacts;
  artifacts.enabled = true;
  // Super-packet calibration of the rate-table undercharge (EXPERIMENTS.md):
  // 0.84 reproduces the ≈12 Gbps wire rate against the 10 Gbps ceiling.
  artifacts.charge_factor = 0.84;
  auto htb = std::make_unique<HtbQdisc>(link, link, artifacts);

  auto add = [&](const char* name, const char* parent, double rate_g, double ceil_g,
                 int prio) {
    HtbClassConfig c;
    c.name = name;
    c.parent = parent;
    c.rate = Rate::gigabits_per_sec(rate_g);
    c.ceil = Rate::gigabits_per_sec(ceil_g);
    c.prio = prio;
    c.queue_limit = 64;  // super-packets (≈4 MB, tc-typical byte depth)
    htb->add_class(c);
  };
  add("NC", "", 1.0, 10.0, 0);
  add("vm1", "", 6.0, 10.0, 1);
  add("vm2", "", 3.0, 10.0, 1);
  add("KVS", "vm1", 2.0, 10.0, 0);
  add("ML", "vm1", 2.0, 10.0, 1);
  add("WS", "vm2", 3.0, 10.0, 1);

  htb->set_classifier([](const net::Packet& pkt) -> std::string {
    switch (pkt.app_id) {
      case 0: return "NC";
      case 1: return "KVS";
      case 2: return "ML";
      default: return "WS";
    }
  });

  KernelHostConfig host;
  host.sender_cores = 4;
  host.wire_rate = Rate::gigabits_per_sec(40);  // physical 40GbE port
  KernelHostDevice device(sim, host, std::move(htb));

  TimeSeriesResult result =
      drive_timeseries(sim, device, motivation_timeline(), link, horizon, seed);
  result.host_cores_used = device.cores_used(horizon);
  return result;
}

// ----------------------------------------------------- Fig. 11(b)/(c) -----

TimeSeriesResult run_fig11b_fair_queueing(std::uint64_t seed, SimTime horizon,
                                          unsigned conns_per_app) {
  sim::Simulator sim;
  NpConfig nic = np::agilio_cx_40g();
  const Rate link = Rate::gigabits_per_sec(40);

  FlowValveEngine engine(superpacket_engine_options(nic));
  const std::string err = engine.configure(fair_queueing_script(link, 4));
  if (!err.empty()) throw std::runtime_error("fv config: " + err);
  np::FlowValveProcessor processor(engine);
  NicPipeline pipeline(sim, nic, processor);

  const double stop = sim::to_seconds(horizon);
  const std::vector<AppDef> defs = {
      {"App0", 0, 0, 0.0, stop, conns_per_app},
      {"App1", 1, 1, 10.0, stop, conns_per_app},
      {"App2", 2, 2, 20.0, stop, conns_per_app},
      {"App3", 3, 3, 30.0, stop, conns_per_app},
  };
  TimeSeriesResult result = drive_timeseries(sim, pipeline, defs, link, horizon, seed);
  result.host_cores_used = fv_host_cores(pipeline, horizon);
  return result;
}

TimeSeriesResult run_fig11c_weighted_fq(std::uint64_t seed, SimTime horizon,
                                        unsigned conns_per_app) {
  sim::Simulator sim;
  NpConfig nic = np::agilio_cx_40g();
  const Rate link = Rate::gigabits_per_sec(40);

  FlowValveEngine engine(superpacket_engine_options(nic));
  const std::string err = engine.configure(weighted_fq_script(link));
  if (!err.empty()) throw std::runtime_error("fv config: " + err);
  np::FlowValveProcessor processor(engine);
  NicPipeline pipeline(sim, nic, processor);

  const double stop = sim::to_seconds(horizon);
  const std::vector<AppDef> defs = {
      {"App0", 0, 0, 0.0, 30.0, conns_per_app},
      {"App1", 1, 1, 10.0, stop, conns_per_app},
      {"App2", 2, 2, 20.0, stop, conns_per_app},
      {"App3", 3, 3, 20.0, stop, conns_per_app},
  };
  TimeSeriesResult result = drive_timeseries(sim, pipeline, defs, link, horizon, seed);
  result.host_cores_used = fv_host_cores(pipeline, horizon);
  return result;
}

// ------------------------------------------------------------- Fig. 13 ----

namespace {

constexpr SimTime kFig13Warmup = sim::milliseconds(20);
constexpr SimTime kFig13Horizon = sim::milliseconds(70);
constexpr double kDpdkPerCoreMpps = 2.25;

}  // namespace

double run_fig13_flowvalve(std::uint32_t frame_bytes, std::uint64_t seed) {
  sim::Simulator sim;
  NpConfig nic = np::agilio_cx_40g();
  nic.num_vfs = 4;

  FlowValveEngine engine(np::engine_options_for(nic));
  const std::string err = engine.configure(fair_queueing_script(nic.wire_rate, 4));
  if (!err.empty()) throw std::runtime_error("fv config: " + err);
  np::FlowValveProcessor processor(engine);
  NicPipeline pipeline(sim, nic, processor);

  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);

  host::SaturationLoad::Config cfg;
  cfg.num_flows = 16;
  cfg.wire_bytes = frame_bytes;
  cfg.offered = nic.wire_rate;  // line-rate offered load
  cfg.num_vfs = 4;
  host::SaturationLoad load(sim, router, ids, cfg, sim::Rng(seed));
  load.start();
  sim.run_until(kFig13Warmup);
  load.begin_measurement();
  sim.run_until(kFig13Horizon);
  return load.delivered_mpps(kFig13Horizon);
}

double run_fig13_dpdk(std::uint32_t frame_bytes, unsigned cores, std::uint64_t seed) {
  sim::Simulator sim;
  DpdkQosConfig cfg;
  cfg.port_rate = Rate::gigabits_per_sec(40);
  cfg.run_cores = cores;
  DpdkQosScheduler sched(sim, cfg);
  for (int i = 0; i < 4; ++i) {
    DpdkPipeConfig pipe;
    pipe.name = "app" + std::to_string(i);
    pipe.rate = Rate::zero();  // fair queueing: WRR, no pipe shaping
    pipe.queues.push_back({"q", 0, 1.0});
    sched.add_pipe(pipe);
  }
  sched.set_classifier([](const net::Packet& pkt) {
    return "app" + std::to_string(pkt.app_id % 4) + "/q";
  });
  sched.start();

  traffic::IdAllocator ids;
  traffic::FlowRouter router(sched);
  host::SaturationLoad::Config lcfg;
  lcfg.num_flows = 16;
  lcfg.wire_bytes = frame_bytes;
  lcfg.offered = cfg.port_rate;
  lcfg.num_vfs = 4;
  host::SaturationLoad load(sim, router, ids, lcfg, sim::Rng(seed));
  load.start();
  sim.run_until(kFig13Warmup);
  load.begin_measurement();
  sim.run_until(kFig13Horizon);
  return load.delivered_mpps(kFig13Horizon);
}

Fig13Row run_fig13_row(std::uint32_t frame_bytes, std::uint64_t seed) {
  Fig13Row row;
  row.frame_bytes = frame_bytes;
  row.line_mpps = net::line_rate_pps(Rate::gigabits_per_sec(40), frame_bytes) / 1e6;
  row.fv_mpps = run_fig13_flowvalve(frame_bytes, seed);
  row.fv_host_cores = 0.05;  // send path only; scheduling fully offloaded
  // The paper's provisioning rule: one core per ~2.25 Mpps of offered load,
  // capped at 4 (the other four cores run the applications).
  row.dpdk_cores = static_cast<unsigned>(
      std::clamp(std::floor(row.line_mpps / kDpdkPerCoreMpps), 1.0, 4.0));
  row.dpdk_mpps = run_fig13_dpdk(frame_bytes, row.dpdk_cores, seed);
  row.dpdk_mpps_8core = run_fig13_dpdk(frame_bytes, 8, seed);
  return row;
}

// ------------------------------------------------------------- Fig. 14 ----

namespace {

constexpr SimTime kDelayWarmup = sim::milliseconds(400);
constexpr SimTime kDelayHorizon = sim::milliseconds(1400);
constexpr std::uint32_t kLoadFrameBytes = 1518;
constexpr std::uint32_t kProbeFrameBytes = 256;
const Rate kProbeRate = Rate::megabits_per_sec(4);  // ~2 kpps of 256 B probes

DelayResult summarize(const std::string& label, const stats::LatencyStats& lat) {
  DelayResult r;
  r.label = label;
  r.mean_us = lat.mean_us();
  r.stddev_us = lat.stddev_us();
  r.p50_us = lat.percentile_us(50);
  r.p99_us = lat.percentile_us(99);
  r.samples = lat.count();
  return r;
}

/// Four greedy TCP apps saturating the policy. `frame_bytes` is MTU for the
/// NIC-offloaded and DPDK/mTCP senders (per-packet pacing) but 64 KiB for
/// the kernel path, where GSO hands the qdisc super-sized skbs — the very
/// burstiness behind the kernel's delay jitter in Fig. 14.
std::vector<std::unique_ptr<traffic::AppProcess>> make_delay_load(
    sim::Simulator& sim, traffic::FlowRouter& router, traffic::IdAllocator& ids,
    Rate link, sim::Rng& rng, std::uint32_t frame_bytes = kLoadFrameBytes) {
  std::vector<std::unique_ptr<traffic::AppProcess>> apps;
  for (unsigned i = 0; i < 4; ++i) {
    traffic::AppConfig cfg;
    cfg.name = "app" + std::to_string(i);
    cfg.app_id = i;
    cfg.vf_port = static_cast<std::uint16_t>(i);
    cfg.num_connections = 2;
    cfg.wire_bytes = frame_bytes;
    cfg.tcp = greedy_tcp(link);
    cfg.src_port_base = static_cast<std::uint16_t>(21000 + 100 * i);
    auto app =
        std::make_unique<traffic::AppProcess>(sim, router, ids, cfg, rng.split(cfg.name));
    app->start();
    apps.push_back(std::move(app));
  }
  return apps;
}

traffic::FlowSpec probe_spec(traffic::IdAllocator& ids) {
  traffic::FlowSpec spec;
  spec.flow_id = ids.next_flow_id();
  spec.app_id = 5;
  spec.vf_port = 5;
  spec.wire_bytes = kProbeFrameBytes;
  spec.tuple.src_ip = 0x0a0000fe;
  spec.tuple.dst_ip = 0x0a000002;
  spec.tuple.src_port = 40000;
  spec.tuple.dst_port = 5999;
  spec.tuple.proto = net::IpProto::kUdp;
  return spec;
}

}  // namespace

DelayResult run_fig14_flowvalve(Rate wire_rate, std::uint64_t seed) {
  sim::Simulator sim;
  NpConfig nic = wire_rate.gbps() > 20 ? np::agilio_cx_40g() : np::agilio_cx_10g();
  nic.num_vfs = 8;

  // Fair-queueing policy plus a lightly-weighted probe class on VF 5.
  std::string script = fair_queueing_script(wire_rate, 4);
  script += "fv class add dev nic0 parent 1: classid 1:99 name probe weight 0.05\n";
  script += "fv filter add dev nic0 pref 5 vf 5 classid 1:99\n";

  FlowValveEngine engine(np::engine_options_for(nic));
  const std::string err = engine.configure(script);
  if (!err.empty()) throw std::runtime_error("fv config: " + err);
  np::FlowValveProcessor processor(engine);
  NicPipeline pipeline(sim, nic, processor);

  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);
  auto load = make_delay_load(sim, router, ids, wire_rate, rng);

  host::LatencyProbe probe(sim, router, ids, probe_spec(ids), kProbeRate,
                           rng.split("probe"));
  sim.run_until(kDelayWarmup);
  probe.start();
  sim.run_until(kDelayHorizon);
  char label[64];
  std::snprintf(label, sizeof(label), "FlowValve@%.0fG", wire_rate.gbps());
  return summarize(label, probe.latency());
}

DelayResult run_fig14_htb(std::uint64_t seed) {
  sim::Simulator sim;
  const Rate link = Rate::gigabits_per_sec(10);

  HtbArtifacts artifacts;
  artifacts.enabled = true;  // MTU frames: cell quantization applies
  auto htb = std::make_unique<HtbQdisc>(link, link, artifacts);
  for (int i = 0; i < 4; ++i) {
    HtbClassConfig c;
    c.name = "app" + std::to_string(i);
    c.rate = link * 0.25;
    c.ceil = link;
    c.queue_limit = 256;
    htb->add_class(c);
  }
  HtbClassConfig pc;
  pc.name = "probe";
  pc.rate = Rate::megabits_per_sec(100);
  pc.ceil = link;
  pc.prio = 0;
  pc.queue_limit = 64;
  htb->add_class(pc);
  htb->set_classifier([](const net::Packet& pkt) -> std::string {
    if (pkt.app_id == 5) return "probe";
    return "app" + std::to_string(pkt.app_id % 4);
  });

  KernelHostConfig host;
  host.sender_cores = 8;  // probe runs on its own core, like netperf
  host.wire_rate = Rate::gigabits_per_sec(40);
  KernelHostDevice device(sim, host, std::move(htb));

  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(device);
  auto load = make_delay_load(sim, router, ids, link, rng, /*GSO skbs*/ 64 * 1024);

  host::LatencyProbe probe(sim, router, ids, probe_spec(ids), kProbeRate,
                           rng.split("probe"));
  sim.run_until(kDelayWarmup);
  probe.start();
  sim.run_until(kDelayHorizon);
  return summarize("HTB@10G", probe.latency());
}

DelayResult run_fig14_dpdk(Rate wire_rate, unsigned cores, std::uint64_t seed) {
  sim::Simulator sim;
  DpdkQosConfig cfg;
  cfg.port_rate = wire_rate;
  cfg.run_cores = cores;
  DpdkQosScheduler sched(sim, cfg);
  for (int i = 0; i < 4; ++i) {
    DpdkPipeConfig pipe;
    pipe.name = "app" + std::to_string(i);
    pipe.queues.push_back({"q", 1, 1.0});
    sched.add_pipe(pipe);
  }
  DpdkPipeConfig probe_pipe;
  probe_pipe.name = "probe";
  probe_pipe.queues.push_back({"q", 0, 1.0});  // TC0: strict priority
  sched.add_pipe(probe_pipe);
  sched.set_classifier([](const net::Packet& pkt) -> std::string {
    if (pkt.app_id == 5) return "probe/q";
    return "app" + std::to_string(pkt.app_id % 4) + "/q";
  });
  sched.start();

  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(sched);
  auto load = make_delay_load(sim, router, ids, wire_rate, rng);

  host::LatencyProbe probe(sim, router, ids, probe_spec(ids), kProbeRate,
                           rng.split("probe"));
  sim.run_until(kDelayWarmup);
  probe.start();
  sim.run_until(kDelayHorizon);
  char label[64];
  std::snprintf(label, sizeof(label), "DPDK-QoS@%.0fG(%uc)", wire_rate.gbps(), cores);
  return summarize(label, probe.latency());
}

DelayResult run_fig14_forwarding_only(std::uint64_t seed) {
  sim::Simulator sim;
  NpConfig nic = np::agilio_cx_40g();
  np::NullProcessor processor;
  NicPipeline pipeline(sim, nic, processor);

  sim::Rng rng(seed);
  traffic::IdAllocator ids;
  traffic::FlowRouter router(pipeline);

  // 90% line-rate CBR load so queues stay finite without a scheduler.
  std::vector<std::unique_ptr<traffic::CbrFlow>> load;
  for (unsigned i = 0; i < 4; ++i) {
    traffic::FlowSpec spec;
    spec.flow_id = ids.next_flow_id();
    spec.app_id = i;
    spec.vf_port = static_cast<std::uint16_t>(i);
    spec.wire_bytes = kLoadFrameBytes;
    spec.tuple.src_ip = 0x0a000010 + i;
    spec.tuple.dst_ip = 0x0a000002;
    spec.tuple.src_port = static_cast<std::uint16_t>(22000 + i);
    spec.tuple.dst_port = 5001;
    auto flow = std::make_unique<traffic::CbrFlow>(sim, router, ids, spec,
                                                   nic.wire_rate * 0.225,
                                                   rng.split(i), 0.05);
    flow->start();
    load.push_back(std::move(flow));
  }

  host::LatencyProbe probe(sim, router, ids, probe_spec(ids), kProbeRate,
                           rng.split("probe"));
  sim.run_until(kDelayWarmup);
  probe.start();
  sim.run_until(kDelayHorizon);
  return summarize("Forwarding-only@40G", probe.latency());
}

}  // namespace flowvalve::exp
