// Experiment harness: scenario builders reproducing every figure/table of
// the paper's evaluation (§V). Each runner assembles a device (FlowValve NP
// pipeline, kernel HTB host, or DPDK QoS host), the traffic of the
// experiment, runs the virtual clock, and returns structured results that
// benches print and integration tests assert on.
//
// The experiment ↔ module map lives in DESIGN.md §4; the reconstructed
// timelines (the paper gives figures, not tables of app start/stop times)
// are documented in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flowvalve.h"
#include "np/np_config.h"
#include "sim/time.h"
#include "stats/series_export.h"
#include "stats/stats.h"

namespace flowvalve::exp {

using sim::Rate;
using sim::SimDuration;
using sim::SimTime;

/// Frame size used by the throughput-over-time scenarios. The wire-level
/// simulation aggregates ~43 MTU frames into one 64 KiB super-packet so that
/// 60 virtual seconds at 10-40 Gbps stay cheap; token buckets and TCP operate
/// on bytes, so all proportions are preserved (see DESIGN.md §1).
inline constexpr std::uint32_t kSuperPacketBytes = 64 * 1024;

/// One named per-app throughput curve.
struct AppCurve {
  std::string name;
  std::unique_ptr<stats::ThroughputSeries> series;
};

struct TimeSeriesResult {
  std::vector<AppCurve> apps;
  SimTime horizon = 0;
  double host_cores_used = 0.0;  // CPU consumed by scheduling + stack work
  std::uint64_t seed = 0;

  /// Mean delivered rate of app `name` over [t0_s, t1_s) seconds.
  Rate mean_rate(const std::string& name, double t0_s, double t1_s) const;
  Rate total_rate(double t0_s, double t1_s) const;

  /// Render the per-interval rate table (the textual form of the figure).
  std::string table(SimDuration step = sim::seconds(5)) const;
  std::string ascii_chart(Rate max_rate) const;
  std::vector<stats::NamedSeries> named_series() const;
};

// -- Fig. 3 / Fig. 11(a): the motivation example --------------------------
//
// Timeline (reconstructed; EXPERIMENTS.md): NC greedy 0-15 s then stops;
// KVS greedy 15-45 s; ML greedy 15-60 s; WS greedy 30-60 s. Policy: NC
// strictly prior with a 7.5 Gbps ceiling (it borrows idle bandwidth beyond
// that), vm1:vm2 = 2:1 of the remainder, KVS prior over ML with ML
// guaranteed 2 Gbps. Link: 10 Gbps.
TimeSeriesResult run_fig3_htb_motivation(std::uint64_t seed,
                                         SimTime horizon = sim::seconds(60));
TimeSeriesResult run_fig11a_fv_motivation(std::uint64_t seed,
                                          SimTime horizon = sim::seconds(60));

// -- Fig. 11(b): 40G fair queueing ----------------------------------------
// Four apps, equal weights, staged joins at 0/10/20/30 s.
TimeSeriesResult run_fig11b_fair_queueing(std::uint64_t seed,
                                          SimTime horizon = sim::seconds(40),
                                          unsigned conns_per_app = 4);

// -- Fig. 11(c): 40G weighted fair queueing (policy table of Fig. 12) ------
// App0:S1 = 1:1, App1:S2 = 1:1, App2:App3 = 1:1; App0 0-30 s, App1 joins at
// 10 s, App2+App3 at 20 s; after App0 leaves the rest share equally
// (borrowing is unweighted).
TimeSeriesResult run_fig11c_weighted_fq(std::uint64_t seed,
                                        SimTime horizon = sim::seconds(40),
                                        unsigned conns_per_app = 4);

// -- Fig. 13: maximum throughput vs frame size -----------------------------

struct Fig13Row {
  std::uint32_t frame_bytes = 0;
  double line_mpps = 0.0;      // theoretical 40GbE packet rate
  double fv_mpps = 0.0;        // FlowValve achieved
  double fv_host_cores = 0.0;  // host CPU consumed by FlowValve (≈0)
  double dpdk_mpps = 0.0;      // DPDK QoS achieved with `dpdk_cores`
  unsigned dpdk_cores = 0;     // cores provisioned (paper's rule, ≤4)
  double dpdk_mpps_8core = 0.0;  // extended sweep datum
};

/// FlowValve under saturation with fixed-size frames (fair-queueing policy,
/// as in the paper). Returns achieved Mpps.
double run_fig13_flowvalve(std::uint32_t frame_bytes, std::uint64_t seed);

/// DPDK QoS under the same load with `cores` run cores.
double run_fig13_dpdk(std::uint32_t frame_bytes, unsigned cores, std::uint64_t seed);

/// Full row following the paper's provisioning rule
/// (cores = ceil(offered_pps / per-core-rate), capped at 4).
Fig13Row run_fig13_row(std::uint32_t frame_bytes, std::uint64_t seed);

// -- Fig. 14: one-way delay -------------------------------------------------

struct DelayResult {
  std::string label;
  double mean_us = 0.0;
  double stddev_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t samples = 0;
};

DelayResult run_fig14_flowvalve(Rate wire_rate, std::uint64_t seed);
DelayResult run_fig14_htb(std::uint64_t seed);  // 10 Gbps only (paper omits 40G)
DelayResult run_fig14_dpdk(Rate wire_rate, unsigned cores, std::uint64_t seed);
/// Pipeline-only forwarding at 40G (FlowValve disabled), the paper's 161 µs
/// reference point.
DelayResult run_fig14_forwarding_only(std::uint64_t seed);

/// FlowValve engine options scaled for kSuperPacketBytes frames (larger
/// buckets/epochs so token granularity per frame matches MTU-scale runs).
core::FlowValveEngine::Options superpacket_engine_options(const np::NpConfig& nic);

// -- fv policy scripts (exported for examples/tests) ------------------------

/// The motivation-example policy (§II / Fig. 6) as an fv script.
std::string motivation_policy_script(Rate link_rate);
/// N-class fair queueing with mutual borrowing; filters on VF 0..n-1.
std::string fair_queueing_script(Rate link_rate, unsigned classes);
/// The Fig. 12 nested 1:1 weighted policy.
std::string weighted_fq_script(Rate link_rate);

}  // namespace flowvalve::exp
