// Parallel experiment runtime: fans independent scenario executions across
// host cores.
//
// The DES kernel itself is single-threaded by design (one virtual clock,
// strict (at, seq) order), but every *consumer* of it — the fuzz corpus,
// bench reps, sweep grid cells, the chaos matrix — is a bag of mutually
// independent tasks: each one builds its own Simulator + pipeline + engine
// and owns every byte of its state, including its seed-derived Rng. This
// runner exploits exactly that: tasks are fanned across a small
// work-stealing thread pool, and results land in slots indexed by task id,
// so the merged output is in deterministic task order regardless of which
// thread finished which task when.
//
// Isolation invariants (DESIGN.md §15):
//  - One task == one fully-owned simulation universe. Nothing in src/sim,
//    src/np, src/core, src/obs or src/traffic has static mutable state, so
//    two Simulators in one process never observe each other.
//  - A task that throws is captured as a structured TaskFailure in its own
//    slot; the remaining tasks run to completion and merge normally.
//  - `jobs == 1` executes every task inline on the calling thread in index
//    order — the sequential reference the equivalence oracle compares
//    against (tasks are deterministic, so N-thread output must be
//    bit-identical to this).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace flowvalve::exp {

/// Number of concurrent hardware threads, floored at 1 (the standard allows
/// hardware_concurrency() == 0 when unknown).
unsigned hardware_jobs();

/// CLI convention shared by fuzz_check and the bench sweeps:
/// 0 means "use every host core", anything else is taken literally.
unsigned resolve_jobs(unsigned requested);

/// Structured failure record for one task: the exception that escaped it.
/// The task's result slot stays empty; no other task is affected.
struct TaskFailure {
  std::size_t index = 0;
  std::string what;
};

class ParallelRunner {
 public:
  /// `jobs` threads execute the tasks; 0 resolves to hardware_jobs().
  explicit ParallelRunner(unsigned jobs) : jobs_(resolve_jobs(jobs)) {}

  unsigned jobs() const { return jobs_; }

  /// Execute fn(0..num_tasks-1). Tasks are pre-dealt round-robin into
  /// per-thread deques; an idle thread steals from the back of a victim's
  /// deque. Returns one slot per task: empty on success, the captured
  /// failure otherwise. With jobs() == 1 (or a single task) everything runs
  /// inline on the calling thread, in index order, with identical
  /// failure-capture semantics.
  std::vector<std::optional<TaskFailure>> run(
      std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

  template <class R>
  struct Outcome {
    std::optional<R> result;            // set iff the task returned
    std::optional<TaskFailure> failure; // set iff the task threw
    bool ok() const { return !failure.has_value(); }
  };

  /// run() for value-returning tasks: outcome i holds fn(i)'s result or its
  /// failure, merged in task order regardless of completion order.
  template <class R, class Fn>
  std::vector<Outcome<R>> map(std::size_t num_tasks, Fn&& fn) {
    std::vector<Outcome<R>> out(num_tasks);
    std::vector<std::optional<TaskFailure>> failures =
        run(num_tasks, [&](std::size_t i) { out[i].result.emplace(fn(i)); });
    for (std::size_t i = 0; i < num_tasks; ++i)
      out[i].failure = std::move(failures[i]);
    return out;
  }

 private:
  unsigned jobs_;
};

}  // namespace flowvalve::exp
