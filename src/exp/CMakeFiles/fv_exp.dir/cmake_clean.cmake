file(REMOVE_RECURSE
  "CMakeFiles/fv_exp.dir/scenarios.cpp.o"
  "CMakeFiles/fv_exp.dir/scenarios.cpp.o.d"
  "libfv_exp.a"
  "libfv_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
