# Empty dependencies file for fv_exp.
# This may be replaced when dependencies are built.
