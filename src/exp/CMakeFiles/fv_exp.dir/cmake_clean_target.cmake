file(REMOVE_RECURSE
  "libfv_exp.a"
)
