#include "exp/parallel_runner.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace flowvalve::exp {

namespace {

/// One worker's task queue. The owner pops from the front (cache-warm,
/// preserves its dealt order); thieves take from the back, so owner and
/// thief only collide on the last task. A plain mutex per deque is plenty:
/// tasks here are whole simulations (milliseconds to seconds), so queue
/// traffic is measured in dozens of operations, not millions.
struct WorkDeque {
  std::mutex mu;
  std::deque<std::size_t> tasks;
};

std::optional<TaskFailure> execute(
    std::size_t index, const std::function<void(std::size_t)>& fn) {
  try {
    fn(index);
    return std::nullopt;
  } catch (const std::exception& e) {
    return TaskFailure{index, e.what()};
  } catch (...) {
    return TaskFailure{index, "non-std exception"};
  }
}

}  // namespace

unsigned hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

unsigned resolve_jobs(unsigned requested) {
  return requested == 0 ? hardware_jobs() : requested;
}

std::vector<std::optional<TaskFailure>> ParallelRunner::run(
    std::size_t num_tasks, const std::function<void(std::size_t)>& fn) {
  std::vector<std::optional<TaskFailure>> failures(num_tasks);
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(jobs_, std::max<std::size_t>(num_tasks, 1)));

  if (workers <= 1) {
    // Sequential reference path: inline, index order, no threads. The
    // equivalence oracle diffs parallel output against exactly this.
    for (std::size_t i = 0; i < num_tasks; ++i) failures[i] = execute(i, fn);
    return failures;
  }

  // Deal tasks round-robin so every worker starts with ~n/workers local
  // tasks; stealing only moves work once a worker drains its own deque.
  std::vector<WorkDeque> deques(workers);
  for (std::size_t i = 0; i < num_tasks; ++i)
    deques[i % workers].tasks.push_back(i);

  // The task set is fixed up front (tasks never spawn tasks), so "every
  // deque is empty" is a monotone exit condition: once a worker scans all
  // deques and finds nothing, no work can ever appear again.
  auto worker_loop = [&](unsigned self) {
    for (;;) {
      std::size_t task = 0;
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(deques[self].mu);
        if (!deques[self].tasks.empty()) {
          task = deques[self].tasks.front();
          deques[self].tasks.pop_front();
          found = true;
        }
      }
      if (!found) {
        for (unsigned off = 1; off < workers && !found; ++off) {
          WorkDeque& victim = deques[(self + off) % workers];
          std::lock_guard<std::mutex> lock(victim.mu);
          if (!victim.tasks.empty()) {
            task = victim.tasks.back();  // steal the coldest task
            victim.tasks.pop_back();
            found = true;
          }
        }
      }
      if (!found) return;
      // Each slot is written by exactly one thread (the task's executor)
      // and read only after join — no synchronization needed beyond it.
      failures[task] = execute(task, fn);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    threads.emplace_back(worker_loop, w);
  for (std::thread& t : threads) t.join();
  return failures;
}

}  // namespace flowvalve::exp
