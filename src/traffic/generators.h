// Open-loop traffic generators: constant bit rate, Poisson, on/off bursts,
// and the full-speed blaster used for the Fig. 13 saturation sweeps.
#pragma once

#include <memory>

#include "sim/rng.h"
#include "traffic/source.h"

namespace flowvalve::traffic {

/// Constant-bit-rate sender (optionally jittered). Ignores loss feedback —
/// models UDP or a hardware packet generator. `clump` > 1 emits that many
/// back-to-back packets per timer firing with the inter-firing gap scaled
/// to keep the average rate — the arrival shape of a segmentation-offload
/// (TSO/GSO) host, where the NIC sees sender bursts, not paced singles.
class CbrFlow final : public TrafficSource {
 public:
  CbrFlow(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids, FlowSpec spec,
          Rate rate, sim::Rng rng, double jitter_frac = 0.0, unsigned clump = 1);
  ~CbrFlow() override;

  void start();
  void stop();
  void set_rate(Rate rate) { rate_ = rate; }
  Rate rate() const { return rate_; }
  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_delivered() const { return delivered_; }

  void on_delivered(const net::Packet&) override { ++delivered_; }
  void on_dropped(const net::Packet&) override { ++lost_; }
  std::uint64_t packets_lost() const { return lost_; }

 private:
  void send_next();

  sim::Simulator& sim_;
  FlowRouter& router_;
  IdAllocator& ids_;
  FlowSpec spec_;
  Rate rate_;
  sim::Rng rng_;
  double jitter_frac_;
  unsigned clump_;
  bool active_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  sim::EventHandle send_event_;
};

/// Poisson arrivals at a mean rate.
class PoissonFlow final : public TrafficSource {
 public:
  PoissonFlow(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids, FlowSpec spec,
              Rate mean_rate, sim::Rng rng);
  ~PoissonFlow() override;

  void start();
  void stop();
  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_delivered() const { return delivered_; }

  void on_delivered(const net::Packet&) override { ++delivered_; }
  void on_dropped(const net::Packet&) override {}

 private:
  void send_next();

  sim::Simulator& sim_;
  FlowRouter& router_;
  IdAllocator& ids_;
  FlowSpec spec_;
  Rate mean_rate_;
  sim::Rng rng_;
  bool active_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  sim::EventHandle send_event_;
};

/// Alternates exponentially-distributed ON bursts (at `burst_rate`) with OFF
/// gaps. Models bursty application traffic for failure-injection tests.
class OnOffFlow final : public TrafficSource {
 public:
  OnOffFlow(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids, FlowSpec spec,
            Rate burst_rate, SimDuration mean_on, SimDuration mean_off, sim::Rng rng);
  ~OnOffFlow() override;

  void start();
  void stop();
  std::uint64_t packets_sent() const { return sent_; }

  void on_delivered(const net::Packet&) override {}
  void on_dropped(const net::Packet&) override {}

 private:
  void send_next();
  void toggle();

  sim::Simulator& sim_;
  FlowRouter& router_;
  IdAllocator& ids_;
  FlowSpec spec_;
  Rate burst_rate_;
  SimDuration mean_on_;
  SimDuration mean_off_;
  sim::Rng rng_;
  bool active_ = false;
  bool on_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  sim::EventHandle send_event_;
  sim::EventHandle toggle_event_;
};

}  // namespace flowvalve::traffic
