#include "traffic/tcp.h"

#include <algorithm>

namespace flowvalve::traffic {

// ----------------------------------------------------------- TcpAimdFlow --

TcpAimdFlow::TcpAimdFlow(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids,
                         FlowSpec spec, TcpAimdConfig config, sim::Rng rng)
    : sim_(sim),
      router_(router),
      ids_(ids),
      spec_(spec),
      config_(config),
      rng_(rng),
      rate_(config.start_rate) {
  router_.register_flow(spec_.flow_id, this);
}

TcpAimdFlow::~TcpAimdFlow() {
  stop();
  router_.unregister_flow(spec_.flow_id);
}

void TcpAimdFlow::start() {
  if (active_) return;
  active_ = true;
  rate_ = config_.start_rate;
  losses_this_rtt_ = 0;
  rtt_timer_ = std::make_unique<sim::PeriodicTimer>(sim_, config_.rtt, [this] { rtt_tick(); });
  rtt_timer_->start();
  send_next();
}

void TcpAimdFlow::stop() {
  active_ = false;
  send_event_.cancel();
  rtt_timer_.reset();
}

void TcpAimdFlow::send_next() {
  if (!active_) return;
  net::Packet pkt = make_packet(spec_, ids_, sim_.now(), seq_++);
  ++sent_;
  router_.device().submit(std::move(pkt));

  // Paced inter-packet gap at the current rate, with a little jitter so
  // competing flows do not phase-lock.
  const double gap_ns =
      static_cast<double>(spec_.wire_bytes) * 8e9 / std::max(rate_.bps(), 1e3);
  const double jitter = 1.0 + config_.pacing_jitter * (rng_.next_double() - 0.5);
  send_event_ = sim_.schedule_after(
      std::max<SimDuration>(1, static_cast<SimDuration>(gap_ns * jitter)),
      [this] { send_next(); });
}

void TcpAimdFlow::rtt_tick() {
  if (!active_) return;
  if (losses_this_rtt_ > 0) {
    rate_ = std::max(config_.min_rate, rate_ * config_.md_factor);
  } else {
    rate_ = std::min(config_.max_rate, rate_ + config_.additive_increase);
  }
  losses_this_rtt_ = 0;
}

// ----------------------------------------------------------- TcpRenoFlow --

TcpRenoFlow::TcpRenoFlow(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids,
                         FlowSpec spec, TcpRenoConfig config)
    : sim_(sim),
      router_(router),
      ids_(ids),
      spec_(spec),
      config_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.ssthresh) {
  router_.register_flow(spec_.flow_id, this);
}

TcpRenoFlow::~TcpRenoFlow() {
  stop();
  router_.unregister_flow(spec_.flow_id);
}

void TcpRenoFlow::start() {
  if (active_) return;
  active_ = true;
  started_at_ = sim_.now();
  try_send();
}

void TcpRenoFlow::stop() { active_ = false; }

void TcpRenoFlow::try_send() {
  while (active_ && static_cast<double>(inflight_) < cwnd_) {
    net::Packet pkt = make_packet(spec_, ids_, sim_.now(), seq_++);
    ++inflight_;
    router_.device().submit(std::move(pkt));
  }
}

void TcpRenoFlow::on_delivered(const net::Packet& pkt) {
  if (inflight_ > 0) --inflight_;
  ++delivered_;
  delivered_bytes_ += pkt.wire_bytes;
  if (cwnd_ < ssthresh_) {
    cwnd_ = std::min(config_.max_cwnd, cwnd_ + 1.0);  // slow start
  } else {
    cwnd_ = std::min(config_.max_cwnd, cwnd_ + 1.0 / cwnd_);  // CA
  }
  // The ack arrives rtt after transmission; model the ack clock by delaying
  // the window refill half an RTT past delivery (delivery already includes
  // the forward path).
  sim_.schedule_after(config_.rtt / 2, [this] { try_send(); });
}

void TcpRenoFlow::on_dropped(const net::Packet& pkt) {
  if (inflight_ > 0) --inflight_;
  ++lost_;
  if (pkt.seq_in_flow >= recovery_end_seq_) {
    // Fast recovery: halve once per window of data.
    ssthresh_ = std::max(2.0, cwnd_ / 2.0);
    cwnd_ = ssthresh_;
    recovery_end_seq_ = seq_;
  }
  // Retransmission slot opens after an RTO-ish delay.
  sim_.schedule_after(config_.rto, [this] { try_send(); });
}

Rate TcpRenoFlow::goodput(SimTime now) const {
  const SimDuration elapsed = now - started_at_;
  if (elapsed <= 0) return Rate::zero();
  return Rate::bits_per_sec(static_cast<double>(delivered_bytes_) * 8e9 /
                            static_cast<double>(elapsed));
}

}  // namespace flowvalve::traffic
