#include "traffic/generators.h"

#include <algorithm>

namespace flowvalve::traffic {

// -------------------------------------------------------------- CbrFlow --

CbrFlow::CbrFlow(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids, FlowSpec spec,
                 Rate rate, sim::Rng rng, double jitter_frac, unsigned clump)
    : sim_(sim),
      router_(router),
      ids_(ids),
      spec_(spec),
      rate_(rate),
      rng_(rng),
      jitter_frac_(jitter_frac),
      clump_(clump < 1 ? 1 : clump) {
  router_.register_flow(spec_.flow_id, this);
}

CbrFlow::~CbrFlow() {
  stop();
  router_.unregister_flow(spec_.flow_id);
}

void CbrFlow::start() {
  if (active_) return;
  active_ = true;
  send_next();
}

void CbrFlow::stop() {
  active_ = false;
  send_event_.cancel();
}

void CbrFlow::send_next() {
  if (!active_) return;
  for (unsigned i = 0; i < clump_; ++i) {
    net::Packet pkt = make_packet(spec_, ids_, sim_.now(), seq_++);
    ++sent_;
    router_.device().submit(std::move(pkt));
  }
  const double gap_ns = static_cast<double>(clump_) *
                        static_cast<double>(spec_.wire_bytes) * 8e9 /
                        std::max(rate_.bps(), 1e3);
  const double jitter = 1.0 + jitter_frac_ * (rng_.next_double() - 0.5);
  send_event_ = sim_.schedule_after(
      std::max<SimDuration>(1, static_cast<SimDuration>(gap_ns * jitter)),
      [this] { send_next(); });
}

// ----------------------------------------------------------- PoissonFlow --

PoissonFlow::PoissonFlow(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids,
                         FlowSpec spec, Rate mean_rate, sim::Rng rng)
    : sim_(sim), router_(router), ids_(ids), spec_(spec), mean_rate_(mean_rate), rng_(rng) {
  router_.register_flow(spec_.flow_id, this);
}

PoissonFlow::~PoissonFlow() {
  stop();
  router_.unregister_flow(spec_.flow_id);
}

void PoissonFlow::start() {
  if (active_) return;
  active_ = true;
  send_next();
}

void PoissonFlow::stop() {
  active_ = false;
  send_event_.cancel();
}

void PoissonFlow::send_next() {
  if (!active_) return;
  net::Packet pkt = make_packet(spec_, ids_, sim_.now(), seq_++);
  ++sent_;
  router_.device().submit(std::move(pkt));
  const double mean_gap_ns =
      static_cast<double>(spec_.wire_bytes) * 8e9 / std::max(mean_rate_.bps(), 1e3);
  send_event_ = sim_.schedule_after(
      std::max<SimDuration>(1, static_cast<SimDuration>(rng_.exponential(mean_gap_ns))),
      [this] { send_next(); });
}

// ------------------------------------------------------------- OnOffFlow --

OnOffFlow::OnOffFlow(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids,
                     FlowSpec spec, Rate burst_rate, SimDuration mean_on,
                     SimDuration mean_off, sim::Rng rng)
    : sim_(sim),
      router_(router),
      ids_(ids),
      spec_(spec),
      burst_rate_(burst_rate),
      mean_on_(mean_on),
      mean_off_(mean_off),
      rng_(rng) {
  router_.register_flow(spec_.flow_id, this);
}

OnOffFlow::~OnOffFlow() {
  stop();
  router_.unregister_flow(spec_.flow_id);
}

void OnOffFlow::start() {
  if (active_) return;
  active_ = true;
  on_ = true;
  send_next();
  toggle();
}

void OnOffFlow::stop() {
  active_ = false;
  send_event_.cancel();
  toggle_event_.cancel();
}

void OnOffFlow::toggle() {
  if (!active_) return;
  const SimDuration hold = static_cast<SimDuration>(
      rng_.exponential(static_cast<double>(on_ ? mean_on_ : mean_off_)));
  toggle_event_ = sim_.schedule_after(std::max<SimDuration>(1, hold), [this] {
    on_ = !on_;
    if (on_) send_next();
    toggle();
  });
}

void OnOffFlow::send_next() {
  if (!active_ || !on_) return;
  net::Packet pkt = make_packet(spec_, ids_, sim_.now(), seq_++);
  ++sent_;
  router_.device().submit(std::move(pkt));
  const double gap_ns =
      static_cast<double>(spec_.wire_bytes) * 8e9 / std::max(burst_rate_.bps(), 1e3);
  send_event_ = sim_.schedule_after(std::max<SimDuration>(1, static_cast<SimDuration>(gap_ns)),
                                    [this] { send_next(); });
}

}  // namespace flowvalve::traffic
