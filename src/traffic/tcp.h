// TCP traffic models.
//
// TcpAimdFlow — a paced, rate-based AIMD sender modeling the mTCP-coupled
// analyzer the paper uses for its 40G experiments: it probes for bandwidth
// additively every RTT and backs off multiplicatively on loss. Rate-based
// pacing keeps the offered load smooth, which is also how mTCP+DPDK senders
// behave (no kernel burst coalescing).
//
// TcpRenoFlow — a window-based NewReno-style sender (slow start, congestion
// avoidance, fast recovery) for tests that need genuine ack-clocked
// dynamics.
#pragma once

#include <memory>

#include "sim/rng.h"
#include "traffic/source.h"

namespace flowvalve::traffic {

struct TcpAimdConfig {
  Rate start_rate = Rate::megabits_per_sec(50);
  Rate min_rate = Rate::megabits_per_sec(10);
  Rate max_rate = Rate::gigabits_per_sec(100);  // line-rate cap
  SimDuration rtt = sim::milliseconds(2);
  /// Additive increase per RTT.
  Rate additive_increase = Rate::megabits_per_sec(100);
  /// Multiplicative decrease factor on a lossy RTT.
  double md_factor = 0.8;
  /// Pacing jitter fraction (desynchronizes competing flows).
  double pacing_jitter = 0.05;
};

class TcpAimdFlow final : public TrafficSource {
 public:
  TcpAimdFlow(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids, FlowSpec spec,
              TcpAimdConfig config, sim::Rng rng);
  ~TcpAimdFlow() override;

  void start();
  void stop();
  bool active() const { return active_; }

  Rate current_rate() const { return rate_; }
  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t packets_lost() const { return lost_; }

  void on_delivered(const net::Packet&) override { ++delivered_; }
  void on_dropped(const net::Packet&) override {
    ++lost_;
    ++losses_this_rtt_;
  }

 private:
  void send_next();
  void rtt_tick();

  sim::Simulator& sim_;
  FlowRouter& router_;
  IdAllocator& ids_;
  FlowSpec spec_;
  TcpAimdConfig config_;
  sim::Rng rng_;

  bool active_ = false;
  Rate rate_;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t losses_this_rtt_ = 0;
  sim::EventHandle send_event_;
  std::unique_ptr<sim::PeriodicTimer> rtt_timer_;
};

struct TcpRenoConfig {
  double initial_cwnd = 2.0;   // packets
  double ssthresh = 64.0;      // packets
  double max_cwnd = 4096.0;
  SimDuration rtt = sim::milliseconds(2);
  SimDuration rto = sim::milliseconds(40);
};

class TcpRenoFlow final : public TrafficSource {
 public:
  TcpRenoFlow(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids, FlowSpec spec,
              TcpRenoConfig config);
  ~TcpRenoFlow() override;

  void start();
  void stop();

  double cwnd() const { return cwnd_; }
  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t packets_lost() const { return lost_; }
  Rate goodput(SimTime now) const;

  void on_delivered(const net::Packet& pkt) override;
  void on_dropped(const net::Packet& pkt) override;

 private:
  void try_send();

  sim::Simulator& sim_;
  FlowRouter& router_;
  IdAllocator& ids_;
  FlowSpec spec_;
  TcpRenoConfig config_;

  bool active_ = false;
  double cwnd_;
  double ssthresh_;
  std::uint64_t inflight_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t recovery_end_seq_ = 0;  // one MD per window
  std::uint64_t delivered_bytes_ = 0;
  SimTime started_at_ = 0;
};

}  // namespace flowvalve::traffic
