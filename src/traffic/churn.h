// Flow-churn workload: the million-flow stressor behind the scale-out
// ROADMAP item. Holds a configurable number of concurrently live flows
// (heavy-tailed lengths, Poisson arrivals replacing deaths) and services
// them round-robin with short packet trains from ONE pending simulator
// event — so 10^6 live flows cost 10^6 small structs, not 10^6 timers.
//
// The aggregate send rate is fixed; what churn varies is how that rate is
// spread across flows. More live flows ⇒ longer revisit period per flow ⇒
// colder EMC entries ⇒ the flow cache, not the scheduler, becomes the
// bottleneck under test (bench/scale_sweep.cpp plots exactly that).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "traffic/source.h"
#include "traffic/workload.h"

namespace flowvalve::traffic {

struct ChurnWorkloadConfig {
  /// Live-flow ceiling: arrivals are suppressed while at it.
  std::size_t target_live_flows = 65536;
  /// Flows spawned immediately at start(). Defaults to the target so the
  /// sweep measures steady state, not ramp-up.
  std::size_t initial_flows = 0;  // 0 ⇒ target_live_flows
  /// Poisson arrival rate of replacement flows (the churn itself).
  double flows_per_sec = 100000.0;
  /// Heavy-tailed flow length in packets (bounded Pareto) — short RPC-ish
  /// flows dominate, the tail carries the bytes.
  double size_alpha = 1.2;
  std::uint64_t min_packets = 2;
  std::uint64_t max_packets = 256;
  /// Aggregate offered load across all live flows.
  Rate aggregate_rate = Rate::gigabits_per_sec(30);
  std::uint32_t wire_bytes = 1518;
  std::uint32_t app_id = 0;
  /// Flows are spread round-robin over VF ports [0, vf_count).
  unsigned vf_count = 4;
  /// Packets submitted back-to-back when a flow is serviced (one simulator
  /// event per train, matching the batched data path's burst shape).
  std::uint32_t train_length = 32;
};

class ChurnWorkload final : public TrafficSource {
 public:
  ChurnWorkload(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids,
                ChurnWorkloadConfig config, sim::Rng rng);
  ~ChurnWorkload() override;

  void start();
  void stop();

  /// The deterministic serial→flow mapping spawn_flow() uses: the i-th flow
  /// ever spawned gets this five-tuple and VF. Exposed so a bench can
  /// pre-populate a flow table with exactly the initial live population
  /// (bench/scale_sweep.cpp primes the EMC this way — a sweep horizon at
  /// wire rate cannot cycle 10^6 flows cold).
  static net::FiveTuple tuple_for(std::uint64_t serial);
  static std::uint16_t vf_for(std::uint64_t serial, unsigned vf_count);

  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t flows_completed() const { return flows_completed_; }
  std::size_t flows_live() const { return flows_.size(); }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  void on_delivered(const net::Packet&) override { ++packets_delivered_; }
  void on_dropped(const net::Packet&) override { ++packets_dropped_; }
  std::uint64_t packets_delivered() const { return packets_delivered_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }

 private:
  struct Flow {
    FlowSpec spec;
    std::uint64_t remaining_packets = 0;
    std::uint64_t seq = 0;
  };

  void spawn_flow();
  void arm_arrival();
  void arm_service();
  void service_next();

  sim::Simulator& sim_;
  FlowRouter& router_;
  IdAllocator& ids_;
  ChurnWorkloadConfig config_;
  FlowSizeDistribution sizes_;
  sim::Rng rng_;
  bool active_flag_ = false;

  std::vector<Flow> flows_;   // live flows; round-robin cursor below
  std::size_t cursor_ = 0;
  std::uint64_t serial_ = 0;  // unique five-tuple source
  sim::EventHandle arrival_event_;
  sim::EventHandle service_event_;

  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t packets_dropped_ = 0;
};

}  // namespace flowvalve::traffic
