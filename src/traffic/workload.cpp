#include "traffic/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flowvalve::traffic {

FlowSizeDistribution::FlowSizeDistribution(double alpha, std::uint64_t min_bytes,
                                           std::uint64_t max_bytes)
    : alpha_(alpha), lo_(static_cast<double>(min_bytes)), hi_(static_cast<double>(max_bytes)) {
  assert(alpha > 0.0 && min_bytes > 0 && max_bytes > min_bytes);
}

std::uint64_t FlowSizeDistribution::sample(sim::Rng& rng) const {
  // Bounded Pareto inverse-CDF sampling.
  const double u = std::max(rng.next_double(), 1e-12);
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  return static_cast<std::uint64_t>(std::clamp(x, lo_, hi_));
}

double FlowSizeDistribution::mean_bytes() const {
  if (std::abs(alpha_ - 1.0) < 1e-9) {
    // α → 1 limit of the bounded Pareto mean.
    return lo_ * hi_ / (hi_ - lo_) * std::log(hi_ / lo_);
  }
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return la / (1.0 - la / ha) * (alpha_ / (alpha_ - 1.0)) *
         (1.0 / std::pow(lo_, alpha_ - 1.0) - 1.0 / std::pow(hi_, alpha_ - 1.0));
}

DatacenterWorkload::DatacenterWorkload(sim::Simulator& sim, FlowRouter& router,
                                       IdAllocator& ids, DatacenterWorkloadConfig config,
                                       sim::Rng rng)
    : sim_(sim), router_(router), ids_(ids), config_(config), rng_(rng) {}

DatacenterWorkload::~DatacenterWorkload() { stop(); }

void DatacenterWorkload::start() {
  if (active_flag_) return;
  active_flag_ = true;
  arm_arrival();
}

void DatacenterWorkload::stop() {
  active_flag_ = false;
  arrival_event_.cancel();
  for (auto& f : active_) {
    f.next_send.cancel();
    router_.unregister_flow(f.spec.flow_id);
  }
  active_.clear();
}

void DatacenterWorkload::arm_arrival() {
  const double mean_gap_ns = 1e9 / config_.flows_per_sec;
  arrival_event_ = sim_.schedule_after(
      std::max<sim::SimDuration>(1,
                                 static_cast<sim::SimDuration>(rng_.exponential(mean_gap_ns))),
      [this] {
        if (!active_flag_) return;
        spawn_flow();
        arm_arrival();
      });
}

void DatacenterWorkload::spawn_flow() {
  LiveFlow f;
  f.spec.flow_id = ids_.next_flow_id();
  f.spec.app_id = config_.app_id;
  f.spec.vf_port = config_.vf_port;
  f.spec.wire_bytes = config_.wire_bytes;
  f.spec.tuple.src_ip = 0x0a010000u + static_cast<std::uint32_t>(rng_.next_below(65536));
  f.spec.tuple.dst_ip = 0x0a000002;
  f.spec.tuple.src_port = next_port_++;
  f.spec.tuple.dst_port = 80;
  f.remaining_bytes = config_.sizes.sample(rng_);
  largest_flow_ = std::max(largest_flow_, f.remaining_bytes);
  router_.register_flow(f.spec.flow_id, this);
  ++flows_started_;
  active_.push_front(std::move(f));
  send_from(active_.begin());
}

void DatacenterWorkload::send_from(std::list<LiveFlow>::iterator it) {
  if (!active_flag_) return;
  LiveFlow& f = *it;
  net::Packet pkt = make_packet(f.spec, ids_, sim_.now(), f.seq++);
  const std::uint64_t payload = std::min<std::uint64_t>(f.remaining_bytes, pkt.wire_bytes);
  ++packets_sent_;
  bytes_sent_ += payload;
  router_.device().submit(std::move(pkt));
  if (f.remaining_bytes <= payload) {
    router_.unregister_flow(f.spec.flow_id);
    active_.erase(it);
    ++flows_completed_;
    return;
  }
  f.remaining_bytes -= payload;
  const double gap_ns = static_cast<double>(f.spec.wire_bytes) * 8e9 /
                        std::max(config_.flow_rate.bps(), 1e3);
  f.next_send = sim_.schedule_after(
      std::max<sim::SimDuration>(1, static_cast<sim::SimDuration>(gap_ns)),
      [this, it] { send_from(it); });
}

}  // namespace flowvalve::traffic
