// Flow-level datacenter workload generator: Poisson flow arrivals with
// heavy-tailed (bounded-Pareto) flow sizes — the traffic mix behind the
// paper's motivating cloud scenario (§I/§II), where many short RPC-ish
// flows (KVS) coexist with long bulk transfers (ML training).
#pragma once

#include <cstdint>
#include <list>
#include <memory>

#include "sim/rng.h"
#include "traffic/source.h"

namespace flowvalve::traffic {

/// Bounded Pareto flow-size sampler (classic web-search/data-mining shape).
class FlowSizeDistribution {
 public:
  /// alpha < 2 gives the heavy tail; sizes clamped to [min_bytes, max_bytes].
  FlowSizeDistribution(double alpha, std::uint64_t min_bytes, std::uint64_t max_bytes);

  std::uint64_t sample(sim::Rng& rng) const;
  double mean_bytes() const;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double lo_, hi_;
};

struct DatacenterWorkloadConfig {
  /// Mean flow arrival rate.
  double flows_per_sec = 2000.0;
  FlowSizeDistribution sizes{1.2, 2 * 1460, 30 * 1024 * 1024};
  /// Rate each flow sends at while alive (host burst rate / per-flow cap).
  Rate flow_rate = Rate::gigabits_per_sec(5);
  std::uint32_t wire_bytes = 1518;
  std::uint32_t app_id = 0;
  std::uint16_t vf_port = 0;
  /// Offered load = flows_per_sec × mean flow size (bits/s).
  Rate offered_load() const {
    return Rate::bits_per_sec(flows_per_sec * sizes.mean_bytes() * 8.0);
  }
};

/// Spawns short-lived flows per a Poisson process; each flow transmits its
/// sampled size at `flow_rate` and then terminates. Loss feedback is
/// ignored (flows are open-loop), which stresses the scheduler the hardest.
class DatacenterWorkload final : public TrafficSource {
 public:
  DatacenterWorkload(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids,
                     DatacenterWorkloadConfig config, sim::Rng rng);
  ~DatacenterWorkload() override;

  void start();
  void stop();

  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t flows_completed() const { return flows_completed_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::size_t flows_active() const { return active_.size(); }
  std::uint64_t largest_flow_bytes() const { return largest_flow_; }

  void on_delivered(const net::Packet&) override { ++packets_delivered_; }
  void on_dropped(const net::Packet&) override { ++packets_dropped_; }
  std::uint64_t packets_delivered() const { return packets_delivered_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }

 private:
  struct LiveFlow {
    FlowSpec spec;
    std::uint64_t remaining_bytes;
    std::uint64_t seq = 0;
    sim::EventHandle next_send;
  };

  void arm_arrival();
  void spawn_flow();
  void send_from(std::list<LiveFlow>::iterator it);

  sim::Simulator& sim_;
  FlowRouter& router_;
  IdAllocator& ids_;
  DatacenterWorkloadConfig config_;
  sim::Rng rng_;
  bool active_flag_ = false;
  std::list<LiveFlow> active_;
  sim::EventHandle arrival_event_;

  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t largest_flow_ = 0;
  std::uint16_t next_port_ = 10000;
};

}  // namespace flowvalve::traffic
