#include "traffic/app.h"

namespace flowvalve::traffic {

AppProcess::AppProcess(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids,
                       AppConfig config, sim::Rng rng)
    : sim_(sim), router_(router), ids_(ids), config_(std::move(config)), rng_(rng) {
  for (unsigned i = 0; i < config_.num_connections; ++i)
    flows_.push_back(make_flow(i));
}

std::unique_ptr<TcpAimdFlow> AppProcess::make_flow(unsigned index) {
  FlowSpec spec;
  spec.flow_id = ids_.next_flow_id();
  spec.app_id = config_.app_id;
  spec.vf_port = config_.vf_port;
  spec.wire_bytes = config_.wire_bytes;
  spec.tuple.src_ip = config_.src_ip;
  spec.tuple.dst_ip = config_.dst_ip;
  spec.tuple.src_port = static_cast<std::uint16_t>(config_.src_port_base + index);
  spec.tuple.dst_port = config_.dst_port;
  spec.tuple.proto = net::IpProto::kTcp;
  return std::make_unique<TcpAimdFlow>(sim_, router_, ids_, spec, config_.tcp,
                                       rng_.split(index + 1));
}

void AppProcess::start() {
  active_ = true;
  for (auto& f : flows_) f->start();
}

void AppProcess::stop() {
  active_ = false;
  for (auto& f : flows_) f->stop();
}

void AppProcess::run_between(SimTime start_at, SimTime stop_at) {
  sim_.schedule_at(start_at, [this] { start(); });
  sim_.schedule_at(stop_at, [this] { stop(); });
}

void AppProcess::set_connections(unsigned n) {
  while (flows_.size() > n) flows_.pop_back();  // dtor stops + unregisters
  while (flows_.size() < n) {
    auto flow = make_flow(static_cast<unsigned>(flows_.size()));
    if (active_) flow->start();
    flows_.push_back(std::move(flow));
  }
}

Rate AppProcess::total_send_rate() const {
  Rate total = Rate::zero();
  for (const auto& f : flows_)
    if (f->active()) total += f->current_rate();
  return total;
}

std::uint64_t AppProcess::packets_sent() const {
  std::uint64_t n = 0;
  for (const auto& f : flows_) n += f->packets_sent();
  return n;
}

std::uint64_t AppProcess::packets_lost() const {
  std::uint64_t n = 0;
  for (const auto& f : flows_) n += f->packets_lost();
  return n;
}

}  // namespace flowvalve::traffic
