#include "traffic/churn.h"

#include <algorithm>

namespace flowvalve::traffic {

ChurnWorkload::ChurnWorkload(sim::Simulator& sim, FlowRouter& router,
                             IdAllocator& ids, ChurnWorkloadConfig config,
                             sim::Rng rng)
    : sim_(sim),
      router_(router),
      ids_(ids),
      config_(config),
      sizes_(config.size_alpha,
             std::max<std::uint64_t>(1, config.min_packets),
             std::max<std::uint64_t>(config.min_packets + 1, config.max_packets)),
      rng_(rng) {
  if (config_.target_live_flows == 0) config_.target_live_flows = 1;
  if (config_.initial_flows == 0) config_.initial_flows = config_.target_live_flows;
  config_.initial_flows = std::min(config_.initial_flows, config_.target_live_flows);
  if (config_.vf_count == 0) config_.vf_count = 1;
  if (config_.train_length == 0) config_.train_length = 1;
}

ChurnWorkload::~ChurnWorkload() { stop(); }

net::FiveTuple ChurnWorkload::tuple_for(std::uint64_t serial) {
  // Serial-derived five-tuples: unique for up to 2^48 flows (the rng draws
  // stay reserved for sizes and arrival gaps).
  net::FiveTuple t;
  t.src_ip = 0x0a000000u + static_cast<std::uint32_t>(serial >> 16);
  t.dst_ip = 0x0a000002u;
  t.src_port = static_cast<std::uint16_t>(serial & 0xFFFF);
  t.dst_port = 80;
  t.proto = net::IpProto::kUdp;
  return t;
}

std::uint16_t ChurnWorkload::vf_for(std::uint64_t serial, unsigned vf_count) {
  return static_cast<std::uint16_t>(serial % std::max(1u, vf_count));
}

void ChurnWorkload::start() {
  if (active_flag_) return;
  active_flag_ = true;
  flows_.reserve(config_.target_live_flows);
  for (std::size_t i = 0; i < config_.initial_flows; ++i) spawn_flow();
  if (config_.flows_per_sec > 0.0) arm_arrival();
  arm_service();
}

void ChurnWorkload::stop() {
  active_flag_ = false;
  arrival_event_.cancel();
  service_event_.cancel();
  for (const Flow& f : flows_) router_.unregister_flow(f.spec.flow_id);
  flows_.clear();
  cursor_ = 0;
}

void ChurnWorkload::spawn_flow() {
  if (flows_.size() >= config_.target_live_flows) return;
  Flow f;
  f.spec.flow_id = ids_.next_flow_id();
  f.spec.app_id = config_.app_id;
  f.spec.vf_port = vf_for(serial_, config_.vf_count);
  f.spec.wire_bytes = config_.wire_bytes;
  f.spec.tuple = tuple_for(serial_);
  ++serial_;
  f.remaining_packets = sizes_.sample(rng_);
  router_.register_flow(f.spec.flow_id, this);
  ++flows_started_;
  flows_.push_back(std::move(f));
}

void ChurnWorkload::arm_arrival() {
  const double mean_gap_ns = 1e9 / config_.flows_per_sec;
  arrival_event_ = sim_.schedule_after(
      std::max<sim::SimDuration>(
          1, static_cast<sim::SimDuration>(rng_.exponential(mean_gap_ns))),
      [this] {
        if (!active_flag_) return;
        spawn_flow();
        arm_arrival();
      });
}

void ChurnWorkload::arm_service() {
  // One pending event regardless of live-flow count: the aggregate rate is
  // spent train by train, round-robin over whatever is live.
  const double train_bits = static_cast<double>(config_.train_length) *
                            static_cast<double>(config_.wire_bytes) * 8.0;
  const double gap_ns =
      train_bits * 1e9 / std::max(config_.aggregate_rate.bps(), 1e3);
  service_event_ = sim_.schedule_after(
      std::max<sim::SimDuration>(1, static_cast<sim::SimDuration>(gap_ns)),
      [this] {
        if (!active_flag_) return;
        service_next();
        arm_service();
      });
}

void ChurnWorkload::service_next() {
  if (flows_.empty()) return;
  if (cursor_ >= flows_.size()) cursor_ = 0;
  Flow& f = flows_[cursor_];
  const std::uint64_t train =
      std::min<std::uint64_t>(f.remaining_packets, config_.train_length);
  for (std::uint64_t i = 0; i < train; ++i) {
    net::Packet pkt = make_packet(f.spec, ids_, sim_.now(), f.seq++);
    ++packets_sent_;
    bytes_sent_ += pkt.wire_bytes;
    router_.device().submit(std::move(pkt));
  }
  f.remaining_packets -= train;
  if (f.remaining_packets == 0) {
    router_.unregister_flow(f.spec.flow_id);
    ++flows_completed_;
    // Swap-remove keeps the vector dense; the cursor stays put so the
    // swapped-in flow is serviced next visit.
    flows_[cursor_] = std::move(flows_.back());
    flows_.pop_back();
  } else {
    ++cursor_;
  }
}

}  // namespace flowvalve::traffic
