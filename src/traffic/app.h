// Application process model: a named group of TCP connections sharing an
// app id and an SR-IOV VF port, with scheduled start/stop times — the
// App0..App3 / NC / KVS / ML / WS processes of the paper's experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "traffic/tcp.h"

namespace flowvalve::traffic {

struct AppConfig {
  std::string name;
  std::uint32_t app_id = 0;
  std::uint16_t vf_port = 0;
  unsigned num_connections = 1;
  std::uint32_t wire_bytes = 1518;
  TcpAimdConfig tcp;

  /// Five-tuple template: each connection gets src_port_base + i.
  std::uint32_t src_ip = 0x0a000001;  // 10.0.0.1
  std::uint32_t dst_ip = 0x0a000002;
  std::uint16_t src_port_base = 20000;
  std::uint16_t dst_port = 5001;
};

class AppProcess {
 public:
  AppProcess(sim::Simulator& sim, FlowRouter& router, IdAllocator& ids, AppConfig config,
             sim::Rng rng);

  /// Start/stop all connections now.
  void start();
  void stop();

  /// Schedule start/stop at absolute virtual times.
  void run_between(SimTime start_at, SimTime stop_at);

  /// Change the number of live connections at runtime (the paper varies
  /// 4..256 connections per process). New connections inherit the config.
  void set_connections(unsigned n);

  const AppConfig& config() const { return config_; }
  bool active() const { return active_; }
  std::size_t connections() const { return flows_.size(); }

  Rate total_send_rate() const;
  std::uint64_t packets_sent() const;
  std::uint64_t packets_lost() const;

 private:
  std::unique_ptr<TcpAimdFlow> make_flow(unsigned index);

  sim::Simulator& sim_;
  FlowRouter& router_;
  IdAllocator& ids_;
  AppConfig config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<TcpAimdFlow>> flows_;
  bool active_ = false;
};

}  // namespace flowvalve::traffic
