file(REMOVE_RECURSE
  "libfv_traffic.a"
)
