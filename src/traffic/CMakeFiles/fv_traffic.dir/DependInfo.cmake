
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/app.cpp" "src/traffic/CMakeFiles/fv_traffic.dir/app.cpp.o" "gcc" "src/traffic/CMakeFiles/fv_traffic.dir/app.cpp.o.d"
  "/root/repo/src/traffic/generators.cpp" "src/traffic/CMakeFiles/fv_traffic.dir/generators.cpp.o" "gcc" "src/traffic/CMakeFiles/fv_traffic.dir/generators.cpp.o.d"
  "/root/repo/src/traffic/tcp.cpp" "src/traffic/CMakeFiles/fv_traffic.dir/tcp.cpp.o" "gcc" "src/traffic/CMakeFiles/fv_traffic.dir/tcp.cpp.o.d"
  "/root/repo/src/traffic/workload.cpp" "src/traffic/CMakeFiles/fv_traffic.dir/workload.cpp.o" "gcc" "src/traffic/CMakeFiles/fv_traffic.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/sim/CMakeFiles/fv_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/fv_net.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/fv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
