# Empty dependencies file for fv_traffic.
# This may be replaced when dependencies are built.
