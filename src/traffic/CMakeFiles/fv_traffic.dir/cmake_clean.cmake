file(REMOVE_RECURSE
  "CMakeFiles/fv_traffic.dir/app.cpp.o"
  "CMakeFiles/fv_traffic.dir/app.cpp.o.d"
  "CMakeFiles/fv_traffic.dir/generators.cpp.o"
  "CMakeFiles/fv_traffic.dir/generators.cpp.o.d"
  "CMakeFiles/fv_traffic.dir/tcp.cpp.o"
  "CMakeFiles/fv_traffic.dir/tcp.cpp.o.d"
  "CMakeFiles/fv_traffic.dir/workload.cpp.o"
  "CMakeFiles/fv_traffic.dir/workload.cpp.o.d"
  "libfv_traffic.a"
  "libfv_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
