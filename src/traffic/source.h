// Traffic source framework: sources submit packets to an EgressDevice and
// receive per-flow delivery/drop feedback through the FlowRouter, which
// demultiplexes the device's callbacks by flow id.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/device.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "stats/stats.h"

namespace flowvalve::traffic {

using sim::Rate;
using sim::SimDuration;
using sim::SimTime;

/// Allocates globally unique packet ids and flow ids for a scenario.
class IdAllocator {
 public:
  std::uint64_t next_packet_id() { return ++packet_id_; }
  std::uint32_t next_flow_id() { return ++flow_id_; }

 private:
  std::uint64_t packet_id_ = 0;
  std::uint32_t flow_id_ = 0;
};

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  virtual void on_delivered(const net::Packet& pkt) = 0;
  virtual void on_dropped(const net::Packet& pkt) = 0;
};

/// Routes a device's delivery/drop callbacks to the owning sources by
/// flow id, and keeps scenario-wide accounting (per-app throughput series).
class FlowRouter {
 public:
  explicit FlowRouter(net::EgressDevice& device) : device_(device) {
    device.set_on_delivered([this](const net::Packet& pkt) { handle_delivered(pkt); });
    device.set_on_dropped([this](const net::Packet& pkt) { handle_dropped(pkt); });
  }

  void register_flow(std::uint32_t flow_id, TrafficSource* source) {
    flows_[flow_id] = source;
  }
  void unregister_flow(std::uint32_t flow_id) { flows_.erase(flow_id); }

  /// Optional per-app delivered-bytes series (Fig. 3/11 curves).
  void track_app(std::uint32_t app_id, stats::ThroughputSeries* series) {
    app_series_[app_id] = series;
  }
  /// Optional per-app latency collection (Fig. 14).
  void track_app_latency(std::uint32_t app_id, stats::LatencyStats* lat) {
    app_latency_[app_id] = lat;
  }

  net::EgressDevice& device() { return device_; }

 private:
  void handle_delivered(const net::Packet& pkt) {
    if (auto it = app_series_.find(pkt.app_id); it != app_series_.end())
      it->second->add(pkt.wire_tx_done, pkt.wire_bytes);
    if (auto it = app_latency_.find(pkt.app_id); it != app_latency_.end())
      it->second->add(pkt.delivered_at - pkt.created_at);
    if (auto it = flows_.find(pkt.flow_id); it != flows_.end())
      it->second->on_delivered(pkt);
  }
  void handle_dropped(const net::Packet& pkt) {
    if (auto it = flows_.find(pkt.flow_id); it != flows_.end())
      it->second->on_dropped(pkt);
  }

  net::EgressDevice& device_;
  std::unordered_map<std::uint32_t, TrafficSource*> flows_;
  std::unordered_map<std::uint32_t, stats::ThroughputSeries*> app_series_;
  std::unordered_map<std::uint32_t, stats::LatencyStats*> app_latency_;
};

/// Identity shared by all packets of one flow.
struct FlowSpec {
  std::uint32_t flow_id = 0;
  std::uint32_t app_id = 0;
  std::uint16_t vf_port = 0;
  std::uint32_t wire_bytes = 1518;  // frame size (super-packets allowed)
  net::FiveTuple tuple;
};

/// Build a packet for a flow, stamping creation time and sequence.
inline net::Packet make_packet(const FlowSpec& spec, IdAllocator& ids, SimTime now,
                               std::uint64_t seq) {
  net::Packet pkt;
  pkt.id = ids.next_packet_id();
  pkt.flow_id = spec.flow_id;
  pkt.app_id = spec.app_id;
  pkt.vf_port = spec.vf_port;
  pkt.wire_bytes = spec.wire_bytes;
  pkt.seq_in_flow = seq;
  pkt.tuple = spec.tuple;
  pkt.created_at = now;
  return pkt;
}

}  // namespace flowvalve::traffic
