// Control-plane policy updates (paper §II-B: runtime reconfigurability is
// the core argument for an NP-based scheduler over a fixed traffic manager).
//
// A PolicyUpdate is either a full fv-script swap (re-declaring the whole
// policy; the class topology must be unchanged) or a batch of incremental
// per-class deltas. Updates flow through shadow validation (validator.h) and
// an epoch-versioned staged rollout (reconfig_manager.h); nothing in this
// header touches live state.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/policy.h"
#include "sim/time.h"

namespace flowvalve::ctrl {

/// One per-class change. Unset optionals keep the class's current value, so
/// "raise tenant B's ceil" is a one-field delta.
struct PolicyDelta {
  std::string class_name;
  std::optional<core::PrioLevel> prio;
  std::optional<double> weight;
  std::optional<sim::Rate> guarantee;
  std::optional<sim::Rate> ceil;
};

/// A requested reconfiguration: exactly one of `fv_script` (full swap) or
/// `deltas` (incremental) should be populated; a script takes precedence.
struct PolicyUpdate {
  std::string fv_script;
  std::vector<PolicyDelta> deltas;

  bool is_script() const { return !fv_script.empty(); }

  /// Short human-readable form for logs and the ReconfigTracker.
  std::string describe() const;
};

}  // namespace flowvalve::ctrl
