#include "ctrl/reconfig_manager.h"

#include <algorithm>
#include <cassert>

namespace flowvalve::ctrl {

ReconfigManager::ReconfigManager(sim::Simulator& sim, np::NicPipeline& pipeline,
                                 core::FlowValveEngine& engine,
                                 obs::ReconfigTracker* tracker, Options options)
    : sim_(sim), pipeline_(pipeline), engine_(engine), tracker_(tracker),
      opts_(options) {
  const unsigned n = pipeline_.config().num_workers;
  cut_.assign(n, false);
  stale_.assign(n, false);
  epoch_ = target_ = engine_.tree().policy_epoch();
  pipeline_.set_control_hook(this);
}

ReconfigManager::~ReconfigManager() {
  pipeline_.set_control_hook(nullptr);
  stall_timer_.cancel();
  guard_timer_.cancel();
}

unsigned ReconfigManager::wave() const {
  if (opts_.cutover_wave > 0) return opts_.cutover_wave;
  return std::max(1u, pipeline_.config().num_workers / 4);
}

std::uint32_t ReconfigManager::worker_epoch(unsigned w) const {
  if (state_ == State::kRollout && w < cut_.size() && cut_[w]) return target_;
  return epoch_;
}

void ReconfigManager::fault_stale_worker(unsigned w) {
  if (w < stale_.size()) stale_[w] = true;
}

void ReconfigManager::repair_stale_workers() {
  std::fill(stale_.begin(), stale_.end(), false);
}

void ReconfigManager::storm(unsigned n) {
  // No-op delta against the root: semantically valid, exercises the full
  // stage/rollout/commit machinery without changing behavior.
  const core::SchedulingTree& tree = engine_.tree();
  if (tree.size() == 0) return;
  PolicyUpdate u;
  u.deltas.push_back(PolicyDelta{tree.at(tree.root()).name, {}, {}, {}, {}});
  for (unsigned i = 0; i < n; ++i) apply(u);
}

std::string ReconfigManager::apply(const PolicyUpdate& update) {
  const sim::SimTime now = sim_.now();
  const std::string kind = update.is_script() ? "script" : "delta";
  ValidatedUpdate v = validate_update(engine_, update);
  if (!v.ok()) {
    ++stats_.rejected;
    if (tracker_) {
      obs::ReconfigRecord& r = tracker_->record();
      r.kind = kind;
      r.submitted_at = now;
      r.outcome = "rejected: " + v.error;
    }
    return v.error;
  }
  if (busy()) {
    // An update storm coalesces: only the newest pending request survives;
    // it is re-validated when its turn comes.
    if (queued_.has_value()) {
      ++stats_.coalesced;
      if (tracker_) tracker_->note_coalesced();
    }
    queued_ = update;
    ++stats_.applied;
    return {};
  }
  ++stats_.applied;
  begin_rollout(std::move(v), kind, now);
  return {};
}

void ReconfigManager::begin_rollout(ValidatedUpdate&& v, const std::string& kind,
                                    sim::SimTime now) {
  core::SchedulingTree& tree = engine_.tree();
  open_ = obs::ReconfigRecord{};
  open_.kind = kind;
  open_.submitted_at = now;

  // Snapshot the prior state the rollback path restores.
  prior_.clear();
  for (const auto& [id, pol] : v.manifest) prior_.emplace_back(id, tree.at(id).policy);
  pending_filter_swap_ = v.replace_filters;
  filters_swapped_ = false;
  if (pending_filter_swap_) {
    core::Classifier& cls = engine_.classifier();
    prior_filters_ = cls.rules();
    prior_default_ = cls.default_label();
    new_filters_ = std::move(v.filters);
    new_default_ = v.default_label;
  }

  manifest_ = std::move(v.manifest);
  target_ = tree.stage(manifest_);
  open_.target_epoch = target_;

  // Latched torn-update fault: the staged multi-word write tears mid-DMA,
  // so every stride-th class's staged image still holds its OLD policy
  // words. The tear must hit the staging (not the final sweep): a loaded
  // pipeline commits classes from the data path long before finish_rollout,
  // and both commit paths must install the same torn image for the
  // post-commit verification to catch.
  if (tear_stride_ > 0) {
    for (std::size_t i = 0; i < manifest_.size(); i += tear_stride_)
      tree.at(manifest_[i].first).staged_policy = tree.at(manifest_[i].first).policy;
    tear_stride_ = 0;
  }

  std::fill(cut_.begin(), cut_.end(), false);
  cut_count_ = 0;
  eligible_limit_ = wave();
  state_ = State::kRollout;
  if (observer_) observer_->on_staged(target_, now);
  stall_timer_.cancel();
  stall_timer_ = sim_.schedule_after(opts_.stall_timeout, [this] { on_stall_timeout(); });
}

np::ControlHook::Cutover ReconfigManager::on_packet_boundary(
    unsigned worker, sim::SimTime now, unsigned packets) {
  if (state_ != State::kRollout) return {epoch_, 0};
  const unsigned n = static_cast<unsigned>(cut_.size());
  if (worker < n && cut_[worker]) {
    // A cut-over worker reaching its next boundary is the proof the current
    // wave runs clean on the new epoch; only then does the budget advance.
    // Until it does, the not-yet-eligible workers below keep dispatching on
    // the old epoch — that is the measurable mixed-epoch window.
    if (cut_count_ >= eligible_limit_ && eligible_limit_ < n)
      eligible_limit_ = std::min(n, eligible_limit_ + wave());
    return {target_, 0};
  }
  if (worker < n && !stale_[worker] && cut_count_ < eligible_limit_) {
    // Safe burst-boundary cutover: the worker switches its epoch register
    // before this burst's run-to-completion interval, so every packet of
    // the burst schedules against the same (new) epoch — a cutover can
    // never land mid-burst.
    cut_[worker] = true;
    ++cut_count_;
    ++open_.cutover_workers;
    if (cut_count_ == n) finish_rollout(now);
    // Stamp AFTER a possible finish_rollout: a torn-update detected there
    // rolls back synchronously, and this burst must then carry the
    // restored epoch, not the vanished target (worker_epoch resolves both
    // cases, including a queued update starting a fresh rollout).
    return {worker_epoch(worker), opts_.cutover_cycles};
  }
  // Not yet eligible (wave gating) or stale-faulted: every packet of the
  // burst is scheduled against the old epoch — the bounded mixed-epoch
  // window, still counted per packet at any batch size.
  open_.mixed_epoch_packets += packets;
  stats_.mixed_epoch_packets += packets;
  return {epoch_, 0};
}

void ReconfigManager::on_stall_timeout() {
  if (state_ != State::kRollout) return;
  const sim::SimTime now = sim_.now();
  for (unsigned w = 0; w < stale_.size(); ++w) {
    if (stale_[w]) {
      do_rollback("stale-epoch worker " + std::to_string(w), now);
      return;
    }
  }
  ++stats_.stalled;
  open_.stalled = true;
  if (observer_) observer_->on_stall(target_, now);
  // Bounded degradation: shed load only if the pipeline is actually backed
  // up behind the stalled swap; an idle pipeline just gets force-cut.
  if (pipeline_.in_flight() > pipeline_.config().num_workers) {
    pipeline_.control_force_admission(opts_.stall_shed_modulus);
    open_.shed_engaged = true;
    stats_.admission_forced = true;
  }
  for (unsigned w = 0; w < cut_.size(); ++w) {
    if (cut_[w]) continue;
    cut_[w] = true;
    ++cut_count_;
    ++open_.forced_cutovers;
    ++stats_.forced_cutovers;
  }
  finish_rollout(now);
}

void ReconfigManager::finish_rollout(sim::SimTime now) {
  stall_timer_.cancel();
  core::SchedulingTree& tree = engine_.tree();

  tree.commit_all(now);
  if (pending_filter_swap_) {
    core::Classifier& cls = engine_.classifier();
    cls.replace_rules(new_filters_);
    cls.set_default_label(new_default_);
    // Lazy cache invalidation: entries cached under the old filter set are
    // re-classified on their next hit instead of flushing the whole EMC.
    cls.bump_label_epoch();
    filters_swapped_ = true;
  }

  // Post-commit verification (torn-update detection): every manifest class
  // must now carry exactly its target policy.
  for (const auto& [id, pol] : manifest_) {
    const core::NodePolicy& live = tree.at(id).policy;
    if (live.prio != pol.prio || live.weight != pol.weight ||
        live.guarantee != pol.guarantee || live.ceil != pol.ceil) {
      do_rollback("torn-update on class '" + tree.at(id).name + "'", now);
      return;
    }
  }

  epoch_ = target_;
  state_ = State::kProbation;
  probation_end_ = now + opts_.probation;
  const sim::SimDuration period =
      opts_.guard_period > 0 ? opts_.guard_period
                             : std::max<sim::SimDuration>(1, opts_.probation / 8);
  guard_timer_.cancel();
  guard_timer_ = sim_.schedule_after(period, [this] { guard_tick(); });
}

void ReconfigManager::guard_tick() {
  if (state_ != State::kProbation) return;
  const sim::SimTime now = sim_.now();
  for (unsigned w = 0; w < stale_.size(); ++w) {
    if (stale_[w]) {
      do_rollback("stale-epoch worker " + std::to_string(w), now);
      return;
    }
  }
  if (guard_) {
    if (std::string regression = guard_(now); !regression.empty()) {
      do_rollback(regression, now);
      return;
    }
  }
  if (now >= probation_end_) {
    commit(now);
    return;
  }
  const sim::SimDuration period =
      opts_.guard_period > 0 ? opts_.guard_period
                             : std::max<sim::SimDuration>(1, opts_.probation / 8);
  const sim::SimDuration next = std::min<sim::SimDuration>(period, probation_end_ - now);
  guard_timer_ = sim_.schedule_after(std::max<sim::SimDuration>(1, next),
                                     [this] { guard_tick(); });
}

void ReconfigManager::commit(sim::SimTime now) {
  ++stats_.committed;
  pipeline_.control_release_admission();
  open_.committed_at = now;
  close_record(now, "committed");
  state_ = State::kIdle;
  if (observer_) observer_->on_committed(epoch_, now);
  dequeue();
}

bool ReconfigManager::rollback(const std::string& reason) {
  if (state_ == State::kIdle) return false;
  do_rollback(reason, sim_.now());
  return true;
}

void ReconfigManager::do_rollback(const std::string& reason, sim::SimTime now) {
  stall_timer_.cancel();
  guard_timer_.cancel();
  core::SchedulingTree& tree = engine_.tree();
  const std::uint32_t from = tree.policy_epoch() == target_ ? target_ : epoch_;

  // Restore the prior policies at a NEW, strictly higher epoch — epochs are
  // monotonic so a stamped packet can never meet two meanings of the same
  // epoch number. Rollback is a control-plane emergency write: staged and
  // committed in one step, no packet participation.
  if (tree.rollout_active()) tree.abandon_stage();
  tree.stage(prior_);
  tree.commit_all(now);
  if (filters_swapped_) {
    core::Classifier& cls = engine_.classifier();
    cls.replace_rules(prior_filters_);
    cls.set_default_label(prior_default_);
    cls.bump_label_epoch();
    filters_swapped_ = false;
  }
  epoch_ = target_ = tree.policy_epoch();
  std::fill(cut_.begin(), cut_.end(), false);
  cut_count_ = 0;
  pipeline_.control_release_admission();

  ++stats_.rolled_back;
  open_.rolled_back_at = now;
  close_record(now, "rolled-back: " + reason);
  state_ = State::kIdle;
  if (observer_) observer_->on_rolled_back(from, epoch_, reason, now);
  dequeue();
}

void ReconfigManager::close_record(sim::SimTime, std::string outcome) {
  open_.outcome = std::move(outcome);
  if (tracker_) tracker_->record() = open_;
  open_ = obs::ReconfigRecord{};
}

void ReconfigManager::dequeue() {
  if (!queued_.has_value()) return;
  PolicyUpdate next = std::move(*queued_);
  queued_.reset();
  // Re-validated against the now-current state; a stale queued update that
  // no longer validates lands as a rejected record. apply() cannot recurse
  // back here: the manager is idle and the queue is empty.
  --stats_.applied;  // avoid double counting: it was counted when queued
  apply(next);
}

}  // namespace flowvalve::ctrl
