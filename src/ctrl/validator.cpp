#include "ctrl/validator.h"

#include <stdexcept>

namespace flowvalve::ctrl {

std::string PolicyUpdate::describe() const {
  if (is_script()) return "script swap (" + std::to_string(fv_script.size()) + " bytes)";
  std::string s = "delta[";
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    if (i) s += ", ";
    s += deltas[i].class_name;
  }
  s += "]";
  return s;
}

namespace {

using core::ClassId;
using core::SchedulingTree;

/// Resolve the per-delta target policies: current policy with the set
/// optionals overridden.
std::string resolve_deltas(const core::SchedulingTree& tree,
                           const std::vector<PolicyDelta>& deltas,
                           SchedulingTree::PolicyManifest& manifest) {
  for (const PolicyDelta& d : deltas) {
    const ClassId id = tree.find(d.class_name);
    if (id == core::kNoClass) return "unknown class '" + d.class_name + "'";
    core::NodePolicy target = tree.at(id).policy;
    if (d.prio) target.prio = *d.prio;
    if (d.weight) target.weight = *d.weight;
    if (d.guarantee) target.guarantee = *d.guarantee;
    if (d.ceil) target.ceil = *d.ceil;
    manifest.emplace_back(id, target);
  }
  if (manifest.empty()) return "empty update";
  return {};
}

/// Leaf-class borrow list as class names, for structural comparison.
std::vector<std::string> borrow_names(const core::FvFrontend& fe, ClassId leaf) {
  std::vector<std::string> names;
  const net::ClassLabelId lid = fe.label_of(leaf);
  if (lid == net::kUnclassified) return names;
  for (ClassId b : fe.labels().get(lid).borrow) names.push_back(fe.tree().at(b).name);
  return names;
}

/// Map a shadow-frontend label id onto the live label table via the leaf
/// class name. Returns kUnclassified (with `error` set) if unmappable.
net::ClassLabelId map_label(const core::FvFrontend& live, const core::FvFrontend& shadow,
                            net::ClassLabelId shadow_label, std::string& error) {
  const core::QosLabel& ql = shadow.labels().get(shadow_label);
  if (ql.path.empty()) {
    error = "shadow label has an empty path";
    return net::kUnclassified;
  }
  const std::string& leaf_name = shadow.tree().at(ql.path.back()).name;
  const ClassId live_leaf = live.tree().find(leaf_name);
  if (live_leaf == core::kNoClass) {
    error = "filter targets unknown class '" + leaf_name + "'";
    return net::kUnclassified;
  }
  const net::ClassLabelId mapped = live.label_of(live_leaf);
  if (mapped == net::kUnclassified) error = "class '" + leaf_name + "' is not a leaf";
  return mapped;
}

std::string validate_script(const core::FlowValveEngine& engine, const PolicyUpdate& update,
                            ValidatedUpdate& out) {
  const core::FvFrontend& live = engine.frontend();
  const core::SchedulingTree& tree = live.tree();

  // Parse + finalize against a shadow frontend; nothing live is touched.
  core::FvFrontend shadow(tree.params());
  try {
    shadow.apply_script(update.fv_script);
  } catch (const std::invalid_argument& e) {
    return std::string("parse error: ") + e.what();
  }
  if (std::string err = shadow.finalize(); !err.empty())
    return "shadow finalize: " + err;

  // Structural compatibility: a live swap may change rates/weights/prios
  // and filters, but not the class topology or borrow structure.
  const core::SchedulingTree& stree = shadow.tree();
  if (stree.size() != tree.size())
    return "structural change (class count " + std::to_string(stree.size()) + " vs " +
           std::to_string(tree.size()) + ") requires restart";
  for (ClassId id = 0; id < tree.size(); ++id) {
    const core::SchedClass& lc = tree.at(id);
    const ClassId sid = stree.find(lc.name);
    if (sid == core::kNoClass)
      return "structural change (class '" + lc.name + "' missing) requires restart";
    const core::SchedClass& sc = stree.at(sid);
    if (sc.is_leaf() != lc.is_leaf() ||
        (!lc.is_root() &&
         (sc.is_root() || stree.at(sc.parent).name != tree.at(lc.parent).name)) ||
        (lc.is_root() && !sc.is_root()))
      return "structural change (class '" + lc.name + "' re-parented) requires restart";
    if (lc.is_leaf() && borrow_names(shadow, sid) != borrow_names(live, id))
      return "structural change (class '" + lc.name + "' borrow list) requires restart";
  }

  // Target manifest: the shadow policy of every same-named live class.
  for (ClassId id = 0; id < tree.size(); ++id)
    out.manifest.emplace_back(id, stree.at(stree.find(tree.at(id).name)).policy);

  // Filters, re-mapped onto the live label table.
  std::string map_err;
  for (core::FilterRule rule : shadow.classifier().rules()) {
    rule.label = map_label(live, shadow, rule.label, map_err);
    if (!map_err.empty()) return map_err;
    out.filters.push_back(std::move(rule));
  }
  out.default_label = shadow.classifier().default_label() == net::kUnclassified
                          ? net::kUnclassified
                          : map_label(live, shadow, shadow.classifier().default_label(),
                                      map_err);
  if (!map_err.empty()) return map_err;
  out.replace_filters = true;
  return {};
}

}  // namespace

ValidatedUpdate validate_update(const core::FlowValveEngine& engine,
                                const PolicyUpdate& update) {
  ValidatedUpdate out;
  if (!engine.ready()) {
    out.error = "engine not configured";
    return out;
  }
  if (update.is_script()) {
    out.error = validate_script(engine, update, out);
  } else {
    out.error = resolve_deltas(engine.tree(), update.deltas, out.manifest);
  }
  if (!out.ok()) return out;

  // Semantic dry run against a clone of the live per-class policies.
  out.error = engine.tree().validate_deltas(out.manifest);
  if (!out.ok()) {
    out.manifest.clear();
    out.filters.clear();
    out.replace_filters = false;
  }
  return out;
}

}  // namespace flowvalve::ctrl
