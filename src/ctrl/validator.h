// Shadow validation of a PolicyUpdate against a live engine: parse +
// semantic checks + dry run against a cloned tree, without touching any
// runtime state. The output is a resolved per-class policy manifest (and,
// for script swaps, a re-mapped filter set) ready for staged rollout.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/flowvalve.h"
#include "ctrl/policy_update.h"

namespace flowvalve::ctrl {

/// Result of shadow validation. On success (`ok()`), `manifest` holds the
/// fully resolved target policy per affected class, validated against a
/// clone of the live tree's policies. Script swaps additionally carry the
/// replacement filter rules with labels re-mapped onto the *live* label
/// table (`replace_filters`).
struct ValidatedUpdate {
  std::string error;  // empty on success
  core::SchedulingTree::PolicyManifest manifest;
  std::vector<core::FilterRule> filters;
  net::ClassLabelId default_label = net::kUnclassified;
  bool replace_filters = false;

  bool ok() const { return error.empty(); }
};

/// Validate `update` against the live `engine` configuration. Never mutates
/// the engine. Rejections include: unknown class names, non-finite /
/// non-positive weights, negative guarantees, guarantee > ceil, child
/// guarantee sums exceeding a parent ceil, script parse errors, and script
/// swaps that change the class topology or borrow structure (a structural
/// change requires a restart, not a live swap).
ValidatedUpdate validate_update(const core::FlowValveEngine& engine,
                                const PolicyUpdate& update);

}  // namespace flowvalve::ctrl
