// Epoch-versioned staged rollout of validated policy updates with probation
// and automatic rollback — the control-plane counterpart of the data
// plane's self-healing layer (PR 3).
//
// Protocol (DESIGN.md §11):
//   1. shadow validation (validator.h) — reject before touching anything;
//   2. stage: the target policies are parked next to the live ones
//      (SchedulingTree::stage) under a new epoch number;
//   3. staged rollout: each worker micro-engine cuts over at its next safe
//      per-packet boundary (NicPipeline::ControlHook), in waves; a cut-over
//      worker stamps packets with the new epoch, and the first new-epoch
//      packet to win a class's try-lock commits that class's staged policy
//      inside the guarded section (paper Fig. 8 cycle model);
//   4. probation: a guard observes invariants/metrics for a window;
//   5. commit — or automatic, deterministic rollback restoring the prior
//      policies at a new (strictly higher) epoch number.
//
// Degradation is explicit and bounded: the manager itself never drops a
// packet; mixed-epoch scheduling is confined to the rollout window (and
// counted); if the rollout stalls past a timeout, the remaining workers are
// force-cut and — only if the pipeline is loaded — admission shedding from
// PR 3 is engaged until the update resolves.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/flowvalve.h"
#include "ctrl/policy_update.h"
#include "ctrl/validator.h"
#include "np/nic_pipeline.h"
#include "obs/reconfig_tracker.h"
#include "sim/simulator.h"

namespace flowvalve::ctrl {

class ReconfigManager final : public np::ControlHook {
 public:
  struct Options {
    /// Workers allowed to cut over per wave; 0 ⇒ max(1, num_workers / 4).
    unsigned cutover_wave = 0;
    /// Micro-engine cycles charged at a worker's cutover boundary (epoch
    /// register write + staged-pointer fetch under the try-lock model).
    std::uint32_t cutover_cycles = 330;
    /// Rollout older than this without full cutover ⇒ stall handling.
    sim::SimDuration stall_timeout = sim::milliseconds(2);
    /// Admission modulus forced while a stalled swap resolves (drop every
    /// Nth submission) — only engaged when the pipeline is actually loaded.
    std::uint64_t stall_shed_modulus = 8;
    /// Guarded observation window between cutover and permanent commit.
    sim::SimDuration probation = sim::milliseconds(5);
    /// Guard evaluation period during probation; 0 ⇒ probation / 8.
    sim::SimDuration guard_period = 0;
  };

  enum class State : std::uint8_t { kIdle, kRollout, kProbation };

  /// Lifecycle callbacks for checkers/tests. All default to no-ops.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void on_staged(std::uint32_t /*target_epoch*/, sim::SimTime) {}
    virtual void on_committed(std::uint32_t /*epoch*/, sim::SimTime) {}
    virtual void on_rolled_back(std::uint32_t /*from*/, std::uint32_t /*to*/,
                                const std::string& /*reason*/, sim::SimTime) {}
    virtual void on_stall(std::uint32_t /*target_epoch*/, sim::SimTime) {}
  };

  /// `tracker` may be null (no records kept). The manager attaches itself
  /// as the pipeline's control hook and detaches in its destructor.
  ReconfigManager(sim::Simulator& sim, np::NicPipeline& pipeline,
                  core::FlowValveEngine& engine, obs::ReconfigTracker* tracker,
                  Options options);
  ReconfigManager(sim::Simulator& sim, np::NicPipeline& pipeline,
                  core::FlowValveEngine& engine, obs::ReconfigTracker* tracker)
      : ReconfigManager(sim, pipeline, engine, tracker, Options{}) {}
  ~ReconfigManager() override;

  ReconfigManager(const ReconfigManager&) = delete;
  ReconfigManager& operator=(const ReconfigManager&) = delete;

  /// Probation guard: called periodically during probation with the current
  /// time; a non-empty return is a regression reason and triggers rollback.
  void set_guard(std::function<std::string(sim::SimTime)> guard) {
    guard_ = std::move(guard);
  }
  void set_observer(Observer* observer) { observer_ = observer; }

  /// Submit an update. Returns empty on acceptance (rollout started, or
  /// coalesced behind the in-progress one), else the rejection reason.
  std::string apply(const PolicyUpdate& update);

  /// Operator-initiated rollback of the in-progress or probation update.
  /// Returns false when idle (nothing to roll back).
  bool rollback(const std::string& reason = "operator");

  State state() const { return state_; }
  bool busy() const { return state_ != State::kIdle || queued_.has_value(); }
  std::uint32_t epoch() const { return epoch_; }
  std::uint32_t target_epoch() const { return target_; }
  /// Epoch worker `w` currently stamps packets with.
  std::uint32_t worker_epoch(unsigned w) const;

  // --- Control-plane fault hooks (src/fault) -----------------------------

  /// Latched torn-update: the next rollout's staged multi-word policy write
  /// tears mid-flight — every `stride`-th manifest class keeps its OLD
  /// policy words in the staged image even though validation approved the
  /// new ones. Whichever path commits (per-packet try-lock pull or the
  /// finish sweep) installs the torn image; the post-commit verification
  /// must detect the mismatch and roll back deterministically.
  void fault_tear_update(unsigned stride) { tear_stride_ = stride == 0 ? 1 : stride; }
  /// Un-latch a pending torn-update fault (FaultPlane clear path).
  void clear_tear_fault() { tear_stride_ = 0; }

  /// Sticky stale-epoch fault: worker `w` never acknowledges a cutover.
  /// A rollout including it stalls and resolves via rollback.
  void fault_stale_worker(unsigned w);
  /// Clear all stale-epoch faults (FaultPlane clear path).
  void repair_stale_workers();

  /// Update storm: `n` back-to-back no-op delta updates; the first starts a
  /// rollout, the rest coalesce behind it.
  void storm(unsigned n);

  struct Stats {
    std::uint64_t applied = 0;      // accepted updates (incl. queued)
    std::uint64_t rejected = 0;     // failed shadow validation
    std::uint64_t committed = 0;    // survived probation
    std::uint64_t rolled_back = 0;  // guard/stall/tear/operator rollbacks
    std::uint64_t coalesced = 0;    // queued updates overwritten by newer ones
    std::uint64_t stalled = 0;      // rollouts that hit the stall timeout
    std::uint64_t mixed_epoch_packets = 0;
    std::uint64_t forced_cutovers = 0;
    bool admission_forced = false;  // shedding was engaged at least once
  };
  const Stats& stats() const { return stats_; }

  Cutover on_packet_boundary(unsigned worker, sim::SimTime now,
                             unsigned packets) override;

 private:
  unsigned wave() const;
  void begin_rollout(ValidatedUpdate&& v, const std::string& kind, sim::SimTime now);
  void finish_rollout(sim::SimTime now);
  void on_stall_timeout();
  void guard_tick();
  void commit(sim::SimTime now);
  void do_rollback(const std::string& reason, sim::SimTime now);
  void close_record(sim::SimTime now, std::string outcome);
  void dequeue();

  sim::Simulator& sim_;
  np::NicPipeline& pipeline_;
  core::FlowValveEngine& engine_;
  obs::ReconfigTracker* tracker_;
  Options opts_;

  State state_ = State::kIdle;
  std::uint32_t epoch_ = 0;   // committed epoch (mirrors the tree)
  std::uint32_t target_ = 0;  // epoch being rolled out / on probation

  core::SchedulingTree::PolicyManifest manifest_;  // staged target policies
  core::SchedulingTree::PolicyManifest prior_;     // snapshot for rollback
  std::vector<core::FilterRule> new_filters_, prior_filters_;
  net::ClassLabelId new_default_ = net::kUnclassified;
  net::ClassLabelId prior_default_ = net::kUnclassified;
  bool pending_filter_swap_ = false;  // this update replaces the filter set
  bool filters_swapped_ = false;      // the replacement has been performed

  std::vector<bool> cut_;    // worker cut over to target_
  std::vector<bool> stale_;  // injected stale-epoch fault
  unsigned cut_count_ = 0;
  unsigned eligible_limit_ = 0;  // staged-wave cutover budget

  std::optional<PolicyUpdate> queued_;
  sim::EventHandle stall_timer_;
  sim::EventHandle guard_timer_;
  sim::SimTime probation_end_ = 0;

  std::function<std::string(sim::SimTime)> guard_;
  Observer* observer_ = nullptr;
  obs::ReconfigRecord open_;  // record of the in-progress update
  unsigned tear_stride_ = 0;  // latched torn-update fault (0 = none)

  Stats stats_;
};

}  // namespace flowvalve::ctrl
