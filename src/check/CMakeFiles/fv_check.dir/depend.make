# Empty dependencies file for fv_check.
# This may be replaced when dependencies are built.
