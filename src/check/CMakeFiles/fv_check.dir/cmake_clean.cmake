file(REMOVE_RECURSE
  "CMakeFiles/fv_check.dir/checker.cpp.o"
  "CMakeFiles/fv_check.dir/checker.cpp.o.d"
  "CMakeFiles/fv_check.dir/differential.cpp.o"
  "CMakeFiles/fv_check.dir/differential.cpp.o.d"
  "CMakeFiles/fv_check.dir/fuzzer.cpp.o"
  "CMakeFiles/fv_check.dir/fuzzer.cpp.o.d"
  "CMakeFiles/fv_check.dir/invariants.cpp.o"
  "CMakeFiles/fv_check.dir/invariants.cpp.o.d"
  "CMakeFiles/fv_check.dir/runner.cpp.o"
  "CMakeFiles/fv_check.dir/runner.cpp.o.d"
  "libfv_check.a"
  "libfv_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fv_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
