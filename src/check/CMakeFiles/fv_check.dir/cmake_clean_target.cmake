file(REMOVE_RECURSE
  "libfv_check.a"
)
