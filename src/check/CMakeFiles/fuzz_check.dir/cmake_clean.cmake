file(REMOVE_RECURSE
  "CMakeFiles/fuzz_check.dir/fuzz_check_main.cpp.o"
  "CMakeFiles/fuzz_check.dir/fuzz_check_main.cpp.o.d"
  "fuzz_check"
  "fuzz_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
