# Empty dependencies file for fuzz_check.
# This may be replaced when dependencies are built.
