#include "check/checker.h"

#include <sstream>

#include "check/invariants.h"

namespace flowvalve::check {

std::string Violation::to_string() const {
  std::ostringstream s;
  s << "[" << checker << "] t=" << at << "ns: " << detail;
  return s.str();
}

void ViolationSink::report(std::string_view checker, sim::SimTime at,
                           std::string detail) {
  ++total_;
  auto it = stored_per_checker_.find(checker);
  if (it == stored_per_checker_.end())
    it = stored_per_checker_.emplace(std::string(checker), 0).first;
  if (it->second < cap_per_checker_) {
    ++it->second;
    violations_.push_back({std::string(checker), at, std::move(detail)});
  }
}

CheckHarness::CheckHarness(sim::Simulator& sim, np::NicPipeline& pipeline,
                           core::FlowValveEngine* engine, Options options)
    : sim_(sim),
      pipeline_(pipeline),
      engine_(engine),
      options_(options),
      sink_(options.max_violations) {}

CheckHarness::~CheckHarness() {
  if (started_) pipeline_.set_observer(nullptr);
  if (engine_ && started_) engine_->set_process_observer(nullptr);
}

void CheckHarness::add(std::unique_ptr<InvariantChecker> checker) {
  checker->sink_ = &sink_;
  checkers_.push_back(std::move(checker));
}

void CheckHarness::add_standard_checkers() {
  for (auto& c : standard_checkers(pipeline_.config(), engine_)) add(std::move(c));
}

SystemView CheckHarness::view() const {
  return SystemView{&pipeline_, engine_, delivered_};
}

void CheckHarness::observe_clock(sim::SimTime now) {
  if (now < last_event_time_)
    sink_.report("virtual-time", now,
                 "clock went backwards: observed " + std::to_string(now) +
                     " after " + std::to_string(last_event_time_));
  last_event_time_ = now;
}

void CheckHarness::start() {
  started_ = true;
  pipeline_.set_observer(this);
  if (engine_) {
    engine_->set_process_observer(
        [this](const net::Packet& pkt, const core::FlowValveEngine::Result& r,
               sim::SimTime now) {
          observe_clock(now);
          for (auto& c : checkers_) c->on_engine_result(pkt, r, now);
        });
  }
  epoch_timer_ = std::make_unique<sim::PeriodicTimer>(sim_, options_.epoch, [this] {
    observe_clock(sim_.now());
    const SystemView v = view();
    for (auto& c : checkers_) c->on_epoch(v, sim_.now());
  });
  epoch_timer_->start();
}

void CheckHarness::stop_sampling() {
  if (epoch_timer_) epoch_timer_->stop();
}

void CheckHarness::finish() {
  if (finished_) return;
  finished_ = true;
  if (epoch_timer_) epoch_timer_->stop();
  const SystemView v = view();
  for (auto& c : checkers_) {
    c->on_epoch(v, sim_.now());
    c->on_finish(v, sim_.now());
  }
}

void CheckHarness::on_submit(const net::Packet& pkt, sim::SimTime now) {
  observe_clock(now);
  for (auto& c : checkers_) c->on_submit(pkt, now);
}

void CheckHarness::on_dispatch(const net::Packet& pkt, unsigned worker,
                               std::uint64_t seq, sim::SimTime now,
                               sim::SimDuration busy) {
  // `now` is the packet's logical start within its worker's burst window —
  // for the 2nd..Nth packet of a burst it runs AHEAD of the simulator
  // clock by design (the slices tile the busy interval). The kernel-
  // ordering probe must watch the real clock, not the logical one.
  observe_clock(sim_.now());
  for (auto& c : checkers_) c->on_dispatch(pkt, worker, seq, now, busy);
}

void CheckHarness::on_drop(const net::Packet& pkt, np::DropReason reason,
                           sim::SimTime now) {
  observe_clock(now);
  for (auto& c : checkers_) c->on_drop(pkt, reason, now);
}

void CheckHarness::on_wire_tx(const net::Packet& pkt, sim::SimTime now) {
  observe_clock(now);
  for (auto& c : checkers_) c->on_wire_tx(pkt, now);
}

void CheckHarness::on_delivered(const net::Packet& pkt, sim::SimTime now) {
  observe_clock(now);
  ++delivered_;
  for (auto& c : checkers_) c->on_delivered(pkt, now);
}

void CheckHarness::on_watchdog(const net::Packet& pkt, unsigned worker,
                               std::uint64_t seq, sim::SimTime now) {
  observe_clock(now);
  for (auto& c : checkers_) c->on_watchdog(pkt, worker, seq, now);
}

}  // namespace flowvalve::check
