#include "check/fuzzer.h"

#include <algorithm>
#include <sstream>

namespace flowvalve::check {

namespace {

using sim::Rate;
using sim::Rng;

/// Internal node of the policy tree being generated.
struct GenNode {
  std::string classid;
  std::string name;
  int depth = 0;
  double weight = 1.0;
  unsigned prio = 0;
  Rate ceil = Rate::zero();       // zero = unlimited (omitted from script)
  Rate guarantee = Rate::zero();
  Rate static_share = Rate::zero();
  std::vector<GenNode> children;

  bool is_leaf() const { return children.empty(); }
};

constexpr unsigned kMaxLeaves = 8;

void gen_subtree(Rng& rng, GenNode& node, Rate link, unsigned& leaves_left) {
  if (node.depth >= 3 || leaves_left == 0) return;
  // Deeper nodes branch less often; the root always branches.
  const bool branch = node.depth == 0 || rng.chance(node.depth == 1 ? 0.35 : 0.2);
  if (!branch) return;
  const unsigned want = 2 + static_cast<unsigned>(rng.next_below(3));  // 2-4
  const unsigned n = std::min<unsigned>(want, leaves_left);
  if (n < 2) return;
  leaves_left -= n;  // children start as leaves; branching gives slots back
  for (unsigned i = 0; i < n; ++i) {
    GenNode child;
    // "1:0" is the frontend's alias for the root handle, so top-level
    // children start at digit 1; deeper digit-paths are unique by prefix.
    child.classid =
        node.classid + std::to_string(node.depth == 0 ? i + 1 : i);
    child.depth = node.depth + 1;
    child.weight = 1.0 + static_cast<double>(rng.next_below(8));
    child.prio = rng.chance(0.3) ? 1 : 0;
    if (rng.chance(0.3)) child.ceil = link * rng.uniform(0.2, 0.9);
    node.children.push_back(std::move(child));
  }
  for (auto& child : node.children) {
    gen_subtree(rng, child, link, leaves_left);
    if (!child.is_leaf()) ++leaves_left;  // interior node frees its leaf slot
  }
}

void assign_shares_and_guarantees(Rng& rng, GenNode& node, Rate parent_share,
                                  unsigned total_leaves) {
  double wsum = 0.0;
  for (const auto& c : node.children) wsum += c.weight;
  for (auto& c : node.children) {
    Rate share = parent_share * (c.weight / wsum);
    if (c.is_leaf() && rng.chance(0.25)) {
      Rate g = parent_share * rng.uniform(0.05, 0.3) /
               static_cast<double>(total_leaves);
      if (!c.ceil.is_zero() && g > c.ceil) g = c.ceil * 0.5;
      c.guarantee = g;
      if (c.guarantee > share) share = c.guarantee;
    }
    if (!c.ceil.is_zero() && share > c.ceil) share = c.ceil;
    c.static_share = share;
    assign_shares_and_guarantees(rng, c, share, total_leaves);
  }
}

void collect_leaves(GenNode& node, std::vector<GenNode*>& out) {
  if (node.is_leaf()) {
    out.push_back(&node);
    return;
  }
  for (auto& c : node.children) collect_leaves(c, out);
}

std::string rate_token(Rate r) {
  std::ostringstream s;
  s << r.gbps() << "gbit";
  return s.str();
}

void emit_classes(std::ostringstream& s, const GenNode& node,
                  const std::string& parent_handle) {
  for (const auto& c : node.children) {
    s << "fv class add dev nic0 parent " << parent_handle << " classid 1:"
      << c.classid << " name " << c.name << " prio " << c.prio << " weight "
      << c.weight;
    if (!c.ceil.is_zero()) s << " ceil " << rate_token(c.ceil);
    if (!c.guarantee.is_zero()) s << " guarantee " << rate_token(c.guarantee);
    s << "\n";
  }
  for (const auto& c : node.children)
    if (!c.is_leaf()) emit_classes(s, c, "1:" + c.classid);
}

void name_nodes(GenNode& node) {
  for (auto& c : node.children) {
    c.name = (c.is_leaf() ? "leaf" : "grp") + c.classid;
    name_nodes(c);
  }
}

FuzzFlow::Kind pick_kind(Rng& rng) {
  const double x = rng.next_double();
  if (x < 0.4) return FuzzFlow::Kind::kCbr;
  if (x < 0.6) return FuzzFlow::Kind::kPoisson;
  if (x < 0.8) return FuzzFlow::Kind::kOnOff;
  return FuzzFlow::Kind::kTcp;
}

}  // namespace

const char* FuzzFlow::kind_name() const {
  switch (kind) {
    case Kind::kCbr: return "cbr";
    case Kind::kPoisson: return "poisson";
    case Kind::kOnOff: return "onoff";
    case Kind::kTcp: return "tcp";
    case Kind::kChurn: return "churn";
  }
  return "?";
}

FuzzScenario generate_scenario(std::uint64_t seed) {
  const Rng root_rng(seed);
  FuzzScenario sc;
  sc.seed = seed;

  // -- NP configuration ----------------------------------------------------
  Rng nic_rng = root_rng.split("nic");
  const double link_choices[] = {10.0, 25.0, 40.0};
  sc.link_rate = Rate::gigabits_per_sec(link_choices[nic_rng.next_below(3)]);
  sc.nic = np::NpConfig{};
  sc.nic.wire_rate = sc.link_rate;
  sc.nic.num_workers = 4 + static_cast<unsigned>(nic_rng.next_below(61));
  const std::size_t vf_caps[] = {64, 128, 256, 512};
  sc.nic.vf_ring_capacity = vf_caps[nic_rng.next_below(4)];
  const std::size_t tx_caps[] = {256, 1024, 2048};
  sc.nic.tx_ring_capacity = tx_caps[nic_rng.next_below(3)];
  sc.nic.enforce_reorder = nic_rng.chance(0.8);
  sc.nic.fixed_pipeline_delay =
      sim::microseconds(1 + static_cast<std::int64_t>(nic_rng.next_below(50)));
  // Worker burst size, drawn from its own split so every other scenario
  // field is unchanged for a given seed. The set straddles the interesting
  // boundaries: the legacy per-packet path, a tiny burst, and one packet
  // either side of the default 32 (short trailing bursts / exact fill).
  Rng batch_rng = root_rng.split("batch");
  const unsigned batch_choices[] = {1, 2, 31, 32, 33};
  sc.nic.batch_size = batch_choices[batch_rng.next_below(5)];

  // Scheduling discipline, from its own split (adding it never perturbed
  // older seeds' scenarios). FlowValve keeps half the corpus — it is the
  // production default and the only backend with the full checker set —
  // while the rank valves split the rest so every discipline soaks in the
  // same scenario space.
  Rng backend_rng = root_rng.split("backend");
  const core::BackendKind backend_choices[] = {
      core::BackendKind::kFlowValve, core::BackendKind::kFlowValve,
      core::BackendKind::kFlowValve, core::BackendKind::kStfq,
      core::BackendKind::kEiffel, core::BackendKind::kSpPifo};
  sc.nic.backend = backend_choices[backend_rng.next_below(6)];

  // -- policy tree ---------------------------------------------------------
  Rng pol_rng = root_rng.split("policy");
  GenNode tree_root;
  tree_root.classid = "";  // children become 1:0..1:n
  tree_root.static_share = sc.link_rate;
  unsigned leaves_left = kMaxLeaves;
  // Retry until the root actually branches (a rootless policy is trivial).
  for (int attempt = 0; tree_root.children.empty() && attempt < 8; ++attempt) {
    leaves_left = kMaxLeaves;
    gen_subtree(pol_rng, tree_root, sc.link_rate, leaves_left);
  }
  if (tree_root.children.empty()) {
    // Degenerate fallback: two equal leaves.
    for (int i = 1; i <= 2; ++i) {
      GenNode c;
      c.classid = std::to_string(i);
      c.depth = 1;
      tree_root.children.push_back(std::move(c));
    }
  }
  name_nodes(tree_root);

  std::vector<GenNode*> leaves;
  collect_leaves(tree_root, leaves);
  assign_shares_and_guarantees(pol_rng, tree_root, sc.link_rate,
                               static_cast<unsigned>(leaves.size()));
  sc.nic.num_vfs = static_cast<unsigned>(leaves.size());

  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << rate_token(sc.link_rate)
    << "\n";
  emit_classes(s, tree_root, "1:");
  // Borrow labels: each leaf may query a random subset of the other leaves.
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (!pol_rng.chance(0.6) || leaves.size() < 2) continue;
    std::vector<std::string> lenders;
    for (std::size_t j = 0; j < leaves.size(); ++j)
      if (j != i && pol_rng.chance(0.5))
        lenders.push_back("1:" + leaves[j]->classid);
    if (lenders.empty()) lenders.push_back("1:" + leaves[i == 0 ? 1 : 0]->classid);
    s << "fv borrow add dev nic0 classid 1:" << leaves[i]->classid << " from ";
    for (std::size_t k = 0; k < lenders.size(); ++k)
      s << (k ? "," : "") << lenders[k];
    s << "\n";
  }
  for (std::size_t i = 0; i < leaves.size(); ++i)
    s << "fv filter add dev nic0 pref " << 10 + i << " vf " << i << " classid 1:"
      << leaves[i]->classid << "\n";
  sc.fv_script = s.str();

  for (std::size_t i = 0; i < leaves.size(); ++i) {
    FuzzLeaf leaf;
    leaf.classid = "1:" + leaves[i]->classid;
    leaf.name = leaves[i]->name;
    leaf.vf = static_cast<std::uint16_t>(i);
    leaf.weight = leaves[i]->weight;
    leaf.static_share = leaves[i]->static_share;
    leaf.ceil = leaves[i]->ceil.is_zero() ? sc.link_rate : leaves[i]->ceil;
    sc.leaves.push_back(std::move(leaf));
  }

  // -- workload ------------------------------------------------------------
  Rng wl_rng = root_rng.split("workload");
  sc.horizon = sim::milliseconds(15 + static_cast<std::int64_t>(wl_rng.next_below(26)));
  const bool big_frames_only = sc.link_rate.gbps() > 25.0;
  std::uint32_t next_app = 0;
  for (const FuzzLeaf& leaf : sc.leaves) {
    const unsigned flows = 1 + static_cast<unsigned>(wl_rng.next_below(2));
    for (unsigned f = 0; f < flows; ++f) {
      FuzzFlow flow;
      flow.kind = pick_kind(wl_rng);
      flow.vf = leaf.vf;
      flow.app_id = next_app++;
      flow.rate = leaf.static_share * wl_rng.uniform(0.4, 1.8) /
                  static_cast<double>(flows);
      flow.frame_bytes = big_frames_only
                             ? 1518
                             : (wl_rng.chance(0.5) ? 1518u : 1024u);
      flow.start = static_cast<sim::SimTime>(
          wl_rng.uniform(0.0, 0.25 * static_cast<double>(sc.horizon)));
      flow.stop = static_cast<sim::SimTime>(
          wl_rng.uniform(0.6, 1.0) * static_cast<double>(sc.horizon));
      sc.flows.push_back(flow);
    }
  }

  // -- flow-table stress ---------------------------------------------------
  // EMC geometry and churn ride their own splits so seeds minted before the
  // cuckoo flow table produce the same policy/workload as before, just with
  // a randomized cache on top.
  Rng emc_rng = root_rng.split("emc");
  const std::size_t emc_caps[] = {4096, 16384, 65536, 262144};
  sc.nic.emc_capacity = emc_caps[emc_rng.next_below(4)];
  Rng churn_rng = root_rng.split("churn");
  if (churn_rng.chance(0.35)) {
    // One churn source sharing the link with the leaf-targeted flows. Its
    // live-flow ceiling deliberately straddles the EMC capacity so some
    // scenarios fit in cache and others thrash it.
    FuzzFlow flow;
    flow.kind = FuzzFlow::Kind::kChurn;
    flow.vf = 0;
    flow.app_id = next_app++;
    const std::size_t live_choices[] = {1024, 8192, 65536, 131072};
    flow.live_flows = live_choices[churn_rng.next_below(4)];
    flow.rate = sc.link_rate * churn_rng.uniform(0.1, 0.5);
    flow.frame_bytes = 1518;
    flow.start = 0;
    flow.stop = sc.horizon;
    sc.flows.push_back(flow);
  }
  return sc;
}

FuzzScenario generate_differential_scenario(std::uint64_t seed) {
  const Rng root_rng(seed);
  Rng rng = root_rng.split("differential");

  FuzzScenario sc;
  sc.seed = seed;
  sc.link_rate = Rate::gigabits_per_sec(10);
  sc.nic = np::NpConfig{};
  sc.nic.wire_rate = sc.link_rate;
  sc.nic.fixed_pipeline_delay = sim::microseconds(15);
  sc.horizon = sim::milliseconds(250);

  const unsigned classes = 2 + static_cast<unsigned>(rng.next_below(4));  // 2-5
  sc.nic.num_vfs = classes;

  std::ostringstream s;
  s << "fv qdisc add dev nic0 root handle 1: htb rate " << rate_token(sc.link_rate)
    << "\n";
  std::vector<double> weights;
  double wsum = 0.0;
  for (unsigned i = 0; i < classes; ++i) {
    weights.push_back(1.0 + static_cast<double>(rng.next_below(4)));
    wsum += weights.back();
  }
  for (unsigned i = 0; i < classes; ++i)
    s << "fv class add dev nic0 parent 1: classid 1:" << i + 1 << " name fair"
      << i << " weight " << weights[i] << "\n";
  for (unsigned i = 0; i < classes; ++i) {
    s << "fv borrow add dev nic0 classid 1:" << i + 1 << " from ";
    bool first = true;
    for (unsigned j = 0; j < classes; ++j) {
      if (j == i) continue;
      s << (first ? "" : ",") << "1:" << j + 1;
      first = false;
    }
    s << "\n";
  }
  for (unsigned i = 0; i < classes; ++i)
    s << "fv filter add dev nic0 pref " << 10 + i << " vf " << i << " classid 1:"
      << i + 1 << "\n";
  sc.fv_script = s.str();

  for (unsigned i = 0; i < classes; ++i) {
    FuzzLeaf leaf;
    leaf.classid = "1:" + std::to_string(i + 1);
    leaf.name = "fair" + std::to_string(i);
    leaf.vf = static_cast<std::uint16_t>(i);
    leaf.weight = weights[i];
    leaf.static_share = sc.link_rate * (weights[i] / wsum);
    leaf.ceil = sc.link_rate;
    sc.leaves.push_back(std::move(leaf));

    // Saturating open-loop CBR: every class demands 1.5× its fair share, so
    // the weighted-fair allocation is the unique max-min outcome.
    FuzzFlow flow;
    flow.kind = FuzzFlow::Kind::kCbr;
    flow.vf = leaf.vf;
    flow.app_id = i;
    flow.rate = sc.leaves.back().static_share * 1.5;
    flow.frame_bytes = 1518;
    flow.start = 0;
    flow.stop = sc.horizon;
    sc.flows.push_back(flow);
  }
  return sc;
}

np::NpConfig generate_invalid_config(std::uint64_t seed) {
  const Rng root_rng(seed);
  Rng rng = root_rng.split("invalid-config");
  np::NpConfig c;
  c.num_workers = 1 + static_cast<unsigned>(rng.next_below(64));
  c.num_vfs = 1 + static_cast<unsigned>(rng.next_below(16));
  c.vf_ring_capacity = 1 + rng.next_below(512);
  c.tx_ring_capacity = 1 + rng.next_below(2048);
  c.wire_rate = Rate::gigabits_per_sec(1.0 + rng.uniform(0.0, 99.0));
  switch (rng.next_below(7)) {
    case 0: c.num_vfs = 0; break;
    case 1: c.num_workers = 0; break;
    case 2: c.vf_ring_capacity = 0; break;
    case 3: c.tx_ring_capacity = 0; break;
    case 4: c.reorder_capacity = 0; break;
    case 5: c.freq_ghz = 0.0; break;
    case 6: c.wire_rate = Rate::zero(); break;
  }
  return c;
}

std::string FuzzScenario::describe() const {
  std::ostringstream s;
  s << "seed 0x" << std::hex << seed << std::dec << ": link "
    << link_rate.to_string() << ", " << nic.num_workers << " workers, "
    << nic.num_vfs << " VFs (ring " << nic.vf_ring_capacity << "), tx ring "
    << nic.tx_ring_capacity << ", reorder "
    << (nic.enforce_reorder ? "on" : "off") << ", batch " << nic.batch_size
    << ", backend " << core::backend_kind_name(nic.backend) << ", emc "
    << nic.emc_capacity << ", horizon " << sim::to_millis(horizon) << " ms\n";
  s << "policy:\n" << fv_script;
  s << "flows:\n";
  for (const auto& f : flows) {
    s << "  vf" << f.vf << " app" << f.app_id << " " << f.kind_name() << " "
      << f.rate.to_string() << " frame " << f.frame_bytes << "B ["
      << sim::to_millis(f.start) << ", " << sim::to_millis(f.stop) << ") ms";
    if (f.kind == FuzzFlow::Kind::kChurn) s << " live " << f.live_flows;
    s << "\n";
  }
  return s.str();
}

}  // namespace flowvalve::check
