#include "check/invariants.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/sched_tree.h"

namespace flowvalve::check {
namespace {

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

// ---------------------------------------------------------------- counts --

/// Packet conservation: every submitted packet is eventually accounted for
/// as exactly one of {wire, vf-ring drop, scheduler drop, tx-ring drop,
/// reorder flush/timeout, watchdog abort, admission drop}.
/// While running, the residual must equal the pipeline's in_flight gauge;
/// at quiescence the residual must be zero and the hook-side counts must
/// reconcile with the pipeline's own Stats.
class ConservationChecker final : public InvariantChecker {
 public:
  std::string_view name() const override { return "conservation"; }

  void on_submit(const net::Packet&, sim::SimTime) override { ++submitted_; }
  void on_wire_tx(const net::Packet&, sim::SimTime) override { ++wire_; }
  void on_drop(const net::Packet&, np::DropReason reason, sim::SimTime) override {
    switch (reason) {
      case np::DropReason::kVfRingFull: ++vf_drops_; break;
      case np::DropReason::kScheduler: ++sched_drops_; break;
      case np::DropReason::kTxRingFull: ++tx_drops_; break;
      case np::DropReason::kReorderFlush: ++flush_drops_; break;
      case np::DropReason::kReorderTimeout: ++timeout_drops_; break;
      case np::DropReason::kWatchdogAbort: ++watchdog_drops_; break;
      case np::DropReason::kAdmission: ++admission_drops_; break;
      case np::DropReason::kIslandRestart: ++restart_drops_; break;
    }
  }

  void on_epoch(const SystemView& v, sim::SimTime now) override {
    const std::uint64_t accounted = wire_ + vf_drops_ + sched_drops_ +
                                    tx_drops_ + flush_drops_ + timeout_drops_ +
                                    watchdog_drops_ + admission_drops_ +
                                    restart_drops_;
    if (accounted > submitted_) {
      fail(now, "accounted " + fmt_u64(accounted) + " packets > submitted " +
                    fmt_u64(submitted_));
      return;
    }
    const std::uint64_t residual = submitted_ - accounted;
    if (residual != v.pipeline->in_flight())
      fail(now, "submitted - (wire + drops) = " + fmt_u64(residual) +
                    " but pipeline reports in_flight = " +
                    fmt_u64(v.pipeline->in_flight()));
  }

  void on_finish(const SystemView& v, sim::SimTime now) override {
    const auto& s = v.pipeline->stats();
    const std::uint64_t drops = vf_drops_ + sched_drops_ + tx_drops_ +
                                flush_drops_ + timeout_drops_ +
                                watchdog_drops_ + admission_drops_ +
                                restart_drops_;
    if (submitted_ != wire_ + drops)
      fail(now, "at drain: submitted " + fmt_u64(submitted_) + " != wire " +
                    fmt_u64(wire_) + " + drops " + fmt_u64(drops));
    if (v.pipeline->in_flight() != 0)
      fail(now, "at drain: in_flight = " + fmt_u64(v.pipeline->in_flight()));
    if (s.submitted != submitted_ || s.forwarded_to_wire != wire_ ||
        s.vf_ring_drops != vf_drops_ || s.scheduler_drops != sched_drops_ ||
        s.tx_ring_drops != tx_drops_ || s.reorder_flush_drops != flush_drops_ ||
        s.reorder_timeout_drops != timeout_drops_ ||
        s.watchdog_drops != watchdog_drops_ ||
        s.admission_drops != admission_drops_ ||
        s.island_restart_drops != restart_drops_)
      fail(now, "pipeline Stats disagree with observed events (stats: " +
                    fmt_u64(s.submitted) + "/" + fmt_u64(s.forwarded_to_wire) +
                    "/" + fmt_u64(s.vf_ring_drops) + "/" +
                    fmt_u64(s.scheduler_drops) + "/" + fmt_u64(s.tx_ring_drops) +
                    "/" + fmt_u64(s.reorder_flush_drops) + "/" +
                    fmt_u64(s.reorder_timeout_drops) + "/" +
                    fmt_u64(s.watchdog_drops) + "/" +
                    fmt_u64(s.admission_drops) + ", observed: " +
                    fmt_u64(submitted_) + "/" + fmt_u64(wire_) + "/" +
                    fmt_u64(vf_drops_) + "/" + fmt_u64(sched_drops_) + "/" +
                    fmt_u64(tx_drops_) + "/" + fmt_u64(flush_drops_) + "/" +
                    fmt_u64(timeout_drops_) + "/" + fmt_u64(watchdog_drops_) +
                    "/" + fmt_u64(admission_drops_) + "/" +
                    fmt_u64(restart_drops_) + ")");
    if (v.delivered_packets != wire_)
      fail(now, "delivered " + fmt_u64(v.delivered_packets) +
                    " != wire transmissions " + fmt_u64(wire_));
  }

 private:
  std::uint64_t submitted_ = 0;
  std::uint64_t wire_ = 0;
  std::uint64_t vf_drops_ = 0;
  std::uint64_t sched_drops_ = 0;
  std::uint64_t tx_drops_ = 0;
  std::uint64_t flush_drops_ = 0;
  std::uint64_t timeout_drops_ = 0;
  std::uint64_t watchdog_drops_ = 0;
  std::uint64_t admission_drops_ = 0;
  std::uint64_t restart_drops_ = 0;
};

// -------------------------------------------------------------- ordering --

/// In-order delivery through the reorder system: with enforce_reorder on,
/// packets entering on one VF ring leave the NIC in submission order (drops
/// may punch holes but never permute survivors), and each flow's
/// seq_in_flow is strictly increasing at the receiver.
class OrderingChecker final : public InvariantChecker {
 public:
  explicit OrderingChecker(bool enforce_reorder) : enabled_(enforce_reorder) {}

  std::string_view name() const override { return "ordering"; }

  void on_submit(const net::Packet& pkt, sim::SimTime) override {
    if (!enabled_) return;
    per_vf_[pkt.vf_port].push_back(pkt.id);
  }

  void on_drop(const net::Packet& pkt, np::DropReason, sim::SimTime) override {
    if (!enabled_) return;
    dropped_.insert(pkt.id);
  }

  void on_delivered(const net::Packet& pkt, sim::SimTime now) override {
    // Per-flow strict sequence order holds regardless of the reorder system
    // only per VF ring; flows never span VFs in our sources, so gate both
    // checks on the reorder system being active.
    if (!enabled_) return;
    if (auto it = last_seq_.find(pkt.flow_id); it != last_seq_.end()) {
      if (pkt.seq_in_flow <= it->second)
        fail(now, "flow " + fmt_u64(pkt.flow_id) + " delivered seq " +
                      fmt_u64(pkt.seq_in_flow) + " after seq " +
                      fmt_u64(it->second));
      it->second = pkt.seq_in_flow;
    } else {
      last_seq_.emplace(pkt.flow_id, pkt.seq_in_flow);
    }

    auto& q = per_vf_[pkt.vf_port];
    while (!q.empty() && q.front() != pkt.id) {
      // Consume the overtaken entry either way so each skipped live packet
      // is reported exactly once instead of on every later delivery (which
      // would drown the sink's cap and mask other checkers' violations).
      if (dropped_.erase(q.front()) == 0)
        fail(now, "vf " + std::to_string(pkt.vf_port) + ": packet " +
                      fmt_u64(pkt.id) + " delivered ahead of live packet " +
                      fmt_u64(q.front()));
      q.pop_front();
    }
    if (!q.empty() && q.front() == pkt.id) q.pop_front();
  }

  void on_finish(const SystemView&, sim::SimTime now) override {
    if (!enabled_) return;
    for (auto& [vf, q] : per_vf_)
      for (std::uint64_t id : q)
        if (dropped_.erase(id) == 0)
          fail(now, "vf " + std::to_string(vf) + ": packet " + fmt_u64(id) +
                        " neither delivered nor dropped");
  }

 private:
  bool enabled_;
  std::unordered_map<std::uint16_t, std::deque<std::uint64_t>> per_vf_;
  std::unordered_set<std::uint64_t> dropped_;
  std::unordered_map<std::uint32_t, std::uint64_t> last_seq_;
};

// ------------------------------------------------------------ timestamps --

/// Packet lifecycle timestamps are monotone within a packet, the wire emits
/// frames in nondecreasing time order, and the fixed pipeline delay between
/// last-bit-on-wire and receiver observation is honored exactly.
class TimestampChecker final : public InvariantChecker {
 public:
  explicit TimestampChecker(sim::SimDuration fixed_delay)
      : fixed_delay_(fixed_delay) {}

  std::string_view name() const override { return "timestamps"; }

  void on_wire_tx(const net::Packet& pkt, sim::SimTime now) override {
    if (pkt.wire_tx_done < last_wire_)
      fail(now, "wire_tx_done went backwards: " + fmt_u64(pkt.wire_tx_done) +
                    " after " + fmt_u64(last_wire_));
    last_wire_ = pkt.wire_tx_done;
  }

  void on_delivered(const net::Packet& pkt, sim::SimTime now) override {
    const bool monotone = pkt.created_at <= pkt.nic_arrival &&
                          pkt.nic_arrival <= pkt.tx_enqueue &&
                          pkt.tx_enqueue <= pkt.wire_tx_done &&
                          pkt.wire_tx_done <= pkt.delivered_at;
    if (!monotone)
      fail(now, "packet " + fmt_u64(pkt.id) + " timestamps not monotone: " +
                    std::to_string(pkt.created_at) + " / " +
                    std::to_string(pkt.nic_arrival) + " / " +
                    std::to_string(pkt.tx_enqueue) + " / " +
                    std::to_string(pkt.wire_tx_done) + " / " +
                    std::to_string(pkt.delivered_at));
    if (pkt.delivered_at - pkt.wire_tx_done != fixed_delay_)
      fail(now, "packet " + fmt_u64(pkt.id) + " pipeline delay " +
                    std::to_string(pkt.delivered_at - pkt.wire_tx_done) +
                    "ns != configured " + std::to_string(fixed_delay_) + "ns");
  }

 private:
  sim::SimDuration fixed_delay_;
  sim::SimTime last_wire_ = 0;
};

// ------------------------------------------------------ wire conformance --

/// The traffic manager drains the shared FIFO at wire rate and no faster:
/// cumulative wire occupancy bytes over [0, t] never exceed rate · t plus
/// per-frame rounding slack (serialization delays round to whole ns).
class WireConformanceChecker final : public InvariantChecker {
 public:
  explicit WireConformanceChecker(sim::Rate wire_rate) : rate_(wire_rate) {}

  std::string_view name() const override { return "wire-conformance"; }

  void on_wire_tx(const net::Packet& pkt, sim::SimTime now) override {
    bytes_ += pkt.wire_occupancy_bytes();
    ++frames_;
    // Each serialization delay may round down by up to 0.5 ns: grant one
    // ns worth of bytes per frame plus one frame of slack for the boundary.
    const double slack =
        static_cast<double>(frames_) * rate_.bytes_per_ns() + 2048.0;
    const double allowed = rate_.bytes_in(now) + slack;
    if (static_cast<double>(bytes_) > allowed)
      fail(now, "cumulative wire bytes " + fmt_u64(bytes_) + " exceed " +
                    rate_.to_string() + " budget " + std::to_string(allowed));
  }

 private:
  sim::Rate rate_;
  std::uint64_t bytes_ = 0;
  std::uint64_t frames_ = 0;
};

// ---------------------------------------------------- worker exclusivity --

/// Run-to-completion: a worker micro-engine handles one packet at a time,
/// so its busy intervals never overlap, and total dispatches reconcile with
/// the pipeline's processed count. A watchdog abort ends the worker's busy
/// interval early and may re-dispatch the salvaged packet (original
/// ingress_seq) out of global sequence order — both are accepted only when
/// announced through on_watchdog first.
class WorkerExclusivityChecker final : public InvariantChecker {
 public:
  std::string_view name() const override { return "worker-exclusivity"; }

  void on_dispatch(const net::Packet&, unsigned worker, std::uint64_t seq,
                   sim::SimTime now, sim::SimDuration busy) override {
    if (worker >= busy_until_.size()) busy_until_.resize(worker + 1, 0);
    if (now < busy_until_[worker])
      fail(now, "worker " + std::to_string(worker) + " dispatched at " +
                    std::to_string(now) + " while busy until " +
                    std::to_string(busy_until_[worker]));
    busy_until_[worker] = now + busy;
    if (seq == next_seq_) {
      ++next_seq_;
    } else if (requeued_.erase(seq) == 0) {
      fail(now, "ingress_seq " + fmt_u64(seq) + " out of order (expected " +
                    fmt_u64(next_seq_) + ", not a watchdog requeue)");
      next_seq_ = seq + 1;
    }
    ++dispatches_;
  }

  void on_watchdog(const net::Packet&, unsigned worker, std::uint64_t seq,
                   sim::SimTime now) override {
    if (worker >= busy_until_.size()) busy_until_.resize(worker + 1, 0);
    busy_until_[worker] = now;
    requeued_.insert(seq);
  }

  void on_finish(const SystemView& v, sim::SimTime now) override {
    if (v.pipeline->stats().processed != dispatches_)
      fail(now, "pipeline processed " + fmt_u64(v.pipeline->stats().processed) +
                    " != observed dispatches " + fmt_u64(dispatches_));
  }

 private:
  std::vector<sim::SimTime> busy_until_;
  std::unordered_set<std::uint64_t> requeued_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatches_ = 0;
};

// -------------------------------------------------------- tree arithmetic --

/// Scheduling-tree arithmetic, sampled each epoch: θ stays within [0, ceil],
/// per-priority-level sibling θ totals stay within the parent's configured
/// budget plus the level's guarantee reservations (each level splits
/// `avail` ≤ parent θ ≤ parent ceil — Eq. 4/5 — but siblings evaluate at
/// different instants), bucket fill stays within [0, capacity], and the
/// lendable rate never exceeds θ (Eq. 6).
class TreeArithmeticChecker final : public InvariantChecker {
 public:
  std::string_view name() const override { return "tree-arithmetic"; }

  void on_epoch(const SystemView& v, sim::SimTime now) override {
    if (!v.engine || !v.engine->ready()) return;
    const core::SchedulingTree& tree = v.engine->tree();
    for (core::ClassId id = 0; id < tree.size(); ++id) {
      const core::SchedClass& c = tree.at(id);
      check_rate_bounds(c, now);
      check_bucket(c.name, "bucket", c.bucket, now);
      check_bucket(c.name, "shadow", c.shadow, now);
      if (c.is_leaf()) continue;
      // Per-priority-level sibling budget. Each sibling's θ is recomputed at
      // its own update instant, so one level's total can transiently exceed
      // the parent budget by the guarantee reservations that moved between
      // those instants (reserved_rate ≤ guarantee) — but never by more.
      std::unordered_map<unsigned, double> level_bps;
      std::unordered_map<unsigned, double> level_slack;
      for (core::ClassId cid : c.children) {
        const core::SchedClass& child = tree.at(cid);
        level_bps[child.policy.prio] += child.theta.bps();
        if (child.policy.has_guarantee())
          level_slack[child.policy.prio] += child.policy.guarantee.bps();
      }
      for (const auto& [level, bps] : level_bps) {
        const double budget =
            (c.policy.ceil.bps() + level_slack[level]) * (1.0 + 1e-9) + 1.0;
        if (bps > budget)
          fail(now, "children of '" + c.name + "' at prio " +
                        std::to_string(level) + " sum to " +
                        sim::Rate::bits_per_sec(bps).to_string() +
                        " > parent budget " + c.policy.ceil.to_string() +
                        " + guarantee slack " +
                        sim::Rate::bits_per_sec(level_slack[level]).to_string());
      }
    }
  }

 private:
  void check_rate_bounds(const core::SchedClass& c, sim::SimTime now) {
    if (c.theta.bps() < 0.0)
      fail(now, "class '" + c.name + "' has negative θ " + c.theta.to_string());
    if (c.theta.bps() > c.policy.ceil.bps() * (1.0 + 1e-9) + 1.0)
      fail(now, "class '" + c.name + "' θ " + c.theta.to_string() +
                    " exceeds ceil " + c.policy.ceil.to_string());
    if (c.lendable.bps() < 0.0)
      fail(now, "class '" + c.name + "' has negative lendable rate");
    if (c.lendable.bps() > c.theta.bps() * (1.0 + 1e-9) + 1.0)
      fail(now, "class '" + c.name + "' lendable " + c.lendable.to_string() +
                    " exceeds θ " + c.theta.to_string());
  }

  void check_bucket(const std::string& cls, const char* which,
                    const core::TokenBucket& b, sim::SimTime now) {
    if (b.tokens() < -1e-6)
      fail(now, "class '" + cls + "' " + which + " went negative: " +
                    std::to_string(b.tokens()));
    if (b.tokens() > b.capacity() + 1e-6)
      fail(now, "class '" + cls + "' " + which + " over capacity: " +
                    std::to_string(b.tokens()) + " > " +
                    std::to_string(b.capacity()));
  }
};

// ------------------------------------------------------- ceil conformance --

/// Token-bucket conformance per leaf class: bytes forwarded GREEN from the
/// class's own bucket (no borrowing) over [0, t] can never exceed
/// ceil · t + max bucket capacity, because the bucket replenishes at
/// θ ≤ ceil and saturates at its capacity. Borrowed traffic is legitimately
/// above this line (that's work conservation) and is excluded.
class CeilConformanceChecker final : public InvariantChecker {
 public:
  std::string_view name() const override { return "ceil-conformance"; }

  void on_engine_result(const net::Packet& pkt,
                        const core::FlowValveEngine::Result& r,
                        sim::SimTime) override {
    if (r.verdict != core::Verdict::kForward || r.borrowed) return;
    if (pkt.label == net::kUnclassified) return;
    if (pkt.label >= green_bytes_.size()) green_bytes_.resize(pkt.label + 1, 0);
    green_bytes_[pkt.label] += pkt.wire_occupancy_bytes();
  }

  void on_epoch(const SystemView& v, sim::SimTime now) override {
    if (!v.engine || !v.engine->ready() || now <= 0) return;
    const auto& labels = v.engine->frontend().labels();
    const core::SchedulingTree& tree = v.engine->tree();
    const core::FvParams& params = tree.params();
    for (net::ClassLabelId label = 0; label < green_bytes_.size(); ++label) {
      if (green_bytes_[label] == 0 || label >= labels.size()) continue;
      const core::QosLabel& qos = labels.get(label);
      if (qos.path.empty()) continue;
      const core::SchedClass& leaf = tree.at(qos.path.back());
      const sim::Rate ceil = leaf.policy.ceil;
      // Upper bound on the bucket capacity over the whole run: capacity
      // follows θ ≤ ceil with the configured floor.
      const double cap_bound = std::max(
          ceil.bytes_in(params.burst_window), params.min_burst_bytes);
      const double allowed = ceil.bytes_in(now) + cap_bound + 2.0 * 1538.0;
      if (static_cast<double>(green_bytes_[label]) > allowed)
        fail(now, "leaf '" + leaf.name + "' forwarded " +
                      fmt_u64(green_bytes_[label]) +
                      " own-bucket bytes, above ceil budget " +
                      std::to_string(allowed) + " (ceil " + ceil.to_string() +
                      ")");
    }
  }

 private:
  std::vector<std::uint64_t> green_bytes_;  // indexed by ClassLabelId
};

// -------------------------------------------------------- cache coherence --

/// Flow-cache coherence: an EMC hit is only correct if it returns exactly
/// the label a fresh rule walk would assign at that instant. Replaying the
/// rule walk on every hit catches wrong-label deliveries from any cache
/// pathology — silent poison (fixed-up integrity tags), entries surviving a
/// label-epoch bump, cuckoo kick paths dropping or duplicating entries, and
/// degraded-mode readmission serving stale state. Each epoch it also audits
/// the table's structural books: the occupancy histogram must sum to the
/// bucket count and weigh out to exactly size() live entries ≤ capacity().
class CacheCoherenceChecker final : public InvariantChecker {
 public:
  explicit CacheCoherenceChecker(core::FlowValveEngine* engine)
      : engine_(engine) {}

  std::string_view name() const override { return "cache-coherence"; }

  void on_engine_result(const net::Packet& pkt,
                        const core::FlowValveEngine::Result& r,
                        sim::SimTime now) override {
    if (!r.cache_hit || engine_ == nullptr || !engine_->ready()) return;
    ++hits_checked_;
    const net::ClassLabelId walked =
        engine_->classifier().rule_walk_label(pkt.vf_port, pkt.tuple);
    if (pkt.label != walked)
      fail(now, "EMC hit on vf " + std::to_string(pkt.vf_port) +
                    " returned label " + std::to_string(pkt.label) +
                    " but a fresh rule walk gives " + std::to_string(walked));
  }

  void on_epoch(const SystemView&, sim::SimTime now) override {
    if (engine_ == nullptr) return;
    const core::ExactMatchFlowCache& cache = engine_->classifier().cache();
    const auto hist = cache.occupancy_histogram();
    std::uint64_t buckets = 0;
    std::uint64_t entries = 0;
    for (std::size_t occ = 0; occ < hist.size(); ++occ) {
      buckets += hist[occ];
      entries += hist[occ] * occ;
    }
    if (buckets != cache.bucket_count())
      fail(now, "occupancy histogram covers " + fmt_u64(buckets) +
                    " buckets != table's " + fmt_u64(cache.bucket_count()));
    if (entries != cache.size())
      fail(now, "occupancy histogram holds " + fmt_u64(entries) +
                    " entries != live size " + fmt_u64(cache.size()));
    if (cache.size() > cache.capacity())
      fail(now, "live entries " + fmt_u64(cache.size()) + " exceed capacity " +
                    fmt_u64(cache.capacity()));
  }

  void on_finish(const SystemView& v, sim::SimTime now) override {
    on_epoch(v, now);
  }

 private:
  core::FlowValveEngine* engine_;
  std::uint64_t hits_checked_ = 0;
};

}  // namespace

std::vector<std::unique_ptr<InvariantChecker>> standard_checkers(
    const np::NpConfig& config, core::FlowValveEngine* engine) {
  std::vector<std::unique_ptr<InvariantChecker>> out;
  out.push_back(std::make_unique<ConservationChecker>());
  out.push_back(std::make_unique<OrderingChecker>(config.enforce_reorder));
  out.push_back(std::make_unique<TimestampChecker>(config.fixed_pipeline_delay));
  out.push_back(std::make_unique<WireConformanceChecker>(config.wire_rate));
  out.push_back(std::make_unique<WorkerExclusivityChecker>());
  out.push_back(std::make_unique<TreeArithmeticChecker>());
  // Ceil conformance is the one FlowValve-specific checker: it restates
  // token-bucket conformance (Eq. 1) over the leaf's own bucket. Rank
  // backends bound a class by its live theta (<= ceil) instead of a
  // metered bucket, so the bucket-shaped budget does not describe their
  // mechanism; every other checker above is discipline-generic (see
  // DESIGN.md par.13).
  if (config.backend == core::BackendKind::kFlowValve)
    out.push_back(std::make_unique<CeilConformanceChecker>());
  // Cache coherence replays rule walks against the live classifier, so it
  // needs the engine; harnesses without one (pipeline-only runs) skip it.
  if (engine != nullptr)
    out.push_back(std::make_unique<CacheCoherenceChecker>(engine));
  return out;
}

}  // namespace flowvalve::check
