#include "check/recovery_slo.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace flowvalve::check {

RecoverySloChecker::RecoverySloChecker(const obs::RecoveryTracker* tracker,
                                       Options options)
    : tracker_(tracker), options_(options) {
  const sim::SimDuration span =
      std::max<sim::SimDuration>(0, options_.horizon - options_.quiet_at);
  window_ = options_.window > 0
                ? options_.window
                : std::max<sim::SimDuration>(sim::microseconds(500), span / 8);
  if (options_.reconvergence_bound <= 0)
    options_.reconvergence_bound = std::max<sim::SimDuration>(
        sim::milliseconds(10), span / 2);
}

void RecoverySloChecker::on_wire_tx(const net::Packet& pkt, sim::SimTime now) {
  if (options_.expected_fractions.empty()) return;
  if (now < options_.quiet_at || now > options_.horizon) return;
  const auto w = static_cast<std::size_t>((now - options_.quiet_at) / window_);
  if (w >= per_window_.size())
    per_window_.resize(w + 1,
                       std::vector<std::uint64_t>(
                           options_.expected_fractions.size(), 0));
  if (pkt.vf_port < per_window_[w].size())
    per_window_[w][pkt.vf_port] += pkt.wire_bytes;
}

void RecoverySloChecker::on_finish(const SystemView&, sim::SimTime now) {
  // --- Episode MTTR ------------------------------------------------------
  if (tracker_) {
    for (const obs::FaultRecord& r : tracker_->records()) {
      if (!r.cleared()) continue;  // permanent by design; not an SLO miss
      if (!r.recovered()) {
        fail(now, r.kind + " cleared at " + std::to_string(r.cleared_at) +
                      "ns but the pipeline never probed healthy again");
        continue;
      }
      // Measured from the campaign's quiet instant: an early-clearing
      // episode cannot probe healthy while a later one is still active.
      const sim::SimTime basis = std::max(r.cleared_at, options_.quiet_at);
      const sim::SimDuration mttr = r.recovered_at - basis;
      if (mttr > options_.recovery_bound)
        fail(now, r.kind + " recovery took " + std::to_string(mttr) +
                      "ns > SLO bound " +
                      std::to_string(options_.recovery_bound) + "ns");
    }
  }

  // --- Share reconvergence ------------------------------------------------
  if (options_.expected_fractions.empty()) return;
  // Only complete windows count; the tail window is truncated by horizon.
  const std::size_t complete = static_cast<std::size_t>(
      std::max<sim::SimTime>(0, options_.horizon - options_.quiet_at) /
      window_);
  const std::size_t n = std::min(per_window_.size(), complete);
  if (n == 0 || per_window_.empty()) {
    fail(now, "no complete post-quiet window — the run left no room to "
              "measure reconvergence in");
    return;
  }
  auto window_fair = [&](std::size_t w) {
    if (w >= per_window_.size()) return false;  // silent window
    std::uint64_t total = 0;
    for (std::uint64_t b : per_window_[w]) total += b;
    if (total == 0) return false;
    for (std::size_t vf = 0; vf < options_.expected_fractions.size(); ++vf) {
      const double want = options_.expected_fractions[vf];
      if (want <= 0.0) continue;
      const double frac =
          static_cast<double>(per_window_[w][vf]) / static_cast<double>(total);
      if (std::abs(frac - want) > options_.share_tolerance) return false;
    }
    return true;
  };
  // First window from which every later complete window stays fair: scan
  // backwards so the suffix property is one pass.
  std::size_t first_stable = n;  // n = never
  for (std::size_t w = n; w-- > 0;) {
    if (!window_fair(w)) break;
    first_stable = w;
  }
  if (first_stable == n) {
    fail(now, "shares never reconverged: the final post-quiet window is "
              "silent or unfair (window " +
                  std::to_string(window_) + "ns, tolerance " +
                  std::to_string(options_.share_tolerance) + ")");
    return;
  }
  reconvergence_ = static_cast<sim::SimDuration>(first_stable) * window_;
  if (reconvergence_ > options_.reconvergence_bound)
    fail(now, "share reconvergence took " + std::to_string(reconvergence_) +
                  "ns > SLO bound " +
                  std::to_string(options_.reconvergence_bound) + "ns");
}

}  // namespace flowvalve::check
