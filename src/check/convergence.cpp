#include "check/convergence.h"

#include <cmath>
#include <string>

namespace flowvalve::check {

ShareConvergenceChecker::ShareConvergenceChecker(
    std::vector<double> expected_fractions, sim::SimTime from, sim::SimTime to,
    double tolerance)
    : expected_(std::move(expected_fractions)),
      bytes_(expected_.size(), 0),
      from_(from),
      to_(to),
      tolerance_(tolerance) {}

void ShareConvergenceChecker::on_wire_tx(const net::Packet& pkt,
                                         sim::SimTime now) {
  if (now < from_ || now > to_) return;
  if (pkt.vf_port < bytes_.size()) bytes_[pkt.vf_port] += pkt.wire_bytes;
}

void ShareConvergenceChecker::on_finish(const SystemView&, sim::SimTime now) {
  std::uint64_t total = 0;
  for (std::uint64_t b : bytes_) total += b;
  if (total == 0) {
    fail(now, "no wire traffic inside the convergence window [" +
                  std::to_string(from_) + ", " + std::to_string(to_) +
                  "]ns — pipeline never recovered");
    return;
  }
  for (std::size_t vf = 0; vf < expected_.size(); ++vf) {
    if (expected_[vf] <= 0.0) continue;
    const double frac =
        static_cast<double>(bytes_[vf]) / static_cast<double>(total);
    const double delta = std::abs(frac - expected_[vf]);
    if (delta > tolerance_)
      fail(now, "vf " + std::to_string(vf) + " share " + std::to_string(frac) +
                    " vs fair " + std::to_string(expected_[vf]) +
                    " (|delta| " + std::to_string(delta) + " > tolerance " +
                    std::to_string(tolerance_) + ") over window [" +
                    std::to_string(from_) + ", " + std::to_string(to_) + "]ns");
  }
}

}  // namespace flowvalve::check
