// Differential oracle: replay a fuzz workload through the src/baseline HTB
// (artifacts disabled — the idealized discipline) behind a plain wire-rate
// drain, and compare long-run per-class throughput shares against the
// FlowValve pipeline. In the saturating weighted-fair regime produced by
// generate_differential_scenario() both systems must converge to the same
// closed-form shares, so any systematic divergence points at a scheduler
// arithmetic bug on one side.
#pragma once

#include <functional>
#include <vector>

#include "baseline/qdisc.h"
#include "check/fuzzer.h"
#include "net/device.h"
#include "sim/simulator.h"

namespace flowvalve::check {

/// Minimal EgressDevice gluing a queue-then-schedule Qdisc to a wire: submit
/// enqueues, a single serializer drains dequeued packets at `wire_rate`, and
/// throttle gaps are bridged with the qdisc's next_event() watchdog.
class QdiscWireDevice final : public net::EgressDevice {
 public:
  QdiscWireDevice(sim::Simulator& sim, baseline::Qdisc& qdisc,
                  sim::Rate wire_rate)
      : sim_(sim), qdisc_(qdisc), wire_rate_(wire_rate) {}

  bool submit(net::Packet pkt) override;

  /// Fired when a frame's last bit leaves the wire (before delivery).
  void set_tx_tap(std::function<void(const net::Packet&, sim::SimTime)> tap) {
    tx_tap_ = std::move(tap);
  }

 private:
  void pump();

  sim::Simulator& sim_;
  baseline::Qdisc& qdisc_;
  sim::Rate wire_rate_;
  bool busy_ = false;
  sim::EventHandle wake_;
  std::function<void(const net::Packet&, sim::SimTime)> tx_tap_;
};

struct DifferentialOutcome {
  std::vector<double> fv_shares;        // per leaf, fraction of total bytes
  std::vector<double> ref_shares;
  std::vector<double> expected_shares;  // w_i / Σw closed form
  double worst_delta = 0.0;             // max |fv - ref| over leaves
};

/// Warmup excluded from share measurements on both sides (token-bucket and
/// queue-fill transients).
inline sim::SimTime differential_warmup(const FuzzScenario& sc) {
  return sc.horizon / 5;
}

/// Run the reference HTB side of `sc` (same flows, same horizon) and compare
/// its post-warmup shares with the FlowValve side's per-leaf wire-byte
/// totals `fv_bytes` (indexed like sc.leaves).
DifferentialOutcome run_reference_and_compare(
    const FuzzScenario& sc, const std::vector<std::uint64_t>& fv_bytes);

}  // namespace flowvalve::check
