#include "check/reconfig_check.h"

#include <string>

namespace flowvalve::check {

void EpochConfinementChecker::on_dispatch(const net::Packet& pkt,
                                          unsigned /*worker*/,
                                          std::uint64_t seq, sim::SimTime now,
                                          sim::SimDuration /*busy*/) {
  if (seq < next_fresh_seq_) return;  // watchdog requeue keeps its old stamp
  next_fresh_seq_ = seq + 1;
  const std::uint32_t committed = mgr_->epoch();
  if (pkt.policy_epoch == committed) return;
  if (mgr_->state() == ctrl::ReconfigManager::State::kRollout &&
      pkt.policy_epoch == mgr_->target_epoch())
    return;
  std::string allowed = "{committed=" + std::to_string(committed);
  if (mgr_->state() == ctrl::ReconfigManager::State::kRollout)
    allowed += ", target=" + std::to_string(mgr_->target_epoch());
  allowed += "}";
  fail(now, "fresh dispatch seq=" + std::to_string(seq) + " stamped epoch " +
                std::to_string(pkt.policy_epoch) + " outside " + allowed +
                " — mixed-epoch scheduling escaped the rollout window");
}

void EpochConfinementChecker::on_finish(const SystemView&, sim::SimTime now) {
  if (mgr_->state() != ctrl::ReconfigManager::State::kIdle)
    fail(now, "reconfiguration still unresolved after drain (state != idle)");
  if (mgr_->busy())
    fail(now, "queued policy update never dispatched before drain");
}

void SwapConservationChecker::on_drop(const net::Packet&, np::DropReason reason,
                                      sim::SimTime now) {
  if (reason != np::DropReason::kAdmission) return;
  if (!pipeline_->admission_forced()) return;  // watermark automation, not ours
  if (pipeline_->restart_probation_active()) return;  // island-restart probation
  if (mgr_->state() == ctrl::ReconfigManager::State::kIdle)
    fail(now,
         "admission drop under control-plane forced shedding with no update "
         "in progress — shedding outlived the swap");
}

void SwapConservationChecker::on_finish(const SystemView&, sim::SimTime now) {
  if (pipeline_->admission_forced())
    fail(now, "control-plane forced admission shedding survived the drain");
}

}  // namespace flowvalve::check
