// Invariant-checking subsystem (see DESIGN.md §7).
//
// A CheckHarness taps a NicPipeline (as its PipelineObserver) and optionally
// a FlowValveEngine (via the process observer), fans every event out to a
// set of pluggable InvariantChecker instances, samples slow-changing state
// on a periodic epoch timer, and collects violations. The checkers encode
// the paper's correctness claims — packet conservation through the single
// shared FIFO, in-order wire delivery through the reorder system, token-
// bucket/ceiling conformance, scheduling-tree arithmetic, monotonic virtual
// time, and worker busy-interval exclusivity — so any randomized scenario
// the fuzzer generates can be validated without a hand-written expectation.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/flowvalve.h"
#include "np/nic_pipeline.h"
#include "sim/simulator.h"

namespace flowvalve::check {

struct Violation {
  std::string checker;
  sim::SimTime at = 0;
  std::string detail;

  std::string to_string() const;
};

/// Bounded violation collector shared by all checkers of one harness. The
/// cap is per checker name: a flood from one noisy checker (e.g. ordering,
/// which reports once per overtaken packet) must not evict the single
/// violation another checker raises at finish time.
class ViolationSink {
 public:
  explicit ViolationSink(std::size_t cap_per_checker = 64)
      : cap_per_checker_(cap_per_checker) {}

  void report(std::string_view checker, sim::SimTime at, std::string detail);

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t total() const { return total_; }
  bool clean() const { return total_ == 0; }

 private:
  std::size_t cap_per_checker_;
  std::uint64_t total_ = 0;
  std::vector<Violation> violations_;
  std::map<std::string, std::size_t, std::less<>> stored_per_checker_;
};

/// Read-only view of the system under check, handed to epoch/finish hooks.
struct SystemView {
  const np::NicPipeline* pipeline = nullptr;
  const core::FlowValveEngine* engine = nullptr;  // may be null (NullProcessor)
  std::uint64_t delivered_packets = 0;            // harness-counted deliveries
};

/// One pluggable invariant. Event hooks mirror PipelineObserver; on_epoch
/// runs on the harness's sampling timer; on_finish runs once after the
/// simulation has fully drained (quiescence assertions go there).
class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;

  virtual std::string_view name() const = 0;

  virtual void on_submit(const net::Packet&, sim::SimTime) {}
  virtual void on_dispatch(const net::Packet&, unsigned /*worker*/,
                           std::uint64_t /*ingress_seq*/, sim::SimTime,
                           sim::SimDuration /*busy*/) {}
  virtual void on_drop(const net::Packet&, np::DropReason, sim::SimTime) {}
  virtual void on_wire_tx(const net::Packet&, sim::SimTime) {}
  virtual void on_delivered(const net::Packet&, sim::SimTime) {}
  virtual void on_engine_result(const net::Packet&,
                                const core::FlowValveEngine::Result&,
                                sim::SimTime) {}
  virtual void on_watchdog(const net::Packet&, unsigned /*worker*/,
                           std::uint64_t /*ingress_seq*/, sim::SimTime) {}
  virtual void on_epoch(const SystemView&, sim::SimTime) {}
  virtual void on_finish(const SystemView&, sim::SimTime) {}

 protected:
  friend class CheckHarness;
  void fail(sim::SimTime at, std::string detail) {
    if (sink_) sink_->report(name(), at, std::move(detail));
  }

 private:
  ViolationSink* sink_ = nullptr;
};

/// Wires checkers into a pipeline + engine. Lifecycle:
///
///   CheckHarness harness(sim, pipeline, &engine);
///   harness.add_standard_checkers(...);
///   harness.start();          // installs observers + epoch timer
///   ... run the scenario, stop traffic, drain the simulator ...
///   harness.finish();         // quiescence checks
///   harness.sink().clean()    // verdict
class CheckHarness final : public np::PipelineObserver {
 public:
  struct Options {
    sim::SimDuration epoch = sim::milliseconds(1);
    std::size_t max_violations = 64;
  };

  CheckHarness(sim::Simulator& sim, np::NicPipeline& pipeline,
               core::FlowValveEngine* engine, Options options);
  CheckHarness(sim::Simulator& sim, np::NicPipeline& pipeline,
               core::FlowValveEngine* engine)
      : CheckHarness(sim, pipeline, engine, Options{}) {}
  ~CheckHarness() override;

  void add(std::unique_ptr<InvariantChecker> checker);

  /// Install the full standard library of checkers (invariants.h).
  void add_standard_checkers();

  void start();
  /// Stop the epoch timer so the simulator can drain to quiescence (the
  /// timer would otherwise re-arm forever and run_all() would never return).
  void stop_sampling();
  void finish();

  const ViolationSink& sink() const { return sink_; }
  std::uint64_t delivered_packets() const { return delivered_; }

  // PipelineObserver:
  void on_submit(const net::Packet& pkt, sim::SimTime now) override;
  void on_dispatch(const net::Packet& pkt, unsigned worker, std::uint64_t seq,
                   sim::SimTime now, sim::SimDuration busy) override;
  void on_drop(const net::Packet& pkt, np::DropReason reason, sim::SimTime now) override;
  void on_wire_tx(const net::Packet& pkt, sim::SimTime now) override;
  void on_delivered(const net::Packet& pkt, sim::SimTime now) override;
  void on_watchdog(const net::Packet& pkt, unsigned worker, std::uint64_t seq,
                   sim::SimTime now) override;

 private:
  SystemView view() const;
  /// Virtual-time monotonicity: every observed event, on any hook, must
  /// carry a timestamp >= the previous one (the simulator's core contract).
  void observe_clock(sim::SimTime now);

  sim::Simulator& sim_;
  np::NicPipeline& pipeline_;
  core::FlowValveEngine* engine_;
  Options options_;
  ViolationSink sink_;
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
  std::unique_ptr<sim::PeriodicTimer> epoch_timer_;
  sim::SimTime last_event_time_ = 0;
  std::uint64_t delivered_ = 0;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace flowvalve::check
