// Seed-driven scenario fuzzer: one uint64 seed deterministically expands —
// via independent sim::Rng streams — into a random policy tree (a valid fv
// script), a random NP configuration, and a random workload mix. The same
// seed always produces the same scenario on every platform, which is what
// makes "fuzz_check reports the failing seed" an actionable repro.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "np/np_config.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace flowvalve::check {

/// One leaf class of the generated policy, with everything the workload
/// generator needs to aim traffic at it.
struct FuzzLeaf {
  std::string classid;      // "1:21"-style handle in the script
  std::string name;
  std::uint16_t vf = 0;     // the filter maps this VF onto the leaf
  double weight = 1.0;
  sim::Rate static_share;   // weighted share at finalize time (traffic scale)
  sim::Rate ceil;           // configured ceiling (may be effectively infinite)
};

/// One traffic source of the generated workload.
struct FuzzFlow {
  enum class Kind : std::uint8_t { kCbr, kPoisson, kOnOff, kTcp, kChurn };
  Kind kind = Kind::kCbr;
  std::uint16_t vf = 0;
  std::uint32_t app_id = 0;
  sim::Rate rate;                 // target/mean/burst rate by kind
  std::uint32_t frame_bytes = 1518;
  sim::SimTime start = 0;
  sim::SimTime stop = 0;
  /// kChurn only: concurrently-live flow ceiling of the churn workload
  /// (it spreads over every VF itself; `vf` is ignored for this kind).
  std::size_t live_flows = 0;

  const char* kind_name() const;
};

struct FuzzScenario {
  std::uint64_t seed = 0;
  std::string fv_script;          // complete, valid policy script
  std::vector<FuzzLeaf> leaves;
  np::NpConfig nic;               // randomized worker/ring/rate config
  sim::Rate link_rate;            // root budget (≤ nic wire rate)
  std::vector<FuzzFlow> flows;
  sim::SimTime horizon = 0;

  /// Multi-line human-readable description (printed with -v / on failure).
  std::string describe() const;
};

/// Expand `seed` into a full scenario. Every draw comes from named Rng
/// splits, so extending one generator never perturbs the others.
FuzzScenario generate_scenario(std::uint64_t seed);

/// A restricted scenario family for the differential oracle: a flat
/// weighted-fair tree with mutual borrowing, every leaf saturated by
/// open-loop CBR — the regime where FlowValve and the reference HTB must
/// agree on long-run shares (and where those shares have a closed form).
FuzzScenario generate_differential_scenario(std::uint64_t seed);

/// Expand `seed` into an NP config that `NpConfig::validate()` must reject:
/// an otherwise-random valid config with one field forced out of range
/// (zero VFs/workers/ring capacities, dead clock, ...). Drives the
/// constructor rejection path the same way generate_scenario drives the
/// happy path.
np::NpConfig generate_invalid_config(std::uint64_t seed);

}  // namespace flowvalve::check
