// Scenario runner: expands a seed, assembles the full FlowValve NP stack
// (engine + pipeline + traffic) under a CheckHarness, runs to quiescence,
// and returns a verdict. This is the engine behind both the fuzz_check CLI
// and the tier-1 test_check_fuzz test.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/checker.h"
#include "check/fuzzer.h"
#include "fault/fault.h"
#include "np/nic_pipeline.h"

namespace flowvalve::check {

struct RunOptions {
  /// Use the differential scenario family and compare FlowValve's per-class
  /// shares against the reference HTB.
  bool differential = false;
  /// Max |fv_share - htb_share| tolerated by the differential oracle. Both
  /// systems approximate weighted fairness with different mechanisms (token
  /// borrowing vs DRR), so exact agreement is not expected.
  double share_tolerance = 0.1;
  /// Fault schedule armed via a FaultPlane against the running pipeline
  /// (empty ⇒ no plane). Permanent leak/bypass events are the old
  /// checker-validation faults; timed events exercise the recovery layer.
  fault::FaultSchedule faults;
  /// Also derive a seed-specific chaos schedule (generate_fault_schedule)
  /// and arm it alongside `faults`.
  bool chaos = false;
  /// Derive a seed-specific compound campaign (generate_campaign_schedule:
  /// overlapping episodes over disjoint islands — blackout, flapping, ctrl
  /// partition, plus global kinds) and arm it alongside `faults`. Campaign
  /// runs also arm the RecoverySloChecker: every cleared episode must probe
  /// healthy within `slo_recovery_bound`, and (differential runs) per-VF
  /// shares must reconverge to fair within a horizon-scaled bound.
  bool campaign = false;
  /// RecoverySloChecker per-episode MTTR bound (0 ⇒ probe deadline + 10 ms).
  sim::SimDuration slo_recovery_bound = 0;
  /// Arm a default-intensity kHashCollisionStorm (same-bucket cuckoo keys)
  /// over the middle half of the run, on top of `faults`/chaos.
  bool storm_collision = false;
  /// Arm a default-intensity kChurnStorm (synthetic flow arrival spike)
  /// over the middle half of the run, on top of `faults`/chaos.
  bool storm_churn = false;
  /// Settling time after the last timed fault clears before the share
  /// re-convergence window opens (differential runs with faults only).
  sim::SimDuration recovery_settle = sim::milliseconds(30);
  /// Max |vf share − fair share| tolerated inside the convergence window.
  double convergence_tolerance = 0.10;
  /// If > 0, overrides the generated scenario horizon.
  sim::SimDuration horizon_override = 0;
  /// Number of live policy updates submitted mid-run through a
  /// ctrl::ReconfigManager (0 ⇒ no control plane armed). Update instants,
  /// targeted classes, and one control-plane fault (torn-update /
  /// stale-epoch / update-storm / none) are all derived from the scenario
  /// seed, so a seed reproduces its full reconfiguration history. The
  /// epoch-confinement and swap-conservation checkers ride along.
  unsigned reconfig_updates = 0;
  /// If > 0, overrides the scenario's NpConfig::batch_size — the knob the
  /// batched-vs-unbatched differential oracle turns: the same seed run at
  /// batch_size 1 (legacy per-packet path) and 32 must agree on every
  /// invariant and on its delivery/drop accounting.
  unsigned batch_size = 0;
  /// If set, overrides the scenario's seed-derived scheduling discipline
  /// (NpConfig::backend) — the knob behind `fuzz_check --backend`: the same
  /// seed can be pinned to FlowValve, STFQ, Eiffel, or SP-PIFO and must
  /// pass every discipline-generic invariant under each.
  std::optional<core::BackendKind> backend;
  /// Event-queue backend for the run. The wheel is the production default;
  /// kHeap pins the reference implementation so fuzz findings can be
  /// reproduced (and the two backends differentially compared) under every
  /// invariant checker.
  sim::SchedulerKind scheduler = sim::SchedulerKind::kWheel;
};

struct CheckReport {
  std::uint64_t seed = 0;
  bool differential = false;
  core::BackendKind backend = core::BackendKind::kFlowValve;  // as run
  np::NicPipeline::Stats nic;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;

  std::uint64_t violation_total = 0;   // all violations (may exceed the cap)
  std::vector<Violation> violations;   // first N, capped

  // Differential-mode extras (empty otherwise).
  std::vector<double> fv_shares;
  std::vector<double> ref_shares;
  std::vector<double> expected_shares;
  double worst_share_delta = 0.0;

  // Fault-plane extras (zero when no schedule was armed).
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_recovered = 0;
  std::uint64_t packets_lost_to_faults = 0;
  sim::SimDuration worst_recovery = 0;  // longest clear→healthy interval
  /// Campaign extras: post-quiet share-reconvergence time measured by the
  /// RecoverySloChecker (-1 when the SLO share half was not armed).
  sim::SimDuration share_reconvergence = -1;

  // Reconfiguration extras (zero when reconfig_updates == 0).
  std::uint64_t reconfigs_applied = 0;
  std::uint64_t reconfigs_committed = 0;
  std::uint64_t reconfigs_rolled_back = 0;
  std::uint64_t mixed_epoch_packets = 0;

  bool ok() const { return violation_total == 0; }
  std::string summary() const;  // one line
};

/// Run one already-expanded scenario; the fault schedule (if any) comes
/// from opts.faults — opts.chaos is resolved by run_seed, not here.
CheckReport run_scenario(const FuzzScenario& sc, const RunOptions& opts = {});

/// Expand `seed` (standard or differential family per opts), apply option
/// overrides, and run it.
CheckReport run_seed(std::uint64_t seed, const RunOptions& opts = {});

/// Everything run_seed derives before handing off to run_scenario: the
/// expanded scenario (with every fault-driven config mutation and horizon
/// override already applied) and the options with the full resolved fault
/// schedule (chaos + campaign + storms + explicit events) in `.faults`.
/// run_scenario(sc, opts) on the result reproduces run_seed exactly.
struct ResolvedSeed {
  FuzzScenario sc;
  RunOptions opts;
};
ResolvedSeed resolve_seed(std::uint64_t seed, const RunOptions& opts = {});

/// Delta-debugging for `fuzz_check --minimize`: greedily re-run `resolved.sc`
/// with one fault event removed at a time, keeping every removal after which
/// the run still fails (any violation, or an escaped exception), until no
/// single removal preserves the failure. The scenario config stays fixed as
/// resolved for the ORIGINAL schedule — the point is a smaller trigger for
/// the same run, not a re-derivation. Returns the minimal failing subset
/// (empty if the failure does not depend on the schedule at all).
fault::FaultSchedule minimize_schedule(const ResolvedSeed& resolved);

/// One corpus entry as merged by run_corpus: either the seed's CheckReport
/// or — if the scenario escaped with an exception — a structured crash
/// record. A crash never kills the batch: the remaining seeds complete and
/// merge normally.
struct SeedOutcome {
  std::uint64_t seed = 0;
  bool crashed = false;
  std::string crash_what;  // exception text; empty unless crashed
  CheckReport report;      // default-constructed when crashed
  bool ok() const { return !crashed && report.ok(); }
};

/// Canonical byte-exact serialization of every CheckReport field (doubles
/// rendered as hexfloat, so no precision is lost). Two reports are
/// "bit-identical" iff their fingerprints compare equal — this is the
/// currency of the parallel-vs-sequential equivalence oracle.
std::string report_fingerprint(const CheckReport& r);

/// Run every seed under `opts` across `jobs` threads (0 = all host cores,
/// 1 = inline sequential — the oracle's reference). One Simulator +
/// pipeline + seed-derived Rng per task, nothing shared; outcomes are
/// returned in seed order regardless of completion order, so the merged
/// result is bit-identical at any job count.
std::vector<SeedOutcome> run_corpus(const std::vector<std::uint64_t>& seeds,
                                    const RunOptions& opts, unsigned jobs);

/// run_corpus with a custom per-seed body (tests use this to inject a
/// deliberately-throwing scenario among real ones).
std::vector<SeedOutcome> run_corpus_with(
    const std::vector<std::uint64_t>& seeds,
    const std::function<CheckReport(std::uint64_t)>& body, unsigned jobs);

}  // namespace flowvalve::check
