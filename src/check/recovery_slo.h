// Recovery-SLO oracle for compound-fault campaigns (DESIGN.md §16).
//
// ShareConvergenceChecker asserts shares are fair over ONE window opened
// after the last fault clears; under a compound campaign that is necessary
// but not sufficient — the SLO is that the system *reconverges within a
// bounded time* of the campaign going quiet, and that every episode the
// fault plane cleared actually probed healthy again. RecoverySloChecker
// closes both gaps:
//
//   * Episode MTTR: every FaultRecord the attached RecoveryTracker holds
//     that was cleared must have recovered, and its clear→healthy interval
//     (measured from the campaign's quiet instant, since an episode cannot
//     probe healthy while a later one is still active) must sit within
//     `recovery_bound`.
//   * Share reconvergence: post-quiet wire traffic is bucketed into fixed
//     windows; the reconvergence time is the start of the first window from
//     which EVERY subsequent complete window keeps all expected VF shares
//     within `share_tolerance`. Exceeding `reconvergence_bound` — or never
//     reconverging, or shipping nothing at all post-quiet — fails the run.
//
// The measured reconvergence time is exposed for CheckReport/fingerprint
// and for bench/recovery_sweep's committed MTTR percentiles.
#pragma once

#include <vector>

#include "check/checker.h"
#include "obs/recovery_tracker.h"

namespace flowvalve::check {

class RecoverySloChecker final : public InvariantChecker {
 public:
  struct Options {
    /// Instant the campaign goes quiet (last scheduled fault clearing);
    /// MTTR and reconvergence are measured from here.
    sim::SimTime quiet_at = 0;
    /// End of the measurable run (traffic stop); windows past it are
    /// incomplete and ignored.
    sim::SimTime horizon = 0;
    /// Bound on each episode's max(cleared, quiet)→healthy interval.
    sim::SimDuration recovery_bound = sim::milliseconds(60);
    /// Share-reconvergence window size (0 ⇒ (horizon − quiet_at) / 8,
    /// floored at 500 µs).
    sim::SimDuration window = 0;
    /// Bound on the reconvergence time (0 ⇒ half the post-quiet span).
    sim::SimDuration reconvergence_bound = 0;
    /// Fair per-VF wire-byte fractions (empty ⇒ the share half of the SLO
    /// is off — e.g. non-differential runs, where no fair expectation
    /// exists).
    std::vector<double> expected_fractions;
    double share_tolerance = 0.10;
  };

  /// `tracker` may be null (the MTTR half is skipped). Not owned; must
  /// outlive finish().
  RecoverySloChecker(const obs::RecoveryTracker* tracker, Options options);

  std::string_view name() const override { return "recovery-slo"; }

  void on_wire_tx(const net::Packet& pkt, sim::SimTime now) override;
  void on_finish(const SystemView& v, sim::SimTime now) override;

  /// Measured share-reconvergence time (quiet→first stable window), valid
  /// after on_finish; -1 when the share half was off or never reconverged.
  sim::SimDuration share_reconvergence() const { return reconvergence_; }

 private:
  const obs::RecoveryTracker* tracker_;
  Options options_;
  sim::SimDuration window_ = 0;
  sim::SimDuration reconvergence_ = -1;
  // per_window_[w][vf] = wire bytes of window w (w = (now − quiet)/window).
  std::vector<std::vector<std::uint64_t>> per_window_;
};

}  // namespace flowvalve::check
