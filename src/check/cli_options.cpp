#include "check/cli_options.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/scheduler_backend.h"

namespace flowvalve::check {

namespace {

std::uint64_t parse_u64(const char* s) {
  return std::strtoull(s, nullptr, 0);  // base 0: accepts 0x... and decimal
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);  // exact round-trip
  return buf;
}

}  // namespace

void cli_usage() {
  std::puts(
      "usage: fuzz_check [options]\n"
      "  --seeds N           number of seeds to run (default 50)\n"
      "  --start S           first seed (default 1; hex with 0x prefix)\n"
      "  --seed S            run exactly one seed\n"
      "  --jobs N            fan seeds across N threads (0 = all host\n"
      "                      cores; default 1 = sequential). Reports merge\n"
      "                      in seed order, so output is identical to\n"
      "                      --jobs 1\n"
      "  --verify-sequential after a parallel run, re-run every seed\n"
      "                      sequentially and fail unless each report is\n"
      "                      bit-identical (the --jobs equivalence oracle)\n"
      "  --differential      differential scenario family (FV vs HTB oracle)\n"
      "  --tolerance F       differential share tolerance (default 0.1)\n"
      "  --inject-fault K    deliberate pipeline bug: leak | bypass\n"
      "  --every N           fault period for --inject-fault (default 97)\n"
      "  --chaos             arm a seed-derived fault schedule per run and\n"
      "                      check the pipeline survives + re-converges\n"
      "  --campaign          arm a seed-derived compound-fault campaign\n"
      "                      (overlapping island blackout / flapping worker /\n"
      "                      ctrl partition episodes) and hold the run to the\n"
      "                      recovery SLO (bounded MTTR + reconvergence)\n"
      "  --slo-bound-ms M    campaign per-episode MTTR bound (default:\n"
      "                      probe deadline + 10 ms)\n"
      "  --storm K           arm a flow-table storm over the middle half of\n"
      "                      every run: collision | churn | both\n"
      "  --fault-event E     arm one explicit fault event (repeatable);\n"
      "                      format kind@at,dur,worker,count,magnitude,period\n"
      "                      as printed by minimized repro lines\n"
      "  --minimize          delta-debug each failing seed's fault schedule\n"
      "                      to a minimal failing subset and print it as\n"
      "                      --fault-event repro flags\n"
      "  --reconfig N        submit N seed-derived live policy updates per\n"
      "                      run (usually with one control-plane fault) and\n"
      "                      check epoch confinement + swap conservation\n"
      "  --expect-violations exit 0 iff at least one seed reports violations\n"
      "  --horizon-ms M      override scenario horizon\n"
      "  --batch N           force NpConfig::batch_size for every run\n"
      "                      (1 = legacy per-packet path; 0 = scenario's own\n"
      "                      seed-derived burst size, the default)\n"
      "  --backend K         force the scheduling discipline for every run:\n"
      "                      fv (default tree) | stfq | eiffel | sppifo\n"
      "                      (unset = scenario's own seed-derived backend)\n"
      "  --scheduler K       event queue backend: wheel (default) | heap\n"
      "  -v, --verbose       print the full scenario for every seed\n");
}

CliParseResult parse_cli(int argc, char** argv, CliOptions& out) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    bool missing = false;
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_check: %s needs a value\n", arg);
        missing = true;
        return "";
      }
      return argv[++i];
    };
    if (!std::strcmp(arg, "--seeds")) {
      out.num_seeds = parse_u64(value());
    } else if (!std::strcmp(arg, "--start")) {
      out.start_seed = parse_u64(value());
    } else if (!std::strcmp(arg, "--seed")) {
      out.start_seed = parse_u64(value());
      out.num_seeds = 1;
      out.single_seed = true;
    } else if (!std::strcmp(arg, "--jobs")) {
      out.jobs = static_cast<unsigned>(parse_u64(value()));
    } else if (!std::strcmp(arg, "--verify-sequential")) {
      out.verify_sequential = true;
    } else if (!std::strcmp(arg, "--differential")) {
      out.opts.differential = true;
    } else if (!std::strcmp(arg, "--tolerance")) {
      out.opts.share_tolerance = std::atof(value());
    } else if (!std::strcmp(arg, "--inject-fault")) {
      out.inject_fault = value();
    } else if (!std::strcmp(arg, "--every")) {
      out.fault_every = parse_u64(value());
    } else if (!std::strcmp(arg, "--chaos")) {
      out.opts.chaos = true;
    } else if (!std::strcmp(arg, "--campaign")) {
      out.opts.campaign = true;
    } else if (!std::strcmp(arg, "--slo-bound-ms")) {
      out.opts.slo_recovery_bound =
          sim::milliseconds(static_cast<std::int64_t>(parse_u64(value())));
    } else if (!std::strcmp(arg, "--storm")) {
      const char* k = value();
      if (missing) return CliParseResult::kError;
      if (!std::strcmp(k, "collision")) {
        out.opts.storm_collision = true;
      } else if (!std::strcmp(k, "churn")) {
        out.opts.storm_churn = true;
      } else if (!std::strcmp(k, "both")) {
        out.opts.storm_collision = out.opts.storm_churn = true;
      } else {
        std::fprintf(stderr,
                     "fuzz_check: unknown storm '%s' (collision|churn|both)\n",
                     k);
        return CliParseResult::kError;
      }
    } else if (!std::strcmp(arg, "--fault-event")) {
      const char* e = value();
      if (missing) return CliParseResult::kError;
      fault::FaultEvent ev;
      if (!fault::parse_fault_event(e, ev)) {
        std::fprintf(stderr,
                     "fuzz_check: bad --fault-event '%s' (want "
                     "kind@at,dur,worker,count,magnitude,period)\n",
                     e);
        return CliParseResult::kError;
      }
      out.opts.faults.push_back(ev);
    } else if (!std::strcmp(arg, "--minimize")) {
      out.minimize = true;
    } else if (!std::strcmp(arg, "--reconfig")) {
      out.opts.reconfig_updates = static_cast<unsigned>(parse_u64(value()));
    } else if (!std::strcmp(arg, "--expect-violations")) {
      out.expect_violations = true;
    } else if (!std::strcmp(arg, "--horizon-ms")) {
      out.opts.horizon_override =
          sim::milliseconds(static_cast<std::int64_t>(parse_u64(value())));
    } else if (!std::strcmp(arg, "--batch")) {
      out.opts.batch_size = static_cast<unsigned>(parse_u64(value()));
    } else if (!std::strcmp(arg, "--backend")) {
      const char* k = value();
      if (missing) return CliParseResult::kError;
      core::BackendKind kind = core::BackendKind::kFlowValve;
      if (!core::parse_backend_kind(k, kind)) {
        std::fprintf(
            stderr, "fuzz_check: unknown backend '%s' (fv|stfq|eiffel|sppifo)\n",
            k);
        return CliParseResult::kError;
      }
      out.opts.backend = kind;
    } else if (!std::strcmp(arg, "--scheduler")) {
      const char* k = value();
      if (missing) return CliParseResult::kError;
      if (!std::strcmp(k, "heap")) {
        out.opts.scheduler = sim::SchedulerKind::kHeap;
      } else if (!std::strcmp(k, "wheel")) {
        out.opts.scheduler = sim::SchedulerKind::kWheel;
      } else {
        std::fprintf(stderr, "fuzz_check: unknown scheduler '%s' (heap|wheel)\n",
                     k);
        return CliParseResult::kError;
      }
    } else if (!std::strcmp(arg, "-v") || !std::strcmp(arg, "--verbose")) {
      out.verbose = true;
    } else if (!std::strcmp(arg, "-h") || !std::strcmp(arg, "--help")) {
      cli_usage();
      return CliParseResult::kHelp;
    } else {
      std::fprintf(stderr, "fuzz_check: unknown option %s\n", arg);
      cli_usage();
      return CliParseResult::kError;
    }
    if (missing) return CliParseResult::kError;
  }

  if (!out.inject_fault.empty()) {
    fault::FaultEvent ev;  // permanent from t=0: the legacy injected bugs
    ev.at = 0;
    ev.duration = 0;
    ev.period = static_cast<sim::SimDuration>(out.fault_every);
    if (out.inject_fault == "leak") {
      ev.kind = fault::FaultKind::kLeakCommit;
    } else if (out.inject_fault == "bypass") {
      ev.kind = fault::FaultKind::kBypassReorder;
    } else {
      std::fprintf(stderr, "fuzz_check: unknown fault '%s' (leak|bypass)\n",
                   out.inject_fault.c_str());
      return CliParseResult::kError;
    }
    out.opts.faults.push_back(ev);
  }
  return CliParseResult::kOk;
}

namespace {

/// The flags shared by both repro flavors: everything in RunOptions that is
/// off its default, EXCEPT the fault-schedule sources (handled per flavor).
std::string common_flags(const CliOptions& cli) {
  const RunOptions def;
  const RunOptions& o = cli.opts;
  std::string s;
  if (o.differential) s += " --differential";
  if (o.share_tolerance != def.share_tolerance)
    s += " --tolerance " + format_double(o.share_tolerance);
  if (o.slo_recovery_bound != def.slo_recovery_bound)
    s += " --slo-bound-ms " +
         std::to_string(o.slo_recovery_bound / sim::milliseconds(1));
  if (o.reconfig_updates > 0)
    s += " --reconfig " + std::to_string(o.reconfig_updates);
  if (o.horizon_override > 0)
    s += " --horizon-ms " +
         std::to_string(o.horizon_override / sim::milliseconds(1));
  if (o.batch_size > 0) s += " --batch " + std::to_string(o.batch_size);
  if (o.backend)
    s += std::string(" --backend ") + core::backend_kind_name(*o.backend);
  if (o.scheduler != def.scheduler) s += " --scheduler heap";
  if (cli.jobs != 1) s += " --jobs " + std::to_string(cli.jobs);
  return s;
}

std::string seed_prefix(std::uint64_t seed) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "fuzz_check --seed 0x%llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

}  // namespace

std::string repro_command(const CliOptions& cli, std::uint64_t seed) {
  std::string s = seed_prefix(seed);
  if (cli.opts.chaos) s += " --chaos";
  if (cli.opts.campaign) s += " --campaign";
  if (cli.opts.storm_collision || cli.opts.storm_churn)
    s += std::string(" --storm ") +
         (cli.opts.storm_collision && cli.opts.storm_churn ? "both"
          : cli.opts.storm_collision                       ? "collision"
                                                           : "churn");
  if (!cli.inject_fault.empty()) {
    s += " --inject-fault " + cli.inject_fault;
    if (cli.fault_every != CliOptions{}.fault_every)
      s += " --every " + std::to_string(cli.fault_every);
  }
  // Explicit --fault-event tokens passed on the original command line (the
  // --inject-fault event is re-derived above, not re-emitted here).
  const std::size_t injected = cli.inject_fault.empty() ? 0 : 1;
  for (std::size_t i = 0; i + injected < cli.opts.faults.size(); ++i)
    s += " --fault-event " + fault::format_fault_event(cli.opts.faults[i]);
  s += common_flags(cli);
  s += " -v";
  return s;
}

std::string repro_command_with_faults(const CliOptions& cli,
                                      std::uint64_t seed,
                                      const fault::FaultSchedule& faults) {
  std::string s = seed_prefix(seed);
  for (const fault::FaultEvent& ev : faults)
    s += " --fault-event " + fault::format_fault_event(ev);
  s += common_flags(cli);
  s += " -v";
  return s;
}

}  // namespace flowvalve::check
