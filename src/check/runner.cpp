#include "check/runner.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "exp/parallel_runner.h"

#include "check/convergence.h"
#include "check/differential.h"
#include "check/reconfig_check.h"
#include "check/recovery_slo.h"
#include "core/flowvalve.h"
#include "ctrl/reconfig_manager.h"
#include "fault/fault_plane.h"
#include "np/flowvalve_processor.h"
#include "obs/reconfig_tracker.h"
#include "obs/recovery_tracker.h"
#include "traffic/churn.h"
#include "traffic/generators.h"
#include "traffic/tcp.h"

namespace flowvalve::check {

namespace {

/// Non-failing "checker" that rides the harness to collect per-VF wire
/// bytes after the warmup cutoff (the differential oracle's FV-side input).
class ShareCollector final : public InvariantChecker {
 public:
  ShareCollector(std::size_t vfs, sim::SimTime warmup)
      : bytes_(vfs, 0), warmup_(warmup) {}

  std::string_view name() const override { return "share-collector"; }

  void on_wire_tx(const net::Packet& pkt, sim::SimTime now) override {
    if (now >= warmup_ && pkt.vf_port < bytes_.size())
      bytes_[pkt.vf_port] += pkt.wire_bytes;
  }

  const std::vector<std::uint64_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint64_t> bytes_;
  sim::SimTime warmup_;
};

/// Uniform handle over the concrete generator types.
struct Source {
  std::unique_ptr<traffic::CbrFlow> cbr;
  std::unique_ptr<traffic::PoissonFlow> poisson;
  std::unique_ptr<traffic::OnOffFlow> onoff;
  std::unique_ptr<traffic::TcpAimdFlow> tcp;
  std::unique_ptr<traffic::ChurnWorkload> churn;

  void start() {
    if (cbr) cbr->start();
    if (poisson) poisson->start();
    if (onoff) onoff->start();
    if (tcp) tcp->start();
    if (churn) churn->start();
  }
  void stop() {
    if (cbr) cbr->stop();
    if (poisson) poisson->stop();
    if (onoff) onoff->stop();
    if (tcp) tcp->stop();
    if (churn) churn->stop();
  }
};

Source make_source(sim::Simulator& sim, traffic::FlowRouter& router,
                   traffic::IdAllocator& ids, const FuzzFlow& f,
                   unsigned vf_count, sim::Rng rng) {
  traffic::FlowSpec spec;
  spec.flow_id = ids.next_flow_id();
  spec.app_id = f.app_id;
  spec.vf_port = f.vf;
  spec.wire_bytes = f.frame_bytes;

  Source src;
  switch (f.kind) {
    case FuzzFlow::Kind::kCbr:
      src.cbr = std::make_unique<traffic::CbrFlow>(sim, router, ids, spec,
                                                   f.rate, rng, 0.05);
      break;
    case FuzzFlow::Kind::kPoisson:
      src.poisson = std::make_unique<traffic::PoissonFlow>(sim, router, ids,
                                                           spec, f.rate, rng);
      break;
    case FuzzFlow::Kind::kOnOff:
      src.onoff = std::make_unique<traffic::OnOffFlow>(
          sim, router, ids, spec, f.rate * 2.0, sim::milliseconds(1),
          sim::milliseconds(1), rng);
      break;
    case FuzzFlow::Kind::kTcp: {
      traffic::TcpAimdConfig cfg;
      cfg.start_rate = f.rate * 0.25;
      cfg.min_rate = f.rate * 0.05;
      cfg.max_rate = f.rate;
      cfg.rtt = sim::milliseconds(2);
      cfg.additive_increase = f.rate * 0.1;
      src.tcp = std::make_unique<traffic::TcpAimdFlow>(sim, router, ids, spec,
                                                       cfg, rng);
      break;
    }
    case FuzzFlow::Kind::kChurn: {
      traffic::ChurnWorkloadConfig cfg;
      cfg.target_live_flows = f.live_flows > 0 ? f.live_flows : 1024;
      cfg.aggregate_rate = f.rate;
      cfg.wire_bytes = f.frame_bytes;
      cfg.app_id = f.app_id;
      cfg.vf_count = std::max(1u, vf_count);
      src.churn = std::make_unique<traffic::ChurnWorkload>(sim, router, ids,
                                                           cfg, rng);
      break;
    }
  }
  return src;
}

/// Last instant at which a timed fault clears (0 if the schedule is empty
/// or all events are permanent).
sim::SimTime last_fault_clear(const fault::FaultSchedule& schedule) {
  sim::SimTime last = 0;
  for (const fault::FaultEvent& ev : schedule)
    if (ev.duration > 0) last = std::max(last, ev.at + ev.duration);
  return last;
}

bool has_permanent_fault(const fault::FaultSchedule& schedule) {
  for (const fault::FaultEvent& ev : schedule)
    if (ev.duration <= 0) return true;
  return false;
}

/// Fair per-VF wire-byte fractions from the differential scenario's static
/// shares (empty when the leaves carry no share plan).
std::vector<double> expected_vf_fractions(const FuzzScenario& sc) {
  double total_bps = 0.0;
  for (const FuzzLeaf& l : sc.leaves) total_bps += l.static_share.bps();
  std::vector<double> expected;
  if (total_bps <= 0.0) return expected;
  for (const FuzzLeaf& l : sc.leaves) {
    if (l.vf >= expected.size()) expected.resize(l.vf + 1, 0.0);
    expected[l.vf] += l.static_share.bps() / total_bps;
  }
  return expected;
}

/// Build and submit one seed-derived live policy update against the current
/// tree: a leaf's weight is rescaled, which always passes shadow validation
/// (positive, finite, guarantees untouched) and genuinely moves shares.
void submit_fuzz_update(ctrl::ReconfigManager& mgr,
                        const core::FlowValveEngine& engine, sim::Rng rng) {
  const core::SchedulingTree& tree = engine.tree();
  std::vector<core::ClassId> leaves;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const core::ClassId id = static_cast<core::ClassId>(i);
    if (tree.at(id).is_leaf()) leaves.push_back(id);
  }
  if (leaves.empty()) return;
  const core::SchedClass& c =
      tree.at(leaves[rng.next_u64() % leaves.size()]);
  static constexpr double kFactors[] = {0.5, 2.0, 1.25};
  ctrl::PolicyDelta d;
  d.class_name = c.name;
  d.weight = c.policy.weight * kFactors[rng.next_u64() % 3];
  ctrl::PolicyUpdate u;
  u.deltas.push_back(std::move(d));
  mgr.apply(u);  // acceptance/coalescing/rejection lands in the tracker
}

/// Seed-derived schedule of update submission instants inside the middle of
/// the run, plus (3 times in 4) one control-plane fault chosen from
/// torn-update / stale-epoch / update-storm that overlaps them.
std::vector<sim::SimTime> plan_reconfig(const FuzzScenario& sc,
                                        unsigned updates,
                                        fault::FaultSchedule& out_faults) {
  sim::Rng rng = sim::Rng(sc.seed).split("reconfig");
  std::vector<sim::SimTime> times;
  times.reserve(updates);
  for (unsigned i = 0; i < updates; ++i)
    times.push_back(static_cast<sim::SimTime>(
        rng.uniform(0.25 * static_cast<double>(sc.horizon),
                    0.75 * static_cast<double>(sc.horizon))));
  std::sort(times.begin(), times.end());

  const std::uint64_t pick = rng.next_u64() % 4;
  if (pick < 3 && !times.empty()) {
    fault::FaultEvent ev;
    ev.kind = pick == 0   ? fault::FaultKind::kTornUpdate
              : pick == 1 ? fault::FaultKind::kStaleEpoch
                          : fault::FaultKind::kUpdateStorm;
    ev.at = std::max<sim::SimTime>(1, times.front() - sim::microseconds(50));
    // Cover every submission, then clear so the run ends with a healthy
    // control plane (the epoch-confinement checker asserts idle at drain).
    ev.duration = (times.back() - ev.at) + sim::milliseconds(8);
    if (ev.kind == fault::FaultKind::kStaleEpoch)
      ev.worker = static_cast<unsigned>(rng.next_u64() %
                                        std::max(1u, sc.nic.num_workers));
    if (ev.kind == fault::FaultKind::kUpdateStorm)
      ev.period = static_cast<sim::SimDuration>(4 + rng.next_u64() % 5);
    out_faults.push_back(ev);
  }
  return times;
}

}  // namespace

CheckReport run_scenario(const FuzzScenario& sc, const RunOptions& opts) {
  if ((opts.batch_size > 0 && opts.batch_size != sc.nic.batch_size) ||
      (opts.backend && *opts.backend != sc.nic.backend)) {
    FuzzScenario forced = sc;
    if (opts.batch_size > 0) forced.nic.batch_size = opts.batch_size;
    if (opts.backend) forced.nic.backend = *opts.backend;
    RunOptions inner = opts;
    inner.batch_size = 0;
    inner.backend.reset();
    return run_scenario(forced, inner);
  }

  CheckReport report;
  report.seed = sc.seed;
  report.differential = opts.differential;
  report.backend = sc.nic.backend;

  sim::Simulator sim(opts.scheduler);
  core::FlowValveEngine engine(np::engine_options_for(sc.nic));
  if (std::string err = engine.configure(sc.fv_script); !err.empty()) {
    // The fuzzer must only emit valid policies — a config error IS a bug.
    report.violation_total = 1;
    report.violations.push_back({"configure", 0, std::move(err)});
    return report;
  }

  np::FlowValveProcessor processor(engine);
  np::NicPipeline pipeline(sim, sc.nic, processor);
  traffic::FlowRouter router(pipeline);
  traffic::IdAllocator ids;

  CheckHarness harness(sim, pipeline, &engine);
  harness.add_standard_checkers();
  ShareCollector* collector = nullptr;
  if (opts.differential) {
    auto c = std::make_unique<ShareCollector>(sc.leaves.size(),
                                              differential_warmup(sc));
    collector = c.get();
    harness.add(std::move(c));
  }

  // Live reconfiguration: manager + its invariant checkers + a seed-derived
  // submission plan (and usually one control-plane fault riding the plane).
  obs::ReconfigTracker reconfig_tracker;
  std::unique_ptr<ctrl::ReconfigManager> reconfig;
  fault::FaultSchedule armed = opts.faults;
  std::vector<sim::SimTime> update_times;
  if (opts.reconfig_updates > 0) {
    reconfig = std::make_unique<ctrl::ReconfigManager>(sim, pipeline, engine,
                                                       &reconfig_tracker);
    harness.add(std::make_unique<EpochConfinementChecker>(reconfig.get()));
    harness.add(
        std::make_unique<SwapConservationChecker>(reconfig.get(), &pipeline));
    update_times = plan_reconfig(sc, opts.reconfig_updates, armed);
  }

  obs::RecoveryTracker tracker;
  std::unique_ptr<fault::FaultPlane> plane;
  RecoverySloChecker* slo = nullptr;
  if (!armed.empty()) {
    plane = std::make_unique<fault::FaultPlane>(sim, pipeline, &engine,
                                                &tracker);
    plane->set_reconfig(reconfig.get());
    plane->arm(armed);

    // A fair static share plan exists only for the differential family,
    // only when every armed fault actually clears before the horizon, and
    // only without live updates (a committed update legitimately moves the
    // shares off the static plan).
    const bool fair_plan_valid = opts.differential &&
                                 !has_permanent_fault(armed) &&
                                 opts.reconfig_updates == 0;

    // Re-convergence bar: after the last timed fault clears and the pipeline
    // has had `recovery_settle` to heal, per-VF wire shares must match the
    // weighted-fair allocation.
    const sim::SimTime from = last_fault_clear(armed) + opts.recovery_settle;
    if (fair_plan_valid && from < sc.horizon) {
      std::vector<double> expected = expected_vf_fractions(sc);
      if (!expected.empty())
        harness.add(std::make_unique<ShareConvergenceChecker>(
            std::move(expected), from, sc.horizon,
            opts.convergence_tolerance));
    }

    // Recovery-SLO oracle: campaign runs must bound every episode's MTTR,
    // and (when a fair plan exists) the post-quiet share-reconvergence time.
    if (opts.campaign) {
      RecoverySloChecker::Options so;
      so.quiet_at = last_fault_clear(armed);
      so.horizon = sc.horizon;
      so.recovery_bound = opts.slo_recovery_bound > 0
                              ? opts.slo_recovery_bound
                              : fault::FaultPlane::Options{}.probe_deadline +
                                    sim::milliseconds(10);
      so.share_tolerance = opts.convergence_tolerance;
      if (fair_plan_valid && so.quiet_at < sc.horizon)
        so.expected_fractions = expected_vf_fractions(sc);
      auto c = std::make_unique<RecoverySloChecker>(&tracker, so);
      slo = c.get();
      harness.add(std::move(c));
    }
  }

  const sim::Rng rng(sc.seed);
  std::vector<Source> sources;
  sources.reserve(sc.flows.size());
  for (const FuzzFlow& f : sc.flows)
    sources.push_back(make_source(sim, router, ids, f, sc.nic.num_vfs,
                                  rng.split("src").split(f.app_id)));
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    Source* src = &sources[i];
    sim.schedule_at(sc.flows[i].start, [src] { src->start(); });
    sim.schedule_at(sc.flows[i].stop, [src] { src->stop(); });
  }
  for (std::size_t i = 0; i < update_times.size(); ++i) {
    ctrl::ReconfigManager* mgr = reconfig.get();
    const core::FlowValveEngine* eng = &engine;
    const sim::Rng ur = sim::Rng(sc.seed).split("reconfig-update").split(i);
    sim.schedule_at(update_times[i],
                    [mgr, eng, ur] { submit_fuzz_update(*mgr, *eng, ur); });
  }

  harness.start();
  sim.run_until(sc.horizon);
  for (Source& src : sources) src.stop();
  harness.stop_sampling();
  sim.run_all();  // drain every in-flight packet to quiescence
  if (plane) plane->finalize();
  harness.finish();

  report.nic = pipeline.stats();
  report.faults_injected = tracker.injected();
  report.faults_recovered = tracker.recovered();
  report.packets_lost_to_faults = tracker.total_packets_lost();
  report.worst_recovery = tracker.worst_recovery_time();
  if (slo) report.share_reconvergence = slo->share_reconvergence();
  if (reconfig) {
    const ctrl::ReconfigManager::Stats& rs = reconfig->stats();
    report.reconfigs_applied = rs.applied;
    report.reconfigs_committed = rs.committed;
    report.reconfigs_rolled_back = rs.rolled_back;
    report.mixed_epoch_packets = rs.mixed_epoch_packets;
  }
  report.events = sim.events_executed();
  report.delivered = harness.delivered_packets();
  report.violation_total = harness.sink().total();
  report.violations = harness.sink().violations();

  if (opts.differential && collector) {
    const DifferentialOutcome diff =
        run_reference_and_compare(sc, collector->bytes());
    report.fv_shares = diff.fv_shares;
    report.ref_shares = diff.ref_shares;
    report.expected_shares = diff.expected_shares;
    report.worst_share_delta = diff.worst_delta;
    // Committed live updates legitimately move shares away from the static
    // reference plan, so the oracle only fails runs without a control plane.
    if (diff.worst_delta > opts.share_tolerance && opts.reconfig_updates == 0) {
      std::ostringstream s;
      s << "per-class shares diverge from reference HTB by "
        << diff.worst_delta << " (tolerance " << opts.share_tolerance << "):";
      for (std::size_t i = 0; i < diff.fv_shares.size(); ++i)
        s << " [" << sc.leaves[i].name << " fv=" << diff.fv_shares[i]
          << " htb=" << diff.ref_shares[i] << " exp=" << diff.expected_shares[i]
          << "]";
      ++report.violation_total;
      report.violations.push_back({"differential", sc.horizon, s.str()});
    }
  }
  return report;
}

ResolvedSeed resolve_seed(std::uint64_t seed, const RunOptions& opts) {
  FuzzScenario sc = opts.differential ? generate_differential_scenario(seed)
                                      : generate_scenario(seed);
  RunOptions effective = opts;
  if (opts.chaos) {
    fault::FaultSchedule extra =
        fault::generate_fault_schedule(seed, sc.horizon, sc.nic);
    effective.faults.insert(effective.faults.end(), extra.begin(), extra.end());
  }
  if (opts.campaign) {
    fault::FaultSchedule extra =
        fault::generate_campaign_schedule(seed, sc.horizon, sc.nic);
    effective.faults.insert(effective.faults.end(), extra.begin(), extra.end());
  }
  // Explicit storm opt-ins (`fuzz_check --storm ...`): one default-intensity
  // event over the middle half of the run, cleared well before the horizon
  // so degraded-mode hysteresis has room to heal.
  const auto arm_storm = [&](fault::FaultKind kind) {
    fault::FaultSchedule one =
        fault::single_fault(kind, sc.horizon / 4, sc.horizon / 2, sc.nic);
    effective.faults.insert(effective.faults.end(), one.begin(), one.end());
  };
  if (opts.storm_collision) arm_storm(fault::FaultKind::kHashCollisionStorm);
  if (opts.storm_churn) arm_storm(fault::FaultKind::kChurnStorm);
  if (!effective.faults.empty()) {
    // Fault runs exercise the full recovery layer, including graceful
    // degradation; the admission knob defaults off to keep fault-free
    // baselines byte-exact.
    sc.nic.recovery.admission_enabled = true;
    // The bypass fault only exists on the reorder path; injecting it into a
    // scenario that rolled reorder off would be a silent no-op.
    for (const fault::FaultEvent& ev : effective.faults)
      if (ev.kind == fault::FaultKind::kBypassReorder)
        sc.nic.enforce_reorder = true;
  }
  if (opts.horizon_override > 0) {
    sc.horizon = opts.horizon_override;
    for (FuzzFlow& f : sc.flows) {
      f.start = std::min(f.start, sc.horizon / 4);
      f.stop = std::min(f.stop, sc.horizon);
      if (f.stop <= f.start) f.stop = sc.horizon;
    }
  }
  return {std::move(sc), std::move(effective)};
}

CheckReport run_seed(std::uint64_t seed, const RunOptions& opts) {
  ResolvedSeed r = resolve_seed(seed, opts);
  return run_scenario(r.sc, r.opts);
}

fault::FaultSchedule minimize_schedule(const ResolvedSeed& resolved) {
  const auto still_fails = [&](const fault::FaultSchedule& faults) {
    RunOptions o = resolved.opts;
    o.faults = faults;
    try {
      return !run_scenario(resolved.sc, o).ok();
    } catch (...) {
      return true;  // a crash is the strongest kind of "still fails"
    }
  };
  fault::FaultSchedule current = resolved.opts.faults;
  bool shrunk = true;
  while (shrunk && !current.empty()) {
    shrunk = false;
    // One removal can unlock another (compound failures), so sweep to a
    // fixpoint rather than stopping after the first clean pass.
    for (std::size_t i = 0; i < current.size();) {
      fault::FaultSchedule candidate = current;
      candidate.erase(candidate.begin() +
                      static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        current = std::move(candidate);
        shrunk = true;
      } else {
        ++i;
      }
    }
  }
  return current;
}

namespace {

/// Hexfloat rendering: every bit of the double lands in the string, so the
/// fingerprint distinguishes values an ostream's default precision would
/// conflate.
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  out += buf;
  out += '|';
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
  out += '|';
}

}  // namespace

std::string report_fingerprint(const CheckReport& r) {
  std::string fp;
  fp.reserve(512);
  append_u64(fp, r.seed);
  append_u64(fp, r.differential ? 1 : 0);
  fp += core::backend_kind_name(r.backend);
  fp += '|';
  const np::NicPipeline::Stats& n = r.nic;
  for (std::uint64_t v :
       {n.submitted, n.vf_ring_drops, n.scheduler_drops, n.tx_ring_drops,
        n.reorder_flush_drops, n.forwarded_to_wire, n.wire_bytes,
        n.worker_busy_ns, n.processed, n.processing_cycles, n.reorder_flushes,
        n.reorder_occupancy_peak, n.watchdog_requeues, n.watchdog_drops,
        n.reorder_timeout_flushes, n.reorder_timeout_drops, n.admission_drops,
        n.workers_repaired, n.island_restart_drops, n.islands_restarted})
    append_u64(fp, v);
  append_u64(fp, r.events);
  append_u64(fp, r.delivered);
  append_u64(fp, r.violation_total);
  for (const Violation& v : r.violations) {
    fp += v.checker;
    fp += '@';
    append_u64(fp, static_cast<std::uint64_t>(v.at));
    fp += v.detail;
    fp += '|';
  }
  for (const std::vector<double>* shares :
       {&r.fv_shares, &r.ref_shares, &r.expected_shares}) {
    append_u64(fp, shares->size());
    for (double s : *shares) append_double(fp, s);
  }
  append_double(fp, r.worst_share_delta);
  append_u64(fp, r.faults_injected);
  append_u64(fp, r.faults_recovered);
  append_u64(fp, r.packets_lost_to_faults);
  append_u64(fp, static_cast<std::uint64_t>(r.worst_recovery));
  append_u64(fp, r.reconfigs_applied);
  append_u64(fp, r.reconfigs_committed);
  append_u64(fp, r.reconfigs_rolled_back);
  append_u64(fp, r.mixed_epoch_packets);
  append_u64(fp, static_cast<std::uint64_t>(r.share_reconvergence));
  return fp;
}

std::vector<SeedOutcome> run_corpus_with(
    const std::vector<std::uint64_t>& seeds,
    const std::function<CheckReport(std::uint64_t)>& body, unsigned jobs) {
  exp::ParallelRunner runner(jobs);
  auto outcomes = runner.map<CheckReport>(
      seeds.size(), [&](std::size_t i) { return body(seeds[i]); });
  std::vector<SeedOutcome> merged(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    merged[i].seed = seeds[i];
    if (outcomes[i].ok()) {
      merged[i].report = std::move(*outcomes[i].result);
    } else {
      merged[i].crashed = true;
      merged[i].crash_what = std::move(outcomes[i].failure->what);
    }
  }
  return merged;
}

std::vector<SeedOutcome> run_corpus(const std::vector<std::uint64_t>& seeds,
                                    const RunOptions& opts, unsigned jobs) {
  return run_corpus_with(
      seeds, [&opts](std::uint64_t seed) { return run_seed(seed, opts); },
      jobs);
}

std::string CheckReport::summary() const {
  std::ostringstream s;
  s << "seed 0x" << std::hex << seed << std::dec
    << (differential ? " [diff]" : "");
  if (backend != core::BackendKind::kFlowValve)
    s << " [" << core::backend_kind_name(backend) << "]";
  s << ": " << (ok() ? "OK" : "FAIL") << " ("
    << nic.submitted << " submitted, " << nic.forwarded_to_wire << " on wire, "
    << (nic.vf_ring_drops + nic.scheduler_drops + nic.tx_ring_drops +
        nic.reorder_flush_drops + nic.reorder_timeout_drops +
        nic.watchdog_drops + nic.admission_drops + nic.island_restart_drops)
    << " dropped, " << events << " events";
  if (differential) s << ", worst share delta " << worst_share_delta;
  if (faults_injected > 0)
    s << ", " << faults_injected << " faults / " << faults_recovered
      << " recovered / " << packets_lost_to_faults << " pkts lost";
  if (reconfigs_applied > 0)
    s << ", " << reconfigs_applied << " reconfigs / " << reconfigs_committed
      << " committed / " << reconfigs_rolled_back << " rolled back / "
      << mixed_epoch_packets << " mixed-epoch pkts";
  if (!ok()) s << ", " << violation_total << " violations";
  s << ")";
  return s.str();
}

}  // namespace flowvalve::check
