// fuzz_check's command line, factored out so the repro-line emitter and the
// flag parser are the same code path — a failing seed's printed repro MUST
// parse back to the exact RunOptions that produced the failure (the
// round-trip is tested in tests/test_fault_campaign.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "check/runner.h"

namespace flowvalve::check {

struct CliOptions {
  std::uint64_t num_seeds = 50;
  std::uint64_t start_seed = 1;
  bool single_seed = false;  // --seed: run exactly one
  bool expect_violations = false;
  bool verbose = false;
  bool verify_sequential = false;
  /// Delta-debug a failing seed's fault schedule down to a minimal failing
  /// subset before printing its repro line (greedy one-event-at-a-time
  /// removal to fixpoint; see minimize_schedule in runner.h).
  bool minimize = false;
  unsigned jobs = 1;
  /// --inject-fault leak|bypass (empty ⇒ none) + its --every period.
  std::string inject_fault;
  std::uint64_t fault_every = 97;
  /// Everything the runner itself consumes. --fault-event tokens land in
  /// opts.faults (parsed by fault::parse_fault_event).
  RunOptions opts;
};

enum class CliParseResult {
  kOk,     // parsed; run the corpus
  kHelp,   // --help printed; exit 0
  kError,  // bad flag/value; message already on stderr; exit 2
};

void cli_usage();

/// Parse argv[1..) into `out`. On kOk the --inject-fault event (if any) has
/// already been appended to out.opts.faults, so out.opts is ready to run.
CliParseResult parse_cli(int argc, char** argv, CliOptions& out);

/// One-line repro command for `seed` under `cli`: every RunOptions field
/// that differs from its default is emitted as the flag that sets it —
/// including explicit --fault-event tokens — so pasting the line reproduces
/// the run exactly. `explicit_faults` replaces the schedule-deriving flags
/// (--chaos/--campaign/--storm/--inject-fault) with the given resolved event
/// list (the minimizer's output format).
std::string repro_command(const CliOptions& cli, std::uint64_t seed);
std::string repro_command_with_faults(const CliOptions& cli,
                                      std::uint64_t seed,
                                      const fault::FaultSchedule& faults);

}  // namespace flowvalve::check
