#include "check/differential.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "baseline/htb.h"
#include "traffic/generators.h"

namespace flowvalve::check {

bool QdiscWireDevice::submit(net::Packet pkt) {
  const net::Packet copy = pkt;
  if (!qdisc_.enqueue(std::move(pkt), sim_.now())) {
    notify_drop(copy);
    return false;
  }
  pump();
  return true;
}

void QdiscWireDevice::pump() {
  if (busy_) return;
  wake_.cancel();
  auto next = qdisc_.dequeue(sim_.now());
  if (next) {
    busy_ = true;
    const sim::SimDuration tx = wire_rate_.serialization_delay(next->wire_bytes);
    sim_.schedule_after(tx, [this, pkt = std::move(*next)]() mutable {
      pkt.wire_tx_done = sim_.now();
      pkt.delivered_at = sim_.now();
      busy_ = false;
      if (tx_tap_) tx_tap_(pkt, sim_.now());
      deliver(pkt);
      pump();
    });
    return;
  }
  const sim::SimTime at = qdisc_.next_event(sim_.now());
  if (at == sim::kSimTimeMax) return;  // idle; next submit re-pumps
  wake_ = sim_.schedule_at(std::max(at, sim_.now() + 1), [this] { pump(); });
}

DifferentialOutcome run_reference_and_compare(
    const FuzzScenario& sc, const std::vector<std::uint64_t>& fv_bytes) {
  DifferentialOutcome out;

  // ---- reference side: idealized HTB behind a wire-rate serializer -------
  sim::Simulator sim;
  baseline::HtbArtifacts ideal;
  ideal.enabled = false;
  baseline::HtbQdisc htb(sc.link_rate, sc.link_rate, ideal);
  for (const FuzzLeaf& leaf : sc.leaves) {
    baseline::HtbClassConfig cfg;
    cfg.name = leaf.name;
    cfg.rate = leaf.static_share;
    cfg.ceil = sc.link_rate;
    cfg.queue_limit = 512;
    htb.add_class(cfg);
  }
  htb.set_classifier([&sc](const net::Packet& pkt) -> std::string {
    for (const FuzzLeaf& leaf : sc.leaves)
      if (leaf.vf == pkt.vf_port) return leaf.name;
    return {};
  });

  QdiscWireDevice device(sim, htb, sc.link_rate);
  const sim::SimTime warmup = differential_warmup(sc);
  std::vector<std::uint64_t> ref_bytes(sc.leaves.size(), 0);
  device.set_tx_tap([&](const net::Packet& pkt, sim::SimTime now) {
    if (now >= warmup && pkt.vf_port < ref_bytes.size())
      ref_bytes[pkt.vf_port] += pkt.wire_bytes;
  });

  traffic::FlowRouter router(device);
  traffic::IdAllocator ids;
  const sim::Rng rng(sc.seed);
  std::vector<std::unique_ptr<traffic::CbrFlow>> flows;
  for (const FuzzFlow& f : sc.flows) {
    traffic::FlowSpec spec;
    spec.flow_id = ids.next_flow_id();
    spec.app_id = f.app_id;
    spec.vf_port = f.vf;
    spec.wire_bytes = f.frame_bytes;
    auto flow = std::make_unique<traffic::CbrFlow>(
        sim, router, ids, spec, f.rate, rng.split("ref").split(f.app_id));
    sim.schedule_at(f.start, [src = flow.get()] { src->start(); });
    sim.schedule_at(f.stop, [src = flow.get()] { src->stop(); });
    flows.push_back(std::move(flow));
  }
  sim.run_until(sc.horizon);
  for (auto& f : flows) f->stop();
  sim.run_all();

  // ---- shares ------------------------------------------------------------
  auto shares = [](const std::vector<std::uint64_t>& bytes) {
    double total = 0;
    for (auto b : bytes) total += static_cast<double>(b);
    std::vector<double> s(bytes.size(), 0.0);
    if (total > 0)
      for (std::size_t i = 0; i < bytes.size(); ++i)
        s[i] = static_cast<double>(bytes[i]) / total;
    return s;
  };
  out.fv_shares = shares(fv_bytes);
  out.ref_shares = shares(ref_bytes);

  double wsum = 0;
  for (const FuzzLeaf& leaf : sc.leaves) wsum += leaf.weight;
  for (const FuzzLeaf& leaf : sc.leaves)
    out.expected_shares.push_back(leaf.weight / wsum);

  for (std::size_t i = 0; i < sc.leaves.size(); ++i)
    out.worst_delta =
        std::max(out.worst_delta, std::abs(out.fv_shares[i] - out.ref_shares[i]));
  return out;
}

}  // namespace flowvalve::check
