// The standard library of invariant checkers (paper-derived correctness
// properties). Each checker is independent and cheap enough to run on every
// fuzz scenario; together they cover:
//
//   conservation        submitted == wire + vf/scheduler/tx drops (+in
//                       flight while running, exactly 0 of it at drain)
//   ordering            per-VF FIFO delivery and per-flow sequence order
//                       through the reorder system (Fig. 4)
//   timestamps          packet lifecycle timestamps are monotone and the
//                       fixed pipeline delay is honored exactly
//   wire-conformance    cumulative wire bytes never exceed line rate —
//                       the shared FIFO's drain is the paper's F0 budget
//   worker-exclusivity  run-to-completion busy intervals of one micro-
//                       engine never overlap; processed counts reconcile
//   tree-arithmetic     θ ∈ [0, ceil], per-priority-level sibling θ sums
//                       bounded by the parent budget (+ the level's
//                       guarantee reservations, which move between the
//                       siblings' staggered update instants), bucket levels
//                       within [0, capacity], lendable ≤ θ (Eq. 4-6)
//   ceil-conformance    per-leaf non-borrowed (own-bucket) bytes respect
//                       rate+burst over every prefix window (token-bucket
//                       conformance, Eq. 1)
//   cache-coherence     every EMC hit returns exactly the label a fresh
//                       rule walk would assign right now — across poison,
//                       label-epoch bumps, cuckoo kicks/evictions, and
//                       degraded-mode transitions — and the cuckoo table's
//                       occupancy books balance at every epoch
#pragma once

#include <memory>
#include <vector>

#include "check/checker.h"
#include "np/np_config.h"

namespace flowvalve::check {

/// All standard checkers, configured for a pipeline with `config`.
/// `engine` may be null; the cache-coherence checker (which needs to
/// replay rule walks against the live classifier) is only added when it
/// is provided.
std::vector<std::unique_ptr<InvariantChecker>> standard_checkers(
    const np::NpConfig& config, core::FlowValveEngine* engine = nullptr);

}  // namespace flowvalve::check
