// Post-fault share re-convergence checker.
//
// The robustness acceptance bar (ISSUE 3 / DESIGN.md §8) is not just "the
// pipeline survives a fault" but "after the fault clears, the scheduler's
// per-class shares return to the fair allocation within a bounded window".
// ShareConvergenceChecker asserts exactly that: over a configured window
// [from, to] — opened by the runner a settling interval after the last
// fault clears — each VF's fraction of wire bytes must sit within
// `tolerance` of its expected weighted-fair share, and the window must not
// be silent (a wedged pipeline that ships nothing is a failure, not a
// vacuous pass).
#pragma once

#include <vector>

#include "check/checker.h"

namespace flowvalve::check {

class ShareConvergenceChecker final : public InvariantChecker {
 public:
  /// `expected_fractions[vf]` is the VF's fair fraction of wire bytes (0 for
  /// VFs with no leaf). Fractions should sum to ~1 over the active VFs.
  ShareConvergenceChecker(std::vector<double> expected_fractions,
                          sim::SimTime from, sim::SimTime to, double tolerance);

  std::string_view name() const override { return "share-convergence"; }

  void on_wire_tx(const net::Packet& pkt, sim::SimTime now) override;
  void on_finish(const SystemView& v, sim::SimTime now) override;

 private:
  std::vector<double> expected_;
  std::vector<std::uint64_t> bytes_;
  sim::SimTime from_;
  sim::SimTime to_;
  double tolerance_;
};

}  // namespace flowvalve::check
