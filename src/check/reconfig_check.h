// Reconfiguration invariants (DESIGN.md §11): checkers that lock in the
// control plane's degradation guarantees during a live policy swap.
//
//   EpochConfinementChecker   every freshly dispatched packet carries either
//                             the committed policy epoch or — only while a
//                             rollout is in flight — the rollout's target
//                             epoch. Mixed-epoch scheduling is therefore
//                             confined to the rollout window; once the
//                             manager leaves kRollout no stale stamp may
//                             appear on a fresh dispatch. Watchdog requeues
//                             are exempt (they keep their original stamp by
//                             design). Also asserts the manager is idle once
//                             the run drains.
//
//   SwapConservationChecker   "no packets dropped due to reconfiguration
//                             itself": forced admission shedding (the only
//                             drop mechanism the control plane owns) may act
//                             only while an update is unresolved, and must
//                             be released by commit/rollback — an admission
//                             drop under forced shedding with the manager
//                             idle, or forced shedding surviving the drain,
//                             is a conservation violation.
#pragma once

#include <cstdint>

#include "check/checker.h"
#include "ctrl/reconfig_manager.h"

namespace flowvalve::check {

class EpochConfinementChecker final : public InvariantChecker {
 public:
  explicit EpochConfinementChecker(const ctrl::ReconfigManager* manager)
      : mgr_(manager) {}

  std::string_view name() const override { return "epoch-confinement"; }

  void on_dispatch(const net::Packet& pkt, unsigned worker, std::uint64_t seq,
                   sim::SimTime now, sim::SimDuration busy) override;
  void on_finish(const SystemView& view, sim::SimTime now) override;

 private:
  const ctrl::ReconfigManager* mgr_;
  std::uint64_t next_fresh_seq_ = 0;  // dispatches below this are requeues
};

class SwapConservationChecker final : public InvariantChecker {
 public:
  SwapConservationChecker(const ctrl::ReconfigManager* manager,
                          const np::NicPipeline* pipeline)
      : mgr_(manager), pipeline_(pipeline) {}

  std::string_view name() const override { return "swap-conservation"; }

  void on_drop(const net::Packet& pkt, np::DropReason reason,
               sim::SimTime now) override;
  void on_finish(const SystemView& view, sim::SimTime now) override;

 private:
  const ctrl::ReconfigManager* mgr_;
  const np::NicPipeline* pipeline_;
};

}  // namespace flowvalve::check
