// fuzz_check — deterministic scenario fuzzer driver.
//
//   fuzz_check --seeds 100                 # standard invariant fuzzing
//   fuzz_check --seeds 100 --jobs 0        # same corpus, all host cores
//   fuzz_check --seeds 10 --differential   # FlowValve-vs-HTB share oracle
//   fuzz_check --seed 0x2a -v              # re-run one seed, print scenario
//   fuzz_check --seeds 3 --inject-fault leak --expect-violations
//   fuzz_check --seeds 10 --chaos           # seeded fault schedules + recovery
//
// Every failing seed prints a one-line repro command; the same seed always
// regenerates the identical scenario (see src/check/fuzzer.h) and — under
// --chaos — the identical fault schedule (see src/fault/fault.h). Seeds are
// mutually independent, so --jobs N fans them across N threads and merges
// the reports in seed order: the output (and every repro line) is identical
// to a sequential run, which --verify-sequential re-proves per seed by
// rerunning the corpus inline and diffing bit-exact report fingerprints.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "check/runner.h"
#include "fault/fault.h"

namespace {

void usage() {
  std::puts(
      "usage: fuzz_check [options]\n"
      "  --seeds N           number of seeds to run (default 50)\n"
      "  --start S           first seed (default 1; hex with 0x prefix)\n"
      "  --seed S            run exactly one seed\n"
      "  --jobs N            fan seeds across N threads (0 = all host\n"
      "                      cores; default 1 = sequential). Reports merge\n"
      "                      in seed order, so output is identical to\n"
      "                      --jobs 1\n"
      "  --verify-sequential after a parallel run, re-run every seed\n"
      "                      sequentially and fail unless each report is\n"
      "                      bit-identical (the --jobs equivalence oracle)\n"
      "  --differential      differential scenario family (FV vs HTB oracle)\n"
      "  --tolerance F       differential share tolerance (default 0.1)\n"
      "  --inject-fault K    deliberate pipeline bug: leak | bypass\n"
      "  --every N           fault period for --inject-fault (default 97)\n"
      "  --chaos             arm a seed-derived fault schedule per run and\n"
      "                      check the pipeline survives + re-converges\n"
      "  --storm K           arm a flow-table storm over the middle half of\n"
      "                      every run: collision | churn | both\n"
      "  --reconfig N        submit N seed-derived live policy updates per\n"
      "                      run (usually with one control-plane fault) and\n"
      "                      check epoch confinement + swap conservation\n"
      "  --expect-violations exit 0 iff at least one seed reports violations\n"
      "  --horizon-ms M      override scenario horizon\n"
      "  --batch N           force NpConfig::batch_size for every run\n"
      "                      (1 = legacy per-packet path; 0 = scenario's own\n"
      "                      seed-derived burst size, the default)\n"
      "  --backend K         force the scheduling discipline for every run:\n"
      "                      fv (default tree) | stfq | eiffel | sppifo\n"
      "                      (unset = scenario's own seed-derived backend)\n"
      "  --scheduler K       event queue backend: wheel (default) | heap\n"
      "  -v, --verbose       print the full scenario for every seed\n");
}

std::uint64_t parse_u64(const char* s) {
  return std::strtoull(s, nullptr, 0);  // base 0: accepts 0x... and decimal
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flowvalve;

  std::uint64_t num_seeds = 50;
  std::uint64_t start_seed = 1;
  bool single_seed = false;
  bool expect_violations = false;
  bool verbose = false;
  bool verify_sequential = false;
  unsigned jobs = 1;
  std::uint64_t fault_every = 97;
  const char* fault_kind = nullptr;
  check::RunOptions opts;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_check: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(arg, "--seeds")) {
      num_seeds = parse_u64(value());
    } else if (!std::strcmp(arg, "--start")) {
      start_seed = parse_u64(value());
    } else if (!std::strcmp(arg, "--seed")) {
      start_seed = parse_u64(value());
      num_seeds = 1;
      single_seed = true;
    } else if (!std::strcmp(arg, "--jobs")) {
      jobs = static_cast<unsigned>(parse_u64(value()));
    } else if (!std::strcmp(arg, "--verify-sequential")) {
      verify_sequential = true;
    } else if (!std::strcmp(arg, "--differential")) {
      opts.differential = true;
    } else if (!std::strcmp(arg, "--tolerance")) {
      opts.share_tolerance = std::atof(value());
    } else if (!std::strcmp(arg, "--inject-fault")) {
      fault_kind = value();
    } else if (!std::strcmp(arg, "--every")) {
      fault_every = parse_u64(value());
    } else if (!std::strcmp(arg, "--chaos")) {
      opts.chaos = true;
    } else if (!std::strcmp(arg, "--storm")) {
      const char* k = value();
      if (!std::strcmp(k, "collision")) {
        opts.storm_collision = true;
      } else if (!std::strcmp(k, "churn")) {
        opts.storm_churn = true;
      } else if (!std::strcmp(k, "both")) {
        opts.storm_collision = opts.storm_churn = true;
      } else {
        std::fprintf(stderr,
                     "fuzz_check: unknown storm '%s' (collision|churn|both)\n",
                     k);
        return 2;
      }
    } else if (!std::strcmp(arg, "--reconfig")) {
      opts.reconfig_updates = static_cast<unsigned>(parse_u64(value()));
    } else if (!std::strcmp(arg, "--expect-violations")) {
      expect_violations = true;
    } else if (!std::strcmp(arg, "--horizon-ms")) {
      opts.horizon_override = sim::milliseconds(
          static_cast<std::int64_t>(parse_u64(value())));
    } else if (!std::strcmp(arg, "--batch")) {
      opts.batch_size = static_cast<unsigned>(parse_u64(value()));
    } else if (!std::strcmp(arg, "--backend")) {
      const char* k = value();
      core::BackendKind kind = core::BackendKind::kFlowValve;
      if (!core::parse_backend_kind(k, kind)) {
        std::fprintf(stderr,
                     "fuzz_check: unknown backend '%s' (fv|stfq|eiffel|sppifo)\n",
                     k);
        return 2;
      }
      opts.backend = kind;
    } else if (!std::strcmp(arg, "--scheduler")) {
      const char* k = value();
      if (!std::strcmp(k, "heap")) {
        opts.scheduler = sim::SchedulerKind::kHeap;
      } else if (!std::strcmp(k, "wheel")) {
        opts.scheduler = sim::SchedulerKind::kWheel;
      } else {
        std::fprintf(stderr, "fuzz_check: unknown scheduler '%s' (heap|wheel)\n",
                     k);
        return 2;
      }
    } else if (!std::strcmp(arg, "-v") || !std::strcmp(arg, "--verbose")) {
      verbose = true;
    } else if (!std::strcmp(arg, "-h") || !std::strcmp(arg, "--help")) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "fuzz_check: unknown option %s\n", arg);
      usage();
      return 2;
    }
  }

  if (fault_kind) {
    fault::FaultEvent ev;  // permanent from t=0: the legacy injected bugs
    ev.at = 0;
    ev.duration = 0;
    ev.period = fault_every;
    if (!std::strcmp(fault_kind, "leak")) {
      ev.kind = fault::FaultKind::kLeakCommit;
    } else if (!std::strcmp(fault_kind, "bypass")) {
      ev.kind = fault::FaultKind::kBypassReorder;
    } else {
      std::fprintf(stderr, "fuzz_check: unknown fault '%s' (leak|bypass)\n",
                   fault_kind);
      return 2;
    }
    opts.faults.push_back(ev);
  }

  std::vector<std::uint64_t> seeds;
  seeds.reserve(num_seeds);
  for (std::uint64_t s = start_seed; s < start_seed + num_seeds; ++s)
    seeds.push_back(s);

  // Fan the corpus across the thread pool; outcomes come back in seed
  // order regardless of completion order, so the report below is identical
  // to a sequential run's.
  const std::vector<check::SeedOutcome> outcomes =
      check::run_corpus(seeds, opts, jobs);

  std::uint64_t failures = 0;
  std::uint64_t caught = 0;
  std::uint64_t crashes = 0;
  for (const check::SeedOutcome& outcome : outcomes) {
    const std::uint64_t s = outcome.seed;
    if (verbose) {
      const check::FuzzScenario sc =
          opts.differential ? check::generate_differential_scenario(s)
                            : check::generate_scenario(s);
      std::fputs(sc.describe().c_str(), stdout);
      if (opts.chaos)
        std::fputs(fault::describe_schedule(
                       fault::generate_fault_schedule(s, sc.horizon, sc.nic))
                       .c_str(),
                   stdout);
    }
    // Repro flags shared by the failure and crash paths.
    std::string extra_flags;
    if (opts.reconfig_updates > 0)
      extra_flags = " --reconfig " + std::to_string(opts.reconfig_updates);
    if (opts.batch_size > 0)
      extra_flags += " --batch " + std::to_string(opts.batch_size);
    if (opts.backend)
      extra_flags += std::string(" --backend ") +
                     core::backend_kind_name(*opts.backend);
    if (opts.storm_collision || opts.storm_churn)
      extra_flags += std::string(" --storm ") +
                     (opts.storm_collision && opts.storm_churn
                          ? "both"
                          : opts.storm_collision ? "collision" : "churn");
    if (outcome.crashed) {
      // Structured crash record: the seed's exception, isolated to its own
      // slot — every other seed in the batch completed and merged normally.
      ++failures;
      ++crashes;
      std::printf("seed 0x%llx: CRASH (%s)\n",
                  static_cast<unsigned long long>(s),
                  outcome.crash_what.c_str());
      if (!single_seed)
        std::printf("  repro: fuzz_check --seed 0x%llx%s%s%s%s -v\n",
                    static_cast<unsigned long long>(s),
                    opts.differential ? " --differential" : "",
                    opts.chaos ? " --chaos" : "", extra_flags.c_str(),
                    fault_kind ? (std::string(" --inject-fault ") + fault_kind)
                                     .c_str()
                               : "");
      continue;
    }
    const check::CheckReport& report = outcome.report;
    std::printf("%s\n", report.summary().c_str());
    if (!report.ok()) {
      ++failures;
      ++caught;
      for (const auto& v : report.violations)
        std::printf("    %s\n", v.to_string().c_str());
      if (report.violation_total > report.violations.size())
        std::printf("    ... and %llu more\n",
                    static_cast<unsigned long long>(report.violation_total -
                                                    report.violations.size()));
      if (!single_seed) {
        std::printf("  repro: fuzz_check --seed 0x%llx%s%s%s%s -v\n",
                    static_cast<unsigned long long>(s),
                    opts.differential ? " --differential" : "",
                    opts.chaos ? " --chaos" : "", extra_flags.c_str(),
                    fault_kind ? (std::string(" --inject-fault ") + fault_kind)
                                     .c_str()
                               : "");
      }
    }
  }

  // Sequential-equivalence oracle: the corpus rerun inline on this thread
  // must produce a bit-identical report for every seed.
  if (verify_sequential) {
    const std::vector<check::SeedOutcome> sequential =
        check::run_corpus(seeds, opts, /*jobs=*/1);
    std::uint64_t divergent = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const bool same =
          outcomes[i].crashed == sequential[i].crashed &&
          (outcomes[i].crashed
               ? outcomes[i].crash_what == sequential[i].crash_what
               : check::report_fingerprint(outcomes[i].report) ==
                     check::report_fingerprint(sequential[i].report));
      if (!same) {
        ++divergent;
        std::printf(
            "seed 0x%llx: parallel run DIVERGES from sequential rerun\n",
            static_cast<unsigned long long>(outcomes[i].seed));
      }
    }
    if (divergent) {
      std::printf("fuzz_check: %llu/%llu seeds diverged under --jobs %u\n",
                  static_cast<unsigned long long>(divergent),
                  static_cast<unsigned long long>(num_seeds), jobs);
      return 1;
    }
    std::printf("fuzz_check: all %llu seeds bit-identical to sequential\n",
                static_cast<unsigned long long>(num_seeds));
  }

  if (crashes) {
    std::printf("fuzz_check: %llu/%llu seeds CRASHED\n",
                static_cast<unsigned long long>(crashes),
                static_cast<unsigned long long>(num_seeds));
    return 1;
  }
  if (expect_violations) {
    // Some scenarios legitimately mask a fault (e.g. a pipeline that never
    // reorders makes the bypass fault unobservable), so require the bug to
    // be caught on at least one seed rather than all of them.
    std::printf("fuzz_check: injected fault caught on %llu/%llu seeds\n",
                static_cast<unsigned long long>(caught),
                static_cast<unsigned long long>(num_seeds));
    return caught > 0 ? 0 : 1;
  }
  if (failures) {
    std::printf("fuzz_check: %llu/%llu seeds FAILED\n",
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(num_seeds));
    return 1;
  }
  std::printf("fuzz_check: %llu seeds clean\n",
              static_cast<unsigned long long>(num_seeds));
  return 0;
}
